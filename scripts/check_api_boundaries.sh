#!/usr/bin/env bash
# API-boundary guard: every consumer must go through the
# compiler::Engine facade.
#
#  1. No direct planner calls (engine::planWeightKernel /
#     planAttentionKernel) outside the engine itself, the compiler
#     facade, and the tests that verify them.
#  2. No example includes engine/template_engine.h directly — the
#     public surface for examples is compiler/engine.h.
#
# Run from anywhere; exits non-zero with a diagnostic when a boundary
# is violated.  Wired into ctest (label: compiler) and CI.
set -u
cd "$(dirname "$0")/.."

status=0

planner_hits=$(grep -rn "planWeightKernel\|planAttentionKernel" \
    bench/ examples/ src/llm/ src/serving/ 2>/dev/null)
if [ -n "${planner_hits}" ]; then
    echo "ERROR: direct planner calls bypass compiler::Engine:"
    echo "${planner_hits}"
    status=1
fi

include_hits=$(grep -rn '#include "engine/template_engine.h"' \
    examples/ 2>/dev/null)
if [ -n "${include_hits}" ]; then
    echo "ERROR: examples must include compiler/engine.h, not the" \
         "template engine directly:"
    echo "${include_hits}"
    status=1
fi

if [ "${status}" -eq 0 ]; then
    echo "API boundaries clean: all consumers go through" \
         "compiler::Engine."
fi
exit "${status}"
