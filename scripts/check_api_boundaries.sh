#!/usr/bin/env bash
# API-boundary guard: every consumer must go through the
# compiler::Engine facade.
#
#  1. No direct planner calls (engine::planWeightKernel /
#     planAttentionKernel) outside the engine itself, the compiler
#     facade, and the tests that verify them.
#  2. No example includes engine/template_engine.h directly — the
#     public surface for examples is compiler/engine.h.
#  3. The serving layer must not plan or cost kernels itself — shard
#     shapes (tensor-parallel linears/attention included) are compiled
#     through compiler::Engine, so src/serving/ may not include the
#     template engine or the kernel cost-estimator headers, nor call
#     the estimateVq* estimators directly.
#
# Run from anywhere; exits non-zero with a diagnostic when a boundary
# is violated.  Wired into ctest (label: compiler) and CI.
set -u
cd "$(dirname "$0")/.."

status=0

planner_hits=$(grep -rn "planWeightKernel\|planAttentionKernel" \
    bench/ examples/ src/llm/ src/serving/ 2>/dev/null)
if [ -n "${planner_hits}" ]; then
    echo "ERROR: direct planner calls bypass compiler::Engine:"
    echo "${planner_hits}"
    status=1
fi

include_hits=$(grep -rn '#include "engine/template_engine.h"' \
    examples/ 2>/dev/null)
if [ -n "${include_hits}" ]; then
    echo "ERROR: examples must include compiler/engine.h, not the" \
         "template engine directly:"
    echo "${include_hits}"
    status=1
fi

serving_include_hits=$(grep -rn \
    '#include "engine/template_engine.h"\|#include "kernels/vq_kernels.h"\|#include "kernels/fp16_kernels.h"\|#include "kernels/ewq_kernels.h"' \
    src/serving/ 2>/dev/null)
if [ -n "${serving_include_hits}" ]; then
    echo "ERROR: serving must price kernels through compiler::Engine" \
         "(llm::schemeLinearUs / schemeAttentionUs), not include the" \
         "planner or kernel estimators directly:"
    echo "${serving_include_hits}"
    status=1
fi

serving_call_hits=$(grep -rn \
    "estimateVqGemvKernel\|estimateVqGemmKernel\|estimateVqAttentionKernel" \
    src/serving/ 2>/dev/null)
if [ -n "${serving_call_hits}" ]; then
    echo "ERROR: serving calls kernel cost estimators directly instead" \
         "of compiling shard shapes through compiler::Engine:"
    echo "${serving_call_hits}"
    status=1
fi

if [ "${status}" -eq 0 ]; then
    echo "API boundaries clean: all consumers go through" \
         "compiler::Engine."
fi
exit "${status}"
