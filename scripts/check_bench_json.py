#!/usr/bin/env python3
"""Bench/observability JSON schema check for the perf trajectory.

Runs the bench smoke targets, then validates every BENCH_*.json they
emit: the file must parse, every number must be finite, every key
ending in "sweep" (or named in REQUIRED below) must be a non-empty
list, and per-file required keys must be present.  CI uploads the
validated JSONs as workflow artifacts, so a silently malformed bench
report fails the pipeline instead of poisoning the perf history.

The script also validates serving_sim observability output:

--trace FILE    a Chrome trace-event JSON (serving_sim --trace-out):
                must parse, contain only finite numbers, spans per
                track must be properly nested (sorted by start, a
                later span never starts before the enclosing one
                ends unless fully contained), and timestamps must be
                non-negative.
--metrics FILE  a metrics JSON (serving_sim --metrics-json): the
                report object must carry the busy-time breakdown, and
                prefill + decode + comm + codebook upload must equal
                busy_time_us within tolerance.  Given both --trace and
                --metrics, the trace's per-category span durations are
                checked against the report's breakdown too.

Usage:
    check_bench_json.py [--build-dir BUILD] [--no-run] [--skip-bench]
                        [--trace FILE] [--metrics FILE]

--no-run skips executing the benches and only validates the JSON files
already present in the build directory.  --skip-bench skips the bench
JSON validation entirely (observability-only mode).
"""

import argparse
import json
import math
import pathlib
import subprocess
import sys

# Bench targets to execute (relative to the build dir) and the JSON
# files they are expected to leave behind.
SMOKE_TARGETS = [
    (["./bench_serving", "--smoke"], "BENCH_serving.json"),
    (["./bench_fleet", "--smoke"], "BENCH_fleet.json"),
    (["./bench_host_throughput"], "BENCH_host.json"),
]

# Per-file required keys: path of nested keys that must exist.  A
# trailing list marker "[]" requires a non-empty list whose entries all
# carry the listed fields.
REQUIRED = {
    "BENCH_serving.json": {
        "plan_cache": ["cold_ms", "cached_ms", "speedup",
                       "cold_hit_rate", "cached_hit_rate"],
        "disk_cache": ["mem_cold_ms", "disk_warm_ms", "speedup",
                       "cold_misses", "cold_admits", "warm_hits",
                       "warm_misses", "reports_identical"],
        "tp_sweep[]": ["scheme", "degree", "tokens_per_sec",
                       "tbt_p95_ms", "ttft_p95_ms", "comm_fraction",
                       "kv_capacity_gb", "busy_us", "prefill_us",
                       "decode_us", "comm_us", "codebook_upload_us"],
        "prefix_sweep[]": ["scheme", "prefix_cache", "seed", "qps",
                           "ttft_mean_ms", "ttft_p95_ms", "tbt_p95_ms",
                           "prefill_us", "busy_us", "tokens_saved",
                           "prompt_tokens", "prefix_len", "hit_rate",
                           "cow_forks", "preemptions", "completed"],
        "kv_sweep[]": ["weight_scheme", "kv_scheme", "kv_scale",
                       "bytes_per_token", "capacity_multiplier",
                       "pool_bytes", "peak_running", "dequant_us",
                       "max_qps_slo", "qps", "tokens_per_sec",
                       "ttft_p95_ms", "tbt_p95_ms", "completed"],
    },
    "BENCH_fleet.json": {
        "disk_cache": ["mem_cold_ms", "disk_warm_ms", "speedup",
                       "cold_hits", "cold_misses", "cold_admits",
                       "warm_hits", "warm_misses",
                       "reports_identical"],
        "fleet_sweep[]": ["replicas", "router", "disaggregated",
                          "prefill_replicas", "weight_scheme",
                          "kv_scheme", "qps", "ttft_p95_ms",
                          "tbt_p95_ms", "fleet_tokens_per_sec",
                          "completed", "rejected", "handoffs",
                          "handoff_rejects", "kv_transfer_bytes",
                          "kv_transfer_us", "util_min", "util_max",
                          "util_imbalance", "max_qps_slo"],
        "router_sweep[]": ["router", "replicas", "arrival", "qps",
                           "ttft_p95_ms", "tbt_p95_ms",
                           "fleet_tokens_per_sec", "completed",
                           "rejected", "util_min", "util_max",
                           "util_imbalance"],
    },
    "BENCH_host.json": {},
}


def fail(msg: str) -> None:
    print(f"check_bench_json: ERROR: {msg}", file=sys.stderr)
    sys.exit(1)


def check_finite(node, path: str) -> None:
    """Every number in the document must be finite (printf'ing a NaN or
    inf into a report is exactly the silent corruption this guards)."""
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        if not math.isfinite(node):
            fail(f"non-finite number at {path}: {node}")
    elif isinstance(node, dict):
        for key, value in node.items():
            check_finite(value, f"{path}.{key}")
    elif isinstance(node, list):
        for i, value in enumerate(node):
            check_finite(value, f"{path}[{i}]")


def check_sweeps_non_empty(node, path: str) -> None:
    """Any key ending in 'sweep' must be a non-empty list — an empty
    sweep means the bench silently skipped its measurements."""
    if isinstance(node, dict):
        for key, value in node.items():
            if key.endswith("sweep"):
                if not isinstance(value, list) or not value:
                    fail(f"sweep {path}.{key} is empty or not a list")
            check_sweeps_non_empty(value, f"{path}.{key}")
    elif isinstance(node, list):
        for i, value in enumerate(node):
            check_sweeps_non_empty(value, f"{path}[{i}]")


def check_required(doc: dict, name: str) -> None:
    for key, fields in REQUIRED.get(name, {}).items():
        if key.endswith("[]"):
            key = key[:-2]
            entries = doc.get(key)
            if not isinstance(entries, list) or not entries:
                fail(f"{name}: required list '{key}' missing or empty")
            for i, entry in enumerate(entries):
                for field in fields:
                    if field not in entry:
                        fail(f"{name}: {key}[{i}] lacks '{field}'")
        else:
            obj = doc.get(key)
            if not isinstance(obj, dict):
                fail(f"{name}: required object '{key}' missing")
            for field in fields:
                if field not in obj:
                    fail(f"{name}: {key} lacks '{field}'")


def check_prefix_sweep(doc: dict, name: str) -> None:
    """Semantic checks on the shared-prefix sweep: rates in range,
    cache-off rows save nothing, and per (scheme, seed, qps) pair the
    cache-on run must save tokens and prefill no more than the
    cache-off run on its identical arrival trace."""
    entries = doc.get("prefix_sweep")
    if entries is None:
        return
    pairs = {}
    for i, e in enumerate(entries):
        where = f"{name}: prefix_sweep[{i}]"
        if not 0.0 <= e["hit_rate"] <= 1.0:
            fail(f"{where} hit_rate {e['hit_rate']} outside [0, 1]")
        # Each admission matches at most the request's prefix, and
        # every preemption recompute may legitimately re-match it, so
        # the sound ceiling is the trace's prompt tokens plus one
        # prefix per preemption.
        bound = e["prompt_tokens"] + e["preemptions"] * e["prefix_len"]
        if e["tokens_saved"] > bound:
            fail(f"{where} saved {e['tokens_saved']} tokens; ceiling "
                 f"is {bound} ({e['prompt_tokens']} prompt tokens + "
                 f"{e['preemptions']} preemption re-matches)")
        if not e["prefix_cache"]:
            if e["tokens_saved"] != 0 or e["hit_rate"] != 0:
                fail(f"{where} is cache-off but reports savings "
                     f"({e['tokens_saved']} tokens, hit rate "
                     f"{e['hit_rate']})")
        key = (e["scheme"], e["seed"], e["qps"], bool(e["prefix_cache"]))
        if key in pairs:
            fail(f"{where} duplicates cell {key}")
        pairs[key] = e
    for (scheme, seed, qps, cache), e in pairs.items():
        if not cache:
            continue
        off = pairs.get((scheme, seed, qps, False))
        if off is None:
            fail(f"{name}: prefix_sweep cache-on cell ({scheme}, seed "
                 f"{seed}, {qps} QPS) has no cache-off twin")
        if e["tokens_saved"] == 0:
            fail(f"{name}: prefix_sweep ({scheme}) cache-on saved no "
                 f"tokens on a shared-prefix trace")
        # Identical trace, strictly less prefill work: conservation.
        if e["prefill_us"] > off["prefill_us"] * (1 + 1e-9):
            fail(f"{name}: prefix_sweep ({scheme}) cache-on prefilled "
                 f"{e['prefill_us']} us, more than cache-off's "
                 f"{off['prefill_us']} us on the same trace")
    if entries:
        print(f"check_bench_json: prefix_sweep OK "
              f"({len(entries)} cells)")


def check_kv_sweep(doc: dict, name: str) -> None:
    """Semantic checks on the KV-scheme sweep: the FP16-KV baseline row
    must be a true identity cell (scale 1, multiplier 1, zero attn
    delta), every compressed row must have an FP16-KV twin at equal
    pool bytes and load, the reported capacity multiplier must match
    its byte ratio, and the VQ rows must demonstrate the capacity win
    the sweep exists to measure: at least 2x the baseline's peak
    concurrently-running sequences (and, when the full-mode SLO
    bisections ran, at least the baseline's max QPS)."""
    entries = doc.get("kv_sweep")
    if entries is None:
        return
    baselines = {}
    for i, e in enumerate(entries):
        if e["kv_scheme"] == "fp16":
            baselines[(e["pool_bytes"], e["qps"])] = e
    for i, e in enumerate(entries):
        where = f"{name}: kv_sweep[{i}] ({e['kv_scheme']})"
        if not 0.0 < e["kv_scale"] <= 1.0:
            fail(f"{where} kv_scale {e['kv_scale']} outside (0, 1]")
        if e["bytes_per_token"] <= 0 or e["pool_bytes"] <= 0:
            fail(f"{where} has non-positive KV byte counts")
        # bytes_per_token is floor(fp16_bpt * scale), so the reported
        # multiplier sits at or slightly above 1/scale.
        want = 1.0 / e["kv_scale"]
        if not want * (1 - 1e-3) <= e["capacity_multiplier"] \
                <= want * (1 + 1e-2):
            fail(f"{where} capacity_multiplier "
                 f"{e['capacity_multiplier']} inconsistent with scale "
                 f"{e['kv_scale']} (want ~{want:.4f})")
        if e["max_qps_slo"] < 0:
            fail(f"{where} negative max_qps_slo {e['max_qps_slo']}")
        if e["kv_scheme"] == "fp16":
            if e["kv_scale"] != 1.0 or e["capacity_multiplier"] != 1.0 \
                    or e["dequant_us"] != 0:
                fail(f"{where} FP16-KV baseline is not an identity "
                     f"cell (scale {e['kv_scale']}, multiplier "
                     f"{e['capacity_multiplier']}, attn delta "
                     f"{e['dequant_us']} us)")
            continue
        base = baselines.get((e["pool_bytes"], e["qps"]))
        if base is None:
            fail(f"{where} has no FP16-KV twin at pool_bytes "
                 f"{e['pool_bytes']} and {e['qps']} QPS")
        if e["kv_scheme"].startswith("vq"):
            if e["capacity_multiplier"] < 2.0:
                fail(f"{where} capacity_multiplier "
                     f"{e['capacity_multiplier']} below 2x")
            if e["peak_running"] < 2 * base["peak_running"]:
                fail(f"{where} peak_running {e['peak_running']} is "
                     f"under 2x the FP16-KV baseline's "
                     f"{base['peak_running']} at equal pool bytes")
            if base["max_qps_slo"] > 0 and \
                    e["max_qps_slo"] < base["max_qps_slo"]:
                fail(f"{where} max_qps_slo {e['max_qps_slo']} below "
                     f"the FP16-KV baseline's {base['max_qps_slo']}")
    if entries:
        print(f"check_bench_json: kv_sweep OK ({len(entries)} cells)")


def check_fleet_sweep(doc: dict, name: str) -> None:
    """Semantic checks on the fleet capacity sweep: utilization
    fractions in range and consistent with the reported spread,
    aggregated rows transfer no KV, disaggregated rows always hand
    off, every disaggregated cell has an aggregated twin at equal
    (replicas, router, qps), and — when the full-mode SLO bisections
    ran — the disaggregated fleet sustains strictly more QPS than the
    aggregated same-hardware baseline (the headline the sweep exists
    to demonstrate)."""
    entries = doc.get("fleet_sweep")
    if entries is None:
        return
    cells = {}
    for i, e in enumerate(entries):
        where = f"{name}: fleet_sweep[{i}]"
        if e["replicas"] < 1:
            fail(f"{where} has {e['replicas']} replicas")
        for field in ("util_min", "util_max"):
            if not 0.0 <= e[field] <= 1.0:
                fail(f"{where} {field} {e[field]} outside [0, 1]")
        if e["util_max"] < e["util_min"]:
            fail(f"{where} util_max below util_min")
        if not close(e["util_imbalance"],
                     e["util_max"] - e["util_min"]):
            fail(f"{where} util_imbalance {e['util_imbalance']} is not "
                 f"util_max - util_min")
        if e["max_qps_slo"] < 0:
            fail(f"{where} negative max_qps_slo {e['max_qps_slo']}")
        if e["completed"] <= 0:
            fail(f"{where} completed no requests")
        if not e["disaggregated"]:
            if e["handoffs"] != 0 or e["kv_transfer_bytes"] != 0 \
                    or e["prefill_replicas"] != 0:
                fail(f"{where} is aggregated but reports handoffs "
                     f"({e['handoffs']}, {e['kv_transfer_bytes']} B, "
                     f"{e['prefill_replicas']} prefill replicas)")
        else:
            if e["replicas"] < 2:
                fail(f"{where} is disaggregated with one replica")
            if not 1 <= e["prefill_replicas"] < e["replicas"]:
                fail(f"{where} prefill_replicas "
                     f"{e['prefill_replicas']} out of range")
            if e["handoffs"] == 0 or e["kv_transfer_bytes"] == 0 \
                    or e["kv_transfer_us"] <= 0:
                fail(f"{where} is disaggregated but never handed off")
        key = (e["replicas"], e["router"], e["qps"],
               bool(e["disaggregated"]))
        if key in cells:
            fail(f"{where} duplicates cell {key}")
        cells[key] = e
    for (replicas, router, qps, disagg), e in cells.items():
        if not disagg:
            continue
        agg = cells.get((replicas, router, qps, False))
        if agg is None:
            fail(f"{name}: fleet_sweep disaggregated cell ({replicas} "
                 f"replicas, {router}) has no aggregated twin")
        if e["max_qps_slo"] > 0 and agg["max_qps_slo"] > 0 and \
                e["max_qps_slo"] <= agg["max_qps_slo"]:
            fail(f"{name}: fleet_sweep ({replicas} replicas, {router}) "
                 f"disaggregated max_qps_slo {e['max_qps_slo']} does "
                 f"not beat the aggregated baseline's "
                 f"{agg['max_qps_slo']}")
    if entries:
        print(f"check_bench_json: fleet_sweep OK ({len(entries)} cells)")


def check_disk_cache(doc: dict, name: str) -> None:
    """Semantic checks on the persistent kernel-cache comparison: the
    disk-warm cold start must beat the in-memory-cold one outright, the
    warm run must serve every lookup from disk (zero recompiles), the
    hit/miss/admit counters must be mutually consistent, and the
    serving reports must be byte-identical across tiers — the cache
    moves where artifacts come from, never what they are."""
    e = doc.get("disk_cache")
    if e is None:
        return
    where = f"{name}: disk_cache"
    if e["mem_cold_ms"] <= 0 or e["disk_warm_ms"] <= 0:
        fail(f"{where} has non-positive wall times "
             f"({e['mem_cold_ms']} / {e['disk_warm_ms']} ms)")
    if e["disk_warm_ms"] >= e["mem_cold_ms"]:
        fail(f"{where} disk-warm cold start ({e['disk_warm_ms']} ms) "
             f"is not below the in-memory-cold one "
             f"({e['mem_cold_ms']} ms)")
    want = e["mem_cold_ms"] / e["disk_warm_ms"]
    if not close(e["speedup"], want, rel=1e-3):
        fail(f"{where} speedup {e['speedup']} inconsistent with the "
             f"wall times (want ~{want:.3f})")
    if e["warm_misses"] != 0:
        fail(f"{where} warm run missed {e['warm_misses']} times — a "
             f"warm directory must satisfy every compile")
    if e["cold_admits"] != e["cold_misses"]:
        fail(f"{where} cold run admitted {e['cold_admits']} entries "
             f"for {e['cold_misses']} misses (every miss must admit)")
    # Warm lookups replay the cold run's: its misses plus any
    # cross-replica hits a shared store served during population.
    want_hits = e["cold_misses"] + e.get("cold_hits", 0)
    if e["warm_hits"] != want_hits:
        fail(f"{where} warm run hit {e['warm_hits']} times; the cold "
             f"run's lookups predict {want_hits}")
    if e["reports_identical"] is not True:
        fail(f"{where} serving reports diverged across cache tiers")
    print(f"check_bench_json: disk_cache OK "
          f"({e['speedup']:.2f}x disk-warm vs mem-cold, "
          f"{e['warm_hits']} warm hits)")


def check_router_sweep(doc: dict, name: str) -> None:
    """Semantic checks on the router sweep: utilization fractions in
    range, every policy completed work under the bursty load."""
    entries = doc.get("router_sweep")
    if entries is None:
        return
    seen = set()
    for i, e in enumerate(entries):
        where = f"{name}: router_sweep[{i}]"
        for field in ("util_min", "util_max"):
            if not 0.0 <= e[field] <= 1.0:
                fail(f"{where} {field} {e[field]} outside [0, 1]")
        if not close(e["util_imbalance"],
                     e["util_max"] - e["util_min"]):
            fail(f"{where} util_imbalance inconsistent")
        if e["completed"] <= 0:
            fail(f"{where} completed no requests")
        if e["router"] in seen:
            fail(f"{where} duplicates router '{e['router']}'")
        seen.add(e["router"])
    if entries:
        print(f"check_bench_json: router_sweep OK "
              f"({len(entries)} cells)")


# Categories whose tid-0 spans tile each iteration exactly; their sums
# reproduce the report's busy-time breakdown.
BREAKDOWN_CATS = {
    "prefill": "prefill_us",
    "decode": "decode_us",
    "comm": "comm_us",
    "codebook": "codebook_upload_us",
}


def close(a: float, b: float, rel: float = 1e-6,
          abs_tol: float = 1e-3) -> bool:
    return abs(a - b) <= max(rel * max(abs(a), abs(b)), abs_tol)


def check_trace(trace_path: pathlib.Path):
    """Validate a Chrome trace-event JSON; returns per-category span
    duration sums over track 0 for cross-checking against metrics."""
    try:
        doc = json.loads(trace_path.read_text())
    except json.JSONDecodeError as e:
        fail(f"{trace_path.name} does not parse: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{trace_path.name}: traceEvents missing or empty")
    check_finite(events, f"{trace_path.name}.traceEvents")

    spans_by_tid = {}
    tids_named = set()
    cat_us = {}
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "thread_name":
                tids_named.add(ev.get("tid"))
            continue
        if ph not in ("X", "i"):
            fail(f"{trace_path.name}: event {i} has unknown ph '{ph}'")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{trace_path.name}: event {i} has bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{trace_path.name}: span {i} has bad dur {dur!r}")
            tid = ev.get("tid", 0)
            spans_by_tid.setdefault(tid, []).append((ts, dur, i))
            if tid == 0 and ev.get("cat") in BREAKDOWN_CATS:
                cat_us[ev["cat"]] = cat_us.get(ev["cat"], 0.0) + dur

    if not spans_by_tid:
        fail(f"{trace_path.name}: no spans recorded")

    # Per-track spans must nest: sorted by (start, -dur), every span is
    # either disjoint from or fully contained in the enclosing one.
    tol = 1e-6
    for tid, spans in spans_by_tid.items():
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack = []
        for ts, dur, i in spans:
            end = ts + dur
            while stack and stack[-1] <= ts * (1 + tol) + tol:
                stack.pop()
            if stack and end > stack[-1] * (1 + tol) + tol:
                fail(f"{trace_path.name}: span {i} on tid {tid} "
                     f"overlaps its enclosing span "
                     f"(ends {end}, enclosing ends {stack[-1]})")
            stack.append(end)

    print(f"check_bench_json: {trace_path.name} OK "
          f"({sum(len(s) for s in spans_by_tid.values())} spans on "
          f"{len(spans_by_tid)} tracks, {len(tids_named)} named)")
    return cat_us


def check_metrics(metrics_path: pathlib.Path, cat_us) -> None:
    """Validate a serving_sim --metrics-json document; cross-check the
    trace's category sums against the report breakdown when given."""
    try:
        doc = json.loads(metrics_path.read_text())
    except json.JSONDecodeError as e:
        fail(f"{metrics_path.name} does not parse: {e}")
    check_finite(doc, metrics_path.name)
    report = doc.get("report")
    if not isinstance(report, dict):
        fail(f"{metrics_path.name}: 'report' object missing")
    for key in ("busy_time_us", "prefill_us", "decode_us", "comm_us",
                "codebook_upload_us", "sim_time_us", "tp_degree"):
        if key not in report:
            fail(f"{metrics_path.name}: report lacks '{key}'")
    busy = report["busy_time_us"]
    parts = (report["prefill_us"] + report["decode_us"] +
             report["comm_us"] + report["codebook_upload_us"])
    if not close(parts, busy):
        fail(f"{metrics_path.name}: breakdown sums to {parts}, "
             f"busy_time_us is {busy}")
    if not isinstance(doc.get("metrics"), dict):
        fail(f"{metrics_path.name}: 'metrics' registry object missing")
    if cat_us is not None:
        for cat, field in BREAKDOWN_CATS.items():
            want = report[field]
            got = cat_us.get(cat, 0.0)
            if not close(got, want):
                fail(f"{metrics_path.name}: trace category '{cat}' "
                     f"sums to {got}, report {field} is {want}")
        print("check_bench_json: trace category sums match the "
              "report breakdown")
    print(f"check_bench_json: {metrics_path.name} OK "
          f"(busy {busy / 1e6:.3f} s)")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--no-run", action="store_true",
                        help="validate existing JSONs without running "
                             "the benches")
    parser.add_argument("--skip-bench", action="store_true",
                        help="skip bench JSON validation entirely")
    parser.add_argument("--trace", type=pathlib.Path,
                        help="validate a serving_sim --trace-out JSON")
    parser.add_argument("--metrics", type=pathlib.Path,
                        help="validate a serving_sim --metrics-json "
                             "JSON")
    args = parser.parse_args()

    cat_us = None
    if args.trace:
        if not args.trace.is_file():
            fail(f"trace file '{args.trace}' does not exist")
        cat_us = check_trace(args.trace)
    if args.metrics:
        if not args.metrics.is_file():
            fail(f"metrics file '{args.metrics}' does not exist")
        check_metrics(args.metrics, cat_us)

    if args.skip_bench:
        print("check_bench_json: bench validation skipped")
        return

    build = pathlib.Path(args.build_dir)
    if not build.is_dir():
        fail(f"build dir '{build}' does not exist")

    if not args.no_run:
        for cmd, _ in SMOKE_TARGETS:
            exe = build / cmd[0]
            if not exe.exists():
                fail(f"bench target '{exe}' not built")
            print(f"check_bench_json: running {' '.join(cmd)}")
            proc = subprocess.run(cmd, cwd=build,
                                  stdout=subprocess.DEVNULL)
            if proc.returncode != 0:
                fail(f"{' '.join(cmd)} exited {proc.returncode}")

    expected = {json_name for _, json_name in SMOKE_TARGETS}
    found = {p.name for p in build.glob("BENCH_*.json")}
    missing = expected - found
    if missing:
        fail(f"expected bench JSONs not emitted: {sorted(missing)}")

    for path in sorted(build.glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError as e:
            fail(f"{path.name} does not parse: {e}")
        if not isinstance(doc, dict) or not doc:
            fail(f"{path.name}: top level must be a non-empty object")
        check_finite(doc, path.name)
        check_sweeps_non_empty(doc, path.name)
        check_required(doc, path.name)
        check_prefix_sweep(doc, path.name)
        check_kv_sweep(doc, path.name)
        check_disk_cache(doc, path.name)
        check_fleet_sweep(doc, path.name)
        check_router_sweep(doc, path.name)
        print(f"check_bench_json: {path.name} OK "
              f"({len(doc)} top-level keys)")
    print("check_bench_json: all bench JSONs valid")


if __name__ == "__main__":
    main()
