#!/usr/bin/env python3
"""Bench-JSON schema check for the perf trajectory.

Runs the bench smoke targets, then validates every BENCH_*.json they
emit: the file must parse, every number must be finite, every key
ending in "sweep" (or named in REQUIRED below) must be a non-empty
list, and per-file required keys must be present.  CI uploads the
validated JSONs as workflow artifacts, so a silently malformed bench
report fails the pipeline instead of poisoning the perf history.

Usage:
    check_bench_json.py [--build-dir BUILD] [--no-run]

--no-run skips executing the benches and only validates the JSON files
already present in the build directory.
"""

import argparse
import json
import math
import pathlib
import subprocess
import sys

# Bench targets to execute (relative to the build dir) and the JSON
# files they are expected to leave behind.
SMOKE_TARGETS = [
    (["./bench_serving", "--smoke"], "BENCH_serving.json"),
    (["./bench_host_throughput"], "BENCH_host.json"),
]

# Per-file required keys: path of nested keys that must exist.  A
# trailing list marker "[]" requires a non-empty list whose entries all
# carry the listed fields.
REQUIRED = {
    "BENCH_serving.json": {
        "plan_cache": ["cold_ms", "cached_ms", "speedup",
                       "cold_hit_rate", "cached_hit_rate"],
        "tp_sweep[]": ["scheme", "degree", "tokens_per_sec",
                       "tbt_p95_ms", "ttft_p95_ms", "comm_fraction",
                       "kv_capacity_gb"],
    },
    "BENCH_host.json": {},
}


def fail(msg: str) -> None:
    print(f"check_bench_json: ERROR: {msg}", file=sys.stderr)
    sys.exit(1)


def check_finite(node, path: str) -> None:
    """Every number in the document must be finite (printf'ing a NaN or
    inf into a report is exactly the silent corruption this guards)."""
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        if not math.isfinite(node):
            fail(f"non-finite number at {path}: {node}")
    elif isinstance(node, dict):
        for key, value in node.items():
            check_finite(value, f"{path}.{key}")
    elif isinstance(node, list):
        for i, value in enumerate(node):
            check_finite(value, f"{path}[{i}]")


def check_sweeps_non_empty(node, path: str) -> None:
    """Any key ending in 'sweep' must be a non-empty list — an empty
    sweep means the bench silently skipped its measurements."""
    if isinstance(node, dict):
        for key, value in node.items():
            if key.endswith("sweep"):
                if not isinstance(value, list) or not value:
                    fail(f"sweep {path}.{key} is empty or not a list")
            check_sweeps_non_empty(value, f"{path}.{key}")
    elif isinstance(node, list):
        for i, value in enumerate(node):
            check_sweeps_non_empty(value, f"{path}[{i}]")


def check_required(doc: dict, name: str) -> None:
    for key, fields in REQUIRED.get(name, {}).items():
        if key.endswith("[]"):
            key = key[:-2]
            entries = doc.get(key)
            if not isinstance(entries, list) or not entries:
                fail(f"{name}: required list '{key}' missing or empty")
            for i, entry in enumerate(entries):
                for field in fields:
                    if field not in entry:
                        fail(f"{name}: {key}[{i}] lacks '{field}'")
        else:
            obj = doc.get(key)
            if not isinstance(obj, dict):
                fail(f"{name}: required object '{key}' missing")
            for field in fields:
                if field not in obj:
                    fail(f"{name}: {key} lacks '{field}'")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--no-run", action="store_true",
                        help="validate existing JSONs without running "
                             "the benches")
    args = parser.parse_args()
    build = pathlib.Path(args.build_dir)
    if not build.is_dir():
        fail(f"build dir '{build}' does not exist")

    if not args.no_run:
        for cmd, _ in SMOKE_TARGETS:
            exe = build / cmd[0]
            if not exe.exists():
                fail(f"bench target '{exe}' not built")
            print(f"check_bench_json: running {' '.join(cmd)}")
            proc = subprocess.run(cmd, cwd=build,
                                  stdout=subprocess.DEVNULL)
            if proc.returncode != 0:
                fail(f"{' '.join(cmd)} exited {proc.returncode}")

    expected = {json_name for _, json_name in SMOKE_TARGETS}
    found = {p.name for p in build.glob("BENCH_*.json")}
    missing = expected - found
    if missing:
        fail(f"expected bench JSONs not emitted: {sorted(missing)}")

    for path in sorted(build.glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError as e:
            fail(f"{path.name} does not parse: {e}")
        if not isinstance(doc, dict) or not doc:
            fail(f"{path.name}: top level must be a non-empty object")
        check_finite(doc, path.name)
        check_sweeps_non_empty(doc, path.name)
        check_required(doc, path.name)
        print(f"check_bench_json: {path.name} OK "
              f"({len(doc)} top-level keys)")
    print("check_bench_json: all bench JSONs valid")


if __name__ == "__main__":
    main()
