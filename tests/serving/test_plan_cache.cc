/**
 * @file
 * Serving-simulator plan-cache tests: steady-state decode pricing is
 * almost entirely plan-cache hits, reports are bit-identical whether
 * the cache retains artifacts or not, and a pre-warmed shared engine
 * prices from hits starting with the first iteration.
 */
#include <gtest/gtest.h>

#include "compiler/engine.h"
#include "serving/simulator.h"

namespace vqllm::serving {
namespace {

SimulatorConfig
vqConfig()
{
    SimulatorConfig cfg;
    cfg.scheme = llm::QuantScheme::VQ2;
    cfg.workload.qps = 4.0;
    cfg.workload.duration_s = 5.0;
    cfg.workload.seed = 7;
    return cfg;
}

void
expectReportsIdentical(const ServingReport &a, const ServingReport &b)
{
    EXPECT_EQ(a.sim_time_us, b.sim_time_us);
    EXPECT_EQ(a.busy_time_us, b.busy_time_us);
    EXPECT_EQ(a.tokens_per_sec, b.tokens_per_sec);
    EXPECT_EQ(a.ttft.p50_us, b.ttft.p50_us);
    EXPECT_EQ(a.ttft.p99_us, b.ttft.p99_us);
    EXPECT_EQ(a.tbt.p50_us, b.tbt.p50_us);
    EXPECT_EQ(a.tbt.p99_us, b.tbt.p99_us);
    EXPECT_EQ(a.e2e.mean_us, b.e2e.mean_us);
    EXPECT_EQ(a.completed_requests, b.completed_requests);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.decode_tokens, b.decode_tokens);
    EXPECT_EQ(a.kv_peak_bytes, b.kv_peak_bytes);
}

TEST(ServingPlanCache, SteadyStateDecodePricesFromCache)
{
    auto report = ServingSimulator(vqConfig()).run();
    ASSERT_GT(report.iterations, 10u);
    // VQ pricing compiles through the engine every iteration; after
    // the first decode iteration the bucketed shapes repeat, so the
    // run-wide hit rate must clear 90% (acceptance criterion).
    EXPECT_GT(report.plan_cache_hits + report.plan_cache_misses, 0u);
    EXPECT_GE(report.planCacheHitRate(), 0.9);
    EXPECT_EQ(report.plan_cache_evictions, 0u);
}

TEST(ServingPlanCache, CachedAndUncachedRunsAreBitIdentical)
{
    // Cache-disabled engine: capacity 0 retains nothing, every
    // compile re-runs the full pipeline.
    compiler::EngineOptions cold_opts;
    cold_opts.cache_capacity = 0;
    compiler::Engine cold(gpusim::rtx4090(), cold_opts);

    auto cached_cfg = vqConfig();
    auto cold_cfg = vqConfig();
    cold_cfg.engine = &cold;

    auto cached_report = ServingSimulator(cached_cfg).run();
    auto cold_report = ServingSimulator(cold_cfg).run();

    expectReportsIdentical(cached_report, cold_report);
    EXPECT_EQ(cold_report.plan_cache_hits, 0u);
    EXPECT_GT(cold_report.plan_cache_evictions, 0u);
    // Same lookups either way; the cache only changes who answers.
    EXPECT_EQ(cached_report.plan_cache_hits +
                  cached_report.plan_cache_misses,
              cold_report.plan_cache_misses);
}

TEST(ServingPlanCache, WarmSharedEngineHitsFromFirstIteration)
{
    compiler::Engine eng(gpusim::rtx4090());
    auto cfg = vqConfig();
    cfg.engine = &eng;

    auto first = ServingSimulator(cfg).run();
    auto second = ServingSimulator(cfg).run();

    expectReportsIdentical(first, second);
    // The second run re-prices the identical trace against a warm
    // cache: every lookup hits.
    EXPECT_EQ(second.plan_cache_misses, 0u);
    EXPECT_EQ(second.plan_cache_hits,
              first.plan_cache_hits + first.plan_cache_misses);
}

TEST(ServingPlanCache, Fp16SchemeNeverCompiles)
{
    auto cfg = vqConfig();
    cfg.scheme = llm::QuantScheme::FP16;
    auto report = ServingSimulator(cfg).run();
    EXPECT_EQ(report.plan_cache_hits + report.plan_cache_misses, 0u);
    EXPECT_DOUBLE_EQ(report.planCacheHitRate(), 1.0);
}

} // namespace
} // namespace vqllm::serving
