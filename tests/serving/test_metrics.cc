/**
 * @file
 * Tests for the serving metrics: percentile math and report assembly.
 */
#include <gtest/gtest.h>

#include "serving/metrics.h"

namespace vqllm::serving {
namespace {

TEST(Percentile, EmptyAndSingle)
{
    EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 0.99), 7.0);
}

TEST(Percentile, EndpointsAndMedian)
{
    std::vector<double> v = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
}

TEST(Percentile, LinearInterpolationBetweenRanks)
{
    std::vector<double> v = {0, 10};
    EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
    EXPECT_DOUBLE_EQ(percentile(v, 0.95), 9.5);
    std::vector<double> w = {1, 2, 3, 4};
    // rank = 0.5 * 3 = 1.5 -> midway between 2 and 3.
    EXPECT_DOUBLE_EQ(percentile(w, 0.5), 2.5);
}

TEST(Percentile, ClampsQuantile)
{
    std::vector<double> v = {1, 2, 3};
    EXPECT_DOUBLE_EQ(percentile(v, -1.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 2.0), 3.0);
}

TEST(Summarize, UnsortedInputHandled)
{
    auto s = summarize({5, 1, 3, 2, 4});
    EXPECT_EQ(s.count, 5u);
    EXPECT_DOUBLE_EQ(s.mean_us, 3.0);
    EXPECT_DOUBLE_EQ(s.p50_us, 3.0);
    EXPECT_DOUBLE_EQ(s.max_us, 5.0);
}

TEST(Summarize, PercentilesOrdered)
{
    std::vector<double> samples;
    for (int i = 1; i <= 1000; ++i)
        samples.push_back(static_cast<double>(i));
    auto s = summarize(samples);
    EXPECT_LT(s.p50_us, s.p95_us);
    EXPECT_LT(s.p95_us, s.p99_us);
    EXPECT_LE(s.p99_us, s.max_us);
    EXPECT_NEAR(s.p50_us, 500.5, 1.0);
    EXPECT_NEAR(s.p95_us, 950.0, 1.0);
    EXPECT_NEAR(s.p99_us, 990.0, 1.0);
}

TEST(Summarize, EmptyGivesZeros)
{
    auto s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.p99_us, 0.0);
}

TEST(MetricsCollector, AccumulatesCounters)
{
    MetricsCollector m;
    m.recordTtft(100);
    m.recordTbt(10);
    m.recordTbt(20);
    m.recordDecodeTokens(3);
    m.recordPrefillTokens(128);
    m.recordPreemption();
    EXPECT_EQ(m.ttftSamples().size(), 1u);
    EXPECT_EQ(m.tbtSamples().size(), 2u);
    EXPECT_EQ(m.decodeTokens(), 3u);
    EXPECT_EQ(m.prefillTokens(), 128u);
    EXPECT_EQ(m.preemptions(), 1u);
}

TEST(ServingReport, SummaryMentionsKeyNumbers)
{
    ServingReport r;
    r.ttft = summarize({1000.0});
    r.tokens_per_sec = 123.4;
    r.sim_time_us = 2e6;
    r.completed_requests = 42;
    r.kv_peak_bytes = 1500000000;
    r.kv_capacity_bytes = 3000000000;
    auto text = r.summary();
    EXPECT_NE(text.find("123.4"), std::string::npos);
    EXPECT_NE(text.find("completed 42"), std::string::npos);
    EXPECT_NE(text.find("1.50 GB"), std::string::npos);
}

} // namespace
} // namespace vqllm::serving
