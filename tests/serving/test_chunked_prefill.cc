/**
 * @file
 * Tests for chunked prefill: prompt slicing under the chunk budget,
 * mixed prefill/decode iterations, first-token emission on the final
 * slice, KV accounting invariants, and simulator-level determinism of
 * the chunked interleave across host thread counts.
 */
#include <cmath>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "serving/scheduler.h"
#include "serving/simulator.h"

namespace vqllm::serving {
namespace {

KvBlockPoolConfig
poolCfg(std::uint64_t blocks, std::size_t block_tokens = 4)
{
    KvBlockPoolConfig cfg;
    cfg.block_tokens = block_tokens;
    cfg.bytes_per_token = 1;
    cfg.capacity_bytes = blocks * block_tokens;
    return cfg;
}

Request
makeRequest(std::uint64_t id, double arrival_us, std::size_t prompt,
            std::size_t gen)
{
    Request r;
    r.id = id;
    r.arrival_us = arrival_us;
    r.prompt_len = prompt;
    r.max_new_tokens = gen;
    return r;
}

TEST(ChunkedPrefill, SlicesPromptUnderBudgetAndCompletesOnLastChunk)
{
    ShardedKvPool pool(poolCfg(64), 1);
    SchedulerConfig cfg;
    cfg.chunk_tokens = 32;
    Scheduler sched(cfg, pool);
    auto a = makeRequest(0, 0, 100, 4);
    sched.submit(&a);

    std::size_t processed = 0;
    std::size_t iterations = 0;
    bool saw_last = false;
    while (!saw_last) {
        auto it = sched.next();
        ASSERT_EQ(it.prefill.size(), 1u);
        EXPECT_TRUE(it.decode.empty()); // nothing decodes mid-prefill
        const auto &chunk = it.prefill[0];
        EXPECT_EQ(chunk.req, &a);
        EXPECT_LE(chunk.tokens, cfg.chunk_tokens);
        EXPECT_EQ(chunk.context, processed);
        processed += chunk.tokens;
        saw_last = chunk.last;
        ++iterations;
        ASSERT_LE(iterations, 8u) << "prefill failed to complete";
    }
    // Slices cover the prompt exactly; 100 tokens / 32-budget = 4.
    EXPECT_EQ(processed, 100u);
    EXPECT_EQ(iterations, 4u);
    EXPECT_TRUE(a.prefill_complete);
    // Prompt plus the slot of the token the final slice emits.
    EXPECT_EQ(pool.seqTokens(0), 101u);
    EXPECT_EQ(a.prefilled_tokens, 101u);

    // With the prefill done the next iteration decodes.
    auto it = sched.next();
    EXPECT_TRUE(it.prefill.empty());
    ASSERT_EQ(it.decode.size(), 1u);
    EXPECT_EQ(pool.seqTokens(0), 102u);
}

TEST(ChunkedPrefill, MixesDecodeAndPrefillInOneIteration)
{
    ShardedKvPool pool(poolCfg(64), 1);
    SchedulerConfig cfg;
    cfg.chunk_tokens = 16;
    Scheduler sched(cfg, pool);
    auto a = makeRequest(0, 0, 8, 8);
    sched.submit(&a);
    auto it = sched.next(); // a prefills whole prompt (8 <= 16)
    ASSERT_EQ(it.prefill.size(), 1u);
    EXPECT_TRUE(it.prefill[0].last);

    auto b = makeRequest(1, 1, 40, 4);
    sched.submit(&b);
    // One iteration now decodes a AND prefills a 16-token slice of b.
    it = sched.next();
    ASSERT_EQ(it.decode.size(), 1u);
    EXPECT_EQ(it.decode[0], &a);
    ASSERT_EQ(it.prefill.size(), 1u);
    EXPECT_EQ(it.prefill[0].req, &b);
    EXPECT_EQ(it.prefill[0].tokens, 16u);
    EXPECT_FALSE(it.prefill[0].last);
    EXPECT_FALSE(b.prefill_complete);
}

TEST(ChunkedPrefill, BudgetSpreadsAcrossContinueAndAdmission)
{
    ShardedKvPool pool(poolCfg(64), 1);
    SchedulerConfig cfg;
    cfg.chunk_tokens = 24;
    Scheduler sched(cfg, pool);
    auto a = makeRequest(0, 0, 40, 4);
    sched.submit(&a);
    ASSERT_EQ(sched.next().prefill.size(), 1u); // a: 24 of 40
    auto b = makeRequest(1, 1, 30, 4);
    sched.submit(&b);

    // a's remaining 16 tokens complete; the leftover 8-token budget
    // starts b.
    auto it = sched.next();
    ASSERT_EQ(it.prefill.size(), 2u);
    EXPECT_EQ(it.prefill[0].req, &a);
    EXPECT_EQ(it.prefill[0].tokens, 16u);
    EXPECT_TRUE(it.prefill[0].last);
    EXPECT_EQ(it.prefill[1].req, &b);
    EXPECT_EQ(it.prefill[1].tokens, 8u);
    EXPECT_FALSE(it.prefill[1].last);
}

TEST(ChunkedPrefill, SimulatorCompletesEveryRequestAndHoldsInvariants)
{
    SimulatorConfig cfg;
    cfg.scheme = llm::QuantScheme::EWQ4;
    cfg.workload.qps = 6;
    cfg.workload.duration_s = 5;
    cfg.workload.prompt_len_median = 1024;
    cfg.scheduler.chunk_tokens = 256;
    auto trace = generateWorkload(cfg.workload);
    ServingSimulator sim(cfg);
    auto report = sim.run(trace); // internal KV asserts run every iter
    EXPECT_EQ(report.completed_requests + report.rejected_requests,
              trace.size());
    for (const auto &r : trace) {
        if (r.state == RequestState::Rejected)
            continue;
        EXPECT_EQ(r.state, RequestState::Finished);
        EXPECT_EQ(r.generated, r.max_new_tokens);
        EXPECT_GE(r.first_token_us, r.arrival_us);
    }
}

TEST(ChunkedPrefill, InterleaveDeterministicAcrossThreadCounts)
{
    SimulatorConfig cfg;
    cfg.scheme = llm::QuantScheme::EWQ4;
    cfg.workload.qps = 8;
    cfg.workload.duration_s = 5;
    cfg.workload.prompt_len_median = 1024;
    cfg.scheduler.chunk_tokens = 256;

    // The chunked interleave must be bit-identical whether the host
    // runtime is serial (VQLLM_THREADS=1 equivalent) or parallel.
    par::setThreads(1);
    auto serial = ServingSimulator(cfg).run();
    par::setThreads(0); // revert to VQLLM_THREADS / hardware
    auto parallel = ServingSimulator(cfg).run();
    EXPECT_EQ(serial.sim_time_us, parallel.sim_time_us);
    EXPECT_EQ(serial.busy_time_us, parallel.busy_time_us);
    EXPECT_EQ(serial.tbt.p99_us, parallel.tbt.p99_us);
    EXPECT_EQ(serial.ttft.p95_us, parallel.ttft.p95_us);
    EXPECT_EQ(serial.iterations, parallel.iterations);
    EXPECT_EQ(serial.preemptions, parallel.preemptions);

    // And runMany (which fans simulations out on the pool) must agree
    // with the direct runs.
    auto many = ServingSimulator::runMany({cfg, cfg});
    ASSERT_EQ(many.size(), 2u);
    EXPECT_EQ(many[0].sim_time_us, serial.sim_time_us);
    EXPECT_EQ(many[1].iterations, serial.iterations);
}

TEST(Workload, ArrivalGapsAreAlwaysFinite)
{
    WorkloadConfig cfg;
    cfg.qps = 2000; // dense trace: many uniform() draws
    cfg.duration_s = 5;
    cfg.seed = 99;
    auto trace = generateWorkload(cfg);
    ASSERT_GT(trace.size(), 5000u);
    double prev = 0;
    for (const auto &r : trace) {
        ASSERT_TRUE(std::isfinite(r.arrival_us));
        ASSERT_GE(r.arrival_us, prev);
        prev = r.arrival_us;
    }
}

TEST(Workload, StampsPrioritiesAndDeadlines)
{
    WorkloadConfig cfg;
    cfg.qps = 50;
    cfg.duration_s = 5;
    cfg.priority_levels = 3;
    cfg.ttft_deadline_us = 2e6;
    cfg.tbt_deadline_us = 150e3;
    auto trace = generateWorkload(cfg);
    ASSERT_FALSE(trace.empty());
    bool nonzero_priority = false;
    for (const auto &r : trace) {
        EXPECT_GE(r.priority, 0);
        EXPECT_LT(r.priority, 3);
        nonzero_priority |= r.priority > 0;
        EXPECT_EQ(r.ttft_deadline_us, 2e6);
        EXPECT_EQ(r.tbt_deadline_us, 150e3);
    }
    EXPECT_TRUE(nonzero_priority);
}

} // namespace
} // namespace vqllm::serving
