/**
 * @file
 * KV-scheme decoupling tests: selecting a KV storage scheme
 * independently of the weight scheme must (1) leave FP16-KV serving
 * reports bit-identical to the pre-KvScheme defaults, (2) multiply
 * block-pool token capacity by the compression factor at equal pool
 * bytes, (3) stay deterministic across host thread counts and TP
 * degrees, and (4) compose with the cross-request prefix cache.  The
 * JSONL workload-trace loader (`--trace-in`) is covered here too:
 * well-formed traces replay sorted with fresh ids and stamped
 * deadlines, malformed lines are hard errors.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/parallel.h"
#include "llm/model_config.h"
#include "serving/kv_block_pool.h"
#include "serving/request.h"
#include "serving/sharded_kv_pool.h"
#include "serving/simulator.h"

namespace vqllm::serving {
namespace {

struct ThreadGuard
{
    ~ThreadGuard() { par::setThreads(0); }
};

SimulatorConfig
baseConfig(llm::QuantScheme scheme)
{
    SimulatorConfig cfg;
    cfg.scheme = scheme;
    cfg.workload.qps = 6;
    cfg.workload.duration_s = 4;
    return cfg;
}

/** A temp JSONL trace file that removes itself. */
class TraceFile
{
  public:
    explicit TraceFile(const std::string &content)
        : path_(std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()) +
                "_trace.jsonl")
    {
        std::ofstream out(path_);
        out << content;
    }
    ~TraceFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

// ---------------------------------------------------------------------
// KvScheme API

TEST(KvScheme, DefaultsFollowTheWeightScheme)
{
    EXPECT_EQ(llm::defaultKvScheme(llm::QuantScheme::FP16),
              llm::KvScheme::FP16);
    EXPECT_EQ(llm::defaultKvScheme(llm::QuantScheme::EWQ4),
              llm::KvScheme::INT4);
    EXPECT_EQ(llm::defaultKvScheme(llm::QuantScheme::VQ4),
              llm::KvScheme::VQ4);
    EXPECT_EQ(llm::defaultKvScheme(llm::QuantScheme::VQ2),
              llm::KvScheme::VQ2);
    // The legacy weight-scheme helpers are exactly the KvScheme
    // helpers through defaultKvScheme — the parity the serving layer
    // relies on.
    for (auto ws : llm::kAllQuantSchemes) {
        EXPECT_EQ(llm::schemeKvScale(ws),
                  llm::kvSchemeScale(llm::defaultKvScheme(ws)));
        EXPECT_EQ(llm::schemeKvBytesPerToken(llm::llama7b(), ws),
                  llm::kvSchemeBytesPerToken(
                      llm::llama7b(), llm::defaultKvScheme(ws)));
    }
}

TEST(KvScheme, ScalesAndBytesPerToken)
{
    const auto &model = llm::llama7b();
    EXPECT_EQ(llm::kvSchemeScale(llm::KvScheme::FP16), 1.0);
    EXPECT_EQ(llm::kvSchemeBytesPerToken(model, llm::KvScheme::FP16),
              model.kvCacheBytesFp16(1, 1));
    for (auto kv : llm::kAllKvSchemes) {
        double scale = llm::kvSchemeScale(kv);
        EXPECT_GT(scale, 0.0);
        EXPECT_LE(scale, 1.0);
        EXPECT_EQ(llm::kvSchemeBytesPerToken(model, kv),
                  static_cast<std::uint64_t>(
                      static_cast<double>(model.kvCacheBytesFp16(1, 1)) *
                      scale));
    }
    // Compression ordering: VQ2 < VQ4 < INT4 < FP16.
    EXPECT_LT(llm::kvSchemeScale(llm::KvScheme::VQ2),
              llm::kvSchemeScale(llm::KvScheme::VQ4));
    EXPECT_LT(llm::kvSchemeScale(llm::KvScheme::VQ4),
              llm::kvSchemeScale(llm::KvScheme::INT4));
    EXPECT_LT(llm::kvSchemeScale(llm::KvScheme::INT4), 1.0);
    // VQ4 compresses at least 2x — the capacity headline the bench
    // sweep asserts end to end.
    EXPECT_LE(llm::kvSchemeScale(llm::KvScheme::VQ4), 0.5);
}

TEST(KvScheme, ParseRoundTripsTokens)
{
    for (auto kv : llm::kAllKvSchemes) {
        llm::KvScheme parsed;
        ASSERT_TRUE(llm::parseKvScheme(llm::kvSchemeToken(kv), &parsed))
            << llm::kvSchemeToken(kv);
        EXPECT_EQ(parsed, kv);
    }
    llm::KvScheme parsed;
    EXPECT_TRUE(llm::parseKvScheme("VQ4", &parsed)); // case-insensitive
    EXPECT_EQ(parsed, llm::KvScheme::VQ4);
    EXPECT_FALSE(llm::parseKvScheme("fp8", &parsed));
    EXPECT_FALSE(llm::parseKvScheme("", &parsed));
}

// ---------------------------------------------------------------------
// FP16-KV bit parity

TEST(KvSchemeParity, ExplicitFp16KvIsByteIdenticalToDefault)
{
    auto plain = baseConfig(llm::QuantScheme::FP16);
    auto explicit_cfg = plain;
    explicit_cfg.kv_scheme = llm::KvScheme::FP16;
    auto a = ServingSimulator(plain).run();
    auto b = ServingSimulator(explicit_cfg).run();
    EXPECT_EQ(a.json(), b.json());
    EXPECT_EQ(a.summary(), b.summary());
    // FP16 KV emits no kv_scheme section at all — the JSON is the
    // pre-KvScheme document byte for byte.
    EXPECT_EQ(a.json().find("\"kv_scheme\""), std::string::npos);
    EXPECT_EQ(a.kv_scheme, "fp16");
    EXPECT_EQ(a.kv_bytes_per_token,
              llm::llama7b().kvCacheBytesFp16(1, 1));
    EXPECT_EQ(a.kv_capacity_multiplier, 1.0);
    EXPECT_EQ(a.kv_dequant_us, 0.0);
}

TEST(KvSchemeParity, ExplicitDefaultKvMatchesLegacyRunPerScheme)
{
    // Pinning each weight scheme's default KV scheme explicitly must
    // reproduce the legacy (implicit) run byte for byte — the report
    // JSON includes every pricing, pool and plan-cache statistic.
    for (auto ws : {llm::QuantScheme::EWQ4, llm::QuantScheme::VQ4}) {
        auto implicit_cfg = baseConfig(ws);
        auto explicit_cfg = implicit_cfg;
        explicit_cfg.kv_scheme = llm::defaultKvScheme(ws);
        auto a = ServingSimulator(implicit_cfg).run();
        auto b = ServingSimulator(explicit_cfg).run();
        EXPECT_EQ(a.json(), b.json()) << llm::quantSchemeName(ws);
    }
}

// ---------------------------------------------------------------------
// Pool capacity

TEST(KvSchemeCapacity, BlockPoolMultipliesTokensAtEqualBytes)
{
    const auto &model = llm::llama7b();
    KvBlockPoolConfig fp16_cfg;
    fp16_cfg.capacity_bytes = 8ull << 30;
    fp16_cfg.bytes_per_token =
        llm::kvSchemeBytesPerToken(model, llm::KvScheme::FP16);
    KvBlockPool fp16_pool(fp16_cfg);
    for (auto kv : {llm::KvScheme::VQ4, llm::KvScheme::VQ2}) {
        KvBlockPoolConfig cfg = fp16_cfg;
        cfg.bytes_per_token = llm::kvSchemeBytesPerToken(model, kv);
        KvBlockPool pool(cfg);
        double ratio = static_cast<double>(pool.totalBlocks()) /
                       static_cast<double>(fp16_pool.totalBlocks());
        double want = 1.0 / llm::kvSchemeScale(kv);
        EXPECT_GE(ratio, 2.0) << llm::kvSchemeName(kv);
        // Same bytes, smaller tokens: the block count tracks the
        // compression factor to block-granularity rounding.
        EXPECT_NEAR(ratio, want, want * 0.01) << llm::kvSchemeName(kv);
    }
}

TEST(KvSchemeCapacity, ShardedPoolKeepsTheMultiplierPerShard)
{
    const auto &model = llm::llama7b();
    auto mkPool = [&](llm::KvScheme kv) {
        KvBlockPoolConfig cfg;
        cfg.capacity_bytes = 4ull << 30; // per device
        cfg.bytes_per_token = std::max<std::uint64_t>(
            llm::kvSchemeBytesPerToken(model, kv) / 2, 1); // 2-way TP
        return ShardedKvPool(cfg, 2);
    };
    auto fp16 = mkPool(llm::KvScheme::FP16);
    auto vq4 = mkPool(llm::KvScheme::VQ4);
    for (std::size_t s = 0; s < 2; ++s) {
        double ratio =
            static_cast<double>(vq4.shard(s).totalBlocks()) /
            static_cast<double>(fp16.shard(s).totalBlocks());
        EXPECT_GE(ratio, 2.0) << "shard " << s;
    }
}

TEST(KvSchemeCapacity, CompressedKvRaisesPeakConcurrency)
{
    // The end-to-end capacity claim at simulator level: equal pool
    // bytes (FP16 weights in both cells), long contexts, saturating
    // arrivals — VQ4 KV must hold at least 2x the concurrently
    // running sequences of FP16 KV.
    auto mk = [](llm::KvScheme kv) {
        SimulatorConfig cfg;
        cfg.scheme = llm::QuantScheme::FP16;
        cfg.kv_scheme = kv;
        cfg.workload.qps = 8;
        cfg.workload.duration_s = 4;
        cfg.workload.prompt_len_median = 2048;
        cfg.workload.prompt_len_max = 6144;
        cfg.workload.gen_tokens_median = 256;
        cfg.scheduler.chunk_tokens = 512;
        return cfg;
    };
    auto fp16 = ServingSimulator(mk(llm::KvScheme::FP16)).run();
    auto vq4 = ServingSimulator(mk(llm::KvScheme::VQ4)).run();
    EXPECT_EQ(fp16.kv_capacity_bytes, vq4.kv_capacity_bytes);
    EXPECT_GT(fp16.peak_running_seqs, 0u);
    EXPECT_GE(vq4.peak_running_seqs, 2 * fp16.peak_running_seqs);
    EXPECT_GE(vq4.kv_capacity_multiplier, 2.0);
    EXPECT_EQ(vq4.kv_scheme, "vq4");
    // The compressed run's report carries the kv_scheme section.
    EXPECT_NE(vq4.json().find("\"kv_scheme\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Determinism and composition

TEST(KvSchemeDeterminism, VqKvReportsAreThreadCountInvariant)
{
    ThreadGuard guard;
    auto cfg = baseConfig(llm::QuantScheme::FP16);
    cfg.kv_scheme = llm::KvScheme::VQ2;
    par::setThreads(1);
    auto a = ServingSimulator(cfg).run();
    par::setThreads(8);
    auto b = ServingSimulator(cfg).run();
    auto c = ServingSimulator(cfg).run();
    EXPECT_EQ(a.json(), b.json());
    EXPECT_EQ(b.json(), c.json());
}

TEST(KvSchemeDeterminism, VqKvComposesWithTensorParallelism)
{
    ThreadGuard guard;
    auto cfg = baseConfig(llm::QuantScheme::VQ4);
    cfg.kv_scheme = llm::KvScheme::VQ4;
    cfg.tp.degree = 2;
    par::setThreads(1);
    auto a = ServingSimulator(cfg).run();
    par::setThreads(8);
    auto b = ServingSimulator(cfg).run();
    EXPECT_EQ(a.json(), b.json());
    EXPECT_EQ(a.tp_degree, 2u);
    ASSERT_EQ(a.shards.size(), 2u);
    EXPECT_GT(a.completed_requests, 0u);
    EXPECT_EQ(a.kv_scheme, "vq4");
    // Sharded pools split the compressed bytes/token across KV heads;
    // the aggregate multiplier is still the compression factor.
    EXPECT_GE(a.kv_capacity_multiplier, 2.0);
}

TEST(KvSchemeDeterminism, VqKvComposesWithPrefixCache)
{
    auto mk = [] {
        SimulatorConfig cfg;
        cfg.scheme = llm::QuantScheme::FP16;
        cfg.kv_scheme = llm::KvScheme::VQ2;
        cfg.prefix_cache = true;
        cfg.workload.qps = 6;
        cfg.workload.duration_s = 4;
        cfg.workload.prompt_len_median = 512;
        cfg.workload.prefix_groups = 2;
        cfg.workload.prefix_tokens = 1024;
        cfg.scheduler.chunk_tokens = 512;
        return cfg;
    };
    auto a = ServingSimulator(mk()).run();
    auto b = ServingSimulator(mk()).run();
    EXPECT_GT(a.completed_requests, 0u);
    EXPECT_GT(a.prefix_matched_tokens, 0u);
    EXPECT_GT(a.prefix_hit_rate, 0.0);
    EXPECT_EQ(a.json(), b.json());
}

// ---------------------------------------------------------------------
// JSONL workload-trace replay

TEST(WorkloadTrace, ReplaysSortedWithFreshIdsAndDeadlines)
{
    TraceFile file(
        "{\"arrival_us\": 2000, \"prompt_len\": 64, \"output_len\": 8}\n"
        "\n"
        "{\"arrival_us\": 500.5, \"prompt_len\": 128, "
        "\"output_len\": 16, \"group\": 3}\n"
        "  \n"
        "{\"arrival_us\": 500.5, \"prompt_len\": 32, \"output_len\": 4}\n");
    WorkloadConfig cfg;
    cfg.trace_path = file.path();
    cfg.ttft_deadline_us = 1e6;
    cfg.tbt_deadline_us = 2e5;
    auto trace = generateWorkload(cfg);
    ASSERT_EQ(trace.size(), 3u);
    // Sorted by arrival; equal arrivals keep file order; ids reissued.
    EXPECT_EQ(trace[0].arrival_us, 500.5);
    EXPECT_EQ(trace[0].prompt_len, 128u);
    EXPECT_EQ(trace[0].codebook_group, 3u);
    EXPECT_EQ(trace[1].arrival_us, 500.5);
    EXPECT_EQ(trace[1].prompt_len, 32u);
    EXPECT_EQ(trace[2].arrival_us, 2000.0);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(trace[i].id, i);
        EXPECT_EQ(trace[i].ttft_deadline_us, 1e6);
        EXPECT_EQ(trace[i].tbt_deadline_us, 2e5);
    }
}

TEST(WorkloadTrace, DrivesAFullSimulation)
{
    std::string lines;
    for (int i = 0; i < 12; ++i)
        lines += "{\"arrival_us\": " + std::to_string(i * 250000) +
                 ", \"prompt_len\": 256, \"output_len\": 32}\n";
    TraceFile file(lines);
    auto cfg = baseConfig(llm::QuantScheme::VQ4);
    cfg.workload.trace_path = file.path();
    auto a = ServingSimulator(cfg).run();
    auto b = ServingSimulator(cfg).run();
    EXPECT_EQ(a.completed_requests, 12u);
    EXPECT_EQ(a.json(), b.json());
}

TEST(WorkloadTraceDeath, MalformedLinesAreHardErrors)
{
    WorkloadConfig cfg;
    {
        TraceFile file("{\"arrival_us\": 0, \"prompt_len\": 64}\n");
        cfg.trace_path = file.path();
        EXPECT_DEATH(generateWorkload(cfg), "missing field 'output_len'");
    }
    {
        TraceFile file("not json at all\n");
        cfg.trace_path = file.path();
        EXPECT_DEATH(generateWorkload(cfg), "malformed trace line 1");
    }
    {
        TraceFile file("{\"arrival_us\": -5, \"prompt_len\": 64, "
                       "\"output_len\": 8}\n");
        cfg.trace_path = file.path();
        EXPECT_DEATH(generateWorkload(cfg), "arrival_us");
    }
    {
        TraceFile file("{\"arrival_us\": 0, \"prompt_len\": 3.5, "
                       "\"output_len\": 8}\n");
        cfg.trace_path = file.path();
        EXPECT_DEATH(generateWorkload(cfg), "non-negative integer");
    }
    {
        TraceFile file("{\"arrival_us\": 0, \"prompt_len\": 0, "
                       "\"output_len\": 8}\n");
        cfg.trace_path = file.path();
        EXPECT_DEATH(generateWorkload(cfg), "must be positive");
    }
    cfg.trace_path = "definitely_missing_trace.jsonl";
    EXPECT_DEATH(generateWorkload(cfg), "cannot open workload trace");
}

} // namespace
} // namespace vqllm::serving
