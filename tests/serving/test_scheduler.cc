/**
 * @file
 * Tests for the continuous-batching scheduler: batch formation, prefill
 * admission, preemption under KV pressure, and end-to-end determinism
 * of the simulator under a fixed seed.
 */
#include <gtest/gtest.h>

#include "serving/scheduler.h"
#include "serving/simulator.h"

namespace vqllm::serving {
namespace {

KvBlockPoolConfig
poolCfg(std::uint64_t blocks, std::size_t block_tokens = 4)
{
    KvBlockPoolConfig cfg;
    cfg.block_tokens = block_tokens;
    cfg.bytes_per_token = 1;
    cfg.capacity_bytes = blocks * block_tokens;
    return cfg;
}

Request
makeRequest(std::uint64_t id, double arrival_us, std::size_t prompt,
            std::size_t gen)
{
    Request r;
    r.id = id;
    r.arrival_us = arrival_us;
    r.prompt_len = prompt;
    r.max_new_tokens = gen;
    return r;
}

TEST(Scheduler, PrefillBeforeDecode)
{
    ShardedKvPool pool(poolCfg(64), 1);
    Scheduler sched(SchedulerConfig{}, pool);
    auto a = makeRequest(0, 0, 8, 4);
    sched.submit(&a);

    auto it1 = sched.next();
    ASSERT_EQ(it1.prefill.size(), 1u);
    EXPECT_TRUE(it1.decode.empty());
    EXPECT_EQ(it1.prefill[0].tokens, 8u); // prompt tokens processed
    EXPECT_TRUE(it1.prefill[0].last);
    EXPECT_EQ(a.state, RequestState::Running);
    // Prompt plus the slot of the first token the prefill emits.
    EXPECT_EQ(pool.seqTokens(0), 9u);

    auto it2 = sched.next();
    EXPECT_TRUE(it2.prefill.empty());
    ASSERT_EQ(it2.decode.size(), 1u);
    EXPECT_EQ(pool.seqTokens(0), 10u); // decode appended one token
}

TEST(Scheduler, PrefillBatchRespectsTokenBudget)
{
    ShardedKvPool pool(poolCfg(64), 1);
    SchedulerConfig cfg;
    cfg.max_prefill_tokens = 10;
    Scheduler sched(cfg, pool);
    auto a = makeRequest(0, 0, 6, 2);
    auto b = makeRequest(1, 1, 4, 2);
    auto c = makeRequest(2, 2, 4, 2);
    sched.submit(&a);
    sched.submit(&b);
    sched.submit(&c);

    auto it = sched.next();
    // a (6) + b (4) hit the 10-token budget; c waits.
    ASSERT_EQ(it.prefill.size(), 2u);
    EXPECT_EQ(it.prefill[0].req, &a);
    EXPECT_EQ(it.prefill[1].req, &b);
    EXPECT_EQ(sched.waitingCount(), 1u);
}

TEST(Scheduler, OversizedPromptAdmittedAlone)
{
    ShardedKvPool pool(poolCfg(64), 1);
    SchedulerConfig cfg;
    cfg.max_prefill_tokens = 8;
    Scheduler sched(cfg, pool);
    auto a = makeRequest(0, 0, 20, 2); // longer than the budget
    sched.submit(&a);
    auto it = sched.next();
    ASSERT_EQ(it.prefill.size(), 1u);
}

TEST(Scheduler, AdmissionIsFcfsNoHoleSkipping)
{
    ShardedKvPool pool(poolCfg(8), 1); // 32 token slots
    Scheduler sched(SchedulerConfig{}, pool);
    auto a = makeRequest(0, 0, 24, 2);
    auto b = makeRequest(1, 1, 24, 2); // does not fit beside a
    auto c = makeRequest(2, 2, 4, 2);  // would fit, but is younger than b
    sched.submit(&a);
    sched.submit(&b);
    sched.submit(&c);

    auto it = sched.next();
    ASSERT_EQ(it.prefill.size(), 1u);
    EXPECT_EQ(it.prefill[0].req, &a);
    // b blocks the queue head; c must not jump it.
    auto it2 = sched.next();
    EXPECT_TRUE(it2.prefill.empty());
    EXPECT_EQ(it2.decode.size(), 1u);
    EXPECT_EQ(sched.waitingCount(), 2u);
}

TEST(Scheduler, ImpossibleRequestRejectedAtSubmit)
{
    ShardedKvPool pool(poolCfg(4), 1); // 16 token slots total
    Scheduler sched(SchedulerConfig{}, pool);
    auto a = makeRequest(0, 0, 20, 4); // can never fit
    sched.submit(&a);
    EXPECT_EQ(a.state, RequestState::Rejected);
    EXPECT_EQ(sched.rejectedCount(), 1u);
    EXPECT_TRUE(sched.idle());
}

TEST(Scheduler, DecodePreemptsLatestArrivalUnderPressure)
{
    ShardedKvPool pool(poolCfg(4, 4), 1); // 4 blocks of 4 tokens
    Scheduler sched(SchedulerConfig{}, pool);
    auto a = makeRequest(0, 0, 7, 8); // 7+1 tokens = 2 blocks, full
    auto b = makeRequest(1, 1, 7, 8); // 7+1 tokens = 2 blocks, full
    sched.submit(&a);
    sched.submit(&b);
    ASSERT_EQ(sched.next().prefill.size(), 2u);

    // Both sequences are block-aligned; the first decode step needs two
    // fresh blocks but none are free: b (latest arrival) is preempted
    // and a decodes.
    auto it = sched.next();
    EXPECT_EQ(it.preempted, 1u);
    ASSERT_EQ(it.decode.size(), 1u);
    EXPECT_EQ(it.decode[0], &a);
    EXPECT_EQ(b.state, RequestState::Preempted);
    EXPECT_EQ(b.preemptions, 1u);
    EXPECT_EQ(pool.seqBlocks(1), 0u); // b's blocks reclaimed
    EXPECT_EQ(sched.waitingCount(), 1u);
}

TEST(Scheduler, PreemptedRequestReadmittedWithContext)
{
    ShardedKvPool pool(poolCfg(4, 4), 1);
    Scheduler sched(SchedulerConfig{}, pool);
    auto a = makeRequest(0, 0, 7, 8);
    auto b = makeRequest(1, 1, 7, 8);
    sched.submit(&a);
    sched.submit(&b);
    sched.next(); // prefill both
    sched.next(); // decode: preempts b
    sched.retire(&a);

    // With a gone, b re-prefills its full context (7 prompt tokens; it
    // had not decoded yet) ahead of any younger request.
    auto it = sched.next();
    ASSERT_EQ(it.prefill.size(), 1u);
    EXPECT_EQ(it.prefill[0].req, &b);
    EXPECT_EQ(b.state, RequestState::Running);
    EXPECT_EQ(pool.seqTokens(1), 8u); // context + first-token slot
}

TEST(Scheduler, SelfPreemptionWhenDecodingHeadIsNewestArrival)
{
    ShardedKvPool pool(poolCfg(8, 4), 1); // 32 token slots
    Scheduler sched(SchedulerConfig{}, pool);
    // Half the pool is held by a sequence the scheduler does not
    // manage, so the lone running request eventually runs out of
    // blocks and — being the newest (only) arrival — must pick itself
    // as the preemption victim without crashing or livelocking.
    ASSERT_TRUE(pool.allocSequence(999, 16));
    auto a = makeRequest(0, 0, 8, 16);
    sched.submit(&a);
    ASSERT_EQ(sched.next().prefill.size(), 1u);

    Scheduler::Iteration it;
    for (int i = 0; i < 20 && it.preempted == 0; ++i)
        it = sched.next();
    ASSERT_EQ(it.preempted, 1u);
    EXPECT_TRUE(it.decode.empty()); // the self-preempted step emits nothing
    EXPECT_EQ(a.state, RequestState::Preempted);
    EXPECT_EQ(a.preemptions, 1u);
    EXPECT_EQ(pool.seqTokens(0), 0u);
    EXPECT_EQ(sched.waitingCount(), 1u);
    EXPECT_EQ(sched.runningCount(), 0u);
}

TEST(Scheduler, PreemptedOlderThanAllRunningReadmitsFirst)
{
    ShardedKvPool pool(poolCfg(4, 4), 1);
    Scheduler sched(SchedulerConfig{}, pool);
    auto a = makeRequest(0, 0, 7, 8);
    auto b = makeRequest(1, 1, 7, 8);
    auto c = makeRequest(2, 2, 8, 4); // younger, still waiting
    sched.submit(&a);
    sched.submit(&b);
    sched.submit(&c);
    ASSERT_EQ(sched.next().prefill.size(), 2u); // a + b fill the pool
    auto it = sched.next();                     // decode preempts b
    ASSERT_EQ(it.preempted, 1u);
    EXPECT_EQ(b.state, RequestState::Preempted);
    sched.retire(&a);

    // b (arrival 1) is now older than everything running (nothing) and
    // waiting (c, arrival 2): it must re-admit ahead of c.
    auto it2 = sched.next();
    ASSERT_EQ(it2.prefill.size(), 1u);
    EXPECT_EQ(it2.prefill[0].req, &b);
    EXPECT_EQ(c.state, RequestState::Waiting);
}

TEST(Scheduler, RetireReleasesBlocksAndRunningSlot)
{
    ShardedKvPool pool(poolCfg(16), 1);
    Scheduler sched(SchedulerConfig{}, pool);
    auto a = makeRequest(0, 0, 8, 2);
    sched.submit(&a);
    sched.next();
    EXPECT_EQ(sched.runningCount(), 1u);
    sched.retire(&a);
    EXPECT_EQ(sched.runningCount(), 0u);
    EXPECT_EQ(pool.usedBlocks(), 0u);
    EXPECT_TRUE(sched.idle());
}

TEST(Scheduler, MaxBatchCapsAdmission)
{
    ShardedKvPool pool(poolCfg(64), 1);
    SchedulerConfig cfg;
    cfg.max_batch = 2;
    cfg.max_prefill_tokens = 1024;
    Scheduler sched(cfg, pool);
    std::vector<Request> reqs;
    for (int i = 0; i < 4; ++i)
        reqs.push_back(makeRequest(i, i, 4, 2));
    for (auto &r : reqs)
        sched.submit(&r);
    auto it = sched.next();
    EXPECT_EQ(it.prefill.size(), 2u);
    EXPECT_EQ(sched.waitingCount(), 2u);
}

// ---------------------------------------------------------------------
// Simulator-level determinism and interleaving.

TEST(ServingSimulator, DeterministicUnderFixedSeed)
{
    SimulatorConfig cfg;
    cfg.scheme = llm::QuantScheme::EWQ4; // cheap pricing, fast test
    cfg.workload.qps = 6;
    cfg.workload.duration_s = 5;
    cfg.workload.seed = 123;

    auto r1 = ServingSimulator(cfg).run();
    auto r2 = ServingSimulator(cfg).run();
    EXPECT_EQ(r1.sim_time_us, r2.sim_time_us);
    EXPECT_EQ(r1.ttft.p95_us, r2.ttft.p95_us);
    EXPECT_EQ(r1.tbt.p99_us, r2.tbt.p99_us);
    EXPECT_EQ(r1.iterations, r2.iterations);
    EXPECT_EQ(r1.preemptions, r2.preemptions);
    EXPECT_EQ(r1.kv_peak_bytes, r2.kv_peak_bytes);
}

TEST(ServingSimulator, DifferentSeedsDiverge)
{
    SimulatorConfig cfg;
    cfg.scheme = llm::QuantScheme::EWQ4;
    cfg.workload.qps = 6;
    cfg.workload.duration_s = 5;
    cfg.workload.seed = 1;
    auto r1 = ServingSimulator(cfg).run();
    cfg.workload.seed = 2;
    auto r2 = ServingSimulator(cfg).run();
    EXPECT_NE(r1.sim_time_us, r2.sim_time_us);
}

TEST(ServingSimulator, CompletesEveryNonRejectedRequest)
{
    SimulatorConfig cfg;
    cfg.scheme = llm::QuantScheme::FP16;
    cfg.workload.qps = 4;
    cfg.workload.duration_s = 5;
    auto trace = generateWorkload(cfg.workload);
    ServingSimulator sim(cfg);
    auto report = sim.run(trace);
    EXPECT_EQ(report.completed_requests + report.rejected_requests,
              trace.size());
    for (const auto &r : trace) {
        if (r.state == RequestState::Rejected)
            continue;
        EXPECT_EQ(r.state, RequestState::Finished);
        EXPECT_EQ(r.generated, r.max_new_tokens);
        EXPECT_GE(r.first_token_us, r.arrival_us);
        EXPECT_GE(r.finish_us, r.first_token_us);
    }
}

TEST(ServingSimulator, TokensPerSecondConsistentWithCounters)
{
    SimulatorConfig cfg;
    cfg.scheme = llm::QuantScheme::EWQ4;
    cfg.workload.qps = 4;
    cfg.workload.duration_s = 5;
    auto report = ServingSimulator(cfg).run();
    ASSERT_GT(report.sim_time_us, 0.0);
    ASSERT_GT(report.busy_time_us, 0.0);
    // Throughput is over busy time — idle fast-forward gaps between
    // arrivals must not dilute it.
    EXPECT_NEAR(report.tokens_per_sec,
                static_cast<double>(report.decode_tokens) /
                    (report.busy_time_us / 1e6),
                1e-9);
    EXPECT_LE(report.busy_time_us, report.sim_time_us);
    EXPECT_NEAR(report.utilization,
                report.busy_time_us / report.sim_time_us, 1e-12);
}

TEST(ServingSimulator, IdleGapsDoNotDiluteThroughput)
{
    // A sparse trace (well under saturation) fast-forwards between
    // requests: busy time must be well below the makespan and the
    // throughput counter must still reflect the busy rate.
    SimulatorConfig cfg;
    cfg.scheme = llm::QuantScheme::EWQ4;
    cfg.workload.qps = 0.5;
    cfg.workload.duration_s = 20;
    auto report = ServingSimulator(cfg).run();
    ASSERT_GT(report.completed_requests, 0u);
    EXPECT_LT(report.busy_time_us, 0.9 * report.sim_time_us);
    EXPECT_GT(report.tokens_per_sec,
              static_cast<double>(report.decode_tokens) /
                  (report.sim_time_us / 1e6));
}

// Workload generator sanity.

TEST(Workload, PoissonTraceIsSortedAndSeeded)
{
    WorkloadConfig cfg;
    cfg.qps = 10;
    cfg.duration_s = 10;
    cfg.seed = 7;
    auto t1 = generateWorkload(cfg);
    auto t2 = generateWorkload(cfg);
    ASSERT_EQ(t1.size(), t2.size());
    ASSERT_FALSE(t1.empty());
    for (std::size_t i = 0; i < t1.size(); ++i) {
        EXPECT_EQ(t1[i].arrival_us, t2[i].arrival_us);
        EXPECT_EQ(t1[i].prompt_len, t2[i].prompt_len);
        EXPECT_EQ(t1[i].codebook_group, t2[i].codebook_group);
        if (i > 0) {
            EXPECT_GE(t1[i].arrival_us, t1[i - 1].arrival_us);
        }
        EXPECT_GE(t1[i].prompt_len, cfg.prompt_len_min);
        EXPECT_LE(t1[i].prompt_len, cfg.prompt_len_max);
        EXPECT_LT(t1[i].codebook_group, cfg.num_codebook_groups);
    }
    // ~qps * duration requests on average.
    EXPECT_GT(t1.size(), 50u);
    EXPECT_LT(t1.size(), 200u);
}

} // namespace
} // namespace vqllm::serving
