/**
 * @file
 * Tests for the tensor-parallel ShardedKvPool facade: all-or-nothing
 * allocation across per-device pools, smallest-free-pool capacity
 * queries, cross-shard rollback accounting, and degree-1 equivalence
 * with a bare KvBlockPool.
 */
#include <gtest/gtest.h>

#include "serving/sharded_kv_pool.h"

namespace vqllm::serving {
namespace {

KvBlockPoolConfig
poolCfg(std::uint64_t capacity_bytes, std::size_t block_tokens,
        std::uint64_t bytes_per_token)
{
    KvBlockPoolConfig cfg;
    cfg.capacity_bytes = capacity_bytes;
    cfg.block_tokens = block_tokens;
    cfg.bytes_per_token = bytes_per_token;
    return cfg;
}

/** Two asymmetric shards: shard 0 holds 64 token slots (16 blocks of
 *  4), shard 1 only 32 (8 blocks of 4, twice the bytes per token) —
 *  shard 1 is always the constraint. */
ShardedKvPool
asymmetricPool()
{
    return ShardedKvPool(
        {poolCfg(64, 4, 1), poolCfg(64, 4, 2)});
}

TEST(ShardedKvPool, Degree1MatchesBarePool)
{
    KvBlockPoolConfig cfg = poolCfg(64, 4, 1);
    KvBlockPool bare(cfg);
    ShardedKvPool sharded(cfg, 1);

    EXPECT_EQ(sharded.degree(), 1u);
    EXPECT_TRUE(bare.allocSequence(0, 9));
    EXPECT_TRUE(sharded.allocSequence(0, 9));
    EXPECT_TRUE(bare.extendSequence(0, 5));
    EXPECT_TRUE(sharded.extendSequence(0, 5));
    EXPECT_TRUE(bare.appendToken(0));
    EXPECT_TRUE(sharded.appendToken(0));
    EXPECT_EQ(sharded.seqTokens(0), bare.seqTokens(0));
    EXPECT_EQ(sharded.freeTokens(), bare.freeTokens());
    EXPECT_EQ(sharded.freeBlocks(), bare.freeBlocks());
    EXPECT_EQ(sharded.extendableTokens(0), bare.extendableTokens(0));
    EXPECT_EQ(sharded.usedBytes(), bare.usedBytes());
    EXPECT_EQ(sharded.peakBytes(), bare.peakBytes());
    bare.freeSequence(0);
    sharded.freeSequence(0);
    EXPECT_EQ(sharded.usedBlocks(), bare.usedBlocks());
    EXPECT_EQ(sharded.stats().cross_shard_rollbacks, 0u);
}

TEST(ShardedKvPool, CapacityQueriesTakeSmallestPool)
{
    ShardedKvPool pool = asymmetricPool();
    EXPECT_EQ(pool.freeTokens(), 32u);   // shard 1: 8 blocks x 4
    EXPECT_EQ(pool.freeBlocks(), 8u);
    EXPECT_TRUE(pool.canEverFit(32));
    EXPECT_FALSE(pool.canEverFit(33)); // fits shard 0, never shard 1
    EXPECT_TRUE(pool.allocSequence(0, 4));
    // Tail slack + free blocks of the most constrained shard.
    EXPECT_EQ(pool.extendableTokens(0), 28u);
}

TEST(ShardedKvPool, AllocIsAllOrNothingAcrossShards)
{
    ShardedKvPool pool = asymmetricPool();
    // 40 tokens fit shard 0 (10 of 16 blocks) but not shard 1 (10 of
    // 8): the whole allocation must fail and leave shard 0 untouched.
    EXPECT_FALSE(pool.allocSequence(0, 40));
    EXPECT_EQ(pool.seqTokens(0), 0u);
    EXPECT_EQ(pool.usedBlocks(), 0u);
    EXPECT_EQ(pool.shard(0).usedBlocks(), 0u);
    EXPECT_EQ(pool.shard(1).usedBlocks(), 0u);
    EXPECT_EQ(pool.stats().cross_shard_rollbacks, 1u);
    EXPECT_EQ(pool.stats().failed_allocs, 1u);
}

TEST(ShardedKvPool, ExtendRollbackRestoresPriorState)
{
    ShardedKvPool pool = asymmetricPool();
    ASSERT_TRUE(pool.allocSequence(0, 8)); // 2 blocks on each shard
    // Extending to 38 tokens needs 10 blocks: fine on shard 0, beyond
    // shard 1's 8 — the facade must restore shard 0's prior 8 tokens.
    EXPECT_FALSE(pool.extendSequence(0, 30));
    EXPECT_EQ(pool.seqTokens(0), 8u);
    EXPECT_EQ(pool.shard(0).seqBlocks(0), 2u);
    EXPECT_EQ(pool.shard(1).seqBlocks(0), 2u);
    EXPECT_EQ(pool.stats().cross_shard_rollbacks, 1u);
    // The sequence still extends within the constrained shard's room.
    EXPECT_TRUE(pool.extendSequence(0, 24)); // 32 total = shard 1 full
    EXPECT_EQ(pool.seqTokens(0), 32u);
    EXPECT_FALSE(pool.appendToken(0));
}

TEST(ShardedKvPool, SymmetricShardsNeverRollBack)
{
    ShardedKvPool pool(poolCfg(64, 4, 1), 4);
    EXPECT_EQ(pool.degree(), 4u);
    EXPECT_TRUE(pool.allocSequence(0, 60));
    EXPECT_FALSE(pool.allocSequence(1, 8)); // fails on shard 0 first
    EXPECT_EQ(pool.stats().failed_allocs, 1u);
    EXPECT_EQ(pool.stats().cross_shard_rollbacks, 0u);
}

TEST(ShardedKvPool, AggregatesSumOverShards)
{
    ShardedKvPool pool = asymmetricPool();
    ASSERT_TRUE(pool.allocSequence(0, 8)); // 2 blocks per shard
    // shard 0: 2 blocks x 4 tokens x 1 B; shard 1: 2 x 4 x 2 B.
    EXPECT_EQ(pool.usedBytes(), 8u + 16u);
    EXPECT_EQ(pool.peakBytes(), 24u);
    EXPECT_EQ(pool.capacityBytes(), 64u + 64u);
    pool.freeSequence(0);
    EXPECT_EQ(pool.usedBytes(), 0u);
    EXPECT_EQ(pool.peakBytes(), 24u); // high-water mark persists
}

TEST(ShardedKvPool, FreeSequenceReleasesEveryShard)
{
    ShardedKvPool pool(poolCfg(64, 4, 1), 3);
    ASSERT_TRUE(pool.allocSequence(7, 10));
    EXPECT_EQ(pool.seqTokens(7), 10u);
    pool.freeSequence(7);
    EXPECT_EQ(pool.seqTokens(7), 0u);
    for (std::size_t i = 0; i < pool.degree(); ++i)
        EXPECT_EQ(pool.shard(i).usedBlocks(), 0u);
}

} // namespace
} // namespace vqllm::serving