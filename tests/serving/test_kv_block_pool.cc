/**
 * @file
 * Tests for the paged KV block pool and the hit-aware LFU codebook
 * residency cache.
 */
#include <gtest/gtest.h>

#include "serving/kv_block_pool.h"

namespace vqllm::serving {
namespace {

KvBlockPoolConfig
smallPool(std::uint64_t blocks, std::size_t block_tokens = 4,
          std::uint64_t bytes_per_token = 8)
{
    KvBlockPoolConfig cfg;
    cfg.block_tokens = block_tokens;
    cfg.bytes_per_token = bytes_per_token;
    cfg.capacity_bytes = blocks * block_tokens * bytes_per_token;
    return cfg;
}

TEST(KvBlockPool, CapacityDerivesFromBytes)
{
    KvBlockPool pool(smallPool(10));
    EXPECT_EQ(pool.totalBlocks(), 10u);
    EXPECT_EQ(pool.freeBlocks(), 10u);
    EXPECT_EQ(pool.blockBytes(), 32u);
}

TEST(KvBlockPool, AllocRoundsUpToBlocks)
{
    KvBlockPool pool(smallPool(10));
    ASSERT_TRUE(pool.allocSequence(1, 5)); // 5 tokens -> 2 blocks of 4
    EXPECT_EQ(pool.seqBlocks(1), 2u);
    EXPECT_EQ(pool.seqTokens(1), 5u);
    EXPECT_EQ(pool.usedBlocks(), 2u);
}

TEST(KvBlockPool, AllocFailsAtomicallyWhenFull)
{
    KvBlockPool pool(smallPool(4));
    ASSERT_TRUE(pool.allocSequence(1, 12)); // 3 blocks
    EXPECT_FALSE(pool.allocSequence(2, 8)); // needs 2, only 1 free
    EXPECT_EQ(pool.usedBlocks(), 3u);
    EXPECT_EQ(pool.seqBlocks(2), 0u);
    EXPECT_EQ(pool.stats().failed_allocs, 1u);
    // The single remaining block still serves a small sequence.
    EXPECT_TRUE(pool.allocSequence(3, 4));
}

TEST(KvBlockPool, AppendTakesBlockOnlyAtBoundary)
{
    KvBlockPool pool(smallPool(4));
    ASSERT_TRUE(pool.allocSequence(1, 3));
    EXPECT_EQ(pool.seqBlocks(1), 1u);
    EXPECT_TRUE(pool.appendToken(1)); // token 4 fills the block
    EXPECT_EQ(pool.seqBlocks(1), 1u);
    EXPECT_TRUE(pool.appendToken(1)); // token 5 crosses the boundary
    EXPECT_EQ(pool.seqBlocks(1), 2u);
    EXPECT_EQ(pool.seqTokens(1), 5u);
}

TEST(KvBlockPool, AppendFailureLeavesSequenceIntact)
{
    KvBlockPool pool(smallPool(2));
    ASSERT_TRUE(pool.allocSequence(1, 8)); // both blocks
    EXPECT_FALSE(pool.appendToken(1));     // preemption signal
    EXPECT_EQ(pool.seqTokens(1), 8u);
    EXPECT_EQ(pool.seqBlocks(1), 2u);
}

TEST(KvBlockPool, ExtendTakesMultipleBlocksAtomically)
{
    KvBlockPool pool(smallPool(4));
    ASSERT_TRUE(pool.allocSequence(1, 3)); // 1 block, 1 slot slack
    EXPECT_EQ(pool.extendableTokens(1), 13u);
    ASSERT_TRUE(pool.extendSequence(1, 7)); // 10 tokens -> 3 blocks
    EXPECT_EQ(pool.seqBlocks(1), 3u);
    EXPECT_EQ(pool.seqTokens(1), 10u);
    // An extension that cannot be fully served changes nothing.
    EXPECT_FALSE(pool.extendSequence(1, 7)); // needs 2 blocks, 1 free
    EXPECT_EQ(pool.seqTokens(1), 10u);
    EXPECT_EQ(pool.usedBlocks(), 3u);
    EXPECT_EQ(pool.extendableTokens(1), 6u); // 2 slack + 1 free block
}

TEST(KvBlockPool, FreeReturnsBlocks)
{
    KvBlockPool pool(smallPool(4));
    ASSERT_TRUE(pool.allocSequence(1, 8));
    ASSERT_TRUE(pool.allocSequence(2, 8));
    pool.freeSequence(1);
    EXPECT_EQ(pool.freeBlocks(), 2u);
    EXPECT_EQ(pool.seqBlocks(1), 0u);
    // Freed blocks are reusable by a new sequence.
    EXPECT_TRUE(pool.allocSequence(3, 8));
    EXPECT_EQ(pool.stats().block_frees, 2u);
}

TEST(KvBlockPool, PeakTracksHighWaterMark)
{
    KvBlockPool pool(smallPool(8));
    ASSERT_TRUE(pool.allocSequence(1, 16)); // 4 blocks
    ASSERT_TRUE(pool.allocSequence(2, 8));  // 2 blocks -> peak 6
    pool.freeSequence(1);
    ASSERT_TRUE(pool.allocSequence(3, 4)); // used 3 < peak
    EXPECT_EQ(pool.stats().peak_used_blocks, 6u);
    EXPECT_EQ(pool.peakBytes(), 6u * pool.blockBytes());
}

TEST(KvBlockPool, InternalFragmentationIsTailSlack)
{
    KvBlockPool pool(smallPool(10));
    EXPECT_DOUBLE_EQ(pool.internalFragmentation(), 0.0);
    ASSERT_TRUE(pool.allocSequence(1, 5)); // 2 blocks, 8 slots, 5 used
    EXPECT_NEAR(pool.internalFragmentation(), 3.0 / 8.0, 1e-12);
    ASSERT_TRUE(pool.appendToken(1)); // 6 of 8
    EXPECT_NEAR(pool.internalFragmentation(), 2.0 / 8.0, 1e-12);
}

TEST(KvBlockPool, CanEverFitAgainstTotalCapacity)
{
    KvBlockPool pool(smallPool(4));
    EXPECT_TRUE(pool.canEverFit(16));
    EXPECT_FALSE(pool.canEverFit(17));
}

// ---- Block sharing (prefix cache substrate) -------------------------

TEST(KvBlockPool, AttachSharesBlocksWithoutConsumingFreeOnes)
{
    KvBlockPool pool(smallPool(8));
    ASSERT_TRUE(pool.allocSequence(1, 8)); // 2 full blocks
    auto blocks = pool.seqBlockIds(1);
    pool.attachSequence(2, blocks, 8);
    EXPECT_EQ(pool.usedBlocks(), 2u); // shared, counted once
    EXPECT_EQ(pool.freeBlocks(), 6u);
    EXPECT_EQ(pool.seqTokens(2), 8u);
    EXPECT_EQ(pool.sharedBlocks(), 2u);
    EXPECT_EQ(pool.blockRefs(blocks[0]), 2u);
    // Pool-level stored tokens count the shared run once; the
    // per-sequence views each see all 8.
    EXPECT_EQ(pool.storedTokens(), 8u);
    pool.freeSequence(1);
    EXPECT_EQ(pool.usedBlocks(), 2u); // still referenced by seq 2
    EXPECT_EQ(pool.sharedBlocks(), 0u);
    pool.freeSequence(2);
    EXPECT_EQ(pool.usedBlocks(), 0u);
    EXPECT_EQ(pool.storedTokens(), 0u);
}

TEST(KvBlockPool, ExtendForksSharedPartialTail)
{
    KvBlockPool pool(smallPool(8));
    ASSERT_TRUE(pool.allocSequence(1, 6)); // 1 full + 1 half block
    auto blocks = pool.seqBlockIds(1);
    pool.attachSequence(2, blocks, 6);
    // Seq 2 writes into the shared tail's slack: the tail must fork
    // (one fresh block), leaving seq 1's view untouched.
    ASSERT_TRUE(pool.extendSequence(2, 1));
    EXPECT_EQ(pool.stats().cow_forks, 1u);
    EXPECT_EQ(pool.seqTokens(1), 6u);
    EXPECT_EQ(pool.seqTokens(2), 7u);
    EXPECT_NE(pool.seqBlockIds(2)[1], blocks[1]);
    EXPECT_EQ(pool.seqBlockIds(2)[0], blocks[0]); // full block stays shared
    EXPECT_EQ(pool.blockRefs(blocks[1]), 1u);     // tail privatized back
    EXPECT_EQ(pool.usedBlocks(), 3u);
    // 4 shared + 2 (seq1 tail) + 3 (seq2 forked tail) stored once each.
    EXPECT_EQ(pool.storedTokens(), 4u + 2u + 3u);
}

TEST(KvBlockPool, ExtendableTokensChargesTheCowFork)
{
    KvBlockPool pool(smallPool(3));
    ASSERT_TRUE(pool.allocSequence(1, 6)); // 2 blocks, 2 slack
    pool.attachSequence(2, pool.seqBlockIds(1), 6);
    // 1 free block, shared tail: the fork consumes it, so seq 2 can
    // only gain the forked tail's slack plus nothing further.
    EXPECT_EQ(pool.extendableTokens(2), 2u);
    ASSERT_TRUE(pool.extendSequence(2, 2));
    EXPECT_EQ(pool.extendableTokens(2), 0u);
    EXPECT_FALSE(pool.appendToken(2));
    // The fork dropped seq 2's reference on seq 1's tail, so seq 1's
    // slack is writable again even with zero free blocks.
    EXPECT_EQ(pool.extendableTokens(1), 2u);
}

TEST(KvBlockPool, UndoExtendRestoresSharingExactly)
{
    KvBlockPool pool(smallPool(8));
    ASSERT_TRUE(pool.allocSequence(1, 6));
    auto blocks = pool.seqBlockIds(1);
    pool.attachSequence(2, blocks, 6);
    std::size_t stored_before = pool.storedTokens();

    KvBlockPool::ExtendUndo undo;
    ASSERT_TRUE(pool.extendSequence(2, 7, &undo)); // fork + new block
    EXPECT_EQ(pool.stats().cow_forks, 1u);
    pool.undoExtend(2, undo);
    EXPECT_EQ(pool.stats().cow_forks, 0u);
    EXPECT_EQ(pool.seqTokens(2), 6u);
    EXPECT_EQ(pool.seqBlockIds(2), blocks); // shares the original tail again
    EXPECT_EQ(pool.blockRefs(blocks[1]), 2u);
    EXPECT_EQ(pool.usedBlocks(), 2u);
    EXPECT_EQ(pool.storedTokens(), stored_before);
}

TEST(KvBlockPool, CacheBlocksAndRefsRoundTrip)
{
    KvBlockPool pool(smallPool(4));
    BlockId b = 0;
    ASSERT_TRUE(pool.allocCacheBlock(3, &b));
    EXPECT_EQ(pool.blockRefs(b), 1u);
    EXPECT_EQ(pool.storedTokens(), 3u);
    pool.addBlockRef(b);
    EXPECT_EQ(pool.blockRefs(b), 2u);
    pool.releaseBlockRef(b);
    pool.releaseBlockRef(b);
    EXPECT_EQ(pool.blockRefs(b), 0u);
    EXPECT_EQ(pool.usedBlocks(), 0u);
    EXPECT_EQ(pool.storedTokens(), 0u);
    // Cache allocation never consults the reclaimer and fails plainly
    // at capacity.
    ASSERT_TRUE(pool.allocSequence(1, 16));
    BlockId c = 0;
    EXPECT_FALSE(pool.allocCacheBlock(1, &c));
}

TEST(KvBlockPool, ReclaimerFoldsIntoCapacityAndRescuesAllocs)
{
    KvBlockPool pool(smallPool(4));
    // A stand-in prefix cache holding two cache-owned blocks.
    std::vector<BlockId> hoard;
    for (int i = 0; i < 2; ++i) {
        BlockId b = 0;
        ASSERT_TRUE(pool.allocCacheBlock(4, &b));
        hoard.push_back(b);
    }
    pool.setReclaimer(
        [&](std::uint64_t need) {
            while (need-- > 0 && !hoard.empty()) {
                pool.releaseBlockRef(hoard.back());
                hoard.pop_back();
            }
        },
        [&] { return static_cast<std::uint64_t>(hoard.size()); });
    // Capacity queries see through the hoard...
    EXPECT_EQ(pool.freeBlocks(), 2u);
    EXPECT_EQ(pool.availableBlocks(), 4u);
    EXPECT_EQ(pool.freeTokens(), 16u);
    // ...and an allocation needing reclaimed blocks succeeds.
    EXPECT_TRUE(pool.allocSequence(1, 16));
    EXPECT_TRUE(hoard.empty());
    EXPECT_EQ(pool.stats().failed_allocs, 0u);
}

// ---------------------------------------------------------------------

TEST(CodebookResidency, HitsAfterAdmission)
{
    CodebookResidency cache(2);
    auto r1 = cache.touchBatch({1, 2});
    EXPECT_EQ(r1.misses, 2u);
    EXPECT_EQ(r1.hits, 0u);
    auto r2 = cache.touchBatch({1, 2});
    EXPECT_EQ(r2.hits, 2u);
    EXPECT_EQ(r2.misses, 0u);
    EXPECT_TRUE(cache.resident(1));
    EXPECT_TRUE(cache.resident(2));
}

TEST(CodebookResidency, DuplicatesInBatchCountOnce)
{
    CodebookResidency cache(2);
    auto r = cache.touchBatch({7, 7, 7});
    EXPECT_EQ(r.misses, 1u);
    EXPECT_EQ(r.hits, 0u);
}

TEST(CodebookResidency, LfuEvictsColdestGroup)
{
    CodebookResidency cache(2);
    cache.touchBatch({1});
    cache.touchBatch({1}); // freq(1)=2
    cache.touchBatch({2}); // freq(2)=1
    auto r = cache.touchBatch({3});
    EXPECT_EQ(r.evictions, 1u);
    EXPECT_TRUE(cache.resident(1));  // hot survivor
    EXPECT_FALSE(cache.resident(2)); // LFU victim
    EXPECT_TRUE(cache.resident(3));
}

TEST(CodebookResidency, BatchMembersPinnedAgainstEachOther)
{
    CodebookResidency cache(2);
    cache.touchBatch({1, 2});
    // 1 and 2 are resident with freq 1.  A batch containing 1 and a new
    // group must evict 2 (unpinned), never 1 (hit-aware masking).
    auto r = cache.touchBatch({1, 3});
    EXPECT_EQ(r.hits, 1u);
    EXPECT_EQ(r.misses, 1u);
    EXPECT_TRUE(cache.resident(1));
    EXPECT_TRUE(cache.resident(3));
    EXPECT_FALSE(cache.resident(2));
}

TEST(CodebookResidency, OverflowBatchKeepsMissingWithoutThrashing)
{
    CodebookResidency cache(2);
    // 3 distinct groups, 2 slots: the overflow group stays non-resident
    // and the resident pair must not evict each other.
    auto r1 = cache.touchBatch({1, 2, 3});
    EXPECT_EQ(r1.misses, 3u);
    EXPECT_EQ(cache.size(), 2u);
    auto r2 = cache.touchBatch({1, 2, 3});
    EXPECT_EQ(r2.hits, 2u);
    EXPECT_EQ(r2.misses, 1u);
    EXPECT_EQ(r2.evictions, 0u);
}

TEST(CodebookResidency, OverflowCounterSeparatesCapacityFromColdMisses)
{
    CodebookResidency cache(2);
    // 4 distinct groups, 2 slots: two admissions are cold misses, the
    // other two are capacity overflow (every slot pinned by the batch).
    auto r1 = cache.touchBatch({1, 2, 3, 4});
    EXPECT_EQ(r1.misses, 4u);
    EXPECT_EQ(r1.overflow, 2u);
    EXPECT_EQ(r1.evictions, 0u);

    // The same batch again: the resident pair hits, the overflow pair
    // is charged a miss *and* flagged as overflow every iteration —
    // capacity thrash, not cold starts.
    auto r2 = cache.touchBatch({1, 2, 3, 4});
    EXPECT_EQ(r2.hits, 2u);
    EXPECT_EQ(r2.misses, 2u);
    EXPECT_EQ(r2.overflow, 2u);
    EXPECT_EQ(cache.stats().overflow, 4u);

    // A batch that fits evicts normally: no overflow recorded.
    auto r3 = cache.touchBatch({5, 6});
    EXPECT_EQ(r3.overflow, 0u);
    EXPECT_EQ(r3.evictions, 2u);
    EXPECT_EQ(cache.stats().overflow, 4u);
}

TEST(CodebookResidency, StatsAccumulateAcrossBatches)
{
    CodebookResidency cache(4);
    cache.touchBatch({1, 2});
    cache.touchBatch({1, 3});
    EXPECT_EQ(cache.stats().misses, 3u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_NEAR(cache.stats().hitRate(), 0.25, 1e-12);
}

} // namespace
} // namespace vqllm::serving
