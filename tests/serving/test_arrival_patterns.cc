/**
 * @file
 * Arrival-pattern tests: the Poisson default must draw exactly the
 * pre-pattern RNG sequence (existing traces bit-identical), the
 * modulated patterns must preserve the configured mean rate over full
 * periods while concentrating arrivals where the instantaneous rate
 * peaks, and the parameter validations must be hard errors.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "serving/request.h"

namespace vqllm::serving {
namespace {

WorkloadConfig
baseConfig()
{
    WorkloadConfig cfg;
    cfg.qps = 20;
    cfg.duration_s = 40;
    cfg.seed = 7;
    return cfg;
}

TEST(ArrivalPatterns, NamesRoundTrip)
{
    for (auto p : {ArrivalPattern::Poisson, ArrivalPattern::Bursty,
                   ArrivalPattern::Diurnal})
        EXPECT_EQ(parseArrivalPattern(arrivalPatternName(p)), p);
    EXPECT_FALSE(parseArrivalPattern("steady").has_value());
}

TEST(ArrivalPatterns, PoissonIgnoresPatternParameters)
{
    auto cfg = baseConfig();
    auto before = generateWorkload(cfg);
    cfg.burst_period_s = 3;
    cfg.burst_peak = 2;
    cfg.diurnal_amplitude = 0.5;
    auto after = generateWorkload(cfg);
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
        EXPECT_EQ(before[i].arrival_us, after[i].arrival_us);
        EXPECT_EQ(before[i].prompt_len, after[i].prompt_len);
        EXPECT_EQ(before[i].max_new_tokens, after[i].max_new_tokens);
    }
}

TEST(ArrivalPatterns, BurstyPreservesTheMeanRate)
{
    auto cfg = baseConfig();
    cfg.arrival = ArrivalPattern::Bursty;
    cfg.burst_period_s = 5;
    auto trace = generateWorkload(cfg);
    double expected = cfg.qps * cfg.duration_s;
    EXPECT_NEAR(static_cast<double>(trace.size()), expected,
                0.15 * expected);
}

TEST(ArrivalPatterns, BurstyConcentratesArrivalsInTheBurstWindow)
{
    auto cfg = baseConfig();
    cfg.arrival = ArrivalPattern::Bursty;
    cfg.burst_period_s = 5;
    cfg.burst_duty = 0.25;
    cfg.burst_peak = 3;
    auto trace = generateWorkload(cfg);
    std::size_t in_burst = 0;
    for (const auto &r : trace) {
        double phase = std::fmod(r.arrival_us / 1e6, cfg.burst_period_s);
        if (phase < cfg.burst_duty * cfg.burst_period_s)
            ++in_burst;
    }
    // The burst window holds 25% of the time but 75% of the rate mass.
    double frac =
        static_cast<double>(in_burst) / static_cast<double>(trace.size());
    EXPECT_GT(frac, 0.6);
    EXPECT_LT(frac, 0.9);
}

TEST(ArrivalPatterns, DiurnalPreservesTheMeanAndPeaksMidCycle)
{
    auto cfg = baseConfig();
    cfg.arrival = ArrivalPattern::Diurnal;
    cfg.diurnal_period_s = 10;
    cfg.diurnal_amplitude = 0.9;
    auto trace = generateWorkload(cfg);
    double expected = cfg.qps * cfg.duration_s;
    EXPECT_NEAR(static_cast<double>(trace.size()), expected,
                0.15 * expected);
    // sin peaks in the first half of each cycle, troughs in the second:
    // the first half must carry well over half the arrivals.
    std::size_t first_half = 0;
    for (const auto &r : trace)
        if (std::fmod(r.arrival_us / 1e6, cfg.diurnal_period_s) <
            cfg.diurnal_period_s / 2)
            ++first_half;
    EXPECT_GT(static_cast<double>(first_half),
              0.6 * static_cast<double>(trace.size()));
}

TEST(ArrivalPatterns, PatternsAreDeterministicPerSeed)
{
    for (auto p : {ArrivalPattern::Bursty, ArrivalPattern::Diurnal}) {
        auto cfg = baseConfig();
        cfg.arrival = p;
        auto a = generateWorkload(cfg);
        auto b = generateWorkload(cfg);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_EQ(a[i].arrival_us, b[i].arrival_us);
    }
}

TEST(ArrivalPatterns, InvalidParametersAreFatal)
{
    auto bursty = baseConfig();
    bursty.arrival = ArrivalPattern::Bursty;
    {
        auto cfg = bursty;
        cfg.burst_period_s = 0;
        EXPECT_DEATH({ generateWorkload(cfg); }, "burst_period_s");
    }
    {
        auto cfg = bursty;
        cfg.burst_duty = 1.0;
        EXPECT_DEATH({ generateWorkload(cfg); }, "burst_duty");
    }
    {
        auto cfg = bursty;
        cfg.burst_peak = 0.5;
        EXPECT_DEATH({ generateWorkload(cfg); }, "burst_peak");
    }
    {
        auto cfg = bursty;
        cfg.burst_duty = 0.5;
        cfg.burst_peak = 3.0; // duty * peak > 1: negative trough
        EXPECT_DEATH({ generateWorkload(cfg); }, "burst_duty");
    }
    {
        auto cfg = baseConfig();
        cfg.arrival = ArrivalPattern::Diurnal;
        cfg.diurnal_amplitude = 1.0;
        EXPECT_DEATH({ generateWorkload(cfg); }, "diurnal_amplitude");
    }
}

} // namespace
} // namespace vqllm::serving
