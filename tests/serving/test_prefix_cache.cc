/**
 * @file
 * Tests for the cross-request KV prefix cache: radix-style longest
 * match over the hash chain, shared-block attach and rollback, COW
 * forks on divergent writes, hit-aware LFU eviction that pins blocks
 * referenced by running sequences, pool-pressure reclaim, and the
 * simulator-level contracts (cache-off reports carry no prefix section,
 * cache-on runs save prefill and stay bit-identical across host thread
 * counts and TP degrees).
 */
#include <gtest/gtest.h>

#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/prefix_cache.h"
#include "serving/simulator.h"

namespace vqllm::serving {
namespace {

struct ThreadGuard
{
    ~ThreadGuard() { par::setThreads(0); }
};

constexpr std::size_t kBt = 16;

ShardedKvPool
smallSharded(std::uint64_t blocks_per_shard, std::size_t degree)
{
    KvBlockPoolConfig cfg;
    cfg.block_tokens = kBt;
    cfg.bytes_per_token = 1;
    cfg.capacity_bytes = blocks_per_shard * kBt;
    return ShardedKvPool(cfg, degree);
}

Request
prefixRequest(std::uint64_t id, std::size_t prompt_len,
              std::int64_t group, std::size_t prefix_tokens)
{
    Request r;
    r.id = id;
    r.prompt_len = prompt_len;
    r.max_new_tokens = 8;
    r.prefix_group = group;
    r.prefix_tokens = prefix_tokens;
    return r;
}

/** Drive one writer through the scheduler protocol: allocate its
 *  context, mark it fully prefilled, index its prefix. */
void
writePrefix(ShardedKvPool &pool, PrefixCache &cache, Request &r)
{
    ASSERT_TRUE(pool.allocSequence(r.id, r.prompt_len));
    r.prefilled_tokens = r.prompt_len;
    cache.onPrefillAdvance(r);
}

TEST(PrefixCache, MissThenHitAfterIndexing)
{
    auto pool = smallSharded(32, 2);
    PrefixCache cache(pool, {kBt, 0});

    Request a = prefixRequest(1, 48, 0, 32);
    EXPECT_EQ(cache.match(a).tokens, 0u); // cold: nothing indexed
    writePrefix(pool, cache, a);
    EXPECT_EQ(cache.cachedBlocks(), 2u); // 32 tokens = 2 full nodes
    EXPECT_EQ(cache.cachedTokens(), 32u);

    Request b = prefixRequest(2, 40, 0, 32);
    auto m = cache.match(b);
    EXPECT_EQ(m.tokens, 32u);
    ASSERT_EQ(m.node_hashes.size(), 2u);
    cache.attach(b, m);
    EXPECT_EQ(pool.seqTokens(2), 32u);
    // Attach shares the writer's blocks instead of taking free ones:
    // per shard only the writer's 3 blocks are live.
    EXPECT_EQ(pool.usedBlocks(), 2u * 3u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().matched_tokens, 32u);
    // A different group shares nothing.
    Request c = prefixRequest(3, 48, 1, 32);
    EXPECT_EQ(cache.match(c).tokens, 0u);

    pool.freeSequence(1);
    pool.freeSequence(2);
    cache.clear();
    EXPECT_EQ(pool.usedBlocks(), 0u);
}

TEST(PrefixCache, MatchLeavesOneTokenToPrefill)
{
    auto pool = smallSharded(32, 1);
    PrefixCache cache(pool, {kBt, 0});
    Request a = prefixRequest(1, 40, 0, 32);
    writePrefix(pool, cache, a);

    // The whole prompt is inside the cached prefix: the match must
    // stop one token short so admission still prefills a query.
    Request b = prefixRequest(2, 32, 0, 32);
    EXPECT_EQ(cache.match(b).tokens, 16u);
    pool.freeSequence(1);
    cache.clear();
}

TEST(PrefixCache, PartialTailIsCacheOwnedAndForksOnWrite)
{
    auto pool = smallSharded(32, 2);
    PrefixCache cache(pool, {kBt, 0});

    Request a = prefixRequest(1, 40, 0, 24); // 1 full node + 8-token tail
    writePrefix(pool, cache, a);
    EXPECT_EQ(cache.cachedBlocks(), 2u);
    EXPECT_EQ(cache.cachedTokens(), 24u);
    // Per shard: 3 writer blocks + 1 cache-owned partial copy.
    EXPECT_EQ(pool.usedBlocks(), 2u * 4u);

    Request b = prefixRequest(2, 30, 0, 24);
    auto m = cache.match(b);
    EXPECT_EQ(m.tokens, 24u);
    cache.attach(b, m);
    EXPECT_EQ(pool.seqTokens(2), 24u);

    // Seq 2's first divergent write lands in the shared partial tail's
    // slack: the tail COW-forks, leaving the cache's copy untouched.
    ASSERT_TRUE(pool.extendSequence(2, 1));
    EXPECT_EQ(pool.cowForks(), 1u);
    EXPECT_EQ(pool.seqTokens(2), 25u);
    EXPECT_EQ(cache.cachedTokens(), 24u);

    // The same prefix still matches for a third request.
    Request c = prefixRequest(3, 30, 0, 24);
    EXPECT_EQ(cache.match(c).tokens, 24u);
    pool.freeSequence(1);
    pool.freeSequence(2);
    cache.clear();
    EXPECT_EQ(pool.usedBlocks(), 0u);
}

TEST(PrefixCache, RollbackAttachRestoresEverything)
{
    auto pool = smallSharded(32, 2);
    PrefixCache cache(pool, {kBt, 0});
    Request a = prefixRequest(1, 48, 0, 32);
    writePrefix(pool, cache, a);

    Request b = prefixRequest(2, 40, 0, 32);
    auto m = cache.match(b);
    cache.attach(b, m);
    std::uint64_t used = pool.usedBlocks();
    cache.rollbackAttach(b, m);
    EXPECT_EQ(pool.seqTokens(2), 0u);
    EXPECT_EQ(pool.usedBlocks(), used); // shared blocks merely deref'd
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().matched_tokens, 0u);
    EXPECT_EQ(cache.stats().rollbacks, 1u);
    pool.freeSequence(1);
    cache.clear();
    EXPECT_EQ(pool.usedBlocks(), 0u);
}

TEST(PrefixCache, EvictionPinsBlocksOfRunningSequences)
{
    auto pool = smallSharded(64, 1);
    PrefixCache cache(pool, {kBt, 2}); // room for one 2-node chain

    Request a = prefixRequest(1, 48, 0, 32);
    writePrefix(pool, cache, a);
    EXPECT_EQ(cache.cachedBlocks(), 2u);

    // Seq 1 still runs, so its indexed blocks carry a second reference
    // and must not be evicted for group 1's insertions.
    Request b = prefixRequest(2, 48, 1, 32);
    writePrefix(pool, cache, b);
    EXPECT_EQ(cache.cachedBlocks(), 2u); // group 0 intact
    EXPECT_GT(cache.stats().skipped_inserts, 0u);
    EXPECT_EQ(cache.match(a).tokens, 32u);
    EXPECT_EQ(cache.match(b).tokens, 0u);

    // Once seq 1 retires, its prefix becomes evictable and group 1
    // can displace it (LFU; both chains cold).
    pool.freeSequence(1);
    cache.onRelease(1);
    b.prefilled_tokens = b.prompt_len;
    cache.onPrefillAdvance(b);
    EXPECT_EQ(cache.match(b).tokens, 32u);
    EXPECT_EQ(cache.match(a).tokens, 0u);
    EXPECT_EQ(cache.stats().evicted_nodes, 2u);
    pool.freeSequence(2);
    cache.clear();
    EXPECT_EQ(pool.usedBlocks(), 0u);
}

TEST(PrefixCache, PoolPressureReclaimsColdPrefixes)
{
    auto pool = smallSharded(8, 1);
    PrefixCache cache(pool, {kBt, 0});

    Request a = prefixRequest(1, 48, 0, 32); // 3 blocks + 2 cached refs
    writePrefix(pool, cache, a);
    pool.freeSequence(1);
    cache.onRelease(1);
    // The cache holds the only references to 2 blocks; 5 are free.
    EXPECT_EQ(pool.usedBlocks(), 2u);
    EXPECT_EQ(cache.evictableBlocks(), 1u); // leaf only (conservative)
    EXPECT_EQ(pool.freeTokens(), 7u * kBt); // 6 free + 1 reclaimable

    // A 7-block allocation forces the pool to ask the cache for blocks.
    ASSERT_TRUE(pool.allocSequence(2, 7 * kBt));
    EXPECT_GT(cache.stats().reclaimed_blocks, 0u);
    EXPECT_LT(cache.cachedBlocks(), 2u);
    pool.freeSequence(2);
    cache.clear();
    EXPECT_EQ(pool.usedBlocks(), 0u);
}

// ---- Simulator-level contracts --------------------------------------

SimulatorConfig
prefixConfig(bool cache_on, int tp_degree = 1)
{
    SimulatorConfig cfg;
    cfg.scheme = llm::QuantScheme::VQ2;
    cfg.tp.degree = tp_degree;
    cfg.workload.qps = 6;
    cfg.workload.duration_s = 4;
    cfg.workload.prompt_len_median = 256;
    cfg.workload.prefix_groups = 2;
    cfg.workload.prefix_tokens = 1024;
    cfg.scheduler.chunk_tokens = 512;
    cfg.prefix_cache = cache_on;
    return cfg;
}

TEST(PrefixCacheSim, CacheOffReportCarriesNoPrefixSection)
{
    ServingReport off = ServingSimulator(prefixConfig(false)).run();
    EXPECT_FALSE(off.prefix_cache_enabled);
    EXPECT_EQ(off.json().find("prefix_cache"), std::string::npos);
    EXPECT_EQ(off.summary().find("prefix cache"), std::string::npos);
    // Determinism: a second cache-off run is bit-identical.
    ServingReport again = ServingSimulator(prefixConfig(false)).run();
    EXPECT_EQ(off.json(), again.json());
}

TEST(PrefixCacheSim, CacheOnSavesPrefillAndImprovesTtft)
{
    ServingReport off = ServingSimulator(prefixConfig(false)).run();
    ServingReport on = ServingSimulator(prefixConfig(true)).run();

    EXPECT_TRUE(on.prefix_cache_enabled);
    EXPECT_GT(on.prefix_lookups, 0u);
    EXPECT_GT(on.prefix_hits, 0u);
    EXPECT_GT(on.prefix_matched_tokens, 0u);
    EXPECT_GT(on.prefix_hit_rate, 0.0);
    EXPECT_LE(on.prefix_hit_rate, 1.0);
    EXPECT_NE(on.json().find("prefix_cache"), std::string::npos);

    // Identical arrival trace: the cache can only remove prefill work,
    // and removing the shared prefix from the critical path must show
    // up in the mean time-to-first-token.
    EXPECT_EQ(on.completed_requests, off.completed_requests);
    EXPECT_LT(on.prefill_us, off.prefill_us);
    EXPECT_LT(on.ttft.mean_us, off.ttft.mean_us);
}

TEST(PrefixCacheSim, CacheOnIsBitIdenticalAcrossThreadCounts)
{
    ThreadGuard guard;
    auto run = [](int threads) {
        par::setThreads(threads);
        obs::TraceRecorder rec;
        SimulatorConfig cfg = prefixConfig(true);
        cfg.trace = &rec;
        ServingReport r = ServingSimulator(cfg).run();
        return std::make_pair(r.json(), rec.chromeJson());
    };
    auto [r1, t1] = run(1);
    auto [r4, t4] = run(4);
    auto [r1b, t1b] = run(1);
    EXPECT_EQ(r1, r4);
    EXPECT_EQ(r1, r1b);
    EXPECT_EQ(t1, t4);
    EXPECT_EQ(t1, t1b);
}

TEST(PrefixCacheSim, ShardedRunMatchesAndEmitsCowForks)
{
    ServingReport r = ServingSimulator(prefixConfig(true, 4)).run();
    EXPECT_EQ(r.tp_degree, 4u);
    EXPECT_GT(r.completed_requests, 0u);
    EXPECT_GT(r.prefix_matched_tokens, 0u);
    // Any request extending past a shared partial tail forks it; with
    // a non-block-aligned 1024-token prefix this cannot stay zero.
    // (1024 % 16 == 0, so forks come from decode past matched full
    // blocks only when the suffix starts mid-block — don't assert.)
    EXPECT_LE(r.prefix_hit_rate, 1.0);
}

TEST(PrefixCacheSim, CappedCacheStillServesHits)
{
    SimulatorConfig cfg = prefixConfig(true);
    cfg.prefix_capacity_blocks = 16; // far below one 1024-token prefix
    ServingReport r = ServingSimulator(cfg).run();
    // The cap forces constant eviction pressure yet the run must stay
    // leak-free (asserted inside the simulator) and deterministic.
    ServingReport again = ServingSimulator(cfg).run();
    EXPECT_EQ(r.json(), again.json());
}

} // namespace
} // namespace vqllm::serving
