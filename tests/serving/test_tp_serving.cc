/**
 * @file
 * Tensor-parallel serving tests: the scheduler-level iteration pricer
 * must agree with the analytical llm::estimateTensorParallel model,
 * degree 1 must be bit-identical to the unsharded pricing formula, and
 * TP simulations must stay deterministic across thread counts and
 * repeated runs (sharded pools move raw Request pointers through
 * preemption paths — any lifetime or ordering bug shows up here).
 */
#include <gtest/gtest.h>

#include "common/parallel.h"
#include "compiler/engine.h"
#include "llm/ops.h"
#include "llm/tensor_parallel.h"
#include "serving/simulator.h"

namespace vqllm::serving {
namespace {

using gpusim::rtx4090;

struct ThreadGuard
{
    ~ThreadGuard() { par::setThreads(0); }
};

llm::TpConfig
nvlink(int degree)
{
    llm::TpConfig tp;
    tp.degree = degree;
    return tp;
}

/** A decode batch of `n` requests whose context is exactly `ctx`. */
std::vector<Request>
decodeBatch(std::size_t n, std::size_t ctx)
{
    std::vector<Request> reqs(n);
    for (std::size_t i = 0; i < n; ++i) {
        reqs[i].id = i;
        reqs[i].prompt_len = ctx;
        reqs[i].max_new_tokens = 64;
    }
    return reqs;
}

std::vector<Request *>
ptrs(std::vector<Request> &reqs)
{
    std::vector<Request *> out;
    for (auto &r : reqs)
        out.push_back(&r);
    return out;
}

void
expectReportsIdentical(const ServingReport &a, const ServingReport &b)
{
    EXPECT_EQ(a.ttft.count, b.ttft.count);
    EXPECT_EQ(a.ttft.p99_us, b.ttft.p99_us);
    EXPECT_EQ(a.tbt.count, b.tbt.count);
    EXPECT_EQ(a.tbt.p50_us, b.tbt.p50_us);
    EXPECT_EQ(a.tbt.p99_us, b.tbt.p99_us);
    EXPECT_EQ(a.e2e.mean_us, b.e2e.mean_us);
    EXPECT_EQ(a.sim_time_us, b.sim_time_us);
    EXPECT_EQ(a.busy_time_us, b.busy_time_us);
    EXPECT_EQ(a.tokens_per_sec, b.tokens_per_sec);
    EXPECT_EQ(a.completed_requests, b.completed_requests);
    EXPECT_EQ(a.rejected_requests, b.rejected_requests);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.kv_peak_bytes, b.kv_peak_bytes);
    EXPECT_EQ(a.comm_us, b.comm_us);
    EXPECT_EQ(a.comm_fraction, b.comm_fraction);
    ASSERT_EQ(a.shards.size(), b.shards.size());
    for (std::size_t i = 0; i < a.shards.size(); ++i) {
        EXPECT_EQ(a.shards[i].kv_peak_bytes, b.shards[i].kv_peak_bytes);
        EXPECT_EQ(a.shards[i].plan_cache_misses,
                  b.shards[i].plan_cache_misses);
    }
}

// ---------------------------------------------------------------------
// Pricing consistency with the analytical model

TEST(TpPricing, SteadyStateDecodeMatchesEstimateTensorParallel)
{
    // A homogeneous decode batch at a bucket-aligned context is exactly
    // the analytical model's representative step: the two TP models
    // must agree to floating-point noise (they share shard-geometry
    // helpers, so any drift is a real modeling divergence).
    const std::size_t batch = 8;
    const std::size_t ctx = 512; // multiple of PricerConfig::seq_bucket
    for (auto scheme : {llm::QuantScheme::FP16, llm::QuantScheme::VQ4}) {
        for (int degree : {2, 4}) {
            compiler::Engine eng(rtx4090());
            std::vector<compiler::Engine *> engines(degree, &eng);
            IterationPricer pricer(engines, llm::llama7b(), scheme,
                                   nvlink(degree));
            auto reqs = decodeBatch(batch, ctx);
            auto batch_ptrs = ptrs(reqs);
            double step_us = pricer.decodeUs(batch_ptrs);

            llm::E2EConfig e2e;
            e2e.batch = batch;
            e2e.prompt_len = ctx - 1;
            e2e.gen_tokens = 2; // mid_seq = ctx
            auto est = llm::estimateTensorParallel(
                rtx4090(), llm::llama7b(), scheme, nvlink(degree), e2e);
            double est_step_us = est.decode_us / 2.0;
            EXPECT_NEAR(step_us, est_step_us, est_step_us * 1e-9)
                << "scheme " << llm::quantSchemeName(scheme)
                << " degree " << degree;
            // Communication shares agree too.
            EXPECT_NEAR(pricer.commUs(), est.comm_us_per_step,
                        est.comm_us_per_step * 1e-9);
        }
    }
}

TEST(TpPricing, Degree1IsBitIdenticalToUnshardedFormula)
{
    const std::size_t batch = 4;
    const std::size_t ctx = 256;
    compiler::Engine eng(rtx4090());
    compiler::Engine ref_eng(rtx4090());
    IterationPricer pricer(eng, llm::llama7b(), llm::QuantScheme::VQ4);
    auto reqs = decodeBatch(batch, ctx);
    auto batch_ptrs = ptrs(reqs);
    double priced = pricer.decodeUs(batch_ptrs);

    // The pre-TP pricing formula, reproduced verbatim.
    const auto &model = llm::llama7b();
    double linear_us = 0;
    for (auto [n, k] : model.layerLinearShapes())
        linear_us += llm::schemeLinearUs(
            ref_eng, llm::QuantScheme::VQ4,
            engine::GemmShape{batch, n, k});
    double elem_us = llm::elementwiseLayerLatencyUs(
        eng.spec(), batch, model.hidden);
    double attn_us = llm::schemeAttentionUs(
        ref_eng, llm::QuantScheme::VQ4, model.attnShape(batch, ctx));
    double expected =
        (linear_us + elem_us + attn_us) * static_cast<double>(model.layers);
    EXPECT_DOUBLE_EQ(priced, expected);
    EXPECT_DOUBLE_EQ(pricer.commUs(), 0.0);

    // Prefill chunks at degree 1 price through the unsharded estimate.
    EXPECT_DOUBLE_EQ(
        pricer.prefillChunkUs(256, 512),
        llm::estimateChunkedPrefillUs(eng.spec(), model, 256, 512));
    EXPECT_DOUBLE_EQ(pricer.prefillCommUs(256), 0.0);
}

TEST(TpPricing, ShardedChunkedPrefillConverges)
{
    // Degree-g chunked prefill must be cheaper than single-GPU but more
    // than 1/g of it (replicated attention span, uneven splits), and
    // degree 1 of the TP overload must equal the plain estimate.
    const auto &spec = rtx4090();
    const auto &model = llm::llama7b();
    double single =
        llm::estimateChunkedPrefillUs(spec, model, 512, 1024);
    EXPECT_DOUBLE_EQ(llm::estimateChunkedPrefillUs(spec, model, 512,
                                                   1024, nvlink(1)),
                     single);
    for (int degree : {2, 4, 8}) {
        double sharded = llm::estimateChunkedPrefillUs(
            spec, model, 512, 1024, nvlink(degree));
        EXPECT_LT(sharded, single) << "degree " << degree;
        EXPECT_GT(sharded, single / (2.0 * degree)) << "degree " << degree;
    }
}

TEST(TpPricing, CodebookUploadShrinksWithDegree)
{
    compiler::Engine eng(rtx4090());
    IterationPricer single(eng, llm::llama7b(), llm::QuantScheme::VQ2);
    std::vector<compiler::Engine *> engines(4, &eng);
    IterationPricer sharded(engines, llm::llama7b(),
                            llm::QuantScheme::VQ2, nvlink(4));
    ASSERT_GT(single.codebookMissUs(1), 0.0);
    // Per-device shard uploads overlap: roughly 1/4 the bytes, plus the
    // fixed launch cost.
    EXPECT_LT(sharded.codebookMissUs(1), single.codebookMissUs(1));
    EXPECT_GT(sharded.codebookMissUs(1), single.codebookMissUs(1) / 4.5);
}

// ---------------------------------------------------------------------
// End-to-end simulation

SimulatorConfig
tpConfig(int degree, llm::QuantScheme scheme = llm::QuantScheme::VQ4)
{
    SimulatorConfig cfg;
    cfg.scheme = scheme;
    cfg.tp = nvlink(degree);
    cfg.workload.qps = 6;
    cfg.workload.duration_s = 4;
    return cfg;
}

TEST(TpSimulation, Degree1ReportIdenticalToDefaultConfig)
{
    SimulatorConfig plain;
    plain.workload.qps = 6;
    plain.workload.duration_s = 4;
    auto a = ServingSimulator(plain).run();
    auto b = ServingSimulator(tpConfig(1, plain.scheme)).run();
    expectReportsIdentical(a, b);
    EXPECT_EQ(b.tp_degree, 1u);
    EXPECT_EQ(b.comm_us, 0.0);
    ASSERT_EQ(b.shards.size(), 1u);
    EXPECT_EQ(b.shards[0].kv_peak_bytes, b.kv_peak_bytes);
    EXPECT_EQ(b.shards[0].kv_capacity_bytes, b.kv_capacity_bytes);
}

TEST(TpSimulation, Degree4ShardsDecodeAndPricesCollectives)
{
    auto single = ServingSimulator(tpConfig(1)).run();
    auto tp4 = ServingSimulator(tpConfig(4)).run();

    EXPECT_EQ(tp4.tp_degree, 4u);
    ASSERT_EQ(tp4.shards.size(), 4u);
    // Sharded decode is faster per token...
    EXPECT_LT(tp4.tbt.p50_us, single.tbt.p50_us);
    // ...but pays for collectives.
    EXPECT_GT(tp4.comm_us, 0.0);
    EXPECT_GT(tp4.comm_fraction, 0.0);
    EXPECT_LT(tp4.comm_fraction, 0.5);
    // Weights shard across devices, so each device's pool exceeds the
    // single-GPU pool and the aggregate grows superlinearly.
    EXPECT_GT(tp4.shards[0].kv_capacity_bytes, single.kv_capacity_bytes);
    EXPECT_GT(tp4.kv_capacity_bytes, 4 * single.kv_capacity_bytes);
    // Per-shard peaks sum to the aggregate high-water mark.
    std::uint64_t shard_peak_sum = 0;
    for (const auto &s : tp4.shards)
        shard_peak_sum += s.kv_peak_bytes;
    EXPECT_EQ(shard_peak_sum, tp4.kv_peak_bytes);
    // Symmetric shards sharing one engine: shard 0 takes the cold
    // misses, later shards hit the already-compiled artifacts.
    EXPECT_GT(tp4.shards[0].plan_cache_misses, 0u);
    EXPECT_EQ(tp4.shards[1].plan_cache_misses, 0u);
    EXPECT_GT(tp4.shards[1].plan_cache_hits, 0u);
}

TEST(TpSimulation, PreemptionUnderShardedPoolsIsDeterministic)
{
    ThreadGuard guard;
    // Tight per-device pools force preemption/recompute through the
    // sharded facade; the event loop must stay bit-deterministic across
    // repeated runs and host thread counts.
    SimulatorConfig cfg = tpConfig(2, llm::QuantScheme::FP16);
    cfg.hbm_gb = 8.5; // ~1.2 GB per-device pool under 7B FP16 shards
    cfg.workload.qps = 10;
    cfg.workload.duration_s = 4;
    cfg.workload.prompt_len_median = 1024;

    par::setThreads(1);
    auto a = ServingSimulator(cfg).run();
    par::setThreads(8);
    auto b = ServingSimulator(cfg).run();
    auto c = ServingSimulator(cfg).run();
    EXPECT_GT(a.preemptions, 0u)
        << "config no longer forces preemptions; tighten hbm_gb";
    expectReportsIdentical(a, b);
    expectReportsIdentical(b, c);
}

TEST(TpSimulation, RunManyTpConfigsMatchesSerialRuns)
{
    ThreadGuard guard;
    std::vector<SimulatorConfig> cfgs;
    for (int degree : {1, 2, 4})
        cfgs.push_back(tpConfig(degree));
    par::setThreads(1);
    std::vector<ServingReport> serial;
    for (const auto &cfg : cfgs)
        serial.push_back(ServingSimulator(cfg).run());
    par::setThreads(8);
    auto fanned = ServingSimulator::runMany(cfgs);
    ASSERT_EQ(fanned.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectReportsIdentical(serial[i], fanned[i]);
}

TEST(TpSimulationDeath, RejectsUnevenHeadSharding)
{
    EXPECT_DEATH(ServingSimulator(tpConfig(3)), "divide");
}

} // namespace
} // namespace vqllm::serving