/**
 * @file
 * Tests for the scheduling-policy interface: FCFS / priority / EDF
 * comparator semantics and their effect on scheduler admission order
 * and preemption-victim selection.
 */
#include <gtest/gtest.h>

#include "serving/policy.h"
#include "serving/scheduler.h"

namespace vqllm::serving {
namespace {

Request
makeRequest(std::uint64_t id, double arrival_us, std::size_t prompt,
            std::size_t gen)
{
    Request r;
    r.id = id;
    r.arrival_us = arrival_us;
    r.prompt_len = prompt;
    r.max_new_tokens = gen;
    return r;
}

KvBlockPoolConfig
poolCfg(std::uint64_t blocks, std::size_t block_tokens = 4)
{
    KvBlockPoolConfig cfg;
    cfg.block_tokens = block_tokens;
    cfg.bytes_per_token = 1;
    cfg.capacity_bytes = blocks * block_tokens;
    return cfg;
}

TEST(Policy, FcfsOrdersByArrivalWithIdTiebreak)
{
    auto p = makePolicy(PolicyKind::FCFS);
    auto a = makeRequest(0, 10, 4, 4);
    auto b = makeRequest(1, 20, 4, 4);
    EXPECT_TRUE(p->admitBefore(a, b));
    EXPECT_FALSE(p->admitBefore(b, a));
    EXPECT_TRUE(p->evictBefore(b, a)); // latest arrival evicted first
    auto c = makeRequest(2, 10, 4, 4); // same arrival as a: id breaks
    EXPECT_TRUE(p->admitBefore(a, c));
    EXPECT_TRUE(p->evictBefore(c, a));
}

TEST(Policy, PriorityBeatsArrivalAndEvictsLowestFirst)
{
    auto p = makePolicy(PolicyKind::Priority);
    auto low = makeRequest(0, 0, 4, 4);
    auto high = makeRequest(1, 100, 4, 4);
    high.priority = 5;
    EXPECT_TRUE(p->admitBefore(high, low));
    EXPECT_TRUE(p->evictBefore(low, high));
    // Equal priority falls back to arrival order.
    auto low2 = makeRequest(2, 50, 4, 4);
    EXPECT_TRUE(p->admitBefore(low, low2));
    EXPECT_TRUE(p->evictBefore(low2, low));
}

TEST(Policy, EdfTracksTtftThenTbtDeadline)
{
    auto p = makePolicy(PolicyKind::EDF);
    auto a = makeRequest(0, 0, 4, 4);
    a.ttft_deadline_us = 1000;
    auto b = makeRequest(1, 500, 4, 4);
    b.ttft_deadline_us = 200;
    // b's first-token deadline (700) beats a's (1000).
    EXPECT_EQ(edfDeadlineUs(a), 1000);
    EXPECT_EQ(edfDeadlineUs(b), 700);
    EXPECT_TRUE(p->admitBefore(b, a));
    EXPECT_TRUE(p->evictBefore(a, b)); // most slack evicted first

    // Once a token is out, the TBT deadline takes over.
    a.generated = 1;
    a.last_token_us = 2000;
    a.tbt_deadline_us = 100;
    EXPECT_EQ(edfDeadlineUs(a), 2100);
    EXPECT_TRUE(p->admitBefore(b, a));
}

TEST(Policy, NamesRoundTrip)
{
    for (auto kind : {PolicyKind::FCFS, PolicyKind::Priority,
                      PolicyKind::EDF}) {
        PolicyKind parsed;
        ASSERT_TRUE(parsePolicyKind(policyKindName(kind), &parsed));
        EXPECT_EQ(parsed, kind);
        EXPECT_STREQ(makePolicy(kind)->name(), policyKindName(kind));
    }
    PolicyKind out;
    EXPECT_FALSE(parsePolicyKind("rr", &out));
}

TEST(PolicyScheduler, PriorityAdmitsHighPriorityFirst)
{
    ShardedKvPool pool(poolCfg(64), 1);
    SchedulerConfig cfg;
    cfg.policy = PolicyKind::Priority;
    Scheduler sched(cfg, pool);
    auto low = makeRequest(0, 0, 4, 2);
    auto high = makeRequest(1, 1, 4, 2); // younger but urgent
    high.priority = 3;
    sched.submit(&low);
    sched.submit(&high);
    auto it = sched.next();
    ASSERT_EQ(it.prefill.size(), 2u);
    EXPECT_EQ(it.prefill[0].req, &high);
    EXPECT_EQ(it.prefill[1].req, &low);
}

TEST(PolicyScheduler, PriorityEvictsLowestPriorityNotLatestArrival)
{
    ShardedKvPool pool(poolCfg(4, 4), 1);
    SchedulerConfig cfg;
    cfg.policy = PolicyKind::Priority;
    Scheduler sched(cfg, pool);
    auto low = makeRequest(0, 0, 7, 8); // oldest, lowest priority
    auto high = makeRequest(1, 1, 7, 8);
    high.priority = 3;
    sched.submit(&low);
    sched.submit(&high);
    ASSERT_EQ(sched.next().prefill.size(), 2u); // pool now full

    // Under FCFS the younger `high` would be the victim; the priority
    // policy protects it and evicts `low` instead.
    auto it = sched.next();
    EXPECT_EQ(it.preempted, 1u);
    EXPECT_EQ(low.state, RequestState::Preempted);
    ASSERT_EQ(it.decode.size(), 1u);
    EXPECT_EQ(it.decode[0], &high);
}

TEST(PolicyScheduler, HighPriorityNeverSelfPreemptsPastProtectedLow)
{
    // Regression: decode used to visit sequences in arrival order, so
    // an older low-priority sequence could decode first (becoming
    // eviction-protected for the iteration) and force a younger
    // high-priority sequence under pressure to preempt *itself*.
    // Decode must visit most-protected-first instead.
    ShardedKvPool pool(poolCfg(4, 4), 1);
    SchedulerConfig cfg;
    cfg.policy = PolicyKind::Priority;
    Scheduler sched(cfg, pool);
    auto low = makeRequest(0, 0, 6, 8); // older; 7 slots -> 2 blocks
    auto high = makeRequest(1, 1, 7, 8); // 8 slots -> 2 blocks, no slack
    high.priority = 5;
    sched.submit(&low);
    sched.submit(&high);
    ASSERT_EQ(sched.next().prefill.size(), 2u); // pool full

    // low's tail block has one free slot, high's has none: only high
    // hits pressure this iteration, and the victim must still be low.
    auto it = sched.next();
    EXPECT_EQ(it.preempted, 1u);
    EXPECT_EQ(low.state, RequestState::Preempted);
    EXPECT_EQ(high.state, RequestState::Running);
    ASSERT_EQ(it.decode.size(), 1u);
    EXPECT_EQ(it.decode[0], &high);
}

TEST(PolicyScheduler, EdfAdmitsTightestDeadlineFirst)
{
    ShardedKvPool pool(poolCfg(64), 1);
    SchedulerConfig cfg;
    cfg.policy = PolicyKind::EDF;
    Scheduler sched(cfg, pool);
    auto relaxed = makeRequest(0, 0, 4, 2);
    relaxed.ttft_deadline_us = 5e6;
    auto urgent = makeRequest(1, 10, 4, 2);
    urgent.ttft_deadline_us = 1e3;
    sched.submit(&relaxed);
    sched.submit(&urgent);
    auto it = sched.next();
    ASSERT_EQ(it.prefill.size(), 2u);
    EXPECT_EQ(it.prefill[0].req, &urgent);
}

} // namespace
} // namespace vqllm::serving
