/**
 * @file
 * Serving observability tests: tracing must be zero-cost when disabled
 * (bit-identical reports), traces must be deterministic across host
 * thread counts and repeated runs, the trace's category tiling must
 * reproduce the report's busy-time breakdown, and TP runs must record
 * distinct per-shard tracks.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/simulator.h"

namespace vqllm::serving {
namespace {

struct ThreadGuard
{
    ~ThreadGuard() { par::setThreads(0); }
};

SimulatorConfig
quickConfig(llm::QuantScheme scheme = llm::QuantScheme::VQ2,
            int tp_degree = 1)
{
    SimulatorConfig cfg;
    cfg.scheme = scheme;
    cfg.tp.degree = tp_degree;
    cfg.workload.qps = 6;
    cfg.workload.duration_s = 4;
    cfg.scheduler.chunk_tokens = 512; // exercise prefill chunk spans
    return cfg;
}

/** Relative closeness at the acceptance tolerance of the trace
 *  contract (1e-6), with a small absolute floor for zero components. */
void
expectClose(double a, double b)
{
    EXPECT_LE(std::abs(a - b),
              std::max(1e-6 * std::max(std::abs(a), std::abs(b)), 1e-6))
        << a << " vs " << b;
}

TEST(Observability, TracingOffReportIsBitIdentical)
{
    SimulatorConfig plain = quickConfig();
    ServingReport off = ServingSimulator(plain).run();

    obs::TraceRecorder rec;
    obs::MetricsRegistry reg;
    SimulatorConfig traced = quickConfig();
    traced.trace = &rec;
    traced.metrics = &reg;
    ServingReport on = ServingSimulator(traced).run();

    // json() prints every double with %.17g, so string equality is
    // bit-level equality of the whole report.
    EXPECT_EQ(off.json(), on.json());
    EXPECT_GT(rec.eventCount(), 0u);
    EXPECT_GT(reg.size(), 0u);
}

TEST(Observability, TraceIsDeterministicAcrossThreadsAndRepeats)
{
    ThreadGuard guard;
    auto traced = [](int threads) {
        par::setThreads(threads);
        obs::TraceRecorder rec;
        SimulatorConfig cfg = quickConfig();
        cfg.trace = &rec;
        ServingSimulator(cfg).run();
        return rec.chromeJson();
    };
    std::string t1 = traced(1);
    std::string t4 = traced(4);
    std::string t1_again = traced(1);
    EXPECT_EQ(t1, t4);
    EXPECT_EQ(t1, t1_again);
}

TEST(Observability, BreakdownPartitionsBusyTime)
{
    SimulatorConfig cfg = quickConfig(llm::QuantScheme::VQ2, 2);
    ServingReport r = ServingSimulator(cfg).run();
    EXPECT_GT(r.busy_time_us, 0.0);
    EXPECT_GT(r.prefill_us, 0.0);
    EXPECT_GT(r.decode_us, 0.0);
    EXPECT_GT(r.comm_us, 0.0); // degree 2: collectives priced
    expectClose(r.prefill_us + r.decode_us + r.comm_us +
                    r.codebook_upload_us,
                r.busy_time_us);
}

TEST(Observability, TraceCategoryTilingMatchesReportBreakdown)
{
    obs::TraceRecorder rec;
    SimulatorConfig cfg = quickConfig();
    cfg.trace = &rec;
    ServingReport r = ServingSimulator(cfg).run();

    expectClose(rec.categoryDurationUs("prefill"), r.prefill_us);
    expectClose(rec.categoryDurationUs("decode"), r.decode_us);
    expectClose(rec.categoryDurationUs("comm"), r.comm_us);
    expectClose(rec.categoryDurationUs("codebook"),
                r.codebook_upload_us);
    double tiles = rec.categoryDurationUs("prefill") +
                   rec.categoryDurationUs("decode") +
                   rec.categoryDurationUs("comm") +
                   rec.categoryDurationUs("codebook");
    expectClose(tiles, r.busy_time_us);
    // The iteration spans cover busy time exactly too.
    expectClose(rec.categoryDurationUs("iteration"), r.busy_time_us);
}

TEST(Observability, Tp4TraceRecordsDistinctShardTracks)
{
    obs::TraceRecorder rec;
    SimulatorConfig cfg = quickConfig(llm::QuantScheme::VQ4, 4);
    cfg.trace = &rec;
    ServingReport r = ServingSimulator(cfg).run();
    EXPECT_EQ(r.tp_degree, 4u);

    std::set<int> compute_tids;
    std::set<int> all_reduce_tids;
    bool kv_alloc_seen = false;
    for (const auto &e : rec.events()) {
        if (e.cat == "shard_compute")
            compute_tids.insert(e.tid);
        if (e.name == "all_reduce" && e.tid > 0)
            all_reduce_tids.insert(e.tid);
        if (e.name == "kv_alloc")
            kv_alloc_seen = true;
    }
    // Four shard tracks (tid 1..4) carry per-shard compute, and the
    // ring all-reduce appears on every shard's track.
    EXPECT_EQ(compute_tids,
              (std::set<int>{1, 2, 3, 4}));
    EXPECT_EQ(all_reduce_tids, (std::set<int>{1, 2, 3, 4}));
    EXPECT_TRUE(kv_alloc_seen);
    EXPECT_GT(rec.categoryDurationUs("comm"), 0.0);
}

TEST(Observability, RegistryAgreesWithReport)
{
    obs::MetricsRegistry reg;
    SimulatorConfig cfg = quickConfig();
    cfg.metrics = &reg;
    ServingReport r = ServingSimulator(cfg).run();

    const obs::Histogram *ttft =
        reg.findHistogram("serving.latency.ttft_us");
    ASSERT_NE(ttft, nullptr);
    EXPECT_EQ(ttft->count(), r.ttft.count);
    EXPECT_DOUBLE_EQ(ttft->maxValue(), r.ttft.max_us);
    EXPECT_DOUBLE_EQ(ttft->quantile(1.0), r.ttft.max_us);

    const obs::Counter *decode =
        reg.findCounter("serving.tokens.decode");
    ASSERT_NE(decode, nullptr);
    EXPECT_EQ(decode->value(), r.decode_tokens);
    EXPECT_EQ(reg.findCounter("serving.iterations")->value(),
              r.iterations);

    // Component metrics published at end of run.
    ASSERT_NE(reg.findCounter("serving.kv.shard0.block_allocs"),
              nullptr);
    EXPECT_DOUBLE_EQ(reg.findGauge("serving.kv.shard0.peak_bytes")
                         ->value(),
                     static_cast<double>(r.shards[0].kv_peak_bytes));
    ASSERT_NE(reg.findCounter("compiler.plan_cache.misses"), nullptr);
    // Private per-run engine: absolute counters equal the run's deltas.
    EXPECT_EQ(reg.findCounter("compiler.plan_cache.hits")->value(),
              r.plan_cache_hits);
    EXPECT_DOUBLE_EQ(reg.findGauge("serving.busy_time_us")->value(),
                     r.busy_time_us);
    EXPECT_DOUBLE_EQ(reg.findGauge("serving.busy.prefill_us")->value(),
                     r.prefill_us);
    ASSERT_NE(reg.findGauge("serving.codebook.hit_rate"), nullptr);
    EXPECT_DOUBLE_EQ(reg.findGauge("serving.codebook.hit_rate")
                         ->value(),
                     r.codebook_hit_rate);
}

TEST(Observability, ReportJsonParsesShape)
{
    SimulatorConfig cfg = quickConfig();
    ServingReport r = ServingSimulator(cfg).run();
    std::string j = r.json();
    EXPECT_EQ(j.front(), '{');
    EXPECT_EQ(j.back(), '}');
    for (const char *key :
         {"\"ttft\"", "\"busy_time_us\"", "\"prefill_us\"",
          "\"decode_us\"", "\"comm_us\"", "\"codebook_upload_us\"",
          "\"shards\"", "\"tp_degree\""})
        EXPECT_NE(j.find(key), std::string::npos) << key;
}

} // namespace
} // namespace vqllm::serving
