/**
 * @file
 * Tests for the CUDA source emitter: structural validity, parameter
 * embedding, and per-config code paths (unaligned unpack, lattice
 * decode, shuffle schedules, reduction epilogues).
 */
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "codegen/cuda_emitter.h"
#include "engine/template_engine.h"

namespace vqllm::codegen {
namespace {

using engine::OpKind;
using engine::OptLevel;

engine::PlanInputs
inputs()
{
    engine::PlanInputs in;
    in.spec = &gpusim::rtx4090();
    return in;
}

engine::KernelPlan
attnPlan(const vq::VQConfig &cfg, OptLevel level)
{
    return engine::planAttentionKernel({1, 32, 1024, 128}, cfg, level,
                                       inputs());
}

engine::KernelPlan
gemvPlan(const vq::VQConfig &cfg, OptLevel level)
{
    return engine::planWeightKernel(OpKind::GeMV, {1, 4096, 4096}, cfg,
                                    level, inputs());
}

TEST(CudaEmitter, EmitsStructurallyValidSource)
{
    for (const auto &cfg : vq::paperConfigs()) {
        bool kv = cfg.scope == vq::CodebookScope::PerChannelGroup;
        for (OptLevel level : engine::kAllOptLevels) {
            auto plan = kv ? attnPlan(cfg, level) : gemvPlan(cfg, level);
            std::string src = emitCudaKernel(plan);
            EXPECT_EQ(validateCudaSource(src), "")
                << cfg.name << " @ " << engine::optLevelName(level);
        }
    }
}

TEST(CudaEmitter, ParametersAreEmbedded)
{
    auto plan = attnPlan(vq::cq2(), OptLevel::O4);
    std::string src = emitCudaKernel(plan);
    EXPECT_NE(src.find("#define VQ_VECTOR_SIZE 4"), std::string::npos);
    EXPECT_NE(src.find("#define VQ_INDEX_BITS 8"), std::string::npos);
    EXPECT_NE(src.find("#define CB_N_REG " +
                       std::to_string(plan.cache_plan.n_reg)),
              std::string::npos);
    EXPECT_NE(src.find("#define CB_N_SHARED " +
                       std::to_string(plan.cache_plan.n_shared)),
              std::string::npos);
    EXPECT_NE(src.find("#define DF_SPLIT_FACTOR " +
                       std::to_string(plan.dataflow.split)),
              std::string::npos);
}

TEST(CudaEmitter, CodebookCacheApiIsPresent)
{
    std::string src = emitCudaKernel(attnPlan(vq::cq2(), OptLevel::O2));
    EXPECT_NE(src.find("cb_load"), std::string::npos);
    EXPECT_NE(src.find("cb_access"), std::string::npos);
    EXPECT_NE(src.find("cb_switch"), std::string::npos);
    // Tier boundary tests, not tag lookups.
    EXPECT_NE(src.find("stored_index < CB_N_REG"), std::string::npos);
    EXPECT_NE(src.find("stored_index < CB_N_SHARED"), std::string::npos);
}

TEST(CudaEmitter, UnalignedIndexUnpackForAqlm)
{
    // 12-bit indices need the two-word funnel shift.
    std::string src = emitCudaKernel(gemvPlan(vq::aqlm3(), OptLevel::O2));
    EXPECT_NE(src.find("funnel"), std::string::npos);
    EXPECT_NE(src.find("#define VQ_INDEX_BITS 12"), std::string::npos);
    // Aligned 8-bit config takes the shift/mask path instead.
    std::string aligned =
        emitCudaKernel(gemvPlan(vq::gptvq2(), OptLevel::O2));
    EXPECT_EQ(aligned.find("funnel"), std::string::npos);
    EXPECT_NE(aligned.find("per_word"), std::string::npos);
}

TEST(CudaEmitter, LatticeDecodeForQuip)
{
    std::string src = emitCudaKernel(gemvPlan(vq::quip4(), OptLevel::O2));
    EXPECT_NE(src.find("signs"), std::string::npos);
    EXPECT_NE(src.find("__hneg"), std::string::npos);
    EXPECT_NE(src.find("#define VQ_LATTICE 1"), std::string::npos);
}

TEST(CudaEmitter, RegisterFusionEmitsShuffleSchedule)
{
    auto plan = attnPlan(vq::cq2(), OptLevel::O4);
    ASSERT_EQ(plan.fusion.level, engine::FusionLevel::Register);
    std::string src = emitCudaKernel(plan);
    EXPECT_NE(src.find("__shfl_xor_sync"), std::string::npos);
    // CQ-2 needs 3 shuffles -> offsets 1, 2, 3 each appear.
    for (int off : {1, 2, 3}) {
        EXPECT_NE(src.find(", " + std::to_string(off) + ");"),
                  std::string::npos)
            << "offset " << off;
    }
}

TEST(CudaEmitter, SharedFusionEmitsStaging)
{
    auto plan = attnPlan(vq::cq2(), OptLevel::O2);
    ASSERT_EQ(plan.fusion.level, engine::FusionLevel::Shared);
    std::string src = emitCudaKernel(plan);
    EXPECT_NE(src.find("shared_fusion_store"), std::string::npos);
    EXPECT_EQ(src.find("__shfl_xor_sync"), std::string::npos);
}

TEST(CudaEmitter, ReduceKernelOnlyWhenSplit)
{
    auto o3 = attnPlan(vq::cq2(), OptLevel::O3);
    ASSERT_GT(o3.dataflow.split, 1u);
    std::string with = emitCudaKernel(o3);
    EXPECT_NE(with.find("_reduce("), std::string::npos);

    auto o2 = attnPlan(vq::cq2(), OptLevel::O2);
    std::string without = emitCudaKernel(o2);
    EXPECT_EQ(without.find("_reduce("), std::string::npos);
}

TEST(CudaEmitter, LauncherUsesPlanGeometry)
{
    auto plan = gemvPlan(vq::gptvq2(), OptLevel::O4);
    std::string src = emitCudaKernel(plan);
    EXPECT_NE(src.find("dim3 grid(" +
                       std::to_string(plan.grid_blocks) + ")"),
              std::string::npos);
    EXPECT_NE(src.find("cudaLaunchKernel"), std::string::npos);
}

TEST(CudaEmitter, SymbolNamesUniqueAcrossLevelsShapesAndFusion)
{
    // Two plans differing in any of level, shape, op kind, config, or
    // fusion must emit distinct symbols: the dump example writes one
    // file per symbol and a deployment links the units together.
    std::set<std::string> names;
    std::size_t expected = 0;
    for (const auto &cfg : vq::paperConfigs()) {
        bool kv = cfg.scope == vq::CodebookScope::PerChannelGroup;
        for (OptLevel level : engine::kAllOptLevels) {
            std::vector<engine::KernelPlan> plans;
            if (kv) {
                plans.push_back(attnPlan(cfg, level));
                plans.push_back(engine::planAttentionKernel(
                    {8, 32, 4096, 128}, cfg, level, inputs()));
            } else {
                plans.push_back(gemvPlan(cfg, level));
                plans.push_back(engine::planWeightKernel(
                    OpKind::GeMV, {1, 8192, 8192}, cfg, level,
                    inputs()));
                plans.push_back(engine::planWeightKernel(
                    OpKind::GeMM, {4096, 4096, 4096}, cfg, level,
                    inputs()));
            }
            for (const auto &plan : plans) {
                names.insert(kernelSymbolName(plan));
                ++expected;
            }
        }
    }
    EXPECT_EQ(names.size(), expected);

    // Identical shape and level, different fusion decision: the
    // symbol must still differ.
    auto plan = attnPlan(vq::cq2(), OptLevel::O4);
    ASSERT_EQ(plan.fusion.level, engine::FusionLevel::Register);
    auto shared_fusion = plan;
    shared_fusion.fusion.level = engine::FusionLevel::Shared;
    EXPECT_NE(kernelSymbolName(plan), kernelSymbolName(shared_fusion));

    // Identical shape/level/fusion, different cache boundaries (the
    // access histogram moves them): the emitted body embeds
    // CB_N_REG/CB_N_SHARED, so the symbol must differ too.
    auto other_hist = plan;
    other_hist.cache_plan.n_reg = plan.cache_plan.n_reg + 4;
    EXPECT_NE(kernelSymbolName(plan), kernelSymbolName(other_hist));
}

TEST(CudaEmitter, SymbolNamesAreSanitized)
{
    auto plan = gemvPlan(vq::quip4(), OptLevel::O4);
    std::string name = kernelSymbolName(plan);
    EXPECT_EQ(name.find('#'), std::string::npos);
    EXPECT_EQ(name.find('-'), std::string::npos);
    EXPECT_NE(name.find("quip"), std::string::npos);
    EXPECT_NE(name.find("gemv"), std::string::npos);
}

TEST(CudaEmitter, ValidatorCatchesDefects)
{
    EXPECT_NE(validateCudaSource("__global__ void f() {"), "");
    EXPECT_NE(validateCudaSource("void f() {}"), ""); // no __global__
    EXPECT_NE(validateCudaSource("__global__ void f() { g(; }"), "");
    EXPECT_EQ(validateCudaSource("__global__ void f() { g(1); }"), "");
    // Braces inside comments and strings are ignored.
    EXPECT_EQ(validateCudaSource(
                  "__global__ void f() { // }}}\n const char* s = "
                  "\"{\"; }"),
              "");
}

} // namespace
} // namespace vqllm::codegen
