/**
 * @file
 * Tests for bit-packed index streams and integer helpers.
 */
#include <gtest/gtest.h>

#include "common/bitutils.h"
#include "common/rng.h"

namespace vqllm {
namespace {

TEST(BitStream, RoundTripUnaligned12Bit)
{
    // The AQLM-3 format: 12-bit indices packed with no padding.
    BitStream bs(12);
    Rng rng(1);
    std::vector<std::uint32_t> values;
    for (int i = 0; i < 1000; ++i) {
        auto v = static_cast<std::uint32_t>(rng.uniformInt(1u << 12));
        values.push_back(v);
        bs.push(v);
    }
    ASSERT_EQ(bs.size(), values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        EXPECT_EQ(bs.get(i), values[i]) << i;
    // Dense packing: 1000 * 12 bits = 1500 bytes exactly.
    EXPECT_EQ(bs.sizeBytes(), 1500u);
}

class BitStreamWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BitStreamWidth, RoundTripAllWidths)
{
    unsigned bits = GetParam();
    BitStream bs(bits);
    Rng rng(bits);
    std::vector<std::uint32_t> values;
    std::uint64_t mod = bits >= 32 ? (1ull << 32) : (1ull << bits);
    for (int i = 0; i < 257; ++i) {
        auto v = static_cast<std::uint32_t>(rng.uniformInt(mod));
        values.push_back(v);
        bs.push(v);
    }
    for (std::size_t i = 0; i < values.size(); ++i)
        ASSERT_EQ(bs.get(i), values[i]) << "width " << bits << " idx " << i;
    // Dense packing property: total bits used == count * width.
    EXPECT_EQ(bs.sizeBytes(), (values.size() * bits + 7) / 8);
}

INSTANTIATE_TEST_SUITE_P(Widths, BitStreamWidth,
                         ::testing::Values(1u, 2u, 3u, 4u, 7u, 8u, 11u, 12u,
                                           13u, 16u, 17u, 24u, 31u, 32u));

TEST(BitStream, CrossesWordBoundaryMatchesArithmetic)
{
    BitStream bs(12);
    for (int i = 0; i < 64; ++i)
        bs.push(0);
    int crossings = 0;
    for (std::size_t i = 0; i < 64; ++i) {
        bool expect = (i * 12) / 32 != (i * 12 + 11) / 32;
        EXPECT_EQ(bs.crossesWordBoundary(i), expect) << i;
        crossings += bs.crossesWordBoundary(i);
    }
    // 12-bit values cross a 32-bit boundary in 2 of every 8 positions.
    EXPECT_EQ(crossings, 64 * 2 / 8);
    // Aligned widths never cross.
    BitStream aligned(8);
    for (int i = 0; i < 16; ++i)
        aligned.push(0);
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_FALSE(aligned.crossesWordBoundary(i));
}

TEST(BitUtils, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(256), 8u);
    EXPECT_EQ(ceilLog2(257), 9u);
    EXPECT_EQ(ceilLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(65536), 16u);
}

TEST(BitUtils, RoundUpAndCeilDiv)
{
    EXPECT_EQ(roundUp(0, 128), 0u);
    EXPECT_EQ(roundUp(1, 128), 128u);
    EXPECT_EQ(roundUp(128, 128), 128u);
    EXPECT_EQ(roundUp(129, 128), 256u);
    EXPECT_EQ(ceilDiv(7, 3), 3u);
    EXPECT_EQ(ceilDiv(6, 3), 2u);
    EXPECT_EQ(ceilDiv(1, 3), 1u);
}

TEST(BitUtils, IsPowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(1023));
}

} // namespace
} // namespace vqllm
