/**
 * @file
 * Tests for the deterministic parallel runtime: chunk layout, exact
 * coverage, ordered reductions, thread-count overrides and nesting.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <vector>

#include "common/parallel.h"
#include "common/simd.h"

namespace vqllm::par {
namespace {

/** Restores the programmatic thread override on scope exit. */
struct ThreadGuard
{
    ~ThreadGuard() { setThreads(0); }
};

TEST(Parallel, ChunkLayout)
{
    EXPECT_EQ(chunkCount(0, 8), 0u);
    EXPECT_EQ(chunkCount(1, 8), 1u);
    EXPECT_EQ(chunkCount(8, 8), 1u);
    EXPECT_EQ(chunkCount(9, 8), 2u);
    EXPECT_EQ(chunkCount(64, 8), 8u);

    auto c0 = chunkAt(10, 4, 0);
    EXPECT_EQ(c0.begin, 0u);
    EXPECT_EQ(c0.end, 4u);
    auto c2 = chunkAt(10, 4, 2);
    EXPECT_EQ(c2.begin, 8u);
    EXPECT_EQ(c2.end, 10u);
    EXPECT_EQ(c2.size(), 2u);
}

TEST(Parallel, CoversEveryIndexExactlyOnce)
{
    ThreadGuard guard;
    setThreads(8);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (auto &h : hits)
        h.store(0);
    parallelFor(n, 7, [&](const ChunkRange &c) {
        for (std::size_t i = c.begin; i < c.end; ++i)
            hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Parallel, OrderedSumBitIdenticalAcrossThreadCounts)
{
    ThreadGuard guard;
    // Values chosen so naive reassociation changes the float result.
    const std::size_t n = 4096;
    std::vector<double> vals(n);
    for (std::size_t i = 0; i < n; ++i)
        vals[i] = 1.0 / (1.0 + static_cast<double>(i) * 0.37) *
                  (i % 3 == 0 ? 1e-8 : 1e8);

    auto sum_at = [&](int threads) {
        setThreads(threads);
        return parallelSum<double>(n, 64, [&](const ChunkRange &c) {
            double s = 0;
            for (std::size_t i = c.begin; i < c.end; ++i)
                s += vals[i];
            return s;
        });
    };
    double s1 = sum_at(1);
    double s8 = sum_at(8);
    double s3 = sum_at(3);
    EXPECT_EQ(s1, s8); // bit-identical, not NEAR
    EXPECT_EQ(s1, s3);
}

TEST(Parallel, NestedCallsRunInlineWithoutDeadlock)
{
    ThreadGuard guard;
    setThreads(4);
    std::atomic<int> total{0};
    parallelFor(8, 1, [&](const ChunkRange &) {
        parallelFor(8, 1, [&](const ChunkRange &) {
            total.fetch_add(1);
        });
    });
    EXPECT_EQ(total.load(), 64);
}

TEST(Parallel, SetThreadsOverridesEnvironment)
{
    ThreadGuard guard;
    setenv("VQLLM_THREADS", "3", 1);
    EXPECT_EQ(maxThreads(), 3);
    setThreads(5);
    EXPECT_EQ(maxThreads(), 5);
    setThreads(0);
    EXPECT_EQ(maxThreads(), 3);
    unsetenv("VQLLM_THREADS");
    EXPECT_GE(maxThreads(), 1);
}

TEST(Parallel, EmptyAndSingleChunkRanges)
{
    ThreadGuard guard;
    setThreads(8);
    int calls = 0;
    parallelFor(0, 16, [&](const ChunkRange &) { ++calls; });
    EXPECT_EQ(calls, 0);
    // Single chunk runs inline on the caller.
    parallelFor(5, 16, [&](const ChunkRange &c) {
        ++calls;
        EXPECT_EQ(c.begin, 0u);
        EXPECT_EQ(c.end, 5u);
    });
    EXPECT_EQ(calls, 1);
}

TEST(Simd, PrimitivesMatchScalarReference)
{
    std::vector<float> a(37), b(37), acc(37, 0.5f), acc_ref(37, 0.5f);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = 0.25f * static_cast<float>(i) - 3.0f;
        b[i] = 1.5f - 0.125f * static_cast<float>(i);
    }
    double dot_ref = 0, dist_ref = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        dot_ref += static_cast<double>(a[i]) * b[i];
        double d = static_cast<double>(a[i]) - b[i];
        dist_ref += d * d;
        acc_ref[i] += 2.5f * a[i];
    }
    EXPECT_NEAR(simd::dot(a.data(), b.data(), a.size()), dot_ref, 1e-2);
    EXPECT_NEAR(simd::squaredDistance(a.data(), b.data(), a.size()),
                dist_ref, 1e-2);
    simd::fmaInto(acc.data(), a.data(), 2.5f, a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(acc[i], acc_ref[i], 1e-4) << i;
    EXPECT_NE(simd::activeIsa(), nullptr);
}

} // namespace
} // namespace vqllm::par
