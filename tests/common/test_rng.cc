/**
 * @file
 * Tests for the deterministic RNG and distribution helpers.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace vqllm {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000, 0.5, 0.01);
}

TEST(Rng, NormalMoments)
{
    Rng rng(9);
    double sum = 0, sq = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(13);
    std::vector<double> weights = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.weightedIndex(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(21);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(PowerLawWeights, MonotoneDecreasingAndSkewed)
{
    auto w = powerLawWeights(100, 1.0);
    ASSERT_EQ(w.size(), 100u);
    for (std::size_t i = 1; i < w.size(); ++i)
        EXPECT_LE(w[i], w[i - 1]);
    // alpha=0 is uniform.
    auto u = powerLawWeights(10, 0.0);
    for (double x : u)
        EXPECT_DOUBLE_EQ(x, 1.0);
}

} // namespace
} // namespace vqllm
