/**
 * @file
 * Tests for text-table rendering and numeric formatting.
 */
#include <gtest/gtest.h>

#include "common/table.h"

namespace vqllm {
namespace {

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "12345"});
    std::string out = t.render();
    EXPECT_NE(out.find("| name "), std::string::npos);
    EXPECT_NE(out.find("| alpha "), std::string::npos);
    EXPECT_NE(out.find("12345"), std::string::npos);
    // Header + rule + 2 rows = 4 lines.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTableDeath, RowArityMismatchPanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

TEST(Format, Double)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
    EXPECT_EQ(formatDouble(-1.5, 1), "-1.5");
}

TEST(Format, Bytes)
{
    EXPECT_EQ(formatBytes(512), "512.0 B");
    EXPECT_EQ(formatBytes(2048), "2.00 KiB");
    EXPECT_EQ(formatBytes(128.0 * 1024), "128.0 KiB");
    EXPECT_EQ(formatBytes(3.5 * 1024 * 1024 * 1024), "3.50 GiB");
}

TEST(Format, Percent)
{
    EXPECT_EQ(formatPercent(0.4613), "46.13%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
}

} // namespace
} // namespace vqllm
