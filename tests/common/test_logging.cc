/**
 * @file
 * Tests for the logging helpers (non-fatal paths only).
 */
#include <gtest/gtest.h>

#include "common/logging.h"

namespace vqllm {
namespace {

TEST(Logging, VerboseToggle)
{
    bool initial = verbose();
    setVerbose(true);
    EXPECT_TRUE(verbose());
    setVerbose(false);
    EXPECT_FALSE(verbose());
    setVerbose(initial);
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    vqllm_warn("test warn message ", 42);
    vqllm_inform("test inform message ", 3.14);
    SUCCEED();
}

TEST(Logging, AssertPassesOnTrueCondition)
{
    vqllm_assert(1 + 1 == 2, "math works");
    SUCCEED();
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH({ vqllm_panic("boom ", 1); }, "panic");
}

TEST(LoggingDeath, AssertAbortsOnFalse)
{
    EXPECT_DEATH({ vqllm_assert(false, "must fail"); }, "assertion failed");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT({ vqllm_fatal("bad config"); },
                ::testing::ExitedWithCode(1), "fatal");
}

TEST(Logging, ConcatFoldsMixedTypes)
{
    EXPECT_EQ(detail::concat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(detail::concat(), "");
}

} // namespace
} // namespace vqllm
