/**
 * @file
 * Unit and property tests for the software FP16 type.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/float16.h"
#include "common/rng.h"

namespace vqllm {
namespace {

TEST(Float16, ExactSmallIntegers)
{
    // All integers up to 2048 are exactly representable in binary16.
    for (int i = -2048; i <= 2048; ++i) {
        Half h(static_cast<float>(i));
        EXPECT_EQ(static_cast<float>(h), static_cast<float>(i)) << i;
    }
}

TEST(Float16, KnownBitPatterns)
{
    EXPECT_EQ(Half(0.0f).bits(), 0x0000);
    EXPECT_EQ(Half(-0.0f).bits(), 0x8000);
    EXPECT_EQ(Half(1.0f).bits(), 0x3c00);
    EXPECT_EQ(Half(-1.0f).bits(), 0xbc00);
    EXPECT_EQ(Half(2.0f).bits(), 0x4000);
    EXPECT_EQ(Half(0.5f).bits(), 0x3800);
    EXPECT_EQ(Half(65504.0f).bits(), 0x7bff); // max finite half
}

TEST(Float16, OverflowToInfinity)
{
    EXPECT_EQ(Half(65536.0f).bits(), 0x7c00);
    EXPECT_EQ(Half(-1e10f).bits(), 0xfc00);
    EXPECT_TRUE(std::isinf(static_cast<float>(Half(1e30f))));
}

TEST(Float16, NanPropagates)
{
    float nan = std::numeric_limits<float>::quiet_NaN();
    EXPECT_TRUE(std::isnan(static_cast<float>(Half(nan))));
}

TEST(Float16, SubnormalsRoundTrip)
{
    // Smallest positive subnormal half = 2^-24.
    float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(static_cast<float>(Half(tiny)), tiny);
    // Smallest normal half = 2^-14.
    float min_normal = std::ldexp(1.0f, -14);
    EXPECT_EQ(static_cast<float>(Half(min_normal)), min_normal);
    // Below half the smallest subnormal rounds to zero.
    EXPECT_EQ(static_cast<float>(Half(std::ldexp(1.0f, -26))), 0.0f);
}

TEST(Float16, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly halfway between 1.0 and the next half
    // (1 + 2^-10); nearest-even rounds down to 1.0.
    float halfway = 1.0f + std::ldexp(1.0f, -11);
    EXPECT_EQ(Half(halfway).bits(), 0x3c00);
    // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; nearest-even
    // rounds up to the even mantissa (...10).
    float halfway_up = 1.0f + 3 * std::ldexp(1.0f, -11);
    EXPECT_EQ(Half(halfway_up).bits(), 0x3c02);
}

TEST(Float16, RoundTripIsIdempotent)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        float x = static_cast<float>(rng.normal(0.0, 10.0));
        float once = roundToHalf(x);
        float twice = roundToHalf(once);
        EXPECT_EQ(once, twice);
    }
}

TEST(Float16, RelativeErrorBounded)
{
    // For normal-range values the rounding error is <= 2^-11 relative.
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        float x = static_cast<float>(rng.uniform(-1000.0, 1000.0));
        if (std::abs(x) < 1e-3)
            continue;
        float h = roundToHalf(x);
        EXPECT_LE(std::abs(h - x) / std::abs(x), std::ldexp(1.0f, -11));
    }
}

TEST(Float16, BitsRoundTripThroughFloat)
{
    // Every finite half bit pattern converts to float and back unchanged.
    for (std::uint32_t b = 0; b < 0x10000; ++b) {
        auto bits = static_cast<std::uint16_t>(b);
        std::uint32_t exp = (bits >> 10) & 0x1f;
        if (exp == 0x1f)
            continue; // inf/nan payloads are normalized, skip
        Half h = Half::fromBits(bits);
        Half back(static_cast<float>(h));
        EXPECT_EQ(back.bits(), bits) << "pattern " << b;
    }
}

TEST(Float16, ArithmeticMatchesFloatRoundtrip)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        float a = roundToHalf(static_cast<float>(rng.normal()));
        float b = roundToHalf(static_cast<float>(rng.normal()));
        Half ha(a), hb(b);
        Half sum = ha;
        sum += hb;
        EXPECT_EQ(static_cast<float>(sum), roundToHalf(a + b));
        Half prod = ha;
        prod *= hb;
        EXPECT_EQ(static_cast<float>(prod), roundToHalf(a * b));
    }
}

} // namespace
} // namespace vqllm
