/**
 * @file
 * Tests for the compiler::Engine facade: artifact parity with the
 * hand-stitched pipeline, memoization semantics (same pointer, hit and
 * eviction counters), cross-thread sharing, and the execution hooks.
 */
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "codegen/cuda_emitter.h"
#include "compiler/engine.h"
#include "engine/template_engine.h"
#include "kernels/reference.h"
#include "tensor/datagen.h"
#include "vq/profiler.h"
#include "vq/quantizer.h"

namespace vqllm::compiler {
namespace {

using engine::OptLevel;

KernelRequest
gemvRequest(OptLevel level = OptLevel::O4,
            const vq::AccessHistogram *hist = nullptr)
{
    return KernelRequest::gemvOp({1, 4096, 4096}, vq::gptvq2(), level,
                                 hist);
}

TEST(CompilerEngine, ArtifactMatchesHandStitchedPipeline)
{
    const auto &spec = gpusim::rtx4090();
    auto hist = vq::syntheticZipfHistogram(256);

    Engine eng(spec);
    auto kernel = eng.compile(gemvRequest(OptLevel::O4, &hist));

    engine::PlanInputs in;
    in.spec = &spec;
    in.histogram = &hist;
    auto plan = engine::planWeightKernel(engine::OpKind::GeMV,
                                         {1, 4096, 4096}, vq::gptvq2(),
                                         OptLevel::O4, in);
    auto estimate = kernels::estimateVqWeightKernel(spec, plan, &hist);

    EXPECT_EQ(kernel->plan().summary(), plan.summary());
    EXPECT_DOUBLE_EQ(kernel->latencyUs(), estimate.us());
    EXPECT_EQ(kernel->symbolName(), codegen::kernelSymbolName(plan));
    EXPECT_EQ(kernel->source(), codegen::emitCudaKernel(plan));
    EXPECT_EQ(codegen::validateCudaSource(kernel->source()), "");
}

TEST(CompilerEngine, AttentionArtifactMatchesPipeline)
{
    const auto &spec = gpusim::teslaA40();
    Engine eng(spec);
    auto kernel = eng.compile(KernelRequest::attentionOp(
        {1, 32, 2048, 128}, vq::cq2(), OptLevel::O3));

    engine::PlanInputs in;
    in.spec = &spec;
    auto plan = engine::planAttentionKernel({1, 32, 2048, 128},
                                            vq::cq2(), OptLevel::O3, in);
    auto estimate = kernels::estimateVqAttentionKernel(spec, plan);
    EXPECT_EQ(kernel->plan().summary(), plan.summary());
    EXPECT_DOUBLE_EQ(kernel->latencyUs(), estimate.us());
}

TEST(CompilerEngine, RepeatedCompileReturnsSameArtifact)
{
    Engine eng(gpusim::rtx4090());
    auto a = eng.compile(gemvRequest());
    auto b = eng.compile(gemvRequest());
    EXPECT_EQ(a.get(), b.get());

    auto stats = eng.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(stats.size, 1u);
    EXPECT_DOUBLE_EQ(stats.hitRate(), 0.5);
}

TEST(CompilerEngine, DistinctRequestsCompileDistinctArtifacts)
{
    Engine eng(gpusim::rtx4090());
    auto o2 = eng.compile(gemvRequest(OptLevel::O2));
    auto o4 = eng.compile(gemvRequest(OptLevel::O4));
    EXPECT_NE(o2.get(), o4.get());
    EXPECT_NE(o2->symbolName(), o4->symbolName());
    EXPECT_EQ(eng.stats().misses, 2u);
}

TEST(CompilerEngine, CompileBestPicksLowestLatency)
{
    Engine eng(gpusim::rtx4090());
    std::vector<OptLevel> levels = {OptLevel::O2, OptLevel::O3,
                                    OptLevel::O4};
    auto best = eng.compileBest(gemvRequest(), levels);
    for (auto level : levels) {
        auto k = eng.compile(gemvRequest(level));
        EXPECT_LE(best->latencyUs(), k->latencyUs())
            << engine::optLevelName(level);
    }
}

TEST(CompilerEngine, CapacityZeroDisablesRetentionNotResults)
{
    EngineOptions opts;
    opts.cache_capacity = 0;
    Engine cold(gpusim::rtx4090(), opts);
    Engine cached(gpusim::rtx4090());

    auto a = cold.compile(gemvRequest());
    auto b = cold.compile(gemvRequest());
    EXPECT_NE(a.get(), b.get()); // nothing retained
    EXPECT_DOUBLE_EQ(a->latencyUs(), b->latencyUs());
    EXPECT_EQ(a->plan().summary(), b->plan().summary());

    auto c = cached.compile(gemvRequest());
    EXPECT_DOUBLE_EQ(a->latencyUs(), c->latencyUs());

    auto stats = cold.stats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.evictions, 2u);
    EXPECT_EQ(stats.size, 0u);
}

TEST(CompilerEngine, FifoEvictionIsBounded)
{
    EngineOptions opts;
    opts.cache_capacity = 2;
    Engine eng(gpusim::rtx4090(), opts);
    eng.compile(gemvRequest(OptLevel::O1));
    eng.compile(gemvRequest(OptLevel::O2));
    eng.compile(gemvRequest(OptLevel::O3)); // evicts O1
    auto stats = eng.stats();
    EXPECT_EQ(stats.size, 2u);
    EXPECT_EQ(stats.evictions, 1u);
    // O1 was evicted: compiling it again is a miss...
    eng.compile(gemvRequest(OptLevel::O1));
    EXPECT_EQ(eng.stats().misses, 4u);
    // ...while O3 (still resident) is a hit.
    eng.compile(gemvRequest(OptLevel::O3));
    EXPECT_EQ(eng.stats().hits, 1u);
}

TEST(CompilerEngine, ConcurrentCompilesShareOneArtifact)
{
    Engine eng(gpusim::rtx4090());
    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const CompiledKernel>> seen(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back(
            [&, t] { seen[t] = eng.compile(gemvRequest()); });
    for (auto &th : threads)
        th.join();
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(seen[0].get(), seen[t].get());
    auto stats = eng.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(CompilerEngine, ArtifactOutlivesEviction)
{
    EngineOptions opts;
    opts.cache_capacity = 1;
    Engine eng(gpusim::rtx4090(), opts);
    auto held = eng.compile(gemvRequest(OptLevel::O2));
    eng.compile(gemvRequest(OptLevel::O4)); // evicts the held artifact
    EXPECT_EQ(eng.stats().evictions, 1u);
    // The handle stays fully usable after the cache dropped it.
    EXPECT_GT(held->latencyUs(), 0.0);
    EXPECT_EQ(codegen::validateCudaSource(held->source()), "");
}

TEST(CompilerEngine, RunHooksMatchDirectKernelExecution)
{
    Rng rng(91);
    auto weight = generateLlmWeight(96, 64, rng);
    vq::VQConfig cfg = vq::gptvq2();
    cfg.num_entries = 32;
    vq::KMeansOptions fit;
    fit.max_iters = 4;
    auto qt = vq::VectorQuantizer(cfg, fit).quantize(weight);
    vq::reorderByFrequency(qt);
    Tensor<float> x({qt.cols});
    fillNormal(x, rng);

    Engine eng(gpusim::rtx4090());
    auto kernel = eng.compile(
        KernelRequest::gemvOp({1, qt.rows, qt.cols}, cfg, OptLevel::O4));
    auto via_engine = kernel->runGemv(qt, x);
    auto direct = kernels::runVqGemv(kernel->plan(), qt, x);
    EXPECT_EQ(maxAbsDiff(via_engine.output, direct.output), 0.0f);
    EXPECT_EQ(via_engine.stats.reg_hits, direct.stats.reg_hits);
    EXPECT_EQ(via_engine.stats.shared_hits, direct.stats.shared_hits);
    EXPECT_EQ(via_engine.stats.global_hits, direct.stats.global_hits);
}

TEST(CompilerEngineDeathTest, RunHookRejectsKindMismatch)
{
    Engine eng(gpusim::rtx4090());
    auto kernel = eng.compile(gemvRequest());
    vq::QuantizedTensor qt;
    Tensor<float> x({4});
    EXPECT_DEATH(kernel->runGemm(qt, x), "runGemm on a GeMV artifact");
}

TEST(CompilerEngine, SharedRegistryReturnsOneEnginePerSpec)
{
    Engine &a = Engine::shared(gpusim::rtx4090());
    Engine &b = Engine::shared(gpusim::rtx4090());
    Engine &c = Engine::shared(gpusim::teslaA40());
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &c);
    // The registry copies the spec, so the engine survives the
    // caller's spec object.
    gpusim::GpuSpec local = gpusim::rtx4090();
    local.name = "local-ephemeral";
    Engine *d = nullptr;
    {
        gpusim::GpuSpec scoped = local;
        d = &Engine::shared(scoped);
    }
    EXPECT_EQ(d->spec().name, "local-ephemeral");
}

TEST(CompilerEngine, ClearCacheDropsEntriesKeepsCounters)
{
    Engine eng(gpusim::rtx4090());
    eng.compile(gemvRequest());
    eng.compile(gemvRequest());
    eng.clearCache();
    auto stats = eng.stats();
    EXPECT_EQ(stats.size, 0u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    // Recompile after clear is a miss producing an equal artifact.
    auto again = eng.compile(gemvRequest());
    EXPECT_EQ(eng.stats().misses, 2u);
    EXPECT_GT(again->latencyUs(), 0.0);
}

} // namespace
} // namespace vqllm::compiler
