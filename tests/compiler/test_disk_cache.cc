/**
 * @file
 * Tests for compiler::DiskCache — the persistent second cache tier.
 *
 * Covers the tier protocol end to end: bit-identical round-trips of
 * kernel artifacts and codebooks, warm second engines pricing with
 * zero recompiles, serving-report bit-identity on a warm directory
 * (and cache-off parity), and every corruption path — truncation,
 * bit flips, wrong magic, embedded-key mismatch — degrading to a
 * clean miss with quarantine, never a crash or a wrong kernel.  Also
 * concurrent writers sharing one directory and LRU capacity eviction.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "compiler/disk_cache.h"
#include "compiler/engine.h"
#include "serving/simulator.h"
#include "tensor/datagen.h"
#include "vq/quantizer.h"

namespace vqllm::compiler {
namespace {

namespace fs = std::filesystem;

using engine::OptLevel;

/** Fresh cache directory under the cwd, removed on destruction.
 *  Gtest runs tests sequentially within one binary, so fixed names
 *  derived from the test name never collide. */
class CacheDir
{
  public:
    explicit CacheDir(const std::string &suffix = "")
        : path_(std::string("disk_cache_test_") +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                suffix)
    {
        fs::remove_all(path_);
    }
    ~CacheDir() { fs::remove_all(path_); }

    const std::string &path() const { return path_; }

    /** Entry files currently in the directory (excludes the index). */
    std::vector<fs::path>
    entries() const
    {
        std::vector<fs::path> files;
        for (const auto &e : fs::directory_iterator(path_))
            if (e.is_regular_file() && e.path().extension() == ".vqdk")
                files.push_back(e.path());
        std::sort(files.begin(), files.end());
        return files;
    }

    std::size_t
    quarantined() const
    {
        fs::path q = fs::path(path_) / "quarantine";
        if (!fs::exists(q))
            return 0;
        return static_cast<std::size_t>(
            std::distance(fs::directory_iterator(q),
                          fs::directory_iterator{}));
    }

  private:
    std::string path_;
};

KernelRequest
gemvRequest(OptLevel level = OptLevel::O4)
{
    return KernelRequest::gemvOp({1, 4096, 4096}, vq::gptvq2(), level);
}

KernelRequest
attnRequest()
{
    return KernelRequest::attentionOp({1, 32, 2048, 128}, vq::cq2(),
                                      OptLevel::O3);
}

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return std::move(buf).str();
}

void
writeFile(const fs::path &p, const std::string &bytes)
{
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(DiskCache, RoundTripIsBitIdentical)
{
    CacheDir dir;
    Engine cold(gpusim::rtx4090());
    cold.setDiskCache(DiskCache::open(dir.path()));
    auto fresh = cold.compile(gemvRequest());

    // A separate instance (fresh index, as a second process would see
    // it) must return an artifact identical in every field.
    DiskCache reader(dir.path());
    Engine key_engine(gpusim::rtx4090());
    auto loaded = reader.loadKernel(key_engine.cacheKey(gemvRequest()));
    ASSERT_NE(loaded, nullptr);

    EXPECT_EQ(loaded->plan().summary(), fresh->plan().summary());
    EXPECT_EQ(loaded->symbolName(), fresh->symbolName());
    EXPECT_EQ(loaded->source(), fresh->source());
    // Doubles round-trip through raw bytes: exact, not approximate.
    EXPECT_EQ(loaded->latencyUs(), fresh->latencyUs());
    EXPECT_EQ(loaded->estimate().counters.dram_read_bytes,
              fresh->estimate().counters.dram_read_bytes);
    EXPECT_EQ(loaded->estimate().counters.flops,
              fresh->estimate().counters.flops);
    EXPECT_EQ(loaded->estimate().latency.occupancy.occupancy,
              fresh->estimate().latency.occupancy.occupancy);

    // Re-admitting the loaded artifact reproduces the stored bytes —
    // serialize(load(x)) == serialize(x), the full-fidelity check.
    CacheDir dir2("_second");
    DiskCache writer2(dir2.path());
    writer2.storeKernel(key_engine.cacheKey(gemvRequest()), *loaded);
    auto first = dir.entries();
    auto second = dir2.entries();
    ASSERT_EQ(first.size(), 1u);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(readFile(first[0]), readFile(second[0]));
}

TEST(DiskCache, AttentionArtifactRoundTrips)
{
    CacheDir dir;
    Engine cold(gpusim::teslaA40());
    cold.setDiskCache(DiskCache::open(dir.path()));
    auto fresh = cold.compile(attnRequest());

    DiskCache reader(dir.path());
    auto loaded = reader.loadKernel(cold.cacheKey(attnRequest()));
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->plan().summary(), fresh->plan().summary());
    EXPECT_EQ(loaded->source(), fresh->source());
    EXPECT_EQ(loaded->latencyUs(), fresh->latencyUs());
}

TEST(DiskCache, WarmEngineCompilesNothing)
{
    CacheDir dir;
    std::vector<KernelRequest> requests = {
        gemvRequest(OptLevel::O2), gemvRequest(OptLevel::O4),
        attnRequest(),
        KernelRequest::gemmOp({64, 4096, 4096}, vq::aqlm3(),
                              OptLevel::O4)};

    Engine cold(gpusim::rtx4090());
    cold.setDiskCache(DiskCache::open(dir.path()));
    for (const auto &r : requests)
        cold.compile(r);

    // Second engine, separate DiskCache instance on the same warm
    // directory: every compile must fill from disk, zero recompiles.
    Engine warm(gpusim::rtx4090());
    auto disk = std::make_shared<DiskCache>(dir.path());
    warm.setDiskCache(disk);
    for (const auto &r : requests)
        warm.compile(r);

    DiskCacheStats stats = disk->stats();
    EXPECT_EQ(stats.hits, requests.size());
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.admits, 0u);
    // The in-memory tier still records misses (report-parity contract).
    EXPECT_EQ(warm.stats().misses, requests.size());
}

TEST(DiskCache, DisabledEngineNeverTouchesDisk)
{
    CacheDir dir;
    Engine plain(gpusim::rtx4090());
    plain.compile(gemvRequest());
    EXPECT_FALSE(fs::exists(dir.path()));
    EXPECT_EQ(plain.diskCache(), nullptr);
}

TEST(DiskCache, ServingReportsBitIdenticalColdWarmAndOff)
{
    CacheDir dir;
    serving::SimulatorConfig cfg;
    cfg.scheme = llm::QuantScheme::VQ4;
    cfg.workload.qps = 6;
    cfg.workload.duration_s = 3;

    // Reference: cache off (pre-change behaviour).
    serving::ServingReport off = serving::ServingSimulator(cfg).run();

    cfg.kernel_cache_dir = dir.path();
    serving::ServingReport cold_run =
        serving::ServingSimulator(cfg).run();
    serving::ServingReport warm_run =
        serving::ServingSimulator(cfg).run();

    EXPECT_EQ(off.json(), cold_run.json());
    EXPECT_EQ(off.json(), warm_run.json());
    EXPECT_GT(dir.entries().size(), 0u);
}

TEST(DiskCache, WarmServingRunPricesWithZeroRecompiles)
{
    CacheDir dir;
    serving::SimulatorConfig cfg;
    cfg.scheme = llm::QuantScheme::VQ2;
    cfg.workload.qps = 6;
    cfg.workload.duration_s = 3;
    cfg.kernel_cache_dir = dir.path();

    serving::ServingSimulator(cfg).run();

    // The "second process": the first sim's instance died with it
    // (weak registry), so this open() re-reads the directory; holding
    // it makes the warm sim share it, so its counters are visible.
    auto disk = DiskCache::open(dir.path());
    std::uint64_t admits_before = disk->stats().admits;
    {
        serving::ServingSimulator warm(cfg);
        serving::ServingReport report = warm.run();
        EXPECT_GT(report.plan_cache_misses, 0u);
    }
    DiskCacheStats stats = disk->stats();
    EXPECT_EQ(stats.admits, admits_before);
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_GT(stats.hits, 0u);
}

TEST(DiskCache, TruncatedEntryQuarantinesAndReadmits)
{
    CacheDir dir;
    Engine eng(gpusim::rtx4090());
    eng.setDiskCache(DiskCache::open(dir.path()));
    eng.compile(gemvRequest());
    auto files = dir.entries();
    ASSERT_EQ(files.size(), 1u);

    // Truncate the entry mid-payload (a crashed writer could not have
    // produced this — rename is atomic — but a torn disk could).
    std::string blob = readFile(files[0]);
    writeFile(files[0], blob.substr(0, blob.size() / 2));

    auto disk = std::make_shared<DiskCache>(dir.path());
    Engine retry(gpusim::rtx4090());
    retry.setDiskCache(disk);
    auto artifact = retry.compile(gemvRequest());
    ASSERT_NE(artifact, nullptr);

    DiskCacheStats stats = disk->stats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.quarantined, 1u);
    EXPECT_EQ(stats.admits, 1u); // Recompiled and re-admitted.
    EXPECT_EQ(dir.quarantined(), 1u);
    // The re-admitted entry is valid again.
    DiskCache reader(dir.path());
    EXPECT_NE(reader.loadKernel(retry.cacheKey(gemvRequest())), nullptr);
}

TEST(DiskCache, CorruptPayloadByteIsACleanMiss)
{
    CacheDir dir;
    Engine eng(gpusim::rtx4090());
    eng.setDiskCache(DiskCache::open(dir.path()));
    eng.compile(gemvRequest());
    auto files = dir.entries();
    ASSERT_EQ(files.size(), 1u);

    // Flip one byte near the end of the payload: the checksum must
    // catch it before any deserializer runs.
    std::string blob = readFile(files[0]);
    blob[blob.size() - 16] ^= 0x40;
    writeFile(files[0], blob);

    DiskCache disk(dir.path());
    EXPECT_EQ(disk.loadKernel(eng.cacheKey(gemvRequest())), nullptr);
    EXPECT_EQ(disk.stats().quarantined, 1u);
    EXPECT_EQ(disk.stats().misses, 1u);
    EXPECT_EQ(dir.quarantined(), 1u);
    EXPECT_TRUE(dir.entries().empty());
}

TEST(DiskCache, WrongMagicQuarantines)
{
    CacheDir dir;
    Engine eng(gpusim::rtx4090());
    auto disk = DiskCache::open(dir.path());
    eng.setDiskCache(disk);
    eng.compile(gemvRequest());
    auto files = dir.entries();
    ASSERT_EQ(files.size(), 1u);
    writeFile(files[0], "garbage that is certainly not an entry");

    DiskCache reader(dir.path());
    EXPECT_EQ(reader.loadKernel(eng.cacheKey(gemvRequest())), nullptr);
    EXPECT_EQ(reader.stats().quarantined, 1u);
}

TEST(DiskCache, EmbeddedKeyMismatchIsACleanMissWithoutQuarantine)
{
    // A filename collision (or an entry written for a different build
    // fingerprint landing at the same name) yields an intact entry
    // whose embedded key differs: the slot belongs to the *other*
    // request, so the file must survive and the lookup must miss.
    CacheDir dir;
    Engine eng(gpusim::rtx4090());
    eng.setDiskCache(DiskCache::open(dir.path()));
    eng.compile(gemvRequest());
    auto files = dir.entries();
    ASSERT_EQ(files.size(), 1u);

    // Simulate the collision by renaming the valid entry to the slot
    // of a different request.
    Engine other(gpusim::rtx4090());
    std::string other_key = other.cacheKey(attnRequest());
    // Reach the colliding filename through the public API: admit the
    // other entry, find its filename, then overwrite it with the
    // first entry's (intact, wrong-keyed) bytes.
    Engine fill(gpusim::rtx4090());
    fill.setDiskCache(DiskCache::open(dir.path()));
    fill.compile(attnRequest());
    auto all = dir.entries();
    ASSERT_EQ(all.size(), 2u);
    fs::path gemv_file = files[0];
    fs::path attn_file = all[0] == gemv_file ? all[1] : all[0];
    writeFile(attn_file, readFile(gemv_file));

    DiskCache fresh(dir.path());
    EXPECT_EQ(fresh.loadKernel(other_key), nullptr);
    EXPECT_EQ(fresh.stats().quarantined, 0u); // Intact: not corrupt.
    EXPECT_EQ(fresh.stats().misses, 1u);
    EXPECT_TRUE(fs::exists(attn_file)); // Clean miss leaves the file.
}

TEST(DiskCache, ConcurrentWritersSharingADirectoryStayConsistent)
{
    CacheDir dir;
    std::vector<KernelRequest> requests;
    for (OptLevel level : engine::kAllOptLevels)
        requests.push_back(gemvRequest(level));
    requests.push_back(attnRequest());

    // Two engines on two *separate* DiskCache instances (as two
    // processes would be), compiling the same requests concurrently:
    // admissions race benignly (atomic rename, last writer wins with
    // identical bytes) and no read may ever crash or mis-key.
    auto worker = [&](int seed) {
        Engine eng(gpusim::rtx4090());
        eng.setDiskCache(std::make_shared<DiskCache>(dir.path()));
        for (std::size_t i = 0; i < requests.size(); ++i) {
            const auto &r =
                requests[(i + static_cast<std::size_t>(seed)) %
                         requests.size()];
            auto artifact = eng.compile(r);
            ASSERT_NE(artifact, nullptr);
            // The artifact must be for the right kernel regardless of
            // who wrote the entry.
            EXPECT_EQ(artifact->plan().kind, r.kind);
            EXPECT_EQ(artifact->plan().level, r.level);
        }
    };
    std::thread a(worker, 0), b(worker, 3);
    a.join();
    b.join();

    // Every request is readable afterwards and keyed correctly.
    Engine check(gpusim::rtx4090());
    DiskCache disk(dir.path());
    for (const auto &r : requests) {
        auto artifact = disk.loadKernel(check.cacheKey(r));
        ASSERT_NE(artifact, nullptr);
        EXPECT_EQ(artifact->plan().level, r.level);
    }
    EXPECT_EQ(disk.stats().quarantined, 0u);
}

TEST(DiskCache, CapacityCapEvictsLeastRecentlyUsed)
{
    CacheDir dir;
    Engine eng(gpusim::rtx4090());

    // Measure one entry's size, then cap the directory at two entries.
    {
        DiskCache probe(dir.path());
        auto artifact = eng.compile(gemvRequest(OptLevel::GC));
        probe.storeKernel(eng.cacheKey(gemvRequest(OptLevel::GC)),
                          *artifact);
    }
    auto files = dir.entries();
    ASSERT_EQ(files.size(), 1u);
    std::uint64_t entry_bytes = fs::file_size(files[0]);
    fs::remove_all(dir.path());

    DiskCacheOptions opts;
    opts.capacity_bytes = entry_bytes * 5 / 2; // Room for ~2 entries.
    auto disk = std::make_shared<DiskCache>(dir.path(), opts);
    eng.clearCache();
    eng.setDiskCache(disk);

    eng.compile(gemvRequest(OptLevel::GC)); // Oldest -> evicted.
    eng.compile(gemvRequest(OptLevel::O2));
    eng.compile(gemvRequest(OptLevel::O4));

    DiskCacheStats stats = disk->stats();
    EXPECT_GE(stats.evictions, 1u);
    EXPECT_LE(stats.bytes, opts.capacity_bytes);

    DiskCache reader(dir.path());
    EXPECT_EQ(reader.loadKernel(eng.cacheKey(gemvRequest(OptLevel::GC))),
              nullptr);
    EXPECT_NE(reader.loadKernel(eng.cacheKey(gemvRequest(OptLevel::O4))),
              nullptr);
}

TEST(DiskCache, CodebookRoundTripReproducesQuantization)
{
    CacheDir dir;
    Rng rng(7);
    auto weights = generateLlmWeight(512, 512, rng);
    vq::VectorQuantizer quantizer(vq::gptvq2());
    auto qt = quantizer.quantize(weights);

    {
        DiskCache writer(dir.path());
        writer.storeCodebook("gptvq2/512x512/seed7", qt);
    }
    DiskCache reader(dir.path());
    vq::QuantizedTensor loaded;
    ASSERT_TRUE(reader.loadCodebook("gptvq2/512x512/seed7", loaded));
    EXPECT_FALSE(reader.loadCodebook("gptvq2/512x512/seed8", loaded));

    vq::QuantizedTensor round = loaded; // From the successful load.
    ASSERT_TRUE(reader.loadCodebook("gptvq2/512x512/seed7", round));
    auto a = quantizer.dequantize(qt);
    auto b = quantizer.dequantize(round);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "element " << i;
}

TEST(DiskCache, IndexSurvivesDeletionAndCorruption)
{
    CacheDir dir;
    Engine eng(gpusim::rtx4090());
    eng.setDiskCache(DiskCache::open(dir.path()));
    eng.compile(gemvRequest());
    eng.compile(attnRequest());

    // Delete the index: a fresh instance rebuilds it from the scan.
    fs::remove(fs::path(dir.path()) / "index.tsv");
    {
        DiskCache disk(dir.path());
        EXPECT_NE(disk.loadKernel(eng.cacheKey(gemvRequest())), nullptr);
        EXPECT_EQ(disk.stats().entries, 2u);
    }
    // Corrupt the index: same story.
    writeFile(fs::path(dir.path()) / "index.tsv", "not\tan index\n###");
    DiskCache disk(dir.path());
    EXPECT_NE(disk.loadKernel(eng.cacheKey(attnRequest())), nullptr);
    EXPECT_EQ(disk.stats().entries, 2u);
}

TEST(DiskCache, OpenRegistrySharesInstancesPerDirectory)
{
    CacheDir dir;
    auto a = DiskCache::open(dir.path());
    auto b = DiskCache::open(dir.path());
    EXPECT_EQ(a.get(), b.get());

    CacheDir other("_other");
    auto c = DiskCache::open(other.path());
    EXPECT_NE(a.get(), c.get());
}

TEST(DiskCache, BuildFingerprintIsStableWithinAProcess)
{
    EXPECT_EQ(DiskCache::buildFingerprint(),
              DiskCache::buildFingerprint());
    EXPECT_FALSE(DiskCache::buildFingerprint().empty());
}

} // namespace
} // namespace vqllm::compiler
