/**
 * @file
 * Cache-key canonicalization tests: every plan-affecting input must
 * separate keys (histogram presence and contents, shuffle threshold,
 * tiling, GPU spec, level, shape, config), while equivalent spellings
 * of one request (attention kv_heads MHA default) must collide.
 */
#include <gtest/gtest.h>

#include "compiler/engine.h"
#include "vq/profiler.h"

namespace vqllm::compiler {
namespace {

using engine::OptLevel;

KernelRequest
baseRequest()
{
    return KernelRequest::gemvOp({1, 4096, 4096}, vq::gptvq2(),
                                 OptLevel::O4);
}

TEST(CacheKey, IdenticalRequestsShareAKey)
{
    Engine eng(gpusim::rtx4090());
    EXPECT_EQ(eng.cacheKey(baseRequest()), eng.cacheKey(baseRequest()));
}

TEST(CacheKey, HistogramPresenceSeparatesKeys)
{
    Engine eng(gpusim::rtx4090());
    auto hist = vq::syntheticZipfHistogram(256);
    auto with = baseRequest();
    with.histogram = &hist;
    EXPECT_NE(eng.cacheKey(baseRequest()), eng.cacheKey(with));
}

TEST(CacheKey, HistogramContentsSeparateKeys)
{
    Engine eng(gpusim::rtx4090());
    auto flat = vq::syntheticZipfHistogram(256, 0.1);
    auto skewed = vq::syntheticZipfHistogram(256, 1.5);
    auto a = baseRequest();
    a.histogram = &flat;
    auto b = baseRequest();
    b.histogram = &skewed;
    EXPECT_NE(eng.cacheKey(a), eng.cacheKey(b));

    // Same contents at a different address: same key (content hash,
    // not pointer identity).
    auto flat_copy = flat;
    auto c = baseRequest();
    c.histogram = &flat_copy;
    EXPECT_EQ(eng.cacheKey(a), eng.cacheKey(c));
}

TEST(CacheKey, ShuffleThresholdSeparatesKeys)
{
    EngineOptions strict;
    strict.shuffle_threshold = 0;
    Engine defaults(gpusim::rtx4090());
    Engine no_shuffles(gpusim::rtx4090(), strict);
    EXPECT_NE(defaults.cacheKey(baseRequest()),
              no_shuffles.cacheKey(baseRequest()));
}

TEST(CacheKey, TilingSeparatesKeys)
{
    EngineOptions wide;
    wide.tiling.weight_block_cols = 256;
    Engine defaults(gpusim::rtx4090());
    Engine widened(gpusim::rtx4090(), wide);
    EXPECT_NE(defaults.cacheKey(baseRequest()),
              widened.cacheKey(baseRequest()));
}

TEST(CacheKey, GpuSpecSeparatesKeys)
{
    Engine ada(gpusim::rtx4090());
    Engine ampere(gpusim::teslaA40());
    EXPECT_NE(ada.cacheKey(baseRequest()),
              ampere.cacheKey(baseRequest()));

    // A same-name spec with different resources must also separate
    // (the fingerprint is structural, not just the marketing name).
    gpusim::GpuSpec cut = gpusim::rtx4090();
    cut.dram_bw_gbps /= 2;
    Engine degraded(cut);
    EXPECT_NE(ada.cacheKey(baseRequest()),
              degraded.cacheKey(baseRequest()));

    // The fingerprint covers *every* spec field the cost model reads,
    // not a headline subset — a sensitivity sweep over any of them
    // must never alias onto another spec's entries.
    gpusim::GpuSpec tuned = gpusim::rtx4090();
    tuned.dram_efficiency *= 0.5;
    Engine detuned(tuned);
    EXPECT_NE(ada.cacheKey(baseRequest()),
              detuned.cacheKey(baseRequest()));

    gpusim::GpuSpec slow_launch = gpusim::rtx4090();
    slow_launch.launch_overhead_us += 1.0;
    Engine overhead(slow_launch);
    EXPECT_NE(ada.cacheKey(baseRequest()),
              overhead.cacheKey(baseRequest()));
}

TEST(CacheKey, PrecomputedHistogramDigestMatchesInlineHash)
{
    Engine eng(gpusim::rtx4090());
    auto hist = vq::syntheticZipfHistogram(256);
    auto inline_hashed = baseRequest();
    inline_hashed.histogram = &hist;
    auto precomputed = inline_hashed;
    precomputed.histogram_digest = histogramDigest(hist);
    EXPECT_EQ(eng.cacheKey(inline_hashed), eng.cacheKey(precomputed));
}

TEST(CacheKey, LevelShapeKindAndConfigSeparateKeys)
{
    Engine eng(gpusim::rtx4090());
    auto base = eng.cacheKey(baseRequest());

    EXPECT_NE(base, eng.cacheKey(baseRequest().atLevel(OptLevel::O2)));

    auto wider = KernelRequest::gemvOp({1, 8192, 4096}, vq::gptvq2(),
                                       OptLevel::O4);
    EXPECT_NE(base, eng.cacheKey(wider));

    auto gemm = KernelRequest::gemmOp({1, 4096, 4096}, vq::gptvq2(),
                                      OptLevel::O4);
    EXPECT_NE(base, eng.cacheKey(gemm));

    auto quip = KernelRequest::gemvOp({1, 4096, 4096}, vq::quip4(),
                                      OptLevel::O4);
    EXPECT_NE(base, eng.cacheKey(quip));
}

TEST(CacheKey, AttentionMhaDefaultIsCanonical)
{
    Engine eng(gpusim::rtx4090());
    engine::AttnShape implicit{1, 32, 1024, 128}; // kv_heads = 0 (MHA)
    engine::AttnShape explicit_mha{1, 32, 1024, 128, 32};
    engine::AttnShape gqa{1, 32, 1024, 128, 8};
    auto key = [&](const engine::AttnShape &s) {
        return eng.cacheKey(KernelRequest::attentionOp(s, vq::cq2(),
                                                       OptLevel::O4));
    };
    EXPECT_EQ(key(implicit), key(explicit_mha));
    EXPECT_NE(key(implicit), key(gqa));
}

TEST(CacheKey, GemmAndAttentionShapesDoNotLeakAcrossKinds)
{
    // The non-active shape member must not contribute: two GeMV
    // requests differing only in the attn member collide, as do two
    // attention requests differing only in gemm.
    Engine eng(gpusim::rtx4090());
    auto a = baseRequest();
    auto b = baseRequest();
    b.attn = engine::AttnShape{7, 7, 7, 7};
    EXPECT_EQ(eng.cacheKey(a), eng.cacheKey(b));
}

} // namespace
} // namespace vqllm::compiler
