/**
 * @file
 * Tests for the dense tensor container and numeric helpers.
 */
#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace vqllm {
namespace {

TEST(Tensor, ShapeAndSize)
{
    Tensor<float> t({2, 3, 4});
    EXPECT_EQ(t.rank(), 3u);
    EXPECT_EQ(t.size(), 24u);
    EXPECT_EQ(t.sizeBytes(), 24u * sizeof(float));
    EXPECT_EQ(t.dim(0), 2u);
    EXPECT_EQ(t.dim(2), 4u);
}

TEST(Tensor, RowMajorLayout)
{
    Tensor<float> t({2, 3});
    for (std::size_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(i);
    EXPECT_EQ(t.at(0, 0), 0.0f);
    EXPECT_EQ(t.at(0, 2), 2.0f);
    EXPECT_EQ(t.at(1, 0), 3.0f);
    EXPECT_EQ(t.at(1, 2), 5.0f);
    EXPECT_EQ(t.flatIndex(1, 2), 5u);
}

TEST(Tensor, ZeroInitialized)
{
    Tensor<float> t({16});
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillAndReshape)
{
    Tensor<float> t({4, 4});
    t.fill(2.5f);
    EXPECT_EQ(t.at(3, 3), 2.5f);
    t.reshape({2, 8});
    EXPECT_EQ(t.rank(), 2u);
    EXPECT_EQ(t.dim(1), 8u);
    EXPECT_EQ(t.at(1, 7), 2.5f);
}

TEST(TensorDeath, OutOfBoundsPanics)
{
    Tensor<float> t({2, 2});
    EXPECT_DEATH(t.at(2, 0), "out of bounds");
    EXPECT_DEATH(t.at(0, 0, 0), "rank");
    EXPECT_DEATH(t.reshape({5}), "element count");
}

TEST(Tensor, HalfConversionRoundTrip)
{
    Rng rng(2);
    Tensor<float> t({64});
    fillNormal(t, rng);
    Tensor<Half> h = toHalf(t);
    Tensor<float> back = toFloat(h);
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(back[i], roundToHalf(t[i]));
    // Converting again is lossless.
    Tensor<float> back2 = toFloat(toHalf(back));
    EXPECT_EQ(maxAbsDiff(back, back2), 0.0);
}

TEST(Tensor, MseAndNorms)
{
    Tensor<float> a({3}), b({3});
    a[0] = 1; a[1] = 2; a[2] = 3;
    b[0] = 1; b[1] = 2; b[2] = 5;
    EXPECT_DOUBLE_EQ(mse(a, b), 4.0 / 3.0);
    EXPECT_DOUBLE_EQ(maxAbsDiff(a, b), 2.0);
    EXPECT_DOUBLE_EQ(frobeniusNorm(a), std::sqrt(14.0));
    EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
}

TEST(Tensor, FillDistributions)
{
    Rng rng(5);
    Tensor<float> t({10000});
    fillNormal(t, rng, 1.0, 2.0);
    double sum = 0;
    for (std::size_t i = 0; i < t.size(); ++i)
        sum += t[i];
    EXPECT_NEAR(sum / static_cast<double>(t.size()), 1.0, 0.1);

    fillUniform(t, rng, -1.0, 1.0);
    for (std::size_t i = 0; i < t.size(); ++i) {
        ASSERT_GE(t[i], -1.0f);
        ASSERT_LT(t[i], 1.0f);
    }
}

} // namespace
} // namespace vqllm
