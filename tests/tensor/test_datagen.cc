/**
 * @file
 * Tests for the synthetic LLM-like data generators: the statistics the
 * paper's figures rely on (cluster skew, correlation, outliers) must be
 * present in the generated data.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/datagen.h"

namespace vqllm {
namespace {

TEST(Datagen, ClusteredShapeAndDeterminism)
{
    ClusteredDataSpec spec;
    Rng rng1(42), rng2(42);
    auto a = generateClustered(100, 8, spec, rng1);
    auto b = generateClustered(100, 8, spec, rng2);
    ASSERT_EQ(a.shape(), (Shape{100, 8}));
    EXPECT_EQ(maxAbsDiff(a, b), 0.0);
}

TEST(Datagen, ClusteredHasAdjacentDimCorrelation)
{
    ClusteredDataSpec spec;
    spec.dim_correlation = 0.7;
    spec.num_clusters = 1024; // many clusters -> correlation from mixing
    Rng rng(3);
    auto data = generateClustered(4000, 8, spec, rng);
    // Pearson correlation between dim d and d+1, averaged.
    double corr_sum = 0;
    int pairs = 0;
    for (std::size_t d = 0; d + 1 < 8; ++d) {
        double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
        std::size_t n = data.dim(0);
        for (std::size_t r = 0; r < n; ++r) {
            double x = data.at(r, d), y = data.at(r, d + 1);
            sx += x; sy += y; sxx += x * x; syy += y * y; sxy += x * y;
        }
        double cov = sxy / n - (sx / n) * (sy / n);
        double vx = sxx / n - (sx / n) * (sx / n);
        double vy = syy / n - (sy / n) * (sy / n);
        corr_sum += cov / std::sqrt(vx * vy);
        ++pairs;
    }
    EXPECT_GT(corr_sum / pairs, 0.2);
}

TEST(Datagen, OutlierFractionControlsTails)
{
    ClusteredDataSpec no_outliers;
    no_outliers.outlier_fraction = 0.0;
    ClusteredDataSpec with_outliers;
    with_outliers.outlier_fraction = 0.05;
    Rng r1(5), r2(5);
    auto clean = generateClustered(2000, 4, no_outliers, r1);
    auto dirty = generateClustered(2000, 4, with_outliers, r2);
    auto max_abs = [](const Tensor<float> &t) {
        double m = 0;
        for (std::size_t i = 0; i < t.size(); ++i)
            m = std::max(m, std::abs(static_cast<double>(t[i])));
        return m;
    };
    EXPECT_GT(max_abs(dirty), max_abs(clean));
}

TEST(Datagen, LlmWeightScaleMatchesFanIn)
{
    Rng rng(7);
    auto w = generateLlmWeight(128, 512, rng);
    ASSERT_EQ(w.shape(), (Shape{128, 512}));
    // Variance should be on the order of 1/in_features.
    double var = 0;
    for (std::size_t i = 0; i < w.size(); ++i)
        var += static_cast<double>(w[i]) * w[i];
    var /= static_cast<double>(w.size());
    EXPECT_GT(var, 0.5 / 512.0);
    EXPECT_LT(var, 20.0 / 512.0);
}

TEST(Datagen, KvCacheHasPerChannelStructure)
{
    Rng rng(9);
    auto kv = generateKvCache(2, 256, 16, rng);
    ASSERT_EQ(kv.shape(), (Shape{2, 256, 16}));
    // Between-channel variance of the per-channel means should dominate
    // the within-channel variance contribution of the offsets (channels
    // have strong static structure).
    double channel_mean_var = 0;
    for (std::size_t c = 0; c < 16; ++c) {
        double mean = 0;
        for (std::size_t t = 0; t < 256; ++t)
            mean += kv.at(std::size_t(0), t, c);
        mean /= 256;
        channel_mean_var += mean * mean;
    }
    channel_mean_var /= 16;
    EXPECT_GT(channel_mean_var, 0.2); // offsets ~ N(0,1)
}

TEST(Datagen, Correlated2dHitsTargetCorrelation)
{
    Rng rng(11);
    auto pts = generateCorrelated2d(20000, 0.8, 0.0, rng);
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    std::size_t n = pts.dim(0);
    for (std::size_t i = 0; i < n; ++i) {
        double x = pts.at(i, std::size_t(0));
        double y = pts.at(i, std::size_t(1));
        sx += x; sy += y; sxx += x * x; syy += y * y; sxy += x * y;
    }
    double cov = sxy / n - (sx / n) * (sy / n);
    double vx = sxx / n - (sx / n) * (sx / n);
    double vy = syy / n - (sy / n) * (sy / n);
    EXPECT_NEAR(cov / std::sqrt(vx * vy), 0.8, 0.05);
}

} // namespace
} // namespace vqllm
