/**
 * @file
 * Tests for the occupancy calculator and resource-slack analysis.
 */
#include <gtest/gtest.h>

#include "gpusim/occupancy.h"

namespace vqllm::gpusim {
namespace {

TEST(Occupancy, ThreadLimited)
{
    const GpuSpec &spec = rtx4090();
    BlockResources block;
    block.threads = 512;
    block.smem_bytes = 0;
    block.regs_per_thread = 32;
    auto res = computeOccupancy(spec, block);
    // 1536 threads / 512 = 3 blocks; smem unconstrained; regs:
    // 512*32 = 16384 regs -> 4 blocks; threads bind.
    EXPECT_EQ(res.blocks_per_sm, 3);
    EXPECT_EQ(res.limiter, OccupancyLimiter::Threads);
    EXPECT_DOUBLE_EQ(res.occupancy, 1.0);
}

TEST(Occupancy, SharedMemoryLimited)
{
    const GpuSpec &spec = rtx4090();
    BlockResources block;
    block.threads = 128;
    block.smem_bytes = 48 * 1024; // two blocks of 48K exceed 100K? no: 2*48=96K fits, 3rd does not
    block.regs_per_thread = 32;
    auto res = computeOccupancy(spec, block);
    EXPECT_EQ(res.blocks_per_sm, 2);
    EXPECT_EQ(res.limiter, OccupancyLimiter::SharedMemory);
    EXPECT_LT(res.occupancy, 0.2); // 2 blocks * 4 warps / 48 max warps
}

TEST(Occupancy, RegisterLimited)
{
    const GpuSpec &spec = rtx4090();
    BlockResources block;
    block.threads = 256;
    block.smem_bytes = 0;
    block.regs_per_thread = 128; // 256*128 = 32768 regs -> 2 blocks
    auto res = computeOccupancy(spec, block);
    EXPECT_EQ(res.blocks_per_sm, 2);
    EXPECT_EQ(res.limiter, OccupancyLimiter::Registers);
}

TEST(Occupancy, BlockSlotLimited)
{
    const GpuSpec &spec = rtx4090();
    BlockResources block;
    block.threads = 32; // 48 by threads, 24 by slots
    block.smem_bytes = 0;
    block.regs_per_thread = 16;
    auto res = computeOccupancy(spec, block);
    EXPECT_EQ(res.blocks_per_sm, spec.max_blocks_per_sm);
    EXPECT_EQ(res.limiter, OccupancyLimiter::BlockSlots);
}

TEST(Occupancy, UnlaunchableBlocks)
{
    const GpuSpec &spec = rtx4090();
    BlockResources block;
    block.threads = 128;
    block.smem_bytes = spec.max_smem_per_block + 1;
    auto res = computeOccupancy(spec, block);
    EXPECT_EQ(res.blocks_per_sm, 0);
    EXPECT_DOUBLE_EQ(res.occupancy, 0.0);
}

TEST(Occupancy, MonotoneInSharedMemory)
{
    // Occupancy never increases when a block asks for more shared memory.
    const GpuSpec &spec = rtx4090();
    BlockResources block;
    block.threads = 128;
    block.regs_per_thread = 40;
    int prev = 1 << 30;
    for (std::size_t smem = 0; smem <= 96 * 1024; smem += 4096) {
        block.smem_bytes = smem;
        auto res = computeOccupancy(spec, block);
        EXPECT_LE(res.blocks_per_sm, prev) << "smem=" << smem;
        prev = res.blocks_per_sm;
    }
}

TEST(Occupancy, StaircaseStructureExists)
{
    // Fig. 10: occupancy is a step function of resource consumption, so
    // there are plateaus (slack) followed by drops.
    const GpuSpec &spec = rtx4090();
    BlockResources block;
    block.threads = 128;
    block.regs_per_thread = 32;
    int distinct = 0;
    int prev = -1;
    for (std::size_t smem = 1024; smem <= 96 * 1024; smem += 1024) {
        block.smem_bytes = smem;
        int b = computeOccupancy(spec, block).blocks_per_sm;
        if (b != prev) {
            ++distinct;
            prev = b;
        }
    }
    EXPECT_GT(distinct, 4); // several steps, i.e. plateaus exist
}

TEST(Slack, ConsumingSlackPreservesOccupancy)
{
    const GpuSpec &spec = rtx4090();
    BlockResources block;
    block.threads = 256;
    block.smem_bytes = 20 * 1024;
    block.regs_per_thread = 48;
    auto base = computeOccupancy(spec, block);
    auto slack = computeSlack(spec, block);

    BlockResources bigger = block;
    bigger.smem_bytes += slack.smem_bytes;
    bigger.regs_per_thread += slack.regs_per_thread;
    auto after = computeOccupancy(spec, bigger);
    EXPECT_EQ(after.blocks_per_sm, base.blocks_per_sm)
        << "slack smem=" << slack.smem_bytes
        << " regs=" << slack.regs_per_thread;
}

TEST(Slack, ExceedingSlackDropsOccupancy)
{
    const GpuSpec &spec = rtx4090();
    BlockResources block;
    block.threads = 256;
    block.smem_bytes = 18 * 1024; // 5 blocks; budget 20480 -> 2 KiB slack
    block.regs_per_thread = 48;
    auto base = computeOccupancy(spec, block);
    auto slack = computeSlack(spec, block);
    ASSERT_GT(slack.smem_bytes, 0u);

    BlockResources too_big = block;
    too_big.smem_bytes += slack.smem_bytes + spec.smem_alloc_granularity;
    auto after = computeOccupancy(spec, too_big);
    EXPECT_LT(after.blocks_per_sm, base.blocks_per_sm);
}

TEST(Slack, ZeroWhenResourceIsBinding)
{
    const GpuSpec &spec = rtx4090();
    BlockResources block;
    block.threads = 128;
    // Exactly 1/2 of shared memory: two blocks resident, zero slack
    // beyond granularity effects.
    block.smem_bytes = spec.smem_per_sm / 2;
    block.regs_per_thread = 32;
    auto slack = computeSlack(spec, block);
    EXPECT_EQ(slack.smem_bytes, 0u);
}

class OccupancySweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(OccupancySweep, SlackInvariantHoldsEverywhere)
{
    // Property: for any block shape, consuming the reported slack never
    // reduces resident blocks (paper Sec. V-B requires this invariant).
    auto [threads, regs] = GetParam();
    const GpuSpec &spec = rtx4090();
    for (std::size_t smem = 0; smem <= 64 * 1024; smem += 8 * 1024) {
        BlockResources block{threads, smem, regs};
        auto base = computeOccupancy(spec, block);
        if (base.blocks_per_sm == 0)
            continue;
        auto slack = computeSlack(spec, block);
        BlockResources bigger{threads, smem + slack.smem_bytes,
                              regs + slack.regs_per_thread};
        auto after = computeOccupancy(spec, bigger);
        ASSERT_EQ(after.blocks_per_sm, base.blocks_per_sm)
            << "threads=" << threads << " regs=" << regs
            << " smem=" << smem;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OccupancySweep,
    ::testing::Combine(::testing::Values(32, 64, 128, 256, 512, 1024),
                       ::testing::Values(16, 32, 64, 96, 128)));

TEST(GpuSpecs, PresetsAreSane)
{
    for (const GpuSpec *spec : {&rtx4090(), &teslaA40()}) {
        EXPECT_GT(spec->num_sms, 0);
        EXPECT_GT(spec->dram_bw_gbps, 0);
        EXPECT_EQ(spec->warp_size, 32);
        EXPECT_EQ(spec->smem_banks, 32);
        EXPECT_LE(spec->max_smem_per_block, spec->smem_per_sm);
    }
    // The paper's A40 point: ~67% of 4090 bandwidth.
    EXPECT_NEAR(teslaA40().dram_bw_gbps / rtx4090().dram_bw_gbps, 0.69,
                0.03);
}

} // namespace
} // namespace vqllm::gpusim
