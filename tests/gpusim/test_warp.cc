/**
 * @file
 * Tests for the functional warp shuffle (shfl.xor) model, including the
 * paper's Fig. 12 example: a mini-warp of 4 threads with 4 registers each
 * exchanges data so that register contents transpose across lanes.
 */
#include <gtest/gtest.h>

#include <set>

#include "gpusim/warp.h"

namespace vqllm::gpusim {
namespace {

/** Tag register r of lane l with a unique value l*100 + r. */
void
tagRegisters(WarpRegisters<float> &w)
{
    for (int l = 0; l < w.lanes(); ++l)
        for (int r = 0; r < w.regsPerLane(); ++r)
            w.at(l, r) = static_cast<float>(l * 100 + r);
}

TEST(WarpShuffle, Fig12ExchangePattern)
{
    // 4 lanes x 4 regs; offset 1 must realize:
    //   Tid0.[1] <-> Tid1.[0],  Tid2.[3] <-> Tid3.[2]
    WarpRegisters<float> w(4, 4);
    tagRegisters(w);
    w.shflXorStep(1);
    EXPECT_EQ(w.at(0, 1), 100.0f + 0); // from lane 1 reg 0
    EXPECT_EQ(w.at(1, 0), 0.0f + 1);   // from lane 0 reg 1
    EXPECT_EQ(w.at(2, 3), 300.0f + 2); // from lane 3 reg 2
    EXPECT_EQ(w.at(3, 2), 200.0f + 3); // from lane 2 reg 3
    // Untouched slots remain.
    EXPECT_EQ(w.at(0, 0), 0.0f);
    EXPECT_EQ(w.at(0, 2), 2.0f);
}

TEST(WarpShuffle, ThreeStepsTransposeMiniWarp)
{
    // After offsets 1, 2, 3 the 4x4 register block is fully transposed:
    // lane t's reg r ends up holding lane r's original reg t.
    WarpRegisters<float> w(4, 4);
    tagRegisters(w);
    w.shflXorStep(1);
    w.shflXorStep(2);
    w.shflXorStep(3);
    for (int t = 0; t < 4; ++t)
        for (int r = 0; r < 4; ++r)
            EXPECT_EQ(w.at(t, r), static_cast<float>(r * 100 + t))
                << "lane " << t << " reg " << r;
}

TEST(WarpShuffle, ExchangeIsInvolution)
{
    // Applying the same offset twice restores the original state.
    WarpRegisters<float> w(8, 8);
    tagRegisters(w);
    WarpRegisters<float> orig = w;
    w.shflXorStep(3);
    w.shflXorStep(3);
    for (int l = 0; l < 8; ++l)
        for (int r = 0; r < 8; ++r)
            EXPECT_EQ(w.at(l, r), orig.at(l, r));
}

TEST(WarpShuffle, ValuesArePermutedNotLost)
{
    // Any sequence of exchanges permutes the multiset of register values.
    WarpRegisters<float> w(32, 4);
    tagRegisters(w);
    std::multiset<float> before;
    for (int l = 0; l < 32; ++l)
        for (int r = 0; r < 4; ++r)
            before.insert(w.at(l, r));
    w.shflXorStep(1);
    w.shflXorStep(2);
    w.shflXorStep(3);
    std::multiset<float> after;
    for (int l = 0; l < 32; ++l)
        for (int r = 0; r < 4; ++r)
            after.insert(w.at(l, r));
    EXPECT_EQ(before, after);
}

TEST(WarpShuffle, FullWarpMiniWarpsAreIndependent)
{
    // Exchanges with offset < regs stay confined to aligned mini-warps of
    // `regs` lanes: lanes 0-3 never see data from lanes 4-7.
    WarpRegisters<float> w(32, 4);
    tagRegisters(w);
    w.shflXorStep(1);
    w.shflXorStep(2);
    w.shflXorStep(3);
    for (int l = 0; l < 32; ++l) {
        int mini = l / 4;
        for (int r = 0; r < 4; ++r) {
            int src_lane = static_cast<int>(w.at(l, r)) / 100;
            EXPECT_EQ(src_lane / 4, mini)
                << "lane " << l << " got data from outside its mini-warp";
        }
    }
}

TEST(WarpShuffleDeath, RejectsBadOffsets)
{
    WarpRegisters<float> w(4, 4);
    EXPECT_DEATH(w.shflXorStep(0), "offset");
    EXPECT_DEATH(w.shflXorStep(4), "offset");
}

} // namespace
} // namespace vqllm::gpusim
