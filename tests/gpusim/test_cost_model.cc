/**
 * @file
 * Tests for the roofline cost model: qualitative properties the paper's
 * analysis depends on (bandwidth-boundedness, occupancy derating, small-
 * grid latency sensitivity, reduction overhead).
 */
#include <gtest/gtest.h>

#include "gpusim/cost_model.h"

namespace vqllm::gpusim {
namespace {

LaunchConfig
bigGrid()
{
    LaunchConfig launch;
    launch.grid_blocks = 4096;
    launch.block = {256, 16 * 1024, 64};
    return launch;
}

TEST(CostModel, MoreDramBytesMoreLatency)
{
    CostModel model(rtx4090());
    KernelCounters a, b;
    a.dram_read_bytes = 16ull << 20;
    b.dram_read_bytes = 64ull << 20;
    auto la = model.estimate(bigGrid(), a);
    auto lb = model.estimate(bigGrid(), b);
    EXPECT_GT(lb.total_us, la.total_us);
    // 4x the bytes should be ~4x the dram time.
    EXPECT_NEAR(lb.dram_us / la.dram_us, 4.0, 0.2);
}

TEST(CostModel, MemoryBoundKernelNearsPeakBandwidth)
{
    // A 16 MiB streaming read on a 4090 (1008 GB/s, 82% efficient)
    // should take roughly 20 us.
    CostModel model(rtx4090());
    KernelCounters c;
    c.dram_read_bytes = 16ull << 20;
    auto lat = model.estimate(bigGrid(), c);
    EXPECT_GT(lat.dram_us, 15.0);
    EXPECT_LT(lat.dram_us, 30.0);
}

TEST(CostModel, LowOccupancyDeratesBandwidth)
{
    CostModel model(rtx4090());
    KernelCounters c;
    c.dram_read_bytes = 64ull << 20;

    LaunchConfig high = bigGrid();
    LaunchConfig low = bigGrid();
    low.block.threads = 128;          // 4 warps
    low.block.smem_bytes = 90 * 1024; // 1 block/SM -> very low occupancy
    auto lh = model.estimate(high, c);
    auto ll = model.estimate(low, c);
    EXPECT_GT(ll.dram_us, lh.dram_us * 1.2);
}

TEST(CostModel, SmallGridIsLatencyBound)
{
    CostModel model(rtx4090());
    KernelCounters c;
    c.dram_read_bytes = 4ull << 20;

    LaunchConfig tiny = bigGrid();
    tiny.grid_blocks = 8; // only 8 of 128 SMs busy
    LaunchConfig big = bigGrid();
    big.grid_blocks = 4096;
    auto lt = model.estimate(tiny, c);
    auto lb = model.estimate(big, c);
    EXPECT_GT(lt.total_us, lb.total_us);
}

TEST(CostModel, BankConflictsSerializeSmem)
{
    CostModel model(rtx4090());
    KernelCounters clean, conflicted;
    clean.smem_ideal_transactions = 1u << 20;
    clean.smem_transactions = 1u << 20;
    conflicted.smem_ideal_transactions = 1u << 20;
    conflicted.smem_transactions = 4u << 20; // 4-way conflicts
    auto lc = model.estimate(bigGrid(), clean);
    auto lx = model.estimate(bigGrid(), conflicted);
    EXPECT_NEAR(lx.smem_us / lc.smem_us, 4.0, 0.01);
    EXPECT_DOUBLE_EQ(conflicted.conflictMultiplier(), 4.0);
}

TEST(CostModel, ReductionAddsSecondPass)
{
    CostModel model(rtx4090());
    KernelCounters with, without;
    without.dram_read_bytes = 8ull << 20;
    with.dram_read_bytes = 8ull << 20;
    with.reduce_bytes = 4ull << 20;
    auto lw = model.estimate(bigGrid(), with);
    auto lo = model.estimate(bigGrid(), without);
    EXPECT_GT(lw.total_us, lo.total_us);
    EXPECT_GT(lw.reduce_us, 0.0);
}

TEST(CostModel, ScalarOverheadCostsCompute)
{
    CostModel model(rtx4090());
    KernelCounters lean, heavy;
    lean.flops = 1ull << 30;
    heavy.flops = 1ull << 30;
    heavy.dequant_lookups = 1ull << 28;
    heavy.unpack_ops = 1ull << 28;
    auto ll = model.estimate(bigGrid(), lean);
    auto lh = model.estimate(bigGrid(), heavy);
    EXPECT_GT(lh.compute_us, ll.compute_us);
}

TEST(CostModel, TensorCoresBeatCudaCores)
{
    CostModel model(rtx4090());
    KernelCounters c;
    c.flops = 1ull << 34;
    LaunchConfig tc = bigGrid();
    tc.uses_tensor_cores = true;
    LaunchConfig cc = bigGrid();
    cc.uses_tensor_cores = false;
    EXPECT_LT(model.estimate(tc, c).compute_us,
              model.estimate(cc, c).compute_us);
}

TEST(CostModel, UnlaunchableBlockIsFlagged)
{
    CostModel model(rtx4090());
    LaunchConfig bad = bigGrid();
    bad.block.smem_bytes = 10 * 1024 * 1024;
    auto lat = model.estimate(bad, KernelCounters{});
    EXPECT_GE(lat.total_us, 1e11);
}

TEST(CostModel, A40SlowerThan4090ForSameTraffic)
{
    // The A40 has 69% of the 4090's bandwidth; a memory-bound kernel
    // slows accordingly (basis of the paper's Fig. 17 A40 point).
    CostModel fast(rtx4090()), slow(teslaA40());
    KernelCounters c;
    c.dram_read_bytes = 64ull << 20;
    auto lf = fast.estimate(bigGrid(), c);
    auto ls = slow.estimate(bigGrid(), c);
    EXPECT_NEAR(ls.dram_us / lf.dram_us,
                rtx4090().dram_bw_gbps / teslaA40().dram_bw_gbps, 0.05);
}

} // namespace
} // namespace vqllm::gpusim
