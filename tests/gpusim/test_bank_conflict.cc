/**
 * @file
 * Tests for the shared-memory bank-conflict model.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "gpusim/bank_conflict.h"

namespace vqllm::gpusim {
namespace {

std::vector<std::uint32_t>
sequentialAddrs(int lanes, std::uint32_t stride_bytes)
{
    std::vector<std::uint32_t> addrs(lanes);
    for (int i = 0; i < lanes; ++i)
        addrs[i] = static_cast<std::uint32_t>(i) * stride_bytes;
    return addrs;
}

TEST(BankConflict, UnitStrideIsConflictFree)
{
    const GpuSpec &spec = rtx4090();
    auto addrs = sequentialAddrs(32, 4);
    EXPECT_EQ(warpTransactions(spec, addrs, 4), 1u);
}

TEST(BankConflict, BroadcastIsFree)
{
    const GpuSpec &spec = rtx4090();
    std::vector<std::uint32_t> addrs(32, 128); // all lanes same word
    EXPECT_EQ(warpTransactions(spec, addrs, 4), 1u);
}

TEST(BankConflict, Stride2GivesTwoWay)
{
    const GpuSpec &spec = rtx4090();
    auto addrs = sequentialAddrs(32, 8); // stride 2 words -> 2-way
    EXPECT_EQ(warpTransactions(spec, addrs, 4), 2u);
}

TEST(BankConflict, Stride32WordsIsWorstCase)
{
    const GpuSpec &spec = rtx4090();
    auto addrs = sequentialAddrs(32, 128); // all lanes hit bank 0
    EXPECT_EQ(warpTransactions(spec, addrs, 4), 32u);
}

TEST(BankConflict, MultiWordAccessAddsPhases)
{
    const GpuSpec &spec = rtx4090();
    // 8-byte entries, unit entry stride: lanes at 0,8,16,... -> in each
    // 4-byte phase the stride is 2 words -> 2 transactions; 2 phases.
    auto addrs = sequentialAddrs(32, 8);
    EXPECT_EQ(warpTransactions(spec, addrs, 8), 4u);
}

TEST(BankConflict, SameWordDifferentFromSameBank)
{
    const GpuSpec &spec = rtx4090();
    // Two lanes on the same bank but different words: 2-way conflict.
    std::vector<std::uint32_t> conflict = {0, 128};
    EXPECT_EQ(warpTransactions(spec, conflict, 4), 2u);
    // Same word: broadcast, one transaction.
    std::vector<std::uint32_t> broadcast = {0, 0};
    EXPECT_EQ(warpTransactions(spec, broadcast, 4), 1u);
}

TEST(BankConflict, ExpectedMultiplierBounds)
{
    const GpuSpec &spec = rtx4090();
    // Random 4-byte entries across many entries: classic balls-in-bins,
    // expected max load for 32 balls/32 bins is ~3-4.
    double m = expectedConflictMultiplier(spec, 4096, 4);
    EXPECT_GT(m, 2.0);
    EXPECT_LT(m, 5.0);
}

TEST(BankConflict, SingleEntryBroadcasts)
{
    const GpuSpec &spec = rtx4090();
    // One entry resident: every lane reads the same words.
    double m = expectedConflictMultiplier(spec, 1, 8);
    EXPECT_DOUBLE_EQ(m, 1.0);
}

TEST(BankConflict, WiderEntriesConflictMore)
{
    const GpuSpec &spec = rtx4090();
    // An entry spanning multiple banks raises the conflict multiplier
    // (paper Sec. III: "a single codebook entry can occupy multiple
    // banks, exacerbating ... bank conflicts").
    double m8 = expectedConflictMultiplier(spec, 256, 8);   // CQ vec 4
    double m16 = expectedConflictMultiplier(spec, 256, 16); // QuiP# vec 8
    EXPECT_GT(m16, m8 * 0.95);
    // Both are well above conflict-free.
    EXPECT_GT(m8, 1.5);
}

TEST(BankConflict, SkewReducesConflicts)
{
    const GpuSpec &spec = rtx4090();
    // Hot-entry skew increases broadcast hits, lowering the multiplier —
    // this is why register-caching the hottest entries (O2) helps most
    // when the skew is strong.
    std::vector<double> uniform(256, 1.0);
    auto skew = powerLawWeights(256, 2.0);
    double mu = expectedConflictMultiplier(spec, uniform, 8);
    double ms = expectedConflictMultiplier(spec, skew, 8);
    EXPECT_LT(ms, mu);
}

TEST(BankConflict, DeterministicForSeed)
{
    const GpuSpec &spec = rtx4090();
    double a = expectedConflictMultiplier(spec, 256, 8, 256, 99);
    double b = expectedConflictMultiplier(spec, 256, 8, 256, 99);
    EXPECT_DOUBLE_EQ(a, b);
}

} // namespace
} // namespace vqllm::gpusim
