/**
 * @file
 * Tests for online codebook-profile maintenance (Fig. 7 "Codebook
 * Reorder & Update").
 */
#include <gtest/gtest.h>

#include "cache/online_update.h"

namespace vqllm::cache {
namespace {

/** Reordered histogram: counts non-increasing in index. */
vq::AccessHistogram
sortedHistogram(std::size_t entries, std::uint64_t top)
{
    vq::AccessHistogram h;
    h.counts.resize(entries);
    for (std::size_t i = 0; i < entries; ++i)
        h.counts[i] = top > i ? top - i : 0;
    return h;
}

CachePlan
plan(std::size_t n_reg, std::size_t n_shared, std::size_t total)
{
    CachePlan p;
    p.n_reg = n_reg;
    p.n_shared = n_shared;
    p.total_entries = total;
    p.entry_bytes = 8;
    return p;
}

TEST(OnlineUpdate, NoDriftWhenDistributionIsStable)
{
    OnlineProfile profile(sortedHistogram(64, 100));
    auto p = plan(4, 16, 64);
    EXPECT_DOUBLE_EQ(profile.placementDrift(p), 0.0);
    // Observing the same distribution changes nothing.
    profile.observe(sortedHistogram(64, 100));
    EXPECT_DOUBLE_EQ(profile.placementDrift(p), 0.0);
    EXPECT_FALSE(profile.shouldReorder(p));
}

TEST(OnlineUpdate, RotatedHotSetCreatesDrift)
{
    OnlineProfile profile(sortedHistogram(64, 100),
                          UpdatePolicy{1.0, 0.25}); // full replacement
    // New workload: the hot set moves to the formerly-cold entries.
    vq::AccessHistogram rotated;
    rotated.counts.assign(64, 0);
    for (std::size_t i = 0; i < 16; ++i)
        rotated.counts[63 - i] = 100 - i;
    profile.observe(rotated);
    auto p = plan(4, 16, 64);
    EXPECT_GT(profile.placementDrift(p), 0.9);
    EXPECT_TRUE(profile.shouldReorder(p));
    // The fresh order ranks the new hot entries first.
    auto order = profile.freshOrder();
    EXPECT_EQ(order[0], 63u);
}

TEST(OnlineUpdate, DecayBlendsGradually)
{
    UpdatePolicy gentle;
    gentle.decay = 0.2;
    OnlineProfile profile(sortedHistogram(32, 50), gentle);
    vq::AccessHistogram shifted;
    shifted.counts.assign(32, 0);
    shifted.counts[31] = 1000;
    auto p = plan(0, 8, 32);
    // One observation of a radically different workload is damped...
    profile.observe(shifted);
    double drift1 = profile.placementDrift(p);
    // ...but repeated observations accumulate.
    for (int i = 0; i < 8; ++i)
        profile.observe(shifted);
    double drift9 = profile.placementDrift(p);
    EXPECT_GE(drift9, drift1);
    EXPECT_GT(drift9, 0.0);
}

TEST(OnlineUpdate, ScalesObservationVolume)
{
    // A tiny recent sample must not swamp the running profile just
    // because counts are absolute.
    OnlineProfile profile(sortedHistogram(16, 1000),
                          UpdatePolicy{0.5, 0.25});
    vq::AccessHistogram tiny;
    tiny.counts.assign(16, 0);
    tiny.counts[15] = 3; // 3 accesses total
    profile.observe(tiny);
    // Entry 15 gets half the *distributional* weight, i.e. large.
    EXPECT_GT(profile.histogram().counts[15],
              profile.histogram().counts[1]);
}

TEST(OnlineUpdate, EmptySharedTierNeverReorders)
{
    OnlineProfile profile(sortedHistogram(16, 10));
    auto p = plan(0, 0, 16); // GC-style plan
    EXPECT_DOUBLE_EQ(profile.placementDrift(p), 0.0);
    EXPECT_FALSE(profile.shouldReorder(p));
}

TEST(OnlineUpdateDeath, ValidatesInputs)
{
    OnlineProfile profile(sortedHistogram(16, 10));
    vq::AccessHistogram wrong;
    wrong.counts.assign(8, 1);
    EXPECT_DEATH(profile.observe(wrong), "mismatch");
    auto p = plan(0, 8, 32); // wrong entry count
    EXPECT_DEATH(profile.placementDrift(p), "match");
}

} // namespace
} // namespace vqllm::cache
