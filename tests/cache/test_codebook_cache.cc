/**
 * @file
 * Tests for the codebook cache: placement heuristics (slack-bounded
 * boundaries), tier resolution, functional access, and the
 * Load/Access/Switch API semantics (paper Sec. V).
 */
#include <gtest/gtest.h>

#include "cache/codebook_cache.h"
#include "tensor/datagen.h"

namespace vqllm::cache {
namespace {

using gpusim::BlockResources;
using gpusim::GpuSpec;
using gpusim::rtx4090;

vq::Codebook
randomCodebook(std::size_t entries, unsigned vec, std::uint64_t seed = 3)
{
    Rng rng(seed);
    Tensor<float> e({entries, vec});
    fillNormal(e, rng);
    return vq::Codebook::plain(e);
}

TEST(CachePlan, TierBoundaries)
{
    CachePlan plan;
    plan.n_reg = 4;
    plan.n_shared = 64;
    plan.total_entries = 256;
    plan.entry_bytes = 8;
    EXPECT_EQ(plan.tierOf(0), Tier::Register);
    EXPECT_EQ(plan.tierOf(3), Tier::Register);
    EXPECT_EQ(plan.tierOf(4), Tier::Shared);
    EXPECT_EQ(plan.tierOf(63), Tier::Shared);
    EXPECT_EQ(plan.tierOf(64), Tier::Global);
    EXPECT_EQ(plan.tierOf(255), Tier::Global);
    EXPECT_EQ(plan.smemBytes(), 60u * 8);
    EXPECT_EQ(plan.regsPerThread(), 8); // 4 entries x 8 B / 4 B per reg
    EXPECT_EQ(plan.sharedEntries(), 60u);
}

TEST(PlanCache, GcPolicyCachesNothing)
{
    CachePolicy policy;
    policy.use_shared = false;
    auto plan = planCache(rtx4090(), {128, 4096, 48}, 256, 8, nullptr,
                          policy);
    EXPECT_EQ(plan.n_reg, 0u);
    EXPECT_EQ(plan.n_shared, 0u);
    EXPECT_EQ(plan.smemBytes(), 0u);
}

TEST(PlanCache, GreedyCachesEverythingUpToHardLimit)
{
    CachePolicy policy;
    policy.greedy_shared = true;
    auto plan = planCache(rtx4090(), {128, 4096, 48}, 256, 8, nullptr,
                          policy);
    EXPECT_EQ(plan.n_reg, 0u);
    EXPECT_EQ(plan.n_shared, 256u);

    // A working set beyond the per-block shared limit is clamped
    // (AQLM-3's 128 KiB codebooks cannot fully reside).
    auto huge = planCache(rtx4090(), {128, 4096, 48}, 8192, 16, nullptr,
                          policy);
    EXPECT_LT(huge.n_shared, 8192u);
    EXPECT_LE(huge.smemBytes() + 4096,
              rtx4090().max_smem_per_block);
}

TEST(PlanCache, AdaptivePlanNeverHurtsOccupancy)
{
    // The invariant of Sec. V-B: consuming the planned cache resources
    // must leave blocks/SM unchanged.
    const GpuSpec &spec = rtx4090();
    for (int threads : {128, 256}) {
        for (std::size_t smem : {2048u, 16384u, 40960u}) {
            BlockResources block{threads, smem, 48};
            auto base = gpusim::computeOccupancy(spec, block);
            auto plan = planCache(spec, block, 4096, 16);
            BlockResources with_cache = block;
            with_cache.smem_bytes += plan.smemBytes();
            with_cache.regs_per_thread += plan.regsPerThread();
            auto after = gpusim::computeOccupancy(spec, with_cache);
            EXPECT_EQ(after.blocks_per_sm, base.blocks_per_sm)
                << "threads=" << threads << " smem=" << smem;
        }
    }
}

TEST(PlanCache, HistogramCapsRegisterTier)
{
    // Only entries hotter than mu+3sigma deserve registers.
    vq::AccessHistogram hist;
    hist.counts.assign(256, 10);
    hist.counts[0] = 10000;
    hist.counts[1] = 9000; // 2 hot entries
    auto plan = planCache(rtx4090(), {128, 2048, 32}, 256, 8, &hist);
    EXPECT_EQ(plan.n_reg, 2u);
    // Without a histogram the policy cap applies.
    auto plan2 = planCache(rtx4090(), {128, 2048, 32}, 256, 8, nullptr);
    EXPECT_LE(plan2.n_reg, CachePolicy{}.max_reg_entries);
    EXPECT_GT(plan2.n_reg, 0u);
}

TEST(PlanCache, O1PolicyUsesNoRegisters)
{
    CachePolicy policy;
    policy.use_registers = false;
    auto plan = planCache(rtx4090(), {128, 2048, 32}, 256, 8, nullptr,
                          policy);
    EXPECT_EQ(plan.n_reg, 0u);
    EXPECT_GT(plan.n_shared, 0u);
}

TEST(CodebookCache, AccessDecodesAndCountsTiers)
{
    auto cb = randomCodebook(64, 4);
    CachePlan plan;
    plan.n_reg = 2;
    plan.n_shared = 32;
    plan.total_entries = 64;
    plan.entry_bytes = 8;
    gpusim::KernelCounters counters;
    auto cache = CodebookCache::load(cb, plan, 4, &counters);

    // Load traffic: shared tier 30 entries x 8 B; register tier 2 x 8 x 4
    // warps of broadcast loads.
    EXPECT_EQ(counters.global_to_shared_bytes, 30u * 8);
    EXPECT_EQ(counters.dram_read_bytes, 30u * 8 + 2u * 8 * 4);

    float out[4], expect[4];
    EXPECT_EQ(cache.access(1, out), Tier::Register);
    cb.decode(1, expect);
    for (int d = 0; d < 4; ++d)
        EXPECT_EQ(out[d], expect[d]);
    EXPECT_EQ(cache.access(17, out), Tier::Shared);
    EXPECT_EQ(cache.access(50, out), Tier::Global);
    EXPECT_EQ(cache.stats().reg_hits, 1u);
    EXPECT_EQ(cache.stats().shared_hits, 1u);
    EXPECT_EQ(cache.stats().global_hits, 1u);
    EXPECT_EQ(cache.stats().total(), 3u);
}

TEST(CodebookCache, SwitchRecountsLoadTraffic)
{
    auto cb1 = randomCodebook(64, 4, 1);
    auto cb2 = randomCodebook(64, 4, 2);
    CachePlan plan;
    plan.n_reg = 0;
    plan.n_shared = 64;
    plan.total_entries = 64;
    plan.entry_bytes = 8;
    gpusim::KernelCounters counters;
    auto cache = CodebookCache::load(cb1, plan, 4, &counters);
    auto after_load = counters.global_to_shared_bytes;
    cache.switchTo(cb2, &counters);
    EXPECT_EQ(counters.global_to_shared_bytes, 2 * after_load);

    // Accesses now decode from the new codebook.
    float out[4], expect[4];
    cache.access(5, out);
    cb2.decode(5, expect);
    for (int d = 0; d < 4; ++d)
        EXPECT_EQ(out[d], expect[d]);
}

TEST(CodebookCache, LatticeIndicesResolveByBaseEntry)
{
    Rng rng(9);
    Tensor<float> base({16, 4});
    fillUniform(base, rng, 0.5, 2.0);
    auto cb = vq::Codebook::lattice(base);
    CachePlan plan;
    plan.n_reg = 4;
    plan.n_shared = 16;
    plan.total_entries = 16;
    plan.entry_bytes = 8;
    auto cache = CodebookCache::load(cb, plan, 4);
    float out[4];
    // Logical index with base 2 (register tier) and a sign mask.
    std::uint32_t logical = 2u | (0b1010u << 4);
    EXPECT_EQ(cache.access(logical, out), Tier::Register);
    // Logical index with base 9 (shared tier).
    EXPECT_EQ(cache.access(9, out), Tier::Shared);
}

TEST(CodebookCache, SharedOffsetsAreContiguous)
{
    auto cb = randomCodebook(64, 4);
    CachePlan plan;
    plan.n_reg = 8;
    plan.n_shared = 40;
    plan.total_entries = 64;
    plan.entry_bytes = 8;
    auto cache = CodebookCache::load(cb, plan, 4);
    EXPECT_EQ(cache.sharedOffsetOf(8), 0u);
    EXPECT_EQ(cache.sharedOffsetOf(9), 8u);
    EXPECT_EQ(cache.sharedOffsetOf(39), 31u * 8);
}

TEST(CodebookCacheDeath, LoadValidatesPlan)
{
    auto cb = randomCodebook(64, 4);
    CachePlan plan;
    plan.total_entries = 32; // wrong
    plan.entry_bytes = 8;
    EXPECT_DEATH(CodebookCache::load(cb, plan, 4), "mismatch");
}

} // namespace
} // namespace vqllm::cache
