/**
 * @file
 * Router-policy unit tests: every policy must be a total order with
 * index tie-breaks over hand-built load views, the prefix-affinity map
 * must be sticky, and the name parsers must round-trip — the
 * properties the fleet's end-to-end determinism rests on.
 */
#include <gtest/gtest.h>

#include "fleet/router.h"
#include "serving/request.h"

namespace vqllm::fleet {
namespace {

std::vector<ReplicaLoadView>
views(std::size_t n)
{
    std::vector<ReplicaLoadView> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i].index = i;
    return v;
}

serving::Request
request(std::uint64_t id, std::size_t prompt = 512)
{
    serving::Request r;
    r.id = id;
    r.prompt_len = prompt;
    r.max_new_tokens = 64;
    return r;
}

TEST(RouterNames, RoundTrip)
{
    for (auto p : {RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded,
                   RouterPolicy::PrefixAffinity, RouterPolicy::SloAware})
        EXPECT_EQ(parseRouterPolicy(routerPolicyName(p)), p);
    EXPECT_FALSE(parseRouterPolicy("nope").has_value());
}

TEST(RoundRobin, CyclesInIndexOrder)
{
    Router router(RouterPolicy::RoundRobin);
    auto v = views(3);
    for (std::uint64_t id = 0; id < 7; ++id)
        EXPECT_EQ(router.pick(request(id), v), id % 3) << id;
}

TEST(LeastLoaded, PicksFewestQueuedTokens)
{
    Router router(RouterPolicy::LeastLoaded);
    auto v = views(3);
    v[0].queued_prefill_tokens = 900;
    v[1].queued_prefill_tokens = 100;
    v[1].queued_decode_tokens = 50;
    v[2].queued_prefill_tokens = 200;
    EXPECT_EQ(router.pick(request(0), v), 1u);
    // Prefill and decode backlog count equally.
    v[1].queued_decode_tokens = 900;
    EXPECT_EQ(router.pick(request(1), v), 2u);
}

TEST(LeastLoaded, TiesBreakToLowestIndex)
{
    Router router(RouterPolicy::LeastLoaded);
    auto v = views(4);
    for (auto &lv : v)
        lv.queued_prefill_tokens = 500;
    EXPECT_EQ(router.pick(request(0), v), 0u);
    v[2].queued_prefill_tokens = 400;
    v[3].queued_prefill_tokens = 400;
    EXPECT_EQ(router.pick(request(1), v), 2u);
}

TEST(PrefixAffinity, GroupsStickToFirstReplica)
{
    Router router(RouterPolicy::PrefixAffinity);
    auto v = views(3);
    v[0].queued_prefill_tokens = 100;
    v[1].queued_prefill_tokens = 0;
    v[2].queued_prefill_tokens = 200;

    auto a = request(0);
    a.prefix_group = 7;
    // First sighting of group 7 lands least-loaded (replica 1)...
    EXPECT_EQ(router.pick(a, v), 1u);
    // ...and stays there even after the load picture inverts.
    v[1].queued_prefill_tokens = 9000;
    auto b = request(1);
    b.prefix_group = 7;
    EXPECT_EQ(router.pick(b, v), 1u);
    // Groupless requests fall back to least-loaded.
    EXPECT_EQ(router.pick(request(2), v), 0u);
}

TEST(SloAware, NoHistoryTiesBreakToLowestIndex)
{
    Router router(RouterPolicy::SloAware);
    auto v = views(3); // all replicas idle, no processed tokens
    EXPECT_EQ(router.pick(request(0), v), 0u);
}

TEST(SloAware, RoutesAroundTheSlowReplica)
{
    Router router(RouterPolicy::SloAware);
    auto v = views(2);
    // Equal backlogs, but replica 0 processes tokens half as fast —
    // a pure token-count policy could not tell them apart.
    v[0].queued_prefill_tokens = 1000;
    v[0].processed_tokens = 1000;
    v[0].busy_us = 2e6;
    v[1].queued_prefill_tokens = 1000;
    v[1].processed_tokens = 1000;
    v[1].busy_us = 1e6;
    EXPECT_EQ(router.pick(request(0), v), 1u);
    // A short enough queue on the slow replica wins it back.
    v[0].queued_prefill_tokens = 100;
    EXPECT_EQ(router.pick(request(1), v), 0u);
}

TEST(SloAware, RepeatedPicksAreDeterministic)
{
    auto once = [] {
        Router router(RouterPolicy::SloAware);
        auto v = views(4);
        for (std::size_t i = 0; i < 4; ++i) {
            v[i].queued_prefill_tokens = 300 * (i % 2);
            v[i].processed_tokens = 5000;
            v[i].busy_us = 1e6 + 1e5 * static_cast<double>(i);
        }
        std::vector<std::size_t> picks;
        for (std::uint64_t id = 0; id < 16; ++id)
            picks.push_back(router.pick(request(id, 128 + 64 * id), v));
        return picks;
    };
    EXPECT_EQ(once(), once());
}

} // namespace
} // namespace vqllm::fleet
