/**
 * @file
 * Fleet end-to-end tests: a 1-replica aggregated fleet must reproduce
 * the bare ServingSimulator report bit-for-bit, every fleet report
 * must be byte-identical across host thread counts and repeats, and
 * disaggregated runs must satisfy the handoff bookkeeping invariants
 * (every multi-token request hands off exactly once, transfer bytes
 * follow the sender's KV scheme, origin-level accounting closes).
 */
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "common/parallel.h"
#include "fleet/fleet.h"
#include "serving/simulator.h"

namespace vqllm::fleet {
namespace {

struct ThreadGuard
{
    ~ThreadGuard() { par::setThreads(0); }
};

serving::SimulatorConfig
replicaSim()
{
    serving::SimulatorConfig sim;
    sim.scheme = llm::QuantScheme::FP16;
    sim.kv_scheme = llm::KvScheme::VQ4;
    sim.scheduler.chunk_tokens = 512;
    return sim;
}

/** A small but non-trivial fleet: bursty arrivals so routing faces
 *  load imbalance, short window so the suite stays fast. */
FleetConfig
fleetConfig(std::size_t replicas, RouterPolicy router, bool disagg)
{
    FleetConfig cfg;
    cfg.router = router;
    cfg.workload.qps = 6;
    cfg.workload.duration_s = 4;
    cfg.workload.arrival = serving::ArrivalPattern::Bursty;
    const std::size_t prefill_n = (replicas + 1) / 2;
    for (std::size_t i = 0; i < replicas; ++i) {
        ReplicaConfig rep;
        rep.sim = replicaSim();
        rep.role = !disagg         ? ReplicaRole::Aggregated
                   : i < prefill_n ? ReplicaRole::Prefill
                                   : ReplicaRole::Decode;
        cfg.replicas.push_back(rep);
    }
    return cfg;
}

// ---------------------------------------------------------------------
// 1-replica parity: the fleet's event loop must be the bare driver.

TEST(FleetParity, OneAggregatedReplicaMatchesBareSimulatorBitwise)
{
    serving::SimulatorConfig sim = replicaSim();
    sim.workload.qps = 6;
    sim.workload.duration_s = 4;
    auto bare = serving::ServingSimulator(sim).run();

    FleetConfig cfg;
    cfg.workload = sim.workload;
    cfg.replicas.push_back({replicaSim(), ReplicaRole::Aggregated});
    auto fleet_report = FleetSimulator(cfg).run();

    ASSERT_EQ(fleet_report.replicas.size(), 1u);
    // json() renders every double at %.17g, so string equality is
    // bit-identity of the full report.
    EXPECT_EQ(fleet_report.replicas[0].report.json(), bare.json());
    EXPECT_EQ(fleet_report.completed_requests, bare.completed_requests);
    EXPECT_EQ(fleet_report.handoffs, 0u);
    EXPECT_EQ(fleet_report.kv_transfer_bytes, 0u);
}

TEST(FleetParity, ParityHoldsUnderPoissonAndPriorityPolicies)
{
    serving::SimulatorConfig sim = replicaSim();
    sim.workload.qps = 8;
    sim.workload.duration_s = 3;
    sim.workload.arrival = serving::ArrivalPattern::Diurnal;
    auto bare = serving::ServingSimulator(sim).run();

    FleetConfig cfg;
    cfg.workload = sim.workload;
    cfg.router = RouterPolicy::SloAware; // irrelevant at 1 replica
    cfg.replicas.push_back({replicaSim(), ReplicaRole::Aggregated});
    auto fleet_report = FleetSimulator(cfg).run();
    EXPECT_EQ(fleet_report.replicas[0].report.json(), bare.json());
}

// ---------------------------------------------------------------------
// Determinism across host thread counts and repeats.

TEST(FleetDeterminism, ReportsAreByteIdenticalAcrossThreadCounts)
{
    ThreadGuard guard;
    for (RouterPolicy router :
         {RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded,
          RouterPolicy::PrefixAffinity, RouterPolicy::SloAware}) {
        for (bool disagg : {false, true}) {
            std::string first;
            for (int threads : {1, 4, 1, 4}) {
                par::setThreads(threads);
                auto report =
                    FleetSimulator(fleetConfig(3, router, disagg))
                        .run();
                if (first.empty())
                    first = report.json();
                else
                    EXPECT_EQ(report.json(), first)
                        << routerPolicyName(router) << " disagg="
                        << disagg << " threads=" << threads;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Routing bookkeeping.

TEST(FleetRouting, RoundRobinSpreadsEntriesEvenly)
{
    auto report =
        FleetSimulator(fleetConfig(3, RouterPolicy::RoundRobin, false))
            .run();
    ASSERT_EQ(report.replicas.size(), 3u);
    std::uint64_t lo = UINT64_MAX, hi = 0, total = 0;
    for (const auto &rep : report.replicas) {
        lo = std::min(lo, rep.routed);
        hi = std::max(hi, rep.routed);
        total += rep.routed;
    }
    EXPECT_EQ(total, report.completed_requests +
                         report.rejected_requests);
    EXPECT_LE(hi - lo, 1u);
    EXPECT_FALSE(report.disaggregated);
    EXPECT_EQ(report.handoffs, 0u);
    EXPECT_EQ(report.kv_transfer_bytes, 0u);
    EXPECT_DOUBLE_EQ(report.util_imbalance,
                     report.util_max - report.util_min);
}

// ---------------------------------------------------------------------
// Disaggregation invariants.

TEST(FleetDisagg, HandoffAccountingCloses)
{
    auto cfg = fleetConfig(4, RouterPolicy::LeastLoaded, true);
    auto trace = serving::generateWorkload(cfg.workload);
    std::uint64_t multi_token = 0;
    for (const auto &r : trace)
        if (r.max_new_tokens > 1)
            ++multi_token;
    auto report = FleetSimulator(cfg).run();

    EXPECT_TRUE(report.disaggregated);
    EXPECT_EQ(report.completed_requests + report.rejected_requests,
              trace.size());
    // Every completed multi-token request handed off exactly once;
    // rejected ones may or may not have reached the handoff.
    EXPECT_GT(report.handoffs, 0u);
    EXPECT_LE(report.handoffs, multi_token);
    EXPECT_GE(report.handoffs + report.rejected_requests, multi_token);
    EXPECT_GT(report.kv_transfer_bytes, 0u);
    EXPECT_GT(report.kv_transfer_us, 0.0);

    // Handoffs out of prefill replicas equal handoffs into decode
    // replicas equal the fleet total; roles never invert.
    std::uint64_t out = 0, in = 0;
    for (const auto &rep : report.replicas) {
        if (rep.role == ReplicaRole::Prefill) {
            EXPECT_EQ(rep.handoffs_in, 0u);
            out += rep.handoffs_out;
        } else {
            ASSERT_EQ(rep.role, ReplicaRole::Decode);
            EXPECT_EQ(rep.handoffs_out, 0u);
            EXPECT_EQ(rep.routed, 0u); // arrivals enter on prefill
            in += rep.handoffs_in;
        }
    }
    EXPECT_EQ(out, report.handoffs);
    EXPECT_EQ(in, report.handoffs);
}

TEST(FleetDisagg, TransferBytesFollowTheKvScheme)
{
    // Same fleet, same trace, FP16 KV vs VQ4 KV: the handoff streams
    // (prompt+1) tokens at the sender's bytes/token, so the transfer
    // shrinks by the schemes' bytes/token ratio (~4x; VQ4 carries
    // index-packing overhead, so not exactly kvSchemeScale).
    auto run = [](llm::KvScheme kv) {
        auto cfg = fleetConfig(2, RouterPolicy::RoundRobin, true);
        for (auto &rep : cfg.replicas)
            rep.sim.kv_scheme = kv;
        return FleetSimulator(cfg).run();
    };
    auto fp16 = run(llm::KvScheme::FP16);
    auto vq4 = run(llm::KvScheme::VQ4);
    ASSERT_GT(fp16.handoffs, 0u);
    const auto &model = llm::llama7b();
    double ratio = static_cast<double>(llm::kvSchemeBytesPerToken(
                       model, llm::KvScheme::FP16)) /
                   static_cast<double>(llm::kvSchemeBytesPerToken(
                       model, llm::KvScheme::VQ4));
    ASSERT_GT(ratio, 3.0);
    if (fp16.handoffs == vq4.handoffs)
        EXPECT_NEAR(static_cast<double>(fp16.kv_transfer_bytes),
                    ratio * static_cast<double>(vq4.kv_transfer_bytes),
                    1e-9 * static_cast<double>(fp16.kv_transfer_bytes));
    else // pool-pressure divergence: compression still strictly wins
        EXPECT_LT(vq4.kv_transfer_bytes, fp16.kv_transfer_bytes);
    // The priced stall follows the bytes over the same link.
    EXPECT_LT(vq4.kv_transfer_us, fp16.kv_transfer_us);
}

TEST(FleetDisagg, MixedRolesWithAggregatedAreRejected)
{
    FleetConfig cfg;
    cfg.workload.duration_s = 1;
    cfg.replicas.push_back({replicaSim(), ReplicaRole::Aggregated});
    cfg.replicas.push_back({replicaSim(), ReplicaRole::Prefill});
    cfg.replicas.push_back({replicaSim(), ReplicaRole::Decode});
    EXPECT_DEATH({ FleetSimulator sim(cfg); }, "");
}

TEST(FleetDisagg, MissingDecodeRoleIsRejected)
{
    FleetConfig cfg;
    cfg.workload.duration_s = 1;
    cfg.replicas.push_back({replicaSim(), ReplicaRole::Prefill});
    cfg.replicas.push_back({replicaSim(), ReplicaRole::Prefill});
    EXPECT_DEATH({ FleetSimulator sim(cfg); }, "");
}

TEST(FleetDisagg, KvSchemeMismatchAcrossRolesIsRejected)
{
    FleetConfig cfg;
    cfg.workload.duration_s = 1;
    cfg.replicas.push_back({replicaSim(), ReplicaRole::Prefill});
    cfg.replicas.push_back({replicaSim(), ReplicaRole::Decode});
    cfg.replicas[1].sim.kv_scheme = llm::KvScheme::FP16;
    EXPECT_DEATH({ FleetSimulator sim(cfg); }, "");
}

// ---------------------------------------------------------------------
// Heterogeneous fleets (aggregated): different HBM budgets are legal
// and the SLO-aware router keeps favouring the better-provisioned
// replica once throughput history accumulates.

TEST(FleetRouting, HeterogeneousFleetRunsAndBalancesByCapability)
{
    auto cfg = fleetConfig(2, RouterPolicy::SloAware, false);
    cfg.replicas[0].sim.hbm_gb = 48; // roomier pool than replica 1
    cfg.workload.qps = 10;
    auto report = FleetSimulator(cfg).run();
    EXPECT_EQ(report.completed_requests + report.rejected_requests,
              report.replicas[0].routed + report.replicas[1].routed);
    EXPECT_GT(report.completed_requests, 0u);
}

} // namespace
} // namespace vqllm::fleet
