/**
 * @file
 * Tests for the metrics registry: counter/gauge semantics, log-bucketed
 * histogram edge cases (empty, single sample, extreme quantiles, bucket
 * boundaries) and deterministic JSON export.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "obs/metrics.h"

namespace vqllm::obs {
namespace {

TEST(Counter, AccumulatesMonotonically)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, LastWriteWins)
{
    Gauge g;
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    g.set(3.5);
    g.set(-1.25);
    EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(Histogram, EmptyPopulation)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
    EXPECT_TRUE(h.buckets().empty());
}

TEST(Histogram, SingleSampleAtEveryQuantile)
{
    Histogram h;
    h.record(37.5);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.sum(), 37.5);
    EXPECT_DOUBLE_EQ(h.mean(), 37.5);
    // Every quantile of a one-sample population is that sample: the
    // interpolation is clamped to the observed [min, max].
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 37.5);
    EXPECT_DOUBLE_EQ(h.quantile(0.25), 37.5);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 37.5);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 37.5);
}

TEST(Histogram, ExtremeQuantilesAreExactMinMax)
{
    Histogram h;
    for (double v : {3.0, 700.0, 15.0, 0.5, 120.0})
        h.record(v);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 700.0);
    // Quantiles clamp outside [0, 1] too.
    EXPECT_DOUBLE_EQ(h.quantile(-3.0), 0.5);
    EXPECT_DOUBLE_EQ(h.quantile(7.0), 700.0);
    // Interior quantiles stay within the observed range and are
    // monotone in q.
    double prev = h.quantile(0.0);
    for (double q = 0.1; q < 1.0; q += 0.1) {
        double v = h.quantile(q);
        EXPECT_GE(v, prev);
        EXPECT_LE(v, 700.0);
        prev = v;
    }
}

TEST(Histogram, BucketBoundariesAreHalfOpen)
{
    // min_bucket = 1, growth = 2: buckets (-inf,1], (1,2], (2,4], ...
    Histogram h(1.0, 2.0);
    h.record(1.0); // boundary: lands in bucket 0
    h.record(2.0); // boundary: lands in (1,2]
    h.record(2.5);
    h.record(4.0); // boundary: lands in (2,4]
    auto buckets = h.buckets();
    ASSERT_EQ(buckets.size(), 3u);
    EXPECT_DOUBLE_EQ(buckets[0].hi, 1.0);
    EXPECT_EQ(buckets[0].count, 1u);
    EXPECT_DOUBLE_EQ(buckets[1].lo, 1.0);
    EXPECT_DOUBLE_EQ(buckets[1].hi, 2.0);
    EXPECT_EQ(buckets[1].count, 1u);
    EXPECT_DOUBLE_EQ(buckets[2].lo, 2.0);
    EXPECT_DOUBLE_EQ(buckets[2].hi, 4.0);
    EXPECT_EQ(buckets[2].count, 2u);
}

TEST(Histogram, NegativeAndZeroSamplesLandInFirstBucket)
{
    Histogram h(1.0, 2.0);
    h.record(-5.0);
    h.record(0.0);
    h.record(0.5);
    auto buckets = h.buckets();
    ASSERT_EQ(buckets.size(), 1u);
    EXPECT_EQ(buckets[0].count, 3u);
    EXPECT_DOUBLE_EQ(h.minValue(), -5.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), -5.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.5);
}

TEST(Histogram, CountAndSumAreExact)
{
    Histogram h;
    double expect_sum = 0;
    for (int i = 1; i <= 1000; ++i) {
        h.record(static_cast<double>(i));
        expect_sum += i;
    }
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_DOUBLE_EQ(h.sum(), expect_sum);
    EXPECT_DOUBLE_EQ(h.mean(), expect_sum / 1000.0);
    // The p50 estimate must land within the containing log bucket of
    // the true median (500): bucket (256, 512].
    double p50 = h.quantile(0.5);
    EXPECT_GT(p50, 256.0);
    EXPECT_LE(p50, 512.0);
}

TEST(Registry, CreateOnFirstUseReturnsStableRefs)
{
    MetricsRegistry reg;
    Counter &a = reg.counter("x.count");
    a.add(5);
    Counter &b = reg.counter("x.count");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 5u);
    EXPECT_EQ(reg.findCounter("x.count")->value(), 5u);
    EXPECT_EQ(reg.findCounter("missing"), nullptr);
    EXPECT_EQ(reg.findGauge("x.count"), nullptr);
}

TEST(Registry, SizeCountsAllInstruments)
{
    MetricsRegistry reg;
    reg.counter("a");
    reg.gauge("b");
    reg.histogram("c");
    reg.counter("a"); // no duplicate
    EXPECT_EQ(reg.size(), 3u);
}

TEST(Registry, JsonIsDeterministicAndSorted)
{
    auto build = [] {
        MetricsRegistry reg;
        reg.counter("z.last").add(1);
        reg.counter("a.first").add(2);
        reg.gauge("m.gauge").set(0.5);
        reg.histogram("h.lat").record(12.0);
        return reg.json();
    };
    std::string j1 = build();
    std::string j2 = build();
    EXPECT_EQ(j1, j2);
    // Sorted: "a.first" serializes before "z.last".
    EXPECT_LT(j1.find("a.first"), j1.find("z.last"));
    EXPECT_NE(j1.find("\"counters\""), std::string::npos);
    EXPECT_NE(j1.find("\"gauges\""), std::string::npos);
    EXPECT_NE(j1.find("\"histograms\""), std::string::npos);
}

TEST(Registry, JsonRoundTripsExtremeDoubles)
{
    MetricsRegistry reg;
    reg.gauge("tiny").set(1e-300);
    reg.gauge("precise").set(0.1 + 0.2); // 0.30000000000000004
    std::string j = reg.json();
    // %.17g prints enough digits to round-trip.
    EXPECT_NE(j.find("0.30000000000000004"), std::string::npos);
    EXPECT_NE(j.find("1e-300"), std::string::npos);
}

} // namespace
} // namespace vqllm::obs
