/**
 * @file
 * Tests for the trace recorder: simulated-clock semantics, span and
 * instant recording, category accounting and deterministic Chrome
 * trace-event JSON export.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "obs/trace.h"

namespace vqllm::obs {
namespace {

TEST(TraceRecorder, ClockIsExplicit)
{
    TraceRecorder rec;
    EXPECT_DOUBLE_EQ(rec.now(), 0.0);
    rec.setNow(125.5);
    EXPECT_DOUBLE_EQ(rec.now(), 125.5);
    rec.instant("tick", "test", 0, rec.now());
    auto events = rec.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_DOUBLE_EQ(events[0].ts_us, 125.5);
    EXPECT_EQ(events[0].phase, TraceEvent::Phase::Instant);
}

TEST(TraceRecorder, RecordsSpansInOrder)
{
    TraceRecorder rec;
    rec.span("a", "cat1", 0, 0.0, 10.0);
    rec.span("b", "cat2", 1, 10.0, 5.0, {{"tokens", 128.0}});
    rec.instant("i", "cat1", 0, 12.0);
    EXPECT_EQ(rec.eventCount(), 3u);
    auto events = rec.events();
    EXPECT_EQ(events[0].name, "a");
    EXPECT_EQ(events[1].name, "b");
    EXPECT_EQ(events[1].tid, 1);
    ASSERT_EQ(events[1].args.size(), 1u);
    EXPECT_EQ(events[1].args[0].key, "tokens");
    EXPECT_DOUBLE_EQ(events[1].args[0].value, 128.0);
    EXPECT_EQ(events[2].name, "i");
}

TEST(TraceRecorder, CategoryDurationSumsSpansOnly)
{
    TraceRecorder rec;
    rec.span("a", "work", 0, 0.0, 10.0);
    rec.span("b", "work", 1, 5.0, 2.5);
    rec.span("c", "idle", 0, 10.0, 100.0);
    rec.instant("i", "work", 0, 3.0); // instants carry no duration
    EXPECT_DOUBLE_EQ(rec.categoryDurationUs("work"), 12.5);
    EXPECT_DOUBLE_EQ(rec.categoryDurationUs("idle"), 100.0);
    EXPECT_DOUBLE_EQ(rec.categoryDurationUs("absent"), 0.0);
}

TEST(TraceRecorder, ChromeJsonShape)
{
    TraceRecorder rec;
    rec.nameTrack(0, "scheduler");
    rec.nameTrack(1, "shard 0");
    rec.span("iteration", "iteration", 0, 0.0, 42.0);
    rec.instant("kv_alloc", "kv", 0, 1.0, {{"seq", 7.0}});
    std::string json = rec.chromeJson();

    // Loadable shape: a traceEvents array with metadata, complete
    // spans and instants.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"scheduler\""), std::string::npos);
    EXPECT_NE(json.find("\"shard 0\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":42"), std::string::npos);
    EXPECT_NE(json.find("\"seq\":7"), std::string::npos);

    // writeChromeJson streams the identical bytes.
    std::ostringstream os;
    rec.writeChromeJson(os);
    EXPECT_EQ(os.str(), json);
}

TEST(TraceRecorder, JsonEscapesStrings)
{
    TraceRecorder rec;
    rec.span("quote\"back\\slash", "c\nat", 0, 0.0, 1.0);
    std::string json = rec.chromeJson();
    EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
    EXPECT_NE(json.find("c\\nat"), std::string::npos);
}

TEST(TraceRecorder, IdenticalRecordingsSerializeIdentically)
{
    auto record = [] {
        TraceRecorder rec;
        rec.nameTrack(0, "scheduler");
        rec.nameTrack(2, "shard 1");
        for (int i = 0; i < 50; ++i) {
            double t = i * 10.0;
            rec.setNow(t);
            rec.span("iter", "iteration", 0, t, 10.0,
                     {{"i", static_cast<double>(i)}});
            rec.instant("tick", "sched", 0, rec.now());
        }
        return rec.chromeJson();
    };
    EXPECT_EQ(record(), record());
}

TEST(TraceRecorder, ClearDropsEventsKeepsClock)
{
    TraceRecorder rec;
    rec.setNow(99.0);
    rec.nameTrack(0, "t");
    rec.span("a", "c", 0, 0.0, 1.0);
    rec.clear();
    EXPECT_EQ(rec.eventCount(), 0u);
    EXPECT_DOUBLE_EQ(rec.now(), 99.0);
    EXPECT_DOUBLE_EQ(rec.categoryDurationUs("c"), 0.0);
}

} // namespace
} // namespace vqllm::obs
