/**
 * @file
 * Determinism parity across thread counts: the functional VQ kernels,
 * the k-means fitter and the full quantizer must produce bit-identical
 * outputs AND identical event counters with VQLLM_THREADS=1 vs 8 (the
 * static chunk layout and chunk-order merges of common/parallel.h make
 * the thread count unobservable).
 */
#include <gtest/gtest.h>

#include <cstring>

#include "common/parallel.h"
#include "engine/template_engine.h"
#include "kernels/vq_kernels.h"
#include "tensor/datagen.h"
#include "vq/profiler.h"
#include "vq/quantizer.h"

namespace vqllm {
namespace {

struct ThreadGuard
{
    ~ThreadGuard() { par::setThreads(0); }
};

engine::PlanInputs
inputs()
{
    engine::PlanInputs in;
    in.spec = &gpusim::rtx4090();
    return in;
}

vq::QuantizedTensor
smallWeight(std::size_t n, std::size_t k, std::uint64_t seed)
{
    vq::VQConfig cfg = vq::gptvq2();
    cfg.num_entries = 32;
    Rng rng(seed);
    auto w = generateLlmWeight(n, k, rng);
    vq::KMeansOptions opts;
    opts.max_iters = 6;
    auto qt = vq::VectorQuantizer(cfg, opts).quantize(w);
    vq::reorderByFrequency(qt);
    return qt;
}

void
expectCountersEqual(const gpusim::KernelCounters &a,
                    const gpusim::KernelCounters &b)
{
    EXPECT_EQ(a.dram_read_bytes, b.dram_read_bytes);
    EXPECT_EQ(a.dram_write_bytes, b.dram_write_bytes);
    EXPECT_EQ(a.global_to_shared_bytes, b.global_to_shared_bytes);
    EXPECT_EQ(a.shared_to_reg_bytes, b.shared_to_reg_bytes);
    EXPECT_EQ(a.reg_to_shared_bytes, b.reg_to_shared_bytes);
    EXPECT_EQ(a.smem_transactions, b.smem_transactions);
    EXPECT_EQ(a.smem_ideal_transactions, b.smem_ideal_transactions);
    EXPECT_EQ(a.flops, b.flops);
    EXPECT_EQ(a.dequant_lookups, b.dequant_lookups);
    EXPECT_EQ(a.unpack_ops, b.unpack_ops);
    EXPECT_EQ(a.shuffle_ops, b.shuffle_ops);
    EXPECT_EQ(a.reduce_bytes, b.reduce_bytes);
}

void
expectBitIdentical(const Tensor<float> &a, const Tensor<float> &b)
{
    ASSERT_EQ(a.shape(), b.shape());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)),
              0);
}

TEST(ThreadParity, VqGemmOutputsAndCountersBitIdentical)
{
    ThreadGuard guard;
    auto qt = smallWeight(96, 64, 3);
    Rng rng(5);
    Tensor<float> x({48, qt.cols});
    fillNormal(x, rng);
    auto plan = engine::planWeightKernel(
        engine::OpKind::GeMM, {48, qt.rows, qt.cols}, qt.config,
        engine::OptLevel::O2, inputs());

    par::setThreads(1);
    auto serial = kernels::runVqGemm(plan, qt, x);
    par::setThreads(8);
    auto parallel = kernels::runVqGemm(plan, qt, x);

    expectBitIdentical(serial.output, parallel.output);
    expectCountersEqual(serial.counters, parallel.counters);
    EXPECT_EQ(serial.stats.reg_hits, parallel.stats.reg_hits);
    EXPECT_EQ(serial.stats.shared_hits, parallel.stats.shared_hits);
    EXPECT_EQ(serial.stats.global_hits, parallel.stats.global_hits);
}

TEST(ThreadParity, VqGemvOutputsAndCountersBitIdentical)
{
    ThreadGuard guard;
    auto qt = smallWeight(128, 64, 7);
    Rng rng(9);
    Tensor<float> x({qt.cols});
    fillNormal(x, rng);
    auto plan = engine::planWeightKernel(
        engine::OpKind::GeMV, {1, qt.rows, qt.cols}, qt.config,
        engine::OptLevel::O4, inputs());

    par::setThreads(1);
    auto serial = kernels::runVqGemv(plan, qt, x);
    par::setThreads(8);
    auto parallel = kernels::runVqGemv(plan, qt, x);

    expectBitIdentical(serial.output, parallel.output);
    expectCountersEqual(serial.counters, parallel.counters);
}

TEST(ThreadParity, VqAttentionOutputsAndCountersBitIdentical)
{
    ThreadGuard guard;
    const std::size_t H = 4, T = 32, C = 16;
    vq::VQConfig cfg = vq::cq2();
    cfg.num_entries = 32;
    Rng rng(11);
    Tensor<float> kv({T, H * C});
    fillNormal(kv, rng);
    vq::KMeansOptions opts;
    opts.max_iters = 6;
    auto qt_k = vq::VectorQuantizer(cfg, opts).quantize(kv);
    auto qt_v = vq::VectorQuantizer(cfg, opts).quantize(kv);
    vq::reorderByFrequency(qt_k);
    vq::reorderByFrequency(qt_v);
    Tensor<float> q({H, C});
    fillNormal(q, rng);
    auto plan = engine::planAttentionKernel({1, H, T, C}, cfg,
                                            engine::OptLevel::O2,
                                            inputs());

    par::setThreads(1);
    auto serial = kernels::runVqAttention(plan, qt_k, qt_v, q);
    par::setThreads(8);
    auto parallel = kernels::runVqAttention(plan, qt_k, qt_v, q);

    expectBitIdentical(serial.output, parallel.output);
    expectCountersEqual(serial.counters, parallel.counters);
    EXPECT_EQ(serial.stats.reg_hits, parallel.stats.reg_hits);
    EXPECT_EQ(serial.stats.shared_hits, parallel.stats.shared_hits);
    EXPECT_EQ(serial.stats.global_hits, parallel.stats.global_hits);
}

TEST(ThreadParity, KMeansBitIdentical)
{
    ThreadGuard guard;
    Rng rng(13);
    auto data = generateClustered(2000, 8, ClusteredDataSpec{}, rng);

    par::setThreads(1);
    auto serial = vq::kMeans(data, 64);
    par::setThreads(8);
    auto parallel = vq::kMeans(data, 64);

    EXPECT_EQ(serial.assignments, parallel.assignments);
    EXPECT_EQ(serial.inertia, parallel.inertia); // bitwise, not NEAR
    EXPECT_EQ(serial.iterations, parallel.iterations);
    expectBitIdentical(serial.centroids, parallel.centroids);
}

TEST(ThreadParity, QuantizerBitIdentical)
{
    ThreadGuard guard;
    Rng rng(17);
    auto w = generateLlmWeight(64, 64, rng);
    vq::VQConfig cfg = vq::cq2(); // per-channel-group: parallel units
    cfg.num_entries = 32;
    vq::KMeansOptions opts;
    opts.max_iters = 6;

    par::setThreads(1);
    auto serial = vq::VectorQuantizer(cfg, opts).quantize(w);
    par::setThreads(8);
    auto parallel = vq::VectorQuantizer(cfg, opts).quantize(w);

    ASSERT_EQ(serial.codebooks.size(), parallel.codebooks.size());
    for (std::size_t i = 0; i < serial.codebooks.size(); ++i)
        expectBitIdentical(serial.codebooks[i].entries(),
                           parallel.codebooks[i].entries());
    ASSERT_EQ(serial.indexBytes(), parallel.indexBytes());
    for (std::size_t r = 0; r < serial.rows; ++r)
        for (std::size_t s = 0; s < serial.subspaces(); ++s)
            for (unsigned st = 0; st < serial.config.residuals; ++st)
                ASSERT_EQ(serial.indices.get(
                              serial.indexPosition(r, s, st)),
                          parallel.indices.get(
                              parallel.indexPosition(r, s, st)));
    expectBitIdentical(vq::VectorQuantizer::dequantize(serial),
                       vq::VectorQuantizer::dequantize(parallel));
}

} // namespace
} // namespace vqllm
