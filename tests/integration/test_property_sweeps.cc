/**
 * @file
 * Cross-module property sweeps: invariants that must hold at every
 * point of the (VQ config x computation x optimization level x shape)
 * space the framework covers.  These are the guardrails behind every
 * bench number.
 */
#include <gtest/gtest.h>

#include <map>

#include "codegen/cuda_emitter.h"
#include "engine/template_engine.h"
#include "kernels/fp16_kernels.h"
#include "kernels/vq_kernels.h"
#include "vq/profiler.h"

namespace vqllm {
namespace {

using engine::AttnShape;
using engine::GemmShape;
using engine::KernelPlan;
using engine::OpKind;
using engine::OptLevel;
using gpusim::rtx4090;
using gpusim::teslaA40;

const vq::AccessHistogram &
hist(const vq::VQConfig &cfg)
{
    static std::map<std::size_t, vq::AccessHistogram> memo;
    auto [it, fresh] = memo.try_emplace(cfg.storedEntries());
    if (fresh)
        it->second = vq::syntheticZipfHistogram(cfg.storedEntries());
    return it->second;
}

/** All plan invariants that must hold regardless of inputs. */
void
checkPlanInvariants(const KernelPlan &plan, const gpusim::GpuSpec &spec)
{
    SCOPED_TRACE(plan.summary());
    // Launchable.
    auto occ = gpusim::computeOccupancy(spec, plan.block);
    EXPECT_GT(occ.blocks_per_sm, 0);
    EXPECT_GT(plan.grid_blocks, 0u);
    // Cache boundaries are ordered and within the codebook.
    EXPECT_LE(plan.cache_plan.n_reg, plan.cache_plan.n_shared);
    EXPECT_LE(plan.cache_plan.n_shared, plan.cache_plan.total_entries);
    // Split respects its bound.
    EXPECT_GE(plan.dataflow.split, 1u);
    EXPECT_LE(plan.dataflow.split,
              std::max<std::uint64_t>(plan.dataflow.max_split, 1));
    // Reduce traffic appears exactly when the plan splits.
    EXPECT_EQ(plan.dataflow.reduce_bytes > 0, plan.dataflow.split > 1);
    // Register fusion carries a verified mapping.
    if (plan.fusion.level == engine::FusionLevel::Register &&
        !plan.fusion.layout_matches) {
        EXPECT_TRUE(engine::verifyMapping(plan.fusion.mapping, 32,
                                          plan.config.vector_size,
                                          plan.fusion.compute_layout));
    }
    // The plan always emits valid CUDA.
    EXPECT_EQ(codegen::validateCudaSource(codegen::emitCudaKernel(plan)),
              "");
}

class WeightSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(WeightSweep, PlanAndEstimateInvariants)
{
    auto [cfg_idx, level_idx, kind_idx] = GetParam();
    const vq::VQConfig &cfg = vq::paperConfigs()[cfg_idx];
    if (cfg.scope == vq::CodebookScope::PerChannelGroup)
        GTEST_SKIP() << "CQ quantizes KV, not weights";
    auto level = static_cast<OptLevel>(level_idx);
    auto kind = kind_idx == 0 ? OpKind::GeMM : OpKind::GeMV;
    GemmShape shape{kind == OpKind::GeMM ? 2048u : 8u, 4096, 4096};

    engine::PlanInputs in;
    in.spec = &rtx4090();
    in.histogram = &hist(cfg);
    auto plan = engine::planWeightKernel(kind, shape, cfg, level, in);
    checkPlanInvariants(plan, rtx4090());

    auto r = kernels::estimateVqWeightKernel(rtx4090(), plan,
                                             in.histogram);
    EXPECT_GT(r.us(), 0.0);
    EXPECT_LT(r.us(), 1e7);
    EXPECT_GE(r.counters.smem_transactions,
              r.counters.smem_ideal_transactions);
    // Quantized kernels read less than the FP16 weight volume plus
    // codebooks and activations would allow... at minimum, the index
    // stream must be accounted.
    EXPECT_GE(r.counters.dram_read_bytes,
              static_cast<std::uint64_t>(4096ull * 4096 *
                                         cfg.bitsPerElement() / 8));
}

INSTANTIATE_TEST_SUITE_P(
    Space, WeightSweep,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 6),
                       ::testing::Range(0, 2)));

class AttnSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(AttnSweep, PlanAndEstimateInvariants)
{
    auto [cq_idx, level_idx, shape_idx] = GetParam();
    const vq::VQConfig cfg = cq_idx == 0 ? vq::cq4() : vq::cq2();
    auto level = static_cast<OptLevel>(level_idx);
    const AttnShape shapes[] = {
        {1, 32, 1024, 128},
        {8, 32, 4096, 128},
        {4, 64, 2048, 128, 8}, // GQA
    };
    AttnShape shape = shapes[shape_idx];

    engine::PlanInputs in;
    in.spec = &rtx4090();
    in.histogram = &hist(cfg);
    auto plan = engine::planAttentionKernel(shape, cfg, level, in);
    checkPlanInvariants(plan, rtx4090());

    auto r = kernels::estimateVqAttentionKernel(rtx4090(), plan,
                                                in.histogram);
    EXPECT_GT(r.us(), 0.0);
    // The K-cache operand never needs an exchange.
    EXPECT_TRUE(plan.fusion_k.layout_matches);
}

INSTANTIATE_TEST_SUITE_P(
    Space, AttnSweep,
    ::testing::Combine(::testing::Range(0, 2), ::testing::Range(0, 6),
                       ::testing::Range(0, 3)));

TEST(MonotonicitySweep, AttentionLatencyGrowsWithSequence)
{
    engine::PlanInputs in;
    in.spec = &rtx4090();
    in.histogram = &hist(vq::cq2());
    double prev = 0;
    for (std::size_t seq : {512u, 1024u, 2048u, 4096u, 8192u}) {
        auto plan = engine::planAttentionKernel({8, 32, seq, 128},
                                                vq::cq2(),
                                                OptLevel::O4, in);
        double us = kernels::estimateVqAttentionKernel(
                        rtx4090(), plan, in.histogram)
                        .us();
        EXPECT_GT(us, prev) << "seq " << seq;
        prev = us;
    }
}

TEST(MonotonicitySweep, OptimizedNeverLosesToGcAnywhere)
{
    // The adaptive best (min over O1..O4) must beat GC at every shape
    // and config — the framework's core promise.
    engine::PlanInputs in;
    in.spec = &rtx4090();
    for (const auto &cfg : {vq::cq4(), vq::cq2()}) {
        in.histogram = &hist(cfg);
        for (std::size_t bs : {1u, 8u}) {
            for (std::size_t seq : {1024u, 4096u}) {
                AttnShape shape{bs, 32, seq, 128};
                auto gc = kernels::estimateVqAttentionKernel(
                    rtx4090(),
                    engine::planAttentionKernel(shape, cfg,
                                                OptLevel::GC, in),
                    in.histogram);
                double best = 1e30;
                for (auto level : {OptLevel::O1, OptLevel::O2,
                                   OptLevel::O3, OptLevel::O4}) {
                    best = std::min(
                        best, kernels::estimateVqAttentionKernel(
                                  rtx4090(),
                                  engine::planAttentionKernel(
                                      shape, cfg, level, in),
                                  in.histogram)
                                  .us());
                }
                EXPECT_LT(best, gc.us())
                    << cfg.name << " bs=" << bs << " seq=" << seq;
            }
        }
    }
}

TEST(CrossGpuSweep, PlansAdaptToTheA40)
{
    // Plans re-derived for the A40 remain valid; latencies grow roughly
    // with the bandwidth ratio for memory-bound kernels.
    engine::PlanInputs in4090, inA40;
    in4090.spec = &rtx4090();
    inA40.spec = &teslaA40();
    in4090.histogram = inA40.histogram = &hist(vq::cq2());
    AttnShape shape{8, 32, 4096, 128};
    auto p4090 = engine::planAttentionKernel(shape, vq::cq2(),
                                             OptLevel::O4, in4090);
    auto pA40 = engine::planAttentionKernel(shape, vq::cq2(),
                                            OptLevel::O4, inA40);
    checkPlanInvariants(pA40, teslaA40());
    double r = kernels::estimateVqAttentionKernel(teslaA40(), pA40,
                                                  inA40.histogram)
                   .us() /
               kernels::estimateVqAttentionKernel(rtx4090(), p4090,
                                                  in4090.histogram)
                   .us();
    EXPECT_GT(r, 1.1);
    EXPECT_LT(r, 2.5);
}

} // namespace
} // namespace vqllm
