/**
 * @file
 * Tests for k-means clustering: correctness on separable data, invariants
 * (determinism, monotone inertia), and edge cases.
 */
#include <gtest/gtest.h>

#include <set>

#include "tensor/datagen.h"
#include "vq/kmeans.h"

namespace vqllm::vq {
namespace {

/** Build n points around k well-separated centers. */
Tensor<float>
separableData(std::size_t n, std::size_t k, std::size_t dim, Rng &rng)
{
    Tensor<float> centers({k, dim});
    for (std::size_t c = 0; c < k; ++c)
        for (std::size_t d = 0; d < dim; ++d)
            centers.at(c, d) = static_cast<float>(10.0 * c + d);
    Tensor<float> data({n, dim});
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t c = i % k;
        for (std::size_t d = 0; d < dim; ++d)
            data.at(i, d) = centers.at(c, d) +
                            static_cast<float>(rng.normal(0.0, 0.05));
    }
    return data;
}

TEST(KMeans, RecoversSeparatedClusters)
{
    Rng rng(1);
    auto data = separableData(300, 3, 4, rng);
    auto res = kMeans(data, 3);
    // Every point sits within noise distance of its centroid.
    for (std::size_t i = 0; i < data.dim(0); ++i) {
        double d = rowDistanceSq(data, i, res.centroids,
                                 res.assignments[i]);
        EXPECT_LT(d, 0.5) << "point " << i;
    }
    // All three clusters are used.
    std::set<std::uint32_t> used(res.assignments.begin(),
                                 res.assignments.end());
    EXPECT_EQ(used.size(), 3u);
}

TEST(KMeans, DeterministicForSeed)
{
    Rng rng(2);
    auto data = generateClustered(200, 4, ClusteredDataSpec{}, rng);
    auto a = kMeans(data, 16);
    auto b = kMeans(data, 16);
    EXPECT_EQ(a.assignments, b.assignments);
    EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
    EXPECT_EQ(maxAbsDiff(a.centroids, b.centroids), 0.0);
}

TEST(KMeans, MoreClustersLowerInertia)
{
    Rng rng(3);
    auto data = generateClustered(400, 4, ClusteredDataSpec{}, rng);
    double prev = 1e30;
    for (std::size_t k : {2, 8, 32, 128}) {
        auto res = kMeans(data, k);
        EXPECT_LE(res.inertia, prev * 1.001) << "k=" << k;
        prev = res.inertia;
    }
}

TEST(KMeans, SingleClusterIsMean)
{
    Rng rng(4);
    Tensor<float> data({50, 3});
    fillNormal(data, rng);
    auto res = kMeans(data, 1);
    for (std::size_t d = 0; d < 3; ++d) {
        double mean = 0;
        for (std::size_t i = 0; i < 50; ++i)
            mean += data.at(i, d);
        mean /= 50;
        EXPECT_NEAR(res.centroids.at(std::size_t(0), d), mean, 1e-4);
    }
}

TEST(KMeans, KLargerThanNStillValid)
{
    Rng rng(5);
    Tensor<float> data({4, 2});
    fillNormal(data, rng);
    auto res = kMeans(data, 16);
    ASSERT_EQ(res.centroids.dim(0), 16u);
    // Every point should map to (near) itself: inertia ~ 0.
    EXPECT_LT(res.inertia, 1e-6);
}

TEST(KMeans, AssignmentsMatchNearestCentroid)
{
    Rng rng(6);
    auto data = generateClustered(200, 4, ClusteredDataSpec{}, rng);
    auto res = kMeans(data, 8);
    auto manual = assignToNearest(data, res.centroids);
    EXPECT_EQ(res.assignments, manual);
}

TEST(KMeans, SampledTrainingStillClusters)
{
    Rng rng(7);
    auto data = separableData(2000, 4, 4, rng);
    KMeansOptions opts;
    opts.sample_limit = 256;
    auto res = kMeans(data, 4, opts);
    // Sampled training on separable data still recovers the clusters.
    for (std::size_t i = 0; i < data.dim(0); ++i) {
        double d = rowDistanceSq(data, i, res.centroids,
                                 res.assignments[i]);
        EXPECT_LT(d, 0.5);
    }
}

TEST(KMeans, IdenticalPointsDoNotCrash)
{
    Tensor<float> data({32, 4});
    data.fill(1.5f);
    auto res = kMeans(data, 4);
    EXPECT_LT(res.inertia, 1e-9);
    for (std::size_t d = 0; d < 4; ++d)
        EXPECT_NEAR(res.centroids.at(res.assignments[0], d), 1.5f, 1e-6);
}

TEST(KMeansDeath, RejectsBadInput)
{
    Tensor<float> one_d({8});
    EXPECT_DEATH(kMeans(one_d, 2), "\\[n, dim\\]");
    Tensor<float> ok({8, 2});
    EXPECT_DEATH(kMeans(ok, 0), "positive");
}

} // namespace
} // namespace vqllm::vq
