/**
 * @file
 * Tests for quantized-tensor serialization: bit-exact round trips for
 * every paper configuration, and corruption handling.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "tensor/datagen.h"
#include "vq/profiler.h"
#include "vq/serialize.h"

namespace vqllm::vq {
namespace {

QuantizedTensor
sample(const VQConfig &base, std::uint64_t seed)
{
    VQConfig cfg = base;
    cfg.num_entries = std::min<std::size_t>(cfg.num_entries, 32);
    if (cfg.lattice) {
        cfg.lattice_base_entries = 16;
        cfg.num_entries = 16u << cfg.vector_size;
    }
    Rng rng(seed);
    auto data = generateClustered(64, 32, ClusteredDataSpec{}, rng);
    KMeansOptions opts;
    opts.max_iters = 5;
    return VectorQuantizer(cfg, opts).quantize(data);
}

class SerializeAllConfigs : public ::testing::TestWithParam<int>
{
};

TEST_P(SerializeAllConfigs, RoundTripIsBitExact)
{
    auto qt = sample(paperConfigs()[GetParam()], 100 + GetParam());
    std::stringstream buffer;
    saveQuantizedTensor(qt, buffer);
    auto loaded = loadQuantizedTensor(buffer);

    // Metadata round trip.
    EXPECT_EQ(loaded.rows, qt.rows);
    EXPECT_EQ(loaded.cols, qt.cols);
    EXPECT_EQ(loaded.scope_units, qt.scope_units);
    EXPECT_EQ(loaded.config.name, qt.config.name);
    EXPECT_EQ(loaded.config.vector_size, qt.config.vector_size);
    EXPECT_EQ(loaded.config.residuals, qt.config.residuals);
    EXPECT_EQ(loaded.config.scope, qt.config.scope);
    EXPECT_EQ(loaded.codebooks.size(), qt.codebooks.size());

    // Index stream round trip.
    ASSERT_EQ(loaded.indices.size(), qt.indices.size());
    for (std::size_t i = 0; i < qt.indices.size(); ++i)
        ASSERT_EQ(loaded.indices.get(i), qt.indices.get(i)) << i;

    // Bit-exact reconstruction.
    auto before = VectorQuantizer::dequantize(qt);
    auto after = VectorQuantizer::dequantize(loaded);
    EXPECT_EQ(maxAbsDiff(before, after), 0.0);
}

INSTANTIATE_TEST_SUITE_P(PaperConfigs, SerializeAllConfigs,
                         ::testing::Range(0, 5));

TEST(Serialize, SurvivesReorderThenRoundTrip)
{
    auto qt = sample(cq2(), 7);
    reorderByFrequency(qt);
    std::stringstream buffer;
    saveQuantizedTensor(qt, buffer);
    auto loaded = loadQuantizedTensor(buffer);
    EXPECT_EQ(maxAbsDiff(VectorQuantizer::dequantize(qt),
                         VectorQuantizer::dequantize(loaded)),
              0.0);
}

TEST(Serialize, FileRoundTrip)
{
    auto qt = sample(cq4(), 9);
    std::string path = ::testing::TempDir() + "/vqllm_serialize_test.vqt";
    saveQuantizedTensorFile(qt, path);
    auto loaded = loadQuantizedTensorFile(path);
    EXPECT_EQ(maxAbsDiff(VectorQuantizer::dequantize(qt),
                         VectorQuantizer::dequantize(loaded)),
              0.0);
    std::remove(path.c_str());
}

TEST(SerializeDeath, RejectsCorruptArtifacts)
{
    // Wrong magic.
    std::stringstream bad_magic("NOPE this is not an artifact");
    EXPECT_EXIT(loadQuantizedTensor(bad_magic),
                ::testing::ExitedWithCode(1), "not a VQ-LLM");

    // Truncation mid-payload.
    auto qt = sample(cq2(), 11);
    std::stringstream buffer;
    saveQuantizedTensor(qt, buffer);
    std::string full = buffer.str();
    std::stringstream truncated(full.substr(0, full.size() / 2));
    EXPECT_EXIT(loadQuantizedTensor(truncated),
                ::testing::ExitedWithCode(1), "truncated|implausible");

    // Version bump.
    std::string versioned = full;
    versioned[4] = 99; // little-endian version byte
    std::stringstream wrong_version(versioned);
    EXPECT_EXIT(loadQuantizedTensor(wrong_version),
                ::testing::ExitedWithCode(1), "version");

    // Missing file.
    EXPECT_EXIT(loadQuantizedTensorFile("/nonexistent/x.vqt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace vqllm::vq
