/**
 * @file
 * Tests for access-frequency profiling and frequency-based reordering —
 * the offline phase of the codebook cache (paper Sec. V, Fig. 8/9).
 */
#include <gtest/gtest.h>

#include "tensor/datagen.h"
#include "vq/profiler.h"

namespace vqllm::vq {
namespace {

QuantizedTensor
quantizedSample(std::size_t rows = 128, std::size_t cols = 32)
{
    ClusteredDataSpec spec;
    spec.num_clusters = 24;
    spec.popularity_alpha = 1.2; // strong skew, like real weights
    Rng rng(23);
    auto data = generateClustered(rows, cols, spec, rng);
    KMeansOptions opts;
    opts.max_iters = 8;
    VQConfig cfg = cq2();
    cfg.num_entries = 64;
    return VectorQuantizer(cfg, opts).quantize(data);
}

TEST(Profiler, TotalAccessesMatchIndexCount)
{
    auto qt = quantizedSample();
    auto prof = profileAccesses(qt);
    std::uint64_t total = 0;
    for (const auto &h : prof.histograms)
        total += h.total();
    EXPECT_EQ(total, qt.rows * qt.subspaces() * qt.config.residuals);
}

TEST(Profiler, SkewedDataYieldsSkewedHistogram)
{
    // Paper Fig. 8: over half the entries are accessed less than the
    // mean on realistic data.
    auto qt = quantizedSample();
    auto prof = profileAccesses(qt);
    double below = prof.histograms[0].fractionBelowMean();
    EXPECT_GT(below, 0.5);
}

TEST(Profiler, BlockHistogramsSumToGlobal)
{
    auto qt = quantizedSample();
    auto prof = profileAccesses(qt, 32);
    ASSERT_EQ(prof.block_histograms.size(), 4u);
    std::vector<std::uint64_t> summed(prof.histograms[0].counts.size(),
                                      0);
    for (const auto &bh : prof.block_histograms)
        for (std::size_t e = 0; e < bh.counts.size(); ++e)
            summed[e] += bh.counts[e];
    EXPECT_EQ(summed, prof.histograms[0].counts);
}

TEST(Profiler, HotEntriesConsistentAcrossBlocks)
{
    // Paper Fig. 9: globally hot entries are hot in most blocks, which
    // justifies tensor-level (not per-block) reordering.
    auto qt = quantizedSample(256, 32);
    auto prof = profileAccesses(qt, 64);
    auto order = prof.histograms[0].frequencyOrder();
    // Take the top-4 global entries; each must rank in the top half of
    // at least 3 of 4 blocks.
    for (int rank = 0; rank < 4; ++rank) {
        std::uint32_t entry = order[rank];
        int in_top_half = 0;
        for (const auto &bh : prof.block_histograms) {
            auto border = bh.frequencyOrder();
            auto pos = std::find(border.begin(), border.end(), entry) -
                       border.begin();
            if (static_cast<std::size_t>(pos) < border.size() / 2)
                ++in_top_half;
        }
        EXPECT_GE(in_top_half, 3) << "global rank " << rank;
    }
}

TEST(Profiler, FrequencyOrderIsDescending)
{
    auto qt = quantizedSample();
    auto prof = profileAccesses(qt);
    for (const auto &h : prof.histograms) {
        auto order = h.frequencyOrder();
        for (std::size_t i = 1; i < order.size(); ++i)
            EXPECT_GE(h.counts[order[i - 1]], h.counts[order[i]]);
    }
}

TEST(Profiler, StatsOnKnownHistogram)
{
    AccessHistogram h;
    h.counts = {10, 0, 0, 2};
    EXPECT_EQ(h.total(), 12u);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
    EXPECT_DOUBLE_EQ(h.fractionBelowMean(), 0.75);
    // sigma = sqrt((49+9+9+1)/4) = sqrt(17); 10 > 3+sqrt(17) -> 1 entry
    EXPECT_EQ(h.entriesAbove(1.0), 1u);
    EXPECT_EQ(h.entriesAbove(100.0), 0u);
    auto order = h.frequencyOrder();
    EXPECT_EQ(order[0], 0u);
    EXPECT_EQ(order[1], 3u);
}

TEST(Reorder, PreservesDequantizedValues)
{
    // Reordering entries + rewriting indices must not change the
    // reconstruction at all — it is a pure renaming.
    auto qt = quantizedSample();
    auto before = VectorQuantizer::dequantize(qt);
    reorderByFrequency(qt);
    auto after = VectorQuantizer::dequantize(qt);
    EXPECT_EQ(maxAbsDiff(before, after), 0.0);
}

TEST(Reorder, MakesIndexZeroTheHottest)
{
    auto qt = quantizedSample();
    reorderByFrequency(qt);
    auto prof = profileAccesses(qt);
    for (const auto &h : prof.histograms) {
        // After reordering, counts are non-increasing in entry index.
        for (std::size_t e = 1; e < h.counts.size(); ++e)
            EXPECT_GE(h.counts[e - 1], h.counts[e]);
    }
}

TEST(Reorder, WorksForLatticeBooks)
{
    ClusteredDataSpec spec;
    Rng rng(31);
    auto data = generateClustered(64, 16, spec, rng);
    VQConfig cfg = quip4();
    cfg.lattice_base_entries = 16;
    cfg.num_entries = 16u << cfg.vector_size;
    cfg.residuals = 1;
    KMeansOptions opts;
    opts.max_iters = 6;
    auto qt = VectorQuantizer(cfg, opts).quantize(data);
    auto before = VectorQuantizer::dequantize(qt);
    reorderByFrequency(qt);
    auto after = VectorQuantizer::dequantize(qt);
    EXPECT_EQ(maxAbsDiff(before, after), 0.0);
}

} // namespace
} // namespace vqllm::vq
