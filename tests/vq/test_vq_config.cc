/**
 * @file
 * Tests that the five paper configurations (Tbl. II) are encoded
 * faithfully: vector sizes, entry counts, residuals, compression ratios.
 */
#include <gtest/gtest.h>

#include "vq/vq_config.h"

namespace vqllm::vq {
namespace {

TEST(VQConfig, Table2CompressionRatios)
{
    // Tbl. II: compression ratio against FP16.
    EXPECT_DOUBLE_EQ(quip4().compressionRatio(), 0.25);
    EXPECT_DOUBLE_EQ(aqlm3().compressionRatio(), 0.1875);
    EXPECT_DOUBLE_EQ(gptvq2().compressionRatio(), 0.125);
    EXPECT_DOUBLE_EQ(cq4().compressionRatio(), 0.25);
    EXPECT_DOUBLE_EQ(cq2().compressionRatio(), 0.125);
}

TEST(VQConfig, Table2Parameters)
{
    auto q = quip4();
    EXPECT_EQ(q.vector_size, 8u);
    EXPECT_EQ(q.num_entries, 65536u);
    EXPECT_EQ(q.residuals, 2u);
    EXPECT_TRUE(q.lattice);
    EXPECT_EQ(q.lattice_base_entries, 256u);
    EXPECT_EQ(q.storedEntries(), 256u);

    auto a = aqlm3();
    EXPECT_EQ(a.vector_size, 8u);
    EXPECT_EQ(a.num_entries, 4096u);
    EXPECT_EQ(a.indexBits(), 12u); // the unaligned 12-bit format
    EXPECT_EQ(a.residuals, 2u);

    auto g = gptvq2();
    EXPECT_EQ(g.vector_size, 4u);
    EXPECT_EQ(g.num_entries, 256u);
    EXPECT_EQ(g.scope, CodebookScope::PerTile);

    auto c4 = cq4();
    EXPECT_EQ(c4.vector_size, 2u);
    EXPECT_EQ(c4.scope, CodebookScope::PerChannelGroup);

    auto c2 = cq2();
    EXPECT_EQ(c2.vector_size, 4u);
    EXPECT_EQ(c2.notation(), "VQ<4,8,1>");
}

TEST(VQConfig, BitsPerElement)
{
    EXPECT_DOUBLE_EQ(quip4().bitsPerElement(), 4.0);
    EXPECT_DOUBLE_EQ(aqlm3().bitsPerElement(), 3.0);
    EXPECT_DOUBLE_EQ(gptvq2().bitsPerElement(), 2.0);
    EXPECT_DOUBLE_EQ(cq4().bitsPerElement(), 4.0);
    EXPECT_DOUBLE_EQ(cq2().bitsPerElement(), 2.0);
}

TEST(VQConfig, EntryAndCodebookBytes)
{
    // CQ-2: 256 entries x 4 elements x 2 bytes = 2 KiB per codebook.
    EXPECT_EQ(cq2().entryBytes(), 8u);
    EXPECT_EQ(cq2().codebookBytes(), 2048u);
    // QuiP#-4 stores only the 256-entry base: 256 x 8 x 2 = 4 KiB.
    EXPECT_EQ(quip4().codebookBytes(), 4096u);
    // AQLM-3: 4096 x 8 x 2 = 64 KiB per codebook (x2 residuals = the
    // 128 KiB/block figure in Tbl. V).
    EXPECT_EQ(aqlm3().codebookBytes(), 65536u);
}

TEST(VQConfig, PaperConfigsOrderAndCount)
{
    const auto &cfgs = paperConfigs();
    ASSERT_EQ(cfgs.size(), 5u);
    EXPECT_EQ(cfgs[0].name, "QuiP#-4");
    EXPECT_EQ(cfgs[1].name, "AQLM-3");
    EXPECT_EQ(cfgs[2].name, "GPTVQ-2");
    EXPECT_EQ(cfgs[3].name, "CQ-4");
    EXPECT_EQ(cfgs[4].name, "CQ-2");
}

} // namespace
} // namespace vqllm::vq
