/**
 * @file
 * Tests for the end-to-end quantize/dequantize pipeline across all five
 * paper configurations: reconstruction quality, compression accounting,
 * scope mapping, residual behaviour.
 */
#include <gtest/gtest.h>

#include "tensor/datagen.h"
#include "vq/profiler.h"
#include "vq/quantizer.h"

namespace vqllm::vq {
namespace {

Tensor<float>
testData(std::size_t rows, std::size_t cols, std::uint64_t seed = 17)
{
    ClusteredDataSpec spec;
    spec.num_clusters = 48;
    spec.popularity_alpha = 1.0;
    Rng rng(seed);
    return generateClustered(rows, cols, spec, rng);
}

KMeansOptions
fastTraining()
{
    KMeansOptions o;
    o.max_iters = 8;
    o.sample_limit = 1024;
    return o;
}

TEST(Quantizer, RoundTripShapeAndDeterminism)
{
    auto data = testData(64, 16);
    VectorQuantizer q(cq2(), fastTraining());
    auto qt = q.quantize(data);
    EXPECT_EQ(qt.rows, 64u);
    EXPECT_EQ(qt.cols, 16u);
    EXPECT_EQ(qt.subspaces(), 4u);
    auto rec1 = VectorQuantizer::dequantize(qt);
    auto rec2 = VectorQuantizer::dequantize(q.quantize(data));
    EXPECT_EQ(rec1.shape(), data.shape());
    EXPECT_EQ(maxAbsDiff(rec1, rec2), 0.0);
}

TEST(Quantizer, ReconstructionBeatsZeroBaseline)
{
    auto data = testData(128, 16);
    VectorQuantizer q(cq2(), fastTraining());
    auto rec = VectorQuantizer::dequantize(q.quantize(data));
    Tensor<float> zeros(data.shape());
    EXPECT_LT(mse(data, rec), 0.25 * mse(data, zeros));
}

TEST(Quantizer, ResidualStagesImproveReconstruction)
{
    auto data = testData(96, 16);
    VQConfig one = cq2();
    one.residuals = 1;
    VQConfig two = cq2();
    two.residuals = 2;
    auto mse1 = mse(data, VectorQuantizer::dequantize(
                              VectorQuantizer(one, fastTraining())
                                  .quantize(data)));
    auto mse2 = mse(data, VectorQuantizer::dequantize(
                              VectorQuantizer(two, fastTraining())
                                  .quantize(data)));
    EXPECT_LT(mse2, mse1);
}

TEST(Quantizer, MoreEntriesImproveReconstruction)
{
    auto data = testData(128, 16);
    VQConfig small = cq2();
    small.num_entries = 16;
    VQConfig large = cq2();
    large.num_entries = 256;
    auto mse_small = mse(data, VectorQuantizer::dequantize(
                                   VectorQuantizer(small, fastTraining())
                                       .quantize(data)));
    auto mse_large = mse(data, VectorQuantizer::dequantize(
                                   VectorQuantizer(large, fastTraining())
                                       .quantize(data)));
    EXPECT_LT(mse_large, mse_small);
}

TEST(Quantizer, PerChannelGroupScopeTrainsOneBookPerSubspace)
{
    auto data = testData(64, 16);
    VectorQuantizer q(cq2(), fastTraining()); // vec 4 -> 4 subspaces
    auto qt = q.quantize(data);
    EXPECT_EQ(qt.scope_units, 4u);
    EXPECT_EQ(qt.codebooks.size(), 4u);
    EXPECT_EQ(qt.codebookUnit(0, 2), 2u);
    EXPECT_EQ(qt.codebookUnit(63, 2), 2u); // rows share the unit
}

TEST(Quantizer, PerTensorScopeSharesOneBook)
{
    auto data = testData(32, 16);
    VQConfig cfg = aqlm3();
    cfg.num_entries = 64; // keep the test fast
    cfg.vector_size = 8;
    cfg.residuals = 2;
    VectorQuantizer q(cfg, fastTraining());
    auto qt = q.quantize(data);
    EXPECT_EQ(qt.scope_units, 1u);
    EXPECT_EQ(qt.codebooks.size(), 2u); // one per residual
    EXPECT_EQ(qt.codebookUnit(31, 1), 0u);
}

TEST(Quantizer, PerTileScopeMapsTiles)
{
    // 512x512 would be slow to train; shrink the tile indirectly by
    // checking the unit arithmetic on a tensor spanning 2x2 tiles.
    VQConfig cfg = gptvq2();
    QuantizedTensor qt;
    qt.config = cfg;
    qt.rows = 512;
    qt.cols = 512;
    EXPECT_EQ(qt.codebookUnit(0, 0), 0u);
    EXPECT_EQ(qt.codebookUnit(0, 256 / cfg.vector_size), 1u);
    EXPECT_EQ(qt.codebookUnit(256, 0), 2u);
    EXPECT_EQ(qt.codebookUnit(511, 511 / cfg.vector_size), 3u);
}

TEST(Quantizer, CompressionCloseToNominal)
{
    // For a large enough tensor the index stream dominates and the
    // achieved compression approaches the nominal ratio.
    auto data = testData(256, 64);
    VectorQuantizer q(cq2(), fastTraining());
    auto qt = q.quantize(data);
    double nominal = cq2().compressionRatio();
    // Index bytes alone match the nominal exactly.
    EXPECT_DOUBLE_EQ(
        static_cast<double>(qt.indexBytes()) / (256.0 * 64 * 2), nominal);
    // Size accounting is consistent; codebooks add the rest.
    EXPECT_EQ(qt.sizeBytes(), qt.indexBytes() + qt.codebookTotalBytes());
    EXPECT_EQ(qt.codebookTotalBytes(),
              qt.scope_units * cq2().codebookBytes());
}

TEST(Quantizer, LatticeConfigRoundTrips)
{
    auto data = testData(48, 16);
    VQConfig cfg = quip4();
    cfg.lattice_base_entries = 32; // keep the test fast
    cfg.residuals = 1;
    VectorQuantizer q(cfg, fastTraining());
    auto qt = q.quantize(data);
    ASSERT_EQ(qt.codebooks.size(), 1u);
    EXPECT_TRUE(qt.codebooks[0].isLattice());
    auto rec = VectorQuantizer::dequantize(qt);
    Tensor<float> zeros(data.shape());
    EXPECT_LT(mse(data, rec), 0.5 * mse(data, zeros));
}

TEST(Quantizer, DequantizeSubvectorMatchesFull)
{
    auto data = testData(32, 16);
    VectorQuantizer q(cq4(), fastTraining());
    auto qt = q.quantize(data);
    auto full = VectorQuantizer::dequantize(qt);
    float sub[2];
    for (std::size_t r = 0; r < qt.rows; r += 7) {
        for (std::size_t s = 0; s < qt.subspaces(); s += 3) {
            VectorQuantizer::dequantizeSubvector(qt, r, s, sub);
            for (unsigned d = 0; d < 2; ++d)
                EXPECT_EQ(sub[d], full.at(r, s * 2 + d));
        }
    }
}

TEST(QuantizerDeath, RejectsIndivisibleCols)
{
    Tensor<float> data({8, 10});
    VectorQuantizer q(cq2(), fastTraining()); // vec 4, 10 % 4 != 0
    EXPECT_DEATH(q.quantize(data), "divisible");
}

class QuantizerAllConfigs : public ::testing::TestWithParam<int>
{
};

TEST_P(QuantizerAllConfigs, RoundTripEveryPaperConfig)
{
    // Property: every Tbl. II config quantizes and reconstructs with
    // bounded error on clustered data (entry counts shrunk for speed,
    // preserving structure: scope, residuals, lattice).
    VQConfig cfg = paperConfigs()[GetParam()];
    cfg.num_entries = std::min<std::size_t>(cfg.num_entries, 64);
    if (cfg.lattice) {
        cfg.lattice_base_entries = 16;
        cfg.num_entries = 16u << cfg.vector_size;
    }
    auto data = testData(64, 32, 100 + GetParam());
    VectorQuantizer q(cfg, fastTraining());
    auto qt = q.quantize(data);
    auto rec = VectorQuantizer::dequantize(qt);
    Tensor<float> zeros(data.shape());
    EXPECT_LT(mse(data, rec), 0.6 * mse(data, zeros)) << cfg.name;
}

INSTANTIATE_TEST_SUITE_P(PaperConfigs, QuantizerAllConfigs,
                         ::testing::Range(0, 5));

} // namespace
} // namespace vqllm::vq
