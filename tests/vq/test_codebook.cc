/**
 * @file
 * Tests for plain and lattice codebooks: decode/encode correctness,
 * lattice sign-expansion semantics, frequency reordering.
 */
#include <gtest/gtest.h>

#include "tensor/tensor.h"
#include "vq/codebook.h"

namespace vqllm::vq {
namespace {

Tensor<float>
smallEntries()
{
    Tensor<float> e({4, 2});
    e.at(std::size_t(0), std::size_t(0)) = 1.0f;
    e.at(std::size_t(0), std::size_t(1)) = 2.0f;
    e.at(std::size_t(1), std::size_t(0)) = -1.0f;
    e.at(std::size_t(1), std::size_t(1)) = 0.5f;
    e.at(std::size_t(2), std::size_t(0)) = 3.0f;
    e.at(std::size_t(2), std::size_t(1)) = -3.0f;
    e.at(std::size_t(3), std::size_t(0)) = 0.0f;
    e.at(std::size_t(3), std::size_t(1)) = 0.0f;
    return e;
}

TEST(Codebook, PlainDecodeReturnsEntry)
{
    auto cb = Codebook::plain(smallEntries());
    EXPECT_EQ(cb.logicalEntries(), 4u);
    EXPECT_EQ(cb.storedEntries(), 4u);
    EXPECT_EQ(cb.vectorSize(), 2u);
    EXPECT_FALSE(cb.isLattice());
    float out[2];
    cb.decode(2, out);
    EXPECT_EQ(out[0], 3.0f);
    EXPECT_EQ(out[1], -3.0f);
}

TEST(Codebook, PlainEncodeFindsNearest)
{
    auto cb = Codebook::plain(smallEntries());
    float q[2] = {0.9f, 2.2f};
    double err = 0;
    EXPECT_EQ(cb.encode(q, &err), 0u);
    EXPECT_NEAR(err, 0.01 + 0.04, 1e-4);
    float z[2] = {0.1f, -0.1f};
    EXPECT_EQ(cb.encode(z), 3u);
}

TEST(Codebook, EncodeDecodeConsistency)
{
    // decode(encode(x)) must be the nearest entry: re-encoding the
    // decoded value is a fixed point.
    auto cb = Codebook::plain(smallEntries());
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        float v[2] = {static_cast<float>(rng.normal(0, 2)),
                      static_cast<float>(rng.normal(0, 2))};
        std::uint32_t idx = cb.encode(v);
        float dec[2];
        cb.decode(idx, dec);
        EXPECT_EQ(cb.encode(dec), idx);
    }
}

TEST(Codebook, SizeBytesIsFp16Storage)
{
    auto cb = Codebook::plain(smallEntries());
    EXPECT_EQ(cb.sizeBytes(), 4u * 2 * 2);
}

TEST(Codebook, EntriesRoundedThroughFp16)
{
    Tensor<float> e({1, 2});
    e.at(std::size_t(0), std::size_t(0)) = 0.1f; // not representable
    e.at(std::size_t(0), std::size_t(1)) = 1.0f;
    auto cb = Codebook::plain(e);
    float out[2];
    cb.decode(0, out);
    EXPECT_EQ(out[0], roundToHalf(0.1f));
    EXPECT_EQ(out[1], 1.0f);
}

TEST(LatticeCodebook, LogicalSpaceIsBaseTimesSigns)
{
    Tensor<float> base({4, 3});
    for (std::size_t i = 0; i < base.size(); ++i)
        base[i] = static_cast<float>(i + 1);
    auto cb = Codebook::lattice(base);
    EXPECT_TRUE(cb.isLattice());
    EXPECT_EQ(cb.storedEntries(), 4u);
    EXPECT_EQ(cb.logicalEntries(), 4u << 3);
    // Stored bytes only cover the base table.
    EXPECT_EQ(cb.sizeBytes(), 4u * 3 * 2);
}

TEST(LatticeCodebook, SignMaskFlipsElements)
{
    Tensor<float> base({2, 4});
    for (std::size_t d = 0; d < 4; ++d) {
        base.at(std::size_t(0), d) = static_cast<float>(d + 1);
        base.at(std::size_t(1), d) = 8.0f;
    }
    auto cb = Codebook::lattice(base);
    // index = base 0, sign mask 0b0101 -> flip elements 0 and 2.
    std::uint32_t idx = 0u | (0b0101u << 1);
    EXPECT_EQ(cb.storedIndexOf(idx), 0u);
    float out[4];
    cb.decode(idx, out);
    EXPECT_EQ(out[0], -1.0f);
    EXPECT_EQ(out[1], 2.0f);
    EXPECT_EQ(out[2], -3.0f);
    EXPECT_EQ(out[3], 4.0f);
}

TEST(LatticeCodebook, EncodeRecoversSigns)
{
    Rng rng(5);
    Tensor<float> base({8, 4});
    fillUniform(base, rng, 0.5, 2.0);
    auto cb = Codebook::lattice(base);
    for (int i = 0; i < 100; ++i) {
        float v[4];
        for (auto &x : v)
            x = static_cast<float>(rng.normal(0, 1.5));
        std::uint32_t idx = cb.encode(v);
        float dec[4];
        cb.decode(idx, dec);
        // Signs of the decoded value match the input except where the
        // magnitude is better served by the opposite sign near zero.
        for (int d = 0; d < 4; ++d) {
            if (std::abs(v[d]) > 0.5f) {
                EXPECT_EQ(dec[d] < 0, v[d] < 0) << "dim " << d;
            }
        }
    }
}

TEST(LatticeCodebook, EncodeBeatsOrMatchesSignlessSearch)
{
    // The lattice encode must never be worse than searching base entries
    // without sign freedom.
    Rng rng(7);
    Tensor<float> base({16, 4});
    fillUniform(base, rng, 0.1, 3.0);
    auto lattice = Codebook::lattice(base);
    auto plain = Codebook::plain(lattice.entries());
    for (int i = 0; i < 100; ++i) {
        float v[4];
        for (auto &x : v)
            x = static_cast<float>(rng.normal(0, 2));
        double lat_err, plain_err;
        lattice.encode(v, &lat_err);
        plain.encode(v, &plain_err);
        EXPECT_LE(lat_err, plain_err + 1e-9);
    }
}

TEST(Codebook, ReorderPermutesEntriesAndReturnsInverse)
{
    auto cb = Codebook::plain(smallEntries());
    std::vector<std::uint32_t> perm = {2, 0, 3, 1}; // new <- old
    auto inverse = cb.reorder(perm);
    // inverse[old] = new
    EXPECT_EQ(inverse[2], 0u);
    EXPECT_EQ(inverse[0], 1u);
    EXPECT_EQ(inverse[3], 2u);
    EXPECT_EQ(inverse[1], 3u);
    float out[2];
    cb.decode(0, out); // new entry 0 is old entry 2
    EXPECT_EQ(out[0], 3.0f);
    EXPECT_EQ(out[1], -3.0f);
}

TEST(CodebookDeath, RejectsInvalidInput)
{
    auto cb = Codebook::plain(smallEntries());
    float out[2];
    EXPECT_DEATH(cb.decode(4, out), "out of range");
    Tensor<float> bad({3, 2}); // not power of two
    EXPECT_DEATH(Codebook::lattice(bad), "power of two");
    std::vector<std::uint32_t> not_perm = {0, 0, 1, 2};
    EXPECT_DEATH(cb.reorder(not_perm), "permutation");
}

} // namespace
} // namespace vqllm::vq
