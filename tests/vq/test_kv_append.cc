/**
 * @file
 * Tests for on-the-fly KV-cache quantization (paper Sec. VII-F).
 */
#include <gtest/gtest.h>

#include "tensor/datagen.h"
#include "vq/kv_append.h"

namespace vqllm::vq {
namespace {

Tensor<float>
kvSlice(std::size_t tokens, std::size_t channels, std::uint64_t seed)
{
    Rng rng(seed);
    auto kv3 = generateKvCache(1, tokens, channels, rng);
    Tensor<float> flat({tokens, channels});
    for (std::size_t t = 0; t < tokens; ++t)
        for (std::size_t c = 0; c < channels; ++c)
            flat.at(t, c) = kv3.at(std::size_t(0), t, c);
    return flat;
}

VQConfig
smallCq()
{
    VQConfig cfg = cq2();
    cfg.num_entries = 32;
    return cfg;
}

KMeansOptions
fastOpts()
{
    KMeansOptions o;
    o.max_iters = 6;
    return o;
}

TEST(KvAppend, AppendMatchesBatchQuantization)
{
    // Quantizing [prefill; new] in one shot must equal quantizing the
    // prefill and appending the new tokens: same codebooks (trained on
    // prefill), so the encoder must produce identical indices.
    auto all = kvSlice(64, 16, 5);
    Tensor<float> prefill({48, 16});
    for (std::size_t t = 0; t < 48; ++t)
        for (std::size_t c = 0; c < 16; ++c)
            prefill.at(t, c) = all.at(t, c);

    KvCacheQuantizer online(smallCq(), prefill, fastOpts());
    for (std::size_t t = 48; t < 64; ++t)
        online.append(all.data() + t * 16);
    ASSERT_EQ(online.tokens(), 64u);

    // Reference: encode the appended tokens manually with the same
    // codebooks (dequantizeToken must reproduce the nearest entries).
    std::vector<float> out(16);
    for (std::size_t t = 48; t < 64; ++t) {
        online.dequantizeToken(t, out.data());
        for (std::size_t s = 0; s < online.cache().subspaces(); ++s) {
            const Codebook &cb = online.cache().codebookFor(t, s, 0);
            // The stored index must be the nearest-entry encode of the
            // original sub-vector.
            std::uint32_t stored = online.cache().indices.get(
                online.cache().indexPosition(t, s, 0));
            EXPECT_EQ(stored, cb.encode(all.data() + t * 16 + s * 4));
        }
    }
}

TEST(KvAppend, ReconstructionQualityHoldsForAppendedTokens)
{
    auto all = kvSlice(96, 16, 7);
    Tensor<float> prefill({64, 16});
    for (std::size_t t = 0; t < 64; ++t)
        for (std::size_t c = 0; c < 16; ++c)
            prefill.at(t, c) = all.at(t, c);
    KvCacheQuantizer online(smallCq(), prefill, fastOpts());
    for (std::size_t t = 64; t < 96; ++t)
        online.append(all.data() + t * 16);

    auto rec = VectorQuantizer::dequantize(online.cache());
    // Appended tokens reconstruct about as well as prefill tokens
    // (the KV distribution is stationary).
    double prefill_err = 0, appended_err = 0;
    for (std::size_t t = 0; t < 96; ++t) {
        double e = 0;
        for (std::size_t c = 0; c < 16; ++c) {
            double d = rec.at(t, c) - all.at(t, c);
            e += d * d;
        }
        (t < 64 ? prefill_err : appended_err) += e;
    }
    prefill_err /= 64;
    appended_err /= 32;
    // Appended tokens drift from the prefill distribution (AR(1) token
    // dynamics), so their error may grow — but must stay bounded and
    // far below the unquantized variance.
    EXPECT_LT(appended_err, prefill_err * 6 + 0.1);
    Tensor<float> zeros({32, 16}), tail({32, 16});
    for (std::size_t t = 0; t < 32; ++t)
        for (std::size_t c = 0; c < 16; ++c)
            tail.at(t, c) = all.at(64 + t, c);
    EXPECT_LT(appended_err, 0.5 * mse(tail, zeros));
}

TEST(KvAppend, DequantizeTokenMatchesFullDequantize)
{
    auto prefill = kvSlice(32, 16, 9);
    KvCacheQuantizer online(smallCq(), prefill, fastOpts());
    auto full = VectorQuantizer::dequantize(online.cache());
    std::vector<float> out(16);
    for (std::size_t t = 0; t < 32; t += 5) {
        online.dequantizeToken(t, out.data());
        for (std::size_t c = 0; c < 16; ++c)
            EXPECT_EQ(out[c], full.at(t, c));
    }
}

TEST(KvAppend, ResidualConfigsAppendCorrectly)
{
    VQConfig cfg = smallCq();
    cfg.residuals = 2;
    auto all = kvSlice(48, 16, 11);
    Tensor<float> prefill({40, 16});
    for (std::size_t t = 0; t < 40; ++t)
        for (std::size_t c = 0; c < 16; ++c)
            prefill.at(t, c) = all.at(t, c);
    KvCacheQuantizer online(cfg, prefill, fastOpts());
    for (std::size_t t = 40; t < 48; ++t)
        online.append(all.data() + t * 16);
    auto rec = VectorQuantizer::dequantize(online.cache());
    // Two-stage reconstruction of appended tokens stays bounded.
    double err = 0;
    for (std::size_t t = 40; t < 48; ++t)
        for (std::size_t c = 0; c < 16; ++c) {
            double d = rec.at(t, c) - all.at(t, c);
            err += d * d;
        }
    Tensor<float> zeros({8, 16}), tail({8, 16});
    for (std::size_t t = 0; t < 8; ++t)
        for (std::size_t c = 0; c < 16; ++c)
            tail.at(t, c) = all.at(40 + t, c);
    EXPECT_LT(err / (8 * 16), 0.5 * mse(tail, zeros));
}

TEST(KvAppend, OverheadEstimateMatchesPaperClaims)
{
    const auto &spec = gpusim::rtx4090();
    for (const auto &cfg : {cq4(), cq2()}) {
        auto est = estimateQuantOverhead(spec, cfg, 16, 1024, 4096, 32);
        // Paper: "<1 us" for the new token's K/V in decode.
        EXPECT_LT(est.decode_us_per_token, 1.0) << cfg.name;
        // Paper: "less than a 10% overhead compared to linear
        // projections" in prefill.
        EXPECT_LT(est.prefill_fraction_of_projections, 0.10)
            << cfg.name;
        EXPECT_GT(est.prefill_fraction_of_projections, 0.0);
    }
}

TEST(KvAppendDeath, RejectsTileScope)
{
    auto prefill = kvSlice(32, 16, 13);
    VQConfig cfg = gptvq2(); // per-tile scope shifts with token count
    EXPECT_DEATH(KvCacheQuantizer(cfg, prefill, fastOpts()),
                 "tile scope");
}

} // namespace
} // namespace vqllm::vq
