/**
 * @file
 * Tests for the reference LLM computations.
 */
#include <gtest/gtest.h>

#include "kernels/reference.h"
#include "tensor/datagen.h"

namespace vqllm::kernels {
namespace {

TEST(Reference, GemvMatchesManual)
{
    Tensor<float> w({2, 3});
    w.at(std::size_t(0), std::size_t(0)) = 1;
    w.at(std::size_t(0), std::size_t(1)) = 2;
    w.at(std::size_t(0), std::size_t(2)) = 3;
    w.at(std::size_t(1), std::size_t(0)) = -1;
    w.at(std::size_t(1), std::size_t(1)) = 0;
    w.at(std::size_t(1), std::size_t(2)) = 1;
    Tensor<float> x({3});
    x[0] = 1; x[1] = 1; x[2] = 2;
    auto y = referenceGemv(w, x);
    EXPECT_FLOAT_EQ(y[0], 9.0f);
    EXPECT_FLOAT_EQ(y[1], 1.0f);
}

TEST(Reference, GemmAgreesWithGemvRows)
{
    Rng rng(1);
    Tensor<float> x({4, 8}), w({6, 8});
    fillNormal(x, rng);
    fillNormal(w, rng);
    auto y = referenceGemm(x, w);
    ASSERT_EQ(y.shape(), (Shape{4, 6}));
    for (std::size_t i = 0; i < 4; ++i) {
        Tensor<float> xi({8});
        for (std::size_t l = 0; l < 8; ++l)
            xi[l] = x.at(i, l);
        auto yi = referenceGemv(w, xi);
        for (std::size_t j = 0; j < 6; ++j)
            EXPECT_NEAR(y.at(i, j), yi[j], 1e-5);
    }
}

TEST(Reference, SoftmaxNormalizes)
{
    std::vector<float> logits = {1.0f, 2.0f, 3.0f, -1.0f};
    softmaxInPlace(logits);
    double sum = 0;
    for (float p : logits) {
        EXPECT_GT(p, 0.0f);
        sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
    // Monotonicity: larger logits get larger probabilities.
    EXPECT_GT(logits[2], logits[1]);
    EXPECT_GT(logits[1], logits[0]);
    EXPECT_GT(logits[0], logits[3]);
}

TEST(Reference, SoftmaxStableForLargeLogits)
{
    std::vector<float> logits = {1000.0f, 1001.0f};
    softmaxInPlace(logits);
    EXPECT_FALSE(std::isnan(logits[0]));
    EXPECT_NEAR(logits[0] + logits[1], 1.0, 1e-6);
    EXPECT_GT(logits[1], logits[0]);
}

TEST(Reference, AttentionUniformKeysAverageValues)
{
    // With identical keys, attention weights are uniform and the output
    // is the mean of the values.
    const std::size_t T = 8, C = 4;
    Tensor<float> q({C}), k({T, C}), v({T, C});
    q.fill(1.0f);
    k.fill(0.5f);
    Rng rng(3);
    fillNormal(v, rng);
    auto out = referenceAttentionHead(q, k, v);
    for (std::size_t c = 0; c < C; ++c) {
        double mean = 0;
        for (std::size_t t = 0; t < T; ++t)
            mean += v.at(t, c);
        mean /= T;
        EXPECT_NEAR(out[c], mean, 1e-5);
    }
}

TEST(Reference, AttentionAttendsToMatchingKey)
{
    // A key aligned with the query at large scale dominates the output.
    const std::size_t T = 4, C = 8;
    Tensor<float> q({C}), k({T, C}), v({T, C});
    for (std::size_t c = 0; c < C; ++c)
        q[c] = 10.0f;
    for (std::size_t c = 0; c < C; ++c)
        k.at(std::size_t(2), c) = 10.0f; // token 2 matches strongly
    Rng rng(5);
    fillNormal(v, rng);
    auto out = referenceAttentionHead(q, k, v);
    for (std::size_t c = 0; c < C; ++c)
        EXPECT_NEAR(out[c], v.at(std::size_t(2), c), 1e-3);
}

TEST(Reference, MultiHeadMatchesPerHead)
{
    Rng rng(7);
    const std::size_t H = 3, T = 16, C = 8;
    Tensor<float> q({H, C}), k({H, T, C}), v({H, T, C});
    fillNormal(q, rng);
    fillNormal(k, rng);
    fillNormal(v, rng);
    auto out = referenceAttention(q, k, v);
    ASSERT_EQ(out.shape(), (Shape{H, C}));
    // Check head 1 against a manual single-head computation.
    Tensor<float> q1({C}), k1({T, C}), v1({T, C});
    for (std::size_t c = 0; c < C; ++c)
        q1[c] = q.at(std::size_t(1), c);
    for (std::size_t t = 0; t < T; ++t)
        for (std::size_t c = 0; c < C; ++c) {
            k1.at(t, c) = k.at(std::size_t(1), t, c);
            v1.at(t, c) = v.at(std::size_t(1), t, c);
        }
    auto o1 = referenceAttentionHead(q1, k1, v1);
    for (std::size_t c = 0; c < C; ++c)
        EXPECT_FLOAT_EQ(out.at(std::size_t(1), c), o1[c]);
}

} // namespace
} // namespace vqllm::kernels
