/**
 * @file
 * Tests for the element-wise quantization kernel models (AWQ-style
 * weights, QoQ-style KV) used as Fig. 16/17 comparison points.
 */
#include <gtest/gtest.h>

#include "kernels/ewq_kernels.h"
#include "kernels/fp16_kernels.h"

namespace vqllm::kernels {
namespace {

using engine::AttnShape;
using engine::GemmShape;
using gpusim::rtx4090;

TEST(EwqKernels, GemvTrafficScalesWithBits)
{
    GemmShape shape{1, 4096, 4096};
    auto b2 = ewqGemvEstimate(rtx4090(), shape, 2);
    auto b4 = ewqGemvEstimate(rtx4090(), shape, 4);
    auto b8 = ewqGemvEstimate(rtx4090(), shape, 8);
    EXPECT_LT(b2.counters.dram_read_bytes, b4.counters.dram_read_bytes);
    EXPECT_LT(b4.counters.dram_read_bytes, b8.counters.dram_read_bytes);
    EXPECT_LE(b2.us(), b4.us());
    EXPECT_LE(b4.us(), b8.us());
}

TEST(EwqKernels, W4GemvBeatsFp16ByNearlyBandwidthRatio)
{
    // Memory-bound GeMV: 4-bit weights cut the dominant traffic ~4x.
    GemmShape shape{1, 4096, 4096};
    auto fp16 = fp16GemvEstimate(rtx4090(), shape);
    auto awq = ewqGemvEstimate(rtx4090(), shape, 4);
    EXPECT_GT(fp16.us() / awq.us(), 2.0);
    EXPECT_LT(fp16.us() / awq.us(), 4.5);
}

TEST(EwqKernels, GroupSizeAddsMetadataTraffic)
{
    GemmShape shape{1, 4096, 4096};
    auto coarse = ewqGemvEstimate(rtx4090(), shape, 4, 256);
    auto fine = ewqGemvEstimate(rtx4090(), shape, 4, 32);
    EXPECT_GT(fine.counters.dram_read_bytes,
              coarse.counters.dram_read_bytes);
}

TEST(EwqKernels, GemmStaysComputeBound)
{
    // Weight compression barely moves a compute-bound GeMM — the
    // reason both quantization families trail cutlass there
    // (Sec. VII-D).
    GemmShape shape{4096, 4096, 4096};
    auto fp16 = fp16GemmEstimate(rtx4090(), shape);
    auto awq = ewqGemmEstimate(rtx4090(), shape, 4);
    EXPECT_GT(awq.latency.compute_us, awq.latency.dram_us);
    EXPECT_NEAR(awq.us() / fp16.us(), 1.0, 0.25);
}

TEST(EwqKernels, AttentionKv4CutsKvTraffic)
{
    AttnShape shape{8, 32, 4096, 128};
    auto fp16 = fp16AttentionEstimate(rtx4090(), shape);
    auto qoq = ewqAttentionEstimate(rtx4090(), shape, 4);
    EXPECT_LT(qoq.counters.dram_read_bytes,
              fp16.counters.dram_read_bytes / 3);
    EXPECT_LT(qoq.us(), fp16.us());
    // The token-split reduce pass is still there.
    EXPECT_GT(qoq.counters.reduce_bytes, 0u);
}

TEST(EwqKernels, ElementwiseDequantCountsPerElement)
{
    GemmShape shape{1, 1024, 1024};
    auto r = ewqGemvEstimate(rtx4090(), shape, 4);
    EXPECT_EQ(r.counters.unpack_ops, 1024ull * 1024);
    EXPECT_EQ(r.counters.dequant_lookups, 0u); // no codebooks
}

} // namespace
} // namespace vqllm::kernels
