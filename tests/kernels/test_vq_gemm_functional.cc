/**
 * @file
 * Tests for the functional VQ GeMM runner: numerics vs the reference,
 * and the per-row-block re-dequantization accounting.
 */
#include <gtest/gtest.h>

#include "engine/template_engine.h"
#include "kernels/reference.h"
#include "kernels/vq_kernels.h"
#include "tensor/datagen.h"
#include "vq/profiler.h"

namespace vqllm::kernels {
namespace {

using engine::GemmShape;
using engine::OpKind;
using engine::OptLevel;

engine::PlanInputs
inputs()
{
    engine::PlanInputs in;
    in.spec = &gpusim::rtx4090();
    return in;
}

vq::QuantizedTensor
smallWeight(std::size_t n, std::size_t k, std::uint64_t seed)
{
    vq::VQConfig cfg = vq::gptvq2();
    cfg.num_entries = 32;
    Rng rng(seed);
    auto w = generateLlmWeight(n, k, rng);
    vq::KMeansOptions opts;
    opts.max_iters = 6;
    auto qt = vq::VectorQuantizer(cfg, opts).quantize(w);
    vq::reorderByFrequency(qt);
    return qt;
}

TEST(VqGemmFunctional, MatchesReferenceGemm)
{
    auto qt = smallWeight(24, 32, 3);
    Rng rng(5);
    Tensor<float> x({8, qt.cols});
    fillNormal(x, rng);
    auto plan = engine::planWeightKernel(
        OpKind::GeMM, {8, qt.rows, qt.cols}, qt.config, OptLevel::O4,
        inputs());
    auto result = runVqGemm(plan, qt, x);
    auto expect = referenceGemm(x, vq::VectorQuantizer::dequantize(qt));
    ASSERT_EQ(result.output.shape(), expect.shape());
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_NEAR(result.output[i], expect[i], 1e-3) << i;
}

TEST(VqGemmFunctional, RowBlocksRedequantize)
{
    // Lookup count scales with the number of 64-row output blocks: the
    // GeMM re-dequantization cost (Sec. VII-B).
    auto qt = smallWeight(16, 32, 7);
    auto plan_small = engine::planWeightKernel(
        OpKind::GeMM, {64, qt.rows, qt.cols}, qt.config, OptLevel::O2,
        inputs());
    auto plan_large = engine::planWeightKernel(
        OpKind::GeMM, {128, qt.rows, qt.cols}, qt.config, OptLevel::O2,
        inputs());
    Rng rng(9);
    Tensor<float> x64({64, qt.cols}), x128({128, qt.cols});
    fillNormal(x64, rng);
    fillNormal(x128, rng);
    auto r64 = runVqGemm(plan_small, qt, x64);
    auto r128 = runVqGemm(plan_large, qt, x128);
    EXPECT_EQ(r128.counters.dequant_lookups,
              2 * r64.counters.dequant_lookups);
}

TEST(VqGemmFunctional, GemvIsGemmWithOneRow)
{
    auto qt = smallWeight(32, 32, 11);
    Rng rng(13);
    Tensor<float> x1({1, qt.cols});
    Tensor<float> xv({qt.cols});
    fillNormal(xv, rng);
    for (std::size_t i = 0; i < qt.cols; ++i)
        x1.at(std::size_t(0), i) = xv[i];

    auto gemm_plan = engine::planWeightKernel(
        OpKind::GeMM, {1, qt.rows, qt.cols}, qt.config, OptLevel::O4,
        inputs());
    auto gemv_plan = engine::planWeightKernel(
        OpKind::GeMV, {1, qt.rows, qt.cols}, qt.config, OptLevel::O4,
        inputs());
    auto gemm = runVqGemm(gemm_plan, qt, x1);
    auto gemv = runVqGemv(gemv_plan, qt, xv);
    for (std::size_t r = 0; r < qt.rows; ++r)
        EXPECT_NEAR(gemm.output.at(std::size_t(0), r), gemv.output[r],
                    1e-4);
}

TEST(VqGemmFunctionalDeath, ValidatesInputs)
{
    auto qt = smallWeight(16, 32, 15);
    Tensor<float> bad({4, 8}); // wrong k
    auto plan = engine::planWeightKernel(
        OpKind::GeMM, {4, qt.rows, qt.cols}, qt.config, OptLevel::O4,
        inputs());
    EXPECT_DEATH(runVqGemm(plan, qt, bad), "k == qt.cols");
    auto gemv_plan = engine::planWeightKernel(
        OpKind::GeMV, {1, qt.rows, qt.cols}, qt.config, OptLevel::O4,
        inputs());
    Tensor<float> x2d({2, qt.cols});
    EXPECT_DEATH(runVqGemm(gemv_plan, qt, x2d), "GeMM plan");
}

} // namespace
} // namespace vqllm::kernels
