/**
 * @file
 * Tests for the VQ kernels: functional correctness against references,
 * exact counter behaviour across optimization levels, and the analytic
 * model's reproduction of the paper's qualitative results (Figs. 4, 13,
 * 14, 15, 16).
 */
#include <gtest/gtest.h>

#include <map>

#include "engine/template_engine.h"
#include "kernels/ewq_kernels.h"
#include "kernels/fp16_kernels.h"
#include "kernels/reference.h"
#include "kernels/vq_kernels.h"
#include "tensor/datagen.h"

namespace vqllm::kernels {
namespace {

using engine::AttnShape;
using engine::GemmShape;
using engine::KernelPlan;
using engine::OpKind;
using engine::OptLevel;
using engine::PlanInputs;
using gpusim::rtx4090;

PlanInputs
inputs()
{
    PlanInputs in;
    in.spec = &rtx4090();
    return in;
}

/** Small quantized weight for functional runs. */
vq::QuantizedTensor
smallWeight(const vq::VQConfig &base, std::size_t n = 32,
            std::size_t k = 32)
{
    vq::VQConfig cfg = base;
    cfg.num_entries = std::min<std::size_t>(cfg.num_entries, 32);
    if (cfg.lattice) {
        cfg.lattice_base_entries = 16;
        cfg.num_entries = 16u << cfg.vector_size;
    }
    Rng rng(11);
    auto w = generateLlmWeight(n, k, rng);
    vq::KMeansOptions opts;
    opts.max_iters = 6;
    auto qt = vq::VectorQuantizer(cfg, opts).quantize(w);
    vq::reorderByFrequency(qt);
    return qt;
}

TEST(VqGemvFunctional, MatchesReferenceOnDequantizedWeights)
{
    for (const auto &base : {vq::gptvq2(), vq::aqlm3(), vq::cq4()}) {
        auto qt = smallWeight(base);
        Rng rng(13);
        Tensor<float> x({qt.cols});
        fillNormal(x, rng);
        auto plan = engine::planWeightKernel(
            OpKind::GeMV, {1, qt.rows, qt.cols}, qt.config, OptLevel::O4,
            inputs());
        auto result = runVqGemv(plan, qt, x);
        auto dense = vq::VectorQuantizer::dequantize(qt);
        auto expect = referenceGemv(dense, x);
        for (std::size_t i = 0; i < qt.rows; ++i)
            EXPECT_NEAR(result.output[i], expect[i], 1e-3) << base.name;
    }
}

TEST(VqGemvFunctional, TierStatsFollowOptLevel)
{
    auto qt = smallWeight(vq::gptvq2(), 64, 32);
    Rng rng(17);
    Tensor<float> x({qt.cols});
    fillNormal(x, rng);
    GemmShape shape{1, qt.rows, qt.cols};

    auto run_at = [&](OptLevel level) {
        auto plan = engine::planWeightKernel(OpKind::GeMV, shape,
                                             qt.config, level, inputs());
        return runVqGemv(plan, qt, x);
    };

    auto gc = run_at(OptLevel::GC);
    EXPECT_EQ(gc.stats.reg_hits, 0u);
    EXPECT_EQ(gc.stats.shared_hits, 0u);
    EXPECT_GT(gc.stats.global_hits, 0u);

    auto o1 = run_at(OptLevel::O1);
    EXPECT_EQ(o1.stats.reg_hits, 0u);
    EXPECT_GT(o1.stats.shared_hits, 0u);

    auto o2 = run_at(OptLevel::O2);
    EXPECT_GT(o2.stats.reg_hits, 0u);
    // The hottest entries are ranked first after reordering, so the
    // register tier must absorb more hits than its entry share.
    double reg_share = static_cast<double>(o2.stats.reg_hits) /
                       o2.stats.total();
    auto plan2 = engine::planWeightKernel(OpKind::GeMV, shape, qt.config,
                                          OptLevel::O2, inputs());
    double entry_share =
        static_cast<double>(plan2.cache_plan.n_reg) /
        qt.config.storedEntries();
    EXPECT_GT(reg_share, entry_share);
}

TEST(VqGemvFunctional, SharedFusionRoundTripsRegisterFusionShuffles)
{
    auto qt = smallWeight(vq::gptvq2(), 64, 64);
    Rng rng(19);
    Tensor<float> x({qt.cols});
    fillNormal(x, rng);
    GemmShape shape{1, qt.rows, qt.cols};

    auto o3 = engine::planWeightKernel(OpKind::GeMV, shape, qt.config,
                                       OptLevel::O3, inputs());
    auto o4 = engine::planWeightKernel(OpKind::GeMV, shape, qt.config,
                                       OptLevel::O4, inputs());
    ASSERT_EQ(o3.fusion.level, engine::FusionLevel::Shared);
    ASSERT_EQ(o4.fusion.level, engine::FusionLevel::Register);

    auto r3 = runVqGemv(o3, qt, x);
    auto r4 = runVqGemv(o4, qt, x);
    EXPECT_GT(r3.counters.reg_to_shared_bytes, 0u);
    EXPECT_EQ(r3.counters.shuffle_ops, 0u);
    EXPECT_EQ(r4.counters.reg_to_shared_bytes, 0u);
    EXPECT_GT(r4.counters.shuffle_ops, 0u);
    // Identical numerics either way.
    EXPECT_EQ(maxAbsDiff(r3.output, r4.output), 0.0);
}

TEST(VqGemvFunctional, BankConflictsCountedExactly)
{
    auto qt = smallWeight(vq::gptvq2(), 64, 64);
    Rng rng(23);
    Tensor<float> x({qt.cols});
    fillNormal(x, rng);
    auto plan = engine::planWeightKernel(
        OpKind::GeMV, {1, qt.rows, qt.cols}, qt.config, OptLevel::O1,
        inputs());
    auto r = runVqGemv(plan, qt, x);
    // Conflicted transactions at least the ideal count, at most 32x.
    EXPECT_GE(r.counters.smem_transactions,
              r.counters.smem_ideal_transactions);
    EXPECT_LE(r.counters.smem_transactions,
              32 * r.counters.smem_ideal_transactions);
    EXPECT_GT(r.counters.conflictMultiplier(), 1.0);
}

vq::QuantizedTensor
smallKv(const vq::VQConfig &base, std::size_t tokens, std::size_t heads,
        std::size_t channels, std::uint64_t seed)
{
    vq::VQConfig cfg = base;
    cfg.num_entries = 32;
    Rng rng(seed);
    // generateKvCache returns [heads, tokens, channels]; transpose to
    // [tokens, heads*channels] so rows are tokens (the quantizer's
    // per-channel-group scope then matches CQ's per-head-group books).
    auto orig = generateKvCache(heads, tokens, channels, rng);
    Tensor<float> flat({tokens, heads * channels});
    for (std::size_t h = 0; h < heads; ++h)
        for (std::size_t t = 0; t < tokens; ++t)
            for (std::size_t c = 0; c < channels; ++c)
                flat.at(t, h * channels + c) = orig.at(h, t, c);
    vq::KMeansOptions opts;
    opts.max_iters = 6;
    auto qt = vq::VectorQuantizer(cfg, opts).quantize(flat);
    vq::reorderByFrequency(qt);
    return qt;
}

TEST(VqAttentionFunctional, MatchesReferenceOnDequantizedKv)
{
    const std::size_t H = 2, T = 24, C = 8;
    auto qt_k = smallKv(vq::cq2(), T, H, C, 31);
    auto qt_v = smallKv(vq::cq2(), T, H, C, 37);
    Rng rng(41);
    Tensor<float> q({H, C});
    fillNormal(q, rng);

    AttnShape shape{1, H, T, C};
    auto plan = engine::planAttentionKernel(shape, qt_k.config,
                                            OptLevel::O4, inputs());
    auto result = runVqAttention(plan, qt_k, qt_v, q);

    // Reference over the dequantized caches.
    auto dense_k = vq::VectorQuantizer::dequantize(qt_k);
    auto dense_v = vq::VectorQuantizer::dequantize(qt_v);
    Tensor<float> k3({H, T, C}), v3({H, T, C});
    for (std::size_t h = 0; h < H; ++h)
        for (std::size_t t = 0; t < T; ++t)
            for (std::size_t c = 0; c < C; ++c) {
                k3.at(h, t, c) = dense_k.at(t, h * C + c);
                v3.at(h, t, c) = dense_v.at(t, h * C + c);
            }
    auto expect = referenceAttention(q, k3, v3);
    for (std::size_t h = 0; h < H; ++h)
        for (std::size_t c = 0; c < C; ++c)
            EXPECT_NEAR(result.output.at(h, c), expect.at(h, c), 1e-3);
}

TEST(VqAttentionFunctional, CountsLookupsForBothCaches)
{
    const std::size_t H = 2, T = 16, C = 8;
    auto qt_k = smallKv(vq::cq4(), T, H, C, 43);
    auto qt_v = smallKv(vq::cq4(), T, H, C, 47);
    Rng rng(53);
    Tensor<float> q({H, C});
    fillNormal(q, rng);
    AttnShape shape{1, H, T, C};
    auto plan = engine::planAttentionKernel(shape, qt_k.config,
                                            OptLevel::O2, inputs());
    auto r = runVqAttention(plan, qt_k, qt_v, q);
    // One lookup per subvector per residual for K and V each.
    std::uint64_t expected =
        2ull * T * (H * C / qt_k.config.vector_size) *
        qt_k.config.residuals;
    EXPECT_EQ(r.counters.dequant_lookups, expected);
    EXPECT_EQ(r.stats.total(), expected);
}

// ---------------------------------------------------------------------
// Analytic model: the paper's qualitative results.
// ---------------------------------------------------------------------

/**
 * Synthetic offline-profiling histogram: Zipf-distributed access counts
 * over one codebook, standing in for the bench harness's real profiled
 * histograms.
 */
const vq::AccessHistogram &
zipfHistogram(const vq::VQConfig &cfg)
{
    static std::map<std::string, vq::AccessHistogram> memo;
    auto it = memo.find(cfg.name);
    if (it != memo.end())
        return it->second;
    vq::AccessHistogram hist;
    auto weights = powerLawWeights(cfg.storedEntries(), 1.0);
    hist.counts.resize(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i)
        hist.counts[i] =
            static_cast<std::uint64_t>(weights[i] * 100000.0) + 1;
    return memo.emplace(cfg.name, std::move(hist)).first->second;
}

KernelResult
attnLevel(const AttnShape &shape, const vq::VQConfig &cfg, OptLevel level)
{
    const auto &hist = zipfHistogram(cfg);
    PlanInputs in = inputs();
    in.histogram = &hist;
    auto plan = engine::planAttentionKernel(shape, cfg, level, in);
    return estimateVqAttentionKernel(rtx4090(), plan, &hist);
}

KernelResult
weightLevel(OpKind kind, const GemmShape &shape, const vq::VQConfig &cfg,
            OptLevel level)
{
    const auto &hist = zipfHistogram(cfg);
    PlanInputs in = inputs();
    in.histogram = &hist;
    auto plan = engine::planWeightKernel(kind, shape, cfg, level, in);
    return estimateVqWeightKernel(rtx4090(), plan, &hist);
}

TEST(VqModelFig4, GcAndScSlowerThanFp16ScBetterThanGc)
{
    AttnShape shape{1, 32, 1024, 128};
    auto fp16 = fp16AttentionEstimate(rtx4090(), shape);
    auto gc = attnLevel(shape, vq::cq2(), OptLevel::GC);
    auto sc = attnLevel(shape, vq::cq2(), OptLevel::SC);
    EXPECT_GT(gc.us(), fp16.us() * 1.5); // paper: 2.52x
    EXPECT_GT(sc.us(), fp16.us() * 1.2); // paper: ~1.6x
    EXPECT_LT(sc.us(), gc.us());
    // The counterintuitive counter: VQ moves MORE bytes global->shared
    // than FP16 despite 8x compression (duplicated codebook loads).
    EXPECT_GT(sc.counters.global_to_shared_bytes,
              fp16.counters.global_to_shared_bytes);
}

TEST(VqModelFig15, OptimizationLadderForAttention)
{
    AttnShape shape{1, 32, 1024, 128};
    auto gc = attnLevel(shape, vq::cq2(), OptLevel::GC);
    auto sc = attnLevel(shape, vq::cq2(), OptLevel::SC);
    auto o1 = attnLevel(shape, vq::cq2(), OptLevel::O1);
    auto o3 = attnLevel(shape, vq::cq2(), OptLevel::O3);
    auto o4 = attnLevel(shape, vq::cq2(), OptLevel::O4);
    auto fp16 = fp16AttentionEstimate(rtx4090(), shape);

    EXPECT_LT(sc.us(), gc.us());
    EXPECT_LT(o1.us(), sc.us()); // O1 restores occupancy
    EXPECT_LT(o3.us(), o1.us()); // dataflow removes duplicated books
    EXPECT_LE(o4.us(), o3.us() * 1.05); // O4 minor for attention
    // The optimized kernel finally beats FP16 (the paper's thesis).
    EXPECT_LT(o4.us(), fp16.us());
    // And the latency reduction vs GC lands in the paper's range.
    double reduction = 1.0 - o4.us() / gc.us();
    EXPECT_GT(reduction, 0.6);
    EXPECT_LT(reduction, 0.95);
}

TEST(VqModelFig15, O3CutsCodebookTraffic)
{
    AttnShape shape{8, 32, 4096, 128};
    auto o2 = attnLevel(shape, vq::cq2(), OptLevel::O2);
    auto o3 = attnLevel(shape, vq::cq2(), OptLevel::O3);
    EXPECT_LT(o3.counters.global_to_shared_bytes,
              o2.counters.global_to_shared_bytes / 2);
    EXPECT_GT(o3.counters.reduce_bytes, 0u);
}

TEST(VqModelFig14, GemvLadderAndScCollapseForAqlm)
{
    GemmShape shape{1, 4096, 4096};
    // AQLM: SC's 128 KiB working set tanks occupancy; O1 recovers.
    auto gc = weightLevel(OpKind::GeMV, shape, vq::aqlm3(), OptLevel::GC);
    auto sc = weightLevel(OpKind::GeMV, shape, vq::aqlm3(), OptLevel::SC);
    auto o1 = weightLevel(OpKind::GeMV, shape, vq::aqlm3(), OptLevel::O1);
    auto o3 = weightLevel(OpKind::GeMV, shape, vq::aqlm3(), OptLevel::O3);
    EXPECT_GT(sc.us(), gc.us() * 0.7); // barely better / near GC
    EXPECT_LT(o1.us(), sc.us() * 0.7);
    // The residual split removes duplicated codebook loads...
    EXPECT_LT(o3.counters.global_to_shared_bytes,
              o1.counters.global_to_shared_bytes);
    // ...at a bounded mainloop-duplication cost.
    EXPECT_LT(o3.us(), o1.us() * 1.1);
    // QuiP#: small codebook, SC is already fine and O1 matches it.
    auto q_sc = weightLevel(OpKind::GeMV, shape, vq::quip4(),
                            OptLevel::SC);
    auto q_gc = weightLevel(OpKind::GeMV, shape, vq::quip4(),
                            OptLevel::GC);
    EXPECT_LT(q_sc.us(), q_gc.us() * 0.3);
}

TEST(VqModelFig14, GemmO3HurtsO4Helps)
{
    GemmShape shape{4096, 4096, 4096};
    // O3 on a residual config duplicates mainloop work (Sec. VII-C).
    auto o2 = weightLevel(OpKind::GeMM, shape, vq::aqlm3(), OptLevel::O2);
    auto o3 = weightLevel(OpKind::GeMM, shape, vq::aqlm3(), OptLevel::O3);
    EXPECT_GT(o3.us(), o2.us() * 1.3);
    // O4's register fusion frees staging memory and restores occupancy.
    auto q_o3 = weightLevel(OpKind::GeMM, shape, vq::quip4(),
                            OptLevel::O3);
    auto q_o4 = weightLevel(OpKind::GeMM, shape, vq::quip4(),
                            OptLevel::O4);
    EXPECT_LT(q_o4.us(), q_o3.us() * 0.7);
}

TEST(VqModelFig16, OptimizedVqCompetitiveWithEwqAt4Bit)
{
    // GeMV BS16 at equivalent 4-bit: the best adaptive VQ version is
    // within ~20% of AWQ either way (paper: 0.88x, VQ slightly faster).
    GemmShape shape{16, 4096, 4096};
    double vq_best = 1e30;
    for (auto level : {OptLevel::O1, OptLevel::O2, OptLevel::O3,
                       OptLevel::O4})
        vq_best = std::min(
            vq_best,
            weightLevel(OpKind::GeMV, shape, vq::quip4(), level).us());
    auto awq = ewqGemvEstimate(rtx4090(), shape, 4);
    EXPECT_LT(vq_best, awq.us() * 1.3);
    EXPECT_GT(vq_best, awq.us() * 0.5);

    // Attention BS1 1k at 4-bit: CQ-4 close to QoQ (paper: 1.01x; our
    // model keeps the residual codebook/reduce overhead visible).
    AttnShape attn{1, 32, 1024, 128};
    double cq4_best = 1e30;
    for (auto level : {OptLevel::O1, OptLevel::O2, OptLevel::O3,
                       OptLevel::O4})
        cq4_best = std::min(cq4_best,
                            attnLevel(attn, vq::cq4(), level).us());
    auto qoq = ewqAttentionEstimate(rtx4090(), attn, 4);
    EXPECT_LT(cq4_best, qoq.us() * 1.6);
    EXPECT_GT(cq4_best, qoq.us() * 0.6);
}

TEST(VqModelFig13, SixtyFivePercentClassSpeedupsOverGc)
{
    // Fig. 13: best-vs-GC latency reductions average ~46% and reach
    // ~99% vs open-source (GC-class) implementations in Fig. 16.
    AttnShape attn{1, 32, 1024, 128};
    double best = 1e30, gc = attnLevel(attn, vq::cq2(),
                                       OptLevel::GC).us();
    for (auto level : {OptLevel::O1, OptLevel::O2, OptLevel::O3,
                       OptLevel::O4})
        best = std::min(best, attnLevel(attn, vq::cq2(), level).us());
    EXPECT_GT(1.0 - best / gc, 0.5);
}

TEST(VqModel, BiggerModelSimilarRelativeGains)
{
    // Llama-65B achieves speedups similar to 7B (Sec. VII-B).
    AttnShape a7{1, 32, 4096, 128};
    AttnShape a65{1, 64, 4096, 128};
    double red7 = 1.0 - attnLevel(a7, vq::cq2(), OptLevel::O4).us() /
                            attnLevel(a7, vq::cq2(), OptLevel::GC).us();
    double red65 = 1.0 - attnLevel(a65, vq::cq2(), OptLevel::O4).us() /
                             attnLevel(a65, vq::cq2(),
                                       OptLevel::GC).us();
    EXPECT_NEAR(red7, red65, 0.12);
}

TEST(VqModel, TierFractionsFollowHistogramSkew)
{
    cache::CachePlan plan;
    plan.n_reg = 2;
    plan.n_shared = 8;
    plan.total_entries = 16;
    plan.entry_bytes = 8;
    vq::AccessHistogram hist;
    hist.counts = {100, 80, 5, 5, 5, 5, 5, 5, 1, 1, 1, 1, 1, 1, 1, 1};
    auto f = tierHitFractions(plan, &hist);
    EXPECT_NEAR(f.reg, 180.0 / 218.0, 1e-9);
    EXPECT_NEAR(f.shared, 30.0 / 218.0, 1e-9);
    EXPECT_NEAR(f.global, 8.0 / 218.0, 1e-9);
    // Uniform fallback without a histogram.
    auto u = tierHitFractions(plan, nullptr);
    EXPECT_NEAR(u.reg, 2.0 / 16, 1e-9);
    EXPECT_NEAR(u.shared, 6.0 / 16, 1e-9);
}

} // namespace
} // namespace vqllm::kernels
