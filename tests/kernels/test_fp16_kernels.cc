/**
 * @file
 * Tests for FP16 baseline kernel models, including the Fig. 18
 * attention-variant orderings.
 */
#include <gtest/gtest.h>

#include "kernels/fp16_kernels.h"

namespace vqllm::kernels {
namespace {

using engine::AttnShape;
using engine::GemmShape;
using gpusim::rtx4090;

TEST(Fp16Gemm, ComputeBoundAtLargeShapes)
{
    auto r = fp16GemmEstimate(rtx4090(), {4096, 4096, 4096});
    EXPECT_GT(r.latency.compute_us, r.latency.dram_us);
    // 137 GFLOP on a ~90 TFLOP/s effective pipe: order 1.5 ms.
    EXPECT_GT(r.us(), 800.0);
    EXPECT_LT(r.us(), 4000.0);
}

TEST(Fp16Gemv, MemoryBoundNearPeakBandwidth)
{
    auto r = fp16GemvEstimate(rtx4090(), {1, 4096, 4096});
    EXPECT_GT(r.latency.dram_us, r.latency.compute_us);
    // 32 MiB of weights at ~826 GB/s effective: ~40 us.
    EXPECT_GT(r.us(), 30.0);
    EXPECT_LT(r.us(), 70.0);
}

TEST(Fp16Attention, ScalesWithSequenceAndBatch)
{
    AttnShape s1{1, 32, 1024, 128};
    AttnShape s4{1, 32, 4096, 128};
    AttnShape s4b8{8, 32, 4096, 128};
    auto r1 = fp16AttentionEstimate(rtx4090(), s1);
    auto r4 = fp16AttentionEstimate(rtx4090(), s4);
    auto r48 = fp16AttentionEstimate(rtx4090(), s4b8);
    EXPECT_GT(r4.us(), 2.5 * r1.us());
    EXPECT_GT(r48.us(), 5.0 * r4.us());
}

TEST(Fig18, FlashDecodingBeatsFlashAttentionAtBs1)
{
    // Decode with BS1: FlashAttention's one-block-per-head grid leaves
    // most SMs idle; FlashDecoding splits tokens (paper Fig. 18).
    AttnShape shape{1, 32, 4096, 128};
    auto fd = fp16AttentionEstimate(rtx4090(), shape,
                                    AttnVariant::FlashDecoding);
    auto fa = fp16AttentionEstimate(rtx4090(), shape,
                                    AttnVariant::FlashAttention);
    EXPECT_LT(fd.us(), fa.us());
}

TEST(Fig18, BatchNarrowsTheFlashAttentionGap)
{
    AttnShape bs1{1, 32, 2048, 128};
    AttnShape bs8{8, 32, 2048, 128};
    auto gap_bs1 =
        fp16AttentionEstimate(rtx4090(), bs1,
                              AttnVariant::FlashAttention)
            .us() /
        fp16AttentionEstimate(rtx4090(), bs1,
                              AttnVariant::FlashDecoding)
            .us();
    auto gap_bs8 =
        fp16AttentionEstimate(rtx4090(), bs8,
                              AttnVariant::FlashAttention)
            .us() /
        fp16AttentionEstimate(rtx4090(), bs8,
                              AttnVariant::FlashDecoding)
            .us();
    EXPECT_LT(gap_bs8, gap_bs1);
    EXPECT_GE(gap_bs8, 0.95); // never meaningfully faster
}

TEST(Fig18, PagedVariantsCostMore)
{
    AttnShape shape{8, 32, 4096, 128};
    auto fd = fp16AttentionEstimate(rtx4090(), shape,
                                    AttnVariant::FlashDecoding);
    auto pfd = fp16AttentionEstimate(rtx4090(), shape,
                                     AttnVariant::PagedFlashDecoding);
    auto fa = fp16AttentionEstimate(rtx4090(), shape,
                                    AttnVariant::FlashAttention);
    auto pfa = fp16AttentionEstimate(rtx4090(), shape,
                                     AttnVariant::PagedFlashAttention);
    EXPECT_GT(pfd.us(), fd.us());
    EXPECT_GT(pfa.us(), fa.us());
    // Paging overhead is bounded (<25%).
    EXPECT_LT(pfd.us(), fd.us() * 1.25);
}

TEST(Fp16Kernels, VariantNames)
{
    EXPECT_STREQ(attnVariantName(AttnVariant::FlashDecoding),
                 "Flash Decoding");
    EXPECT_STREQ(attnVariantName(AttnVariant::PagedFlashAttention),
                 "Paged Flash Attention");
}

} // namespace
} // namespace vqllm::kernels
