/**
 * @file
 * Tests for grouped-query attention (GQA) support: KV compression from
 * head sharing composes with VQ compression.
 */
#include <gtest/gtest.h>

#include "engine/template_engine.h"
#include "kernels/fp16_kernels.h"
#include "kernels/vq_kernels.h"
#include "llm/e2e.h"

namespace vqllm::llm {
namespace {

using engine::AttnShape;
using gpusim::rtx4090;

TEST(Gqa, ShapeDefaultsToMha)
{
    AttnShape mha{1, 32, 1024, 128};
    EXPECT_EQ(mha.kvHeads(), 32u);
    AttnShape gqa{1, 32, 1024, 128, 8};
    EXPECT_EQ(gqa.kvHeads(), 8u);
    // KV shrinks 4x; compute (query-head driven) does not.
    EXPECT_EQ(gqa.kvElements(), mha.kvElements() / 4);
    EXPECT_EQ(gqa.flops(), mha.flops());
}

TEST(Gqa, Fp16AttentionGetsFaster)
{
    AttnShape mha{8, 64, 4096, 128};
    AttnShape gqa{8, 64, 4096, 128, 8};
    auto r_mha = kernels::fp16AttentionEstimate(rtx4090(), mha);
    auto r_gqa = kernels::fp16AttentionEstimate(rtx4090(), gqa);
    EXPECT_LT(r_gqa.us(), r_mha.us());
    EXPECT_EQ(r_gqa.counters.dram_read_bytes <
                  r_mha.counters.dram_read_bytes,
              true);
}

TEST(Gqa, ComposesWithVqCompression)
{
    // GQA (8x fewer KV heads) and CQ-2 (8x per-element compression)
    // stack: the quantized-GQA cache traffic is far below either alone.
    AttnShape mha{8, 64, 4096, 128};
    AttnShape gqa{8, 64, 4096, 128, 8};
    engine::PlanInputs in;
    in.spec = &rtx4090();
    auto hist = vq::syntheticZipfHistogram(256);
    in.histogram = &hist;
    auto plan_mha = engine::planAttentionKernel(mha, vq::cq2(),
                                                engine::OptLevel::O4,
                                                in);
    auto plan_gqa = engine::planAttentionKernel(gqa, vq::cq2(),
                                                engine::OptLevel::O4,
                                                in);
    auto r_mha = kernels::estimateVqAttentionKernel(rtx4090(), plan_mha,
                                                    &hist);
    auto r_gqa = kernels::estimateVqAttentionKernel(rtx4090(), plan_gqa,
                                                    &hist);
    EXPECT_LT(r_gqa.counters.dram_read_bytes,
              r_mha.counters.dram_read_bytes);
    EXPECT_LE(r_gqa.us(), r_mha.us());
    // Fewer KV heads also means fewer codebooks overall.
    EXPECT_LT(plan_gqa.total_books, plan_mha.total_books);
}

TEST(Gqa, Llama70bConfig)
{
    const auto &cfg = llama70b();
    EXPECT_EQ(cfg.kvHeads(), 8u);
    EXPECT_EQ(cfg.heads, 64u);
    // KV cache is 8x smaller than the MHA equivalent (Llama-65B).
    EXPECT_EQ(llama65b().kvCacheBytesFp16(16, 1024),
              8 * cfg.kvCacheBytesFp16(16, 1024));
    // attnShape carries the KV head count through.
    EXPECT_EQ(cfg.attnShape(16, 1024).kvHeads(), 8u);
}

TEST(Gqa, E2eStillOrdersSchemes)
{
    auto fp16 = estimateE2E(rtx4090(), llama70b(), QuantScheme::FP16);
    auto vq4 = estimateE2E(rtx4090(), llama70b(), QuantScheme::VQ4);
    EXPECT_LT(vq4.totalUs(), fp16.totalUs());
    EXPECT_LT(vq4.kv_bytes, fp16.kv_bytes);
}

} // namespace
} // namespace vqllm::llm
