/**
 * @file
 * Tests for the tensor-parallel extension (the paper's Sec. VII-A
 * future-work item implemented here).
 */
#include <gtest/gtest.h>

#include "llm/tensor_parallel.h"

namespace vqllm::llm {
namespace {

using gpusim::rtx4090;

TpConfig
nvlink(int degree)
{
    TpConfig tp;
    tp.degree = degree;
    return tp;
}

TEST(TensorParallel, Degree1MatchesSingleGpuDecode)
{
    auto tp1 = estimateTensorParallel(rtx4090(), llama7b(),
                                      QuantScheme::FP16, nvlink(1));
    auto single = estimateE2E(rtx4090(), llama7b(), QuantScheme::FP16);
    EXPECT_NEAR(tp1.decode_us / single.decode_us, 1.0, 0.02);
    EXPECT_DOUBLE_EQ(tp1.comm_us_per_step, 0.0);
    EXPECT_DOUBLE_EQ(tp1.comm_fraction, 0.0);
}

TEST(TensorParallel, ShardingSpeedsUpLargeModels)
{
    auto tp1 = estimateTensorParallel(rtx4090(), llama65b(),
                                      QuantScheme::FP16, nvlink(1));
    auto tp4 = estimateTensorParallel(rtx4090(), llama65b(),
                                      QuantScheme::FP16, nvlink(4));
    EXPECT_LT(tp4.decode_us, tp1.decode_us);
    // Sub-linear: communication and replicated ops cost something.
    EXPECT_GT(tp4.decode_us, tp1.decode_us / 4.0);
}

TEST(TensorParallel, CommunicationFractionGrowsWithDegree)
{
    double prev = 0;
    for (int degree : {2, 4, 8}) {
        auto r = estimateTensorParallel(rtx4090(), llama65b(),
                                        QuantScheme::VQ4,
                                        nvlink(degree));
        EXPECT_GT(r.comm_fraction, prev) << "degree " << degree;
        prev = r.comm_fraction;
    }
    EXPECT_LT(prev, 0.8); // never communication-dominated at NVLink BW
}

TEST(TensorParallel, QuantizationShrinksPerGpuMemory)
{
    auto fp16 = estimateTensorParallel(rtx4090(), llama65b(),
                                       QuantScheme::FP16, nvlink(4));
    auto vq4 = estimateTensorParallel(rtx4090(), llama65b(),
                                      QuantScheme::VQ4, nvlink(4));
    EXPECT_LT(vq4.memory_per_gpu, fp16.memory_per_gpu / 3);
    // 65B FP16 needs >30 GiB/GPU at TP4; VQ-4 fits a 24 GiB card.
    EXPECT_GT(fp16.memory_per_gpu, 30ull << 30);
    EXPECT_LT(vq4.memory_per_gpu, 24ull << 30);
}

TEST(TensorParallel, VqStillWinsUnderTp)
{
    // The paper's thesis carries over to TP serving: VQ beats FP16 at
    // every degree.
    for (int degree : {2, 4}) {
        auto fp16 = estimateTensorParallel(rtx4090(), llama65b(),
                                           QuantScheme::FP16,
                                           nvlink(degree));
        auto vq4 = estimateTensorParallel(rtx4090(), llama65b(),
                                          QuantScheme::VQ4,
                                          nvlink(degree));
        EXPECT_LT(vq4.decode_us, fp16.decode_us) << "degree " << degree;
    }
}

TEST(TensorParallel, SlowLinksHurt)
{
    TpConfig pcie;
    pcie.degree = 4;
    pcie.link_bw_gbps = 25.0; // PCIe-class
    pcie.collective_latency_us = 15.0;
    auto fast = estimateTensorParallel(rtx4090(), llama65b(),
                                       QuantScheme::VQ4, nvlink(4));
    auto slow = estimateTensorParallel(rtx4090(), llama65b(),
                                       QuantScheme::VQ4, pcie);
    EXPECT_GT(slow.decode_us, fast.decode_us);
    EXPECT_GT(slow.comm_fraction, fast.comm_fraction);
}

TEST(TensorParallel, RingAllReduceFormula)
{
    TpConfig tp = nvlink(4);
    // 2*(4-1)/4 = 1.5 traversals of the payload at 300 GB/s + 8 us.
    std::uint64_t bytes = 300ull << 20;
    double expected = 1.5 * static_cast<double>(bytes) / 300e9 * 1e6 +
                      8.0;
    EXPECT_NEAR(ringAllReduceUs(tp, bytes), expected, 1e-6);
    EXPECT_GT(ringAllReduceUs(tp, bytes), 8.0);
    // Degree 1 is free.
    EXPECT_DOUBLE_EQ(ringAllReduceUs(nvlink(1), 1 << 20), 0.0);
}

TEST(TensorParallelDeath, RejectsUnevenHeadSharding)
{
    EXPECT_DEATH(estimateTensorParallel(rtx4090(), llama7b(),
                                        QuantScheme::FP16, nvlink(3)),
                 "divide");
}

} // namespace
} // namespace vqllm::llm
