/**
 * @file
 * Tests for the task-accuracy pipeline (Fig. 17 right / Fig. 2 upper):
 * training converges, and quantization accuracy orders as
 * FP16 >= VQ > element-wise at equal bit-width.
 */
#include <gtest/gtest.h>

#include "llm/accuracy.h"

namespace vqllm::llm {
namespace {

TEST(Accuracy, TaskIsLearnable)
{
    Rng rng(99);
    TaskSpec spec;
    spec.train_samples = 1200;
    spec.test_samples = 600;
    Dataset all = makeTask(spec, rng);
    Dataset train, test;
    train.features = Tensor<float>({spec.train_samples, spec.input_dim});
    test.features = Tensor<float>({spec.test_samples, spec.input_dim});
    train.labels.assign(all.labels.begin(),
                        all.labels.begin() + spec.train_samples);
    test.labels.assign(all.labels.begin() + spec.train_samples,
                       all.labels.end());
    for (std::size_t i = 0; i < spec.train_samples; ++i)
        for (std::size_t d = 0; d < spec.input_dim; ++d)
            train.features.at(i, d) = all.features.at(i, d);
    for (std::size_t i = 0; i < spec.test_samples; ++i)
        for (std::size_t d = 0; d < spec.input_dim; ++d)
            test.features.at(i, d) =
                all.features.at(spec.train_samples + i, d);

    MlpModel model = trainMlp(train, 48, 8, 0.02, rng);
    double acc = evaluate(model, test);
    // Far above the 25% random baseline.
    EXPECT_GT(acc, 0.6);
}

TEST(Accuracy, Fig17OrderingAt2BitEquivalent)
{
    // 2-bit equivalent: VQ<4,8,1> vs int2 RTN.  This is where VQ's
    // cross-dimension modeling dominates (paper Fig. 2 upper-left).
    vq::VQConfig vq_cfg = vq::cq2(); // vec 4, 256 entries -> 2 bits
    ewq::IntQuantConfig ewq_cfg;
    ewq_cfg.bits = 2;
    ewq_cfg.group_size = 24;
    auto report = compareQuantAccuracy(vq_cfg, ewq_cfg, 1234);

    EXPECT_GT(report.fp16, 0.6);
    // FP16 is the ceiling (small tolerance for quantization luck).
    EXPECT_GE(report.fp16 + 0.02, report.vq);
    // VQ beats element-wise at the same bit-width.
    EXPECT_GT(report.vq, report.ewq);
}

TEST(Accuracy, Fig17OrderingAt4BitEquivalent)
{
    // 4-bit equivalent: VQ<2,8,1> (CQ-4-like) vs int4 RTN; the paper
    // reports VQ-LLM ~2.5% above qServe on arc-challenge.
    vq::VQConfig vq_cfg = vq::cq4();
    ewq::IntQuantConfig ewq_cfg;
    ewq_cfg.bits = 4;
    ewq_cfg.group_size = 24;
    auto report = compareQuantAccuracy(vq_cfg, ewq_cfg, 1234);

    EXPECT_GT(report.fp16, 0.6);
    // Both 4-bit schemes stay near FP16; VQ is not meaningfully worse
    // than element-wise.
    EXPECT_GE(report.vq + 0.03, report.ewq);
    EXPECT_GE(report.vq + 0.05, report.fp16);
}

TEST(Accuracy, DeterministicForSeed)
{
    vq::VQConfig vq_cfg = vq::cq4();
    ewq::IntQuantConfig ewq_cfg;
    ewq_cfg.bits = 4;
    auto a = compareQuantAccuracy(vq_cfg, ewq_cfg, 77);
    auto b = compareQuantAccuracy(vq_cfg, ewq_cfg, 77);
    EXPECT_DOUBLE_EQ(a.fp16, b.fp16);
    EXPECT_DOUBLE_EQ(a.vq, b.vq);
    EXPECT_DOUBLE_EQ(a.ewq, b.ewq);
}

TEST(Accuracy, KvSchemeQualityTriangle)
{
    // KV storage schemes quantize cached activations, not weights:
    // FP16 round-trip is the quality ceiling, 2-bit VQ pays the most,
    // and every scheme stays within a few points of FP16 — the quality
    // side of the capacity/speed/quality trade the serving sweep
    // measures.
    auto r = compareKvAccuracy(1234);
    EXPECT_GT(r.fp16, 0.6);
    EXPECT_GE(r.fp16, r.int4);
    EXPECT_GE(r.fp16, r.vq4);
    EXPECT_GE(r.vq4, r.vq2);
    // CQ-4 KV holds quality near FP16 (the 3.85x capacity is not paid
    // for in task accuracy); CQ-2 degrades but stays usable.
    EXPECT_GE(r.vq4 + 0.02, r.fp16);
    EXPECT_GE(r.vq2 + 0.05, r.fp16);
}

TEST(Accuracy, KvSchemeReportDeterministicForSeed)
{
    auto a = compareKvAccuracy(99);
    auto b = compareKvAccuracy(99);
    EXPECT_DOUBLE_EQ(a.fp16, b.fp16);
    EXPECT_DOUBLE_EQ(a.int4, b.int4);
    EXPECT_DOUBLE_EQ(a.vq4, b.vq4);
    EXPECT_DOUBLE_EQ(a.vq2, b.vq2);
}

} // namespace
} // namespace vqllm::llm
