/**
 * @file
 * Tests for the end-to-end estimator: Fig. 17's speedups, memory
 * footprints, and the A40 bandwidth-sensitivity claim.
 */
#include <gtest/gtest.h>

#include "llm/e2e.h"

namespace vqllm::llm {
namespace {

using gpusim::rtx4090;
using gpusim::teslaA40;

TEST(E2E, Fig17SpeedupOrdering)
{
    // FP16 slowest; 4-bit VQ comparable to qServe; 2-bit VQ fastest.
    auto fp16 = estimateE2E(rtx4090(), llama7b(), QuantScheme::FP16);
    auto ewq4 = estimateE2E(rtx4090(), llama7b(), QuantScheme::EWQ4);
    auto vq4 = estimateE2E(rtx4090(), llama7b(), QuantScheme::VQ4);
    auto vq2 = estimateE2E(rtx4090(), llama7b(), QuantScheme::VQ2);

    double s_ewq4 = fp16.totalUs() / ewq4.totalUs();
    double s_vq4 = fp16.totalUs() / vq4.totalUs();
    double s_vq2 = fp16.totalUs() / vq2.totalUs();

    // Paper: ~2.2x for both 4-bit schemes, larger for 2-bit.
    EXPECT_GT(s_ewq4, 1.5);
    EXPECT_GT(s_vq4, 1.5);
    EXPECT_LT(s_vq4, 4.0);
    EXPECT_NEAR(s_vq4 / s_ewq4, 1.0, 0.35);
    EXPECT_GT(s_vq2, s_vq4);
}

TEST(E2E, DecodeDominatesGeneration)
{
    // 256 decode steps outweigh one prefill (paper Sec. VII-D: "the
    // decoding stage dominates LLM inference execution time").
    auto fp16 = estimateE2E(rtx4090(), llama7b(), QuantScheme::FP16);
    EXPECT_GT(fp16.decode_us, fp16.prefill_us);
}

TEST(E2E, MemoryFootprintsMatchPaper)
{
    // Paper: FP16 over 22 GB; qServe-4 and VQ-LLM-4 under 6 GB.
    auto fp16 = estimateE2E(rtx4090(), llama7b(), QuantScheme::FP16);
    auto ewq4 = estimateE2E(rtx4090(), llama7b(), QuantScheme::EWQ4);
    auto vq4 = estimateE2E(rtx4090(), llama7b(), QuantScheme::VQ4);
    EXPECT_GT(fp16.totalMemoryBytes(), 20ull << 30);
    EXPECT_LT(ewq4.totalMemoryBytes(), 7ull << 30);
    EXPECT_LT(vq4.totalMemoryBytes(), 7ull << 30);
    // 2-bit VQ goes lower still.
    auto vq2 = estimateE2E(rtx4090(), llama7b(), QuantScheme::VQ2);
    EXPECT_LT(vq2.totalMemoryBytes(), vq4.totalMemoryBytes());
}

TEST(E2E, ElementwiseShareGrowsWhenQuantized)
{
    // Paper: RMSNorm/SiLU/RoPE are ~10% of FP16 latency and ~20% of the
    // 4-bit version (fixed costs over a faster base).
    auto fp16 = estimateE2E(rtx4090(), llama7b(), QuantScheme::FP16);
    auto vq4 = estimateE2E(rtx4090(), llama7b(), QuantScheme::VQ4);
    EXPECT_GT(vq4.elementwise_fraction, fp16.elementwise_fraction);
    EXPECT_GT(fp16.elementwise_fraction, 0.02);
    EXPECT_LT(vq4.elementwise_fraction, 0.45);
}

TEST(E2E, A40BenefitsMoreFromCompression)
{
    // Paper: "the Tesla A40 demonstrates a greater speedup than the RTX
    // 4090 ... VQ-LLM is more effective in bandwidth-constrained
    // environments."
    auto s4090 =
        estimateE2E(rtx4090(), llama7b(), QuantScheme::FP16).totalUs() /
        estimateE2E(rtx4090(), llama7b(), QuantScheme::VQ4).totalUs();
    auto sA40 =
        estimateE2E(teslaA40(), llama7b(), QuantScheme::FP16).totalUs() /
        estimateE2E(teslaA40(), llama7b(), QuantScheme::VQ4).totalUs();
    EXPECT_GT(sA40, s4090 * 0.98);
}

TEST(E2E, BiggerModelCostsMore)
{
    auto small = estimateE2E(rtx4090(), llama7b(), QuantScheme::VQ4);
    auto big = estimateE2E(rtx4090(), llama65b(), QuantScheme::VQ4);
    EXPECT_GT(big.totalUs(), 3.0 * small.totalUs());
    EXPECT_GT(big.weight_bytes, 8ull * small.weight_bytes);
}

TEST(E2E, SchemeNames)
{
    EXPECT_STREQ(quantSchemeName(QuantScheme::FP16), "FP16");
    EXPECT_STREQ(quantSchemeName(QuantScheme::VQ2), "VQ-LLM (2 bit)");
}

} // namespace
} // namespace vqllm::llm
