/**
 * @file
 * Tests for RMSNorm / SiLU / RoPE and the element-wise latency model.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "llm/ops.h"

namespace vqllm::llm {
namespace {

TEST(Ops, RmsNormUnitScale)
{
    Tensor<float> x({1, 4});
    x.at(std::size_t(0), std::size_t(0)) = 2;
    x.at(std::size_t(0), std::size_t(1)) = -2;
    x.at(std::size_t(0), std::size_t(2)) = 2;
    x.at(std::size_t(0), std::size_t(3)) = -2;
    std::vector<float> gain(4, 1.0f);
    rmsNorm(x, gain);
    // RMS is 2, so all values normalize to +-1.
    for (std::size_t d = 0; d < 4; ++d)
        EXPECT_NEAR(std::abs(x.at(std::size_t(0), d)), 1.0f, 1e-4);
}

TEST(Ops, RmsNormAppliesGain)
{
    Rng rng(1);
    Tensor<float> x({3, 8});
    fillNormal(x, rng);
    Tensor<float> y = x;
    std::vector<float> unit(8, 1.0f), doubled(8, 2.0f);
    rmsNorm(x, unit);
    rmsNorm(y, doubled);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(y[i], 2.0f * x[i], 1e-4);
}

TEST(Ops, SiluKnownValues)
{
    Tensor<float> x({3});
    x[0] = 0.0f;
    x[1] = 10.0f;
    x[2] = -10.0f;
    silu(x);
    EXPECT_NEAR(x[0], 0.0f, 1e-6);
    EXPECT_NEAR(x[1], 10.0f, 1e-3);  // sigmoid(10) ~ 1
    EXPECT_NEAR(x[2], 0.0f, 1e-3);   // sigmoid(-10) ~ 0
}

TEST(Ops, RopePreservesNorm)
{
    // Rotations preserve the norm of each (even, odd) pair.
    Rng rng(3);
    Tensor<float> qk({2, 8});
    fillNormal(qk, rng);
    Tensor<float> orig = qk;
    applyRope(qk, 57);
    for (std::size_t h = 0; h < 2; ++h) {
        for (std::size_t d = 0; d < 4; ++d) {
            double before = std::hypot(orig.at(h, 2 * d),
                                       orig.at(h, 2 * d + 1));
            double after = std::hypot(qk.at(h, 2 * d),
                                      qk.at(h, 2 * d + 1));
            EXPECT_NEAR(after, before, 1e-4);
        }
    }
}

TEST(Ops, RopePositionZeroIsIdentity)
{
    Rng rng(5);
    Tensor<float> qk({1, 8});
    fillNormal(qk, rng);
    Tensor<float> orig = qk;
    applyRope(qk, 0);
    EXPECT_EQ(maxAbsDiff(qk, orig), 0.0);
}

TEST(Ops, RopeRelativePhaseProperty)
{
    // The inner product of RoPE'd q and k depends on relative position:
    // rotating both by the same offset leaves q.k unchanged.
    Rng rng(7);
    Tensor<float> q({1, 8}), k({1, 8});
    fillNormal(q, rng);
    fillNormal(k, rng);
    auto dot = [](const Tensor<float> &a, const Tensor<float> &b) {
        double acc = 0;
        for (std::size_t i = 0; i < a.size(); ++i)
            acc += static_cast<double>(a[i]) * b[i];
        return acc;
    };
    Tensor<float> q1 = q, k1 = k, q2 = q, k2 = k;
    applyRope(q1, 3);
    applyRope(k1, 10);
    applyRope(q2, 13);
    applyRope(k2, 20);
    EXPECT_NEAR(dot(q1, k1), dot(q2, k2), 1e-3);
}

TEST(Ops, ElementwiseLatencyScalesWithWidth)
{
    const auto &spec = gpusim::rtx4090();
    double small = elementwiseLayerLatencyUs(spec, 16, 4096);
    double large = elementwiseLayerLatencyUs(spec, 16, 8192);
    EXPECT_GT(large, small);
    // Dominated by launch overheads at this scale: order tens of us.
    EXPECT_GT(small, 5.0);
    EXPECT_LT(small, 100.0);
}

} // namespace
} // namespace vqllm::llm
