/**
 * @file
 * Tests for the codebook-centric dataflow planner: baseline duplicated
 * traffic accounting, the split-factor heuristic (balance point of
 * Traffic_reduce and Traffic_codebook), and clamping.
 */
#include <gtest/gtest.h>

#include "engine/dataflow.h"

namespace vqllm::engine {
namespace {

TEST(Dataflow, AttentionBaselineDuplicatesBooksAcrossTokenBlocks)
{
    // Llama-7B decode, CQ-2, seq 1024: 32 heads x 32 groups x 2 (K,V)
    // books of 2 KiB, each loaded by 1024/256 = 4 token blocks.
    AttnShape shape{1, 32, 1024, 128};
    auto plan = planAttentionDataflow(shape, vq::cq2());
    EXPECT_EQ(plan.baseline_codebook_bytes,
              32ull * 32 * 2 * 2048 * 4);
    EXPECT_EQ(plan.max_split, 32u); // channel groups
    EXPECT_EQ(plan.conflict_axes, (std::vector<Axis>{Axis::C}));
}

TEST(Dataflow, SplitReducesCodebookTrafficAddsReduce)
{
    AttnShape shape{8, 32, 4096, 128};
    auto plan = planAttentionDataflow(shape, vq::cq2());
    EXPECT_GT(plan.split, 1u);
    EXPECT_LE(plan.split, plan.max_split);
    EXPECT_EQ(plan.codebook_bytes,
              plan.baseline_codebook_bytes / plan.split);
    EXPECT_EQ(plan.reduce_bytes, plan.split * plan.output_bytes);
}

TEST(Dataflow, SplitFactorBalancesTraffics)
{
    // At the heuristic's continuous optimum F*, the two traffic terms
    // are equal (Mean Value Theorem argument, Sec. VI-A).
    AttnShape shape{1, 32, 2048, 128};
    auto plan = planAttentionDataflow(shape, vq::cq2());
    double f = plan.split_factor_raw;
    double reduce_at_f = f * static_cast<double>(plan.output_bytes);
    double codebook_at_f =
        static_cast<double>(plan.baseline_codebook_bytes) / f;
    EXPECT_NEAR(reduce_at_f / codebook_at_f, 1.0, 1e-9);
}

TEST(Dataflow, SplitIsOptimalAmongIntegers)
{
    // Property: no other integer split in range beats the chosen one on
    // total traffic (codebook + reduce).
    AttnShape shape{1, 32, 1024, 128};
    auto plan = planAttentionDataflow(shape, vq::cq2());
    auto total = [&](std::uint64_t f) {
        return static_cast<double>(plan.baseline_codebook_bytes) / f +
               static_cast<double>(f) * plan.output_bytes;
    };
    double chosen = total(plan.split);
    for (std::uint64_t f = 1; f <= plan.max_split; ++f)
        EXPECT_LE(chosen, total(f) * 1.3) << "f=" << f;
}

TEST(Dataflow, GemvPerTensorSplitsResiduals)
{
    // AQLM GeMV: switch axis R, at most `residuals` segments.
    GemmShape shape{1, 4096, 4096};
    auto plan = planWeightDataflow(shape, vq::aqlm3(), OpKind::GeMV);
    EXPECT_EQ(plan.conflict_axes, (std::vector<Axis>{Axis::R}));
    EXPECT_EQ(plan.max_split, 2u);
    // Tiny outputs + large codebooks -> split to the max.
    EXPECT_EQ(plan.split, 2u);
    EXPECT_EQ(plan.compute_duplication, 2.0);
    // Baseline: 2 books x 64 KiB x 32 column strips x 4 K-splits.
    EXPECT_EQ(plan.baseline_codebook_bytes, 2ull * 65536 * 32 * 4);
}

TEST(Dataflow, GemmLargeOutputDiscouragesSplit)
{
    // GeMM outputs are large (Tbl. V: 32 KiB/block); the heuristic keeps
    // the split small, matching the paper's finding that O3 can hurt
    // GeMM (Sec. VII-C).
    GemmShape gemm{4096, 4096, 4096};
    auto plan = planWeightDataflow(gemm, vq::aqlm3(), OpKind::GeMM);
    GemmShape gemv{1, 4096, 4096};
    auto vplan = planWeightDataflow(gemv, vq::aqlm3(), OpKind::GeMV);
    EXPECT_LE(plan.split_factor_raw, vplan.split_factor_raw);
}

TEST(Dataflow, GptvqTilesSwitchAlongMandN)
{
    GemmShape shape{16, 4096, 4096};
    auto plan = planWeightDataflow(shape, vq::gptvq2(), OpKind::GeMV);
    EXPECT_EQ(plan.conflict_axes, (std::vector<Axis>{Axis::M}));
    // 16 K-tiles available for splitting.
    EXPECT_EQ(plan.max_split, 16u);
    // Baseline: (16x16 tiles) x 2 KiB x 2 strips per tile.
    EXPECT_EQ(plan.baseline_codebook_bytes, 16ull * 16 * 2048 * 2);
}

TEST(Dataflow, QuipSharedBookAvoidsDuplication)
{
    // QuiP# trains one codebook for the whole tensor; its baseline
    // duplicated traffic is small (books are 4 KiB), so the heuristic
    // needs no aggressive split (Sec. III-C).
    GemmShape shape{1, 4096, 4096};
    auto q = planWeightDataflow(shape, vq::quip4(), OpKind::GeMV);
    auto a = planWeightDataflow(shape, vq::aqlm3(), OpKind::GeMV);
    EXPECT_LT(q.baseline_codebook_bytes, a.baseline_codebook_bytes);
}

TEST(Dataflow, NoConflictMeansNoSplit)
{
    // A per-tensor config with a single residual has no reduce/switch
    // conflict: nothing to split, no global reduce.
    vq::VQConfig cfg = vq::aqlm3();
    cfg.residuals = 1;
    GemmShape shape{1, 4096, 4096};
    auto plan = planWeightDataflow(shape, cfg, OpKind::GeMV);
    EXPECT_EQ(plan.split, 1u);
    EXPECT_EQ(plan.reduce_bytes, 0u);
    EXPECT_FALSE(plan.needsGlobalReduce());
}

TEST(Dataflow, LongerSequencesRaiseAttentionSplitBenefit)
{
    // More token blocks -> more duplicated baseline traffic -> the
    // heuristic splits at least as much.
    AttnShape s1{1, 32, 1024, 128};
    AttnShape s4{1, 32, 4096, 128};
    auto p1 = planAttentionDataflow(s1, vq::cq2());
    auto p4 = planAttentionDataflow(s4, vq::cq2());
    EXPECT_GE(p4.baseline_codebook_bytes, p1.baseline_codebook_bytes);
}

} // namespace
} // namespace vqllm::engine
