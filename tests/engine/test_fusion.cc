/**
 * @file
 * Tests for hierarchical fusion planning: shuffle counts match paper
 * Tbl. V, the threshold-5 adaptivity picks the right level, and the
 * K-cache layout-match shortcut applies.
 */
#include <gtest/gtest.h>

#include "engine/fusion.h"

namespace vqllm::engine {
namespace {

TEST(Fusion, ComputeLayouts)
{
    EXPECT_EQ(computeLayout(OpKind::GeMM), 2);  // mma fragments
    EXPECT_EQ(computeLayout(OpKind::GeMV), 1);  // elementwise reduce
    EXPECT_EQ(computeLayout(OpKind::AttentionDecode), 1);
}

TEST(Fusion, ShuffleCountsMatchTable5)
{
    // Tbl. V "#Shuffle": QuiP#/AQLM (vec 8): 3 for GeMM, 7 for GeMV;
    // GPTVQ (vec 4): 1 for GeMM, 3 for GeMV; CQ-2 (vec 4): 3 for attn.
    EXPECT_EQ(planFusion(vq::quip4(), OpKind::GeMM).num_shuffles, 3);
    EXPECT_EQ(planFusion(vq::quip4(), OpKind::GeMV).num_shuffles, 7);
    EXPECT_EQ(planFusion(vq::aqlm3(), OpKind::GeMM).num_shuffles, 3);
    EXPECT_EQ(planFusion(vq::aqlm3(), OpKind::GeMV).num_shuffles, 7);
    EXPECT_EQ(planFusion(vq::gptvq2(), OpKind::GeMM).num_shuffles, 1);
    EXPECT_EQ(planFusion(vq::gptvq2(), OpKind::GeMV).num_shuffles, 3);
    EXPECT_EQ(
        planFusion(vq::cq2(), OpKind::AttentionDecode).num_shuffles, 3);
    EXPECT_EQ(
        planFusion(vq::cq4(), OpKind::AttentionDecode).num_shuffles, 1);
}

TEST(Fusion, ThresholdSelectsLevel)
{
    // <= 5 shuffles -> register fusion; more -> shared fusion
    // (Sec. VI-B: smem access costs ~5x a register exchange).
    EXPECT_EQ(planFusion(vq::quip4(), OpKind::GeMM).level,
              FusionLevel::Register);
    EXPECT_EQ(planFusion(vq::quip4(), OpKind::GeMV).level,
              FusionLevel::Shared); // 7 > 5
    EXPECT_EQ(planFusion(vq::aqlm3(), OpKind::GeMV).level,
              FusionLevel::Shared);
    EXPECT_EQ(planFusion(vq::gptvq2(), OpKind::GeMV).level,
              FusionLevel::Register); // 3 <= 5
    EXPECT_EQ(planFusion(vq::cq2(), OpKind::AttentionDecode).level,
              FusionLevel::Register);
}

TEST(Fusion, ThresholdIsConfigurable)
{
    // Forcing a tiny threshold pushes everything to shared fusion.
    auto p = planFusion(vq::gptvq2(), OpKind::GeMV, 32, 0);
    EXPECT_EQ(p.level, FusionLevel::Shared);
    // A huge threshold admits even the 7-shuffle case.
    auto q = planFusion(vq::quip4(), OpKind::GeMV, 32, 100);
    EXPECT_EQ(q.level, FusionLevel::Register);
    EXPECT_TRUE(verifyMapping(q.mapping, 32, 8, 1));
}

TEST(Fusion, RegisterPlansCarryVerifiedMappings)
{
    for (const auto &cfg : vq::paperConfigs()) {
        for (OpKind kind : {OpKind::GeMM, OpKind::GeMV,
                            OpKind::AttentionDecode}) {
            auto plan = planFusion(cfg, kind);
            if (plan.level == FusionLevel::Register &&
                !plan.layout_matches) {
                EXPECT_TRUE(verifyMapping(plan.mapping, 32,
                                          cfg.vector_size,
                                          plan.compute_layout))
                    << cfg.name << " " << opKindName(kind);
            }
        }
    }
}

TEST(Fusion, LayoutMatchSkipsExchange)
{
    // The K cache dequantizes in its consumption order (Fig. 6): no
    // shuffles, register level, regardless of vector size.
    auto plan = planFusion(vq::cq2(), OpKind::AttentionDecode, 32, 5,
                           /*layout_matches=*/true);
    EXPECT_EQ(plan.level, FusionLevel::Register);
    EXPECT_EQ(plan.num_shuffles, 0);
    EXPECT_TRUE(plan.layout_matches);
}

} // namespace
} // namespace vqllm::engine
