/**
 * @file
 * Tests for the offline thread-mapping algorithm (paper Alg. 1): the
 * remapping confines exchanges to mini-warps and the xor schedule
 * delivers every fragment to its computing lane; the naive mapping
 * provably does not.
 */
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "engine/thread_map.h"

namespace vqllm::engine {
namespace {

TEST(ThreadMap, IdentityWhenLayoutsMatch)
{
    auto m = computeThreadMapping(32, 4, 4);
    EXPECT_EQ(m.mini_warp_size, 1);
    EXPECT_EQ(m.numShuffles(), 0);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(m.lane_map[i], i);
    EXPECT_TRUE(verifyMapping(m, 32, 4, 4));
}

TEST(ThreadMap, Fig12CaseVec8Layout2)
{
    // The paper's example: VQ<8,...> fused with mma (layout 2) needs
    // mini-warps of 4 and 3 shuffles.
    auto m = computeThreadMapping(32, 8, 2);
    EXPECT_EQ(m.mini_warp_size, 4);
    EXPECT_EQ(m.numShuffles(), 3);
    EXPECT_EQ(m.shuffle_offsets, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(verifyMapping(m, 32, 8, 2));
}

TEST(ThreadMap, LaneMapIsPermutation)
{
    for (auto [vec, layout] : std::vector<std::pair<int, int>>{
             {8, 2}, {8, 1}, {4, 1}, {4, 2}, {2, 1}}) {
        auto m = computeThreadMapping(32, vec, layout);
        std::set<int> lanes(m.lane_map.begin(), m.lane_map.end());
        EXPECT_EQ(lanes.size(), 32u) << vec << "/" << layout;
        EXPECT_EQ(*lanes.begin(), 0);
        EXPECT_EQ(*lanes.rbegin(), 31);
    }
}

TEST(ThreadMap, MiniWarpMembersShareConsumerSet)
{
    // Members of one mini-warp produce data consumed by the same lanes.
    auto m = computeThreadMapping(32, 8, 2); // ratio 4
    // Under the fragment model, dequant lanes d and d+8 produce for the
    // same consumer lanes; the remap must send them to the same aligned
    // 4-lane group.
    for (int d = 0; d < 8; ++d) {
        int group = m.lane_map[d] / 4;
        EXPECT_EQ(m.lane_map[d + 8] / 4, group);
        EXPECT_EQ(m.lane_map[d + 16] / 4, group);
        EXPECT_EQ(m.lane_map[d + 24] / 4, group);
    }
}

TEST(ThreadMap, NaiveSequentialMappingFailsVerification)
{
    // Alg. 1's motivation: the identity (sequential) mapping produces a
    // complex exchange graph the xor schedule cannot realize.
    ThreadMapping naive;
    naive.mini_warp_size = 4;
    naive.lane_map.resize(32);
    std::iota(naive.lane_map.begin(), naive.lane_map.end(), 0);
    naive.shuffle_offsets = {1, 2, 3};
    EXPECT_FALSE(verifyMapping(naive, 32, 8, 2));
}

TEST(ThreadMap, VerifyRejectsBrokenPermutations)
{
    auto m = computeThreadMapping(32, 8, 2);
    auto broken = m;
    broken.lane_map[0] = broken.lane_map[1]; // duplicate lane
    EXPECT_FALSE(verifyMapping(broken, 32, 8, 2));
    auto truncated = m;
    truncated.shuffle_offsets.pop_back(); // schedule too short
    EXPECT_FALSE(verifyMapping(truncated, 32, 8, 2));
}

class ThreadMapSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ThreadMapSweep, MappingVerifiesForAllLayoutPairs)
{
    // Property (paper Tbl. V #Shuffle rows): for every vector size and
    // compute layout in the design space, the computed mapping passes
    // functional verification with exactly ratio-1 shuffles.
    auto [vec, layout] = GetParam();
    if (vec % layout != 0)
        GTEST_SKIP() << "layout must divide vector size";
    auto m = computeThreadMapping(32, vec, layout);
    EXPECT_EQ(m.numShuffles(), vec / layout - 1);
    EXPECT_TRUE(verifyMapping(m, 32, vec, layout))
        << "vec=" << vec << " layout=" << layout;
}

INSTANTIATE_TEST_SUITE_P(
    LayoutPairs, ThreadMapSweep,
    ::testing::Combine(::testing::Values(2, 4, 8, 16, 32),
                       ::testing::Values(1, 2, 4, 8)));

TEST(ThreadMapDeath, RejectsIndivisibleLayouts)
{
    EXPECT_DEATH(computeThreadMapping(32, 8, 3), "divide");
}

} // namespace
} // namespace vqllm::engine
