/**
 * @file
 * Tests for the template engine (Alg. 2 offline phase): plans across the
 * optimization ladder are internally consistent and reproduce the
 * paper's qualitative structure (occupancy preserved by O1+, SC greedy,
 * grids scale with model size).
 */
#include <gtest/gtest.h>

#include "engine/template_engine.h"

namespace vqllm::engine {
namespace {

PlanInputs
inputs()
{
    PlanInputs in;
    in.spec = &gpusim::rtx4090();
    return in;
}

TEST(TemplateEngine, GcCachesNothingScGrabsEverything)
{
    AttnShape shape{1, 32, 1024, 128};
    auto gc = planAttentionKernel(shape, vq::cq2(), OptLevel::GC,
                                  inputs());
    EXPECT_EQ(gc.cache_plan.n_shared, 0u);
    EXPECT_EQ(gc.resident_books, 0u);

    auto sc = planAttentionKernel(shape, vq::cq2(), OptLevel::SC,
                                  inputs());
    // SC keeps a whole phase's worth of books resident: 32 x 2 KiB.
    EXPECT_EQ(sc.resident_books, 32u);
    EXPECT_EQ(sc.cache_plan.smemBytes(), 32u * 2048);
    EXPECT_GT(sc.block.smem_bytes, gc.block.smem_bytes);
}

TEST(TemplateEngine, ScDropsOccupancyO1Restores)
{
    // The central Sec. V claim: greedy shared usage reduces blocks/SM;
    // the adaptive plan does not.
    AttnShape shape{1, 32, 1024, 128};
    const auto &spec = gpusim::rtx4090();
    auto base_block = baseBlockResources(OpKind::AttentionDecode, true);
    // Occupancy of the un-cached consumer (plus staging):
    auto sc = planAttentionKernel(shape, vq::cq2(), OptLevel::SC,
                                  inputs());
    auto o1 = planAttentionKernel(shape, vq::cq2(), OptLevel::O1,
                                  inputs());
    auto occ_base = gpusim::computeOccupancy(spec, base_block);
    auto occ_sc = gpusim::computeOccupancy(spec, sc.block);
    auto occ_o1 = gpusim::computeOccupancy(spec, o1.block);
    EXPECT_LT(occ_sc.blocks_per_sm, occ_base.blocks_per_sm);
    EXPECT_GE(occ_o1.blocks_per_sm, occ_sc.blocks_per_sm);
    // O1's cache must not reduce occupancy below the staged consumer's.
    gpusim::BlockResources consumer = base_block;
    consumer.smem_bytes += 128 * 4 * 2 * 2; // staging for vec 4
    auto occ_consumer = gpusim::computeOccupancy(spec, consumer);
    EXPECT_EQ(occ_o1.blocks_per_sm, occ_consumer.blocks_per_sm);
}

TEST(TemplateEngine, O2AddsRegisterTier)
{
    AttnShape shape{1, 32, 1024, 128};
    auto o1 = planAttentionKernel(shape, vq::cq2(), OptLevel::O1,
                                  inputs());
    auto o2 = planAttentionKernel(shape, vq::cq2(), OptLevel::O2,
                                  inputs());
    EXPECT_EQ(o1.cache_plan.n_reg, 0u);
    EXPECT_GT(o2.cache_plan.n_reg, 0u);
    EXPECT_GT(o2.block.regs_per_thread, o1.block.regs_per_thread);
}

TEST(TemplateEngine, O3SwitchesToCodebookCentricGrid)
{
    AttnShape shape{1, 32, 1024, 128};
    auto o2 = planAttentionKernel(shape, vq::cq2(), OptLevel::O2,
                                  inputs());
    auto o3 = planAttentionKernel(shape, vq::cq2(), OptLevel::O3,
                                  inputs());
    // Baseline: B*H*token-blocks = 32*4 = 128 blocks.
    EXPECT_EQ(o2.grid_blocks, 128u);
    // Codebook-centric: B*H*split blocks, split > 1.
    EXPECT_GT(o3.dataflow.split, 1u);
    EXPECT_EQ(o3.grid_blocks, 32u * o3.dataflow.split);
    // Codebook traffic shrinks accordingly.
    EXPECT_LT(o3.dataflow.codebook_bytes, o2.dataflow.codebook_bytes);
    // Fewer switches per block once blocks own their codebooks.
    EXPECT_LT(o3.switches_per_block, o2.switches_per_block);
}

TEST(TemplateEngine, O4RemovesStagingForRegisterFusion)
{
    AttnShape shape{1, 32, 1024, 128};
    auto o3 = planAttentionKernel(shape, vq::cq2(), OptLevel::O3,
                                  inputs());
    auto o4 = planAttentionKernel(shape, vq::cq2(), OptLevel::O4,
                                  inputs());
    EXPECT_EQ(o3.fusion.level, FusionLevel::Shared);
    EXPECT_EQ(o4.fusion.level, FusionLevel::Register);
    EXPECT_EQ(o4.fusion.num_shuffles, 3); // CQ-2 vec 4, layout 1
    // Register fusion frees the staging shared memory.
    EXPECT_LT(o4.block.smem_bytes - o4.cache_plan.smemBytes(),
              o3.block.smem_bytes - o3.cache_plan.smemBytes());
}

TEST(TemplateEngine, KCacheFusionAlwaysLayoutMatched)
{
    AttnShape shape{1, 32, 1024, 128};
    auto plan = planAttentionKernel(shape, vq::cq2(), OptLevel::O4,
                                    inputs());
    EXPECT_TRUE(plan.fusion_k.layout_matches);
    EXPECT_EQ(plan.fusion_k.num_shuffles, 0);
}

TEST(TemplateEngine, GemvQuipAvoidsRegisterFusion)
{
    // QuiP# vec 8 on GeMV needs 7 > 5 shuffles: adaptive plan stays at
    // shared fusion (Sec. VII-C).
    GemmShape shape{1, 4096, 4096};
    auto plan = planWeightKernel(OpKind::GeMV, shape, vq::quip4(),
                                 OptLevel::O4, inputs());
    EXPECT_EQ(plan.fusion.level, FusionLevel::Shared);
    // While GeMM fuses in registers with 3 shuffles.
    GemmShape mm{4096, 4096, 4096};
    auto gemm = planWeightKernel(OpKind::GeMM, mm, vq::quip4(),
                                 OptLevel::O4, inputs());
    EXPECT_EQ(gemm.fusion.level, FusionLevel::Register);
    EXPECT_EQ(gemm.fusion.num_shuffles, 3);
}

TEST(TemplateEngine, BiggerModelScalesGrid)
{
    // Llama-65B GeMV (n=k=8192) launches ~4x the blocks of 7B
    // (n=k=4096): the paper's scalability argument (Sec. VII-B).
    auto p7 = planWeightKernel(OpKind::GeMV, {1, 4096, 4096},
                               vq::gptvq2(), OptLevel::O4, inputs());
    auto p65 = planWeightKernel(OpKind::GeMV, {1, 8192, 8192},
                                vq::gptvq2(), OptLevel::O4, inputs());
    EXPECT_GE(p65.grid_blocks, 2 * p7.grid_blocks);
}

TEST(TemplateEngine, PlansAreLaunchable)
{
    // Property: every plan in the (config x op x level) space fits the
    // hardware (non-zero occupancy).
    PlanInputs in = inputs();
    for (const auto &cfg : vq::paperConfigs()) {
        bool kv = cfg.scope == vq::CodebookScope::PerChannelGroup;
        for (OptLevel level : kAllOptLevels) {
            KernelPlan plan;
            if (kv) {
                plan = planAttentionKernel({1, 32, 1024, 128}, cfg, level,
                                           in);
            } else {
                plan = planWeightKernel(OpKind::GeMV, {1, 4096, 4096},
                                        cfg, level, in);
            }
            auto occ = gpusim::computeOccupancy(*in.spec, plan.block);
            EXPECT_GT(occ.blocks_per_sm, 0)
                << cfg.name << " @ " << optLevelName(level);
            EXPECT_GT(plan.grid_blocks, 0u);
        }
    }
}

TEST(TemplateEngine, SummaryMentionsKeyDecisions)
{
    auto plan = planAttentionKernel({1, 32, 1024, 128}, vq::cq2(),
                                    OptLevel::O4, inputs());
    std::string s = plan.summary();
    EXPECT_NE(s.find("CQ-2"), std::string::npos);
    EXPECT_NE(s.find("O4"), std::string::npos);
    EXPECT_NE(s.find("register"), std::string::npos);
    EXPECT_NE(s.find("split"), std::string::npos);
}

} // namespace
} // namespace vqllm::engine
