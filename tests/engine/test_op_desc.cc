/**
 * @file
 * Tests for axis metadata (paper Tbl. III): all/reduce/switch axes per
 * computation and VQ scope, and their conflict intersection.
 */
#include <gtest/gtest.h>

#include "engine/op_desc.h"

namespace vqllm::engine {
namespace {

TEST(OpDesc, WeightAxesMatchTable3)
{
    auto info = weightAxisInfo();
    EXPECT_EQ(info.all, (std::vector<Axis>{Axis::M, Axis::N, Axis::R}));
    EXPECT_EQ(info.reduce, (std::vector<Axis>{Axis::M, Axis::R}));
}

TEST(OpDesc, AttentionAxesMatchTable3)
{
    auto k = attentionAxisInfo(AttnOperand::KCache);
    EXPECT_EQ(k.all,
              (std::vector<Axis>{Axis::B, Axis::H, Axis::T, Axis::C}));
    EXPECT_EQ(k.reduce, (std::vector<Axis>{Axis::C}));
    auto v = attentionAxisInfo(AttnOperand::VCache);
    EXPECT_EQ(v.reduce, (std::vector<Axis>{Axis::T}));
}

TEST(OpDesc, SwitchAxesPerScope)
{
    // Tbl. III: R for AQLM/QuiP#; M,N for GPT-VQ; H,C for CQ.
    EXPECT_EQ(weightSwitchAxes(vq::aqlm3()),
              (std::vector<Axis>{Axis::R}));
    EXPECT_EQ(weightSwitchAxes(vq::quip4()),
              (std::vector<Axis>{Axis::R}));
    EXPECT_EQ(weightSwitchAxes(vq::gptvq2()),
              (std::vector<Axis>{Axis::M, Axis::N}));
    EXPECT_EQ(attentionSwitchAxes(vq::cq2()),
              (std::vector<Axis>{Axis::H, Axis::C}));
    EXPECT_EQ(attentionSwitchAxes(vq::cq4()),
              (std::vector<Axis>{Axis::H, Axis::C}));
}

TEST(OpDesc, ConflictAxesForceGlobalReduce)
{
    // Weight + per-tensor books: reduce {M,R} ∩ switch {R} = {R}.
    auto w = conflictAxes(weightAxisInfo(), weightSwitchAxes(vq::aqlm3()));
    EXPECT_EQ(w, (std::vector<Axis>{Axis::R}));
    // Weight + per-tile books: {M,R} ∩ {M,N} = {M}.
    auto g = conflictAxes(weightAxisInfo(),
                          weightSwitchAxes(vq::gptvq2()));
    EXPECT_EQ(g, (std::vector<Axis>{Axis::M}));
    // K cache + CQ: {C} ∩ {H,C} = {C} — the Fig. 11 global reduce.
    auto k = conflictAxes(attentionAxisInfo(AttnOperand::KCache),
                          attentionSwitchAxes(vq::cq2()));
    EXPECT_EQ(k, (std::vector<Axis>{Axis::C}));
    // V cache + CQ: {T} ∩ {H,C} = {} — no reduce needed for V.
    auto v = conflictAxes(attentionAxisInfo(AttnOperand::VCache),
                          attentionSwitchAxes(vq::cq2()));
    EXPECT_TRUE(v.empty());
}

TEST(OpDesc, ShapesAndFlops)
{
    GemmShape g{16, 4096, 4096};
    EXPECT_EQ(g.outputElements(), 16u * 4096);
    EXPECT_EQ(g.flops(), 2ull * 16 * 4096 * 4096);
    AttnShape a{1, 32, 1024, 128};
    EXPECT_EQ(a.kvElements(), 2u * 32 * 1024 * 128);
    EXPECT_EQ(a.flops(), 4ull * 32 * 1024 * 128);
    EXPECT_EQ(a.outputElements(), 32u * 128);
}

TEST(OpDesc, Names)
{
    EXPECT_STREQ(opKindName(OpKind::GeMM), "GeMM");
    EXPECT_STREQ(opKindName(OpKind::AttentionDecode),
                 "Attention(Decode)");
    EXPECT_STREQ(axisName(Axis::C), "C");
    EXPECT_STREQ(axisName(Axis::R), "R");
}

} // namespace
} // namespace vqllm::engine
