/**
 * @file
 * Tests for element-wise quantization baselines and the Fig. 2 accuracy
 * comparison: VQ captures correlated structure that Cartesian-grid
 * element-wise quantization cannot.
 */
#include <gtest/gtest.h>

#include "ewq/int_quant.h"
#include "tensor/datagen.h"
#include "vq/kmeans.h"

namespace vqllm::ewq {
namespace {

Tensor<float>
weightData(std::size_t rows = 64, std::size_t cols = 256,
           std::uint64_t seed = 3)
{
    Rng rng(seed);
    return generateLlmWeight(rows, cols, rng);
}

TEST(IntQuant, RoundTripBoundedByScale)
{
    auto data = weightData();
    IntQuantConfig cfg;
    cfg.bits = 4;
    cfg.group_size = 64;
    auto q = intQuantize(data, cfg);
    auto rec = intDequantize(q);
    // Every element is within half a quantization step (plus FP16
    // rounding of scale/zero).
    for (std::size_t r = 0; r < data.dim(0); ++r) {
        for (std::size_t c = 0; c < data.dim(1); ++c) {
            float scale = q.scales.at(r, c / cfg.group_size);
            EXPECT_NEAR(rec.at(r, c), data.at(r, c), 0.6 * scale + 1e-4);
        }
    }
}

class IntQuantBits : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(IntQuantBits, MoreBitsLowerError)
{
    auto data = weightData();
    IntQuantConfig lo, hi;
    lo.bits = GetParam();
    hi.bits = GetParam() + 2;
    auto mse_lo = mse(data, intDequantize(intQuantize(data, lo)));
    auto mse_hi = mse(data, intDequantize(intQuantize(data, hi)));
    EXPECT_LT(mse_hi, mse_lo);
}

INSTANTIATE_TEST_SUITE_P(Bits, IntQuantBits,
                         ::testing::Values(2u, 3u, 4u, 6u));

TEST(IntQuant, SymmetricModeHasNoZeros)
{
    auto data = weightData();
    IntQuantConfig cfg;
    cfg.symmetric = true;
    auto q = intQuantize(data, cfg);
    EXPECT_EQ(q.zeros.size(), 0u);
    auto rec = intDequantize(q);
    Tensor<float> zeros(data.shape());
    EXPECT_LT(mse(data, rec), mse(data, zeros));
}

TEST(IntQuant, CompressionAccounting)
{
    auto data = weightData(32, 256);
    IntQuantConfig cfg;
    cfg.bits = 4;
    cfg.group_size = 128;
    auto q = intQuantize(data, cfg);
    // codes: 32*256*4/8 = 4096 B; scales+zeros: 32*2 groups * 2 * 2 B.
    EXPECT_EQ(q.codes.sizeBytes(), 4096u);
    EXPECT_EQ(q.sizeBytes(), 4096u + 32 * 2 * 2 * 2);
    EXPECT_LT(q.achievedCompression(), 0.27);
    EXPECT_GT(q.achievedCompression(), 0.25);
}

TEST(IntQuant, SmallerGroupsLowerError)
{
    auto data = weightData();
    IntQuantConfig big, small;
    big.group_size = 256;
    small.group_size = 32;
    auto mse_big = mse(data, intDequantize(intQuantize(data, big)));
    auto mse_small = mse(data, intDequantize(intQuantize(data, small)));
    EXPECT_LE(mse_small, mse_big * 1.001);
}

TEST(Awq, ProtectsSalientChannels)
{
    // Activation-weighted reconstruction error (what matters for the
    // layer output) improves when salient channels are protected.
    auto w = weightData(64, 256, 7);
    Rng rng(9);
    std::vector<float> act(256);
    for (auto &a : act)
        a = static_cast<float>(std::abs(rng.normal(0.0, 1.0)));
    act[10] = 40.0f; // salient channels
    act[100] = 25.0f;

    IntQuantConfig cfg;
    cfg.bits = 3;
    cfg.group_size = 64;
    auto plain_rec = intDequantize(intQuantize(w, cfg));
    auto awq_rec = awqDequantize(awqQuantize(w, act, cfg));

    auto weighted_err = [&](const Tensor<float> &rec) {
        double acc = 0;
        for (std::size_t r = 0; r < w.dim(0); ++r)
            for (std::size_t c = 0; c < w.dim(1); ++c) {
                double d = (rec.at(r, c) - w.at(r, c)) * act[c];
                acc += d * d;
            }
        return acc;
    };
    EXPECT_LT(weighted_err(awq_rec), weighted_err(plain_rec));
}

TEST(Awq, ChannelScalesAreBoundedAndInvertible)
{
    auto w = weightData(16, 64, 11);
    std::vector<float> act(64, 1.0f);
    auto q = awqQuantize(w, act, IntQuantConfig{});
    for (float s : q.channel_scale) {
        EXPECT_GE(s, 0.125f);
        EXPECT_LE(s, 8.0f);
    }
    // Uniform activations -> all scales ~1 -> matches plain RTN.
    auto rec = awqDequantize(q);
    auto plain = intDequantize(intQuantize(w, IntQuantConfig{}));
    EXPECT_NEAR(mse(w, rec), mse(w, plain), 1e-6);
}

TEST(Fig2, VqBeatsCartesianGridOnCorrelatedData)
{
    // Paper Fig. 2 (lower): same bit budget (4 bits per 2-D point),
    // element-wise quantization spends them as a 4x4 Cartesian grid
    // while VQ places 16 centroids along the data's structure.
    Rng rng(13);
    auto pts = generateCorrelated2d(4000, 0.85, 0.01, rng);

    auto grid = cartesianQuantize2d(pts, 2); // 2 bits/dim = 16 points
    auto km = vq::kMeans(pts, 16);           // 16 entries = 4 bits/vec
    Tensor<float> vq_rec({pts.dim(0), 2});
    for (std::size_t i = 0; i < pts.dim(0); ++i)
        for (std::size_t d = 0; d < 2; ++d)
            vq_rec.at(i, d) = km.centroids.at(km.assignments[i], d);

    double grid_mse = mse(pts, grid);
    double vq_mse = mse(pts, vq_rec);
    EXPECT_LT(vq_mse, grid_mse * 0.8);
}

TEST(Fig2, GapGrowsWithCorrelation)
{
    // On uncorrelated data the grid is near-optimal; correlation is
    // what VQ exploits (the paper's "inter-dimension information").
    Rng rng(17);
    auto ratio_at = [&](double corr) {
        auto pts = generateCorrelated2d(3000, corr, 0.0, rng);
        auto grid = cartesianQuantize2d(pts, 2);
        auto km = vq::kMeans(pts, 16);
        Tensor<float> rec({pts.dim(0), 2});
        for (std::size_t i = 0; i < pts.dim(0); ++i)
            for (std::size_t d = 0; d < 2; ++d)
                rec.at(i, d) = km.centroids.at(km.assignments[i], d);
        return mse(pts, rec) / mse(pts, grid);
    };
    EXPECT_LT(ratio_at(0.9), ratio_at(0.1));
}

} // namespace
} // namespace vqllm::ewq
