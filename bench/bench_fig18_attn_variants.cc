/**
 * @file
 * Reproduces paper Fig. 18: relative latency of FP16 attention
 * baselines (Flash Decoding, Paged Flash Decoding, Flash Attention,
 * Paged Flash Attention) against the best VQ-LLM implementation of
 * CQ-4, across sequence lengths (1k/2k/4k) and batch sizes (1/8).
 * Paper headline: 66.4% latency reduction vs the best FP16 baseline at
 * BS8/4k with a 75% KV memory reduction.
 */
#include <cstdio>

#include "bench_common.h"

using namespace vqllm;
using namespace vqllm::bench;

int
main()
{
    const auto &spec = gpusim::rtx4090();
    auto shapes = llama7b();

    std::printf("Fig. 18: FP16 attention baselines relative to VQ-LLM "
                "CQ-4 (best version), %s\n\n", spec.name.c_str());
    using kernels::AttnVariant;
    const AttnVariant variants[] = {
        AttnVariant::FlashDecoding,
        AttnVariant::PagedFlashDecoding,
        AttnVariant::FlashAttention,
        AttnVariant::PagedFlashAttention,
    };

    for (std::size_t bs : {1u, 8u}) {
        TextTable t({"seq_len", "VQ-LLM CQ-4 (us)", "Flash Decoding",
                     "Paged Flash Dec.", "Flash Attention",
                     "Paged Flash Attn", "best-FP16 reduction"});
        for (std::size_t seq : {1024u, 2048u, 4096u}) {
            auto shape = shapes.attention(bs, seq);
            auto vq_best = bestAttn(spec, shape, vq::cq4());
            std::vector<std::string> row = {
                std::to_string(seq / 1024) + "k",
                formatDouble(vq_best.us(), 1)};
            double best_fp16 = 1e30;
            for (auto variant : variants) {
                auto r = kernels::fp16AttentionEstimate(spec, shape,
                                                        variant);
                best_fp16 = std::min(best_fp16, r.us());
                row.push_back(formatRatio(r.us(), vq_best.us()));
            }
            row.push_back(
                formatPercent(1.0 - vq_best.us() / best_fp16, 1));
            t.addRow(row);
        }
        std::printf("BS%zu:\n%s\n", bs, t.render().c_str());
    }
    std::printf("paper: VQ-LLM beats all baselines; 66.4%% reduction "
                "vs best FP16 at BS8/4k; scales with\nsequence length "
                "and batch size; KV footprint reduced 75%% by CQ-4.\n");
    return 0;
}
