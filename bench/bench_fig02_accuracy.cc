/**
 * @file
 * Reproduces paper Fig. 2.
 *
 * (upper) Accuracy of VQ vs element-wise quantization on weight and
 *         KV-cache-like data at matched bit-widths (reconstruction MSE
 *         as the dPPL proxy; the task-accuracy version is in
 *         bench_fig17_e2e).
 * (lower) Quantization-point layouts on correlated 2-D data: a
 *         Cartesian product grid vs k-means VQ entries at the same bit
 *         budget, with the MSE of each.
 */
#include <cstdio>

#include "bench_common.h"
#include "ewq/int_quant.h"
#include "vq/kmeans.h"

using namespace vqllm;
using namespace vqllm::bench;

int
main()
{
    Rng rng(29);

    // ---- upper: matched-bit-width reconstruction quality ------------
    std::printf("Fig. 2 (upper): reconstruction error at matched "
                "bit-widths (dPPL proxy)\n\n");
    // Enough rows that every per-channel-group codebook sees far more
    // sub-vectors than it has entries (no k-means memorization).
    auto weight = generateLlmWeight(2048, 128, rng);
    auto kv3 = generateKvCache(2, 2048, 64, rng);
    Tensor<float> kv({2 * 2048, 64});
    for (std::size_t h = 0; h < 2; ++h)
        for (std::size_t t = 0; t < 2048; ++t)
            for (std::size_t c = 0; c < 64; ++c)
                kv.at(h * 2048 + t, c) = kv3.at(h, t, c);

    TextTable t({"data", "bits", "element-wise MSE", "VQ MSE",
                 "VQ advantage"});
    struct Case
    {
        const char *name;
        const Tensor<float> *data;
        unsigned bits;
        vq::VQConfig vq_cfg;
    };
    vq::VQConfig v2 = vq::cq2();  // 2-bit
    vq::VQConfig v4 = vq::cq4();  // 4-bit
    for (const Case &c :
         {Case{"weight", &weight, 2, v2}, Case{"weight", &weight, 4, v4},
          Case{"KV cache", &kv, 2, v2}, Case{"KV cache", &kv, 4, v4}}) {
        ewq::IntQuantConfig icfg;
        icfg.bits = c.bits;
        icfg.group_size = std::min<std::size_t>(64, c.data->dim(1));
        double emse = mse(*c.data, ewq::intDequantize(
                                       ewq::intQuantize(*c.data, icfg)));
        vq::KMeansOptions opts;
        opts.max_iters = 10;
        opts.sample_limit = 4096;
        auto qt = vq::VectorQuantizer(c.vq_cfg, opts).quantize(*c.data);
        double vmse = mse(*c.data, vq::VectorQuantizer::dequantize(qt));
        t.addRow({c.name, std::to_string(c.bits), formatDouble(emse, 5),
                  formatDouble(vmse, 5),
                  formatRatio(emse, vmse)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper: VQ matches or beats element-wise at every "
                "bit-width; the gap widens at 2 bits.\n\n");

    // ---- lower: quantization-point layouts on correlated 2-D data ----
    std::printf("Fig. 2 (lower): 2-D quantization points, 4 bits per "
                "point\n\n");
    auto pts = generateCorrelated2d(8000, 0.85, 0.01, rng);
    auto grid = ewq::cartesianQuantize2d(pts, 2); // 4x4 grid
    auto km = vq::kMeans(pts, 16);                // 16 VQ entries
    Tensor<float> vq_rec({pts.dim(0), 2});
    for (std::size_t i = 0; i < pts.dim(0); ++i)
        for (std::size_t d = 0; d < 2; ++d)
            vq_rec.at(i, d) = km.centroids.at(km.assignments[i], d);

    TextTable lower({"layout", "MSE"});
    lower.addRow({"element-wise (4x4 Cartesian grid)",
                  formatDouble(mse(pts, grid), 4)});
    lower.addRow({"VQ (16 k-means entries)",
                  formatDouble(mse(pts, vq_rec), 4)});
    std::printf("%s\n", lower.render().c_str());
    std::printf("paper example: MSE 5.2e-3 (element-wise) vs 3.2e-3 "
                "(VQ) — VQ follows the data's\ncorrelated structure "
                "and covers outliers the grid wastes points on.\n");
    return 0;
}
