/**
 * @file
 * Reproduces paper Fig. 17: (left) end-to-end speedup of qServe-4,
 * VQ-LLM-4 and VQ-LLM-2 over FP16 on the RTX 4090 plus the VQ-LLM-4
 * point on a Tesla A40; (right) task accuracy of FP16, VQ-LLM and
 * element-wise quantization (arc-challenge substituted by the synthetic
 * classification pipeline, see DESIGN.md).
 *
 * Scenario: batch 16, prompt 1024, generate 256 tokens (Sec. VII-A).
 */
#include <cstdio>

#include "bench_common.h"
#include "llm/accuracy.h"
#include "llm/e2e.h"

using namespace vqllm;
using namespace vqllm::bench;

int
main()
{
    using llm::QuantScheme;
    const auto &rtx = gpusim::rtx4090();
    const auto &a40 = gpusim::teslaA40();
    const auto &model = llm::llama7b();

    std::printf("Fig. 17 (left): end-to-end speedup over FP16 "
                "(Llama-7B, batch 16, 1024+256 tokens)\n\n");
    auto fp16 = llm::estimateE2E(rtx, model, QuantScheme::FP16);
    TextTable t({"configuration", "total (ms)", "speedup", "memory"});
    t.addRow({"FP16 @ RTX 4090", formatDouble(fp16.totalUs() / 1000, 1),
              "1.00x", formatBytes(
                  static_cast<double>(fp16.totalMemoryBytes()))});
    for (auto scheme : {QuantScheme::EWQ4, QuantScheme::VQ4,
                        QuantScheme::VQ2}) {
        auto r = llm::estimateE2E(rtx, model, scheme);
        t.addRow({std::string(llm::quantSchemeName(scheme)) +
                      " @ RTX 4090",
                  formatDouble(r.totalUs() / 1000, 1),
                  formatRatio(fp16.totalUs(), r.totalUs()),
                  formatBytes(
                      static_cast<double>(r.totalMemoryBytes()))});
    }
    auto a40_fp16 = llm::estimateE2E(a40, model, QuantScheme::FP16);
    auto a40_vq4 = llm::estimateE2E(a40, model, QuantScheme::VQ4);
    t.addRow({"VQ-LLM (4 bit) @ Tesla A40",
              formatDouble(a40_vq4.totalUs() / 1000, 1),
              formatRatio(a40_fp16.totalUs(), a40_vq4.totalUs()),
              formatBytes(
                  static_cast<double>(a40_vq4.totalMemoryBytes()))});
    std::printf("%s\n", t.render().c_str());
    std::printf("paper: both 4-bit schemes ~2.2x over FP16; 2-bit "
                "larger; A40 speedup exceeds 4090's;\n"
                "FP16 >22 GB vs <6 GB for 4-bit schemes.\n\n");
    std::printf("element-wise op share: FP16 %s vs VQ-4bit %s "
                "(paper: ~10%% vs ~20%%)\n\n",
                formatPercent(fp16.elementwise_fraction, 1).c_str(),
                formatPercent(
                    llm::estimateE2E(rtx, model, QuantScheme::VQ4)
                        .elementwise_fraction,
                    1)
                    .c_str());

    std::printf("Fig. 17 (right): task accuracy (synthetic "
                "classification; arc-challenge substitute)\n\n");
    ewq::IntQuantConfig ewq4;
    ewq4.bits = 4;
    ewq4.group_size = 24;
    auto acc4 = llm::compareQuantAccuracy(vq::cq4(), ewq4, 1234);
    ewq::IntQuantConfig ewq2;
    ewq2.bits = 2;
    ewq2.group_size = 24;
    auto acc2 = llm::compareQuantAccuracy(vq::cq2(), ewq2, 1234);

    TextTable acc({"scheme", "4-bit equiv.", "2-bit equiv."});
    acc.addRow({"FP16", formatPercent(acc4.fp16, 1),
                formatPercent(acc2.fp16, 1)});
    acc.addRow({"VQ-LLM", formatPercent(acc4.vq, 1),
                formatPercent(acc2.vq, 1)});
    acc.addRow({"element-wise (qServe-class)",
                formatPercent(acc4.ewq, 1),
                formatPercent(acc2.ewq, 1)});
    std::printf("%s\n", acc.render().c_str());
    std::printf("paper: VQ-LLM ~2.5%% above qServe on arc-challenge at "
                "4-bit, both close to FP16.\n");
    return 0;
}
