/**
 * @file
 * Ablation benches for VQ-LLM's adaptive heuristics (DESIGN.md):
 *
 *  1. split-factor sweep — latency across forced split factors vs the
 *     heuristic's choice (Sec. VI-A's Traffic_reduce/Traffic_codebook
 *     balance);
 *  2. fusion-threshold sweep — register vs shared fusion across
 *     thresholds (Sec. VI-B's profiled value of 5);
 *  3. cache-boundary sweep — latency as the shared boundary moves from
 *     0 (GC-like) to greedy (SC-like), showing the slack-derived choice
 *     sits at the knee.
 */
#include <algorithm>
#include <cstdio>

#include "bench_common.h"

using namespace vqllm;
using namespace vqllm::bench;

int
main()
{
    const auto &spec = gpusim::rtx4090();
    auto shapes = llama7b();
    const auto &hist = sampleHistogram(vq::cq2(), /*kv=*/true);
    auto &eng = engineFor(spec);

    // ---- 1. split-factor sweep --------------------------------------
    std::printf("Ablation 1: dataflow split factor (CQ-2 attention, "
                "4k BS8)\n\n");
    auto shape = shapes.attention(8, 4096);
    auto heuristic = eng.compile(compiler::KernelRequest::attentionOp(
                                     shape, vq::cq2(),
                                     engine::OptLevel::O3, &hist))
                         ->plan();
    TextTable t1({"split", "codebook MB", "reduce MB", "latency (us)",
                  "note"});
    std::vector<std::uint64_t> splits = {1, 2, 4, 8, 16, 32,
                                         heuristic.dataflow.split};
    std::sort(splits.begin(), splits.end());
    splits.erase(std::unique(splits.begin(), splits.end()),
                 splits.end());
    for (std::uint64_t split : splits) {
        auto plan = heuristic;
        plan.dataflow.split = split;
        plan.dataflow.codebook_bytes =
            plan.dataflow.baseline_codebook_bytes / split;
        plan.dataflow.reduce_bytes =
            split > 1 ? split * plan.dataflow.output_bytes : 0;
        plan.grid_blocks = 8ull * 32 * split;
        auto r = kernels::estimateVqAttentionKernel(spec, plan, &hist);
        t1.addRow({std::to_string(split),
                   formatDouble(plan.dataflow.codebook_bytes / 1e6, 1),
                   formatDouble(plan.dataflow.reduce_bytes / 1e6, 1),
                   formatDouble(r.us(), 1),
                   split == heuristic.dataflow.split ? "<- heuristic"
                                                     : ""});
    }
    std::printf("%s\n", t1.render().c_str());

    // ---- 2. fusion-threshold sweep -----------------------------------
    std::printf("Ablation 2: fusion threshold (shuffles allowed before "
                "falling back to shared fusion)\n\n");
    TextTable t2({"config/op", "#shuffles", "thr=0", "thr=5 (paper)",
                  "thr=100"});
    struct Case
    {
        vq::VQConfig cfg;
        engine::OpKind kind;
    };
    for (const Case &c : {Case{vq::quip4(), engine::OpKind::GeMM},
                          Case{vq::quip4(), engine::OpKind::GeMV},
                          Case{vq::gptvq2(), engine::OpKind::GeMV}}) {
        std::vector<std::string> row = {
            c.cfg.name + std::string("/") + engine::opKindName(c.kind)};
        auto probe = engine::planFusion(c.cfg, c.kind, 32, 1000);
        row.push_back(std::to_string(probe.num_shuffles));
        for (int thr : {0, 5, 100}) {
            auto f = engine::planFusion(c.cfg, c.kind, 32, thr);
            row.push_back(engine::fusionLevelName(f.level));
        }
        t2.addRow(row);
    }
    std::printf("%s\n", t2.render().c_str());

    // ---- 3. cache-boundary sweep ---------------------------------------
    std::printf("Ablation 3: shared-cache boundary (CQ-2 attention 1k "
                "BS1; slack-derived plan vs forced)\n\n");
    auto base = eng.compile(compiler::KernelRequest::attentionOp(
                                shapes.attention(1, 1024), vq::cq2(),
                                engine::OptLevel::O2, &hist))
                    ->plan();
    TextTable t3({"n_shared", "smem/block", "blocks/SM", "latency (us)",
                  "note"});
    for (std::size_t n_shared :
         {std::size_t(0), std::size_t(64), std::size_t(128),
          base.cache_plan.n_shared, std::size_t(1024),
          std::size_t(8192)}) {
        auto plan = base;
        plan.cache_plan.n_reg = std::min(plan.cache_plan.n_reg,
                                         n_shared);
        plan.cache_plan.n_shared =
            std::min(n_shared, plan.cache_plan.total_entries * 32);
        plan.block = engine::baseBlockResources(
            engine::OpKind::AttentionDecode, true);
        plan.block.smem_bytes += 128 * 4 * 2 * 2; // staging
        plan.block.smem_bytes += plan.cache_plan.smemBytes();
        plan.block.regs_per_thread += plan.cache_plan.regsPerThread();
        auto occ = gpusim::computeOccupancy(spec, plan.block);
        auto r = kernels::estimateVqAttentionKernel(spec, plan, &hist);
        t3.addRow({std::to_string(plan.cache_plan.n_shared),
                   formatBytes(static_cast<double>(
                       plan.block.smem_bytes)),
                   std::to_string(occ.blocks_per_sm),
                   formatDouble(r.us(), 1),
                   plan.cache_plan.n_shared == base.cache_plan.n_shared
                       ? "<- slack heuristic"
                       : ""});
    }
    std::printf("%s\n", t3.render().c_str());
    std::printf("the slack-derived boundary caches the hot set without "
                "losing a resident block;\nforcing more shared memory "
                "re-creates the SC occupancy cliff.\n");
    return 0;
}
