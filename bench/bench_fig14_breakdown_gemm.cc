/**
 * @file
 * Reproduces paper Fig. 14: optimization breakdown for GeMM (upper) and
 * GeMV (lower) with QuiP#-4, AQLM-3 and GPTVQ-2 weight quantization on
 * Llama-7B shapes.
 */
#include <cstdio>

#include "bench_common.h"

using namespace vqllm;
using namespace vqllm::bench;

namespace {

void
printBreakdown(const gpusim::GpuSpec &spec, engine::OpKind kind,
               const engine::GemmShape &shape, const char *title)
{
    std::printf("%s (m=%zu, n=%zu, k=%zu)\n\n", title, shape.m, shape.n,
                shape.k);
    TextTable table({"config", "GC", "SC", "O1", "O2", "O3", "O4",
                     "best", "best/GC"});
    for (const auto &cfg :
         {vq::quip4(), vq::aqlm3(), vq::gptvq2()}) {
        std::vector<std::string> row = {cfg.name};
        double gc_us = 0, best = 1e30;
        engine::OptLevel best_level = engine::OptLevel::O1;
        for (auto level : engine::kAllOptLevels) {
            auto r = weightAtLevel(spec, kind, shape, cfg, level);
            if (level == engine::OptLevel::GC)
                gc_us = r.us();
            if (level >= engine::OptLevel::O1 && r.us() < best) {
                best = r.us();
                best_level = level;
            }
            row.push_back(formatDouble(r.us(), 1));
        }
        row.push_back(engine::optLevelName(best_level));
        row.push_back(formatPercent(1.0 - best / gc_us, 1));
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
}

} // namespace

int
main()
{
    const auto &spec = gpusim::rtx4090();
    auto shapes = llama7b();

    std::printf("Fig. 14: optimization breakdown, latency in us "
                "(Llama-7B, %s)\n\n", spec.name.c_str());
    printBreakdown(spec, engine::OpKind::GeMM, shapes.gemm(4096),
                   "GeMM (prefill-scale batch)");
    printBreakdown(spec, engine::OpKind::GeMV, shapes.gemm(1),
                   "GeMV BS1");
    printBreakdown(spec, engine::OpKind::GeMV, shapes.gemm(16),
                   "GeMV BS16");

    std::printf(
        "paper trends: SC==O1 for QuiP# (tiny books); SC hurts AQLM "
        "GeMV (128 KiB books);\nO2 largest for AQLM (15-30 hot "
        "entries); O3 negative for GeMM / positive for GeMV;\nO4 "
        "strong for GeMM (mma layout), mixed for GeMV.\n");
    return 0;
}
