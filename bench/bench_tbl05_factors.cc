/**
 * @file
 * Reproduces paper Tbl. V: the factors that influence each
 * optimization's effect — per-block codebook working set, number of hot
 * entries (freq > mu+3sigma), per-block output size, and the required
 * shuffle count per op.
 */
#include <cstdio>

#include "bench_common.h"

using namespace vqllm;
using namespace vqllm::bench;

int
main()
{
    const auto &spec = gpusim::rtx4090();
    std::printf("Tbl. V: factors that influence the effect of "
                "optimizations (Llama-7B shapes)\n\n");

    TextTable t({"item", "QuiP#-4", "AQLM-3", "GPTVQ-2", "CQ-2"});
    auto &eng = engineFor(spec);

    std::vector<vq::VQConfig> cfgs = {vq::quip4(), vq::aqlm3(),
                                      vq::gptvq2(), vq::cq2()};

    // Codebook working set per block (the SC residency of Sec. III).
    std::vector<std::string> row = {"codebook/block"};
    for (const auto &cfg : cfgs) {
        bool kv = cfg.scope == vq::CodebookScope::PerChannelGroup;
        auto request =
            kv ? compiler::KernelRequest::attentionOp(
                     {1, 32, 1024, 128}, cfg, engine::OptLevel::SC)
               : compiler::KernelRequest::gemvOp(
                     {1, 4096, 4096}, cfg, engine::OptLevel::SC);
        auto kernel = eng.compile(request);
        row.push_back(formatBytes(static_cast<double>(
            kernel->plan().resident_books * cfg.codebookBytes())));
    }
    t.addRow(row);

    // Hot entries above mu + 3 sigma from profiled histograms.
    row = {"#entries freq > mu+3sigma"};
    for (const auto &cfg : cfgs) {
        bool kv = cfg.scope == vq::CodebookScope::PerChannelGroup;
        const auto &hist = sampleHistogram(cfg, kv);
        row.push_back(std::to_string(hist.entriesAbove(3.0)));
    }
    t.addRow(row);

    // Output size per block.
    row = {"output/block (GeMM/GeMV)"};
    for (const auto &cfg : cfgs) {
        if (cfg.scope == vq::CodebookScope::PerChannelGroup) {
            // Attention: per-block partial logits (seq tokens x 4 B).
            row.push_back(formatBytes(1024.0 * 4) + " (logits)");
        } else {
            row.push_back(formatBytes(128.0 * 128 * 2) + " / " +
                          formatBytes(128.0 * 2));
        }
    }
    t.addRow(row);

    // Shuffle counts per op kind (the paper's "3/7*" notation).
    row = {"#shuffle (GeMM/GeMV or attn)"};
    for (const auto &cfg : cfgs) {
        if (cfg.scope == vq::CodebookScope::PerChannelGroup) {
            auto f = engine::planFusion(cfg,
                                        engine::OpKind::AttentionDecode,
                                        32, 1000);
            row.push_back(std::to_string(f.num_shuffles));
        } else {
            auto g = engine::planFusion(cfg, engine::OpKind::GeMM, 32,
                                        1000);
            auto v = engine::planFusion(cfg, engine::OpKind::GeMV, 32,
                                        1000);
            row.push_back(std::to_string(g.num_shuffles) + "/" +
                          std::to_string(v.num_shuffles));
        }
    }
    t.addRow(row);

    std::printf("%s\n", t.render().c_str());
    std::printf("paper values: codebook/block 2KB*/128KB/32KB/64KB "
                "(*our QuiP# stores 256x8 FP16 = 4KB x 2 residuals);\n"
                "hot entries 1-3 / 15-30 / <1 / <1; output 32KB//<1KB "
                "and 1-4KB; shuffles 3/7*, 3/7*, 1/3, 3.\n");
    return 0;
}
