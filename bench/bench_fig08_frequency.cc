/**
 * @file
 * Reproduces paper Fig. 8: codebook-entry access frequencies of one
 * thread block in a VQ-GeMM kernel with VQ<8,12,2> (AQLM-3): a strongly
 * skewed histogram where over half the entries fall below the mean and
 * a handful exceed mu + 3 sigma.
 */
#include <cstdio>

#include "bench_common.h"

using namespace vqllm;
using namespace vqllm::bench;

int
main()
{
    std::printf("Fig. 8: codebook entry access frequency, AQLM-3 "
                "VQ<8,12,2> (one GeMM block's weights)\n\n");
    const auto &hist = sampleHistogram(vq::aqlm3(), /*kv=*/false);

    double mu = hist.mean();
    double sigma = hist.stddev();
    std::printf("entries: %zu, total accesses: %llu\n",
                hist.counts.size(),
                static_cast<unsigned long long>(hist.total()));
    std::printf("mean access count mu = %.3f, sigma = %.3f\n", mu,
                sigma);
    std::printf("entries below mean: %s  (paper: over half)\n",
                formatPercent(hist.fractionBelowMean(), 1).c_str());
    std::printf("entries above mu+3sigma: %zu  (paper: 26 for this "
                "config; Tbl. V band: 15-30)\n",
                hist.entriesAbove(3.0));
    std::printf("entries above mu+0sigma: %zu\n\n",
                hist.entriesAbove(0.0));

    // Text rendering of the sorted histogram (log-binned).
    auto order = hist.frequencyOrder();
    std::printf("access count by frequency rank (each bar is the mean "
                "of its rank bin):\n");
    const int bins = 16;
    std::size_t per_bin = hist.counts.size() / bins;
    double max_mean = 0;
    std::vector<double> bin_means(bins, 0.0);
    for (int b = 0; b < bins; ++b) {
        double acc = 0;
        for (std::size_t i = b * per_bin;
             i < (b + 1) * per_bin && i < order.size(); ++i)
            acc += static_cast<double>(hist.counts[order[i]]);
        bin_means[b] = acc / static_cast<double>(per_bin);
        max_mean = std::max(max_mean, bin_means[b]);
    }
    for (int b = 0; b < bins; ++b) {
        int stars = max_mean > 0
                        ? static_cast<int>(bin_means[b] / max_mean * 50)
                        : 0;
        std::printf("rank %4zu-%4zu | %-50.*s | %.2f\n", b * per_bin,
                    (b + 1) * per_bin - 1, stars,
                    "**************************************************",
                    bin_means[b]);
    }
    std::printf("\nthe skew justifies hierarchical placement: "
                "register-cache the top few, shared-cache the\nmedium "
                "band, leave the cold tail in global memory.\n");
    return 0;
}
