/**
 * @file
 * Reproduces paper Fig. 4: the motivation study.
 *
 * (left)  Latency of VQ-attn-GC and VQ-attn-SC relative to FP16-attn
 *         (FlashDecoding) on a Llama-7B attention decode with CQ-2
 *         (VQ<4,8,1>) quantized KV cache, RTX 4090.
 * (right) Performance counters of VQ-attn-SC relative to FP16-attn:
 *         SM utilization, shared-memory usage, bank conflicts,
 *         global->shared traffic, shared->reg traffic.
 */
#include <cstdio>

#include "bench_common.h"

using namespace vqllm;
using namespace vqllm::bench;

int
main()
{
    const auto &spec = gpusim::rtx4090();
    auto shapes = llama7b();
    auto shape = shapes.attention(1, 1024);
    auto cfg = vq::cq2();
    const auto &hist = sampleHistogram(cfg, /*kv=*/true);

    auto fp16 = kernels::fp16AttentionEstimate(
        spec, shape, kernels::AttnVariant::FlashDecoding);

    auto &eng = engineFor(spec);
    auto kernel_gc = eng.compile(compiler::KernelRequest::attentionOp(
        shape, cfg, engine::OptLevel::GC, &hist));
    auto kernel_sc = eng.compile(compiler::KernelRequest::attentionOp(
        shape, cfg, engine::OptLevel::SC, &hist));
    const auto &plan_sc = kernel_sc->plan();
    const auto &gc = kernel_gc->estimate();
    const auto &sc = kernel_sc->estimate();

    std::printf("Fig. 4 (left): latency relative to FP16-attn "
                "(Llama-7B, CQ-2 VQ<4,8,1>, seq 1024, BS1, %s)\n\n",
                spec.name.c_str());
    TextTable left({"kernel", "latency (us)", "relative"});
    left.addRow({"FP16-attn", formatDouble(fp16.us()),
                 formatRatio(fp16.us(), fp16.us())});
    left.addRow({"VQ-attn-GC", formatDouble(gc.us()),
                 formatRatio(gc.us(), fp16.us())});
    left.addRow({"VQ-attn-SC", formatDouble(sc.us()),
                 formatRatio(sc.us(), fp16.us())});
    std::printf("%s\n", left.render().c_str());
    std::printf("paper: VQ-attn-GC ~2.52x, VQ-attn-SC ~1.6x "
                "(both slower than FP16)\n\n");

    std::printf("Fig. 4 (right): VQ-attn-SC performance counters "
                "relative to FP16-attn\n\n");
    double sm_util_ratio =
        sc.latency.throughput_factor / fp16.latency.throughput_factor;
    double shared_usage_ratio =
        static_cast<double>(plan_sc.block.smem_bytes) /
        engine::baseBlockResources(engine::OpKind::AttentionDecode, false)
            .smem_bytes;
    double conflict_ratio = sc.counters.conflictMultiplier() /
                            fp16.counters.conflictMultiplier();
    double g2s_ratio =
        static_cast<double>(sc.counters.global_to_shared_bytes) /
        static_cast<double>(fp16.counters.global_to_shared_bytes);
    double s2r_ratio =
        static_cast<double>(sc.counters.shared_to_reg_bytes) /
        static_cast<double>(fp16.counters.global_to_shared_bytes);

    TextTable right({"counter", "SC / FP16", "paper trend"});
    right.addRow({"SM utilization", formatDouble(sm_util_ratio),
                  "~0.7 (30% drop)"});
    right.addRow({"shared usage", formatDouble(shared_usage_ratio),
                  ">4x"});
    right.addRow({"shared bank conflict", formatDouble(conflict_ratio),
                  ">3x"});
    right.addRow({"global->shared traffic", formatDouble(g2s_ratio),
                  ">1x (counterintuitive)"});
    right.addRow({"shared->reg traffic", formatDouble(s2r_ratio),
                  ">1x"});
    std::printf("%s\n", right.render().c_str());

    std::printf("takeaway 1/2: codebooks must be cached on-chip, but "
                "greedy shared placement hurts occupancy and conflicts;\n"
                "codebook load and compute dataflow must be "
                "coordinated.\n");
    return 0;
}
