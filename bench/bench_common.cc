#include "bench_common.h"

namespace vqllm::bench {

const vq::AccessHistogram &
sampleHistogram(const vq::VQConfig &cfg, bool kv)
{
    static std::map<std::string, vq::AccessHistogram> cache;
    std::string key = cfg.name + (kv ? "/kv" : "/w");
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;

    // Sample size balances fidelity and bench startup time; larger
    // codebooks need more sampled sub-vectors for stable skew
    // statistics (Fig. 8, Tbl. V).
    Rng rng(0xC0FFEE);
    ClusteredDataSpec spec;
    spec.num_clusters = kv ? 32 : 512;
    spec.popularity_alpha = 0.3;
    if (!kv && cfg.storedEntries() >= 2048) {
        // Large codebooks: the mega-hot entries come from recurring
        // template sub-vectors (Fig. 8 / Tbl. V's 15-30 band).
        spec.duplicate_pool = 22;
        spec.duplicate_fraction = 0.16;
    }
    // One sub-vector per sampled row so duplicate templates map to
    // single codebook entries.
    std::size_t rows = cfg.storedEntries() >= 2048 ? 8192
                       : kv                        ? 4096
                                                   : 2048;
    std::size_t cols = cfg.vector_size;
    Tensor<float> data = kv ? generateKvCache(1, rows, cols, rng)
                            : generateClustered(rows, cols, spec, rng);
    if (kv)
        data.reshape({rows, cols});

    // Train a single shared codebook for the histogram regardless of
    // the config's scope: per-book access statistics are what the cache
    // plan consumes.
    vq::VQConfig book_cfg = cfg;
    book_cfg.scope = vq::CodebookScope::PerTensor;
    vq::KMeansOptions opts;
    opts.max_iters = 4;
    opts.sample_limit = 1024;
    auto qt = vq::VectorQuantizer(book_cfg, opts).quantize(data);
    auto profile = vq::profileAccesses(qt);
    auto [pos, inserted] =
        cache.emplace(key, std::move(profile.histograms[0]));
    return pos->second;
}

std::string
formatRatio(double value, double baseline)
{
    return formatDouble(baseline > 0 ? value / baseline : 0.0, 2) + "x";
}

kernels::KernelResult
attnAtLevel(const gpusim::GpuSpec &spec, const engine::AttnShape &shape,
            const vq::VQConfig &cfg, engine::OptLevel level)
{
    const auto &hist = sampleHistogram(cfg, /*kv=*/true);
    return engineFor(spec)
        .compile(compiler::KernelRequest::attentionOp(shape, cfg, level,
                                                      &hist))
        ->estimate();
}

kernels::KernelResult
weightAtLevel(const gpusim::GpuSpec &spec, engine::OpKind kind,
              const engine::GemmShape &shape, const vq::VQConfig &cfg,
              engine::OptLevel level)
{
    const auto &hist = sampleHistogram(cfg, /*kv=*/false);
    auto request =
        kind == engine::OpKind::GeMM
            ? compiler::KernelRequest::gemmOp(shape, cfg, level, &hist)
            : compiler::KernelRequest::gemvOp(shape, cfg, level, &hist);
    return engineFor(spec).compile(request)->estimate();
}

/** Levels the adaptive selection searches (O1..O4). */
static const std::vector<engine::OptLevel> kBestLevels = {
    engine::OptLevel::O1, engine::OptLevel::O2, engine::OptLevel::O3,
    engine::OptLevel::O4};

kernels::KernelResult
bestAttn(const gpusim::GpuSpec &spec, const engine::AttnShape &shape,
         const vq::VQConfig &cfg)
{
    const auto &hist = sampleHistogram(cfg, /*kv=*/true);
    return engineFor(spec)
        .compileBest(compiler::KernelRequest::attentionOp(
                         shape, cfg, engine::OptLevel::O4, &hist),
                     kBestLevels)
        ->estimate();
}

kernels::KernelResult
bestWeight(const gpusim::GpuSpec &spec, engine::OpKind kind,
           const engine::GemmShape &shape, const vq::VQConfig &cfg)
{
    const auto &hist = sampleHistogram(cfg, /*kv=*/false);
    auto request = kind == engine::OpKind::GeMM
                       ? compiler::KernelRequest::gemmOp(
                             shape, cfg, engine::OptLevel::O4, &hist)
                       : compiler::KernelRequest::gemvOp(
                             shape, cfg, engine::OptLevel::O4, &hist);
    return engineFor(spec).compileBest(request, kBestLevels)->estimate();
}

} // namespace vqllm::bench
