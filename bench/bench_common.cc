#include "bench_common.h"

namespace vqllm::bench {

const vq::AccessHistogram &
sampleHistogram(const vq::VQConfig &cfg, bool kv)
{
    static std::map<std::string, vq::AccessHistogram> cache;
    std::string key = cfg.name + (kv ? "/kv" : "/w");
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;

    // Sample size balances fidelity and bench startup time; larger
    // codebooks need more sampled sub-vectors for stable skew
    // statistics (Fig. 8, Tbl. V).
    Rng rng(0xC0FFEE);
    ClusteredDataSpec spec;
    spec.num_clusters = kv ? 32 : 512;
    spec.popularity_alpha = 0.3;
    if (!kv && cfg.storedEntries() >= 2048) {
        // Large codebooks: the mega-hot entries come from recurring
        // template sub-vectors (Fig. 8 / Tbl. V's 15-30 band).
        spec.duplicate_pool = 22;
        spec.duplicate_fraction = 0.16;
    }
    // One sub-vector per sampled row so duplicate templates map to
    // single codebook entries.
    std::size_t rows = cfg.storedEntries() >= 2048 ? 8192
                       : kv                        ? 4096
                                                   : 2048;
    std::size_t cols = cfg.vector_size;
    Tensor<float> data = kv ? generateKvCache(1, rows, cols, rng)
                            : generateClustered(rows, cols, spec, rng);
    if (kv)
        data.reshape({rows, cols});

    // Train a single shared codebook for the histogram regardless of
    // the config's scope: per-book access statistics are what the cache
    // plan consumes.
    vq::VQConfig book_cfg = cfg;
    book_cfg.scope = vq::CodebookScope::PerTensor;
    vq::KMeansOptions opts;
    opts.max_iters = 4;
    opts.sample_limit = 1024;
    auto qt = vq::VectorQuantizer(book_cfg, opts).quantize(data);
    auto profile = vq::profileAccesses(qt);
    auto [pos, inserted] =
        cache.emplace(key, std::move(profile.histograms[0]));
    return pos->second;
}

std::string
formatRatio(double value, double baseline)
{
    return formatDouble(baseline > 0 ? value / baseline : 0.0, 2) + "x";
}

kernels::KernelResult
attnAtLevel(const gpusim::GpuSpec &spec, const engine::AttnShape &shape,
            const vq::VQConfig &cfg, engine::OptLevel level)
{
    const auto &hist = sampleHistogram(cfg, /*kv=*/true);
    engine::PlanInputs in;
    in.spec = &spec;
    in.histogram = &hist;
    auto plan = engine::planAttentionKernel(shape, cfg, level, in);
    return kernels::estimateVqAttentionKernel(spec, plan, &hist);
}

kernels::KernelResult
weightAtLevel(const gpusim::GpuSpec &spec, engine::OpKind kind,
              const engine::GemmShape &shape, const vq::VQConfig &cfg,
              engine::OptLevel level)
{
    const auto &hist = sampleHistogram(cfg, /*kv=*/false);
    engine::PlanInputs in;
    in.spec = &spec;
    in.histogram = &hist;
    auto plan = engine::planWeightKernel(kind, shape, cfg, level, in);
    return kernels::estimateVqWeightKernel(spec, plan, &hist);
}

kernels::KernelResult
bestAttn(const gpusim::GpuSpec &spec, const engine::AttnShape &shape,
         const vq::VQConfig &cfg)
{
    kernels::KernelResult best;
    bool first = true;
    for (auto level : {engine::OptLevel::O1, engine::OptLevel::O2,
                       engine::OptLevel::O3, engine::OptLevel::O4}) {
        auto r = attnAtLevel(spec, shape, cfg, level);
        if (first || r.us() < best.us()) {
            best = r;
            first = false;
        }
    }
    return best;
}

kernels::KernelResult
bestWeight(const gpusim::GpuSpec &spec, engine::OpKind kind,
           const engine::GemmShape &shape, const vq::VQConfig &cfg)
{
    kernels::KernelResult best;
    bool first = true;
    for (auto level : {engine::OptLevel::O1, engine::OptLevel::O2,
                       engine::OptLevel::O3, engine::OptLevel::O4}) {
        auto r = weightAtLevel(spec, kind, shape, cfg, level);
        if (first || r.us() < best.us()) {
            best = r;
            first = false;
        }
    }
    return best;
}

} // namespace vqllm::bench
