/**
 * @file
 * Shared helpers for the benchmark harnesses (one binary per paper
 * table/figure).
 */
#pragma once

#include <map>
#include <string>

#include "common/table.h"
#include "compiler/engine.h"
#include "kernels/ewq_kernels.h"
#include "kernels/fp16_kernels.h"
#include "kernels/vq_kernels.h"
#include "tensor/datagen.h"
#include "vq/profiler.h"

namespace vqllm::bench {

/**
 * Process-wide compile engine for a GPU spec: all bench harness
 * helpers plan/cost through this facade, so a figure sweeping many
 * levels against one shape pays each compile once.
 */
inline compiler::Engine &
engineFor(const gpusim::GpuSpec &spec)
{
    return compiler::Engine::shared(spec);
}

/**
 * Build a realistic access histogram for a VQ config by quantizing a
 * synthetic clustered sample and profiling its indices (the offline
 * profiling phase of the codebook cache).  Results are memoized per
 * config name within the process.
 *
 * @param cfg the VQ configuration
 * @param kv  sample KV-cache-like data instead of weight-like data
 */
const vq::AccessHistogram &sampleHistogram(const vq::VQConfig &cfg,
                                           bool kv = false);

/** Llama-7B / Llama-65B kernel shapes used across the benches. */
struct ModelShapes
{
    std::size_t hidden = 4096;
    std::size_t heads = 32;
    std::size_t head_dim = 128;

    engine::GemmShape
    gemm(std::size_t m) const
    {
        return {m, hidden, hidden};
    }

    engine::AttnShape
    attention(std::size_t batch, std::size_t seq) const
    {
        return {batch, heads, seq, head_dim};
    }
};

/** @return Llama-7B shapes. */
inline ModelShapes
llama7b()
{
    return ModelShapes{4096, 32, 128};
}

/** @return Llama-65B shapes. */
inline ModelShapes
llama65b()
{
    return ModelShapes{8192, 64, 128};
}

/** Format a latency ratio like the paper's relative plots. */
std::string formatRatio(double value, double baseline);

/** Plan + estimate a VQ attention kernel at one optimization level. */
kernels::KernelResult attnAtLevel(const gpusim::GpuSpec &spec,
                                  const engine::AttnShape &shape,
                                  const vq::VQConfig &cfg,
                                  engine::OptLevel level);

/** Plan + estimate a VQ weight kernel at one optimization level. */
kernels::KernelResult weightAtLevel(const gpusim::GpuSpec &spec,
                                    engine::OpKind kind,
                                    const engine::GemmShape &shape,
                                    const vq::VQConfig &cfg,
                                    engine::OptLevel level);

/** @return the best (lowest-latency) level of the O1..O4 ladder. */
kernels::KernelResult bestAttn(const gpusim::GpuSpec &spec,
                               const engine::AttnShape &shape,
                               const vq::VQConfig &cfg);

kernels::KernelResult bestWeight(const gpusim::GpuSpec &spec,
                                 engine::OpKind kind,
                                 const engine::GemmShape &shape,
                                 const vq::VQConfig &cfg);

} // namespace vqllm::bench
