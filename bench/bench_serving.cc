/**
 * @file
 * Serving-throughput comparison: sustained QPS under an SLO for FP16,
 * element-wise 4-bit, VQ-LLM 4-bit and VQ-LLM 2-bit.
 *
 * For each scheme the harness (1) serves a fixed reference load and
 * reports the latency profile, then (2) searches the largest arrival
 * rate whose latency percentiles stay inside the SLO (p95 TTFT and p95
 * TBT) with no preemption storms — the "max QPS under SLO" a capacity
 * planner provisions against.  Quantized KV caches win twice: smaller
 * weights leave more HBM to the block pool, and fewer KV bytes per
 * token stretch that pool over more concurrent contexts, so VQ schemes
 * saturate at strictly higher QPS than FP16.
 *
 * A tensor-parallel sweep (degree 1/2/4/8 x scheme) serves the same
 * load on sharded deployments, recording throughput, latency tails,
 * the collective-time fraction and the busy-time breakdown
 * (prefill/decode/comm/codebook-upload us) per cell.  A shared-system-
 * prompt sweep serves identical multi-tenant traces with the
 * cross-request KV prefix cache off and on (per scheme, equal seed and
 * QPS), recording TTFT/TBT, prefill time, tokens served from cache and
 * the hit rate.  A KV-scheme sweep holds the weights at FP16 (equal
 * HBM left for the block pool in every cell) and varies only the KV
 * storage scheme (FP16 / VQ-4 / VQ-2) under a KV-bound load,
 * recording bytes/token, the pool capacity multiplier, the attention
 * dequant overhead, the peak number of concurrently running sequences
 * and the max QPS under SLO — isolating what compressing the cache
 * alone buys.  Results land in BENCH_serving.json (plan_cache +
 * tp_sweep + prefix_sweep + kv_sweep), which CI validates via
 * scripts/check_bench_json.py.
 *
 * `--smoke` runs shortened workloads and skips the SLO bisections (CI
 * schema-check mode); the JSON schema is identical either way.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "compiler/disk_cache.h"
#include "serving/simulator.h"

using namespace vqllm;

namespace {

/** SLO of the capacity search. */
constexpr double kTtftP95SloUs = 1500e3; // 1.5 s to first token
constexpr double kTbtP95SloUs = 200e3;   // 200 ms between tokens

/** Arrival-window seconds of one simulation (shortened by --smoke). */
double g_duration_s = 15;

/** The one workload parameterization the scheme comparison uses. */
serving::SimulatorConfig
makeConfig(llm::QuantScheme scheme, double qps)
{
    serving::SimulatorConfig cfg;
    cfg.scheme = scheme;
    cfg.workload.qps = qps;
    cfg.workload.duration_s = g_duration_s;
    cfg.workload.seed = 42;
    return cfg;
}

/** Prefill-heavy load of the chunked-prefill sweep: long prompts with
 *  short answers (summarization/extraction shape), so whole-prompt
 *  prefill iterations are long enough to stall every running decode
 *  and the stalls land inside the TBT p99. */
serving::SimulatorConfig
makePrefillHeavyConfig(llm::QuantScheme scheme, double qps,
                       std::size_t chunk_tokens)
{
    serving::SimulatorConfig cfg = makeConfig(scheme, qps);
    cfg.workload.prompt_len_median = 3072;
    cfg.workload.prompt_len_max = 8192;
    cfg.workload.gen_tokens_median = 32;
    cfg.scheduler.chunk_tokens = chunk_tokens;
    return cfg;
}

/** Multi-tenant load of the shared-prefix sweep: every prompt opens
 *  with one of four 1536-token system prompts over a 512-token median
 *  tail (agent/RAG shape), so well over half of all prefill demand
 *  repeats across requests and the prefix cache can convert it into
 *  block mapping. */
constexpr std::size_t kSharedPrefixTokens = 1536;

serving::SimulatorConfig
makeSharedPrefixConfig(llm::QuantScheme scheme, double qps, bool cache)
{
    serving::SimulatorConfig cfg = makeConfig(scheme, qps);
    cfg.workload.prompt_len_median = 512;
    cfg.workload.prefix_groups = 4;
    cfg.workload.prefix_tokens = kSharedPrefixTokens;
    cfg.scheduler.chunk_tokens = 512;
    cfg.prefix_cache = cache;
    return cfg;
}

/** KV-bound load of the KV-scheme sweep: long prompts with long
 *  answers (chat-with-context shape) so resident KV — not compute —
 *  is the binding resource.  Weights stay FP16 in every cell, which
 *  pins the pool budget; only the KV storage scheme varies, so any
 *  capacity difference is the compression factor alone. */
serving::SimulatorConfig
makeKvBoundConfig(llm::KvScheme kv, double qps)
{
    serving::SimulatorConfig cfg = makeConfig(llm::QuantScheme::FP16, qps);
    cfg.kv_scheme = kv;
    cfg.workload.prompt_len_median = 2048;
    cfg.workload.prompt_len_max = 6144;
    cfg.workload.gen_tokens_median = 256;
    cfg.scheduler.chunk_tokens = 512;
    return cfg;
}

bool
meetsSlo(const serving::ServingReport &r)
{
    return r.ttft.p95_us <= kTtftP95SloUs &&
           r.tbt.p95_us <= kTbtP95SloUs && r.rejected_requests == 0;
}

/** Largest sustainable QPS via bisection on [lo, hi). */
template <typename MakeConfig>
double
maxQpsUnderSlo(MakeConfig &&make)
{
    double lo = 0.25, hi = 64.0;
    auto runAt = [&](double qps) {
        return serving::ServingSimulator(make(qps)).run();
    };
    if (!meetsSlo(runAt(lo)))
        return 0.0;
    while (hi - lo > 0.25) {
        double mid = 0.5 * (lo + hi);
        if (meetsSlo(runAt(mid)))
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

} // namespace

/** One cell of the tensor-parallel sweep (for the JSON report). */
struct TpCell
{
    llm::QuantScheme scheme;
    int degree;
    serving::ServingReport report;
};

/** One cell of the shared-prefix sweep (for the JSON report). */
struct PrefixCell
{
    llm::QuantScheme scheme;
    bool cache;
    serving::ServingReport report;
};

/** One cell of the KV-scheme sweep (for the JSON report). */
struct KvCell
{
    llm::KvScheme kv;
    serving::ServingReport report;
    double max_qps = 0;
};

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else {
            std::fprintf(stderr,
                         "bench_serving: unknown flag '%s' (only "
                         "--smoke is accepted)\n",
                         argv[i]);
            return 2;
        }
    }
    if (smoke)
        g_duration_s = 6;

    const double ref_qps = 8.0;
    std::printf("Serving comparison: Llama-7B on %s, Poisson arrivals, "
                "seed 42%s\n\n",
                gpusim::rtx4090().name.c_str(),
                smoke ? " (smoke mode)" : "");

    std::printf("Latency profile at the reference load (%.0f QPS, "
                "%.0f s):\n\n",
                ref_qps, g_duration_s);
    TextTable profile({"scheme", "TTFT p95 (ms)", "TBT p95 (ms)",
                       "tok/s", "KV peak", "preempt", "book hit"});
    // The per-scheme reference-load runs are independent: fan them out
    // on the host runtime (reports come back in scheme order).
    std::vector<serving::SimulatorConfig> ref_cfgs;
    for (auto scheme : llm::kAllQuantSchemes)
        ref_cfgs.push_back(makeConfig(scheme, ref_qps));
    auto ref_reports = serving::ServingSimulator::runMany(ref_cfgs);
    for (std::size_t i = 0; i < ref_cfgs.size(); ++i) {
        auto scheme = ref_cfgs[i].scheme;
        const auto &r = ref_reports[i];
        profile.addRow(
            {llm::quantSchemeName(scheme),
             formatDouble(r.ttft.p95_us / 1e3, 1),
             formatDouble(r.tbt.p95_us / 1e3, 1),
             formatDouble(r.tokens_per_sec, 0),
             formatBytes(static_cast<double>(r.kv_peak_bytes)),
             std::to_string(r.preemptions),
             formatPercent(r.codebook_hit_rate, 1)});
    }
    std::printf("%s\n", profile.render().c_str());

    if (!smoke) {
    std::printf("Max QPS under SLO (p95 TTFT <= %.1f s, p95 TBT <= "
                "%.0f ms):\n\n",
                kTtftP95SloUs / 1e6, kTbtP95SloUs / 1e3);
    TextTable capacity({"scheme", "max QPS", "vs FP16"});
    double fp16_qps = 0;
    for (auto scheme : llm::kAllQuantSchemes) {
        double qps = maxQpsUnderSlo(
            [&](double q) { return makeConfig(scheme, q); });
        if (scheme == llm::QuantScheme::FP16)
            fp16_qps = qps;
        capacity.addRow({llm::quantSchemeName(scheme),
                         formatDouble(qps, 2),
                         fp16_qps > 0
                             ? formatDouble(qps / fp16_qps, 2) + "x"
                             : "-"});
    }
    std::printf("%s\n", capacity.render().c_str());
    std::printf("quantized KV caches turn kernel-level speedups into "
                "capacity: more HBM left for\nthe block pool and fewer "
                "bytes per cached token raise the sustainable arrival "
                "rate.\n\n");

    // ---- Chunked-prefill sweep under a prefill-heavy workload.
    const double heavy_qps = 1.6;
    const std::size_t chunk = 768;
    std::printf("Chunked prefill under prefill bursts (prompt median "
                "3072 tokens, gen median 32, %.1f QPS):\n\n",
                heavy_qps);
    TextTable chunked({"scheme", "chunk", "TBT p99 (ms)", "TBT p95 (ms)",
                       "TTFT p95 (ms)", "max QPS"});
    struct SweepCell
    {
        llm::QuantScheme scheme;
        std::size_t chunk;
    };
    std::vector<SweepCell> cells;
    for (auto scheme : {llm::QuantScheme::FP16, llm::QuantScheme::VQ4})
        for (std::size_t c : {std::size_t{0}, chunk})
            cells.push_back({scheme, c});
    // The reference-load runs fan out via runMany; the per-cell SLO
    // bisections are equally independent (each internally sequential
    // and deterministic), so fan them out too.
    std::vector<serving::SimulatorConfig> cfgs;
    for (const auto &cell : cells)
        cfgs.push_back(
            makePrefillHeavyConfig(cell.scheme, heavy_qps, cell.chunk));
    auto reports = serving::ServingSimulator::runMany(cfgs);
    std::vector<double> max_qps(cells.size());
    par::parallelFor(cells.size(), 1, [&](const par::ChunkRange &r) {
        for (std::size_t i = r.begin; i < r.end; ++i)
            max_qps[i] = maxQpsUnderSlo([&](double q) {
                return makePrefillHeavyConfig(cells[i].scheme, q,
                                              cells[i].chunk);
            });
    });
    for (std::size_t i = 0; i < cells.size(); ++i)
        chunked.addRow(
            {llm::quantSchemeName(cells[i].scheme),
             cells[i].chunk == 0 ? "off" : std::to_string(cells[i].chunk),
             formatDouble(reports[i].tbt.p99_us / 1e3, 1),
             formatDouble(reports[i].tbt.p95_us / 1e3, 1),
             formatDouble(reports[i].ttft.p95_us / 1e3, 1),
             formatDouble(max_qps[i], 2)});
    std::printf("%s\n", chunked.render().c_str());
    std::printf("slicing prompts into %zu-token chunks mixed with "
                "decode steps bounds the stall a\nlong prefill inflicts "
                "on running sequences: TBT tails drop without giving "
                "up\nsustainable arrival rate.\n\n",
                chunk);
    } // !smoke

    // ---- Plan-cache effect on iteration pricing --------------------
    // The same VQ4 simulation twice against one shared engine: the
    // first run compiles every kernel cold, the second prices its
    // steady-state decode iterations entirely from the plan cache.
    serving::ServingReport cold_report, warm_report;
    double cold_ms = 0, warm_ms = 0;
    {
        using Clock = std::chrono::steady_clock;
        compiler::Engine eng(gpusim::rtx4090());
        auto timedRun = [&] {
            auto cfg = makeConfig(llm::QuantScheme::VQ4, ref_qps);
            cfg.engine = &eng;
            auto t0 = Clock::now();
            auto report = serving::ServingSimulator(cfg).run();
            double ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - t0)
                            .count();
            return std::make_pair(report, ms);
        };
        std::tie(cold_report, cold_ms) = timedRun();
        std::tie(warm_report, warm_ms) = timedRun();
        std::printf("Plan-cache pricing (VQ4, %.0f QPS, shared "
                    "compiler::Engine):\n\n",
                    ref_qps);
        TextTable cache_tbl({"run", "wall (ms)", "hit rate", "hits",
                             "misses"});
        cache_tbl.addRow(
            {"cold", formatDouble(cold_ms, 1),
             formatPercent(cold_report.planCacheHitRate(), 1),
             std::to_string(cold_report.plan_cache_hits),
             std::to_string(cold_report.plan_cache_misses)});
        cache_tbl.addRow(
            {"cached", formatDouble(warm_ms, 1),
             formatPercent(warm_report.planCacheHitRate(), 1),
             std::to_string(warm_report.plan_cache_hits),
             std::to_string(warm_report.plan_cache_misses)});
        std::printf("%s\n", cache_tbl.render().c_str());
        std::printf("steady-state iterations repeat a handful of "
                    "bucketed shapes, so pricing them is\ncache hits; "
                    "a warm cache removes the cold-compile tail "
                    "entirely (%.2fx wall-clock).\n\n",
                    warm_ms > 0 ? cold_ms / warm_ms : 0.0);
    }

    // ---- Persistent kernel cache: disk-warm cold start -------------
    // Three cold starts of the same VQ4 load, each against a FRESH
    // compiler::Engine (empty in-memory cache), differing only in the
    // disk tier (DESIGN.md Sec. 13):
    //   mem-cold  - no disk tier: every kernel plans from scratch,
    //   populate  - empty cache dir: plans from scratch and admits,
    //   disk-warm - warm cache dir: every compile deserializes.
    // The disk tier only moves where artifacts come from, never what
    // they are, so all three serving reports must be byte-identical.
    double mem_cold_ms = 0, disk_warm_ms = 0;
    compiler::DiskCacheStats disk_cold_stats, disk_warm_stats;
    bool disk_reports_identical = false;
    {
        namespace fs = std::filesystem;
        using Clock = std::chrono::steady_clock;
        const std::string cache_dir = "bench_kernel_cache";
        std::error_code ec;
        fs::remove_all(cache_dir, ec);

        auto timedRun = [&](std::shared_ptr<compiler::DiskCache> disk,
                            serving::ServingReport &report) {
            compiler::Engine eng(gpusim::rtx4090());
            if (disk)
                eng.setDiskCache(disk);
            auto cfg = makeConfig(llm::QuantScheme::VQ4, ref_qps);
            cfg.engine = &eng;
            auto t0 = Clock::now();
            report = serving::ServingSimulator(cfg).run();
            return std::chrono::duration<double, std::milli>(
                       Clock::now() - t0)
                .count();
        };

        serving::ServingReport mem_report, populate_report, warm_report;
        mem_cold_ms = timedRun(nullptr, mem_report);
        {
            auto disk = compiler::DiskCache::open(cache_dir);
            timedRun(disk, populate_report);
            disk_cold_stats = disk->stats();
        } // drop the handle so the next open() sees a cold instance
        {
            auto disk = compiler::DiskCache::open(cache_dir);
            disk_warm_ms = timedRun(disk, warm_report);
            disk_warm_stats = disk->stats();
        }
        disk_reports_identical =
            mem_report.json() == populate_report.json() &&
            mem_report.json() == warm_report.json();

        std::printf("Persistent kernel cache (VQ4, %.0f QPS, fresh "
                    "engine per run):\n\n",
                    ref_qps);
        TextTable disk_tbl({"run", "wall (ms)", "disk hits",
                            "disk misses", "admits"});
        disk_tbl.addRow({"mem-cold", formatDouble(mem_cold_ms, 1), "-",
                         "-", "-"});
        disk_tbl.addRow(
            {"populate", "-",
             std::to_string(disk_cold_stats.hits),
             std::to_string(disk_cold_stats.misses),
             std::to_string(disk_cold_stats.admits)});
        disk_tbl.addRow(
            {"disk-warm", formatDouble(disk_warm_ms, 1),
             std::to_string(disk_warm_stats.hits),
             std::to_string(disk_warm_stats.misses),
             std::to_string(disk_warm_stats.admits)});
        std::printf("%s\n", disk_tbl.render().c_str());
        std::printf("a warm cache directory turns every cold-start "
                    "compile into a deserialization:\n%.2fx wall-clock "
                    "vs the in-memory-cold run, zero plan searches, "
                    "reports %s.\n\n",
                    disk_warm_ms > 0 ? mem_cold_ms / disk_warm_ms : 0.0,
                    disk_reports_identical ? "byte-identical"
                                           : "DIVERGED");
        fs::remove_all(cache_dir, ec);
    }

    // ---- Tensor-parallel sweep -------------------------------------
    // The same reference load on sharded deployments: degree 1/2/4/8
    // per scheme.  Sharded decode shortens TBT while the two per-layer
    // ring all-reduces claim a growing collective fraction — and the
    // per-device pools grow because each device holds 1/G of the
    // weights.
    std::vector<TpCell> tp_cells;
    {
        std::printf("Tensor-parallel sweep (%.0f QPS, NVLink-class "
                    "links, per-layer ring all-reduces):\n\n",
                    ref_qps);
        std::vector<serving::SimulatorConfig> cfgs;
        std::vector<TpCell> cells;
        for (auto scheme : llm::kAllQuantSchemes)
            for (int degree : {1, 2, 4, 8}) {
                auto cfg = makeConfig(scheme, ref_qps);
                cfg.tp.degree = degree;
                cfgs.push_back(cfg);
                cells.push_back({scheme, degree, {}});
            }
        auto reports = serving::ServingSimulator::runMany(cfgs);
        TextTable tp_tbl({"scheme", "TP", "tok/s", "TBT p95 (ms)",
                          "TTFT p95 (ms)", "comm %", "KV agg (GB)"});
        for (std::size_t i = 0; i < cells.size(); ++i) {
            cells[i].report = reports[i];
            const auto &r = reports[i];
            tp_tbl.addRow(
                {llm::quantSchemeName(cells[i].scheme),
                 std::to_string(cells[i].degree),
                 formatDouble(r.tokens_per_sec, 0),
                 formatDouble(r.tbt.p95_us / 1e3, 1),
                 formatDouble(r.ttft.p95_us / 1e3, 1),
                 formatPercent(r.comm_fraction, 1),
                 formatDouble(
                     static_cast<double>(r.kv_capacity_bytes) / 1e9,
                     1)});
        }
        std::printf("%s\n", tp_tbl.render().c_str());
        std::printf("sharding cuts per-token latency until collectives "
                    "dominate; VQ schemes keep their\nedge at every "
                    "degree and the per-device KV pools grow with the "
                    "weight shards.\n\n");
        tp_cells = std::move(cells);
    }

    // ---- Shared-system-prompt sweep (prefix cache off vs on) -------
    // Identical arrival traces per pair (same seed and QPS, the cache
    // flag does not perturb workload generation): cache-off prefills
    // every shared system prompt from scratch, cache-on maps the
    // repeated blocks in by reference and prefills only the tails.
    const double prefix_qps = 4.0;
    const std::uint64_t prefix_seed = 42;
    std::vector<PrefixCell> prefix_cells;
    std::uint64_t prefix_prompt_tokens = 0;
    {
        std::printf("Shared-system-prompt sweep (4 tenants x 1536 "
                    "prefix tokens, 512-token median tails,\n%.0f QPS, "
                    "prefix cache off vs on):\n\n",
                    prefix_qps);
        auto trace = serving::generateWorkload(
            makeSharedPrefixConfig(llm::QuantScheme::FP16, prefix_qps,
                                   false)
                .workload);
        for (const auto &r : trace)
            prefix_prompt_tokens += r.prompt_len;
        std::vector<serving::SimulatorConfig> cfgs;
        std::vector<PrefixCell> cells;
        for (auto scheme : llm::kAllQuantSchemes)
            for (bool cache : {false, true}) {
                cfgs.push_back(
                    makeSharedPrefixConfig(scheme, prefix_qps, cache));
                cells.push_back({scheme, cache, {}});
            }
        auto reports = serving::ServingSimulator::runMany(cfgs);
        TextTable tbl({"scheme", "cache", "TTFT mean (ms)",
                       "TTFT p95 (ms)", "TBT p95 (ms)", "prefill (s)",
                       "saved tok", "hit rate"});
        for (std::size_t i = 0; i < cells.size(); ++i) {
            cells[i].report = reports[i];
            const auto &r = reports[i];
            tbl.addRow({llm::quantSchemeName(cells[i].scheme),
                        cells[i].cache ? "on" : "off",
                        formatDouble(r.ttft.mean_us / 1e3, 1),
                        formatDouble(r.ttft.p95_us / 1e3, 1),
                        formatDouble(r.tbt.p95_us / 1e3, 1),
                        formatDouble(r.prefill_us / 1e6, 2),
                        std::to_string(r.prefix_matched_tokens),
                        formatPercent(r.prefix_hit_rate, 1)});
        }
        std::printf("%s\n", tbl.render().c_str());
        double worst_reduction = 1.0;
        for (std::size_t i = 0; i + 1 < cells.size(); i += 2) {
            double off_ttft = cells[i].report.ttft.mean_us;
            double on_ttft = cells[i + 1].report.ttft.mean_us;
            if (off_ttft > 0)
                worst_reduction =
                    std::min(worst_reduction, 1.0 - on_ttft / off_ttft);
        }
        std::printf("mapping the shared prefix in from cache removes "
                    "its prefill from the critical path:\nmean TTFT "
                    "drops %.0f%%+ at every scheme on identical "
                    "arrival traces.\n\n",
                    worst_reduction * 100.0);
        prefix_cells = std::move(cells);
    }

    // ---- KV-scheme sweep (FP16 weights, varying KV storage) --------
    // Every cell serves the same KV-bound trace from the same pool
    // budget (FP16 weights fix the HBM split); only the KV scheme
    // changes.  Compressing the cache multiplies how many tokens the
    // pool holds, which shows up directly as more concurrently
    // running sequences and a higher sustainable arrival rate.
    const double kv_qps = 8.0;
    std::vector<KvCell> kv_cells;
    {
        std::printf("KV-scheme sweep (FP16 weights, prompt median 2048, "
                    "gen median 256, %.0f QPS,\nequal pool bytes per "
                    "cell):\n\n",
                    kv_qps);
        const llm::KvScheme kv_schemes[] = {llm::KvScheme::FP16,
                                            llm::KvScheme::VQ4,
                                            llm::KvScheme::VQ2};
        std::vector<serving::SimulatorConfig> cfgs;
        std::vector<KvCell> cells;
        for (auto kv : kv_schemes) {
            cfgs.push_back(makeKvBoundConfig(kv, kv_qps));
            cells.push_back({kv, {}, 0.0});
        }
        auto reports = serving::ServingSimulator::runMany(cfgs);
        for (std::size_t i = 0; i < cells.size(); ++i)
            cells[i].report = reports[i];
        if (!smoke) {
            // Max-QPS bisections per KV scheme, fanned out like the
            // chunked-prefill sweep (each internally deterministic).
            par::parallelFor(
                cells.size(), 1, [&](const par::ChunkRange &r) {
                    for (std::size_t i = r.begin; i < r.end; ++i)
                        cells[i].max_qps = maxQpsUnderSlo([&](double q) {
                            return makeKvBoundConfig(cells[i].kv, q);
                        });
                });
        }
        TextTable kv_tbl({"KV scheme", "B/token", "capacity", "peak run",
                          "TTFT p95 (ms)", "TBT p95 (ms)", "tok/s",
                          "attn delta (ms)", "max QPS"});
        for (const auto &cell : cells) {
            const auto &r = cell.report;
            kv_tbl.addRow(
                {llm::kvSchemeName(cell.kv),
                 std::to_string(r.kv_bytes_per_token),
                 formatDouble(r.kv_capacity_multiplier, 2) + "x",
                 std::to_string(r.peak_running_seqs),
                 formatDouble(r.ttft.p95_us / 1e3, 1),
                 formatDouble(r.tbt.p95_us / 1e3, 1),
                 formatDouble(r.tokens_per_sec, 0),
                 formatDouble(r.kv_dequant_us / 1e3, 2),
                 smoke ? "-" : formatDouble(cell.max_qps, 2)});
        }
        std::printf("%s\n", kv_tbl.render().c_str());
        std::printf("with weights (and the pool budget) held at FP16, "
                    "compressing only the KV cache\nmultiplies resident "
                    "context: more sequences run concurrently from the "
                    "same bytes,\nand reading fewer KV bytes per "
                    "attention step outweighs the dequant cost (the\n"
                    "attn delta is the signed decode-attention time vs "
                    "FP16 KV).\n\n");
        kv_cells = std::move(cells);
    }

    // ---- JSON report (validated by scripts/check_bench_json.py) ----
    std::FILE *f = std::fopen("BENCH_serving.json", "w");
    if (f != nullptr) {
        std::fprintf(
            f,
            "{\n  \"plan_cache\": {\"cold_ms\": %.3f, "
            "\"cached_ms\": %.3f, \"speedup\": %.3f,\n"
            "    \"cold_hit_rate\": %.4f, \"cached_hit_rate\": "
            "%.4f,\n    \"cold_misses\": %llu, \"cached_misses\": "
            "%llu},\n",
            cold_ms, warm_ms, warm_ms > 0 ? cold_ms / warm_ms : 0.0,
            cold_report.planCacheHitRate(),
            warm_report.planCacheHitRate(),
            static_cast<unsigned long long>(
                cold_report.plan_cache_misses),
            static_cast<unsigned long long>(
                warm_report.plan_cache_misses));
        std::fprintf(
            f,
            "  \"disk_cache\": {\"mem_cold_ms\": %.3f, "
            "\"disk_warm_ms\": %.3f, \"speedup\": %.3f,\n"
            "    \"cold_misses\": %llu, \"cold_admits\": %llu, "
            "\"warm_hits\": %llu, \"warm_misses\": %llu,\n"
            "    \"reports_identical\": %s},\n",
            mem_cold_ms, disk_warm_ms,
            disk_warm_ms > 0 ? mem_cold_ms / disk_warm_ms : 0.0,
            static_cast<unsigned long long>(disk_cold_stats.misses),
            static_cast<unsigned long long>(disk_cold_stats.admits),
            static_cast<unsigned long long>(disk_warm_stats.hits),
            static_cast<unsigned long long>(disk_warm_stats.misses),
            disk_reports_identical ? "true" : "false");
        std::fprintf(f, "  \"tp_sweep\": [\n");
        for (std::size_t i = 0; i < tp_cells.size(); ++i) {
            const auto &cell = tp_cells[i];
            const auto &r = cell.report;
            std::fprintf(
                f,
                "    {\"scheme\": \"%s\", \"degree\": %d, "
                "\"tokens_per_sec\": %.3f, \"tbt_p95_ms\": %.3f, "
                "\"ttft_p95_ms\": %.3f, \"comm_fraction\": %.5f, "
                "\"kv_capacity_gb\": %.3f, \"preemptions\": %llu, "
                "\"completed\": %llu, "
                "\"busy_us\": %.3f, \"prefill_us\": %.3f, "
                "\"decode_us\": %.3f, \"comm_us\": %.3f, "
                "\"codebook_upload_us\": %.3f}%s\n",
                llm::quantSchemeName(cell.scheme), cell.degree,
                r.tokens_per_sec, r.tbt.p95_us / 1e3,
                r.ttft.p95_us / 1e3, r.comm_fraction,
                static_cast<double>(r.kv_capacity_bytes) / 1e9,
                static_cast<unsigned long long>(r.preemptions),
                static_cast<unsigned long long>(r.completed_requests),
                r.busy_time_us, r.prefill_us, r.decode_us, r.comm_us,
                r.codebook_upload_us,
                i + 1 < tp_cells.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n  \"prefix_sweep\": [\n");
        for (std::size_t i = 0; i < prefix_cells.size(); ++i) {
            const auto &cell = prefix_cells[i];
            const auto &r = cell.report;
            std::fprintf(
                f,
                "    {\"scheme\": \"%s\", \"prefix_cache\": %s, "
                "\"seed\": %llu, \"qps\": %.3f, "
                "\"ttft_mean_ms\": %.3f, \"ttft_p95_ms\": %.3f, "
                "\"tbt_p95_ms\": %.3f, \"prefill_us\": %.3f, "
                "\"busy_us\": %.3f, \"tokens_saved\": %llu, "
                "\"prompt_tokens\": %llu, \"prefix_len\": %llu, "
                "\"hit_rate\": %.6f, "
                "\"cow_forks\": %llu, \"preemptions\": %llu, "
                "\"completed\": %llu}%s\n",
                llm::quantSchemeName(cell.scheme),
                cell.cache ? "true" : "false",
                static_cast<unsigned long long>(prefix_seed),
                prefix_qps, r.ttft.mean_us / 1e3, r.ttft.p95_us / 1e3,
                r.tbt.p95_us / 1e3, r.prefill_us, r.busy_time_us,
                static_cast<unsigned long long>(
                    r.prefix_matched_tokens),
                static_cast<unsigned long long>(prefix_prompt_tokens),
                static_cast<unsigned long long>(kSharedPrefixTokens),
                r.prefix_hit_rate,
                static_cast<unsigned long long>(r.cow_forks),
                static_cast<unsigned long long>(r.preemptions),
                static_cast<unsigned long long>(r.completed_requests),
                i + 1 < prefix_cells.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n  \"kv_sweep\": [\n");
        for (std::size_t i = 0; i < kv_cells.size(); ++i) {
            const auto &cell = kv_cells[i];
            const auto &r = cell.report;
            std::fprintf(
                f,
                "    {\"weight_scheme\": \"FP16\", \"kv_scheme\": "
                "\"%s\", \"kv_scale\": %.4f, "
                "\"bytes_per_token\": %llu, "
                "\"capacity_multiplier\": %.4f, "
                "\"pool_bytes\": %llu, \"peak_running\": %llu, "
                "\"dequant_us\": %.3f, \"max_qps_slo\": %.3f, "
                "\"qps\": %.3f, \"tokens_per_sec\": %.3f, "
                "\"ttft_p95_ms\": %.3f, \"tbt_p95_ms\": %.3f, "
                "\"preemptions\": %llu, \"rejected\": %llu, "
                "\"completed\": %llu}%s\n",
                llm::kvSchemeToken(cell.kv),
                llm::kvSchemeScale(cell.kv),
                static_cast<unsigned long long>(r.kv_bytes_per_token),
                r.kv_capacity_multiplier,
                static_cast<unsigned long long>(r.kv_capacity_bytes),
                static_cast<unsigned long long>(r.peak_running_seqs),
                r.kv_dequant_us, cell.max_qps, kv_qps,
                r.tokens_per_sec, r.ttft.p95_us / 1e3,
                r.tbt.p95_us / 1e3,
                static_cast<unsigned long long>(r.preemptions),
                static_cast<unsigned long long>(r.rejected_requests),
                static_cast<unsigned long long>(r.completed_requests),
                i + 1 < kv_cells.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote BENCH_serving.json\n");
    }
    return 0;
}
