/**
 * @file
 * Reproduces paper Sec. VII-F ("Quantization Overhead"): the cost of
 * on-the-fly KV-cache quantization.
 *
 * Paper claims: decode-phase quantization of a new token's key/value is
 * negligible (<1 us); prefill-phase quantization of all prompt tokens
 * is <10% of the linear projections; and neither blocks the subsequent
 * computation.  Weight quantization has no runtime overhead at all.
 */
#include <cstdio>

#include "bench_common.h"
#include "vq/kv_append.h"

using namespace vqllm;
using namespace vqllm::bench;

int
main()
{
    const auto &spec = gpusim::rtx4090();
    std::printf("Sec. VII-F: on-the-fly KV quantization overhead "
                "(Llama-7B, batch 16, prompt 1024, %s)\n\n",
                spec.name.c_str());

    TextTable t({"config", "decode us/token/layer",
                 "decode us/step (batch x layers)", "prefill us/layer",
                 "prefill vs projections"});
    for (const auto &cfg : {vq::cq4(), vq::cq2()}) {
        auto est = vq::estimateQuantOverhead(spec, cfg, 16, 1024, 4096,
                                             32);
        t.addRow({cfg.name, formatDouble(est.decode_us_per_token, 3),
                  formatDouble(est.decode_us_per_step, 1),
                  formatDouble(est.prefill_us_per_layer, 1),
                  formatPercent(est.prefill_fraction_of_projections,
                                2)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("paper: <1 us per decoded token; <10%% of prefill "
                "linear projections.\n\n");

    // Functional demonstration: incremental append agrees with batch
    // quantization and reconstructs the cache faithfully.
    Rng rng(3);
    const std::size_t prompt = 96, gen = 32, channels = 32;
    auto kv3 = generateKvCache(1, prompt + gen, channels, rng);
    Tensor<float> all({prompt + gen, channels});
    for (std::size_t t_i = 0; t_i < prompt + gen; ++t_i)
        for (std::size_t c = 0; c < channels; ++c)
            all.at(t_i, c) = kv3.at(std::size_t(0), t_i, c);
    Tensor<float> prefill({prompt, channels});
    for (std::size_t t_i = 0; t_i < prompt; ++t_i)
        for (std::size_t c = 0; c < channels; ++c)
            prefill.at(t_i, c) = all.at(t_i, c);

    vq::VQConfig cfg = vq::cq2();
    cfg.num_entries = 32;
    vq::KMeansOptions opts;
    opts.max_iters = 8;
    vq::KvCacheQuantizer online(cfg, prefill, opts);
    for (std::size_t t_i = prompt; t_i < prompt + gen; ++t_i)
        online.append(all.data() + t_i * channels);

    auto rec = vq::VectorQuantizer::dequantize(online.cache());
    std::printf("functional check: %zu prefill + %zu appended tokens, "
                "reconstruction MSE %.4f (prompt-only %.4f)\n",
                prompt, gen, mse(all, rec),
                [&] {
                    Tensor<float> rp({prompt, channels}),
                        dp({prompt, channels});
                    auto d = vq::VectorQuantizer::dequantize(
                        online.cache());
                    for (std::size_t t_i = 0; t_i < prompt; ++t_i)
                        for (std::size_t c = 0; c < channels; ++c) {
                            rp.at(t_i, c) = prefill.at(t_i, c);
                            dp.at(t_i, c) = d.at(t_i, c);
                        }
                    return mse(rp, dp);
                }());
    std::printf("encode cost: %llu FMA flops per appended token "
                "(runs as a tensor-core matmul).\n",
                static_cast<unsigned long long>(
                    online.encodeFlopsPerToken()));
    return 0;
}
