/**
 * @file
 * Extension bench: tensor-parallel serving of Llama-65B (the paper's
 * Sec. VII-A future-work item).  Sweeps TP degree for FP16 and VQ-LLM
 * 4-bit over NVLink- and PCIe-class interconnects.
 */
#include <cstdio>

#include "bench_common.h"
#include "llm/tensor_parallel.h"

using namespace vqllm;
using namespace vqllm::bench;

int
main()
{
    using llm::QuantScheme;
    const auto &spec = gpusim::rtx4090();
    const auto &model = llm::llama65b();
    std::printf("Extension: tensor-parallel decode of %s (batch 16, "
                "1024+256 tokens, per-GPU %s)\n\n", model.name.c_str(),
                spec.name.c_str());

    for (auto [link_name, bw, lat] :
         {std::tuple{"NVLink (300 GB/s)", 300.0, 8.0},
          std::tuple{"PCIe (25 GB/s)", 25.0, 15.0}}) {
        TextTable t({"TP degree", "FP16 decode (ms)",
                     "VQ-4 decode (ms)", "VQ-4 speedup", "VQ-4 comm %",
                     "VQ-4 mem/GPU"});
        for (int degree : {1, 2, 4, 8}) {
            llm::TpConfig tp;
            tp.degree = degree;
            tp.link_bw_gbps = bw;
            tp.collective_latency_us = lat;
            auto fp16 = llm::estimateTensorParallel(
                spec, model, QuantScheme::FP16, tp);
            auto vq4 = llm::estimateTensorParallel(
                spec, model, QuantScheme::VQ4, tp);
            t.addRow({std::to_string(degree),
                      formatDouble(fp16.decode_us / 1000, 1),
                      formatDouble(vq4.decode_us / 1000, 1),
                      formatRatio(fp16.decode_us, vq4.decode_us),
                      formatPercent(vq4.comm_fraction, 1),
                      formatBytes(static_cast<double>(
                          vq4.memory_per_gpu))});
        }
        std::printf("%s:\n%s\n", link_name, t.render().c_str());
    }
    std::printf("VQ's advantage persists under TP; compression also "
                "cuts the per-GPU footprint so 65B\nfits fewer, "
                "smaller GPUs (the deployment argument of Sec. "
                "VII-A).\n");
    return 0;
}
