/**
 * @file
 * Fleet-serving comparison: replicas x router policy x prefill/decode
 * disaggregation, under the VQ4 KV cache.
 *
 * The fleet sweep serves a prefill-heavy load (long prompts, chunked
 * prefill) on 1/2/4-replica fleets per router policy, aggregated vs
 * disaggregated, then searches the largest fleet arrival rate whose
 * latency tails stay inside an interactive-streaming SLO (p95 TTFT
 * and a tight p95 TBT, no rejections) — the max fleet QPS a capacity
 * planner provisions against.  The tight token-rate SLO is the regime
 * disaggregation exists for: an aggregated replica interleaves prefill
 * chunks with decode steps, so every running sequence's TBT absorbs
 * chunk-length stalls and the tail violates the SLO long before the
 * hardware saturates.  Decode-role replicas never mix prefill into
 * their iterations, so TBT stays decode-pure while prefill replicas
 * absorb the compute bursts; the VQ4 KV cache shrinks the
 * prefill->decode handoff bytes by 4x, keeping the transfer stall out
 * of the tail.  At >= 2 replicas the disaggregated fleet sustains a
 * strictly higher max QPS than the aggregated same-hardware baseline.
 *
 * A router sweep serves one bursty multi-tenant load (square-wave
 * arrivals, shared system prompts) on a 4-replica aggregated fleet per
 * policy, recording the utilization spread and latency tails each
 * policy produces under the same traffic.  Results land in
 * BENCH_fleet.json (fleet_sweep + router_sweep), which CI validates
 * via scripts/check_bench_json.py.
 *
 * `--smoke` runs shortened workloads and skips the SLO bisections (CI
 * schema-check mode); the JSON schema is identical either way.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "compiler/disk_cache.h"
#include "fleet/fleet.h"
#include "serving/simulator.h"

using namespace vqllm;

namespace {

/** SLO of the capacity search.  TTFT matches bench_serving; the TBT
 *  bound is the interactive-streaming rate (20 tok/s) under which
 *  prefill/decode interference — not raw throughput — caps capacity. */
constexpr double kTtftP95SloUs = 1500e3; // 1.5 s to first token
constexpr double kTbtP95SloUs = 50e3;    // 50 ms between tokens

/** Arrival-window seconds of one simulation (shortened by --smoke). */
double g_duration_s = 15;

/** @return prefill replicas of an n-replica disaggregated fleet. */
std::size_t
prefillSplit(std::size_t replicas)
{
    return (replicas + 1) / 2;
}

/**
 * One fleet cell of the capacity sweep: n identical replicas (FP16
 * weights, VQ4 KV), prefill-heavy load with chunked prefill so the
 * aggregated baseline already fields its best mitigation.
 */
fleet::FleetConfig
makeFleetConfig(std::size_t replicas, fleet::RouterPolicy router,
                bool disagg, double qps)
{
    fleet::FleetConfig cfg;
    cfg.router = router;
    cfg.workload.qps = qps;
    cfg.workload.duration_s = g_duration_s;
    cfg.workload.seed = 42;
    cfg.workload.prompt_len_median = 3072;
    cfg.workload.prompt_len_max = 8192;
    cfg.workload.gen_tokens_median = 128;
    const std::size_t prefill_n = disagg ? prefillSplit(replicas) : 0;
    for (std::size_t i = 0; i < replicas; ++i) {
        fleet::ReplicaConfig rep;
        rep.sim.scheme = llm::QuantScheme::FP16;
        rep.sim.kv_scheme = llm::KvScheme::VQ4;
        rep.sim.scheduler.chunk_tokens = 512;
        rep.role = !disagg              ? fleet::ReplicaRole::Aggregated
                   : i < prefill_n      ? fleet::ReplicaRole::Prefill
                                        : fleet::ReplicaRole::Decode;
        cfg.replicas.push_back(rep);
    }
    return cfg;
}

/**
 * One router cell of the imbalance sweep: a 4-replica aggregated fleet
 * under bursty multi-tenant traffic (shared system prompts give the
 * prefix-affinity policy real groups to pin).
 */
fleet::FleetConfig
makeRouterConfig(fleet::RouterPolicy router, double qps)
{
    fleet::FleetConfig cfg = makeFleetConfig(4, router, false, qps);
    cfg.workload.arrival = serving::ArrivalPattern::Bursty;
    cfg.workload.prompt_len_median = 512;
    cfg.workload.prompt_len_max = 4096;
    cfg.workload.prefix_groups = 4;
    cfg.workload.prefix_tokens = 1536;
    for (auto &rep : cfg.replicas)
        rep.sim.prefix_cache = true;
    return cfg;
}

bool
meetsSlo(const fleet::FleetReport &r)
{
    return r.ttft.p95_us <= kTtftP95SloUs &&
           r.tbt.p95_us <= kTbtP95SloUs && r.rejected_requests == 0;
}

/** Largest sustainable fleet QPS via bisection on [lo, hi). */
template <typename MakeConfig>
double
maxQpsUnderSlo(MakeConfig &&make)
{
    double lo = 0.25, hi = 64.0;
    auto runAt = [&](double qps) {
        return fleet::FleetSimulator(make(qps)).run();
    };
    if (!meetsSlo(runAt(lo)))
        return 0.0;
    while (hi - lo > 0.25) {
        double mid = 0.5 * (lo + hi);
        if (meetsSlo(runAt(mid)))
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

/** One cell of the fleet capacity sweep (for the JSON report). */
struct FleetCell
{
    std::size_t replicas = 0;
    fleet::RouterPolicy router = fleet::RouterPolicy::RoundRobin;
    bool disagg = false;
    double ref_qps = 0;
    fleet::FleetReport report;
    double max_qps = 0;
};

/** One cell of the router sweep (for the JSON report). */
struct RouterCell
{
    fleet::RouterPolicy router = fleet::RouterPolicy::RoundRobin;
    fleet::FleetReport report;
};

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else {
            std::fprintf(stderr,
                         "bench_fleet: unknown flag '%s' (only "
                         "--smoke is accepted)\n",
                         argv[i]);
            return 2;
        }
    }
    if (smoke)
        g_duration_s = 6;

    std::printf("Fleet serving: Llama-7B replicas on %s, FP16 weights "
                "+ VQ4 KV, seed 42%s\n\n",
                gpusim::rtx4090().name.c_str(),
                smoke ? " (smoke mode)" : "");

    // ---- Fleet capacity sweep: replicas x router x disaggregation --
    // Reference load scales with the replica count so every fleet is
    // comparably stressed; the SLO bisection then finds each cell's
    // true capacity.
    const fleet::RouterPolicy routers[] = {
        fleet::RouterPolicy::RoundRobin,
        fleet::RouterPolicy::LeastLoaded,
        fleet::RouterPolicy::SloAware,
    };
    std::vector<FleetCell> cells;
    for (std::size_t replicas : {std::size_t{1}, std::size_t{2},
                                 std::size_t{4}})
        for (auto router : routers)
            for (bool disagg : {false, true}) {
                if (disagg && replicas < 2)
                    continue; // needs >= 1 prefill + >= 1 decode
                FleetCell cell;
                cell.replicas = replicas;
                cell.router = router;
                cell.disagg = disagg;
                cell.ref_qps = 1.5 * static_cast<double>(replicas);
                cells.push_back(cell);
            }
    // Fleet runs are internally sequential and deterministic; the
    // cells are independent, so fan them out on the host runtime.
    par::parallelFor(cells.size(), 1, [&](const par::ChunkRange &r) {
        for (std::size_t i = r.begin; i < r.end; ++i)
            cells[i].report =
                fleet::FleetSimulator(
                    makeFleetConfig(cells[i].replicas, cells[i].router,
                                    cells[i].disagg, cells[i].ref_qps))
                    .run();
    });
    if (!smoke) {
        par::parallelFor(
            cells.size(), 1, [&](const par::ChunkRange &r) {
                for (std::size_t i = r.begin; i < r.end; ++i)
                    cells[i].max_qps = maxQpsUnderSlo([&](double q) {
                        return makeFleetConfig(cells[i].replicas,
                                               cells[i].router,
                                               cells[i].disagg, q);
                    });
            });
    }

    std::printf("Capacity sweep (prompt median 3072, gen median 128, "
                "chunked prefill 512,\nreference load 1.5 QPS/replica; "
                "max QPS under p95 TTFT <= %.1f s, p95 TBT <= %.0f "
                "ms):\n\n",
                kTtftP95SloUs / 1e6, kTbtP95SloUs / 1e3);
    TextTable tbl({"replicas", "router", "mode", "TTFT p95 (ms)",
                   "TBT p95 (ms)", "tok/s", "KV xfer", "util spread",
                   "max QPS"});
    for (const auto &cell : cells) {
        const auto &r = cell.report;
        tbl.addRow({std::to_string(cell.replicas),
                    fleet::routerPolicyName(cell.router),
                    cell.disagg ? "disagg" : "aggregated",
                    formatDouble(r.ttft.p95_us / 1e3, 1),
                    formatDouble(r.tbt.p95_us / 1e3, 1),
                    formatDouble(r.fleet_tokens_per_sec, 0),
                    formatBytes(static_cast<double>(r.kv_transfer_bytes)),
                    formatDouble(r.util_imbalance, 3),
                    smoke ? "-" : formatDouble(cell.max_qps, 2)});
    }
    std::printf("%s\n", tbl.render().c_str());
    std::printf("decode replicas never interleave prefill chunks, so "
                "disaggregated TBT tails stay\ndecode-pure; the VQ4 KV "
                "cache shrinks every prefill->decode handoff 4x, and "
                "the\nfleet sustains more arrivals per replica than "
                "the aggregated baseline.\n\n");

    // ---- Router sweep under bursty multi-tenant traffic ------------
    const double router_qps = 12.0;
    const fleet::RouterPolicy all_routers[] = {
        fleet::RouterPolicy::RoundRobin,
        fleet::RouterPolicy::LeastLoaded,
        fleet::RouterPolicy::PrefixAffinity,
        fleet::RouterPolicy::SloAware,
    };
    std::vector<RouterCell> router_cells;
    for (auto router : all_routers)
        router_cells.push_back({router, {}});
    par::parallelFor(
        router_cells.size(), 1, [&](const par::ChunkRange &r) {
            for (std::size_t i = r.begin; i < r.end; ++i)
                router_cells[i].report =
                    fleet::FleetSimulator(makeRouterConfig(
                                              router_cells[i].router,
                                              router_qps))
                        .run();
        });
    std::printf("Router sweep (4 aggregated replicas, bursty arrivals "
                "at %.0f QPS mean, 4 tenants\nx 1536 shared prefix "
                "tokens, prefix cache on):\n\n",
                router_qps);
    TextTable rt({"router", "TTFT p95 (ms)", "TBT p95 (ms)", "tok/s",
                  "util min", "util max", "util spread"});
    for (const auto &cell : router_cells) {
        const auto &r = cell.report;
        rt.addRow({fleet::routerPolicyName(cell.router),
                   formatDouble(r.ttft.p95_us / 1e3, 1),
                   formatDouble(r.tbt.p95_us / 1e3, 1),
                   formatDouble(r.fleet_tokens_per_sec, 0),
                   formatDouble(r.util_min, 3),
                   formatDouble(r.util_max, 3),
                   formatDouble(r.util_imbalance, 3)});
    }
    std::printf("%s\n", rt.render().c_str());
    std::printf("load-aware policies absorb the bursts the round-robin "
                "cursor spreads blindly;\nprefix affinity trades some "
                "balance for per-tenant cache locality.\n\n");

    // ---- Persistent kernel cache shared across the fleet -----------
    // The same 2-replica fleet three times, each a full cold start
    // (every replica engine empty):
    //   mem-cold  - no disk tier: both replicas plan from scratch,
    //   populate  - empty shared dir: the first replica to compile a
    //               shape admits it; the second hits cross-replica,
    //   disk-warm - warm shared dir: zero plan searches fleet-wide.
    // One store serves the whole fleet (replicas open the same
    // canonical directory), and the reports stay byte-identical.
    double disk_mem_cold_ms = 0, disk_warm_ms = 0;
    compiler::DiskCacheStats disk_cold_stats, disk_warm_stats;
    bool disk_reports_identical = false;
    {
        namespace fs = std::filesystem;
        using Clock = std::chrono::steady_clock;
        const std::string cache_dir = "bench_fleet_kernel_cache";
        std::error_code ec;
        fs::remove_all(cache_dir, ec);

        auto makeCfg = [&](const std::string &dir) {
            fleet::FleetConfig cfg = makeFleetConfig(
                2, fleet::RouterPolicy::RoundRobin, false, 3.0);
            for (auto &rep : cfg.replicas)
                rep.sim.kernel_cache_dir = dir;
            return cfg;
        };
        auto timedRun = [&](const std::string &dir,
                            fleet::FleetReport &report) {
            auto t0 = Clock::now();
            report = fleet::FleetSimulator(makeCfg(dir)).run();
            return std::chrono::duration<double, std::milli>(
                       Clock::now() - t0)
                .count();
        };

        fleet::FleetReport mem_report, populate_report, warm_report;
        disk_mem_cold_ms = timedRun("", mem_report);
        {
            auto disk = compiler::DiskCache::open(cache_dir);
            timedRun(cache_dir, populate_report);
            disk_cold_stats = disk->stats();
        } // drop the handle so the next open() sees a cold instance
        {
            auto disk = compiler::DiskCache::open(cache_dir);
            disk_warm_ms = timedRun(cache_dir, warm_report);
            disk_warm_stats = disk->stats();
        }
        disk_reports_identical =
            mem_report.json() == populate_report.json() &&
            mem_report.json() == warm_report.json();

        std::printf("Persistent kernel cache (2 aggregated replicas, "
                    "one shared store):\n\n");
        TextTable disk_tbl({"run", "wall (ms)", "disk hits",
                            "disk misses", "admits"});
        disk_tbl.addRow({"mem-cold", formatDouble(disk_mem_cold_ms, 1),
                         "-", "-", "-"});
        disk_tbl.addRow({"populate", "-",
                         std::to_string(disk_cold_stats.hits),
                         std::to_string(disk_cold_stats.misses),
                         std::to_string(disk_cold_stats.admits)});
        disk_tbl.addRow({"disk-warm", formatDouble(disk_warm_ms, 1),
                         std::to_string(disk_warm_stats.hits),
                         std::to_string(disk_warm_stats.misses),
                         std::to_string(disk_warm_stats.admits)});
        std::printf("%s\n", disk_tbl.render().c_str());
        std::printf("the populate run already hits: replicas share one "
                    "store, so the second replica\nreuses what the "
                    "first admitted; a warm directory removes every "
                    "plan search\n(%.2fx wall-clock vs mem-cold, "
                    "reports %s).\n\n",
                    disk_warm_ms > 0 ? disk_mem_cold_ms / disk_warm_ms
                                     : 0.0,
                    disk_reports_identical ? "byte-identical"
                                           : "DIVERGED");
        fs::remove_all(cache_dir, ec);
    }

    // ---- JSON report (validated by scripts/check_bench_json.py) ----
    std::FILE *f = std::fopen("BENCH_fleet.json", "w");
    if (f != nullptr) {
        std::fprintf(f, "{\n  \"fleet_sweep\": [\n");
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const auto &cell = cells[i];
            const auto &r = cell.report;
            std::fprintf(
                f,
                "    {\"replicas\": %zu, \"router\": \"%s\", "
                "\"disaggregated\": %s, \"prefill_replicas\": %zu, "
                "\"weight_scheme\": \"FP16\", \"kv_scheme\": \"VQ4\", "
                "\"qps\": %.3f, \"ttft_p95_ms\": %.3f, "
                "\"tbt_p95_ms\": %.3f, \"fleet_tokens_per_sec\": %.3f, "
                "\"completed\": %llu, \"rejected\": %llu, "
                "\"handoffs\": %llu, \"handoff_rejects\": %llu, "
                "\"kv_transfer_bytes\": %llu, \"kv_transfer_us\": "
                "%.3f, \"util_min\": %.5f, \"util_max\": %.5f, "
                "\"util_imbalance\": %.5f, \"max_qps_slo\": %.3f}%s\n",
                cell.replicas,
                fleet::routerPolicyName(cell.router),
                cell.disagg ? "true" : "false",
                cell.disagg ? prefillSplit(cell.replicas) : 0,
                cell.ref_qps, r.ttft.p95_us / 1e3, r.tbt.p95_us / 1e3,
                r.fleet_tokens_per_sec,
                static_cast<unsigned long long>(r.completed_requests),
                static_cast<unsigned long long>(r.rejected_requests),
                static_cast<unsigned long long>(r.handoffs),
                static_cast<unsigned long long>(r.handoff_rejects),
                static_cast<unsigned long long>(r.kv_transfer_bytes),
                r.kv_transfer_us, r.util_min, r.util_max,
                r.util_imbalance, cell.max_qps,
                i + 1 < cells.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n  \"router_sweep\": [\n");
        for (std::size_t i = 0; i < router_cells.size(); ++i) {
            const auto &cell = router_cells[i];
            const auto &r = cell.report;
            std::fprintf(
                f,
                "    {\"router\": \"%s\", \"replicas\": 4, "
                "\"arrival\": \"bursty\", \"qps\": %.3f, "
                "\"ttft_p95_ms\": %.3f, \"tbt_p95_ms\": %.3f, "
                "\"fleet_tokens_per_sec\": %.3f, \"completed\": %llu, "
                "\"rejected\": %llu, \"util_min\": %.5f, "
                "\"util_max\": %.5f, \"util_imbalance\": %.5f}%s\n",
                fleet::routerPolicyName(cell.router), router_qps,
                r.ttft.p95_us / 1e3, r.tbt.p95_us / 1e3,
                r.fleet_tokens_per_sec,
                static_cast<unsigned long long>(r.completed_requests),
                static_cast<unsigned long long>(r.rejected_requests),
                r.util_min, r.util_max, r.util_imbalance,
                i + 1 < router_cells.size() ? "," : "");
        }
        std::fprintf(
            f,
            "  ],\n  \"disk_cache\": {\"mem_cold_ms\": %.3f, "
            "\"disk_warm_ms\": %.3f, \"speedup\": %.3f,\n"
            "    \"cold_hits\": %llu, \"cold_misses\": %llu, "
            "\"cold_admits\": %llu,\n"
            "    \"warm_hits\": %llu, \"warm_misses\": %llu, "
            "\"reports_identical\": %s}\n}\n",
            disk_mem_cold_ms, disk_warm_ms,
            disk_warm_ms > 0 ? disk_mem_cold_ms / disk_warm_ms : 0.0,
            static_cast<unsigned long long>(disk_cold_stats.hits),
            static_cast<unsigned long long>(disk_cold_stats.misses),
            static_cast<unsigned long long>(disk_cold_stats.admits),
            static_cast<unsigned long long>(disk_warm_stats.hits),
            static_cast<unsigned long long>(disk_warm_stats.misses),
            disk_reports_identical ? "true" : "false");
        std::fclose(f);
        std::printf("wrote BENCH_fleet.json\n");
    }
    return 0;
}
