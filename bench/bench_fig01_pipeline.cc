/**
 * @file
 * Demonstrates paper Fig. 1 / Tbl. I: the typical VQ pipeline on the
 * example configuration VQ<4,2,2> — 16-dimensional vectors split into
 * four 4-dimensional sub-vectors, 4-entry codebooks, two residual
 * stages — reporting reconstruction error per stage.
 */
#include <cstdio>

#include "bench_common.h"

using namespace vqllm;
using namespace vqllm::bench;

int
main()
{
    std::printf("Fig. 1 / Tbl. I: typical VQ pipeline, configuration "
                "VQ<4,2,2>\n\n");
    Rng rng(5);
    ClusteredDataSpec dspec;
    dspec.num_clusters = 12;
    auto data = generateClustered(512, 16, dspec, rng);

    vq::VQConfig cfg;
    cfg.name = "example";
    cfg.vector_size = 4; // four sub-vectors per 16-dim vector
    cfg.num_entries = 4; // 2-bit indices
    cfg.scope = vq::CodebookScope::PerChannelGroup;

    TextTable t({"residuals", "notation", "bits/element",
                 "reconstruction MSE"});
    Tensor<float> zeros(data.shape());
    for (unsigned residuals : {1u, 2u, 3u}) {
        cfg.residuals = residuals;
        vq::VectorQuantizer q(cfg);
        auto qt = q.quantize(data);
        auto rec = vq::VectorQuantizer::dequantize(qt);
        t.addRow({std::to_string(residuals), cfg.notation(),
                  formatDouble(cfg.bitsPerElement(), 2),
                  formatDouble(mse(data, rec), 4)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("baseline variance (MSE vs zero): %s\n",
                formatDouble(mse(data, zeros), 4).c_str());
    std::printf("each residual stage re-quantizes the remaining error "
                "and is accumulated at dequantization.\n");
    return 0;
}
