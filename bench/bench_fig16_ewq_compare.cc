/**
 * @file
 * Reproduces paper Fig. 16: optimized VQ kernels against FP16 libraries
 * (cutlass / flash-attn analogues), element-wise quantization at equal
 * 4-bit width (AWQ for GeMM/GeMV, QoQ for attention), and the
 * open-source VQ implementations (represented by the GC version, per
 * Sec. III — paper reports 2.83x to 114.4x slowdowns for them).
 */
#include <cstdio>

#include "bench_common.h"

using namespace vqllm;
using namespace vqllm::bench;

int
main()
{
    const auto &spec = gpusim::rtx4090();
    auto shapes = llama7b();

    // ---- GeMM ----------------------------------------------------------
    std::printf("Fig. 16: latency relative to element-wise quantization "
                "(%s, Llama-7B shapes)\n\n", spec.name.c_str());
    {
        auto shape = shapes.gemm(4096);
        auto awq = kernels::ewqGemmEstimate(spec, shape, 4);
        auto cutlass = kernels::fp16GemmEstimate(spec, shape);
        TextTable t({"GeMM kernel", "latency (us)", "vs AWQ-4bit"});
        t.addRow({"AWQ-4bit (qServe)", formatDouble(awq.us(), 1),
                  "1.00x"});
        t.addRow({"cutlass-16", formatDouble(cutlass.us(), 1),
                  formatRatio(cutlass.us(), awq.us())});
        for (const auto &cfg : {vq::quip4(), vq::gptvq2()}) {
            auto best =
                bestWeight(spec, engine::OpKind::GeMM, shape, cfg);
            t.addRow({cfg.name, formatDouble(best.us(), 1),
                      formatRatio(best.us(), awq.us())});
            auto open = weightAtLevel(spec, engine::OpKind::GeMM, shape,
                                      cfg, engine::OptLevel::GC);
            t.addRow({cfg.name + std::string("* (open source)"),
                      formatDouble(open.us(), 1),
                      formatRatio(open.us(), awq.us())});
        }
        std::printf("%s\n", t.render().c_str());
    }

    // ---- GeMV BS16 --------------------------------------------------------
    {
        auto shape = shapes.gemm(16);
        auto awq = kernels::ewqGemvEstimate(spec, shape, 4);
        auto cutlass = kernels::fp16GemvEstimate(spec, shape);
        TextTable t({"GeMV BS16 kernel", "latency (us)", "vs AWQ-4bit"});
        t.addRow({"AWQ-4bit (qServe)", formatDouble(awq.us(), 1),
                  "1.00x"});
        t.addRow({"cutlass-16", formatDouble(cutlass.us(), 1),
                  formatRatio(cutlass.us(), awq.us())});
        for (const auto &cfg : {vq::quip4(), vq::gptvq2()}) {
            auto best =
                bestWeight(spec, engine::OpKind::GeMV, shape, cfg);
            t.addRow({cfg.name, formatDouble(best.us(), 1),
                      formatRatio(best.us(), awq.us())});
            auto open = weightAtLevel(spec, engine::OpKind::GeMV, shape,
                                      cfg, engine::OptLevel::GC);
            t.addRow({cfg.name + std::string("* (open source)"),
                      formatDouble(open.us(), 1),
                      formatRatio(open.us(), awq.us())});
        }
        std::printf("%s\n", t.render().c_str());
        std::printf("paper: VQ-LLM 0.88x of AWQ for GeMV; open-source "
                    "impls 2.83x-114.4x\n\n");
    }

    // ---- Attention BS1 1k ---------------------------------------------------
    {
        auto shape = shapes.attention(1, 1024);
        auto qoq = kernels::ewqAttentionEstimate(spec, shape, 4);
        auto flash = kernels::fp16AttentionEstimate(spec, shape);
        TextTable t({"Attention kernel", "latency (us)", "vs QoQ-4bit"});
        t.addRow({"QoQ-4bit (qServe)", formatDouble(qoq.us(), 1),
                  "1.00x"});
        t.addRow({"Flash-16", formatDouble(flash.us(), 1),
                  formatRatio(flash.us(), qoq.us())});
        for (const auto &cfg : {vq::cq4(), vq::cq2()}) {
            auto best = bestAttn(spec, shape, cfg);
            t.addRow({cfg.name, formatDouble(best.us(), 1),
                      formatRatio(best.us(), qoq.us())});
        }
        auto open = attnAtLevel(spec, shape, vq::cq4(),
                                engine::OptLevel::GC);
        t.addRow({"CQ-4 (GC, open-source class)",
                  formatDouble(open.us(), 1),
                  formatRatio(open.us(), qoq.us())});
        std::printf("%s\n", t.render().c_str());
        std::printf("paper: VQ-LLM ~1.01x of QoQ at 4-bit; both beat "
                    "Flash-16.\n");
    }
    return 0;
}
