/**
 * @file
 * Prints paper Tbl. II (VQ algorithms and configurations) from the
 * library's presets, and Tbl. III (reduce and codebook-switch axes per
 * computation) from the engine's axis metadata.
 */
#include <cstdio>
#include <sstream>

#include "bench_common.h"

using namespace vqllm;
using namespace vqllm::bench;

namespace {

std::string
axisList(const std::vector<engine::Axis> &axes)
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < axes.size(); ++i)
        oss << engine::axisName(axes[i]) << (i + 1 < axes.size() ? ","
                                                                 : "");
    return oss.str().empty() ? "-" : oss.str();
}

} // namespace

int
main()
{
    std::printf("Tbl. II: VQ algorithms and their configurations\n\n");
    TextTable t2({"algorithm", "compression vs FP16", "vector size",
                  "#entry", "residual", "index bits", "codebook scope"});
    for (const auto &cfg : vq::paperConfigs()) {
        const char *scope =
            cfg.scope == vq::CodebookScope::PerTensor ? "per tensor"
            : cfg.scope == vq::CodebookScope::PerTile ? "per (256,256) tile"
                                                      : "per channel group";
        std::string entries = std::to_string(cfg.num_entries);
        if (cfg.lattice)
            entries += "*";
        t2.addRow({cfg.name, formatPercent(cfg.compressionRatio(), 2),
                   std::to_string(cfg.vector_size), entries,
                   std::to_string(cfg.residuals),
                   std::to_string(cfg.indexBits()), scope});
    }
    std::printf("%s\n", t2.render().c_str());
    std::printf("* lattice codebook: 65536 logical entries decoded from "
                "256 stored entries with bit ops.\n\n");

    std::printf("Tbl. III: reduce and codebook-switch axes\n\n");
    TextTable t3({"computation", "all axes", "reduce axes",
                  "switch axes (config)", "conflict (global reduce)"});
    auto weight = engine::weightAxisInfo();
    for (const auto &cfg : {vq::aqlm3(), vq::gptvq2()}) {
        auto sw = engine::weightSwitchAxes(cfg);
        t3.addRow({"GeMM/GeMV weight", axisList(weight.all),
                   axisList(weight.reduce),
                   axisList(sw) + " (" + cfg.name + ")",
                   axisList(engine::conflictAxes(weight, sw))});
    }
    for (auto operand :
         {engine::AttnOperand::KCache, engine::AttnOperand::VCache}) {
        auto info = engine::attentionAxisInfo(operand);
        auto sw = engine::attentionSwitchAxes(vq::cq2());
        t3.addRow({operand == engine::AttnOperand::KCache ? "K cache"
                                                          : "V cache",
                   axisList(info.all), axisList(info.reduce),
                   axisList(sw) + " (CQ)",
                   axisList(engine::conflictAxes(info, sw))});
    }
    std::printf("%s\n", t3.render().c_str());
    std::printf("colored cells of the paper's table = the conflict "
                "column: parallelizing those axes\nrequires the "
                "explicit global reduction of the codebook-centric "
                "dataflow.\n");
    return 0;
}
