/**
 * @file
 * Reproduces paper Fig. 10: GPU occupancy as a function of per-block
 * shared-memory and register consumption for two computation kernels,
 * highlighting the resource slack — the region that can be consumed
 * without losing a resident block.
 */
#include <cstdio>

#include "bench_common.h"

using namespace vqllm;
using namespace vqllm::bench;

namespace {

void
sweepSmem(const gpusim::GpuSpec &spec, const char *title,
          gpusim::BlockResources block)
{
    std::printf("%s: occupancy vs shared memory (threads=%d, "
                "regs=%d)\n", title, block.threads,
                block.regs_per_thread);
    auto slack = gpusim::computeSlack(spec, block);
    std::printf("  current smem %zu B -> slack %zu B (cache budget at "
                "unchanged occupancy)\n",
                block.smem_bytes, slack.smem_bytes);
    std::printf("  smem KB : blocks/SM : occupancy\n");
    int prev = -1;
    for (std::size_t kb = 0; kb <= 96; kb += 4) {
        gpusim::BlockResources b = block;
        b.smem_bytes = kb * 1024;
        auto occ = gpusim::computeOccupancy(spec, b);
        const char *marker =
            (occ.blocks_per_sm != prev && prev != -1) ? "  <- step"
                                                      : "";
        std::printf("  %6zu  :    %2d     :  %5.1f%%%s\n", kb,
                    occ.blocks_per_sm, occ.occupancy * 100, marker);
        prev = occ.blocks_per_sm;
    }
    std::printf("\n");
}

void
sweepRegs(const gpusim::GpuSpec &spec, const char *title,
          gpusim::BlockResources block)
{
    std::printf("%s: occupancy vs registers/thread (threads=%d, "
                "smem=%zu)\n", title, block.threads, block.smem_bytes);
    auto slack = gpusim::computeSlack(spec, block);
    std::printf("  current regs %d -> slack %d regs/thread\n",
                block.regs_per_thread, slack.regs_per_thread);
    std::printf("  regs : blocks/SM : occupancy\n");
    int prev = -1;
    for (int regs = 16; regs <= 192; regs += 8) {
        gpusim::BlockResources b = block;
        b.regs_per_thread = regs;
        auto occ = gpusim::computeOccupancy(spec, b);
        const char *marker =
            (occ.blocks_per_sm != prev && prev != -1) ? "  <- step"
                                                      : "";
        std::printf("  %4d :    %2d     :  %5.1f%%%s\n", regs,
                    occ.blocks_per_sm, occ.occupancy * 100, marker);
        prev = occ.blocks_per_sm;
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    const auto &spec = gpusim::rtx4090();
    std::printf("Fig. 10: resource consumption vs occupancy and the "
                "slack region (%s)\n\n", spec.name.c_str());

    // OP A: attention-decode-like block; OP B: GeMM-like block.
    auto attn = engine::baseBlockResources(
        engine::OpKind::AttentionDecode, true);
    auto gemm = engine::baseBlockResources(engine::OpKind::GeMM, true);

    sweepSmem(spec, "OP A (VQ attention)", attn);
    sweepSmem(spec, "OP B (VQ GeMM)", gemm);
    sweepRegs(spec, "OP A (VQ attention)", attn);
    sweepRegs(spec, "OP B (VQ GeMM)", gemm);

    std::printf("the plateau between steps is the slack the codebook "
                "cache may occupy for free\n(paper Sec. V-B: nreg and "
                "nshared are the slack divided by the entry size).\n");
    return 0;
}
