/**
 * @file
 * Reproduces paper Fig. 9: per-block entry-hotness map.  Globally hot
 * entries appear as consistent "vertical white lines" across thread
 * blocks (different tensor parts), justifying tensor-level frequency
 * reordering instead of per-block reordering.
 */
#include <algorithm>
#include <cstdio>

#include "bench_common.h"

using namespace vqllm;
using namespace vqllm::bench;

int
main()
{
    std::printf("Fig. 9: entry hotness across tensor parts (thread "
                "blocks)\n\n");
    Rng rng(0xF19);
    ClusteredDataSpec spec;
    spec.num_clusters = 48;
    spec.popularity_alpha = 1.1;
    auto data = generateClustered(512, 32, spec, rng);

    vq::VQConfig cfg = vq::gptvq2();
    cfg.scope = vq::CodebookScope::PerTensor; // one shared book
    cfg.num_entries = 64;                     // keep the map readable
    vq::KMeansOptions opts;
    opts.max_iters = 8;
    auto qt = vq::VectorQuantizer(cfg, opts).quantize(data);
    auto profile = vq::profileAccesses(qt, /*rows_per_block=*/64);

    // Render: rows = blocks, cols = entries ordered by global rank;
    // '#' hot (top quartile within the block), '.' cold.
    auto global_order = profile.histograms[0].frequencyOrder();
    std::printf("rows = thread blocks, columns = entries in global "
                "frequency-rank order\n('#' = block-local top quartile; "
                "vertical '#' stripes on the left = global hot set)\n\n");
    for (std::size_t b = 0; b < profile.block_histograms.size(); ++b) {
        const auto &bh = profile.block_histograms[b];
        std::vector<std::uint64_t> sorted(bh.counts);
        std::sort(sorted.rbegin(), sorted.rend());
        std::uint64_t q3 = sorted[sorted.size() / 4];
        std::printf("block %2zu | ", b);
        for (std::uint32_t entry : global_order)
            std::printf("%c", bh.counts[entry] >= q3 && q3 > 0 ? '#'
                                                               : '.');
        std::printf(" |\n");
    }

    // Consistency metric: how often the global top-8 rank in each
    // block's top quartile.
    int hits = 0, trials = 0;
    for (const auto &bh : profile.block_histograms) {
        auto border = bh.frequencyOrder();
        for (int rank = 0; rank < 8; ++rank) {
            auto pos = std::find(border.begin(), border.end(),
                                 global_order[rank]) -
                       border.begin();
            hits += static_cast<std::size_t>(pos) < border.size() / 4;
            ++trials;
        }
    }
    std::printf("\nglobal top-8 entries rank in a block's top quartile "
                "%s of the time\n(paper: 'many vertical white lines' -> "
                "global reordering is sound)\n",
                formatPercent(static_cast<double>(hits) / trials,
                              1)
                    .c_str());
    return 0;
}
