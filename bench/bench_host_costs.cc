/**
 * @file
 * Host-side cost benchmarks (google-benchmark): the offline phase of
 * VQ-LLM — kernel planning, thread-mapping computation, CUDA emission,
 * k-means training, quantization/dequantization throughput, and the
 * bank-conflict estimator.  These are the real CPU costs a deployment
 * pays when generating kernels.
 */
#include <benchmark/benchmark.h>

#include "codegen/cuda_emitter.h"
#include "compiler/engine.h"
#include "gpusim/bank_conflict.h"
#include "kernels/vq_kernels.h"
#include "tensor/datagen.h"
#include "vq/profiler.h"
#include "vq/quantizer.h"

using namespace vqllm;

namespace {

void
BM_CompileAttentionKernel(benchmark::State &state)
{
    // Capacity 0 retains nothing: each iteration pays the full
    // plan + cost pipeline (the cold-compile cost a deployment pays
    // per distinct kernel).
    compiler::EngineOptions opts;
    opts.cache_capacity = 0;
    compiler::Engine eng(gpusim::rtx4090(), opts);
    auto hist = vq::syntheticZipfHistogram(256);
    auto request = compiler::KernelRequest::attentionOp(
        {8, 32, 4096, 128}, vq::cq2(),
        static_cast<engine::OptLevel>(state.range(0)), &hist);
    for (auto _ : state) {
        auto kernel = eng.compile(request);
        benchmark::DoNotOptimize(kernel);
    }
}
BENCHMARK(BM_CompileAttentionKernel)->Arg(5)->Arg(2)->Name(
    "compile_attention_kernel(level)");

void
BM_CompileCacheHit(benchmark::State &state)
{
    compiler::Engine eng(gpusim::rtx4090());
    auto hist = vq::syntheticZipfHistogram(256);
    auto request = compiler::KernelRequest::attentionOp(
        {8, 32, 4096, 128}, vq::cq2(), engine::OptLevel::O4, &hist);
    eng.compile(request); // warm
    for (auto _ : state) {
        auto kernel = eng.compile(request);
        benchmark::DoNotOptimize(kernel);
    }
}
BENCHMARK(BM_CompileCacheHit)->Name("compile_cache_hit");

void
BM_ThreadMapping(benchmark::State &state)
{
    for (auto _ : state) {
        auto m = engine::computeThreadMapping(
            32, static_cast<int>(state.range(0)), 1);
        benchmark::DoNotOptimize(m);
    }
}
BENCHMARK(BM_ThreadMapping)->Arg(4)->Arg(8)->Name(
    "thread_mapping(vector_size)");

void
BM_EmitCudaKernel(benchmark::State &state)
{
    compiler::Engine eng(gpusim::rtx4090());
    auto kernel = eng.compile(compiler::KernelRequest::attentionOp(
        {1, 32, 1024, 128}, vq::cq2(), engine::OptLevel::O4));
    for (auto _ : state) {
        auto src = codegen::emitCudaKernel(kernel->plan());
        benchmark::DoNotOptimize(src);
    }
}
BENCHMARK(BM_EmitCudaKernel)->Name("emit_cuda_kernel");

void
BM_KMeansTraining(benchmark::State &state)
{
    Rng rng(1);
    auto data = generateClustered(
        2048, 4, ClusteredDataSpec{}, rng);
    vq::KMeansOptions opts;
    opts.max_iters = static_cast<int>(state.range(0));
    for (auto _ : state) {
        auto res = vq::kMeans(data, 256, opts);
        benchmark::DoNotOptimize(res.inertia);
    }
}
BENCHMARK(BM_KMeansTraining)->Arg(2)->Arg(8)->Unit(
    benchmark::kMillisecond)->Name("kmeans_256_entries(iters)");

void
BM_QuantizeDequantize(benchmark::State &state)
{
    Rng rng(2);
    auto data = generateClustered(
        static_cast<std::size_t>(state.range(0)), 32,
        ClusteredDataSpec{}, rng);
    vq::VQConfig cfg = vq::cq2();
    cfg.num_entries = 64;
    vq::KMeansOptions opts;
    opts.max_iters = 4;
    auto qt = vq::VectorQuantizer(cfg, opts).quantize(data);
    for (auto _ : state) {
        auto rec = vq::VectorQuantizer::dequantize(qt);
        benchmark::DoNotOptimize(rec.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * data.size() *
        sizeof(float));
}
BENCHMARK(BM_QuantizeDequantize)->Arg(256)->Arg(1024)->Name(
    "dequantize_rows");

void
BM_ConflictEstimator(benchmark::State &state)
{
    const auto &spec = gpusim::rtx4090();
    for (auto _ : state) {
        double m = gpusim::expectedConflictMultiplier(
            spec, 256, 8, static_cast<int>(state.range(0)));
        benchmark::DoNotOptimize(m);
    }
}
BENCHMARK(BM_ConflictEstimator)->Arg(64)->Arg(512)->Name(
    "bank_conflict_estimator(samples)");

void
BM_EstimateVqAttention(benchmark::State &state)
{
    compiler::Engine eng(gpusim::rtx4090());
    auto hist = vq::syntheticZipfHistogram(256);
    auto kernel = eng.compile(compiler::KernelRequest::attentionOp(
        {8, 32, 4096, 128}, vq::cq2(), engine::OptLevel::O4, &hist));
    for (auto _ : state) {
        auto r = kernels::estimateVqAttentionKernel(
            gpusim::rtx4090(), kernel->plan(), &hist);
        benchmark::DoNotOptimize(r.latency.total_us);
    }
}
BENCHMARK(BM_EstimateVqAttention)->Name("estimate_vq_attention");

} // namespace

BENCHMARK_MAIN();
