/**
 * @file
 * Reproduces paper Fig. 13: overall latency reduction of the
 * best-performing VQ-LLM version against the un-optimized (GC) version,
 * across kernels, configurations, batch sizes, sequence lengths and
 * model scales.  Paper headline: 46.13% mean reduction (53.73% max per
 * category, up to 1.9x-2.2x speedup).
 */
#include <cstdio>

#include "bench_common.h"

using namespace vqllm;
using namespace vqllm::bench;

namespace {

double
weightReduction(const gpusim::GpuSpec &spec, engine::OpKind kind,
                const engine::GemmShape &shape, const vq::VQConfig &cfg)
{
    auto gc = weightAtLevel(spec, kind, shape, cfg,
                            engine::OptLevel::GC);
    auto best = bestWeight(spec, kind, shape, cfg);
    return 1.0 - best.us() / gc.us();
}

double
attnReduction(const gpusim::GpuSpec &spec,
              const engine::AttnShape &shape, const vq::VQConfig &cfg)
{
    auto gc = attnAtLevel(spec, shape, cfg, engine::OptLevel::GC);
    auto best = bestAttn(spec, shape, cfg);
    return 1.0 - best.us() / gc.us();
}

} // namespace

int
main()
{
    const auto &spec = gpusim::rtx4090();
    std::printf("Fig. 13: latency reduction of the best version vs the "
                "un-optimized (GC) version (%s)\n\n", spec.name.c_str());

    double sum = 0;
    int count = 0;
    for (auto [model_name, shapes] :
         {std::pair{"Llama-7B", llama7b()},
          std::pair{"Llama-65B", llama65b()}}) {
        TextTable table({"kernel", "QuiP#-4", "AQLM-3", "GPTVQ-2"});
        struct WCase
        {
            const char *name;
            engine::OpKind kind;
            std::size_t m;
        };
        for (const WCase &c :
             {WCase{"GeMM", engine::OpKind::GeMM, 4096},
              WCase{"GeMV BS1", engine::OpKind::GeMV, 1},
              WCase{"GeMV BS16", engine::OpKind::GeMV, 16}}) {
            std::vector<std::string> row = {c.name};
            for (const auto &cfg :
                 {vq::quip4(), vq::aqlm3(), vq::gptvq2()}) {
                double red = weightReduction(spec, c.kind,
                                             shapes.gemm(c.m), cfg);
                sum += red;
                ++count;
                row.push_back(formatPercent(red, 1));
            }
            table.addRow(row);
        }
        std::printf("%s weight kernels:\n%s\n", model_name,
                    table.render().c_str());

        TextTable attn({"attention case", "CQ-2 BS1", "CQ-2 BS8"});
        for (std::size_t seq : {1024u, 4096u}) {
            std::vector<std::string> row = {
                std::to_string(seq / 1024) + "k"};
            for (std::size_t bs : {1u, 8u}) {
                double red = attnReduction(
                    spec, shapes.attention(bs, seq), vq::cq2());
                sum += red;
                ++count;
                row.push_back(formatPercent(red, 1));
            }
            attn.addRow(row);
        }
        std::printf("%s attention (decode):\n%s\n", model_name,
                    attn.render().c_str());
    }

    std::printf("mean latency reduction: %s  (paper: 46.13%% mean, "
                "53.73%% max, ~1.9x speedup)\n",
                formatPercent(sum / count, 2).c_str());
    return 0;
}
