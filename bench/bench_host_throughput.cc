/**
 * @file
 * Host execution throughput: wall-clock of the functional VQ kernels
 * and the codebook fitter, serial vs parallel, at several problem
 * sizes.
 *
 * This is the *host* performance trajectory (not the simulated-GPU cost
 * model): the functional GEMM/attention runners and the k-means fitter
 * are the paths that bound how large a sweep the benches and the
 * serving simulator can afford.  Results go to stdout and to
 * `BENCH_host.json` (rows/s, tokens/s, fit ms) so future PRs can
 * regress against them.
 *
 * The serial baseline pins the runtime to one thread via
 * par::setThreads(1); the parallel run reverts to the environment
 * (VQLLM_THREADS or hardware concurrency).  Outputs are bit-identical
 * either way — only the wall-clock may differ.
 */
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "vq/kmeans.h"
#include "vq/quantizer.h"

using namespace vqllm;

namespace {

using Clock = std::chrono::steady_clock;

/** Best-of-`reps` wall-clock milliseconds of fn(). */
template <typename Fn>
double
bestMs(int reps, Fn &&fn)
{
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        auto t0 = Clock::now();
        fn();
        auto t1 = Clock::now();
        double ms = std::chrono::duration<double, std::milli>(t1 - t0)
                        .count();
        best = std::min(best, ms);
    }
    return best;
}

struct WorkloadResult
{
    std::string name;
    double serial_ms = 0;
    double parallel_ms = 0;
    /** Primary throughput metric and its unit (rows/s, tokens/s...). */
    double rate = 0;
    std::string rate_unit;

    double
    speedup() const
    {
        return parallel_ms > 0 ? serial_ms / parallel_ms : 0.0;
    }
};

/**
 * Run fn serial and parallel, deriving the rate from `work` items.
 * Reps alternate serial/parallel so external noise (CPU quota
 * throttling, frequency ramps) hits both measurements symmetrically.
 */
template <typename Fn>
WorkloadResult
measure(const std::string &name, double work, const char *unit, int reps,
        Fn &&fn)
{
    WorkloadResult w;
    w.name = name;
    w.rate_unit = unit;
    w.serial_ms = 1e300;
    w.parallel_ms = 1e300;
    for (int r = 0; r < reps; ++r) {
        par::setThreads(1);
        w.serial_ms = std::min(w.serial_ms, bestMs(1, fn));
        par::setThreads(0); // revert to VQLLM_THREADS / hardware
        w.parallel_ms = std::min(w.parallel_ms, bestMs(1, fn));
    }
    w.rate = work / (w.parallel_ms / 1e3);
    return w;
}

vq::QuantizedTensor
makeWeight(std::size_t n, std::size_t k, std::uint64_t seed)
{
    vq::VQConfig cfg = vq::gptvq2();
    cfg.scope = vq::CodebookScope::PerTensor;
    cfg.num_entries = 64;
    Rng rng(seed);
    auto w = generateLlmWeight(n, k, rng);
    vq::KMeansOptions opts;
    opts.max_iters = 4;
    auto qt = vq::VectorQuantizer(cfg, opts).quantize(w);
    vq::reorderByFrequency(qt);
    return qt;
}

} // namespace

int
main()
{
    par::setThreads(0);
    const int threads = par::maxThreads();
    std::printf("Host throughput: %d thread(s), SIMD ISA %s\n\n", threads,
                simd::activeIsa());

    std::vector<WorkloadResult> results;

    // -------------------------------------------------- functional GEMM
    for (std::size_t n : {256, 1024}) {
        const std::size_t k = 512, m = 16;
        auto qt = makeWeight(n, k, 11);
        Rng rng(13);
        Tensor<float> x({m, k});
        fillNormal(x, rng);
        auto kernel = bench::engineFor(gpusim::rtx4090())
                          .compile(compiler::KernelRequest::gemmOp(
                              {m, n, k}, qt.config,
                              engine::OptLevel::O2));
        results.push_back(measure(
            "vq_gemm_n" + std::to_string(n) + "_k512_m16",
            static_cast<double>(n), "rows/s", 3,
            [&] { kernel->runGemm(qt, x); }));
    }

    // --------------------------------------------- functional attention
    {
        const std::size_t tokens = 512, heads = 8, channels = 64;
        vq::VQConfig cfg = vq::cq2();
        cfg.num_entries = 64;
        Rng rng(17);
        Tensor<float> kv({tokens, heads * channels});
        fillNormal(kv, rng);
        vq::KMeansOptions opts;
        opts.max_iters = 4;
        auto qt_k = vq::VectorQuantizer(cfg, opts).quantize(kv);
        auto qt_v = vq::VectorQuantizer(cfg, opts).quantize(kv);
        vq::reorderByFrequency(qt_k);
        vq::reorderByFrequency(qt_v);
        Tensor<float> q({heads, channels});
        fillNormal(q, rng);
        auto kernel = bench::engineFor(gpusim::rtx4090())
                          .compile(compiler::KernelRequest::attentionOp(
                              {1, heads, tokens, channels}, cfg,
                              engine::OptLevel::O2));
        results.push_back(measure(
            "vq_attention_t512_h8_c64", static_cast<double>(tokens),
            "tokens/s", 3,
            [&] { kernel->runAttention(qt_k, qt_v, q); }));
    }

    // ------------------------------------------------- k-means fitting
    for (std::size_t n : {8192, 16384}) {
        const std::size_t dim = 8, k = 256;
        Rng rng(19);
        auto data = generateClustered(n, dim, ClusteredDataSpec{}, rng);
        vq::KMeansOptions opts;
        opts.max_iters = 8;
        results.push_back(measure(
            "kmeans_n" + std::to_string(n) + "_d8_k256", 1.0, "fits/s",
            3, [&] { vq::kMeans(data, k, opts); }));
    }

    // ---------------------------------------------- full quantizer fit
    {
        const std::size_t rows = 512, cols = 512;
        Rng rng(23);
        auto w = generateLlmWeight(rows, cols, rng);
        vq::VQConfig cfg = vq::cq2(); // per-channel-group: parallel units
        cfg.num_entries = 64;
        vq::KMeansOptions opts;
        opts.max_iters = 6;
        results.push_back(measure(
            "quantize_512x512_cq2", 1.0, "fits/s", 3,
            [&] { vq::VectorQuantizer(cfg, opts).quantize(w); }));
    }

    // ------------------------------------------- plan-cache pricing
    // The compile facade's memoizing cache: wall-clock of pricing the
    // same decode shapes cold (capacity 0 retains nothing, every
    // compile re-plans) vs through the cache (steady-state serving).
    double plan_cold_ms = 0, plan_cached_ms = 0, plan_hit_rate = 0;
    {
        auto pricingSweep = [](compiler::Engine &eng) {
            const auto &hist = bench::sampleHistogram(vq::gptvq2());
            for (int iter = 0; iter < 32; ++iter)
                for (std::size_t batch : {1, 8, 16})
                    for (auto level :
                         {engine::OptLevel::O2, engine::OptLevel::O3,
                          engine::OptLevel::O4})
                        eng.compile(compiler::KernelRequest::gemvOp(
                            {batch, 4096, 4096}, vq::gptvq2(), level,
                            &hist));
        };
        compiler::EngineOptions cold_opts;
        cold_opts.cache_capacity = 0;
        compiler::Engine cold(gpusim::rtx4090(), cold_opts);
        compiler::Engine cached(gpusim::rtx4090());
        // Hit rate of ONE cold-to-steady sweep (the timing reps below
        // would inflate it by re-hitting the already-warm cache).
        pricingSweep(cached);
        plan_hit_rate = cached.stats().hitRate();
        plan_cold_ms = bestMs(3, [&] { pricingSweep(cold); });
        plan_cached_ms = bestMs(3, [&] { pricingSweep(cached); });
        std::printf("plan cache: cold pricing %.1f ms, cached %.2f ms "
                    "(%.1fx), hit rate %.1f%% (%llu evictions cold)\n\n",
                    plan_cold_ms, plan_cached_ms,
                    plan_cached_ms > 0 ? plan_cold_ms / plan_cached_ms
                                       : 0.0,
                    plan_hit_rate * 100,
                    static_cast<unsigned long long>(
                        cold.stats().evictions));
    }

    TextTable table({"workload", "serial ms", "parallel ms", "speedup",
                     "rate"});
    for (const auto &w : results)
        table.addRow({w.name, formatDouble(w.serial_ms, 1),
                      formatDouble(w.parallel_ms, 1),
                      formatDouble(w.speedup(), 2) + "x",
                      formatDouble(w.rate, 0) + " " + w.rate_unit});
    std::printf("%s\n", table.render().c_str());

    std::FILE *f = std::fopen("BENCH_host.json", "w");
    if (f != nullptr) {
        std::fprintf(f, "{\n  \"threads\": %d,\n  \"isa\": \"%s\",\n"
                        "  \"workloads\": [\n",
                     threads, simd::activeIsa());
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto &w = results[i];
            std::fprintf(
                f,
                "    {\"name\": \"%s\", \"serial_ms\": %.3f, "
                "\"parallel_ms\": %.3f, \"speedup\": %.3f, "
                "\"rate\": %.1f, \"rate_unit\": \"%s\"}%s\n",
                w.name.c_str(), w.serial_ms, w.parallel_ms, w.speedup(),
                w.rate, w.rate_unit.c_str(),
                i + 1 < results.size() ? "," : "");
        }
        std::fprintf(f,
                     "  ],\n  \"plan_cache\": {\"cold_ms\": %.3f, "
                     "\"cached_ms\": %.3f, \"speedup\": %.2f, "
                     "\"hit_rate\": %.4f}\n}\n",
                     plan_cold_ms, plan_cached_ms,
                     plan_cached_ms > 0 ? plan_cold_ms / plan_cached_ms
                                        : 0.0,
                     plan_hit_rate);
        std::fclose(f);
        std::printf("wrote BENCH_host.json\n");
    }
    return 0;
}
