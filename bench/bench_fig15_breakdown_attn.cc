/**
 * @file
 * Reproduces paper Fig. 15: optimization breakdown for Attention
 * (Decode) with CQ-2 across sequence lengths and batch sizes (left),
 * and CQ-4 latency relative to CQ-2 (right).
 */
#include <cstdio>

#include "bench_common.h"

using namespace vqllm;
using namespace vqllm::bench;

int
main()
{
    const auto &spec = gpusim::rtx4090();
    auto shapes = llama7b();
    struct Case
    {
        const char *name;
        std::size_t batch, seq;
    };
    const Case cases[] = {
        {"1k BS1", 1, 1024},
        {"1k BS8", 8, 1024},
        {"4k BS1", 1, 4096},
        {"4k BS8", 8, 4096},
    };

    std::printf("Fig. 15 (left): CQ-2 Attention (Decode) breakdown, "
                "latency in us (Llama-7B, %s)\n\n", spec.name.c_str());
    TextTable table({"case", "GC", "SC", "O1", "O2", "O3", "O4",
                     "best/GC"});
    for (const auto &c : cases) {
        auto shape = shapes.attention(c.batch, c.seq);
        std::vector<std::string> row = {c.name};
        double gc_us = 0, best = 1e30;
        for (auto level : engine::kAllOptLevels) {
            auto r = attnAtLevel(spec, shape, vq::cq2(), level);
            if (level == engine::OptLevel::GC)
                gc_us = r.us();
            if (level >= engine::OptLevel::O1)
                best = std::min(best, r.us());
            row.push_back(formatDouble(r.us(), 1));
        }
        row.push_back(formatPercent(1.0 - best / gc_us, 1) +
                      " reduced");
        table.addRow(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("paper: SC < GC only with O1; O3 gives the largest "
                "gain; O4 minor for attention.\n\n");

    std::printf("Fig. 15 (right): CQ-4 latency relative to CQ-2 "
                "(best version)\n\n");
    TextTable right({"case", "CQ-2 (us)", "CQ-4 (us)", "CQ-4/CQ-2"});
    for (const auto &c : cases) {
        auto shape = shapes.attention(c.batch, c.seq);
        auto cq2_best = bestAttn(spec, shape, vq::cq2());
        auto cq4_best = bestAttn(spec, shape, vq::cq4());
        right.addRow({c.name, formatDouble(cq2_best.us(), 1),
                      formatDouble(cq4_best.us(), 1),
                      formatRatio(cq4_best.us(), cq2_best.us())});
    }
    std::printf("%s\n", right.render().c_str());
    std::printf("paper: CQ-4 slightly above CQ-2 (2x the index "
                "bytes), similar optimization speedups.\n");
    return 0;
}
