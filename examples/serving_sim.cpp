/**
 * @file
 * serving_sim: continuous-batching serving simulation from the command
 * line.
 *
 *   serving_sim [--scheme fp16|ewq4|vq4|vq2]
 *               [--kv-scheme fp16|int4|vq4|vq2] [--model 7b|65b|70b]
 *               [--gpu 4090|a40] [--qps N] [--duration S] [--seed N]
 *               [--arrival poisson|bursty|diurnal] [--burst-period S]
 *               [--burst-duty F] [--burst-peak M] [--diurnal-period S]
 *               [--diurnal-amplitude A]
 *               [--max-batch N] [--block-tokens N] [--hbm-gb G]
 *               [--codebook-slots N] [--codebook-groups N]
 *               [--policy fcfs|priority|edf] [--chunk-tokens N]
 *               [--priority-levels N] [--prompt-median N]
 *               [--tp-degree N] [--link-gbps G] [--collective-us U]
 *               [--prefix-groups N] [--prefix-tokens N]
 *               [--prefix-cache on|off] [--trace-in FILE]
 *               [--trace-out FILE] [--metrics-json FILE]
 *
 * Generates a Poisson request trace, serves it with the
 * policy-driven continuous-batching scheduler over a paged VQ KV
 * cache (chunked prefill when --chunk-tokens > 0; per-device sharded
 * pools and per-layer ring all-reduces when --tp-degree > 1), and
 * reports TTFT/TBT/E2E percentiles, sustained tokens/sec, the KV
 * high-water mark and codebook residency statistics.  Deterministic
 * in --seed.  Unrecognized arguments are a hard error.
 *
 * --trace-out writes a Chrome trace-event JSON timeline of the run
 * (open in https://ui.perfetto.dev or chrome://tracing);
 * --metrics-json writes the full report plus the metrics registry as
 * JSON.  Neither flag changes the simulation or the report.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/logging.h"
#include "compiler/disk_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/simulator.h"

using namespace vqllm;

namespace {

const char kUsage[] =
    "usage: serving_sim [options]\n"
    "  --scheme fp16|ewq4|vq4|vq2   quantization scheme (default vq2)\n"
    "  --kv-scheme fp16|int4|vq4|vq2  KV-cache storage scheme (default:\n"
    "                               follows --scheme)\n"
    "  --model 7b|65b|70b           model configuration (default 7b)\n"
    "  --gpu 4090|a40               per-GPU hardware model (default 4090)\n"
    "  --qps N                      mean arrival rate (default 8)\n"
    "  --duration S                 arrival window, seconds (default 60)\n"
    "  --seed N                     workload seed (default 42)\n"
    "  --arrival poisson|bursty|diurnal\n"
    "                               arrival process shape (default\n"
    "                               poisson; all preserve the mean rate)\n"
    "  --burst-period S             bursty: cycle length, seconds\n"
    "  --burst-duty F               bursty: burst fraction, in (0,1)\n"
    "  --burst-peak M               bursty: burst rate multiplier, >= 1\n"
    "  --diurnal-period S           diurnal: cycle length, seconds\n"
    "  --diurnal-amplitude A        diurnal: rate swing, in [0,1)\n"
    "  --max-batch N                max concurrent sequences\n"
    "  --block-tokens N             KV tokens per paged block\n"
    "  --hbm-gb G                   per-GPU HBM capacity, GB\n"
    "  --codebook-slots N           resident codebook-group slots\n"
    "  --codebook-groups N          distinct codebook groups in the trace\n"
    "  --policy fcfs|priority|edf   scheduling policy (default fcfs)\n"
    "  --chunk-tokens N             chunked-prefill token budget (0 = off)\n"
    "  --priority-levels N          distinct priority levels in the trace\n"
    "  --prompt-median N            median prompt length, tokens\n"
    "  --tp-degree N                tensor-parallel degree, >= 1 (default 1)\n"
    "  --link-gbps G                all-reduce link bandwidth, GB/s, > 0\n"
    "  --collective-us U            per-collective launch latency, us\n"
    "  --prefix-groups N            shared-prefix tenants in the trace\n"
    "                               (0 = no shared prefixes, the default)\n"
    "  --prefix-tokens N            shared system-prompt length, tokens, > 0\n"
    "  --prefix-cache on|off        cross-request KV prefix caching\n"
    "                               (default off)\n"
    "  --trace-in FILE              replay a JSONL workload trace\n"
    "                               (arrival_us, prompt_len, output_len,\n"
    "                               optional group; malformed lines are a\n"
    "                               hard error) instead of sampling\n"
    "  --kernel-cache-dir DIR       persistent compiled-kernel cache\n"
    "                               shared across processes (DESIGN.md\n"
    "                               Sec. 13); reports stay identical\n"
    "  --trace-out FILE             write a Chrome/Perfetto trace JSON\n"
    "  --metrics-json FILE          write report + metrics as JSON\n"
    "  --help                       print this message and exit\n";

[[noreturn]] void
usageError(const std::string &message)
{
    std::fprintf(stderr, "serving_sim: %s\n%s", message.c_str(), kUsage);
    std::exit(2);
}

const llm::LlamaConfig &
modelByName(const std::string &name)
{
    if (name == "7b")
        return llm::llama7b();
    if (name == "65b")
        return llm::llama65b();
    if (name == "70b")
        return llm::llama70b();
    vqllm_fatal("unknown model '", name, "' (expected 7b|65b|70b)");
}

const gpusim::GpuSpec &
gpuByName(const std::string &name)
{
    if (name == "4090")
        return gpusim::rtx4090();
    if (name == "a40")
        return gpusim::teslaA40();
    vqllm_fatal("unknown gpu '", name, "' (expected 4090|a40)");
}

} // namespace

int
main(int argc, char **argv)
{
    serving::SimulatorConfig cfg;
    cfg.spec = &gpusim::rtx4090();
    cfg.model = &llm::llama7b();
    cfg.workload.qps = 8;
    cfg.workload.duration_s = 60;

    bool hbm_set = false;
    std::string trace_out;
    std::string metrics_out;
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usageError("flag " + flag + " needs a value");
            return argv[++i];
        };
        if (flag == "--scheme") {
            if (!llm::parseQuantScheme(value(), &cfg.scheme))
                vqllm_fatal("unknown scheme (fp16|ewq4|vq4|vq2)");
        } else if (flag == "--kv-scheme") {
            llm::KvScheme kv;
            if (!llm::parseKvScheme(value(), &kv))
                vqllm_fatal("unknown KV scheme (fp16|int4|vq4|vq2)");
            cfg.kv_scheme = kv;
        } else if (flag == "--model") {
            cfg.model = &modelByName(value());
        } else if (flag == "--gpu") {
            cfg.spec = &gpuByName(value());
        } else if (flag == "--qps") {
            cfg.workload.qps = std::stod(value());
        } else if (flag == "--duration") {
            cfg.workload.duration_s = std::stod(value());
        } else if (flag == "--seed") {
            cfg.workload.seed = std::stoull(value());
        } else if (flag == "--arrival") {
            std::string v = value();
            auto p = serving::parseArrivalPattern(v);
            if (!p)
                usageError("--arrival expects poisson|bursty|diurnal, "
                           "got '" + v + "'");
            cfg.workload.arrival = *p;
        } else if (flag == "--burst-period") {
            cfg.workload.burst_period_s = std::stod(value());
        } else if (flag == "--burst-duty") {
            cfg.workload.burst_duty = std::stod(value());
        } else if (flag == "--burst-peak") {
            cfg.workload.burst_peak = std::stod(value());
        } else if (flag == "--diurnal-period") {
            cfg.workload.diurnal_period_s = std::stod(value());
        } else if (flag == "--diurnal-amplitude") {
            cfg.workload.diurnal_amplitude = std::stod(value());
        } else if (flag == "--max-batch") {
            cfg.scheduler.max_batch = std::stoul(value());
        } else if (flag == "--block-tokens") {
            cfg.kv_block_tokens = std::stoul(value());
        } else if (flag == "--hbm-gb") {
            cfg.hbm_gb = std::stod(value());
            hbm_set = true;
        } else if (flag == "--codebook-slots") {
            cfg.codebook_slots = std::stoul(value());
        } else if (flag == "--codebook-groups") {
            cfg.workload.num_codebook_groups = std::stoul(value());
        } else if (flag == "--policy") {
            if (!serving::parsePolicyKind(value(), &cfg.scheduler.policy))
                vqllm_fatal("unknown policy (fcfs|priority|edf)");
        } else if (flag == "--chunk-tokens") {
            cfg.scheduler.chunk_tokens = std::stoul(value());
        } else if (flag == "--priority-levels") {
            cfg.workload.priority_levels = std::stoul(value());
        } else if (flag == "--prompt-median") {
            cfg.workload.prompt_len_median = std::stoul(value());
        } else if (flag == "--tp-degree") {
            cfg.tp.degree = std::stoi(value());
            if (cfg.tp.degree < 1)
                usageError("--tp-degree must be >= 1");
        } else if (flag == "--link-gbps") {
            cfg.tp.link_bw_gbps = std::stod(value());
            if (cfg.tp.link_bw_gbps <= 0)
                usageError("--link-gbps must be > 0");
        } else if (flag == "--collective-us") {
            cfg.tp.collective_latency_us = std::stod(value());
            if (cfg.tp.collective_latency_us < 0)
                usageError("--collective-us must be >= 0");
        } else if (flag == "--prefix-groups") {
            cfg.workload.prefix_groups = std::stoul(value());
        } else if (flag == "--prefix-tokens") {
            cfg.workload.prefix_tokens = std::stoul(value());
            if (cfg.workload.prefix_tokens == 0)
                usageError("--prefix-tokens must be > 0");
        } else if (flag == "--prefix-cache") {
            std::string v = value();
            if (v == "on")
                cfg.prefix_cache = true;
            else if (v == "off")
                cfg.prefix_cache = false;
            else
                usageError("--prefix-cache expects on|off, got '" + v +
                           "'");
        } else if (flag == "--trace-in") {
            cfg.workload.trace_path = value();
        } else if (flag == "--kernel-cache-dir") {
            cfg.kernel_cache_dir = value();
        } else if (flag == "--trace-out") {
            trace_out = value();
        } else if (flag == "--metrics-json") {
            metrics_out = value();
        } else if (flag == "--help" || flag == "-h") {
            std::printf("%s", kUsage);
            return 0;
        } else {
            usageError("unknown flag '" + flag + "'");
        }
    }
    if (!hbm_set && cfg.spec == &gpusim::teslaA40())
        cfg.hbm_gb = 48.0; // A40 ships 48 GB

    obs::TraceRecorder recorder;
    obs::MetricsRegistry registry;
    if (!trace_out.empty())
        cfg.trace = &recorder;
    if (!metrics_out.empty())
        cfg.metrics = &registry;

    // Hold the store so its counters survive the run (the simulator
    // resolves the same directory to this instance via the registry).
    std::shared_ptr<compiler::DiskCache> disk;
    if (!cfg.kernel_cache_dir.empty())
        disk = compiler::DiskCache::open(cfg.kernel_cache_dir);

    serving::ServingSimulator sim(cfg);
    std::string chunk_note =
        cfg.scheduler.chunk_tokens > 0
            ? ", chunked prefill @" +
                  std::to_string(cfg.scheduler.chunk_tokens)
            : "";
    std::string tp_note =
        cfg.tp.degree > 1
            ? ", TP degree " + std::to_string(cfg.tp.degree) + " @ " +
                  std::to_string(
                      static_cast<int>(cfg.tp.link_bw_gbps)) +
                  " GB/s"
            : "";
    std::string prefix_note =
        cfg.workload.prefix_groups > 0
            ? ", " + std::to_string(cfg.workload.prefix_groups) +
                  " prefix groups x " +
                  std::to_string(cfg.workload.prefix_tokens) +
                  " tokens (cache " +
                  (cfg.prefix_cache ? "on" : "off") + ")"
            : "";
    std::string kv_note =
        cfg.kv_scheme.has_value()
            ? std::string(", KV ") + llm::kvSchemeName(*cfg.kv_scheme)
            : "";
    std::string replay_note =
        !cfg.workload.trace_path.empty()
            ? ", replaying " + cfg.workload.trace_path
            : "";
    std::string arrival_note =
        cfg.workload.arrival != serving::ArrivalPattern::Poisson
            ? std::string(", ") +
                  serving::arrivalPatternName(cfg.workload.arrival) +
                  " arrivals"
            : "";
    std::printf("serving %s on %s / %s: %.1f QPS for %.0f s (seed "
                "%llu, policy %s%s%s%s%s%s%s)\n",
                cfg.model->name.c_str(), cfg.spec->name.c_str(),
                llm::quantSchemeName(cfg.scheme), cfg.workload.qps,
                cfg.workload.duration_s,
                static_cast<unsigned long long>(cfg.workload.seed),
                serving::policyKindName(cfg.scheduler.policy),
                chunk_note.c_str(), tp_note.c_str(),
                prefix_note.c_str(), kv_note.c_str(),
                replay_note.c_str(), arrival_note.c_str());
    if (cfg.tp.degree > 1)
        std::printf("KV pools: %zu devices x %.2f GB under each weight "
                    "shard (%.2f GB aggregate)\n",
                    static_cast<std::size_t>(cfg.tp.degree),
                    static_cast<double>(sim.kvCapacityBytesPerDevice()) /
                        1e9,
                    static_cast<double>(sim.kvCapacityBytes()) / 1e9);
    else
        std::printf("KV pool: %.2f GB under the scheme's weight "
                    "footprint\n",
                    static_cast<double>(sim.kvCapacityBytes()) / 1e9);
    auto report = sim.run();
    std::printf("%s", report.summary().c_str());

    if (disk) {
        // One parseable line for scripts/CI: the second of two
        // back-to-back runs on one directory must be all hits.
        const compiler::DiskCacheStats ds = disk->stats();
        std::printf("disk-cache: dir=%s hits=%llu misses=%llu "
                    "admits=%llu evictions=%llu quarantined=%llu "
                    "entries=%llu bytes=%llu hit_rate=%.4f\n",
                    disk->dir().c_str(),
                    static_cast<unsigned long long>(ds.hits),
                    static_cast<unsigned long long>(ds.misses),
                    static_cast<unsigned long long>(ds.admits),
                    static_cast<unsigned long long>(ds.evictions),
                    static_cast<unsigned long long>(ds.quarantined),
                    static_cast<unsigned long long>(ds.entries),
                    static_cast<unsigned long long>(ds.bytes),
                    ds.hitRate());
    }

    if (!trace_out.empty()) {
        std::ofstream os(trace_out, std::ios::binary);
        if (!os)
            vqllm_fatal("cannot open trace output '", trace_out, "'");
        recorder.writeChromeJson(os);
        std::printf("trace: %zu events -> %s (load in "
                    "https://ui.perfetto.dev)\n",
                    recorder.eventCount(), trace_out.c_str());
    }
    if (!metrics_out.empty()) {
        std::ofstream os(metrics_out, std::ios::binary);
        if (!os)
            vqllm_fatal("cannot open metrics output '", metrics_out,
                        "'");
        os << "{\"report\":" << report.json()
           << ",\"metrics\":" << registry.json() << "}\n";
        std::printf("metrics: %zu instruments -> %s\n", registry.size(),
                    metrics_out.c_str());
    }
    return 0;
}
