/**
 * @file
 * serving_sim: continuous-batching serving simulation from the command
 * line.
 *
 *   serving_sim [--scheme fp16|ewq4|vq4|vq2] [--model 7b|65b|70b]
 *               [--gpu 4090|a40] [--qps N] [--duration S] [--seed N]
 *               [--max-batch N] [--block-tokens N] [--hbm-gb G]
 *               [--codebook-slots N] [--codebook-groups N]
 *               [--policy fcfs|priority|edf] [--chunk-tokens N]
 *               [--priority-levels N] [--prompt-median N]
 *
 * Generates a Poisson request trace, serves it with the
 * policy-driven continuous-batching scheduler over a paged VQ KV
 * cache (chunked prefill when --chunk-tokens > 0), and reports
 * TTFT/TBT/E2E percentiles, sustained tokens/sec, the KV high-water
 * mark and codebook residency statistics.  Deterministic in --seed.
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "serving/simulator.h"

using namespace vqllm;

namespace {

const llm::LlamaConfig &
modelByName(const std::string &name)
{
    if (name == "7b")
        return llm::llama7b();
    if (name == "65b")
        return llm::llama65b();
    if (name == "70b")
        return llm::llama70b();
    vqllm_fatal("unknown model '", name, "' (expected 7b|65b|70b)");
}

const gpusim::GpuSpec &
gpuByName(const std::string &name)
{
    if (name == "4090")
        return gpusim::rtx4090();
    if (name == "a40")
        return gpusim::teslaA40();
    vqllm_fatal("unknown gpu '", name, "' (expected 4090|a40)");
}

} // namespace

int
main(int argc, char **argv)
{
    serving::SimulatorConfig cfg;
    cfg.spec = &gpusim::rtx4090();
    cfg.model = &llm::llama7b();
    cfg.workload.qps = 8;
    cfg.workload.duration_s = 60;

    bool hbm_set = false;
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                vqllm_fatal("flag ", flag, " needs a value");
            return argv[++i];
        };
        if (flag == "--scheme") {
            if (!llm::parseQuantScheme(value(), &cfg.scheme))
                vqllm_fatal("unknown scheme (fp16|ewq4|vq4|vq2)");
        } else if (flag == "--model") {
            cfg.model = &modelByName(value());
        } else if (flag == "--gpu") {
            cfg.spec = &gpuByName(value());
        } else if (flag == "--qps") {
            cfg.workload.qps = std::stod(value());
        } else if (flag == "--duration") {
            cfg.workload.duration_s = std::stod(value());
        } else if (flag == "--seed") {
            cfg.workload.seed = std::stoull(value());
        } else if (flag == "--max-batch") {
            cfg.scheduler.max_batch = std::stoul(value());
        } else if (flag == "--block-tokens") {
            cfg.kv_block_tokens = std::stoul(value());
        } else if (flag == "--hbm-gb") {
            cfg.hbm_gb = std::stod(value());
            hbm_set = true;
        } else if (flag == "--codebook-slots") {
            cfg.codebook_slots = std::stoul(value());
        } else if (flag == "--codebook-groups") {
            cfg.workload.num_codebook_groups = std::stoul(value());
        } else if (flag == "--policy") {
            if (!serving::parsePolicyKind(value(), &cfg.scheduler.policy))
                vqllm_fatal("unknown policy (fcfs|priority|edf)");
        } else if (flag == "--chunk-tokens") {
            cfg.scheduler.chunk_tokens = std::stoul(value());
        } else if (flag == "--priority-levels") {
            cfg.workload.priority_levels = std::stoul(value());
        } else if (flag == "--prompt-median") {
            cfg.workload.prompt_len_median = std::stoul(value());
        } else {
            vqllm_fatal("unknown flag '", flag, "'");
        }
    }
    if (!hbm_set && cfg.spec == &gpusim::teslaA40())
        cfg.hbm_gb = 48.0; // A40 ships 48 GB

    serving::ServingSimulator sim(cfg);
    std::string chunk_note =
        cfg.scheduler.chunk_tokens > 0
            ? ", chunked prefill @" +
                  std::to_string(cfg.scheduler.chunk_tokens)
            : "";
    std::printf("serving %s on %s / %s: %.1f QPS for %.0f s (seed "
                "%llu, policy %s%s)\n",
                cfg.model->name.c_str(), cfg.spec->name.c_str(),
                llm::quantSchemeName(cfg.scheme), cfg.workload.qps,
                cfg.workload.duration_s,
                static_cast<unsigned long long>(cfg.workload.seed),
                serving::policyKindName(cfg.scheduler.policy),
                chunk_note.c_str());
    std::printf("KV pool: %.2f GB under the scheme's weight footprint\n",
                static_cast<double>(sim.kvCapacityBytes()) / 1e9);
    auto report = sim.run();
    std::printf("%s", report.summary().c_str());
    return 0;
}
