/**
 * @file
 * End-to-end pipeline example: serving-level view of VQ-LLM.
 *
 * Estimates full-generation latency and memory for Llama-7B and
 * Llama-65B under each quantization scheme on both evaluated GPUs, and
 * runs the task-accuracy pipeline, reproducing the decision surface of
 * paper Sec. VII-E: which scheme to deploy at which bit budget.
 */
#include <cstdio>

#include "llm/accuracy.h"
#include "llm/e2e.h"

using namespace vqllm;
using llm::QuantScheme;

int
main()
{
    const llm::E2EConfig scenario; // batch 16, 1024 prompt + 256 gen
    std::printf("end-to-end serving estimates (batch %zu, prompt %zu, "
                "generate %zu)\n\n",
                scenario.batch, scenario.prompt_len,
                scenario.gen_tokens);

    for (const auto *model : {&llm::llama7b(), &llm::llama65b()}) {
        for (const auto *spec :
             {&gpusim::rtx4090(), &gpusim::teslaA40()}) {
            std::printf("%s on %s:\n", model->name.c_str(),
                        spec->name.c_str());
            std::printf("  %-16s %12s %12s %10s %10s\n", "scheme",
                        "prefill(ms)", "decode(ms)", "speedup",
                        "memory");
            double fp16_total = 0;
            for (auto scheme :
                 {QuantScheme::FP16, QuantScheme::EWQ4,
                  QuantScheme::VQ4, QuantScheme::VQ2}) {
                auto r = llm::estimateE2E(*spec, *model, scheme,
                                          scenario);
                if (scheme == QuantScheme::FP16)
                    fp16_total = r.totalUs();
                std::printf("  %-16s %12.1f %12.1f %9.2fx %9.1fGB\n",
                            llm::quantSchemeName(scheme),
                            r.prefill_us / 1000, r.decode_us / 1000,
                            fp16_total / r.totalUs(),
                            static_cast<double>(r.totalMemoryBytes()) /
                                (1ull << 30));
            }
            std::printf("\n");
        }
    }

    std::printf("task accuracy across bit budgets (synthetic "
                "classification pipeline):\n\n");
    std::printf("  %-8s %8s %8s %8s\n", "bits", "FP16", "VQ",
                "element-wise");
    for (unsigned bits : {4u, 2u}) {
        vq::VQConfig vq_cfg = bits == 4 ? vq::cq4() : vq::cq2();
        ewq::IntQuantConfig ewq_cfg;
        ewq_cfg.bits = bits;
        ewq_cfg.group_size = 24;
        auto report = llm::compareQuantAccuracy(vq_cfg, ewq_cfg, 1234);
        std::printf("  %-8u %7.1f%% %7.1f%% %7.1f%%\n", bits,
                    report.fp16 * 100, report.vq * 100,
                    report.ewq * 100);
    }
    std::printf("\ndeployment rule of thumb (paper Sec. VII-E): at 4 "
                "bits VQ matches element-wise\nlatency with better "
                "accuracy headroom; at 2 bits only VQ retains "
                "accuracy.\n");
    return 0;
}
