/**
 * @file
 * Quickstart: the complete VQ-LLM flow in one small program.
 *
 *  1. quantize a weight matrix with a VQ configuration,
 *  2. profile codebook access frequencies and reorder (offline phase),
 *  3. compile a fused kernel through compiler::Engine (plan -> cost ->
 *     emit -> execute behind one call),
 *  4. run it functionally and check the numerics,
 *  5. estimate its GPU latency and print the generated CUDA source.
 *
 * Build: cmake --build build && ./build/examples/quickstart
 *
 * Pass `--kernel-cache-dir DIR` to persist both the fitted codebooks
 * and the compiled kernels across runs (DESIGN.md Sec. 13): a second
 * invocation skips the k-means fit and the plan search entirely.
 */
#include <cstdio>
#include <cstring>
#include <memory>

#include "compiler/disk_cache.h"
#include "compiler/engine.h"
#include "kernels/reference.h"
#include "tensor/datagen.h"
#include "vq/profiler.h"

using namespace vqllm;

int
main(int argc, char **argv)
{
    std::shared_ptr<compiler::DiskCache> disk;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--kernel-cache-dir") == 0 &&
            i + 1 < argc) {
            disk = compiler::DiskCache::open(argv[++i]);
        }
    }

    // 1. A small weight matrix and a 2-bit VQ configuration.
    Rng rng(42);
    auto weight = generateLlmWeight(128, 64, rng); // [out, in]
    vq::VQConfig cfg = vq::gptvq2();               // VQ<4,8,1>
    cfg.num_entries = 64;                          // small demo codebook

    // With a persistent cache attached, the quantization itself is an
    // artifact: a warm run loads the fitted codebooks instead of
    // re-running the k-means fit.
    const std::string codebook_key =
        "quickstart/llm128x64/" + cfg.notation();
    vq::QuantizedTensor qt;
    bool codebook_hit = disk && disk->loadCodebook(codebook_key, qt);
    if (!codebook_hit) {
        vq::VectorQuantizer quantizer(cfg);
        qt = quantizer.quantize(weight);
        if (disk)
            disk->storeCodebook(codebook_key, qt);
    } else {
        std::printf("codebook cache hit: skipped quantization fit\n");
    }
    std::printf("quantized %zux%zu weight with %s: %zu -> %zu bytes "
                "(%.1f%%)\n",
                qt.rows, qt.cols, cfg.notation().c_str(),
                weight.size() * 2, qt.sizeBytes(),
                qt.achievedCompression() * 100);

    // 2. Offline profiling: frequency-reorder entries so that index ==
    //    hotness rank (the codebook cache's static mapping).
    auto profile = vq::reorderByFrequency(qt);
    std::printf("hot entries (>mu+3sigma): %zu of %zu; %.0f%% below "
                "mean\n",
                profile.histograms[0].entriesAbove(3.0),
                profile.histograms[0].counts.size(),
                profile.histograms[0].fractionBelowMean() * 100);

    // 3. Compile the fused GeMV kernel at the full optimization level:
    //    one call resolves the plan (Alg. 2), prices it, and hands
    //    back a shared immutable artifact.
    compiler::Engine compile_engine(gpusim::rtx4090());
    if (disk)
        compile_engine.setDiskCache(disk);
    auto kernel = compile_engine.compile(compiler::KernelRequest::gemvOp(
        {1, qt.rows, qt.cols}, cfg, engine::OptLevel::O4,
        &profile.histograms[0]));
    std::printf("\n%s\n", kernel->plan().summary().c_str());

    // 4. Functional execution vs the dense reference.
    Tensor<float> x({qt.cols});
    fillNormal(x, rng);
    auto result = kernel->runGemv(qt, x);
    auto reference = kernels::referenceGemv(
        vq::VectorQuantizer::dequantize(qt), x);
    std::printf("functional check: max |vq - reference| = %.2e\n",
                maxAbsDiff(result.output, reference));
    std::printf("cache tier hits: %llu register / %llu shared / %llu "
                "global\n",
                static_cast<unsigned long long>(result.stats.reg_hits),
                static_cast<unsigned long long>(
                    result.stats.shared_hits),
                static_cast<unsigned long long>(
                    result.stats.global_hits));

    // 5. Latency estimate at paper scale, plus the CUDA source — both
    //    come off the same compiled artifact (the estimate was priced
    //    at compile time; the source is emitted lazily and memoized).
    auto big = compile_engine.compile(compiler::KernelRequest::gemvOp(
        {1, 4096, 4096}, vq::gptvq2(), engine::OptLevel::O4,
        &profile.histograms[0]));
    std::printf("\nLlama-7B GeMV estimate on %s: %.1f us (DRAM %.1f, "
                "compute %.1f)\n",
                gpusim::rtx4090().name.c_str(), big->latencyUs(),
                big->estimate().latency.dram_us,
                big->estimate().latency.compute_us);

    const std::string &cuda = big->source();
    std::printf("\ngenerated CUDA kernel %s (%zu bytes); first "
                "lines:\n",
                big->symbolName().c_str(), cuda.size());
    std::size_t pos = 0;
    for (int line = 0; line < 12 && pos != std::string::npos; ++line) {
        std::size_t next = cuda.find('\n', pos);
        std::printf("  %s\n",
                    cuda.substr(pos, next - pos).c_str());
        pos = next == std::string::npos ? next : next + 1;
    }
    std::printf("  ...\n");
    if (disk) {
        auto ds = disk->stats();
        std::printf("\ndisk-cache: dir=%s hits=%llu misses=%llu "
                    "admits=%llu\n",
                    disk->dir().c_str(),
                    static_cast<unsigned long long>(ds.hits),
                    static_cast<unsigned long long>(ds.misses),
                    static_cast<unsigned long long>(ds.admits));
    }
    return 0;
}
