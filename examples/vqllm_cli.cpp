/**
 * @file
 * vqllm_cli: command-line front end to the library pipeline.
 *
 *   vqllm_cli quantize <config> <rows> <cols> <out.vqt> [seed]
 *       quantize a synthetic weight tensor and write the artifact
 *   vqllm_cli info <in.vqt>
 *       print artifact metadata, compression and profile statistics
 *   vqllm_cli plan <in.vqt> <gemm|gemv|attn> [level]
 *       resolve a fused-kernel plan and print it with a latency estimate
 *   vqllm_cli emit <in.vqt> <gemm|gemv|attn> <out.cu>
 *       generate the fused CUDA kernel for an artifact
 *
 * <config> is one of: quip4 aqlm3 gptvq2 cq4 cq2.
 */
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "codegen/cuda_emitter.h"
#include "compiler/engine.h"
#include "tensor/datagen.h"
#include "vq/profiler.h"
#include "vq/serialize.h"

using namespace vqllm;

namespace {

vq::VQConfig
configByName(const std::string &name)
{
    for (const auto &cfg : vq::paperConfigs()) {
        std::string key = cfg.name;
        for (char &c : key)
            c = static_cast<char>(std::tolower(c));
        key.erase(std::remove_if(key.begin(), key.end(),
                                 [](char c) {
                                     return !std::isalnum(
                                         static_cast<unsigned char>(c));
                                 }),
                  key.end());
        if (key == name)
            return cfg;
    }
    vqllm_fatal("unknown config '", name,
                "' (expected quip4|aqlm3|gptvq2|cq4|cq2)");
}

engine::OptLevel
levelByName(const std::string &name)
{
    for (auto level : engine::kAllOptLevels)
        if (name == engine::optLevelName(level))
            return level;
    vqllm_fatal("unknown level '", name, "' (GC|SC|O1|O2|O3|O4)");
}

int
cmdQuantize(int argc, char **argv)
{
    if (argc < 5)
        vqllm_fatal("usage: quantize <config> <rows> <cols> <out.vqt> "
                    "[seed]");
    vq::VQConfig cfg = configByName(argv[1]);
    std::size_t rows = std::stoul(argv[2]);
    std::size_t cols = std::stoul(argv[3]);
    std::uint64_t seed = argc > 5 ? std::stoull(argv[5]) : 42;

    Rng rng(seed);
    auto weight = generateLlmWeight(rows, cols, rng);
    vq::VectorQuantizer quantizer(cfg);
    auto qt = quantizer.quantize(weight);
    auto profile = vq::reorderByFrequency(qt);
    vq::saveQuantizedTensorFile(qt, argv[4]);
    std::printf("quantized %zux%zu with %s -> %s (%zu bytes, %.2f%% of "
                "FP16, %zu hot entries)\n",
                rows, cols, cfg.notation().c_str(), argv[4],
                qt.sizeBytes(), qt.achievedCompression() * 100,
                profile.histograms[0].entriesAbove(3.0));
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc < 2)
        vqllm_fatal("usage: info <in.vqt>");
    auto qt = vq::loadQuantizedTensorFile(argv[1]);
    std::printf("artifact: %s\n", argv[1]);
    std::printf("  config: %s %s, %u-bit indices, %u residual stage(s)\n",
                qt.config.name.c_str(), qt.config.notation().c_str(),
                qt.config.indexBits(), qt.config.residuals);
    std::printf("  shape: %zu x %zu, %zu codebook(s) over %zu scope "
                "unit(s)\n",
                qt.rows, qt.cols, qt.codebooks.size(), qt.scope_units);
    std::printf("  size: %zu B indices + %zu B codebooks = %.2f%% of "
                "FP16\n",
                qt.indexBytes(), qt.codebookTotalBytes(),
                qt.achievedCompression() * 100);
    auto profile = vq::profileAccesses(qt);
    const auto &h = profile.histograms[0];
    std::printf("  profile: %.0f%% of entries below mean, %zu above "
                "mu+3sigma\n",
                h.fractionBelowMean() * 100, h.entriesAbove(3.0));
    return 0;
}

/** Kernel request for an artifact and an op name. */
compiler::KernelRequest
requestFor(const vq::QuantizedTensor &qt, const std::string &op,
           engine::OptLevel level, const vq::AccessHistogram &hist)
{
    if (op == "attn") {
        // Interpret cols as heads*head_dim with 128-wide heads.
        std::size_t head_dim = 128;
        std::size_t heads = std::max<std::size_t>(qt.cols / head_dim, 1);
        return compiler::KernelRequest::attentionOp(
            {1, heads, qt.rows, head_dim}, qt.config, level, &hist);
    }
    engine::GemmShape shape{op == "gemm" ? std::size_t{4096}
                                         : std::size_t{1},
                            qt.rows, qt.cols};
    return op == "gemm" ? compiler::KernelRequest::gemmOp(
                              shape, qt.config, level, &hist)
                        : compiler::KernelRequest::gemvOp(
                              shape, qt.config, level, &hist);
}

int
cmdPlan(int argc, char **argv)
{
    if (argc < 3)
        vqllm_fatal("usage: plan <in.vqt> <gemm|gemv|attn> [level]");
    auto qt = vq::loadQuantizedTensorFile(argv[1]);
    auto level = argc > 3 ? levelByName(argv[3]) : engine::OptLevel::O4;
    auto profile = vq::profileAccesses(qt);
    compiler::Engine compile_engine(gpusim::rtx4090());
    auto kernel = compile_engine.compile(
        requestFor(qt, argv[2], level, profile.histograms[0]));
    std::printf("%s\n", kernel->plan().summary().c_str());
    const auto &result = kernel->estimate();
    std::printf("estimated latency on %s: %.1f us (DRAM %.1f, smem "
                "%.1f, compute %.1f, reduce %.1f)\n",
                gpusim::rtx4090().name.c_str(), result.us(),
                result.latency.dram_us, result.latency.smem_us,
                result.latency.compute_us, result.latency.reduce_us);
    return 0;
}

int
cmdEmit(int argc, char **argv)
{
    if (argc < 4)
        vqllm_fatal("usage: emit <in.vqt> <gemm|gemv|attn> <out.cu>");
    auto qt = vq::loadQuantizedTensorFile(argv[1]);
    auto profile = vq::profileAccesses(qt);
    compiler::Engine compile_engine(gpusim::rtx4090());
    auto kernel = compile_engine.compile(requestFor(
        qt, argv[2], engine::OptLevel::O4, profile.histograms[0]));
    const std::string &src = kernel->source();
    std::string problem = codegen::validateCudaSource(src);
    if (!problem.empty())
        vqllm_fatal("emitted source failed validation: ", problem);
    std::ofstream out(argv[3]);
    if (!out)
        vqllm_fatal("cannot open ", argv[3]);
    out << src;
    std::printf("wrote %s (%zu bytes, kernel %s)\n", argv[3],
                src.size(), kernel->symbolName().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: vqllm_cli <quantize|info|plan|emit> ...\n");
        return 1;
    }
    std::string cmd = argv[1];
    if (cmd == "quantize")
        return cmdQuantize(argc - 1, argv + 1);
    if (cmd == "info")
        return cmdInfo(argc - 1, argv + 1);
    if (cmd == "plan")
        return cmdPlan(argc - 1, argv + 1);
    if (cmd == "emit")
        return cmdEmit(argc - 1, argv + 1);
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 1;
}
