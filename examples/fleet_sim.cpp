/**
 * @file
 * fleet_sim: multi-replica fleet serving simulation from the command
 * line — N replicas behind a router, optionally disaggregated into
 * prefill and decode roles with priced KV handoffs.
 *
 *   fleet_sim [--replicas N] [--router round-robin|least-loaded|
 *             prefix-affinity|slo-aware] [--disaggregated on|off]
 *             [--prefill-replicas N] [--scheme fp16|ewq4|vq4|vq2]
 *             [--kv-scheme fp16|int4|vq4|vq2] [--model 7b|65b|70b]
 *             [--gpu 4090|a40] [--tp-degree N] [--hbm-gb G]
 *             [--chunk-tokens N] [--max-batch N]
 *             [--handoff-gbps G] [--handoff-latency-us U]
 *             [--qps N] [--duration S] [--seed N]
 *             [--arrival poisson|bursty|diurnal] [--burst-period S]
 *             [--burst-duty F] [--burst-peak M] [--diurnal-period S]
 *             [--diurnal-amplitude A] [--prompt-median N]
 *             [--prefix-groups N] [--prefix-tokens N]
 *             [--prefix-cache on|off] [--trace-out FILE]
 *             [--metrics-json FILE]
 *
 * All replicas share one hardware/model config here (the library
 * supports heterogeneous fleets).  In disaggregated mode the first
 * --prefill-replicas replicas (default: half, rounded up) take the
 * prefill role and the rest decode; prefill replicas stream each
 * finished sequence's KV cache to the least-loaded decode replica over
 * the handoff link.  A 1-replica aggregated fleet reproduces
 * serving_sim's report bit-identically.  Unrecognized arguments are a
 * hard error.
 */
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "common/logging.h"
#include "compiler/disk_cache.h"
#include "fleet/fleet.h"
#include "obs/metrics.h"
#include "serving/simulator.h"

using namespace vqllm;

namespace {

const char kUsage[] =
    "usage: fleet_sim [options]\n"
    "  --replicas N                 fleet size (default 2)\n"
    "  --router round-robin|least-loaded|prefix-affinity|slo-aware\n"
    "                               routing policy (default least-loaded)\n"
    "  --disaggregated on|off       prefill/decode disaggregation\n"
    "                               (default off)\n"
    "  --prefill-replicas N         disaggregated: prefill-role count\n"
    "                               (default: half, rounded up)\n"
    "  --scheme fp16|ewq4|vq4|vq2   weight scheme (default vq2)\n"
    "  --kv-scheme fp16|int4|vq4|vq2  KV-cache storage scheme (default:\n"
    "                               follows --scheme)\n"
    "  --model 7b|65b|70b           model configuration (default 7b)\n"
    "  --gpu 4090|a40               per-GPU hardware model (default 4090)\n"
    "  --tp-degree N                per-replica TP degree (default 1)\n"
    "  --hbm-gb G                   per-GPU HBM capacity, GB\n"
    "  --chunk-tokens N             chunked-prefill budget (default 512)\n"
    "  --max-batch N                max concurrent sequences per replica\n"
    "  --handoff-gbps G             prefill->decode KV link, GB/s, > 0\n"
    "  --handoff-latency-us U       per-handoff launch latency, us\n"
    "  --qps N                      mean fleet arrival rate (default 8)\n"
    "  --duration S                 arrival window, seconds (default 30)\n"
    "  --seed N                     workload seed (default 42)\n"
    "  --arrival poisson|bursty|diurnal\n"
    "                               arrival process shape (default\n"
    "                               poisson; all preserve the mean rate)\n"
    "  --burst-period S             bursty: cycle length, seconds\n"
    "  --burst-duty F               bursty: burst fraction, in (0,1)\n"
    "  --burst-peak M               bursty: burst rate multiplier, >= 1\n"
    "  --diurnal-period S           diurnal: cycle length, seconds\n"
    "  --diurnal-amplitude A        diurnal: rate swing, in [0,1)\n"
    "  --prompt-median N            median prompt length, tokens\n"
    "  --prefix-groups N            shared-prefix tenants in the trace\n"
    "  --prefix-tokens N            shared system-prompt length, > 0\n"
    "  --prefix-cache on|off        per-replica KV prefix caching\n"
    "  --kernel-cache-dir DIR       persistent compiled-kernel cache\n"
    "                               shared by every replica (DESIGN.md\n"
    "                               Sec. 13)\n"
    "                               (default off)\n"
    "  --trace-out FILE             write a merged Chrome/Perfetto trace\n"
    "                               (replica i on tracks prefixed r<i>/)\n"
    "  --metrics-json FILE          write fleet report + metrics as JSON\n"
    "  --help                       print this message and exit\n";

[[noreturn]] void
usageError(const std::string &message)
{
    std::fprintf(stderr, "fleet_sim: %s\n%s", message.c_str(), kUsage);
    std::exit(2);
}

const llm::LlamaConfig &
modelByName(const std::string &name)
{
    if (name == "7b")
        return llm::llama7b();
    if (name == "65b")
        return llm::llama65b();
    if (name == "70b")
        return llm::llama70b();
    vqllm_fatal("unknown model '", name, "' (expected 7b|65b|70b)");
}

const gpusim::GpuSpec &
gpuByName(const std::string &name)
{
    if (name == "4090")
        return gpusim::rtx4090();
    if (name == "a40")
        return gpusim::teslaA40();
    vqllm_fatal("unknown gpu '", name, "' (expected 4090|a40)");
}

bool
parseOnOff(const std::string &flag, const std::string &v)
{
    if (v == "on")
        return true;
    if (v == "off")
        return false;
    usageError(flag + " expects on|off, got '" + v + "'");
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t replicas = 2;
    std::size_t prefill_replicas = 0; // 0 = half, rounded up
    bool disaggregated = false;

    fleet::FleetConfig cfg;
    cfg.router = fleet::RouterPolicy::LeastLoaded;
    cfg.workload.qps = 8;
    cfg.workload.duration_s = 30;

    serving::SimulatorConfig sim;
    sim.spec = &gpusim::rtx4090();
    sim.model = &llm::llama7b();
    sim.scheduler.chunk_tokens = 512;

    bool hbm_set = false;
    std::string trace_out;
    std::string metrics_out;
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usageError("flag " + flag + " needs a value");
            return argv[++i];
        };
        if (flag == "--replicas") {
            replicas = std::stoul(value());
            if (replicas == 0)
                usageError("--replicas must be >= 1");
        } else if (flag == "--router") {
            std::string v = value();
            auto p = fleet::parseRouterPolicy(v);
            if (!p)
                usageError("--router expects round-robin|least-loaded|"
                           "prefix-affinity|slo-aware, got '" + v + "'");
            cfg.router = *p;
        } else if (flag == "--disaggregated") {
            disaggregated = parseOnOff(flag, value());
        } else if (flag == "--prefill-replicas") {
            prefill_replicas = std::stoul(value());
        } else if (flag == "--scheme") {
            if (!llm::parseQuantScheme(value(), &sim.scheme))
                vqllm_fatal("unknown scheme (fp16|ewq4|vq4|vq2)");
        } else if (flag == "--kv-scheme") {
            llm::KvScheme kv;
            if (!llm::parseKvScheme(value(), &kv))
                vqllm_fatal("unknown KV scheme (fp16|int4|vq4|vq2)");
            sim.kv_scheme = kv;
        } else if (flag == "--model") {
            sim.model = &modelByName(value());
        } else if (flag == "--gpu") {
            sim.spec = &gpuByName(value());
        } else if (flag == "--tp-degree") {
            sim.tp.degree = std::stoi(value());
            if (sim.tp.degree < 1)
                usageError("--tp-degree must be >= 1");
        } else if (flag == "--hbm-gb") {
            sim.hbm_gb = std::stod(value());
            hbm_set = true;
        } else if (flag == "--chunk-tokens") {
            sim.scheduler.chunk_tokens = std::stoul(value());
        } else if (flag == "--max-batch") {
            sim.scheduler.max_batch = std::stoul(value());
        } else if (flag == "--handoff-gbps") {
            cfg.handoff_link.link_bw_gbps = std::stod(value());
            if (cfg.handoff_link.link_bw_gbps <= 0)
                usageError("--handoff-gbps must be > 0");
        } else if (flag == "--handoff-latency-us") {
            cfg.handoff_link.collective_latency_us = std::stod(value());
            if (cfg.handoff_link.collective_latency_us < 0)
                usageError("--handoff-latency-us must be >= 0");
        } else if (flag == "--qps") {
            cfg.workload.qps = std::stod(value());
        } else if (flag == "--duration") {
            cfg.workload.duration_s = std::stod(value());
        } else if (flag == "--seed") {
            cfg.workload.seed = std::stoull(value());
        } else if (flag == "--arrival") {
            std::string v = value();
            auto p = serving::parseArrivalPattern(v);
            if (!p)
                usageError("--arrival expects poisson|bursty|diurnal, "
                           "got '" + v + "'");
            cfg.workload.arrival = *p;
        } else if (flag == "--burst-period") {
            cfg.workload.burst_period_s = std::stod(value());
        } else if (flag == "--burst-duty") {
            cfg.workload.burst_duty = std::stod(value());
        } else if (flag == "--burst-peak") {
            cfg.workload.burst_peak = std::stod(value());
        } else if (flag == "--diurnal-period") {
            cfg.workload.diurnal_period_s = std::stod(value());
        } else if (flag == "--diurnal-amplitude") {
            cfg.workload.diurnal_amplitude = std::stod(value());
        } else if (flag == "--prompt-median") {
            cfg.workload.prompt_len_median = std::stoul(value());
        } else if (flag == "--prefix-groups") {
            cfg.workload.prefix_groups = std::stoul(value());
        } else if (flag == "--prefix-tokens") {
            cfg.workload.prefix_tokens = std::stoul(value());
            if (cfg.workload.prefix_tokens == 0)
                usageError("--prefix-tokens must be > 0");
        } else if (flag == "--prefix-cache") {
            sim.prefix_cache = parseOnOff(flag, value());
        } else if (flag == "--kernel-cache-dir") {
            sim.kernel_cache_dir = value();
        } else if (flag == "--trace-out") {
            trace_out = value();
        } else if (flag == "--metrics-json") {
            metrics_out = value();
        } else if (flag == "--help" || flag == "-h") {
            std::printf("%s", kUsage);
            return 0;
        } else {
            usageError("unknown flag '" + flag + "'");
        }
    }
    if (!hbm_set && sim.spec == &gpusim::teslaA40())
        sim.hbm_gb = 48.0; // A40 ships 48 GB

    if (prefill_replicas == 0)
        prefill_replicas = (replicas + 1) / 2;
    if (disaggregated &&
        (replicas < 2 || prefill_replicas >= replicas))
        usageError("disaggregation needs >= 2 replicas with at least "
                   "one prefill and one decode role");

    obs::MetricsRegistry registry;
    if (!metrics_out.empty())
        cfg.metrics = &registry;
    cfg.trace = !trace_out.empty();

    // All replicas inherit the same directory through sim, so the
    // whole fleet warms up from one shared store; holding the instance
    // here keeps its counters alive past the run.
    std::shared_ptr<compiler::DiskCache> disk;
    if (!sim.kernel_cache_dir.empty())
        disk = compiler::DiskCache::open(sim.kernel_cache_dir);

    cfg.replicas.resize(replicas);
    for (std::size_t r = 0; r < replicas; ++r) {
        cfg.replicas[r].sim = sim;
        cfg.replicas[r].role =
            !disaggregated ? fleet::ReplicaRole::Aggregated
            : r < prefill_replicas ? fleet::ReplicaRole::Prefill
                                   : fleet::ReplicaRole::Decode;
    }

    std::printf("fleet: %zu x %s on %s / %s, router %s, %s%s\n",
                replicas, sim.model->name.c_str(),
                sim.spec->name.c_str(),
                llm::quantSchemeName(sim.scheme),
                fleet::routerPolicyName(cfg.router),
                disaggregated ? "disaggregated" : "aggregated",
                cfg.workload.arrival != serving::ArrivalPattern::Poisson
                    ? (std::string(", ") +
                       serving::arrivalPatternName(cfg.workload.arrival) +
                       " arrivals")
                          .c_str()
                    : "");

    fleet::FleetSimulator fsim(cfg);
    auto report = fsim.run();
    std::printf("%s", report.summary().c_str());

    if (disk) {
        const compiler::DiskCacheStats ds = disk->stats();
        std::printf("disk-cache: dir=%s hits=%llu misses=%llu "
                    "admits=%llu evictions=%llu quarantined=%llu "
                    "entries=%llu bytes=%llu hit_rate=%.4f\n",
                    disk->dir().c_str(),
                    static_cast<unsigned long long>(ds.hits),
                    static_cast<unsigned long long>(ds.misses),
                    static_cast<unsigned long long>(ds.admits),
                    static_cast<unsigned long long>(ds.evictions),
                    static_cast<unsigned long long>(ds.quarantined),
                    static_cast<unsigned long long>(ds.entries),
                    static_cast<unsigned long long>(ds.bytes),
                    ds.hitRate());
    }

    if (!trace_out.empty()) {
        std::ofstream os(trace_out, std::ios::binary);
        if (!os)
            vqllm_fatal("cannot open trace output '", trace_out, "'");
        fsim.writeChromeTrace(os);
        std::printf("trace: merged %zu replica timelines -> %s (load "
                    "in https://ui.perfetto.dev)\n",
                    replicas, trace_out.c_str());
    }
    if (!metrics_out.empty()) {
        std::ofstream os(metrics_out, std::ios::binary);
        if (!os)
            vqllm_fatal("cannot open metrics output '", metrics_out,
                        "'");
        os << "{\"report\":" << report.json()
           << ",\"metrics\":" << registry.json() << "}\n";
        std::printf("metrics: %zu instruments -> %s\n", registry.size(),
                    metrics_out.c_str());
    }
    return 0;
}
