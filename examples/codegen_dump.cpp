/**
 * @file
 * CUDA code-generation dump: emits the fused kernel source for every
 * paper configuration and computation at the full optimization level,
 * writing each translation unit to ./generated/ (or stdout with -).
 *
 * Usage: codegen_dump [output_dir | -]
 */
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "codegen/cuda_emitter.h"
#include "engine/template_engine.h"

using namespace vqllm;

int
main(int argc, char **argv)
{
    std::string out_dir = argc > 1 ? argv[1] : "generated";
    bool to_stdout = out_dir == "-";
    if (!to_stdout)
        std::filesystem::create_directories(out_dir);

    engine::PlanInputs in;
    in.spec = &gpusim::rtx4090();

    int emitted = 0;
    for (const auto &cfg : vq::paperConfigs()) {
        bool kv = cfg.scope == vq::CodebookScope::PerChannelGroup;
        std::vector<engine::KernelPlan> plans;
        if (kv) {
            plans.push_back(engine::planAttentionKernel(
                {1, 32, 1024, 128}, cfg, engine::OptLevel::O4, in));
        } else {
            plans.push_back(engine::planWeightKernel(
                engine::OpKind::GeMM, {4096, 4096, 4096}, cfg,
                engine::OptLevel::O4, in));
            plans.push_back(engine::planWeightKernel(
                engine::OpKind::GeMV, {1, 4096, 4096}, cfg,
                engine::OptLevel::O4, in));
        }
        for (const auto &plan : plans) {
            std::string name = codegen::kernelSymbolName(plan);
            std::string src = codegen::emitCudaKernel(plan);
            std::string problem = codegen::validateCudaSource(src);
            if (!problem.empty()) {
                std::fprintf(stderr, "INVALID %s: %s\n", name.c_str(),
                             problem.c_str());
                return 1;
            }
            if (to_stdout) {
                std::printf("// ===== %s.cu =====\n%s\n", name.c_str(),
                            src.c_str());
            } else {
                std::ofstream file(out_dir + "/" + name + ".cu");
                file << src;
                std::printf("wrote %s/%s.cu (%zu bytes, %llu blocks x "
                            "%d threads)\n",
                            out_dir.c_str(), name.c_str(), src.size(),
                            static_cast<unsigned long long>(
                                plan.grid_blocks),
                            plan.block.threads);
            }
            ++emitted;
        }
    }
    std::printf("%d kernels emitted and validated.\n", emitted);
    return 0;
}
