/**
 * @file
 * CUDA code-generation dump: compiles the fused kernel for every paper
 * configuration and computation through compiler::Engine and writes
 * each translation unit to ./generated/ (or stdout with -).
 *
 * Usage: codegen_dump [--emit-all-levels] [output_dir | -]
 *
 * By default kernels are emitted at the full optimization level (O4);
 * --emit-all-levels dumps one translation unit per rung of the
 * Tbl. IV ladder (GC..O4) instead.
 */
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "codegen/cuda_emitter.h"
#include "compiler/engine.h"

using namespace vqllm;

int
main(int argc, char **argv)
{
    bool all_levels = false;
    std::string out_dir = "generated";
    bool have_dir = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--emit-all-levels") == 0) {
            all_levels = true;
        } else if (std::strncmp(argv[i], "--", 2) == 0 ||
                   have_dir) {
            std::fprintf(stderr,
                         "unknown argument '%s'\nusage: codegen_dump "
                         "[--emit-all-levels] [output_dir | -]\n",
                         argv[i]);
            return 1;
        } else {
            out_dir = argv[i];
            have_dir = true;
        }
    }
    bool to_stdout = out_dir == "-";
    if (!to_stdout)
        std::filesystem::create_directories(out_dir);

    std::vector<engine::OptLevel> levels;
    if (all_levels)
        levels.assign(std::begin(engine::kAllOptLevels),
                      std::end(engine::kAllOptLevels));
    else
        levels.push_back(engine::OptLevel::O4);

    compiler::Engine compile_engine(gpusim::rtx4090());

    int emitted = 0;
    for (const auto &cfg : vq::paperConfigs()) {
        bool kv = cfg.scope == vq::CodebookScope::PerChannelGroup;
        for (auto level : levels) {
            std::vector<compiler::KernelRequest> requests;
            if (kv) {
                requests.push_back(compiler::KernelRequest::attentionOp(
                    {1, 32, 1024, 128}, cfg, level));
            } else {
                requests.push_back(compiler::KernelRequest::gemmOp(
                    {4096, 4096, 4096}, cfg, level));
                requests.push_back(compiler::KernelRequest::gemvOp(
                    {1, 4096, 4096}, cfg, level));
            }
            for (const auto &request : requests) {
                auto kernel = compile_engine.compile(request);
                const std::string &name = kernel->symbolName();
                const std::string &src = kernel->source();
                std::string problem = codegen::validateCudaSource(src);
                if (!problem.empty()) {
                    std::fprintf(stderr, "INVALID %s: %s\n",
                                 name.c_str(), problem.c_str());
                    return 1;
                }
                if (to_stdout) {
                    std::printf("// ===== %s.cu =====\n%s\n",
                                name.c_str(), src.c_str());
                } else {
                    std::ofstream file(out_dir + "/" + name + ".cu");
                    file << src;
                    std::printf(
                        "wrote %s/%s.cu (%zu bytes, %llu blocks x "
                        "%d threads)\n",
                        out_dir.c_str(), name.c_str(), src.size(),
                        static_cast<unsigned long long>(
                            kernel->plan().grid_blocks),
                        kernel->plan().block.threads);
                }
                ++emitted;
            }
        }
    }
    std::printf("%d kernels emitted and validated.\n", emitted);
    return 0;
}
