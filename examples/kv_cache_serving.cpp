/**
 * @file
 * KV-cache serving scenario: decode attention over a CQ-quantized KV
 * cache (the workload of the paper's introduction — long-context
 * serving where the KV cache dominates memory).
 *
 * Quantizes a synthetic multi-head KV cache with CQ-2 and CQ-4, runs
 * the fused attention kernel functionally, verifies against the FP16
 * reference, then sweeps sequence lengths at paper scale to show how
 * the latency advantage grows with context.
 */
#include <cstdio>

#include "compiler/engine.h"
#include "kernels/fp16_kernels.h"
#include "kernels/reference.h"
#include "tensor/datagen.h"
#include "vq/profiler.h"

using namespace vqllm;

namespace {

vq::QuantizedTensor
quantizeKv(const Tensor<float> &kv3, const vq::VQConfig &cfg)
{
    const std::size_t heads = kv3.dim(0), tokens = kv3.dim(1),
                      channels = kv3.dim(2);
    Tensor<float> flat({tokens, heads * channels});
    for (std::size_t h = 0; h < heads; ++h)
        for (std::size_t t = 0; t < tokens; ++t)
            for (std::size_t c = 0; c < channels; ++c)
                flat.at(t, h * channels + c) = kv3.at(h, t, c);
    vq::KMeansOptions opts;
    opts.max_iters = 8;
    auto qt = vq::VectorQuantizer(cfg, opts).quantize(flat);
    vq::reorderByFrequency(qt);
    return qt;
}

} // namespace

int
main()
{
    const std::size_t heads = 4, tokens = 96, channels = 16;
    Rng rng(7);
    auto k3 = generateKvCache(heads, tokens, channels, rng);
    auto v3 = generateKvCache(heads, tokens, channels, rng);
    Tensor<float> q({heads, channels});
    fillNormal(q, rng);

    vq::VQConfig cfg = vq::cq2();
    cfg.num_entries = 64;
    auto qt_k = quantizeKv(k3, cfg);
    auto qt_v = quantizeKv(v3, cfg);
    std::printf("KV cache quantized with %s (%s): %zu -> %zu bytes\n",
                cfg.name.c_str(), cfg.notation().c_str(),
                k3.size() * 2 * 2, qt_k.sizeBytes() + qt_v.sizeBytes());

    compiler::Engine compile_engine(gpusim::rtx4090());
    auto kernel = compile_engine.compile(
        compiler::KernelRequest::attentionOp(
            {1, heads, tokens, channels}, cfg, engine::OptLevel::O4));
    auto result = kernel->runAttention(qt_k, qt_v, q);

    // Verify against the FP16 reference over the dequantized caches.
    auto dk = vq::VectorQuantizer::dequantize(qt_k);
    auto dv = vq::VectorQuantizer::dequantize(qt_v);
    Tensor<float> k_hd({heads, tokens, channels}),
        v_hd({heads, tokens, channels});
    for (std::size_t h = 0; h < heads; ++h)
        for (std::size_t t = 0; t < tokens; ++t)
            for (std::size_t c = 0; c < channels; ++c) {
                k_hd.at(h, t, c) = dk.at(t, h * channels + c);
                v_hd.at(h, t, c) = dv.at(t, h * channels + c);
            }
    auto reference = kernels::referenceAttention(q, k_hd, v_hd);
    std::printf("functional check: max |vq - reference| = %.2e\n",
                maxAbsDiff(result.output, reference));
    std::printf("attention output quality vs unquantized KV: MSE = "
                "%.4f\n",
                mse(result.output,
                    kernels::referenceAttention(q, k3, v3)));

    // Paper-scale sweep: Llama-7B decode at growing context lengths.
    std::printf("\nLlama-7B decode attention sweep (BS8, %s):\n",
                gpusim::rtx4090().name.c_str());
    std::printf("  %8s %12s %12s %12s %9s\n", "seq", "FP16 (us)",
                "CQ-2 (us)", "CQ-4 (us)", "best gain");
    auto hist = vq::syntheticZipfHistogram(256);
    for (std::size_t seq : {1024u, 2048u, 4096u, 8192u}) {
        engine::AttnShape shape{8, 32, seq, 128};
        auto fp16 = kernels::fp16AttentionEstimate(gpusim::rtx4090(),
                                                   shape);
        auto k2 = compile_engine.compile(
            compiler::KernelRequest::attentionOp(
                shape, vq::cq2(), engine::OptLevel::O4, &hist));
        auto k4 = compile_engine.compile(
            compiler::KernelRequest::attentionOp(
                shape, vq::cq4(), engine::OptLevel::O4, &hist));
        std::printf("  %8zu %12.1f %12.1f %12.1f %8.2fx\n", seq,
                    fp16.us(), k2->latencyUs(), k4->latencyUs(),
                    fp16.us() /
                        std::min(k2->latencyUs(), k4->latencyUs()));
    }
    std::printf("\nthe VQ advantage grows with context length as the "
                "KV cache dominates traffic.\n");
    return 0;
}
