/**
 * @file
 * Weight-only quantized linear layer: compares the Tbl. II weight
 * configurations (QuiP#-4, AQLM-3, GPTVQ-2) on the same layer —
 * reconstruction quality, compression, end-layer output error, and the
 * planned kernel at every optimization level.
 */
#include <cstdio>

#include "compiler/engine.h"
#include "kernels/reference.h"
#include "tensor/datagen.h"
#include "vq/profiler.h"

using namespace vqllm;

int
main()
{
    Rng rng(11);
    const std::size_t out_features = 96, in_features = 64;
    auto weight = generateLlmWeight(out_features, in_features, rng);
    Tensor<float> x({in_features});
    fillNormal(x, rng);
    auto y_ref = kernels::referenceGemv(weight, x);

    std::printf("weight-only quantized linear layer "
                "(%zux%zu)\n\n", out_features, in_features);
    std::printf("  %-10s %6s %12s %14s %14s\n", "config", "bits",
                "compression", "weight MSE", "output MSE");

    for (auto base : {vq::quip4(), vq::aqlm3(), vq::gptvq2()}) {
        vq::VQConfig cfg = base;
        // Shrink codebooks to this demo's tensor size.
        cfg.num_entries = std::min<std::size_t>(cfg.num_entries, 64);
        if (cfg.lattice) {
            cfg.lattice_base_entries = 32;
            cfg.num_entries = 32u << cfg.vector_size;
        }
        vq::KMeansOptions opts;
        opts.max_iters = 10;
        auto qt = vq::VectorQuantizer(cfg, opts).quantize(weight);
        auto rec = vq::VectorQuantizer::dequantize(qt);
        auto y = kernels::referenceGemv(rec, x);
        std::printf("  %-10s %6.2f %11.1f%% %14.6f %14.6f\n",
                    base.name.c_str(), base.bitsPerElement(),
                    qt.achievedCompression() * 100, mse(weight, rec),
                    mse(y_ref, y));
    }

    // Compiled kernels at every optimization rung for one config.
    std::printf("\nLlama-7B GeMV kernel plans for GPTVQ-2 across the "
                "Tbl. IV ladder:\n\n");
    compiler::Engine compile_engine(gpusim::rtx4090());
    auto hist = vq::syntheticZipfHistogram(256);
    std::printf("  %-5s %10s %10s %8s %10s %12s\n", "level",
                "cache smem", "cache regs", "split", "fusion",
                "est. us");
    for (auto level : engine::kAllOptLevels) {
        auto kernel =
            compile_engine.compile(compiler::KernelRequest::gemvOp(
                {1, 4096, 4096}, vq::gptvq2(), level, &hist));
        const auto &plan = kernel->plan();
        std::printf("  %-5s %9zuB %10d %8llu %10s %12.1f\n",
                    engine::optLevelName(level),
                    plan.cache_plan.smemBytes(),
                    plan.cache_plan.regsPerThread(),
                    static_cast<unsigned long long>(
                        plan.dataflow.split),
                    engine::fusionLevelName(plan.fusion.level),
                    kernel->latencyUs());
    }
    std::printf("\nthe adaptive (O4) plan caches the hot set in the "
                "occupancy slack, owns one codebook\nper block, and "
                "fuses dequantization in registers.\n");
    return 0;
}
