/**
 * @file
 * The codebook cache (paper Sec. V): a software-managed placement of
 * codebook entries across the GPU memory hierarchy.
 *
 * After frequency reordering (vq::reorderByFrequency) entry index equals
 * frequency rank, so placement reduces to two boundaries:
 *
 *   index <  n_reg              -> thread-local registers (hot)
 *   n_reg <= index < n_shared   -> shared memory           (medium)
 *   index >= n_shared           -> global memory           (cold)
 *
 * The boundaries are chosen adaptively from the *resource slack* of the
 * consuming kernel (gpusim::computeSlack) so that caching never reduces
 * occupancy (Fig. 10), and the register boundary is additionally capped
 * by the number of genuinely hot entries (frequency > mu + 3 sigma),
 * since only those are worth per-thread replication.
 *
 * The runtime interface mirrors the paper's user API:
 *   Load   -> CodebookCache::load()
 *   Access -> CodebookCache::access()
 *   Switch -> CodebookCache::switchTo()
 */
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/gpu_spec.h"
#include "gpusim/occupancy.h"
#include "gpusim/traffic.h"
#include "vq/codebook.h"
#include "vq/profiler.h"

namespace vqllm::cache {

/** Memory tier holding a cached entry. */
enum class Tier {
    Register,
    Shared,
    Global,
};

/** @return printable tier name. */
const char *tierName(Tier tier);

/** Static placement decision for one codebook configuration. */
struct CachePlan
{
    /** Entries [0, n_reg) live in registers. */
    std::size_t n_reg = 0;
    /** Entries [n_reg, n_shared) live in shared memory. */
    std::size_t n_shared = 0;
    /** Total stored entries of the codebook. */
    std::size_t total_entries = 0;
    /** Bytes per stored entry. */
    std::size_t entry_bytes = 0;

    /** @return tier of a (frequency-ranked) stored entry index. */
    Tier
    tierOf(std::uint32_t stored_index) const
    {
        if (stored_index < n_reg)
            return Tier::Register;
        if (stored_index < n_shared)
            return Tier::Shared;
        return Tier::Global;
    }

    /** @return shared-memory bytes consumed by the cached entries. */
    std::size_t
    smemBytes() const
    {
        return (n_shared - n_reg) * entry_bytes;
    }

    /** @return per-thread registers consumed by the register tier. */
    int
    regsPerThread() const
    {
        // Entries are replicated per thread, 4 bytes per register.
        return static_cast<int>((n_reg * entry_bytes + 3) / 4);
    }

    /** @return number of entries resident in shared memory. */
    std::size_t
    sharedEntries() const
    {
        return n_shared - n_reg;
    }
};

/** Options steering the placement heuristic. */
struct CachePolicy
{
    /** Cache levels enabled (paper Tbl. IV optimization ladder). */
    bool use_shared = true;     // off = GC baseline
    bool use_registers = true;  // off = O1 only
    /**
     * Greedy mode (SC baseline): put *all* entries in shared memory
     * regardless of slack, reducing occupancy like the naive version.
     */
    bool greedy_shared = false;
    /** Sigma multiplier defining "hot" entries for the register tier. */
    double hot_sigma = 3.0;
    /** Cap on register-tier entries regardless of slack. */
    std::size_t max_reg_entries = 32;
};

/**
 * Decide cache boundaries for a codebook given the consuming kernel's
 * resource footprint (paper Sec. V-B "Adaptivity").
 *
 * @param spec          target GPU
 * @param compute_block the consumer kernel's own per-block resources
 *                      (cache allocations are carved from its slack)
 * @param total_entries stored entries per codebook
 * @param entry_bytes   bytes per stored entry
 * @param hist          access histogram (frequency-ranked not required);
 *                      may be null, in which case the hot-entry cap
 *                      falls back to max_reg_entries
 * @param policy        heuristic switches
 */
CachePlan planCache(const gpusim::GpuSpec &spec,
                    const gpusim::BlockResources &compute_block,
                    std::size_t total_entries, std::size_t entry_bytes,
                    const vq::AccessHistogram *hist = nullptr,
                    const CachePolicy &policy = CachePolicy{});

/** Access-tier hit counts recorded by a CodebookCache. */
struct AccessStats
{
    std::uint64_t reg_hits = 0;
    std::uint64_t shared_hits = 0;
    std::uint64_t global_hits = 0;

    std::uint64_t
    total() const
    {
        return reg_hits + shared_hits + global_hits;
    }
};

/**
 * Runtime view of one codebook cached across the memory hierarchy.
 *
 * Functional: access() decodes entries bit-exactly via the underlying
 * codebook.  Architectural: every access records its tier so kernels can
 * convert hits into memory traffic and bank-conflict serialization.
 */
class CodebookCache
{
  public:
    /**
     * Load a codebook into the cache (paper API: Load).
     *
     * Counts the initial placement traffic into `counters` if non-null:
     * global->shared bytes for the shared tier, plus one broadcast load
     * per warp for the register tier.
     *
     * @param codebook        frequency-reordered codebook
     * @param plan            placement boundaries
     * @param warps_per_block warps that replicate the register tier
     * @param counters        optional traffic accumulator
     */
    static CodebookCache load(const vq::Codebook &codebook,
                              const CachePlan &plan, int warps_per_block,
                              gpusim::KernelCounters *counters = nullptr);

    /**
     * Decode a logical index, recording the access tier (paper API:
     * Access).
     *
     * @param logical logical entry index (lattice indices allowed)
     * @param out     receives vector_size reconstructed elements
     * @return the tier that served the access
     */
    Tier access(std::uint32_t logical, float *out);

    /**
     * Switch to a different codebook reusing this plan (paper API:
     * Switch).  Re-counts placement traffic into `counters`.
     */
    void switchTo(const vq::Codebook &codebook,
                  gpusim::KernelCounters *counters = nullptr);

    /** @return tier of a logical index without decoding. */
    Tier
    tierOfLogical(std::uint32_t logical) const
    {
        return plan_.tierOf(codebook_->storedIndexOf(logical));
    }

    const CachePlan &plan() const { return plan_; }
    const AccessStats &stats() const { return stats_; }
    const vq::Codebook &codebook() const { return *codebook_; }

    /** Reset access statistics. */
    void resetStats() { stats_ = AccessStats{}; }

    /**
     * Shared-memory byte offset of a stored index resident in the shared
     * tier (used for exact warp-level bank-conflict counting).
     */
    std::uint32_t
    sharedOffsetOf(std::uint32_t stored_index) const
    {
        return static_cast<std::uint32_t>(
            (stored_index - plan_.n_reg) * plan_.entry_bytes);
    }

  private:
    const vq::Codebook *codebook_ = nullptr;
    CachePlan plan_;
    int warpsPerBlock_ = 1;
    AccessStats stats_;
};

} // namespace vqllm::cache
