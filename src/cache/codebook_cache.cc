#include "cache/codebook_cache.h"

#include <algorithm>

#include "common/logging.h"

namespace vqllm::cache {

const char *
tierName(Tier tier)
{
    switch (tier) {
      case Tier::Register: return "register";
      case Tier::Shared:   return "shared";
      case Tier::Global:   return "global";
    }
    return "?";
}

CachePlan
planCache(const gpusim::GpuSpec &spec,
          const gpusim::BlockResources &compute_block,
          std::size_t total_entries, std::size_t entry_bytes,
          const vq::AccessHistogram *hist, const CachePolicy &policy)
{
    vqllm_assert(entry_bytes > 0, "entry_bytes must be positive");
    CachePlan plan;
    plan.total_entries = total_entries;
    plan.entry_bytes = entry_bytes;

    if (!policy.use_shared) {
        // GC baseline: everything stays in global memory.
        plan.n_reg = 0;
        plan.n_shared = 0;
        return plan;
    }

    if (policy.greedy_shared) {
        // SC baseline: cache all entries in shared memory, no registers,
        // regardless of the occupancy cost (paper Sec. III).  Physically
        // capped by the per-block shared-memory limit.
        std::size_t available =
            spec.max_smem_per_block > compute_block.smem_bytes
                ? spec.max_smem_per_block - compute_block.smem_bytes
                : 0;
        plan.n_reg = 0;
        plan.n_shared = std::min(total_entries, available / entry_bytes);
        return plan;
    }

    gpusim::ResourceSlack slack = gpusim::computeSlack(spec, compute_block);

    // Register tier: bounded by (a) register slack, (b) the number of
    // genuinely hot entries, (c) a hard cap.
    std::size_t n_reg = 0;
    if (policy.use_registers) {
        std::size_t by_slack =
            static_cast<std::size_t>(slack.regs_per_thread) * 4 /
            entry_bytes;
        std::size_t by_hotness =
            hist ? hist->entriesAbove(policy.hot_sigma)
                 : policy.max_reg_entries;
        n_reg = std::min({by_slack, by_hotness, policy.max_reg_entries,
                          total_entries});
    }

    // Shared tier: fill the shared-memory slack with the next-hottest
    // entries.
    std::size_t by_smem_slack = slack.smem_bytes / entry_bytes;
    std::size_t n_shared =
        n_reg + std::min(by_smem_slack, total_entries - n_reg);

    plan.n_reg = n_reg;
    plan.n_shared = n_shared;
    return plan;
}

CodebookCache
CodebookCache::load(const vq::Codebook &codebook, const CachePlan &plan,
                    int warps_per_block, gpusim::KernelCounters *counters)
{
    vqllm_assert(plan.entry_bytes == codebook.vectorSize() * 2,
                 "plan entry bytes ", plan.entry_bytes,
                 " != codebook entry bytes ", codebook.vectorSize() * 2);
    vqllm_assert(plan.total_entries == codebook.storedEntries(),
                 "plan entries mismatch");
    CodebookCache cache;
    cache.codebook_ = &codebook;
    cache.plan_ = plan;
    cache.warpsPerBlock_ = warps_per_block;
    if (counters) {
        std::uint64_t shared_bytes = plan.smemBytes();
        std::uint64_t reg_bytes = static_cast<std::uint64_t>(plan.n_reg) *
                                  plan.entry_bytes * warps_per_block;
        counters->dram_read_bytes += shared_bytes + reg_bytes;
        counters->global_to_shared_bytes += shared_bytes;
    }
    return cache;
}

Tier
CodebookCache::access(std::uint32_t logical, float *out)
{
    vqllm_assert(codebook_ != nullptr, "cache not loaded");
    std::uint32_t stored = codebook_->storedIndexOf(logical);
    Tier tier = plan_.tierOf(stored);
    switch (tier) {
      case Tier::Register: ++stats_.reg_hits; break;
      case Tier::Shared:   ++stats_.shared_hits; break;
      case Tier::Global:   ++stats_.global_hits; break;
    }
    codebook_->decode(logical, out);
    return tier;
}

void
CodebookCache::switchTo(const vq::Codebook &codebook,
                        gpusim::KernelCounters *counters)
{
    vqllm_assert(codebook.storedEntries() == plan_.total_entries &&
                     codebook.vectorSize() * 2 == plan_.entry_bytes,
                 "switched codebook is incompatible with the plan");
    codebook_ = &codebook;
    if (counters) {
        std::uint64_t shared_bytes = plan_.smemBytes();
        std::uint64_t reg_bytes =
            static_cast<std::uint64_t>(plan_.n_reg) * plan_.entry_bytes *
            warpsPerBlock_;
        counters->dram_read_bytes += shared_bytes + reg_bytes;
        counters->global_to_shared_bytes += shared_bytes;
    }
}

} // namespace vqllm::cache
