/**
 * @file
 * Online codebook-profile maintenance (the "Codebook Reorder & Update"
 * stage of paper Fig. 7).
 *
 * Offline profiling fixes an initial frequency order, but a serving
 * workload can drift (different prompts light up different entries).
 * This module maintains an exponentially-weighted access histogram,
 * measures how much of the cached tier placement the drift would
 * change, and decides when a re-reorder (vq::reorderByFrequency, plus
 * re-upload of the reordered codebook) is worth its cost.
 */
#pragma once

#include "cache/codebook_cache.h"
#include "vq/profiler.h"

namespace vqllm::cache {

/** Decision thresholds for online re-reordering. */
struct UpdatePolicy
{
    /** EWMA weight of newly observed accesses, in (0, 1]. */
    double decay = 0.3;
    /** Re-reorder when this fraction of cached entries would change
     *  tier under the fresh ordering. */
    double drift_threshold = 0.25;
};

/** Maintains a live access profile for one (reordered) codebook. */
class OnlineProfile
{
  public:
    /**
     * @param initial offline histogram *after* frequency reordering
     *                (so counts are non-increasing in entry index)
     * @param policy  update thresholds
     */
    explicit OnlineProfile(vq::AccessHistogram initial,
                           UpdatePolicy policy = UpdatePolicy{});

    /**
     * Fold a freshly observed histogram into the running profile
     * (per-entry EWMA with the policy's decay).
     */
    void observe(const vq::AccessHistogram &recent);

    /** @return the current blended histogram. */
    const vq::AccessHistogram &
    histogram() const
    {
        return blended_;
    }

    /**
     * Fraction of the cached set (entries below `plan.n_shared`) whose
     * tier would change if entries were re-ranked by the current
     * blended histogram.  0 means placement is still optimal.
     */
    double placementDrift(const CachePlan &plan) const;

    /** @return true when the drift exceeds the policy threshold. */
    bool
    shouldReorder(const CachePlan &plan) const
    {
        return placementDrift(plan) > policy_.drift_threshold;
    }

    /**
     * @return the permutation (new_rank -> current_index) that would
     *         re-sort entries by the blended frequencies, suitable for
     *         vq::Codebook::reorder().
     */
    std::vector<std::uint32_t>
    freshOrder() const
    {
        return blended_.frequencyOrder();
    }

  private:
    vq::AccessHistogram blended_;
    UpdatePolicy policy_;
};

} // namespace vqllm::cache
