#include "cache/online_update.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace vqllm::cache {

OnlineProfile::OnlineProfile(vq::AccessHistogram initial,
                             UpdatePolicy policy)
    : blended_(std::move(initial)), policy_(policy)
{
    vqllm_assert(!blended_.counts.empty(), "empty initial histogram");
    vqllm_assert(policy_.decay > 0.0 && policy_.decay <= 1.0,
                 "decay must be in (0, 1]");
}

void
OnlineProfile::observe(const vq::AccessHistogram &recent)
{
    vqllm_assert(recent.counts.size() == blended_.counts.size(),
                 "histogram size mismatch: ", recent.counts.size(),
                 " vs ", blended_.counts.size());
    // Scale the fresh observation to the running total so the EWMA
    // weights distributions, not absolute access volumes.
    double total_old = static_cast<double>(blended_.total());
    double total_new = static_cast<double>(recent.total());
    double scale = total_new > 0 ? total_old / total_new : 0.0;
    for (std::size_t i = 0; i < blended_.counts.size(); ++i) {
        double mixed =
            (1.0 - policy_.decay) *
                static_cast<double>(blended_.counts[i]) +
            policy_.decay * static_cast<double>(recent.counts[i]) *
                scale;
        blended_.counts[i] = static_cast<std::uint64_t>(mixed + 0.5);
    }
}

double
OnlineProfile::placementDrift(const CachePlan &plan) const
{
    if (plan.n_shared == 0)
        return 0.0;
    vqllm_assert(plan.total_entries == blended_.counts.size(),
                 "plan does not match the profiled codebook");

    // Current placement: ranks [0, n_shared) are cached (register or
    // shared tier).  Fresh placement: the top-n_shared entries of the
    // blended ordering.
    auto fresh = blended_.frequencyOrder();
    std::set<std::uint32_t> fresh_cached(
        fresh.begin(),
        fresh.begin() + std::min<std::size_t>(plan.n_shared,
                                              fresh.size()));
    std::size_t stable = 0;
    for (std::uint32_t idx = 0; idx < plan.n_shared; ++idx)
        stable += fresh_cached.count(idx);
    return 1.0 - static_cast<double>(stable) /
                     static_cast<double>(plan.n_shared);
}

} // namespace vqllm::cache
