#include "engine/fusion.h"

#include "common/logging.h"

namespace vqllm::engine {

const char *
fusionLevelName(FusionLevel level)
{
    switch (level) {
      case FusionLevel::Register: return "register";
      case FusionLevel::Shared:   return "shared";
    }
    return "?";
}

int
computeLayout(OpKind kind)
{
    switch (kind) {
      case OpKind::GeMM:
        // mma fragments hold 2 contiguous elements per lane (Fig. 12).
        return 2;
      case OpKind::GeMV:
      case OpKind::AttentionDecode:
        // Element-wise accumulation: one element per lane per step.
        return 1;
    }
    return 1;
}

FusionPlan
planFusion(const vq::VQConfig &config, OpKind kind, int warp_size,
           int shuffle_threshold, bool layout_matches)
{
    FusionPlan plan;
    plan.compute_layout = computeLayout(kind);
    plan.layout_matches = layout_matches;

    if (layout_matches) {
        // Dequantization order equals consumption order (K-cache row
        // accumulation): no exchange, stay in registers for free.
        plan.level = FusionLevel::Register;
        plan.num_shuffles = 0;
        plan.mapping = computeThreadMapping(warp_size, config.vector_size,
                                            config.vector_size);
        return plan;
    }

    vqllm_assert(config.vector_size % plan.compute_layout == 0,
                 "vector size must be a multiple of the compute layout");
    int ratio = static_cast<int>(config.vector_size) / plan.compute_layout;
    // Alg. 2 line 6: nshuffle = layout_src / layout_dst (minus the
    // identity iteration that needs no exchange, Alg. 1 line 13).
    plan.num_shuffles = ratio - 1;

    if (plan.num_shuffles <= shuffle_threshold) {
        plan.level = FusionLevel::Register;
        plan.mapping = computeThreadMapping(
            warp_size, config.vector_size, plan.compute_layout);
    } else {
        plan.level = FusionLevel::Shared;
    }
    return plan;
}

} // namespace vqllm::engine
