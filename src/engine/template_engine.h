/**
 * @file
 * The template engine: paper Alg. 2's offline phase.
 *
 * Given (GPU, computation shape, VQ config, optimization level) it
 * resolves every adaptive parameter — shared/register cache budgets from
 * occupancy slack, the dataflow split factor, the fusion level and
 * thread mapping — and returns a KernelPlan.
 */
#pragma once

#include "engine/kernel_plan.h"
#include "gpusim/gpu_spec.h"
#include "vq/profiler.h"

namespace vqllm::engine {

/** Inputs shared by all planning calls. */
struct PlanInputs
{
    /** Target GPU. */
    const gpusim::GpuSpec *spec = nullptr;
    /**
     * Offline access histogram of the (reordered) codebook; optional.
     * When absent the register boundary falls back to the policy cap.
     */
    const vq::AccessHistogram *histogram = nullptr;
    /** Fusion threshold: max shuffles for register fusion. */
    int shuffle_threshold = 5;
    /** Baseline tiling constants. */
    BaselineTiling tiling;
};

/**
 * Plan a weight-quantized GeMM or GeMV kernel.
 *
 * @param kind   OpKind::GeMM or OpKind::GeMV
 * @param shape  problem shape (weight is [k, n]; m is batch)
 * @param config VQ algorithm
 * @param level  optimization ladder rung (Tbl. IV)
 * @param in     planning inputs
 */
KernelPlan planWeightKernel(OpKind kind, const GemmShape &shape,
                            const vq::VQConfig &config, OptLevel level,
                            const PlanInputs &in);

/**
 * Plan a KV-cache-quantized decode-attention kernel.
 */
KernelPlan planAttentionKernel(const AttnShape &shape,
                               const vq::VQConfig &config, OptLevel level,
                               const PlanInputs &in);

/**
 * Base (unquantized-consumer) per-block resources for an op kind.
 *
 * These model the consumer kernel's own footprint before any codebook
 * cache or staging allocations are added.
 *
 * @param kind the computation
 * @param vq   true for the VQ-fused variant (quantized operand tiles are
 *             smaller than FP16 tiles)
 */
gpusim::BlockResources baseBlockResources(OpKind kind, bool vq);

} // namespace vqllm::engine
