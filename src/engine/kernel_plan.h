/**
 * @file
 * KernelPlan: the fully-resolved parameterization of one fused VQ kernel
 * (the output of paper Alg. 2's offline phase).
 *
 * A plan binds a VQ configuration and a computation shape to concrete
 * machine decisions: cache boundaries, dataflow split, fusion level and
 * thread mapping, block resources and grid size.  Plans are consumed by
 * the simulated kernels (src/kernels) and the CUDA emitter (src/codegen).
 */
#pragma once

#include <cstdint>
#include <string>

#include "cache/codebook_cache.h"
#include "engine/dataflow.h"
#include "engine/fusion.h"
#include "engine/op_desc.h"
#include "gpusim/occupancy.h"

namespace vqllm::engine {

/**
 * Optimization ladder of the evaluation (paper Tbl. IV).
 *
 * Each level adds one technique on top of the previous:
 *   GC: naive, codebooks in global memory
 *   SC: greedy, all entries in shared memory
 *   O1: adaptive shared-memory caching (medium entries)
 *   O2: + register caching (hot entries)
 *   O3: + codebook-centric dataflow
 *   O4: + codebook-centric hierarchical fusion
 */
enum class OptLevel {
    GC,
    SC,
    O1,
    O2,
    O3,
    O4,
};

/** @return printable level name matching Tbl. IV. */
const char *optLevelName(OptLevel level);

/** All levels in ladder order. */
inline constexpr OptLevel kAllOptLevels[] = {
    OptLevel::GC, OptLevel::SC, OptLevel::O1,
    OptLevel::O2, OptLevel::O3, OptLevel::O4,
};

/** A fully-resolved fused VQ kernel parameterization. */
struct KernelPlan
{
    OpKind kind = OpKind::GeMV;
    vq::VQConfig config;
    OptLevel level = OptLevel::O4;

    /** Problem shape (gemm valid for GeMM/GeMV, attn for attention). */
    GemmShape gemm;
    AttnShape attn;

    /** Codebook-cache boundaries (per resident working set). */
    cache::CachePlan cache_plan;
    /** Dataflow decision (split factor, reduce traffic). */
    DataflowPlan dataflow;
    /** Fusion decision for the exchanged operand (weights / V cache). */
    FusionPlan fusion;
    /** Fusion decision for the K cache (layout matches, attention only). */
    FusionPlan fusion_k;

    /** Final per-block resources including cache and staging memory. */
    gpusim::BlockResources block;
    /** Thread blocks in the grid. */
    std::uint64_t grid_blocks = 1;
    /** Whether the consumer math runs on tensor cores. */
    bool uses_tensor_cores = false;

    /** Codebooks in the quantized tensor(s) overall. */
    std::uint64_t total_books = 1;
    /** Codebooks a block keeps resident concurrently. */
    std::uint64_t resident_books = 1;
    /** Codebook switches (Switch API calls) per block. */
    std::uint64_t switches_per_block = 0;

    /** @return warps per block. */
    int
    warpsPerBlock() const
    {
        return (block.threads + 31) / 32;
    }

    /** @return human-readable multi-line description of the plan. */
    std::string summary() const;
};

} // namespace vqllm::engine
