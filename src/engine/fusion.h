/**
 * @file
 * Codebook-centric hierarchical fusion planning (paper Sec. VI-B).
 *
 * Dequantization and the consumer computation can be fused at two
 * levels:
 *  - shared-memory fusion (baseline): dequantized data takes a
 *    round-trip through shared memory to reach its computing lane;
 *  - register fusion: an xor-shuffle schedule (thread_map.h) rearranges
 *    data directly in registers, bypassing shared memory.
 *
 * The level is chosen adaptively: profiling says a shared-memory access
 * costs about five register-exchange steps, so register fusion wins
 * whenever the required shuffle count is at most `shuffle_threshold`.
 */
#pragma once

#include "engine/op_desc.h"
#include "engine/thread_map.h"
#include "vq/vq_config.h"

namespace vqllm::engine {

/** Fusion level selected for a kernel. */
enum class FusionLevel {
    Register,
    Shared,
};

/** @return printable fusion-level name. */
const char *fusionLevelName(FusionLevel level);

/** Complete fusion decision for one (VQ config, op) pair. */
struct FusionPlan
{
    FusionLevel level = FusionLevel::Shared;
    /** Elements per lane the consumer wants. */
    int compute_layout = 1;
    /** Shuffles per warp tile when fusing in registers. */
    int num_shuffles = 0;
    /** Thread mapping (valid when level == Register). */
    ThreadMapping mapping;
    /**
     * Whether the operand's dequantization layout already matches the
     * consumption order (the paper's K-cache case, Fig. 6) — then no
     * exchange is needed at all even at shared level.
     */
    bool layout_matches = false;
};

/**
 * @return the per-lane element layout the consumer computation requires:
 *         2 for tensor-core mma fragments (GeMM), 1 for element-wise
 *         reductions (GeMV and attention accumulation).
 */
int computeLayout(OpKind kind);

/**
 * Plan the fusion level (Alg. 2 lines 3, 6-8).
 *
 * @param config            VQ algorithm (vector size = dequant layout)
 * @param kind              consumer computation
 * @param warp_size         lanes per warp
 * @param shuffle_threshold max shuffles for register fusion (profiled
 *                          smem/shuffle latency ratio, default 5)
 * @param layout_matches    operand dequantizes directly in consumption
 *                          order (no exchange needed)
 */
FusionPlan planFusion(const vq::VQConfig &config, OpKind kind,
                      int warp_size = 32, int shuffle_threshold = 5,
                      bool layout_matches = false);

} // namespace vqllm::engine
