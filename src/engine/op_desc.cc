#include "engine/op_desc.h"

#include <algorithm>

namespace vqllm::engine {

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::GeMM:            return "GeMM";
      case OpKind::GeMV:            return "GeMV";
      case OpKind::AttentionDecode: return "Attention(Decode)";
    }
    return "?";
}

const char *
axisName(Axis axis)
{
    switch (axis) {
      case Axis::M: return "M";
      case Axis::N: return "N";
      case Axis::R: return "R";
      case Axis::B: return "B";
      case Axis::H: return "H";
      case Axis::T: return "T";
      case Axis::C: return "C";
    }
    return "?";
}

AxisInfo
weightAxisInfo()
{
    // Tbl. III: weight GeMM/GeMV — all axes M,N,R; reduce axes M,R.
    return {{Axis::M, Axis::N, Axis::R}, {Axis::M, Axis::R}};
}

AxisInfo
attentionAxisInfo(AttnOperand operand)
{
    // Tbl. III: K cache reduces over channels (QK^T inner product);
    // V cache reduces over tokens (weighted accumulation).
    if (operand == AttnOperand::KCache)
        return {{Axis::B, Axis::H, Axis::T, Axis::C}, {Axis::C}};
    return {{Axis::B, Axis::H, Axis::T, Axis::C}, {Axis::T}};
}

std::vector<Axis>
weightSwitchAxes(const vq::VQConfig &config)
{
    switch (config.scope) {
      case vq::CodebookScope::PerTensor:
        // AQLM/QuiP#: one codebook per residual stage.
        return {Axis::R};
      case vq::CodebookScope::PerTile:
        // GPT-VQ: a new codebook every (256,256) weight tile.
        return {Axis::M, Axis::N};
      case vq::CodebookScope::PerChannelGroup:
        // A per-channel-group weight codebook switches along rows.
        return {Axis::M};
    }
    return {};
}

std::vector<Axis>
attentionSwitchAxes(const vq::VQConfig &config)
{
    switch (config.scope) {
      case vq::CodebookScope::PerChannelGroup:
        // CQ: a codebook per head per channel group.
        return {Axis::H, Axis::C};
      case vq::CodebookScope::PerTensor:
        return {};
      case vq::CodebookScope::PerTile:
        return {Axis::T, Axis::C};
    }
    return {};
}

std::vector<Axis>
conflictAxes(const AxisInfo &info, const std::vector<Axis> &switch_axes)
{
    std::vector<Axis> out;
    for (Axis a : info.reduce)
        if (std::find(switch_axes.begin(), switch_axes.end(), a) !=
            switch_axes.end())
            out.push_back(a);
    return out;
}

} // namespace vqllm::engine
