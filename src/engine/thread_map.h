/**
 * @file
 * Offline thread mapping for register-level fusion (paper Alg. 1,
 * Fig. 12).
 *
 * A warp dequantizes `vector_size` contiguous elements per lane, but the
 * consumer instruction (mma fragment / reduction lane) wants
 * `compute_layout` elements per lane in a different arrangement.  With a
 * naive sequential mapping the exchange graph spans the whole warp; the
 * paper instead *pre-remaps* which lane dequantizes which sub-vector so
 * that all exchanges stay inside mini-warps of
 * `ratio = vector_size / compute_layout` lanes, realizable with
 * `ratio - 1` xor-shuffles (offsets 1..ratio-1).
 */
#pragma once

#include <vector>

#include "gpusim/warp.h"

namespace vqllm::engine {

/** Result of the offline thread-mapping algorithm. */
struct ThreadMapping
{
    /** Lanes per mini-warp (= registers per lane = exchange iters). */
    int mini_warp_size = 1;
    /**
     * lane_map[original_dequant_lane] = lane that dequantizes that
     * sub-vector after remapping.  A permutation of [0, warp_size).
     */
    std::vector<int> lane_map;
    /** Xor offsets to execute, in order (1..mini_warp_size-1). */
    std::vector<int> shuffle_offsets;

    /** @return number of shuffle instructions per fused tile. */
    int
    numShuffles() const
    {
        return static_cast<int>(shuffle_offsets.size());
    }
};

/**
 * Compute the mini-warp thread mapping (Alg. 1).
 *
 * Element model of one warp tile (warp_size x vector_size elements):
 *  - dequant lane of element e:  e / vector_size
 *  - compute lane of element e:  (e / compute_layout) % warp_size
 *    (fragments are distributed round-robin across lanes, the standard
 *    mma ownership pattern)
 *
 * @param warp_size      lanes per warp (32)
 * @param vector_size    elements dequantized contiguously per lane
 * @param compute_layout elements the consumer wants per lane fragment;
 *                       must divide vector_size
 * @return mapping with mini-warps of vector_size/compute_layout lanes
 */
ThreadMapping computeThreadMapping(int warp_size, int vector_size,
                                   int compute_layout);

/**
 * Functionally verify a mapping: simulate dequantization into warp
 * registers under the remapped lanes, run the xor-shuffle schedule, and
 * check every fragment landed on its computing lane.
 *
 * Used by tests and by the template engine's self-check mode.
 *
 * @return true iff all fragments end on the lane that consumes them
 */
bool verifyMapping(const ThreadMapping &mapping, int warp_size,
                   int vector_size, int compute_layout);

} // namespace vqllm::engine
