#include "engine/kernel_plan.h"

#include <sstream>

namespace vqllm::engine {

const char *
optLevelName(OptLevel level)
{
    switch (level) {
      case OptLevel::GC: return "GC";
      case OptLevel::SC: return "SC";
      case OptLevel::O1: return "O1";
      case OptLevel::O2: return "O2";
      case OptLevel::O3: return "O3";
      case OptLevel::O4: return "O4";
    }
    return "?";
}

std::string
KernelPlan::summary() const
{
    std::ostringstream oss;
    oss << opKindName(kind) << " / " << config.name << " ("
        << config.notation() << ") @ " << optLevelName(level) << "\n";
    if (kind == OpKind::AttentionDecode) {
        oss << "  shape: batch=" << attn.batch << " heads=" << attn.heads
            << " seq=" << attn.seq_len << " head_dim=" << attn.head_dim
            << "\n";
    } else {
        oss << "  shape: m=" << gemm.m << " n=" << gemm.n
            << " k=" << gemm.k << "\n";
    }
    oss << "  cache: n_reg=" << cache_plan.n_reg
        << " n_shared=" << cache_plan.n_shared << " of "
        << cache_plan.total_entries << " entries ("
        << cache_plan.smemBytes() << " B smem, "
        << cache_plan.regsPerThread() << " regs/thread)\n";
    oss << "  dataflow: split=" << dataflow.split << " (raw "
        << dataflow.split_factor_raw << ", max " << dataflow.max_split
        << "), codebook bytes " << dataflow.codebook_bytes
        << ", reduce bytes " << dataflow.reduce_bytes << "\n";
    oss << "  fusion: " << fusionLevelName(fusion.level) << ", "
        << fusion.num_shuffles << " shuffles, compute layout "
        << fusion.compute_layout << "\n";
    oss << "  launch: " << grid_blocks << " blocks x " << block.threads
        << " threads, smem " << block.smem_bytes << " B, regs "
        << block.regs_per_thread << "/thread"
        << (uses_tensor_cores ? ", tensor cores" : "") << "\n";
    oss << "  books: total=" << total_books
        << " resident=" << resident_books
        << " switches/block=" << switches_per_block << "\n";
    return oss.str();
}

} // namespace vqllm::engine
