#include "engine/thread_map.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/logging.h"

namespace vqllm::engine {

ThreadMapping
computeThreadMapping(int warp_size, int vector_size, int compute_layout)
{
    vqllm_assert(warp_size > 0 && vector_size > 0 && compute_layout > 0,
                 "bad layout arguments");
    vqllm_assert(vector_size % compute_layout == 0,
                 "compute layout ", compute_layout,
                 " must divide vector size ", vector_size);
    const int ratio = vector_size / compute_layout;
    vqllm_assert(warp_size % ratio == 0,
                 "mini-warp size must divide the warp");

    ThreadMapping mapping;
    mapping.mini_warp_size = ratio;
    mapping.lane_map.resize(warp_size);

    if (ratio == 1) {
        // Dequantization layout already matches the consumer: identity.
        std::iota(mapping.lane_map.begin(), mapping.lane_map.end(), 0);
        return mapping;
    }

    // Alg. 1 lines 2-3: associate every element of the warp tile with its
    // dequantizing lane and its computing lane.
    const int elements = warp_size * vector_size;
    std::vector<int> tid_dequant(elements), tid_compute(elements);
    for (int e = 0; e < elements; ++e) {
        tid_dequant[e] = e / vector_size;
        tid_compute[e] = (e / compute_layout) % warp_size;
    }

    // Alg. 1 lines 4-9: for each dequant lane, the ordered list of
    // compute lanes that consume its data keys its mini-warp.
    std::map<std::vector<int>, std::vector<int>> mini_warps;
    for (int d = 0; d < warp_size; ++d) {
        std::vector<int> consumers;
        for (int e = d * vector_size; e < (d + 1) * vector_size; ++e) {
            if (consumers.empty() || consumers.back() != tid_compute[e])
                consumers.push_back(tid_compute[e]);
        }
        vqllm_assert(static_cast<int>(consumers.size()) == ratio,
                     "expected ", ratio, " consumer lanes, got ",
                     consumers.size());
        mini_warps[consumers].push_back(d);
    }

    // Alg. 1 lines 10-11: remap the i-th member of each mini-warp onto
    // the i-th consumer lane, so all exchanges stay within the mini-warp.
    for (const auto &[consumers, members] : mini_warps) {
        vqllm_assert(members.size() == consumers.size(),
                     "mini-warp member/lane count mismatch");
        for (std::size_t i = 0; i < members.size(); ++i)
            mapping.lane_map[members[i]] = consumers[i];
    }

    for (int off = 1; off < ratio; ++off)
        mapping.shuffle_offsets.push_back(off);
    return mapping;
}

bool
verifyMapping(const ThreadMapping &mapping, int warp_size, int vector_size,
              int compute_layout)
{
    const int ratio = vector_size / compute_layout;
    if (mapping.mini_warp_size != ratio)
        return false;
    if (static_cast<int>(mapping.lane_map.size()) != warp_size)
        return false;

    // lane_map must be a permutation.
    std::vector<bool> seen(warp_size, false);
    for (int lane : mapping.lane_map) {
        if (lane < 0 || lane >= warp_size || seen[lane])
            return false;
        seen[lane] = true;
    }

    if (ratio == 1)
        return true;

    // Simulate: lane l dequantizes the sub-vector s with lane_map[s]==l,
    // storing fragment j (elements [s*vec + j*layout, ...)) in register
    // slot j.  Fragment ids are encoded as floats.
    std::vector<int> inverse(warp_size);
    for (int s = 0; s < warp_size; ++s)
        inverse[mapping.lane_map[s]] = s;

    gpusim::WarpRegisters<float> regs(warp_size, ratio);
    for (int l = 0; l < warp_size; ++l) {
        int s = inverse[l];
        for (int j = 0; j < ratio; ++j)
            regs.at(l, j) = static_cast<float>(s * ratio + j);
    }

    for (int off : mapping.shuffle_offsets)
        regs.shflXorStep(off);

    // Every fragment must now reside on the lane that computes with it.
    for (int l = 0; l < warp_size; ++l) {
        for (int j = 0; j < ratio; ++j) {
            int fragment = static_cast<int>(regs.at(l, j));
            int compute_lane = fragment % warp_size;
            if (compute_lane != l)
                return false;
        }
    }
    return true;
}

} // namespace vqllm::engine
