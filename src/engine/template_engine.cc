#include "engine/template_engine.h"

#include <algorithm>

#include "common/bitutils.h"
#include "common/logging.h"

namespace vqllm::engine {

namespace {

/** Dequantized-data staging buffer for shared-memory fusion. */
std::size_t
stagingBytes(const gpusim::BlockResources &base, const vq::VQConfig &config)
{
    // Each thread stages one dequantized FP16 sub-vector.
    return static_cast<std::size_t>(base.threads) * config.vector_size *
           2;
}

/** Cache policy for a Tbl. IV optimization rung. */
cache::CachePolicy
policyForLevel(OptLevel level)
{
    cache::CachePolicy policy;
    switch (level) {
      case OptLevel::GC:
        policy.use_shared = false;
        policy.use_registers = false;
        break;
      case OptLevel::SC:
        policy.greedy_shared = true;
        policy.use_registers = false;
        break;
      case OptLevel::O1:
        policy.use_registers = false;
        break;
      case OptLevel::O2:
      case OptLevel::O3:
      case OptLevel::O4:
        break; // full adaptive hierarchy
    }
    return policy;
}

/** Finalize block resources and grid occupancy-related fields. */
void
finalizeBlock(KernelPlan &plan, const gpusim::BlockResources &base,
              std::size_t staging)
{
    plan.block = base;
    plan.block.smem_bytes += staging + plan.cache_plan.smemBytes();
    plan.block.regs_per_thread += plan.cache_plan.regsPerThread();
}

} // namespace

gpusim::BlockResources
baseBlockResources(OpKind kind, bool vq)
{
    switch (kind) {
      case OpKind::GeMM:
        // 128x128 output tile, k-panel double buffering.  The VQ variant
        // stages FP16 activation tiles plus an output epilogue buffer
        // (the quantized weight tile itself is small), and budgets fewer
        // registers so hot entries can be reg-cached.
        return vq ? gpusim::BlockResources{256, 48 * 1024, 64}
                  : gpusim::BlockResources{256, 32 * 1024, 96};
      case OpKind::GeMV:
        return vq ? gpusim::BlockResources{128, 1024, 32}
                  : gpusim::BlockResources{128, 2048, 40};
      case OpKind::AttentionDecode:
        // FlashDecoding: K/V token tiles; quantized tiles are ~8x
        // smaller for CQ-2.
        return vq ? gpusim::BlockResources{128, 4 * 1024, 32}
                  : gpusim::BlockResources{128, 16 * 1024, 64};
    }
    return {};
}

KernelPlan
planWeightKernel(OpKind kind, const GemmShape &shape,
                 const vq::VQConfig &config, OptLevel level,
                 const PlanInputs &in)
{
    vqllm_assert(in.spec != nullptr, "PlanInputs.spec is required");
    vqllm_assert(kind == OpKind::GeMM || kind == OpKind::GeMV,
                 "weight kernel requires GeMM/GeMV");
    KernelPlan plan;
    plan.kind = kind;
    plan.config = config;
    plan.level = level;
    plan.gemm = shape;
    plan.uses_tensor_cores = (kind == OpKind::GeMM);

    // --- Dataflow (O3 enables the split heuristic) ---------------------
    plan.dataflow = planWeightDataflow(shape, config, kind, in.tiling);
    if (level < OptLevel::O3) {
        plan.dataflow.split = 1;
        plan.dataflow.split_factor_raw = 1.0;
        plan.dataflow.codebook_bytes =
            plan.dataflow.baseline_codebook_bytes;
        plan.dataflow.reduce_bytes = 0;
        plan.dataflow.compute_duplication = 1.0;
    }

    // --- Fusion (O4 enables register-level fusion) ----------------------
    if (level >= OptLevel::O4) {
        plan.fusion = planFusion(config, kind, in.spec->warp_size,
                                 in.shuffle_threshold);
    } else {
        plan.fusion.level = FusionLevel::Shared;
        plan.fusion.compute_layout = computeLayout(kind);
        plan.fusion.num_shuffles = 0;
    }

    // --- Codebook accounting ---------------------------------------------
    std::uint64_t tiles_k = ceilDiv(shape.k, vq::kGptvqTileRows);
    std::uint64_t tiles_n = ceilDiv(shape.n, vq::kGptvqTileCols);
    std::uint64_t traversal_books = 1;
    switch (config.scope) {
      case vq::CodebookScope::PerTensor:
        plan.total_books = config.residuals;
        traversal_books = config.residuals;
        break;
      case vq::CodebookScope::PerTile:
        plan.total_books = tiles_k * tiles_n;
        traversal_books = tiles_k; // a column strip crosses K tiles
        break;
      case vq::CodebookScope::PerChannelGroup:
        plan.total_books = shape.k / config.vector_size;
        traversal_books = plan.total_books;
        break;
    }
    if (level >= OptLevel::O3)
        traversal_books = std::max<std::uint64_t>(
            1, traversal_books / plan.dataflow.split);
    plan.switches_per_block = traversal_books;
    plan.resident_books = level == OptLevel::GC ? 0
                          : level == OptLevel::SC ? traversal_books
                                                  : 1;

    // --- Codebook cache ----------------------------------------------------
    gpusim::BlockResources base = baseBlockResources(kind, true);
    std::size_t staging = plan.fusion.level == FusionLevel::Shared
                              ? stagingBytes(base, config)
                              : 0;
    gpusim::BlockResources consumer = base;
    consumer.smem_bytes += staging;

    std::size_t working_entries =
        config.storedEntries() * std::max<std::uint64_t>(
                                     plan.resident_books, 1);
    plan.cache_plan = cache::planCache(
        *in.spec, consumer, working_entries, config.entryBytes(),
        in.histogram, policyForLevel(level));
    if (level == OptLevel::GC) {
        plan.cache_plan.total_entries = config.storedEntries();
        plan.cache_plan.n_reg = 0;
        plan.cache_plan.n_shared = 0;
    }

    finalizeBlock(plan, base, staging);

    // --- Grid ------------------------------------------------------------
    std::uint64_t blocks_n = ceilDiv(shape.n, in.tiling.weight_block_cols);
    std::uint64_t blocks_m =
        kind == OpKind::GeMM ? ceilDiv(shape.m, in.tiling.gemm_block_rows)
                             : 1;
    std::uint64_t split_k =
        kind == OpKind::GeMV ? in.tiling.gemv_split_k : 1;
    plan.grid_blocks = blocks_n * blocks_m * split_k *
                       plan.dataflow.split;
    return plan;
}

KernelPlan
planAttentionKernel(const AttnShape &shape, const vq::VQConfig &config,
                    OptLevel level, const PlanInputs &in)
{
    vqllm_assert(in.spec != nullptr, "PlanInputs.spec is required");
    KernelPlan plan;
    plan.kind = OpKind::AttentionDecode;
    plan.config = config;
    plan.level = level;
    plan.attn = shape;
    plan.uses_tensor_cores = false;

    plan.dataflow = planAttentionDataflow(shape, config, in.tiling);
    if (level < OptLevel::O3) {
        plan.dataflow.split = 1;
        plan.dataflow.split_factor_raw = 1.0;
        plan.dataflow.codebook_bytes =
            plan.dataflow.baseline_codebook_bytes;
        plan.dataflow.reduce_bytes = 0;
    }

    // V-cache accumulation mismatches the dequantization layout (Fig. 6)
    // and needs the exchange; the K cache dequantizes in consumption
    // order (row-wise inner product) and never does.
    if (level >= OptLevel::O4) {
        plan.fusion = planFusion(config, OpKind::AttentionDecode,
                                 in.spec->warp_size, in.shuffle_threshold);
    } else {
        plan.fusion.level = FusionLevel::Shared;
        plan.fusion.compute_layout = computeLayout(
            OpKind::AttentionDecode);
        plan.fusion.num_shuffles = 0;
    }
    plan.fusion_k = planFusion(config, OpKind::AttentionDecode,
                               in.spec->warp_size, in.shuffle_threshold,
                               /*layout_matches=*/true);

    // --- Codebook accounting -----------------------------------------------
    std::uint64_t groups = std::max<std::uint64_t>(
        shape.head_dim / config.vector_size, 1);
    plan.total_books = shape.kvHeads() * groups * 2; // K and V books
    std::uint64_t traversal_books = groups * 2;  // per block: K + V phase
    if (level >= OptLevel::O3)
        traversal_books = std::max<std::uint64_t>(
            2, 2 * groups / plan.dataflow.split);
    plan.switches_per_block = traversal_books;
    // SC keeps one phase's codebooks resident (K then V reuse the space).
    plan.resident_books = level == OptLevel::GC ? 0
                          : level == OptLevel::SC
                              ? (level >= OptLevel::O3
                                     ? traversal_books / 2
                                     : groups)
                              : 1;

    gpusim::BlockResources base =
        baseBlockResources(OpKind::AttentionDecode, true);
    std::size_t staging = plan.fusion.level == FusionLevel::Shared
                              ? stagingBytes(base, config)
                              : 0;
    gpusim::BlockResources consumer = base;
    consumer.smem_bytes += staging;

    std::size_t working_entries =
        config.storedEntries() * std::max<std::uint64_t>(
                                     plan.resident_books, 1);
    plan.cache_plan = cache::planCache(
        *in.spec, consumer, working_entries, config.entryBytes(),
        in.histogram, policyForLevel(level));
    if (level == OptLevel::GC) {
        plan.cache_plan.total_entries = config.storedEntries();
        plan.cache_plan.n_reg = 0;
        plan.cache_plan.n_shared = 0;
    }

    finalizeBlock(plan, base, staging);

    // --- Grid ---------------------------------------------------------------
    std::uint64_t bh = static_cast<std::uint64_t>(shape.batch) *
                       shape.heads;
    if (level >= OptLevel::O3) {
        plan.grid_blocks = bh * plan.dataflow.split;
    } else {
        plan.grid_blocks =
            bh * ceilDiv(shape.seq_len, in.tiling.attn_block_tokens);
    }
    return plan;
}

} // namespace vqllm::engine
