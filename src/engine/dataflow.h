/**
 * @file
 * Codebook-centric dataflow planning (paper Sec. VI-A, Fig. 11).
 *
 * The baseline dataflows (FlashDecoding token-parallelism; GeMM/GeMV
 * column-strip tiling) make thread blocks traverse codebook-switch axes,
 * so multiple blocks load identical codebooks (Fig. 5).  The planner
 * re-partitions the task along the switch axes so each block owns one
 * codebook, and balances the cost of the global reduction this creates
 * with the adaptive split factor:
 *
 *   Traffic_reduce(F)   = F x output_size
 *   Traffic_codebook(F) = baseline_codebook_traffic / F
 *   F* = sqrt(baseline_codebook_traffic / output_size)   (equate both)
 *
 * clamped to the number of parallelizable segments on the conflict axes.
 */
#pragma once

#include <cstdint>

#include "engine/op_desc.h"
#include "vq/vq_config.h"

namespace vqllm::engine {

/** Tiling constants of the baseline dataflows (paper Sec. III). */
struct BaselineTiling
{
    /** Weight-column strip width of GeMM/GeMV blocks. */
    std::size_t weight_block_cols = 128;
    /** Row-tile height of GeMM blocks along the batch dimension. */
    std::size_t gemm_block_rows = 64;
    /** K-dimension split of GeMV blocks (two-stage reduction). */
    std::size_t gemv_split_k = 4;
    /** Tokens per FlashDecoding block. */
    std::size_t attn_block_tokens = 256;
};

/** Result of dataflow planning for one kernel. */
struct DataflowPlan
{
    /** Axes the codebook-centric dataflow parallelizes over. */
    std::vector<Axis> switch_axes;
    /** reduce ∩ switch: axes needing explicit global reduction. */
    std::vector<Axis> conflict_axes;

    /** Continuous heuristic split factor (before clamping). */
    double split_factor_raw = 1.0;
    /** Final integer split factor. */
    std::uint64_t split = 1;
    /** Upper bound: segments available along the conflict axes. */
    std::uint64_t max_split = 1;

    /** Total duplicated codebook traffic of the baseline dataflow. */
    std::uint64_t baseline_codebook_bytes = 0;
    /** Codebook traffic after codebook-centric splitting. */
    std::uint64_t codebook_bytes = 0;
    /** Bytes the global reduction stage moves (0 when split == 1). */
    std::uint64_t reduce_bytes = 0;
    /** Output bytes entering the split-factor formula. */
    std::uint64_t output_bytes = 0;

    /**
     * Extra compute multiplier from parallelizing a reduce axis (e.g.
     * per-residual GeMM mainloops run `split` times, paper Sec. VII-C:
     * "multiple residuals ... lead to redundant computations for O3").
     */
    double compute_duplication = 1.0;

    bool
    needsGlobalReduce() const
    {
        return split > 1;
    }
};

/**
 * Plan the dataflow of a weight-quantized GeMM/GeMV.
 *
 * @param shape  GeMM problem (m=1 for GeMV)
 * @param config VQ algorithm quantizing the weight [k, n]
 * @param kind   OpKind::GeMM or OpKind::GeMV
 * @param tiling baseline tiling constants
 */
DataflowPlan planWeightDataflow(const GemmShape &shape,
                                const vq::VQConfig &config, OpKind kind,
                                const BaselineTiling &tiling =
                                    BaselineTiling{});

/**
 * Plan the dataflow of a KV-cache-quantized decode attention.
 *
 * @param shape  attention problem
 * @param config VQ algorithm quantizing K and V caches
 * @param tiling baseline tiling constants
 */
DataflowPlan planAttentionDataflow(const AttnShape &shape,
                                   const vq::VQConfig &config,
                                   const BaselineTiling &tiling =
                                       BaselineTiling{});

} // namespace vqllm::engine
