/**
 * @file
 * Computation descriptors: axes, reduce axes, and codebook-switch axes
 * (paper Tbl. III).
 *
 * The dataflow planner reasons about three axis sets:
 *  - all axes of the computation,
 *  - reduce axes (temporal accumulation in the original dataflow),
 *  - codebook-switch axes (where moving along the axis changes the
 *    active codebook, determined by the VQ algorithm's codebook scope).
 *
 * Axes that are both reduce and switch axes (the colored cells of
 * Tbl. III) force an explicit global reduction once the computation is
 * parallelized codebook-centrically.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vq/vq_config.h"

namespace vqllm::engine {

/** Computation kinds the engine generates kernels for. */
enum class OpKind {
    GeMM,            ///< weight-quantized matrix-matrix multiply
    GeMV,            ///< weight-quantized matrix-vector multiply
    AttentionDecode, ///< KV-cache-quantized flash-decoding attention
};

/** @return printable op name. */
const char *opKindName(OpKind kind);

/** Named tensor axes (paper Tbl. III notation). */
enum class Axis {
    M, ///< weight rows (reduction dim of the GeMM)
    N, ///< weight columns (output features)
    R, ///< residual stage
    B, ///< batch
    H, ///< attention head
    T, ///< token (sequence position)
    C, ///< channel (head dimension)
};

/** @return printable axis name. */
const char *axisName(Axis axis);

/** Which quantized operand of the attention the axes describe. */
enum class AttnOperand {
    KCache,
    VCache,
};

/** Axis metadata of one (op, operand) pair. */
struct AxisInfo
{
    std::vector<Axis> all;
    std::vector<Axis> reduce;
};

/** @return all/reduce axes for a weight op (GeMM/GeMV), per Tbl. III. */
AxisInfo weightAxisInfo();

/** @return all/reduce axes for an attention operand, per Tbl. III. */
AxisInfo attentionAxisInfo(AttnOperand operand);

/**
 * @return codebook-switch axes for a weight op under a codebook scope:
 *         {R} for per-tensor books (AQLM/QuiP#), {M, N} for per-tile
 *         books (GPT-VQ).
 */
std::vector<Axis> weightSwitchAxes(const vq::VQConfig &config);

/**
 * @return codebook-switch axes for attention under a codebook scope:
 *         {H, C} for per-channel-group books (CQ).
 */
std::vector<Axis> attentionSwitchAxes(const vq::VQConfig &config);

/** @return the intersection reduce ∩ switch (forces global reduction). */
std::vector<Axis> conflictAxes(const AxisInfo &info,
                               const std::vector<Axis> &switch_axes);

/** Problem shape of a GeMM/GeMV: Y[m,n] = X[m,k] x W[k,n]. */
struct GemmShape
{
    std::size_t m = 1;  ///< batch/rows of activations (1 for GeMV)
    std::size_t n = 1;  ///< output features (weight columns)
    std::size_t k = 1;  ///< input features (weight rows, reduced)

    std::size_t
    outputElements() const
    {
        return m * n;
    }

    std::uint64_t
    flops() const
    {
        return 2ull * m * n * k;
    }
};

/** Problem shape of decode attention over a KV cache. */
struct AttnShape
{
    std::size_t batch = 1;
    std::size_t heads = 32; ///< query heads
    std::size_t seq_len = 1024; ///< cached tokens attended over
    std::size_t head_dim = 128;
    /**
     * KV heads for grouped-query attention (GQA); 0 means MHA
     * (kv_heads == heads).  Several query heads then share one cached
     * K/V head, shrinking the KV footprint by heads/kv_heads.
     */
    std::size_t kv_heads = 0;

    /** @return effective KV heads (resolves the MHA default). */
    std::size_t
    kvHeads() const
    {
        return kv_heads == 0 ? heads : kv_heads;
    }

    std::size_t
    kvElements() const
    {
        return 2 * batch * kvHeads() * seq_len * head_dim;
    }

    /** QK^T + softmax-weighted V accumulation, one query token. */
    std::uint64_t
    flops() const
    {
        // Compute follows query heads regardless of KV sharing.
        return 2ull * 2 * batch * heads * seq_len * head_dim;
    }

    std::size_t
    outputElements() const
    {
        return batch * heads * head_dim;
    }
};

} // namespace vqllm::engine
