#include "engine/dataflow.h"

#include <algorithm>
#include <cmath>

#include "common/bitutils.h"
#include "common/logging.h"

namespace vqllm::engine {

namespace {

/**
 * Apply the paper's split-factor heuristic to a plan whose baseline
 * codebook traffic and output size are already filled in.
 */
void
applySplitHeuristic(DataflowPlan &plan)
{
    if (plan.conflict_axes.empty() || plan.max_split <= 1 ||
        plan.baseline_codebook_bytes == 0) {
        plan.split = 1;
        plan.split_factor_raw = 1.0;
        plan.codebook_bytes = plan.baseline_codebook_bytes;
        plan.reduce_bytes = 0;
        return;
    }
    plan.split_factor_raw =
        std::sqrt(static_cast<double>(plan.baseline_codebook_bytes) /
                  std::max<double>(1.0,
                                   static_cast<double>(plan.output_bytes)));
    double clamped = std::clamp(plan.split_factor_raw, 1.0,
                                static_cast<double>(plan.max_split));
    plan.split = static_cast<std::uint64_t>(std::llround(clamped));
    plan.split = std::max<std::uint64_t>(plan.split, 1);

    plan.codebook_bytes = plan.baseline_codebook_bytes / plan.split;
    plan.reduce_bytes =
        plan.split > 1 ? plan.split * plan.output_bytes : 0;
}

} // namespace

DataflowPlan
planWeightDataflow(const GemmShape &shape, const vq::VQConfig &config,
                   OpKind kind, const BaselineTiling &tiling)
{
    vqllm_assert(kind == OpKind::GeMM || kind == OpKind::GeMV,
                 "weight dataflow requires a GeMM/GeMV kind");
    DataflowPlan plan;
    AxisInfo info = weightAxisInfo();
    plan.switch_axes = weightSwitchAxes(config);
    plan.conflict_axes = conflictAxes(info, plan.switch_axes);

    // Baseline tiling: column strips (row tiles for GeMM, split-K
    // segments for GeMV).
    std::uint64_t blocks_n = ceilDiv(shape.n, tiling.weight_block_cols);
    std::uint64_t blocks_m =
        kind == OpKind::GeMM ? ceilDiv(shape.m, tiling.gemm_block_rows)
                             : 1;
    std::uint64_t split_k =
        kind == OpKind::GeMV ? tiling.gemv_split_k : 1;

    std::uint64_t cb_bytes = config.codebookBytes();
    switch (config.scope) {
      case vq::CodebookScope::PerTensor: {
        // Every block loads the per-residual codebooks of the tensor;
        // split-K segments of a strip each load their own copy.
        std::uint64_t books = config.residuals;
        plan.baseline_codebook_bytes =
            books * cb_bytes * blocks_n * blocks_m * split_k;
        // Conflict axis R: at most `residuals` parallel segments, and a
        // residual split re-runs the mainloop per stage.
        plan.max_split = config.residuals;
        break;
      }
      case vq::CodebookScope::PerTile: {
        // A (256,256) tile's codebook is loaded by every 128-wide block
        // strip overlapping it, and by every row tile of the GeMM.
        std::uint64_t tiles_k = ceilDiv(shape.k, vq::kGptvqTileRows);
        std::uint64_t tiles_n = ceilDiv(shape.n, vq::kGptvqTileCols);
        std::uint64_t strips_per_tile =
            vq::kGptvqTileCols / tiling.weight_block_cols;
        plan.baseline_codebook_bytes = tiles_k * tiles_n * cb_bytes *
                                       strips_per_tile * blocks_m;
        // Conflict axis M: the K dimension can split across tiles_k
        // segments, each owning its codebooks.
        plan.max_split = std::max<std::uint64_t>(tiles_k, 1);
        break;
      }
      case vq::CodebookScope::PerChannelGroup: {
        std::uint64_t groups = shape.k / config.vector_size;
        plan.baseline_codebook_bytes =
            groups * cb_bytes * blocks_n * blocks_m;
        plan.max_split = std::max<std::uint64_t>(groups, 1);
        break;
      }
    }

    // Partial outputs are FP16.
    plan.output_bytes = static_cast<std::uint64_t>(shape.m) * shape.n * 2;

    applySplitHeuristic(plan);

    // Residual splits duplicate the mainloop's MMA work per stage.
    if (config.scope == vq::CodebookScope::PerTensor && plan.split > 1)
        plan.compute_duplication = static_cast<double>(plan.split);
    return plan;
}

DataflowPlan
planAttentionDataflow(const AttnShape &shape, const vq::VQConfig &config,
                      const BaselineTiling &tiling)
{
    DataflowPlan plan;
    AxisInfo info = attentionAxisInfo(AttnOperand::KCache);
    plan.switch_axes = attentionSwitchAxes(config);
    plan.conflict_axes = conflictAxes(info, plan.switch_axes);

    std::uint64_t groups =
        std::max<std::uint64_t>(shape.head_dim / config.vector_size, 1);
    std::uint64_t blocks_t = ceilDiv(shape.seq_len,
                                     tiling.attn_block_tokens);
    std::uint64_t cb_bytes = config.codebookBytes();

    // Baseline FlashDecoding: every token-parallel block of a
    // (batch, query-head) loads all channel-group codebooks of its KV
    // head, for both K and V (Fig. 5 outer box).  Under GQA several
    // query heads re-load the same shared KV books, so the duplication
    // still scales with query heads.
    std::uint64_t books_per_head = groups * 2; // K and V
    plan.baseline_codebook_bytes = static_cast<std::uint64_t>(shape.batch) *
                                   shape.heads * books_per_head *
                                   cb_bytes * blocks_t;
    plan.max_split = groups;

    // Parallelizing channel groups requires globally reducing partial
    // QK^T logits: B x H x T float partials per split segment.
    plan.output_bytes = static_cast<std::uint64_t>(shape.batch) *
                        shape.heads * shape.seq_len * 4;

    applySplitHeuristic(plan);
    return plan;
}

} // namespace vqllm::engine
