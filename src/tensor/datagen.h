/**
 * @file
 * Synthetic LLM-like tensor generators.
 *
 * The paper's data (Llama weight matrices, KV caches) is not available
 * offline, so we substitute generators that reproduce the two statistics
 * the evaluation depends on:
 *
 *  1. *Cluster structure with skewed populations* — sub-vectors
 *     concentrate around a limited set of directions with Zipf-like
 *     popularity, which is what gives k-means codebooks the hot/medium/
 *     cold access-frequency profile of paper Fig. 8/9.
 *  2. *Cross-dimension correlation and outliers* — what makes VQ beat
 *     element-wise quantization in reconstruction error (paper Fig. 2).
 */
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace vqllm {

/** Parameters controlling clustered synthetic data generation. */
struct ClusteredDataSpec
{
    /** Number of latent clusters the data concentrates around. */
    std::size_t num_clusters = 64;
    /** Power-law exponent of cluster popularity (0 = uniform). */
    double popularity_alpha = 1.0;
    /** Stddev of samples around their cluster center. */
    double cluster_spread = 0.25;
    /** Fraction of samples replaced by isotropic outliers. */
    double outlier_fraction = 0.01;
    /** Scale multiplier applied to outlier samples. */
    double outlier_scale = 4.0;
    /** Correlation strength between adjacent dimensions, in [0, 1). */
    double dim_correlation = 0.6;
    /**
     * Size of a pool of template rows that recur verbatim (real weight
     * tensors contain many near-duplicate sub-vectors; the codebook
     * entries capturing them become the mega-hot entries of Fig. 8).
     * 0 disables duplication.
     */
    std::size_t duplicate_pool = 0;
    /** Probability that a row is drawn from the duplicate pool. */
    double duplicate_fraction = 0.0;
};

/**
 * Generate a [rows, dim] matrix of clustered sub-vector data.
 *
 * Samples are drawn around `num_clusters` random centers whose selection
 * probability follows a power law; a small fraction are large isotropic
 * outliers.  Adjacent dimensions are correlated by mixing each dimension
 * with its predecessor.
 */
Tensor<float> generateClustered(std::size_t rows, std::size_t dim,
                                const ClusteredDataSpec &spec, Rng &rng);

/**
 * Generate an LLM-style weight matrix [out_features, in_features].
 *
 * Per-channel scale variation plus a few large-magnitude channels mimic
 * the outlier-channel structure of transformer weights.
 */
Tensor<float> generateLlmWeight(std::size_t out_features,
                                std::size_t in_features, Rng &rng);

/**
 * Generate an attention KV-cache-like tensor [heads, tokens, channels].
 *
 * Keys/values exhibit strong per-channel offsets and slowly varying token
 * dynamics — the structure "coupled quantization" (CQ) exploits by
 * training per-channel-group codebooks.
 */
Tensor<float> generateKvCache(std::size_t heads, std::size_t tokens,
                              std::size_t channels, Rng &rng);

/**
 * Generate correlated 2-D points with outliers for the Fig. 2 (lower)
 * comparison of quantization-point layouts.
 *
 * @param n           number of points
 * @param correlation Pearson correlation between the two dims
 * @param outlier_fraction fraction of isotropic large outliers
 */
Tensor<float> generateCorrelated2d(std::size_t n, double correlation,
                                   double outlier_fraction, Rng &rng);

} // namespace vqllm
