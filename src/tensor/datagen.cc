#include "tensor/datagen.h"

#include <cmath>

namespace vqllm {

Tensor<float>
generateClustered(std::size_t rows, std::size_t dim,
                  const ClusteredDataSpec &spec, Rng &rng)
{
    vqllm_assert(spec.num_clusters > 0, "need at least one cluster");
    Tensor<float> centers({spec.num_clusters, dim});
    fillNormal(centers, rng);

    std::vector<double> weights =
        powerLawWeights(spec.num_clusters, spec.popularity_alpha);

    // Template rows that repeat verbatim across the tensor.
    Tensor<float> pool;
    std::vector<double> pool_weights;
    if (spec.duplicate_pool > 0) {
        pool = Tensor<float>({spec.duplicate_pool, dim});
        for (std::size_t p = 0; p < spec.duplicate_pool; ++p) {
            std::size_t c = rng.weightedIndex(weights);
            for (std::size_t d = 0; d < dim; ++d)
                pool.at(p, d) = static_cast<float>(
                    centers.at(c, d) +
                    rng.normal(0.0, spec.cluster_spread));
        }
        pool_weights = powerLawWeights(spec.duplicate_pool, 1.0);
    }

    Tensor<float> out({rows, dim});
    for (std::size_t r = 0; r < rows; ++r) {
        if (spec.duplicate_pool > 0 &&
            rng.uniform() < spec.duplicate_fraction) {
            std::size_t p = rng.weightedIndex(pool_weights);
            for (std::size_t d = 0; d < dim; ++d)
                out.at(r, d) = pool.at(p, d);
            continue;
        }
        bool outlier = rng.uniform() < spec.outlier_fraction;
        std::size_t c = rng.weightedIndex(weights);
        float prev = 0.0f;
        for (std::size_t d = 0; d < dim; ++d) {
            double sample;
            if (outlier) {
                sample = rng.normal(0.0, spec.outlier_scale);
            } else {
                sample = centers.at(c, d) +
                         rng.normal(0.0, spec.cluster_spread);
            }
            // First-order mixing induces cross-dimension correlation.
            double mixed = (1.0 - spec.dim_correlation) * sample +
                           spec.dim_correlation * prev;
            out.at(r, d) = static_cast<float>(mixed);
            prev = out.at(r, d);
        }
    }
    return out;
}

Tensor<float>
generateLlmWeight(std::size_t out_features, std::size_t in_features,
                  Rng &rng)
{
    Tensor<float> w({out_features, in_features});
    // Per-input-channel scales: log-normal spread plus rare outlier
    // channels, as observed in transformer linear layers.
    std::vector<double> channel_scale(in_features);
    for (std::size_t c = 0; c < in_features; ++c) {
        channel_scale[c] = std::exp(rng.normal(0.0, 0.3));
        if (rng.uniform() < 0.004)
            channel_scale[c] *= 8.0;
    }
    double base = 1.0 / std::sqrt(static_cast<double>(in_features));
    for (std::size_t r = 0; r < out_features; ++r)
        for (std::size_t c = 0; c < in_features; ++c)
            w.at(r, c) = static_cast<float>(
                rng.normal(0.0, base * channel_scale[c]));
    return w;
}

Tensor<float>
generateKvCache(std::size_t heads, std::size_t tokens, std::size_t channels,
                Rng &rng)
{
    Tensor<float> kv({heads, tokens, channels});
    for (std::size_t h = 0; h < heads; ++h) {
        // Strong static per-channel offsets (key/value channel structure).
        std::vector<double> offset(channels), scale(channels);
        for (std::size_t c = 0; c < channels; ++c) {
            offset[c] = rng.normal(0.0, 1.0);
            scale[c] = 0.15 + 0.1 * rng.uniform();
        }
        // Slowly varying token state: AR(1) process per head.
        double state = rng.normal();
        for (std::size_t t = 0; t < tokens; ++t) {
            state = 0.95 * state + 0.05 * rng.normal();
            for (std::size_t c = 0; c < channels; ++c) {
                kv.at(h, t, c) = static_cast<float>(
                    offset[c] + state * 0.3 + rng.normal(0.0, scale[c]));
            }
        }
    }
    return kv;
}

Tensor<float>
generateCorrelated2d(std::size_t n, double correlation,
                     double outlier_fraction, Rng &rng)
{
    Tensor<float> pts({n, std::size_t(2)});
    double beta = std::sqrt(1.0 - correlation * correlation);
    for (std::size_t i = 0; i < n; ++i) {
        if (rng.uniform() < outlier_fraction) {
            pts.at(i, std::size_t(0)) = static_cast<float>(rng.normal(0, 2.5));
            pts.at(i, std::size_t(1)) = static_cast<float>(rng.normal(0, 2.5));
            continue;
        }
        double x = rng.normal();
        double y = correlation * x + beta * rng.normal();
        pts.at(i, std::size_t(0)) = static_cast<float>(x);
        pts.at(i, std::size_t(1)) = static_cast<float>(y);
    }
    return pts;
}

} // namespace vqllm
