/**
 * @file
 * Dense row-major tensors used throughout the library.
 *
 * Tensors are host-side containers: the "GPU" in this reproduction is a
 * performance model (see src/gpusim), so all functional computation runs
 * on the host over these buffers.  Element types are float (accumulation
 * precision) and Half (storage precision, matching FP16 LLM tensors).
 */
#pragma once

#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <vector>

#include "common/float16.h"
#include "common/logging.h"
#include "common/rng.h"

namespace vqllm {

/** Shape of a tensor: a small vector of dimension extents. */
using Shape = std::vector<std::size_t>;

/** @return total element count of a shape. */
inline std::size_t
numElements(const Shape &shape)
{
    std::size_t n = 1;
    for (std::size_t d : shape)
        n *= d;
    return n;
}

/**
 * A dense row-major tensor.
 *
 * @tparam T element type (float or Half)
 */
template <typename T>
class Tensor
{
  public:
    Tensor() = default;

    /** Construct zero-filled with the given shape. */
    explicit Tensor(Shape shape)
        : shape_(std::move(shape)), data_(numElements(shape_))
    {
        computeStrides();
    }

    /** Construct with shape given as an initializer list. */
    Tensor(std::initializer_list<std::size_t> dims)
        : Tensor(Shape(dims))
    {
    }

    /** @return tensor rank (number of dimensions). */
    std::size_t rank() const { return shape_.size(); }

    /** @return the shape vector. */
    const Shape &shape() const { return shape_; }

    /** @return extent of dimension d. */
    std::size_t dim(std::size_t d) const { return shape_[d]; }

    /** @return total number of elements. */
    std::size_t size() const { return data_.size(); }

    /** @return storage footprint in bytes. */
    std::size_t sizeBytes() const { return data_.size() * sizeof(T); }

    /** Raw element access by flat index. */
    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }

    /** N-d element access (rank-checked in debug). */
    template <typename... Idx>
    T &
    at(Idx... idx)
    {
        return data_[flatIndex(idx...)];
    }

    template <typename... Idx>
    const T &
    at(Idx... idx) const
    {
        return data_[flatIndex(idx...)];
    }

    /** @return flat offset of an N-d index. */
    template <typename... Idx>
    std::size_t
    flatIndex(Idx... idx) const
    {
        vqllm_assert(sizeof...(idx) == shape_.size(),
                     "index rank ", sizeof...(idx), " != tensor rank ",
                     shape_.size());
        std::size_t indices[] = {static_cast<std::size_t>(idx)...};
        std::size_t flat = 0;
        for (std::size_t d = 0; d < shape_.size(); ++d) {
            vqllm_assert(indices[d] < shape_[d], "index ", indices[d],
                         " out of bounds for dim ", d, " extent ",
                         shape_[d]);
            flat += indices[d] * strides_[d];
        }
        return flat;
    }

    T *data() { return data_.data(); }
    const T *data() const { return data_.data(); }

    /** Fill every element with a constant. */
    void
    fill(T value)
    {
        std::fill(data_.begin(), data_.end(), value);
    }

    /** Reshape in place; the element count must be preserved. */
    void
    reshape(Shape shape)
    {
        vqllm_assert(numElements(shape) == data_.size(),
                     "reshape changes element count");
        shape_ = std::move(shape);
        computeStrides();
    }

  private:
    void
    computeStrides()
    {
        strides_.assign(shape_.size(), 1);
        for (std::size_t d = shape_.size(); d-- > 1;)
            strides_[d - 1] = strides_[d] * shape_[d];
    }

    Shape shape_;
    std::vector<std::size_t> strides_;
    std::vector<T> data_;
};

/** Convert a float tensor to FP16 storage (round-to-nearest-even). */
Tensor<Half> toHalf(const Tensor<float> &t);

/** Convert an FP16 tensor to float. */
Tensor<float> toFloat(const Tensor<Half> &t);

/** Fill with iid normal samples. */
void fillNormal(Tensor<float> &t, Rng &rng, double mean = 0.0,
                double stddev = 1.0);

/** Fill with iid uniform samples in [lo, hi). */
void fillUniform(Tensor<float> &t, Rng &rng, double lo = 0.0,
                 double hi = 1.0);

/** @return mean squared error between two same-shaped tensors. */
double mse(const Tensor<float> &a, const Tensor<float> &b);

/** @return max absolute difference between two same-shaped tensors. */
double maxAbsDiff(const Tensor<float> &a, const Tensor<float> &b);

/** @return Frobenius norm. */
double frobeniusNorm(const Tensor<float> &t);

} // namespace vqllm
