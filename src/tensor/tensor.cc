#include "tensor/tensor.h"

#include <cmath>

namespace vqllm {

Tensor<Half>
toHalf(const Tensor<float> &t)
{
    Tensor<Half> out(t.shape());
    for (std::size_t i = 0; i < t.size(); ++i)
        out[i] = Half(t[i]);
    return out;
}

Tensor<float>
toFloat(const Tensor<Half> &t)
{
    Tensor<float> out(t.shape());
    for (std::size_t i = 0; i < t.size(); ++i)
        out[i] = static_cast<float>(t[i]);
    return out;
}

void
fillNormal(Tensor<float> &t, Rng &rng, double mean, double stddev)
{
    for (std::size_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(rng.normal(mean, stddev));
}

void
fillUniform(Tensor<float> &t, Rng &rng, double lo, double hi)
{
    for (std::size_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(rng.uniform(lo, hi));
}

double
mse(const Tensor<float> &a, const Tensor<float> &b)
{
    vqllm_assert(a.size() == b.size(), "mse: size mismatch");
    if (a.size() == 0)
        return 0.0;
    double acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
        acc += d * d;
    }
    return acc / static_cast<double>(a.size());
}

double
maxAbsDiff(const Tensor<float> &a, const Tensor<float> &b)
{
    vqllm_assert(a.size() == b.size(), "maxAbsDiff: size mismatch");
    double m = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(static_cast<double>(a[i]) -
                                 static_cast<double>(b[i])));
    return m;
}

double
frobeniusNorm(const Tensor<float> &t)
{
    double acc = 0;
    for (std::size_t i = 0; i < t.size(); ++i)
        acc += static_cast<double>(t[i]) * static_cast<double>(t[i]);
    return std::sqrt(acc);
}

} // namespace vqllm
