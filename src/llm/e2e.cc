#include "llm/e2e.h"

#include <algorithm>
#include <map>

#include "engine/template_engine.h"
#include "kernels/ewq_kernels.h"
#include "kernels/fp16_kernels.h"
#include "kernels/vq_kernels.h"
#include "llm/ops.h"

namespace vqllm::llm {

using engine::GemmShape;
using engine::OpKind;
using engine::OptLevel;

namespace {

/** Best adaptive VQ latency for a weight kernel. */
double
bestVqWeightUs(const gpusim::GpuSpec &spec, OpKind kind,
               const GemmShape &shape, const vq::VQConfig &cfg)
{
    static thread_local std::map<std::string, vq::AccessHistogram>
        hist_memo;
    auto it = hist_memo.find(cfg.name);
    if (it == hist_memo.end())
        it = hist_memo
                 .emplace(cfg.name, vq::syntheticZipfHistogram(
                                        cfg.storedEntries()))
                 .first;
    const auto &hist = it->second;
    engine::PlanInputs in;
    in.spec = &spec;
    in.histogram = &hist;
    double best = 1e30;
    for (auto level : {OptLevel::O2, OptLevel::O3, OptLevel::O4}) {
        auto plan = engine::planWeightKernel(kind, shape, cfg, level, in);
        best = std::min(
            best,
            kernels::estimateVqWeightKernel(spec, plan, &hist).us());
    }
    return best;
}

/** Best adaptive VQ latency for decode attention. */
double
bestVqAttnUs(const gpusim::GpuSpec &spec, const engine::AttnShape &shape,
             const vq::VQConfig &cfg)
{
    static thread_local std::map<std::string, vq::AccessHistogram>
        hist_memo;
    auto it = hist_memo.find(cfg.name);
    if (it == hist_memo.end())
        it = hist_memo
                 .emplace(cfg.name, vq::syntheticZipfHistogram(
                                        cfg.storedEntries()))
                 .first;
    const auto &hist = it->second;
    engine::PlanInputs in;
    in.spec = &spec;
    in.histogram = &hist;
    double best = 1e30;
    for (auto level : {OptLevel::O2, OptLevel::O3, OptLevel::O4}) {
        auto plan = engine::planAttentionKernel(shape, cfg, level, in);
        best = std::min(
            best,
            kernels::estimateVqAttentionKernel(spec, plan, &hist).us());
    }
    return best;
}

} // namespace

namespace {

/**
 * Shared full-stack prefill pricing: FP16 GeMMs over `rows` tokens per
 * layer plus causal attention over `attn_positions` key positions
 * (2 ops x 2 MACs x H x head_dim each), scaled to all layers.  Both
 * prefill entry points price through here so whole-prompt and chunked
 * estimates cannot drift apart.
 */
double
prefillLayersUs(const gpusim::GpuSpec &spec, const LlamaConfig &model,
                std::size_t rows, double attn_positions)
{
    double layer_us = 0;
    for (auto [n, k] : model.layerLinearShapes()) {
        GemmShape shape{rows, n, k};
        layer_us += kernels::fp16GemmEstimate(spec, shape).us();
    }
    double attn_flops =
        2.0 * 2.0 * model.heads * attn_positions * model.head_dim;
    layer_us += attn_flops / (spec.fp16_tensor_tflops * 1e12 * 0.5) * 1e6;
    return layer_us * static_cast<double>(model.layers);
}

} // namespace

double
estimatePrefillUs(const gpusim::GpuSpec &spec, const LlamaConfig &model,
                  std::size_t batch, std::size_t prompt_len)
{
    // Causal attention: ~B*H*(T^2/2)*C MACs per layer.
    double positions = static_cast<double>(batch) * 0.5 *
                       static_cast<double>(prompt_len) * prompt_len;
    return prefillLayersUs(spec, model, batch * prompt_len, positions);
}

double
estimateChunkedPrefillUs(const gpusim::GpuSpec &spec,
                         const LlamaConfig &model,
                         std::size_t slice_tokens,
                         std::size_t context_tokens)
{
    // Each of the T slice tokens attends over the C cached tokens plus
    // the slice prefix: ~C*T + T^2/2 key positions.
    double positions =
        static_cast<double>(slice_tokens) * context_tokens +
        0.5 * static_cast<double>(slice_tokens) * slice_tokens;
    return prefillLayersUs(spec, model, slice_tokens, positions);
}

double
schemeLinearUs(const gpusim::GpuSpec &spec, QuantScheme scheme,
               const GemmShape &shape)
{
    auto weight_cfg = schemeVqConfigs(scheme).first;
    switch (scheme) {
      case QuantScheme::FP16:
        return kernels::fp16GemvEstimate(spec, shape).us();
      case QuantScheme::EWQ4:
        return kernels::ewqGemvEstimate(spec, shape, 4).us();
      case QuantScheme::VQ4:
      case QuantScheme::VQ2:
        return bestVqWeightUs(spec, OpKind::GeMV, shape, weight_cfg);
    }
    return 0;
}

double
schemeAttentionUs(const gpusim::GpuSpec &spec, QuantScheme scheme,
                  const engine::AttnShape &shape)
{
    auto kv_cfg = schemeVqConfigs(scheme).second;
    switch (scheme) {
      case QuantScheme::FP16:
        return kernels::fp16AttentionEstimate(spec, shape).us();
      case QuantScheme::EWQ4:
        return kernels::ewqAttentionEstimate(spec, shape, 4).us();
      case QuantScheme::VQ4:
      case QuantScheme::VQ2:
        return bestVqAttnUs(spec, shape, kv_cfg);
    }
    return 0;
}

E2EResult
estimateE2E(const gpusim::GpuSpec &spec, const LlamaConfig &model,
            QuantScheme scheme, const E2EConfig &cfg)
{
    E2EResult result;

    // ---- Decode: evaluate one representative step at mid-generation
    // and scale (kernel latencies vary slowly with sequence length).
    std::size_t mid_seq = cfg.prompt_len + cfg.gen_tokens / 2;
    double step_linear_us = 0;
    for (auto [n, k] : model.layerLinearShapes()) {
        GemmShape shape{cfg.batch, n, k};
        step_linear_us += schemeLinearUs(spec, scheme, shape);
    }
    double step_attn_us = schemeAttentionUs(
        spec, scheme, model.attnShape(cfg.batch, mid_seq));
    double step_elem_us =
        elementwiseLayerLatencyUs(spec, cfg.batch, model.hidden);
    double step_us = (step_linear_us + step_elem_us) *
                         static_cast<double>(model.layers) +
                     step_attn_us * static_cast<double>(model.layers);
    result.decode_us = step_us * static_cast<double>(cfg.gen_tokens);
    result.elementwise_fraction =
        step_elem_us * model.layers / step_us;

    // ---- Prefill (scheme-independent, see estimatePrefillUs).
    result.prefill_us =
        estimatePrefillUs(spec, model, cfg.batch, cfg.prompt_len);

    // ---- Memory footprint (shared scheme scales, model_config.h).
    result.weight_bytes = static_cast<std::uint64_t>(
        static_cast<double>(model.decoderParams()) *
        schemeWeightBytesPerParam(scheme));
    result.kv_bytes = static_cast<std::uint64_t>(
        static_cast<double>(model.kvCacheBytesFp16(
            cfg.batch, cfg.prompt_len + cfg.gen_tokens)) *
        schemeKvScale(scheme));
    return result;
}

} // namespace vqllm::llm
