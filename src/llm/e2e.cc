#include "llm/e2e.h"

#include <algorithm>
#include <map>

#include "engine/template_engine.h"
#include "kernels/ewq_kernels.h"
#include "kernels/fp16_kernels.h"
#include "kernels/vq_kernels.h"
#include "llm/ops.h"

namespace vqllm::llm {

using engine::GemmShape;
using engine::OpKind;
using engine::OptLevel;

const char *
quantSchemeName(QuantScheme scheme)
{
    switch (scheme) {
      case QuantScheme::FP16: return "FP16";
      case QuantScheme::EWQ4: return "qServe (4 bit)";
      case QuantScheme::VQ4:  return "VQ-LLM (4 bit)";
      case QuantScheme::VQ2:  return "VQ-LLM (2 bit)";
    }
    return "?";
}

namespace {

/** Weight/KV VQ configs of a scheme (weights, kv). */
std::pair<vq::VQConfig, vq::VQConfig>
vqConfigsFor(QuantScheme scheme)
{
    if (scheme == QuantScheme::VQ2)
        return {vq::gptvq2(), vq::cq2()};
    return {vq::quip4(), vq::cq4()};
}

/** Best adaptive VQ latency for a weight kernel. */
double
bestVqWeightUs(const gpusim::GpuSpec &spec, OpKind kind,
               const GemmShape &shape, const vq::VQConfig &cfg)
{
    static thread_local std::map<std::string, vq::AccessHistogram>
        hist_memo;
    auto it = hist_memo.find(cfg.name);
    if (it == hist_memo.end())
        it = hist_memo
                 .emplace(cfg.name, vq::syntheticZipfHistogram(
                                        cfg.storedEntries()))
                 .first;
    const auto &hist = it->second;
    engine::PlanInputs in;
    in.spec = &spec;
    in.histogram = &hist;
    double best = 1e30;
    for (auto level : {OptLevel::O2, OptLevel::O3, OptLevel::O4}) {
        auto plan = engine::planWeightKernel(kind, shape, cfg, level, in);
        best = std::min(
            best,
            kernels::estimateVqWeightKernel(spec, plan, &hist).us());
    }
    return best;
}

/** Best adaptive VQ latency for decode attention. */
double
bestVqAttnUs(const gpusim::GpuSpec &spec, const engine::AttnShape &shape,
             const vq::VQConfig &cfg)
{
    static thread_local std::map<std::string, vq::AccessHistogram>
        hist_memo;
    auto it = hist_memo.find(cfg.name);
    if (it == hist_memo.end())
        it = hist_memo
                 .emplace(cfg.name, vq::syntheticZipfHistogram(
                                        cfg.storedEntries()))
                 .first;
    const auto &hist = it->second;
    engine::PlanInputs in;
    in.spec = &spec;
    in.histogram = &hist;
    double best = 1e30;
    for (auto level : {OptLevel::O2, OptLevel::O3, OptLevel::O4}) {
        auto plan = engine::planAttentionKernel(shape, cfg, level, in);
        best = std::min(
            best,
            kernels::estimateVqAttentionKernel(spec, plan, &hist).us());
    }
    return best;
}

} // namespace

double
schemeLinearUs(const gpusim::GpuSpec &spec, QuantScheme scheme,
               const GemmShape &shape)
{
    auto weight_cfg = vqConfigsFor(scheme).first;
    switch (scheme) {
      case QuantScheme::FP16:
        return kernels::fp16GemvEstimate(spec, shape).us();
      case QuantScheme::EWQ4:
        return kernels::ewqGemvEstimate(spec, shape, 4).us();
      case QuantScheme::VQ4:
      case QuantScheme::VQ2:
        return bestVqWeightUs(spec, OpKind::GeMV, shape, weight_cfg);
    }
    return 0;
}

double
schemeAttentionUs(const gpusim::GpuSpec &spec, QuantScheme scheme,
                  const engine::AttnShape &shape)
{
    auto kv_cfg = vqConfigsFor(scheme).second;
    switch (scheme) {
      case QuantScheme::FP16:
        return kernels::fp16AttentionEstimate(spec, shape).us();
      case QuantScheme::EWQ4:
        return kernels::ewqAttentionEstimate(spec, shape, 4).us();
      case QuantScheme::VQ4:
      case QuantScheme::VQ2:
        return bestVqAttnUs(spec, shape, kv_cfg);
    }
    return 0;
}

E2EResult
estimateE2E(const gpusim::GpuSpec &spec, const LlamaConfig &model,
            QuantScheme scheme, const E2EConfig &cfg)
{
    auto [weight_cfg, kv_cfg] = vqConfigsFor(scheme);
    E2EResult result;

    // ---- Decode: evaluate one representative step at mid-generation
    // and scale (kernel latencies vary slowly with sequence length).
    std::size_t mid_seq = cfg.prompt_len + cfg.gen_tokens / 2;
    double step_linear_us = 0;
    for (auto [n, k] : model.layerLinearShapes()) {
        GemmShape shape{cfg.batch, n, k};
        step_linear_us += schemeLinearUs(spec, scheme, shape);
    }
    double step_attn_us = schemeAttentionUs(
        spec, scheme, model.attnShape(cfg.batch, mid_seq));
    double step_elem_us =
        elementwiseLayerLatencyUs(spec, cfg.batch, model.hidden);
    double step_us = (step_linear_us + step_elem_us) *
                         static_cast<double>(model.layers) +
                     step_attn_us * static_cast<double>(model.layers);
    result.decode_us = step_us * static_cast<double>(cfg.gen_tokens);
    result.elementwise_fraction =
        step_elem_us * model.layers / step_us;

    // ---- Prefill: GeMM-dominated, plus causal attention flops.
    std::size_t prefill_rows = cfg.batch * cfg.prompt_len;
    double layer_prefill_us = 0;
    for (auto [n, k] : model.layerLinearShapes()) {
        GemmShape shape{prefill_rows, n, k};
        // Weight quantization barely helps prefill GeMMs (compute
        // bound); use the FP16 GeMM model for all schemes, as the paper
        // does by leaving cutlass GeMM unmodified (Sec. VII-D).
        layer_prefill_us += kernels::fp16GemmEstimate(spec, shape).us();
    }
    // Causal attention: ~2 ops x B*H*(T^2/2)*C MACs per layer.
    double attn_flops = 2.0 * 2.0 * cfg.batch * model.heads * 0.5 *
                        static_cast<double>(cfg.prompt_len) *
                        cfg.prompt_len * model.head_dim;
    layer_prefill_us +=
        attn_flops / (spec.fp16_tensor_tflops * 1e12 * 0.5) * 1e6;
    result.prefill_us = layer_prefill_us *
                        static_cast<double>(model.layers);

    // ---- Memory footprint.
    double weight_scale;
    switch (scheme) {
      case QuantScheme::FP16: weight_scale = 2.0; break;
      case QuantScheme::EWQ4: weight_scale = 0.5 + 4.0 / 128; break;
      case QuantScheme::VQ4:
        weight_scale = 2.0 * weight_cfg.compressionRatio();
        break;
      case QuantScheme::VQ2:
        weight_scale = 2.0 * weight_cfg.compressionRatio();
        break;
      default: weight_scale = 2.0; break;
    }
    result.weight_bytes = static_cast<std::uint64_t>(
        static_cast<double>(model.decoderParams()) * weight_scale);
    double kv_scale;
    switch (scheme) {
      case QuantScheme::FP16: kv_scale = 1.0; break;
      case QuantScheme::EWQ4: kv_scale = 0.25 + 0.02; break;
      case QuantScheme::VQ4:
      case QuantScheme::VQ2:
        // Packed indices plus a small codebook overhead.
        kv_scale = kv_cfg.compressionRatio() + 0.01;
        break;
      default: kv_scale = 1.0; break;
    }
    result.kv_bytes = static_cast<std::uint64_t>(
        static_cast<double>(model.kvCacheBytesFp16(
            cfg.batch, cfg.prompt_len + cfg.gen_tokens)) *
        kv_scale);
    return result;
}

} // namespace vqllm::llm
