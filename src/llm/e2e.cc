#include "llm/e2e.h"

#include <map>

#include "common/logging.h"
#include "compiler/engine.h"
#include "kernels/ewq_kernels.h"
#include "kernels/fp16_kernels.h"
#include "kernels/vq_kernels.h"
#include "llm/ops.h"

namespace vqllm::llm {

using engine::GemmShape;
using engine::OpKind;
using engine::OptLevel;

namespace {

/** Ladder rungs the adaptive VQ selection compiles (paper Tbl. IV's
 *  upper half; the best rung wins per shape). */
const std::vector<OptLevel> kAdaptiveLevels = {OptLevel::O2,
                                               OptLevel::O3,
                                               OptLevel::O4};

/** A profile histogram plus its precomputed engine digest. */
struct ConfigProfile
{
    vq::AccessHistogram histogram;
    std::uint64_t digest = 0;
};

/**
 * Stand-in offline profile per VQ config (no quantized tensor at
 * paper scale): a memoized synthetic Zipf histogram with its content
 * digest computed once.  The table is built eagerly for every VQ
 * scheme's weight and KV configs on first use (magic-static init) and
 * is immutable afterwards, so the serving hot path — every decode
 * iteration of every parallel simulation prices through here — reads
 * it without taking any lock.
 */
const ConfigProfile &
configProfile(const vq::VQConfig &cfg)
{
    static const std::map<std::string, ConfigProfile> memo = [] {
        std::map<std::string, ConfigProfile> table;
        for (auto scheme : {QuantScheme::VQ4, QuantScheme::VQ2}) {
            auto [weight_cfg, kv_cfg] = schemeVqConfigs(scheme);
            for (const auto &c : {weight_cfg, kv_cfg}) {
                ConfigProfile profile;
                profile.histogram =
                    vq::syntheticZipfHistogram(c.storedEntries());
                profile.digest =
                    compiler::histogramDigest(profile.histogram);
                table.emplace(c.name, std::move(profile));
            }
        }
        return table;
    }();
    auto it = memo.find(cfg.name);
    vqllm_assert(it != memo.end(),
                 "no offline profile for VQ config ", cfg.name);
    return it->second;
}

} // namespace

double
prefillLayersUs(const gpusim::GpuSpec &spec, const LlamaConfig &model,
                std::size_t rows, double attn_positions,
                std::size_t heads,
                const std::vector<std::pair<std::size_t, std::size_t>>
                    &shapes)
{
    double layer_us = 0;
    for (auto [n, k] : shapes) {
        GemmShape shape{rows, n, k};
        layer_us += kernels::fp16GemmEstimate(spec, shape).us();
    }
    // Attention: 2 ops x 2 MACs x H x head_dim per key position.
    double attn_flops = 2.0 * 2.0 * static_cast<double>(heads) *
                        attn_positions *
                        static_cast<double>(model.head_dim);
    layer_us += attn_flops / (spec.fp16_tensor_tflops * 1e12 * 0.5) * 1e6;
    return layer_us * static_cast<double>(model.layers);
}

double
estimatePrefillUs(const gpusim::GpuSpec &spec, const LlamaConfig &model,
                  std::size_t batch, std::size_t prompt_len)
{
    // Causal attention: ~B*H*(T^2/2)*C MACs per layer.
    double positions = static_cast<double>(batch) * 0.5 *
                       static_cast<double>(prompt_len) * prompt_len;
    return prefillLayersUs(spec, model, batch * prompt_len, positions,
                           model.heads, model.layerLinearShapes());
}

double
estimateChunkedPrefillUs(const gpusim::GpuSpec &spec,
                         const LlamaConfig &model,
                         std::size_t slice_tokens,
                         std::size_t context_tokens)
{
    // Each of the T slice tokens attends over the C cached tokens plus
    // the slice prefix: ~C*T + T^2/2 key positions.
    double positions =
        static_cast<double>(slice_tokens) * context_tokens +
        0.5 * static_cast<double>(slice_tokens) * slice_tokens;
    return prefillLayersUs(spec, model, slice_tokens, positions,
                           model.heads, model.layerLinearShapes());
}

double
schemeLinearUs(compiler::Engine &eng, QuantScheme scheme,
               const GemmShape &shape)
{
    auto weight_cfg = schemeVqConfigs(scheme).first;
    switch (scheme) {
      case QuantScheme::FP16:
        return kernels::fp16GemvEstimate(eng.spec(), shape).us();
      case QuantScheme::EWQ4:
        return kernels::ewqGemvEstimate(eng.spec(), shape, 4).us();
      case QuantScheme::VQ4:
      case QuantScheme::VQ2: {
        const auto &profile = configProfile(weight_cfg);
        auto request = compiler::KernelRequest::gemvOp(
            shape, weight_cfg, OptLevel::O4, &profile.histogram);
        request.histogram_digest = profile.digest;
        return eng.compileBest(request, kAdaptiveLevels)->latencyUs();
      }
    }
    return 0;
}

double
schemeAttentionUs(compiler::Engine &eng, QuantScheme scheme,
                  const engine::AttnShape &shape)
{
    return kvSchemeAttentionUs(eng, defaultKvScheme(scheme), shape);
}

double
kvSchemeAttentionUs(compiler::Engine &eng, KvScheme kv,
                    const engine::AttnShape &shape)
{
    switch (kv) {
      case KvScheme::FP16:
        return kernels::fp16AttentionEstimate(eng.spec(), shape).us();
      case KvScheme::INT4:
        return kernels::ewqAttentionEstimate(eng.spec(), shape, 4).us();
      case KvScheme::VQ4:
      case KvScheme::VQ2: {
        auto kv_cfg = kvSchemeVqConfig(kv);
        const auto &profile = configProfile(kv_cfg);
        auto request = compiler::KernelRequest::attentionOp(
            shape, kv_cfg, OptLevel::O4, &profile.histogram);
        request.histogram_digest = profile.digest;
        return eng.compileBest(request, kAdaptiveLevels)->latencyUs();
      }
    }
    return 0;
}

double
schemeLinearUs(const gpusim::GpuSpec &spec, QuantScheme scheme,
               const GemmShape &shape)
{
    return schemeLinearUs(compiler::Engine::shared(spec), scheme, shape);
}

double
schemeAttentionUs(const gpusim::GpuSpec &spec, QuantScheme scheme,
                  const engine::AttnShape &shape)
{
    return schemeAttentionUs(compiler::Engine::shared(spec), scheme,
                             shape);
}

double
kvSchemeAttentionUs(const gpusim::GpuSpec &spec, KvScheme kv,
                    const engine::AttnShape &shape)
{
    return kvSchemeAttentionUs(compiler::Engine::shared(spec), kv, shape);
}

E2EResult
estimateE2E(const gpusim::GpuSpec &spec, const LlamaConfig &model,
            QuantScheme scheme, const E2EConfig &cfg)
{
    E2EResult result;

    // ---- Decode: evaluate one representative step at mid-generation
    // and scale (kernel latencies vary slowly with sequence length).
    std::size_t mid_seq = cfg.prompt_len + cfg.gen_tokens / 2;
    double step_linear_us = 0;
    for (auto [n, k] : model.layerLinearShapes()) {
        GemmShape shape{cfg.batch, n, k};
        step_linear_us += schemeLinearUs(spec, scheme, shape);
    }
    double step_attn_us = schemeAttentionUs(
        spec, scheme, model.attnShape(cfg.batch, mid_seq));
    double step_elem_us =
        elementwiseLayerLatencyUs(spec, cfg.batch, model.hidden);
    double step_us = (step_linear_us + step_elem_us) *
                         static_cast<double>(model.layers) +
                     step_attn_us * static_cast<double>(model.layers);
    result.decode_us = step_us * static_cast<double>(cfg.gen_tokens);
    result.elementwise_fraction =
        step_elem_us * model.layers / step_us;

    // ---- Prefill (scheme-independent, see estimatePrefillUs).
    result.prefill_us =
        estimatePrefillUs(spec, model, cfg.batch, cfg.prompt_len);

    // ---- Memory footprint (shared scheme scales, model_config.h).
    result.weight_bytes = static_cast<std::uint64_t>(
        static_cast<double>(model.decoderParams()) *
        schemeWeightBytesPerParam(scheme));
    result.kv_bytes = static_cast<std::uint64_t>(
        static_cast<double>(model.kvCacheBytesFp16(
            cfg.batch, cfg.prompt_len + cfg.gen_tokens)) *
        schemeKvScale(scheme));
    return result;
}

} // namespace vqllm::llm
