/**
 * @file
 * Tensor-parallel (TP) serving estimation — the paper's stated future
 * work (Sec. VII-A: "large model serving like Llama-65B typically uses
 * multiple GPUs with Tensor Parallel strategy ... required adjustments
 * include final results gathering for Attention and partial results
 * concatenation/reduction for GeMM/GeMV, usually conducted via
 * communication library like NCCL").
 *
 * This extension implements that model: Megatron-style sharding
 * (column-parallel QKV/gate/up, row-parallel O/down, head-sharded
 * attention) with two ring all-reduces per layer per decode step, on
 * top of the per-scheme kernel estimates.
 */
#pragma once

#include "llm/e2e.h"

namespace vqllm::llm {

/** Multi-GPU interconnect and sharding configuration. */
struct TpConfig
{
    /** Tensor-parallel degree (GPUs). */
    int degree = 1;
    /** Per-direction link bandwidth of the all-reduce ring, GB/s. */
    double link_bw_gbps = 300.0; // NVLink-class
    /** Per-collective launch/sync latency, microseconds. */
    double collective_latency_us = 8.0;
};

/** TP end-to-end estimate. */
struct TpResult
{
    /** Decode latency over all generated tokens, microseconds. */
    double decode_us = 0;
    /** Communication share of one decode step. */
    double comm_fraction = 0;
    /** All-reduce time per decode step, microseconds. */
    double comm_us_per_step = 0;
    /** Per-GPU weight + KV memory, bytes. */
    std::uint64_t memory_per_gpu = 0;
};

/**
 * Estimate TP decode-phase serving.
 *
 * @param spec   per-GPU hardware model
 * @param model  model configuration
 * @param scheme quantization scheme
 * @param tp     TP degree and interconnect
 * @param cfg    serving scenario
 */
TpResult estimateTensorParallel(const gpusim::GpuSpec &spec,
                                const LlamaConfig &model,
                                QuantScheme scheme, const TpConfig &tp,
                                const E2EConfig &cfg = E2EConfig{});

/**
 * Ring all-reduce latency for a payload (2(G-1)/G traversals of the
 * slowest link plus the collective launch cost).
 */
double ringAllReduceUs(const TpConfig &tp, std::uint64_t bytes);

/**
 * Point-to-point transfer of `bytes` over the TpConfig link model: one
 * traversal of the link plus the collective launch cost.  Unlike the
 * all-reduces this is nonzero at degree 1 — it prices data movement
 * *between* replicas (a fleet prefill→decode KV handoff), not within a
 * TP group, so only the link fields of `tp` matter.  0 at bytes == 0.
 */
double linkTransferUs(const TpConfig &tp, std::uint64_t bytes);

/**
 * Both ring all-reduces of one Megatron layer (after Wo and after
 * W_down) over `rows` FP16 activation rows of width `hidden`.  The
 * per-layer collective cost every decode step and prefill chunk pays
 * under TP; 0 at degree 1.
 */
double layerAllReduceUs(const TpConfig &tp, std::size_t rows,
                        std::size_t hidden);

/**
 * Balanced split of `total` units across `degree` shards: the share
 * owned by shard `shard` (shards 0..total%degree-1 take the remainder,
 * so shard 0 is always a widest — critical-path — shard).
 */
std::size_t shardSplit(std::size_t total, std::size_t degree,
                       std::size_t shard);

/**
 * Per-layer linear weight shapes of one TP shard (Megatron layout:
 * column-parallel Wq/Wk/Wv/W_gate/W_up split the output features,
 * row-parallel Wo/W_down split the reduced input features).  Degree 1
 * returns LlamaConfig::layerLinearShapes() unchanged.
 *
 * Shared by llm::estimateTensorParallel and the serving iteration
 * pricer so the analytical and scheduler-level TP models can never
 * disagree about shard geometry.
 */
std::vector<std::pair<std::size_t, std::size_t>>
shardLinearShapes(const LlamaConfig &model, std::size_t degree,
                  std::size_t shard);

/**
 * Head-sharded decode-attention shape of one TP shard.  Query heads
 * split by shardSplit; GQA KV heads split the same way, and the MHA
 * default (kv_heads == 0) is preserved so a degree-1 shard shape is
 * bit-identical to LlamaConfig::attnShape.
 */
engine::AttnShape shardAttnShape(const LlamaConfig &model,
                                 std::size_t batch, std::size_t seq_len,
                                 std::size_t degree, std::size_t shard);

/**
 * TP-aware chunked-prefill compute latency: the critical shard's
 * sharded GeMMs plus head-sharded causal attention over the cached
 * context (no collectives — callers add layerAllReduceUs per layer).
 * Degree <= 1 delegates to the single-GPU estimateChunkedPrefillUs and
 * is bit-identical to it.
 */
double estimateChunkedPrefillUs(const gpusim::GpuSpec &spec,
                                const LlamaConfig &model,
                                std::size_t slice_tokens,
                                std::size_t context_tokens,
                                const TpConfig &tp);

} // namespace vqllm::llm
