/**
 * @file
 * Tensor-parallel (TP) serving estimation — the paper's stated future
 * work (Sec. VII-A: "large model serving like Llama-65B typically uses
 * multiple GPUs with Tensor Parallel strategy ... required adjustments
 * include final results gathering for Attention and partial results
 * concatenation/reduction for GeMM/GeMV, usually conducted via
 * communication library like NCCL").
 *
 * This extension implements that model: Megatron-style sharding
 * (column-parallel QKV/gate/up, row-parallel O/down, head-sharded
 * attention) with two ring all-reduces per layer per decode step, on
 * top of the per-scheme kernel estimates.
 */
#pragma once

#include "llm/e2e.h"

namespace vqllm::llm {

/** Multi-GPU interconnect and sharding configuration. */
struct TpConfig
{
    /** Tensor-parallel degree (GPUs). */
    int degree = 1;
    /** Per-direction link bandwidth of the all-reduce ring, GB/s. */
    double link_bw_gbps = 300.0; // NVLink-class
    /** Per-collective launch/sync latency, microseconds. */
    double collective_latency_us = 8.0;
};

/** TP end-to-end estimate. */
struct TpResult
{
    /** Decode latency over all generated tokens, microseconds. */
    double decode_us = 0;
    /** Communication share of one decode step. */
    double comm_fraction = 0;
    /** All-reduce time per decode step, microseconds. */
    double comm_us_per_step = 0;
    /** Per-GPU weight + KV memory, bytes. */
    std::uint64_t memory_per_gpu = 0;
};

/**
 * Estimate TP decode-phase serving.
 *
 * @param spec   per-GPU hardware model
 * @param model  model configuration
 * @param scheme quantization scheme
 * @param tp     TP degree and interconnect
 * @param cfg    serving scenario
 */
TpResult estimateTensorParallel(const gpusim::GpuSpec &spec,
                                const LlamaConfig &model,
                                QuantScheme scheme, const TpConfig &tp,
                                const E2EConfig &cfg = E2EConfig{});

/**
 * Ring all-reduce latency for a payload (2(G-1)/G traversals of the
 * slowest link plus the collective launch cost).
 */
double ringAllReduceUs(const TpConfig &tp, std::uint64_t bytes);

} // namespace vqllm::llm
