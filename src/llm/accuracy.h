/**
 * @file
 * Task-accuracy evaluation of quantization schemes (paper Fig. 17
 * right; substitution for the arc-challenge / LMEval pipeline, see
 * DESIGN.md).
 *
 * A small MLP classifier is trained on synthetic correlated clustered
 * data; its weight matrix is then quantized with each method (FP16
 * passthrough, VQ, group-wise integer RTN) through the *identical*
 * quantize->dequantize code paths the kernels use, and held-out accuracy
 * is measured.  Cross-dimension correlation in the weights is what lets
 * VQ retain accuracy where element-wise quantization loses it (paper
 * Fig. 2).
 */
#pragma once

#include <cstdint>

#include "ewq/int_quant.h"
#include "tensor/tensor.h"
#include "vq/quantizer.h"

namespace vqllm::llm {

/** A two-layer MLP classifier. */
struct MlpModel
{
    /** Hidden weights [hidden, input]. */
    Tensor<float> w1;
    /** Output weights [classes, hidden]. */
    Tensor<float> w2;
    /** Hidden and output biases. */
    std::vector<float> b1, b2;
};

/** A labelled dataset. */
struct Dataset
{
    /** [n, dim] features. */
    Tensor<float> features;
    /** class index per row. */
    std::vector<std::uint32_t> labels;
};

/** Synthetic classification task parameters. */
struct TaskSpec
{
    std::size_t input_dim = 24;
    std::size_t classes = 8;
    std::size_t clusters_per_class = 5;
    std::size_t train_samples = 3000;
    std::size_t test_samples = 1500;
    double dim_correlation = 0.6;
    double label_noise = 0.04;
    /** Stddev of samples around their cluster center (task hardness). */
    double sample_spread = 0.9;
};

/** Generate a synthetic correlated classification dataset. */
Dataset makeTask(const TaskSpec &spec, Rng &rng);

/**
 * Train the MLP with SGD on softmax cross-entropy.
 *
 * @param train   training data
 * @param hidden  hidden width
 * @param epochs  passes over the data
 * @param lr      learning rate
 * @param rng     initialization/shuffling randomness
 */
MlpModel trainMlp(const Dataset &train, std::size_t hidden, int epochs,
                  double lr, Rng &rng);

/** @return classification accuracy of the model on a dataset. */
double evaluate(const MlpModel &model, const Dataset &data);

/** Accuracy of a model whose hidden weights are replaced. */
double evaluateWithWeights(const MlpModel &model,
                           const Tensor<float> &w1_replacement,
                           const Dataset &data);

/** Accuracy comparison across quantization schemes at one bit-width. */
struct AccuracyReport
{
    double fp16 = 0;
    double vq = 0;
    double ewq = 0;
};

/**
 * Run the full pipeline: make task, train, quantize the hidden weights
 * with a VQ config and an equal-bit-width RTN config, evaluate all
 * three.
 *
 * @param vq_cfg  VQ configuration (entry count may be reduced for the
 *                small weight matrix)
 * @param ewq_cfg integer config at the same equivalent bit-width
 * @param seed    determinism seed
 */
AccuracyReport compareQuantAccuracy(const vq::VQConfig &vq_cfg,
                                    const ewq::IntQuantConfig &ewq_cfg,
                                    std::uint64_t seed = 1234);

/** Held-out accuracy per KV-cache storage scheme (llm::KvScheme
 *  order: FP16, INT4, VQ4, VQ2). */
struct KvAccuracyReport
{
    double fp16 = 0;
    double int4 = 0;
    double vq4 = 0;
    double vq2 = 0;
};

/**
 * Quality trade-off of the KV storage schemes: train the classifier,
 * then quantize its *hidden activations* — the stand-in for cached KV
 * vectors, which are activations, not weights — through each KV
 * scheme's quantize->dequantize path (FP16 round-trip, group-wise int4
 * RTN, CQ-4 and CQ-2 vector quantization) and evaluate the output
 * layer on the reconstructed activations.
 *
 * @param seed determinism seed (task, init, shuffling)
 */
KvAccuracyReport compareKvAccuracy(std::uint64_t seed = 1234);

} // namespace vqllm::llm
