#include "llm/model_config.h"

#include <algorithm>
#include <cctype>

namespace vqllm::llm {

const char *
quantSchemeName(QuantScheme scheme)
{
    switch (scheme) {
      case QuantScheme::FP16: return "FP16";
      case QuantScheme::EWQ4: return "qServe (4 bit)";
      case QuantScheme::VQ4:  return "VQ-LLM (4 bit)";
      case QuantScheme::VQ2:  return "VQ-LLM (2 bit)";
    }
    return "?";
}

bool
parseQuantScheme(const std::string &token, QuantScheme *out)
{
    std::string t = token;
    std::transform(t.begin(), t.end(), t.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (t == "fp16")
        *out = QuantScheme::FP16;
    else if (t == "ewq4" || t == "qserve")
        *out = QuantScheme::EWQ4;
    else if (t == "vq4")
        *out = QuantScheme::VQ4;
    else if (t == "vq2")
        *out = QuantScheme::VQ2;
    else
        return false;
    return true;
}

const char *
kvSchemeName(KvScheme scheme)
{
    switch (scheme) {
      case KvScheme::FP16: return "FP16";
      case KvScheme::INT4: return "INT4";
      case KvScheme::VQ4:  return "VQ4";
      case KvScheme::VQ2:  return "VQ2";
    }
    return "?";
}

const char *
kvSchemeToken(KvScheme scheme)
{
    switch (scheme) {
      case KvScheme::FP16: return "fp16";
      case KvScheme::INT4: return "int4";
      case KvScheme::VQ4:  return "vq4";
      case KvScheme::VQ2:  return "vq2";
    }
    return "?";
}

bool
parseKvScheme(const std::string &token, KvScheme *out)
{
    std::string t = token;
    std::transform(t.begin(), t.end(), t.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (t == "fp16")
        *out = KvScheme::FP16;
    else if (t == "int4")
        *out = KvScheme::INT4;
    else if (t == "vq4")
        *out = KvScheme::VQ4;
    else if (t == "vq2")
        *out = KvScheme::VQ2;
    else
        return false;
    return true;
}

KvScheme
defaultKvScheme(QuantScheme scheme)
{
    switch (scheme) {
      case QuantScheme::FP16: return KvScheme::FP16;
      case QuantScheme::EWQ4: return KvScheme::INT4;
      case QuantScheme::VQ4:  return KvScheme::VQ4;
      case QuantScheme::VQ2:  return KvScheme::VQ2;
    }
    return KvScheme::FP16;
}

vq::VQConfig
kvSchemeVqConfig(KvScheme scheme)
{
    if (scheme == KvScheme::VQ2)
        return vq::cq2();
    return vq::cq4();
}

std::pair<vq::VQConfig, vq::VQConfig>
schemeVqConfigs(QuantScheme scheme)
{
    if (scheme == QuantScheme::VQ2)
        return {vq::gptvq2(), vq::cq2()};
    return {vq::quip4(), vq::cq4()};
}

double
schemeWeightBytesPerParam(QuantScheme scheme)
{
    switch (scheme) {
      case QuantScheme::FP16:
        return 2.0;
      case QuantScheme::EWQ4:
        // 4-bit weights plus one FP16 scale per 128-element group.
        return 0.5 + 4.0 / 128;
      case QuantScheme::VQ4:
      case QuantScheme::VQ2:
        return 2.0 * schemeVqConfigs(scheme).first.compressionRatio();
    }
    return 2.0;
}

double
kvSchemeScale(KvScheme scheme)
{
    switch (scheme) {
      case KvScheme::FP16:
        return 1.0;
      case KvScheme::INT4:
        // 4-bit entries plus per-group scale/zero-point overhead.
        return 0.25 + 0.02;
      case KvScheme::VQ4:
      case KvScheme::VQ2:
        // Packed indices plus a small codebook overhead.
        return kvSchemeVqConfig(scheme).compressionRatio() + 0.01;
    }
    return 1.0;
}

std::uint64_t
kvSchemeBytesPerToken(const LlamaConfig &model, KvScheme scheme)
{
    double fp16 = static_cast<double>(model.kvCacheBytesFp16(1, 1));
    return static_cast<std::uint64_t>(fp16 * kvSchemeScale(scheme));
}

double
schemeKvScale(QuantScheme scheme)
{
    return kvSchemeScale(defaultKvScheme(scheme));
}

std::uint64_t
schemeKvBytesPerToken(const LlamaConfig &model, QuantScheme scheme)
{
    return kvSchemeBytesPerToken(model, defaultKvScheme(scheme));
}

std::uint64_t
kvPackedBytesFp16(std::uint64_t elements)
{
    return elements * 2;
}

std::uint64_t
kvPackedBytesInt(std::uint64_t elements, std::size_t bits,
                 std::size_t group_size)
{
    return elements * bits / 8 + elements / group_size * 4;
}

const LlamaConfig &
llama7b()
{
    static const LlamaConfig cfg = [] {
        LlamaConfig c;
        c.name = "Llama-7B";
        c.hidden = 4096;
        c.heads = 32;
        c.head_dim = 128;
        c.layers = 32;
        c.intermediate = 11008;
        return c;
    }();
    return cfg;
}

const LlamaConfig &
llama65b()
{
    static const LlamaConfig cfg = [] {
        LlamaConfig c;
        c.name = "Llama-65B";
        c.hidden = 8192;
        c.heads = 64;
        c.head_dim = 128;
        c.layers = 80;
        c.intermediate = 22016;
        return c;
    }();
    return cfg;
}

const LlamaConfig &
llama70b()
{
    static const LlamaConfig cfg = [] {
        LlamaConfig c;
        c.name = "Llama-2-70B";
        c.hidden = 8192;
        c.heads = 64;
        c.head_dim = 128;
        c.layers = 80;
        c.intermediate = 28672;
        c.kv_heads = 8; // grouped-query attention
        return c;
    }();
    return cfg;
}

} // namespace vqllm::llm
