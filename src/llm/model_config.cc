#include "llm/model_config.h"

namespace vqllm::llm {

const LlamaConfig &
llama7b()
{
    static const LlamaConfig cfg = [] {
        LlamaConfig c;
        c.name = "Llama-7B";
        c.hidden = 4096;
        c.heads = 32;
        c.head_dim = 128;
        c.layers = 32;
        c.intermediate = 11008;
        return c;
    }();
    return cfg;
}

const LlamaConfig &
llama65b()
{
    static const LlamaConfig cfg = [] {
        LlamaConfig c;
        c.name = "Llama-65B";
        c.hidden = 8192;
        c.heads = 64;
        c.head_dim = 128;
        c.layers = 80;
        c.intermediate = 22016;
        return c;
    }();
    return cfg;
}

const LlamaConfig &
llama70b()
{
    static const LlamaConfig cfg = [] {
        LlamaConfig c;
        c.name = "Llama-2-70B";
        c.hidden = 8192;
        c.heads = 64;
        c.head_dim = 128;
        c.layers = 80;
        c.intermediate = 28672;
        c.kv_heads = 8; // grouped-query attention
        return c;
    }();
    return cfg;
}

} // namespace vqllm::llm
