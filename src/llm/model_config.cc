#include "llm/model_config.h"

#include <algorithm>
#include <cctype>

namespace vqllm::llm {

const char *
quantSchemeName(QuantScheme scheme)
{
    switch (scheme) {
      case QuantScheme::FP16: return "FP16";
      case QuantScheme::EWQ4: return "qServe (4 bit)";
      case QuantScheme::VQ4:  return "VQ-LLM (4 bit)";
      case QuantScheme::VQ2:  return "VQ-LLM (2 bit)";
    }
    return "?";
}

bool
parseQuantScheme(const std::string &token, QuantScheme *out)
{
    std::string t = token;
    std::transform(t.begin(), t.end(), t.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (t == "fp16")
        *out = QuantScheme::FP16;
    else if (t == "ewq4" || t == "qserve")
        *out = QuantScheme::EWQ4;
    else if (t == "vq4")
        *out = QuantScheme::VQ4;
    else if (t == "vq2")
        *out = QuantScheme::VQ2;
    else
        return false;
    return true;
}

std::pair<vq::VQConfig, vq::VQConfig>
schemeVqConfigs(QuantScheme scheme)
{
    if (scheme == QuantScheme::VQ2)
        return {vq::gptvq2(), vq::cq2()};
    return {vq::quip4(), vq::cq4()};
}

double
schemeWeightBytesPerParam(QuantScheme scheme)
{
    switch (scheme) {
      case QuantScheme::FP16:
        return 2.0;
      case QuantScheme::EWQ4:
        // 4-bit weights plus one FP16 scale per 128-element group.
        return 0.5 + 4.0 / 128;
      case QuantScheme::VQ4:
      case QuantScheme::VQ2:
        return 2.0 * schemeVqConfigs(scheme).first.compressionRatio();
    }
    return 2.0;
}

double
schemeKvScale(QuantScheme scheme)
{
    switch (scheme) {
      case QuantScheme::FP16:
        return 1.0;
      case QuantScheme::EWQ4:
        // 4-bit entries plus per-group scale/zero-point overhead.
        return 0.25 + 0.02;
      case QuantScheme::VQ4:
      case QuantScheme::VQ2:
        // Packed indices plus a small codebook overhead.
        return schemeVqConfigs(scheme).second.compressionRatio() + 0.01;
    }
    return 1.0;
}

std::uint64_t
schemeKvBytesPerToken(const LlamaConfig &model, QuantScheme scheme)
{
    double fp16 = static_cast<double>(model.kvCacheBytesFp16(1, 1));
    return static_cast<std::uint64_t>(fp16 * schemeKvScale(scheme));
}

const LlamaConfig &
llama7b()
{
    static const LlamaConfig cfg = [] {
        LlamaConfig c;
        c.name = "Llama-7B";
        c.hidden = 4096;
        c.heads = 32;
        c.head_dim = 128;
        c.layers = 32;
        c.intermediate = 11008;
        return c;
    }();
    return cfg;
}

const LlamaConfig &
llama65b()
{
    static const LlamaConfig cfg = [] {
        LlamaConfig c;
        c.name = "Llama-65B";
        c.hidden = 8192;
        c.heads = 64;
        c.head_dim = 128;
        c.layers = 80;
        c.intermediate = 22016;
        return c;
    }();
    return cfg;
}

const LlamaConfig &
llama70b()
{
    static const LlamaConfig cfg = [] {
        LlamaConfig c;
        c.name = "Llama-2-70B";
        c.hidden = 8192;
        c.heads = 64;
        c.head_dim = 128;
        c.layers = 80;
        c.intermediate = 28672;
        c.kv_heads = 8; // grouped-query attention
        return c;
    }();
    return cfg;
}

} // namespace vqllm::llm
