/**
 * @file
 * LLM model configurations (Llama family) used by the end-to-end
 * evaluation (paper Sec. VII-A/E).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "engine/op_desc.h"

namespace vqllm::llm {

/** Static description of a Llama-style decoder-only transformer. */
struct LlamaConfig
{
    std::string name;
    std::size_t hidden = 4096;
    std::size_t heads = 32;
    std::size_t head_dim = 128;
    std::size_t layers = 32;
    std::size_t intermediate = 11008;
    std::size_t vocab = 32000;
    /** KV heads (grouped-query attention); 0 = MHA. */
    std::size_t kv_heads = 0;

    /** @return effective KV heads. */
    std::size_t
    kvHeads() const
    {
        return kv_heads == 0 ? heads : kv_heads;
    }

    /** Per-layer linear layers as (n=out, k=in) weight shapes. */
    std::vector<std::pair<std::size_t, std::size_t>>
    layerLinearShapes() const
    {
        return {
            {hidden, hidden},       // Wq
            {hidden, hidden},       // Wk
            {hidden, hidden},       // Wv
            {hidden, hidden},       // Wo
            {intermediate, hidden}, // W_gate
            {intermediate, hidden}, // W_up
            {hidden, intermediate}, // W_down
        };
    }

    /** @return total weight parameters in the decoder stack. */
    std::uint64_t
    decoderParams() const
    {
        std::uint64_t per_layer = 0;
        for (auto [n, k] : layerLinearShapes())
            per_layer += static_cast<std::uint64_t>(n) * k;
        return per_layer * layers;
    }

    /** @return KV-cache bytes for a batch at a sequence length (FP16). */
    std::uint64_t
    kvCacheBytesFp16(std::size_t batch, std::size_t seq_len) const
    {
        return 2ull * batch * layers * kvHeads() * head_dim * seq_len *
               2;
    }

    /** @return attention shape for a decode step. */
    engine::AttnShape
    attnShape(std::size_t batch, std::size_t seq_len) const
    {
        return {batch, heads, seq_len, head_dim, kv_heads};
    }
};

/** Quantization scheme of an end-to-end run. */
enum class QuantScheme {
    FP16,   ///< no quantization
    EWQ4,   ///< qServe-style W4A8KV4 element-wise quantization
    VQ4,    ///< VQ-LLM 4-bit: QuiP#-4 weights + CQ-4 KV cache
    VQ2,    ///< VQ-LLM 2-bit: GPTVQ-2 weights + CQ-2 KV cache
};

/** All schemes in evaluation order (paper Fig. 17). */
inline constexpr QuantScheme kAllQuantSchemes[] = {
    QuantScheme::FP16,
    QuantScheme::EWQ4,
    QuantScheme::VQ4,
    QuantScheme::VQ2,
};

/**
 * Storage scheme of the KV cache, independent of the weight scheme.
 *
 * Historically the KV format was implied by the weight `QuantScheme`
 * (FP16 weights -> FP16 KV, qServe -> int4 KV, VQ-LLM -> CQ KV).
 * `KvScheme` makes that a first-class axis: any weight scheme can be
 * served with any KV format, e.g. FP16 weights + CQ-4 KV to trade a
 * little attention dequant for 3.8x KV-cache capacity.
 */
enum class KvScheme {
    FP16, ///< uncompressed half-precision KV
    INT4, ///< element-wise 4-bit KV with per-group scales (qServe-style)
    VQ4,  ///< CQ-4 vector-quantized KV (VQ<2,8,1>, 4 bits/element)
    VQ2,  ///< CQ-2 vector-quantized KV (VQ<4,8,1>, 2 bits/element)
};

/** All KV schemes in sweep order. */
inline constexpr KvScheme kAllKvSchemes[] = {
    KvScheme::FP16,
    KvScheme::INT4,
    KvScheme::VQ4,
    KvScheme::VQ2,
};

/** @return printable scheme name. */
const char *quantSchemeName(QuantScheme scheme);

/** @return printable KV-scheme name ("FP16", "INT4", "VQ4", "VQ2"). */
const char *kvSchemeName(KvScheme scheme);

/** @return lowercase CLI/JSON token ("fp16", "int4", "vq4", "vq2"). */
const char *kvSchemeToken(KvScheme scheme);

/**
 * Parse a KV scheme from a CLI-style token ("fp16", "int4", "vq4",
 * "vq2").
 *
 * @return true and sets *out on success; false on unknown token.
 */
bool parseKvScheme(const std::string &token, KvScheme *out);

/** KV scheme a weight scheme historically implied (FP16 -> FP16,
 *  EWQ4 -> INT4, VQ4 -> VQ4, VQ2 -> VQ2).  Runs that do not override
 *  the KV scheme resolve through this and are bit-identical to the
 *  pre-KvScheme behaviour. */
KvScheme defaultKvScheme(QuantScheme scheme);

/** KV codebook configuration of a VQ KV scheme (CQ-2 for VQ2, CQ-4
 *  otherwise — the 4-bit config doubles as a placeholder for
 *  histogram-free call sites, mirroring schemeVqConfigs). */
vq::VQConfig kvSchemeVqConfig(KvScheme scheme);

/**
 * Parse a scheme from a CLI-style token ("fp16", "ewq4", "vq4", "vq2").
 *
 * @return true and sets *out on success; false on unknown token.
 */
bool parseQuantScheme(const std::string &token, QuantScheme *out);

/** Weight/KV VQ configurations of a scheme as (weights, kv). The VQ
 *  members are meaningful for VQ4/VQ2 only; FP16/EWQ4 return the 4-bit
 *  configs as placeholders for histogram-free call sites. */
std::pair<vq::VQConfig, vq::VQConfig> schemeVqConfigs(QuantScheme scheme);

/** Weight-memory bytes per model parameter under a scheme (FP16 = 2;
 *  element-wise 4-bit adds per-group scale overhead; VQ uses the
 *  configured compression ratio). */
double schemeWeightBytesPerParam(QuantScheme scheme);

/** KV-cache bytes under a KV scheme relative to FP16 (1.0 for FP16;
 *  packed indices plus codebook/scale overhead for the quantized
 *  schemes). */
double kvSchemeScale(KvScheme scheme);

/** KV-cache bytes one cached token occupies across the whole decoder
 *  stack (all layers, K and V) under a KV scheme. */
std::uint64_t kvSchemeBytesPerToken(const LlamaConfig &model,
                                    KvScheme scheme);

/** KV-cache bytes under a scheme relative to FP16; equivalent to
 *  `kvSchemeScale(defaultKvScheme(scheme))`. */
double schemeKvScale(QuantScheme scheme);

/** KV-cache bytes one cached token occupies across the whole decoder
 *  stack (all layers, K and V) under a scheme. */
std::uint64_t schemeKvBytesPerToken(const LlamaConfig &model,
                                    QuantScheme scheme);

/** Packed byte footprint of `elements` FP16 values.  Single source of
 *  truth for the KV traffic math in the kernel estimators. */
std::uint64_t kvPackedBytesFp16(std::uint64_t elements);

/** Packed byte footprint of `elements` values quantized element-wise
 *  to `bits` bits with one FP32 scale per `group_size`-element group
 *  (qServe-style int KV metadata). */
std::uint64_t kvPackedBytesInt(std::uint64_t elements, std::size_t bits,
                               std::size_t group_size);

/** @return the Llama-7B configuration. */
const LlamaConfig &llama7b();

/** @return the Llama-65B configuration. */
const LlamaConfig &llama65b();

/** @return a Llama-2-70B-style configuration (GQA with 8 KV heads). */
const LlamaConfig &llama70b();

} // namespace vqllm::llm
