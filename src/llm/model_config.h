/**
 * @file
 * LLM model configurations (Llama family) used by the end-to-end
 * evaluation (paper Sec. VII-A/E).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/op_desc.h"

namespace vqllm::llm {

/** Static description of a Llama-style decoder-only transformer. */
struct LlamaConfig
{
    std::string name;
    std::size_t hidden = 4096;
    std::size_t heads = 32;
    std::size_t head_dim = 128;
    std::size_t layers = 32;
    std::size_t intermediate = 11008;
    std::size_t vocab = 32000;
    /** KV heads (grouped-query attention); 0 = MHA. */
    std::size_t kv_heads = 0;

    /** @return effective KV heads. */
    std::size_t
    kvHeads() const
    {
        return kv_heads == 0 ? heads : kv_heads;
    }

    /** Per-layer linear layers as (n=out, k=in) weight shapes. */
    std::vector<std::pair<std::size_t, std::size_t>>
    layerLinearShapes() const
    {
        return {
            {hidden, hidden},       // Wq
            {hidden, hidden},       // Wk
            {hidden, hidden},       // Wv
            {hidden, hidden},       // Wo
            {intermediate, hidden}, // W_gate
            {intermediate, hidden}, // W_up
            {hidden, intermediate}, // W_down
        };
    }

    /** @return total weight parameters in the decoder stack. */
    std::uint64_t
    decoderParams() const
    {
        std::uint64_t per_layer = 0;
        for (auto [n, k] : layerLinearShapes())
            per_layer += static_cast<std::uint64_t>(n) * k;
        return per_layer * layers;
    }

    /** @return KV-cache bytes for a batch at a sequence length (FP16). */
    std::uint64_t
    kvCacheBytesFp16(std::size_t batch, std::size_t seq_len) const
    {
        return 2ull * batch * layers * kvHeads() * head_dim * seq_len *
               2;
    }

    /** @return attention shape for a decode step. */
    engine::AttnShape
    attnShape(std::size_t batch, std::size_t seq_len) const
    {
        return {batch, heads, seq_len, head_dim, kv_heads};
    }
};

/** @return the Llama-7B configuration. */
const LlamaConfig &llama7b();

/** @return the Llama-65B configuration. */
const LlamaConfig &llama65b();

/** @return a Llama-2-70B-style configuration (GQA with 8 KV heads). */
const LlamaConfig &llama70b();

} // namespace vqllm::llm
