#include "llm/accuracy.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "kernels/reference.h"
#include "tensor/datagen.h"
#include "vq/profiler.h"

namespace vqllm::llm {

Dataset
makeTask(const TaskSpec &spec, Rng &rng)
{
    Dataset data;
    std::size_t total = spec.train_samples + spec.test_samples;
    data.features = Tensor<float>({total, spec.input_dim});
    data.labels.resize(total);

    // Class-conditional cluster centers.
    std::size_t num_centers = spec.classes * spec.clusters_per_class;
    Tensor<float> centers({num_centers, spec.input_dim});
    fillNormal(centers, rng, 0.0, 1.2);

    for (std::size_t i = 0; i < total; ++i) {
        std::uint32_t cls =
            static_cast<std::uint32_t>(rng.uniformInt(spec.classes));
        std::size_t center =
            cls * spec.clusters_per_class +
            rng.uniformInt(spec.clusters_per_class);
        float prev = 0.0f;
        for (std::size_t d = 0; d < spec.input_dim; ++d) {
            double raw = centers.at(center, d) +
                         rng.normal(0.0, spec.sample_spread);
            double mixed = (1.0 - spec.dim_correlation) * raw +
                           spec.dim_correlation * prev;
            data.features.at(i, d) = static_cast<float>(mixed);
            prev = data.features.at(i, d);
        }
        if (rng.uniform() < spec.label_noise)
            cls = static_cast<std::uint32_t>(
                rng.uniformInt(spec.classes));
        data.labels[i] = cls;
    }
    return data;
}

namespace {

/** Forward pass returning class probabilities for one sample. */
std::vector<float>
forward(const MlpModel &model, const Tensor<float> &w1,
        const Tensor<float> &features, std::size_t row,
        std::vector<float> *hidden_out = nullptr)
{
    const std::size_t dim = features.dim(1);
    const std::size_t hidden = w1.dim(0);
    const std::size_t classes = model.w2.dim(0);

    const float *x = features.data() + row * dim;
    std::vector<float> h(hidden);
    for (std::size_t j = 0; j < hidden; ++j) {
        float acc = model.b1[j] + simd::dot(w1.data() + j * dim, x, dim);
        h[j] = acc > 0 ? acc : 0.0f; // ReLU
    }
    if (hidden_out)
        *hidden_out = h;

    std::vector<float> logits(classes);
    for (std::size_t c = 0; c < classes; ++c)
        logits[c] = model.b2[c] +
                    simd::dot(model.w2.data() + c * hidden, h.data(),
                              hidden);
    kernels::softmaxInPlace(logits);
    return logits;
}

} // namespace

MlpModel
trainMlp(const Dataset &train, std::size_t hidden, int epochs, double lr,
         Rng &rng)
{
    const std::size_t n = train.features.dim(0);
    const std::size_t dim = train.features.dim(1);
    std::size_t classes = 0;
    for (auto l : train.labels)
        classes = std::max<std::size_t>(classes, l + 1);

    MlpModel model;
    model.w1 = Tensor<float>({hidden, dim});
    model.w2 = Tensor<float>({classes, hidden});
    fillNormal(model.w1, rng, 0.0, 1.0 / std::sqrt(double(dim)));
    fillNormal(model.w2, rng, 0.0, 1.0 / std::sqrt(double(hidden)));
    model.b1.assign(hidden, 0.0f);
    model.b2.assign(classes, 0.0f);

    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;

    std::vector<float> h;
    for (int epoch = 0; epoch < epochs; ++epoch) {
        rng.shuffle(order);
        for (std::size_t idx : order) {
            auto probs =
                forward(model, model.w1, train.features, idx, &h);
            std::uint32_t y = train.labels[idx];

            // Output layer gradients (softmax CE): dL/dlogit = p - 1_y.
            std::vector<float> dlogit(classes);
            for (std::size_t c = 0; c < classes; ++c)
                dlogit[c] = probs[c] - (c == y ? 1.0f : 0.0f);

            // Hidden gradient through w2 and ReLU.
            std::vector<float> dh(hidden, 0.0f);
            for (std::size_t c = 0; c < classes; ++c) {
                for (std::size_t j = 0; j < hidden; ++j)
                    dh[j] += dlogit[c] * model.w2.at(c, j);
                model.b2[c] -= static_cast<float>(lr * dlogit[c]);
            }
            for (std::size_t c = 0; c < classes; ++c)
                for (std::size_t j = 0; j < hidden; ++j)
                    model.w2.at(c, j) -=
                        static_cast<float>(lr * dlogit[c] * h[j]);
            for (std::size_t j = 0; j < hidden; ++j) {
                if (h[j] <= 0)
                    dh[j] = 0;
                model.b1[j] -= static_cast<float>(lr * dh[j]);
                for (std::size_t d = 0; d < dim; ++d)
                    model.w1.at(j, d) -= static_cast<float>(
                        lr * dh[j] * train.features.at(idx, d));
            }
        }
        lr *= 0.95; // simple decay
    }
    return model;
}

double
evaluate(const MlpModel &model, const Dataset &data)
{
    return evaluateWithWeights(model, model.w1, data);
}

double
evaluateWithWeights(const MlpModel &model,
                    const Tensor<float> &w1_replacement,
                    const Dataset &data)
{
    const std::size_t n = data.features.dim(0);
    // Samples are independent; the correct count is an integer sum, so
    // the reduction is exact for any thread count.
    std::size_t correct = par::parallelSum<std::size_t>(
        n, 64, [&](const par::ChunkRange &ch) {
            std::size_t part = 0;
            for (std::size_t i = ch.begin; i < ch.end; ++i) {
                auto probs =
                    forward(model, w1_replacement, data.features, i);
                std::size_t best = 0;
                for (std::size_t c = 1; c < probs.size(); ++c)
                    if (probs[c] > probs[best])
                        best = c;
                if (best == data.labels[i])
                    ++part;
            }
            return part;
        });
    return static_cast<double>(correct) / static_cast<double>(n);
}

AccuracyReport
compareQuantAccuracy(const vq::VQConfig &vq_cfg,
                     const ewq::IntQuantConfig &ewq_cfg,
                     std::uint64_t seed)
{
    Rng rng(seed);
    TaskSpec spec;
    Dataset all = makeTask(spec, rng);

    // Split train/test.
    Dataset train, test;
    train.features = Tensor<float>({spec.train_samples, spec.input_dim});
    test.features = Tensor<float>({spec.test_samples, spec.input_dim});
    train.labels.assign(all.labels.begin(),
                        all.labels.begin() + spec.train_samples);
    test.labels.assign(all.labels.begin() + spec.train_samples,
                       all.labels.end());
    for (std::size_t i = 0; i < spec.train_samples; ++i)
        for (std::size_t d = 0; d < spec.input_dim; ++d)
            train.features.at(i, d) = all.features.at(i, d);
    for (std::size_t i = 0; i < spec.test_samples; ++i)
        for (std::size_t d = 0; d < spec.input_dim; ++d)
            test.features.at(i, d) =
                all.features.at(spec.train_samples + i, d);

    MlpModel model = trainMlp(train, 192, 14, 0.02, rng);

    AccuracyReport report;
    // FP16 baseline: weights rounded through half precision.
    Tensor<float> w1_fp16 = toFloat(toHalf(model.w1));
    report.fp16 = evaluateWithWeights(model, w1_fp16, test);

    // VQ: quantize through the library pipeline.  The codebook is
    // pooled over the whole tensor so it trains on far more
    // sub-vectors than it has entries (no memorization), keeping the
    // bit-width comparison honest.
    vq::VQConfig pooled = vq_cfg;
    pooled.scope = vq::CodebookScope::PerTensor;
    vq::KMeansOptions opts;
    opts.max_iters = 12;
    auto qt = vq::VectorQuantizer(pooled, opts).quantize(model.w1);
    vq::reorderByFrequency(qt); // exercises the deployment path too
    auto w1_vq = vq::VectorQuantizer::dequantize(qt);
    report.vq = evaluateWithWeights(model, w1_vq, test);

    // Element-wise RTN at the same equivalent bit-width.
    auto w1_ewq =
        ewq::intDequantize(ewq::intQuantize(model.w1, ewq_cfg));
    report.ewq = evaluateWithWeights(model, w1_ewq, test);
    return report;
}

namespace {

/** Accuracy of the output layer over a precomputed (possibly
 *  reconstructed) hidden-activation matrix [n, hidden]. */
double
evaluateFromHidden(const MlpModel &model, const Tensor<float> &hidden,
                   const Dataset &data)
{
    const std::size_t n = hidden.dim(0);
    const std::size_t width = hidden.dim(1);
    const std::size_t classes = model.w2.dim(0);
    std::size_t correct = par::parallelSum<std::size_t>(
        n, 64, [&](const par::ChunkRange &ch) {
            std::size_t part = 0;
            for (std::size_t i = ch.begin; i < ch.end; ++i) {
                const float *h = hidden.data() + i * width;
                std::size_t best = 0;
                float best_logit = 0;
                for (std::size_t c = 0; c < classes; ++c) {
                    float logit =
                        model.b2[c] +
                        simd::dot(model.w2.data() + c * width, h, width);
                    if (c == 0 || logit > best_logit) {
                        best = c;
                        best_logit = logit;
                    }
                }
                if (best == data.labels[i])
                    ++part;
            }
            return part;
        });
    return static_cast<double>(correct) / static_cast<double>(n);
}

/** Hidden activations quantized through a VQ config (pooled codebook,
 *  like compareQuantAccuracy's weight path). */
Tensor<float>
vqRoundTrip(const Tensor<float> &hidden, vq::VQConfig cfg)
{
    cfg.scope = vq::CodebookScope::PerTensor;
    vq::KMeansOptions opts;
    opts.max_iters = 12;
    auto qt = vq::VectorQuantizer(cfg, opts).quantize(hidden);
    vq::reorderByFrequency(qt);
    return vq::VectorQuantizer::dequantize(qt);
}

} // namespace

KvAccuracyReport
compareKvAccuracy(std::uint64_t seed)
{
    Rng rng(seed);
    TaskSpec spec;
    Dataset all = makeTask(spec, rng);

    Dataset train, test;
    train.features = Tensor<float>({spec.train_samples, spec.input_dim});
    test.features = Tensor<float>({spec.test_samples, spec.input_dim});
    train.labels.assign(all.labels.begin(),
                        all.labels.begin() + spec.train_samples);
    test.labels.assign(all.labels.begin() + spec.train_samples,
                       all.labels.end());
    for (std::size_t i = 0; i < spec.train_samples; ++i)
        for (std::size_t d = 0; d < spec.input_dim; ++d)
            train.features.at(i, d) = all.features.at(i, d);
    for (std::size_t i = 0; i < spec.test_samples; ++i)
        for (std::size_t d = 0; d < spec.input_dim; ++d)
            test.features.at(i, d) =
                all.features.at(spec.train_samples + i, d);

    // Hidden width 192 divides by both CQ vector sizes (2 and 4).
    const std::size_t hidden_width = 192;
    MlpModel model = trainMlp(train, hidden_width, 14, 0.02, rng);

    // Cache the test set's hidden activations once — the stand-in for
    // the KV vectors a serving run would store — then reconstruct them
    // through each KV scheme's round-trip.
    Tensor<float> hidden({spec.test_samples, hidden_width});
    std::vector<float> h;
    for (std::size_t i = 0; i < spec.test_samples; ++i) {
        forward(model, model.w1, test.features, i, &h);
        for (std::size_t j = 0; j < hidden_width; ++j)
            hidden.at(i, j) = h[j];
    }

    KvAccuracyReport report;
    report.fp16 = evaluateFromHidden(model, toFloat(toHalf(hidden)), test);

    // Group-wise int4 RTN (qServe-style KV4): one scale per
    // 32-activation group, the per-head grouping scaled to this width.
    ewq::IntQuantConfig int4_cfg;
    int4_cfg.bits = 4;
    int4_cfg.group_size = 32;
    report.int4 = evaluateFromHidden(
        model, ewq::intDequantize(ewq::intQuantize(hidden, int4_cfg)),
        test);

    report.vq4 =
        evaluateFromHidden(model, vqRoundTrip(hidden, vq::cq4()), test);
    report.vq2 =
        evaluateFromHidden(model, vqRoundTrip(hidden, vq::cq2()), test);
    return report;
}

} // namespace vqllm::llm
