/**
 * @file
 * End-to-end LLM inference estimation (paper Sec. VII-E, Fig. 17).
 *
 * Combines the kernel-level latency models over a full decoder stack:
 * prefill (GeMM-dominated) plus `gen_tokens` decode steps (GeMV +
 * attention + element-wise ops), for FP16, element-wise-quantized
 * (qServe-style W4A8KV4) and VQ-LLM (4-bit and 2-bit) configurations,
 * and accounts GPU memory footprints.
 */
#pragma once

#include "gpusim/gpu_spec.h"
#include "llm/model_config.h"

namespace vqllm::llm {

/** Quantization scheme of an end-to-end run. */
enum class QuantScheme {
    FP16,   ///< no quantization
    EWQ4,   ///< qServe-style W4A8KV4 element-wise quantization
    VQ4,    ///< VQ-LLM 4-bit: QuiP#-4 weights + CQ-4 KV cache
    VQ2,    ///< VQ-LLM 2-bit: GPTVQ-2 weights + CQ-2 KV cache
};

/** @return printable scheme name. */
const char *quantSchemeName(QuantScheme scheme);

/** Serving scenario of the end-to-end evaluation. */
struct E2EConfig
{
    std::size_t batch = 16;
    std::size_t prompt_len = 1024;
    std::size_t gen_tokens = 256;
};

/** End-to-end estimate. */
struct E2EResult
{
    /** Prefill latency, microseconds. */
    double prefill_us = 0;
    /** Total decode latency over all generated tokens, microseconds. */
    double decode_us = 0;
    /** Element-wise operator share of one decode step. */
    double elementwise_fraction = 0;
    /** Weight memory, bytes. */
    std::uint64_t weight_bytes = 0;
    /** KV-cache memory at the end of generation, bytes. */
    std::uint64_t kv_bytes = 0;

    double
    totalUs() const
    {
        return prefill_us + decode_us;
    }

    std::uint64_t
    totalMemoryBytes() const
    {
        return weight_bytes + kv_bytes;
    }
};

/**
 * Estimate an end-to-end generation run.
 *
 * @param spec   target GPU
 * @param model  model configuration
 * @param scheme quantization scheme
 * @param cfg    serving scenario
 */
E2EResult estimateE2E(const gpusim::GpuSpec &spec,
                      const LlamaConfig &model, QuantScheme scheme,
                      const E2EConfig &cfg = E2EConfig{});

/** Latency of one decode-phase linear layer under a scheme (best
 *  adaptive VQ version for the VQ schemes). */
double schemeLinearUs(const gpusim::GpuSpec &spec, QuantScheme scheme,
                      const engine::GemmShape &shape);

/** Latency of one decode-attention kernel under a scheme. */
double schemeAttentionUs(const gpusim::GpuSpec &spec, QuantScheme scheme,
                         const engine::AttnShape &shape);

} // namespace vqllm::llm
