/**
 * @file
 * End-to-end LLM inference estimation (paper Sec. VII-E, Fig. 17).
 *
 * Combines the kernel-level latency models over a full decoder stack:
 * prefill (GeMM-dominated) plus `gen_tokens` decode steps (GeMV +
 * attention + element-wise ops), for FP16, element-wise-quantized
 * (qServe-style W4A8KV4) and VQ-LLM (4-bit and 2-bit) configurations,
 * and accounts GPU memory footprints.
 */
#pragma once

#include "gpusim/gpu_spec.h"
#include "llm/model_config.h"

namespace vqllm::compiler {
class Engine;
}

namespace vqllm::llm {

// QuantScheme and its scheme -> bytes mappings live in
// llm/model_config.h (shared with the serving-layer KV block pool).

/** Serving scenario of the end-to-end evaluation. */
struct E2EConfig
{
    std::size_t batch = 16;
    std::size_t prompt_len = 1024;
    std::size_t gen_tokens = 256;
};

/** End-to-end estimate. */
struct E2EResult
{
    /** Prefill latency, microseconds. */
    double prefill_us = 0;
    /** Total decode latency over all generated tokens, microseconds. */
    double decode_us = 0;
    /** Element-wise operator share of one decode step. */
    double elementwise_fraction = 0;
    /** Weight memory, bytes. */
    std::uint64_t weight_bytes = 0;
    /** KV-cache memory at the end of generation, bytes. */
    std::uint64_t kv_bytes = 0;

    double
    totalUs() const
    {
        return prefill_us + decode_us;
    }

    std::uint64_t
    totalMemoryBytes() const
    {
        return weight_bytes + kv_bytes;
    }
};

/**
 * Estimate an end-to-end generation run.
 *
 * @param spec   target GPU
 * @param model  model configuration
 * @param scheme quantization scheme
 * @param cfg    serving scenario
 */
E2EResult estimateE2E(const gpusim::GpuSpec &spec,
                      const LlamaConfig &model, QuantScheme scheme,
                      const E2EConfig &cfg = E2EConfig{});

/**
 * Full-stack prefill latency of a batch of equal-length prompts.
 *
 * GeMM-dominated: weight quantization barely helps the compute-bound
 * prefill, so every scheme prices GeMMs with the FP16 model (the paper
 * leaves cutlass GeMM unmodified, Sec. VII-D), plus the causal
 * attention flops.  Shared by estimateE2E and the serving simulator's
 * iteration pricer.
 */
double estimatePrefillUs(const gpusim::GpuSpec &spec,
                         const LlamaConfig &model, std::size_t batch,
                         std::size_t prompt_len);

/**
 * Prefill latency of one chunk of a single sequence: `slice_tokens`
 * prompt tokens run against `context_tokens` already-cached tokens
 * (chunked prefill).  The slice's GeMMs see slice_tokens rows; its
 * causal attention spans the cached context plus the slice prefix.
 * With context 0 and the whole prompt as the slice this equals
 * estimatePrefillUs(spec, model, 1, prompt_len).
 */
double estimateChunkedPrefillUs(const gpusim::GpuSpec &spec,
                                const LlamaConfig &model,
                                std::size_t slice_tokens,
                                std::size_t context_tokens);

/**
 * Shared prefill-layer pricing over explicit linear shapes and a head
 * count: FP16 GeMMs over `rows` tokens per layer plus causal attention
 * over `attn_positions` key positions, scaled to all layers.  Every
 * prefill entry point — whole-prompt, chunked, and the tensor-parallel
 * shard overload (which passes sharded geometry) — prices through
 * here, so the estimates cannot drift apart.
 */
double prefillLayersUs(
    const gpusim::GpuSpec &spec, const LlamaConfig &model,
    std::size_t rows, double attn_positions, std::size_t heads,
    const std::vector<std::pair<std::size_t, std::size_t>> &shapes);

/**
 * Latency of one decode-phase linear layer under a scheme (best
 * adaptive VQ version for the VQ schemes).
 *
 * VQ schemes compile through `eng` — the O2..O4 ladder rungs resolve
 * via Engine::compileBest, so repeated shapes (the serving steady
 * state) are plan-cache hits.  FP16/EWQ baselines price closed-form.
 */
double schemeLinearUs(compiler::Engine &eng, QuantScheme scheme,
                      const engine::GemmShape &shape);

/** Latency of one decode-attention kernel under a scheme (compiled
 *  through `eng` for the VQ schemes, like schemeLinearUs).  Equivalent
 *  to kvSchemeAttentionUs with defaultKvScheme(scheme). */
double schemeAttentionUs(compiler::Engine &eng, QuantScheme scheme,
                         const engine::AttnShape &shape);

/**
 * Latency of one decode-attention kernel under an explicit KV storage
 * scheme: FP16 KV prices the closed-form flash-decoding model, INT4 KV
 * the element-wise dequant model, and the VQ schemes compile a fused
 * dequant-attention kernel through `eng` carrying the KV `VQConfig`
 * (plan-cache hits in the serving steady state).
 */
double kvSchemeAttentionUs(compiler::Engine &eng, KvScheme kv,
                           const engine::AttnShape &shape);

/** Convenience overloads pricing through the process-wide shared
 *  engine of `spec` (compiler::Engine::shared). */
double schemeLinearUs(const gpusim::GpuSpec &spec, QuantScheme scheme,
                      const engine::GemmShape &shape);
double schemeAttentionUs(const gpusim::GpuSpec &spec, QuantScheme scheme,
                         const engine::AttnShape &shape);
double kvSchemeAttentionUs(const gpusim::GpuSpec &spec, KvScheme kv,
                           const engine::AttnShape &shape);

} // namespace vqllm::llm
