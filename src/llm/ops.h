/**
 * @file
 * Non-GeMM operators of the transformer layer: RMSNorm, SiLU, and RoPE.
 *
 * Functional implementations back the accuracy pipeline; the latency
 * model accounts for them in the end-to-end estimate (paper Sec. VII-E:
 * "RMSNorm, SiLU, and RoPE operators together account for roughly 10%
 * and 20% of total latency in the FP16 and 4-bit quantized versions").
 */
#pragma once

#include "gpusim/gpu_spec.h"
#include "tensor/tensor.h"

namespace vqllm::llm {

/** Root-mean-square normalization over the last dimension. */
void rmsNorm(Tensor<float> &x, const std::vector<float> &gain,
             float eps = 1e-5f);

/** SiLU (sigmoid-weighted linear unit) applied element-wise. */
void silu(Tensor<float> &x);

/**
 * Rotary positional embedding applied to a [heads, head_dim] tensor for
 * one position.
 */
void applyRope(Tensor<float> &qk, std::size_t position,
               double theta = 10000.0);

/**
 * Modeled latency of the element-wise operator suite for one decode
 * step of one transformer layer.
 *
 * @param spec   target GPU
 * @param batch  decode batch size
 * @param hidden model width
 * @return latency in microseconds (bandwidth + launch overheads)
 */
double elementwiseLayerLatencyUs(const gpusim::GpuSpec &spec,
                                 std::size_t batch, std::size_t hidden);

} // namespace vqllm::llm
