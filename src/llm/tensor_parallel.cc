#include "llm/tensor_parallel.h"

#include "common/logging.h"
#include "llm/ops.h"

namespace vqllm::llm {

double
ringAllReduceUs(const TpConfig &tp, std::uint64_t bytes)
{
    if (tp.degree <= 1)
        return 0.0;
    double g = static_cast<double>(tp.degree);
    double traffic = 2.0 * (g - 1.0) / g * static_cast<double>(bytes);
    return traffic / (tp.link_bw_gbps * 1e9) * 1e6 +
           tp.collective_latency_us;
}

double
linkTransferUs(const TpConfig &tp, std::uint64_t bytes)
{
    if (bytes == 0)
        return 0.0;
    return static_cast<double>(bytes) / (tp.link_bw_gbps * 1e9) * 1e6 +
           tp.collective_latency_us;
}

double
layerAllReduceUs(const TpConfig &tp, std::size_t rows, std::size_t hidden)
{
    if (tp.degree <= 1)
        return 0.0;
    std::uint64_t activation_bytes =
        static_cast<std::uint64_t>(rows) * hidden * 2;
    return 2.0 * ringAllReduceUs(tp, activation_bytes);
}

std::size_t
shardSplit(std::size_t total, std::size_t degree, std::size_t shard)
{
    vqllm_assert(degree >= 1, "shard degree must be >= 1");
    vqllm_assert(shard < degree, "shard index out of range");
    return total / degree + (shard < total % degree ? 1 : 0);
}

std::vector<std::pair<std::size_t, std::size_t>>
shardLinearShapes(const LlamaConfig &model, std::size_t degree,
                  std::size_t shard)
{
    auto shapes = model.layerLinearShapes();
    for (std::size_t i = 0; i < shapes.size(); ++i) {
        bool row_parallel = (i == 3 || i == 6); // Wo, W_down
        if (row_parallel)
            shapes[i].second = shardSplit(shapes[i].second, degree, shard);
        else
            shapes[i].first = shardSplit(shapes[i].first, degree, shard);
    }
    return shapes;
}

engine::AttnShape
shardAttnShape(const LlamaConfig &model, std::size_t batch,
               std::size_t seq_len, std::size_t degree, std::size_t shard)
{
    // Every shard must own at least one KV head: a zero split would
    // read back as AttnShape's kv_heads == 0 MHA sentinel and silently
    // price the shard with a full complement of KV heads.
    vqllm_assert(model.kvHeads() >= degree,
                 "TP degree exceeds the model's KV heads");
    engine::AttnShape shape = model.attnShape(batch, seq_len);
    shape.heads = shardSplit(shape.heads, degree, shard);
    if (shape.kv_heads != 0)
        shape.kv_heads = shardSplit(shape.kv_heads, degree, shard);
    return shape;
}

double
estimateChunkedPrefillUs(const gpusim::GpuSpec &spec,
                         const LlamaConfig &model,
                         std::size_t slice_tokens,
                         std::size_t context_tokens, const TpConfig &tp)
{
    if (tp.degree <= 1)
        return estimateChunkedPrefillUs(spec, model, slice_tokens,
                                        context_tokens);
    const std::size_t g = static_cast<std::size_t>(tp.degree);

    // Critical (widest) shard: sharded FP16 GeMMs over the slice rows
    // plus head-sharded causal attention, through the same shared
    // pricing as the single-GPU estimates — only the geometry differs.
    double positions =
        static_cast<double>(slice_tokens) * context_tokens +
        0.5 * static_cast<double>(slice_tokens) * slice_tokens;
    return prefillLayersUs(spec, model, slice_tokens, positions,
                           shardSplit(model.heads, g, 0),
                           shardLinearShapes(model, g, 0));
}

TpResult
estimateTensorParallel(const gpusim::GpuSpec &spec,
                       const LlamaConfig &model, QuantScheme scheme,
                       const TpConfig &tp, const E2EConfig &cfg)
{
    vqllm_assert(tp.degree >= 1, "TP degree must be >= 1");
    vqllm_assert(model.heads % tp.degree == 0,
                 "heads must divide evenly across TP ranks");
    const std::size_t g = static_cast<std::size_t>(tp.degree);
    TpResult result;

    // ---- Sharded per-layer linears (Megatron layout):
    //  column-parallel: Wq/Wk/Wv (n/G), W_gate/W_up (n/G)
    //  row-parallel:    Wo (k/G), W_down (k/G)
    std::size_t mid_seq = cfg.prompt_len + cfg.gen_tokens / 2;
    double step_linear_us = 0;
    for (auto [n, k] : shardLinearShapes(model, g, 0)) {
        engine::GemmShape shard{cfg.batch, n, k};
        step_linear_us += schemeLinearUs(spec, scheme, shard);
    }

    // ---- Head-sharded attention.
    double step_attn_us = schemeAttentionUs(
        spec, scheme, shardAttnShape(model, cfg.batch, mid_seq, g, 0));

    // ---- Element-wise ops run replicated on the full hidden width.
    double step_elem_us =
        elementwiseLayerLatencyUs(spec, cfg.batch, model.hidden);

    // ---- Two all-reduces per layer (after Wo and after W_down).
    double comm_layer_us = layerAllReduceUs(tp, cfg.batch, model.hidden);

    double step_us =
        (step_linear_us + step_attn_us + step_elem_us + comm_layer_us) *
        static_cast<double>(model.layers);
    result.decode_us = step_us * static_cast<double>(cfg.gen_tokens);
    result.comm_us_per_step =
        comm_layer_us * static_cast<double>(model.layers);
    result.comm_fraction = result.comm_us_per_step *
                           static_cast<double>(cfg.gen_tokens) /
                           result.decode_us;

    // ---- Per-GPU memory: weights and KV shard by G.
    E2EResult single = estimateE2E(spec, model, scheme, cfg);
    result.memory_per_gpu =
        (single.weight_bytes + single.kv_bytes) / g;
    return result;
}

} // namespace vqllm::llm