#include "llm/tensor_parallel.h"

#include "common/logging.h"
#include "llm/ops.h"

namespace vqllm::llm {

double
ringAllReduceUs(const TpConfig &tp, std::uint64_t bytes)
{
    if (tp.degree <= 1)
        return 0.0;
    double g = static_cast<double>(tp.degree);
    double traffic = 2.0 * (g - 1.0) / g * static_cast<double>(bytes);
    return traffic / (tp.link_bw_gbps * 1e9) * 1e6 +
           tp.collective_latency_us;
}

TpResult
estimateTensorParallel(const gpusim::GpuSpec &spec,
                       const LlamaConfig &model, QuantScheme scheme,
                       const TpConfig &tp, const E2EConfig &cfg)
{
    vqllm_assert(tp.degree >= 1, "TP degree must be >= 1");
    vqllm_assert(model.heads % tp.degree == 0,
                 "heads must divide evenly across TP ranks");
    const std::size_t g = static_cast<std::size_t>(tp.degree);
    TpResult result;

    // ---- Sharded per-layer linears (Megatron layout):
    //  column-parallel: Wq/Wk/Wv (n/G), W_gate/W_up (n/G)
    //  row-parallel:    Wo (k/G), W_down (k/G)
    std::size_t mid_seq = cfg.prompt_len + cfg.gen_tokens / 2;
    double step_linear_us = 0;
    auto shapes = model.layerLinearShapes();
    for (std::size_t i = 0; i < shapes.size(); ++i) {
        auto [n, k] = shapes[i];
        bool row_parallel = (i == 3 || i == 6); // Wo, W_down
        engine::GemmShape shard{cfg.batch,
                                row_parallel ? n : n / g,
                                row_parallel ? k / g : k};
        step_linear_us += schemeLinearUs(spec, scheme, shard);
    }

    // ---- Head-sharded attention.
    engine::AttnShape attn_shard{cfg.batch, model.heads / g, mid_seq,
                                 model.head_dim};
    double step_attn_us = schemeAttentionUs(spec, scheme, attn_shard);

    // ---- Element-wise ops run replicated on the full hidden width.
    double step_elem_us =
        elementwiseLayerLatencyUs(spec, cfg.batch, model.hidden);

    // ---- Two all-reduces per layer (after Wo and after W_down).
    std::uint64_t activation_bytes =
        static_cast<std::uint64_t>(cfg.batch) * model.hidden * 2;
    double comm_layer_us = 2.0 * ringAllReduceUs(tp, activation_bytes);

    double step_us =
        (step_linear_us + step_attn_us + step_elem_us + comm_layer_us) *
        static_cast<double>(model.layers);
    result.decode_us = step_us * static_cast<double>(cfg.gen_tokens);
    result.comm_us_per_step =
        comm_layer_us * static_cast<double>(model.layers);
    result.comm_fraction = result.comm_us_per_step *
                           static_cast<double>(cfg.gen_tokens) /
                           result.decode_us;

    // ---- Per-GPU memory: weights and KV shard by G.
    E2EResult single = estimateE2E(spec, model, scheme, cfg);
    result.memory_per_gpu =
        (single.weight_bytes + single.kv_bytes) / g;
    return result;
}

} // namespace vqllm::llm
