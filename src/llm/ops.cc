#include "llm/ops.h"

#include <cmath>

#include "common/logging.h"

namespace vqllm::llm {

void
rmsNorm(Tensor<float> &x, const std::vector<float> &gain, float eps)
{
    vqllm_assert(x.rank() == 2, "rmsNorm expects [rows, dim]");
    vqllm_assert(gain.size() == x.dim(1), "gain size mismatch");
    const std::size_t rows = x.dim(0), dim = x.dim(1);
    for (std::size_t r = 0; r < rows; ++r) {
        double ms = 0;
        for (std::size_t d = 0; d < dim; ++d)
            ms += static_cast<double>(x.at(r, d)) * x.at(r, d);
        double inv = 1.0 / std::sqrt(ms / dim + eps);
        for (std::size_t d = 0; d < dim; ++d)
            x.at(r, d) = static_cast<float>(x.at(r, d) * inv * gain[d]);
    }
}

void
silu(Tensor<float> &x)
{
    for (std::size_t i = 0; i < x.size(); ++i) {
        double v = x[i];
        x[i] = static_cast<float>(v / (1.0 + std::exp(-v)));
    }
}

void
applyRope(Tensor<float> &qk, std::size_t position, double theta)
{
    vqllm_assert(qk.rank() == 2, "applyRope expects [heads, head_dim]");
    const std::size_t heads = qk.dim(0), dim = qk.dim(1);
    vqllm_assert(dim % 2 == 0, "head_dim must be even");
    for (std::size_t h = 0; h < heads; ++h) {
        for (std::size_t d = 0; d < dim / 2; ++d) {
            double freq = std::pow(theta, -2.0 * static_cast<double>(d) /
                                              static_cast<double>(dim));
            double angle = static_cast<double>(position) * freq;
            double c = std::cos(angle), s = std::sin(angle);
            float a = qk.at(h, 2 * d);
            float b = qk.at(h, 2 * d + 1);
            qk.at(h, 2 * d) = static_cast<float>(a * c - b * s);
            qk.at(h, 2 * d + 1) = static_cast<float>(a * s + b * c);
        }
    }
}

double
elementwiseLayerLatencyUs(const gpusim::GpuSpec &spec, std::size_t batch,
                          std::size_t hidden)
{
    // Per layer and decode step: 2x RMSNorm, RoPE, SiLU, gating
    // multiply, 2x residual add, KV append, plus the small epilogue /
    // reshape kernels around attention — about 10 element-wise kernel
    // launches touching ~3x the activation bytes each.
    const double kernels = 10.0;
    const double bytes =
        3.0 * static_cast<double>(batch) * hidden * 2.0;
    double bw = spec.dramBytesPerSecond() * spec.dram_efficiency;
    return kernels * (spec.launch_overhead_us * 0.5 + bytes / bw * 1e6);
}

} // namespace vqllm::llm
