#include "gpusim/bank_conflict.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"

namespace vqllm::gpusim {

std::uint64_t
warpTransactions(const GpuSpec &spec,
                 const std::vector<std::uint32_t> &lane_byte_addrs,
                 unsigned bytes_per_lane)
{
    vqllm_assert(bytes_per_lane > 0, "bytes_per_lane must be positive");
    vqllm_assert(static_cast<int>(lane_byte_addrs.size()) <= spec.warp_size,
                 "more lanes than warp size");
    const unsigned word = 4;
    unsigned phases = (bytes_per_lane + word - 1) / word;

    std::uint64_t total = 0;
    for (unsigned p = 0; p < phases; ++p) {
        // bank -> set of distinct words accessed in that bank this phase
        std::map<std::uint32_t, std::set<std::uint32_t>> bank_words;
        for (std::uint32_t addr : lane_byte_addrs) {
            std::uint32_t w = addr / word + p;
            std::uint32_t bank = w % spec.smem_banks;
            bank_words[bank].insert(w);
        }
        std::size_t degree = 0;
        for (const auto &[bank, words] : bank_words)
            degree = std::max(degree, words.size());
        total += degree == 0 ? 1 : degree;
    }
    return total;
}

double
expectedConflictMultiplier(const GpuSpec &spec,
                           const std::vector<double> &entry_weights,
                           unsigned entry_bytes, int samples,
                           std::uint64_t seed)
{
    vqllm_assert(!entry_weights.empty(), "no entries");
    vqllm_assert(entry_bytes > 0, "entry_bytes must be positive");
    Rng rng(seed);

    // Precompute the popularity CDF once.
    std::vector<double> cdf(entry_weights.size());
    double acc = 0;
    for (std::size_t i = 0; i < entry_weights.size(); ++i) {
        acc += entry_weights[i];
        cdf[i] = acc;
    }
    vqllm_assert(acc > 0, "weights sum to zero");

    auto draw = [&]() -> std::uint32_t {
        double r = rng.uniform() * acc;
        auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
        return static_cast<std::uint32_t>(it - cdf.begin());
    };

    unsigned phases = (entry_bytes + 3) / 4;
    std::uint64_t total_trans = 0;
    std::vector<std::uint32_t> addrs(spec.warp_size);
    for (int s = 0; s < samples; ++s) {
        for (int lane = 0; lane < spec.warp_size; ++lane)
            addrs[lane] = draw() * entry_bytes;
        total_trans += warpTransactions(spec, addrs, entry_bytes);
    }
    double avg = static_cast<double>(total_trans) / samples;
    return avg / phases;
}

double
expectedConflictMultiplier(const GpuSpec &spec, std::size_t num_entries,
                           unsigned entry_bytes, int samples,
                           std::uint64_t seed)
{
    return expectedConflictMultiplier(
        spec, std::vector<double>(num_entries, 1.0), entry_bytes, samples,
        seed);
}

} // namespace vqllm::gpusim
