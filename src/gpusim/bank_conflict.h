/**
 * @file
 * Shared-memory bank-conflict modeling.
 *
 * NVIDIA shared memory is organized as 32 banks of 4-byte words; a warp
 * load is split into one transaction per distinct word needed from the
 * most-contended bank (accesses to the *same* word broadcast for free).
 * Codebook dequantization issues warp loads whose 32 lane addresses are
 * data-dependent codebook-entry indices — the irregular pattern the paper
 * identifies as a primary inefficiency (Sec. III, Takeaway 1).
 *
 * Two interfaces are provided:
 *  - exact counting given concrete lane addresses (used by functional
 *    kernel execution and unit tests), and
 *  - a Monte-Carlo expectation for a given entry-popularity distribution
 *    (used by the analytical kernel models at paper-scale shapes).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "gpusim/gpu_spec.h"

namespace vqllm::gpusim {

/**
 * Count the transactions needed for one warp-wide shared-memory access.
 *
 * Each lane reads `bytes_per_lane` starting at its byte address.  The
 * access is decomposed into 4-byte word phases; in each phase the
 * transaction count is the maximum, over banks, of the number of
 * *distinct* words addressed in that bank.
 *
 * @param spec            GPU description (bank count, word size)
 * @param lane_byte_addrs starting byte address per active lane
 * @param bytes_per_lane  contiguous bytes read by each lane
 * @return total transactions (>= number of word phases; == phases when
 *         conflict-free)
 */
std::uint64_t warpTransactions(const GpuSpec &spec,
                               const std::vector<std::uint32_t>
                                   &lane_byte_addrs,
                               unsigned bytes_per_lane);

/**
 * Monte-Carlo estimate of the average conflict multiplier for random
 * codebook-entry accesses.
 *
 * Lanes pick entries i.i.d. from `entry_weights` (unnormalized
 * popularity); each entry occupies `entry_bytes` contiguous bytes starting
 * at index*entry_bytes.  The returned multiplier is
 * E[transactions] / word_phases, i.e. 1.0 means conflict-free.
 *
 * @param spec          GPU description
 * @param entry_weights popularity of each entry resident in shared memory
 * @param entry_bytes   bytes per entry
 * @param samples       number of simulated warp accesses
 * @param seed          RNG seed (deterministic)
 */
double expectedConflictMultiplier(const GpuSpec &spec,
                                  const std::vector<double> &entry_weights,
                                  unsigned entry_bytes,
                                  int samples = 512,
                                  std::uint64_t seed = 0x5eedu);

/**
 * Convenience overload: uniform popularity over `num_entries` entries.
 */
double expectedConflictMultiplier(const GpuSpec &spec,
                                  std::size_t num_entries,
                                  unsigned entry_bytes,
                                  int samples = 512,
                                  std::uint64_t seed = 0x5eedu);

} // namespace vqllm::gpusim
