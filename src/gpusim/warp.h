/**
 * @file
 * Functional simulation of warp-level register exchange (shfl.xor).
 *
 * The compute engine's register-level fusion (paper Sec. VI-B) rearranges
 * dequantized data between lanes with `__shfl_xor_sync`.  This header
 * provides a bit-exact functional model used by the fusion unit tests and
 * by the functional kernel executor: a WarpRegisters object holds, for
 * each of the 32 lanes, an array of register values.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace vqllm::gpusim {

/**
 * Register state of one warp: lanes x registers of type T.
 *
 * @tparam T register value type (float in this library)
 */
template <typename T>
class WarpRegisters
{
  public:
    /**
     * @param lanes          number of lanes (warp size)
     * @param regs_per_lane  registers modeled per lane
     */
    WarpRegisters(int lanes, int regs_per_lane)
        : lanes_(lanes), regsPerLane_(regs_per_lane),
          values_(static_cast<std::size_t>(lanes) * regs_per_lane)
    {
        vqllm_assert(lanes > 0 && regs_per_lane > 0, "bad warp shape");
    }

    /** Access register r of lane l. */
    T &
    at(int lane, int reg)
    {
        return values_[index(lane, reg)];
    }

    const T &
    at(int lane, int reg) const
    {
        return values_[index(lane, reg)];
    }

    int lanes() const { return lanes_; }
    int regsPerLane() const { return regsPerLane_; }

    /**
     * Perform the paper's fused exchange step:
     *   data[tid ^ off] = shfl_xor(data[tid ^ off], off)
     *
     * Every lane `t` contributes its register slot `t ^ off` and receives
     * the partner lane's (`t ^ off`) register slot `t`... which is
     * exactly a pairwise swap: after the call,
     *   lane t, slot (t^off)  <-  lane (t^off), slot ((t^off)^off) = slot t
     * confined to slots below regsPerLane and lanes below lanes().
     *
     * @param offset xor offset (must be in [1, lanes))
     * @return number of shuffle instructions issued (== lanes/2 pairs
     *         exchange, counted as one warp-wide instruction -> returns 1)
     */
    int
    shflXorStep(int offset)
    {
        vqllm_assert(offset >= 1 && offset < lanes_, "bad shuffle offset");
        vqllm_assert((regsPerLane_ & (regsPerLane_ - 1)) == 0,
                     "regsPerLane must be a power of two");
        vqllm_assert(offset < regsPerLane_,
                     "offset must stay within the mini-warp");
        std::vector<T> incoming(lanes_);
        // Gather phase: lane t receives what its partner (t^off) passes,
        // which is the partner's slot ((t^off)^off) % regs = t % regs.
        for (int t = 0; t < lanes_; ++t) {
            int partner = t ^ offset;
            incoming[t] = at(partner, t % regsPerLane_);
        }
        // Scatter phase: stored into slot (t ^ off) % regs.
        for (int t = 0; t < lanes_; ++t) {
            int slot = (t ^ offset) % regsPerLane_;
            at(t, slot) = incoming[t];
        }
        return 1;
    }

  private:
    std::size_t
    index(int lane, int reg) const
    {
        vqllm_assert(lane >= 0 && lane < lanes_, "lane out of range");
        vqllm_assert(reg >= 0 && reg < regsPerLane_, "reg out of range");
        return static_cast<std::size_t>(lane) * regsPerLane_ + reg;
    }

    int lanes_;
    int regsPerLane_;
    std::vector<T> values_;
};

} // namespace vqllm::gpusim
