#include "gpusim/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vqllm::gpusim {

LatencyBreakdown
CostModel::estimate(const LaunchConfig &launch,
                    const KernelCounters &counters) const
{
    LatencyBreakdown out;
    out.occupancy = computeOccupancy(spec_, launch.block);
    if (out.occupancy.blocks_per_sm == 0) {
        vqllm_warn("unlaunchable block shape: smem=",
                   launch.block.smem_bytes,
                   " regs=", launch.block.regs_per_thread);
        out.total_us = 1e12;
        return out;
    }

    // Wave quantization: how full is the machine across the grid's waves?
    double blocks_capacity =
        static_cast<double>(out.occupancy.blocks_per_sm) * spec_.num_sms;
    double waves = static_cast<double>(launch.grid_blocks) / blocks_capacity;
    double full_waves = std::floor(waves);
    double frac = waves - full_waves;
    // Average machine fill over all waves (the tail wave is only
    // fractionally occupied).
    out.grid_fill = waves > 0 ? (full_waves + frac * frac) / std::max(1.0,
                                    std::ceil(waves))
                              : 0.0;
    // A grid smaller than one SM's worth cannot use every SM.
    double sm_fill = std::min(
        1.0, static_cast<double>(launch.grid_blocks) / spec_.num_sms);

    // --- DRAM pipe -------------------------------------------------------
    // Bandwidth derates when too few warps are resident to cover DRAM
    // latency, and when the grid leaves SMs idle.
    double occ_factor = std::min(
        1.0, out.occupancy.occupancy / params_.bw_saturation_occupancy);
    out.throughput_factor = occ_factor;
    double eff_bw = spec_.dramBytesPerSecond() * spec_.dram_efficiency *
                    occ_factor * std::max(sm_fill, 0.05);
    double dram_bytes = static_cast<double>(counters.dram_read_bytes +
                                            counters.dram_write_bytes);
    out.dram_us = dram_bytes / eff_bw * 1e6;

    // --- Shared-memory pipe ---------------------------------------------
    // Transactions are 128-byte warp-wide accesses (32 lanes x 4B).
    double active_sms = std::max(1.0, spec_.num_sms * sm_fill);
    double smem_bytes_per_s =
        active_sms * spec_.smem_bytes_per_cycle * spec_.clockHz();
    double smem_bytes = static_cast<double>(counters.smem_transactions) *
                        (spec_.smem_banks * 4.0);
    out.smem_us = smem_bytes / smem_bytes_per_s * 1e6;

    // --- Compute pipe -----------------------------------------------------
    double fma_tflops = launch.uses_tensor_cores
                            ? spec_.fp16_tensor_tflops *
                                  params_.tensor_core_efficiency
                            : spec_.fp16CudaTflops() *
                                  params_.cuda_core_efficiency;
    // Low occupancy also starves the compute pipes.
    double compute_occ =
        std::min(1.0, out.occupancy.occupancy /
                          params_.compute_saturation_occupancy);
    double fma_s = static_cast<double>(counters.flops) /
                   (fma_tflops * 1e12 * std::max(sm_fill, 0.05) *
                    compute_occ);
    double scalar_cycles =
        static_cast<double>(counters.dequant_lookups) *
            params_.cycles_per_lookup +
        static_cast<double>(counters.unpack_ops) * params_.cycles_per_unpack +
        static_cast<double>(counters.shuffle_ops) *
            params_.cycles_per_shuffle;
    // Scalar overhead executes warp-wide: issue_per_cycle lanes per SM.
    double scalar_s = scalar_cycles /
                      (active_sms * spec_.issue_per_cycle *
                       params_.scalar_issue_fraction * spec_.clockHz() *
                       compute_occ);
    out.compute_us = (fma_s + scalar_s) * 1e6;

    // --- Latency-bound term ------------------------------------------------
    // With W resident warps per SM, each long-latency access is overlapped
    // by other warps; the residual serialization per access is
    // latency / W.  This term dominates for tiny grids (paper Sec. VII-B,
    // the Llama-7B 1k/BS1 attention case).
    double resident_warps =
        std::max(1.0, static_cast<double>(out.occupancy.warps_per_sm) *
                          std::max(sm_fill, 1.0 / spec_.num_sms));
    double accesses_per_sm =
        (dram_bytes / 128.0) / std::max(1.0, active_sms);
    out.latency_bound_us = accesses_per_sm * spec_.dram_latency_cycles /
                           (resident_warps * params_.mlp_per_warp) /
                           spec_.clockHz() * 1e6 /
                           out.occupancy.blocks_per_sm;

    // --- Reduction stage ----------------------------------------------------
    // Global reductions re-read and re-write partial outputs through DRAM
    // in a short second pass (or atomics with similar traffic).
    if (counters.reduce_bytes > 0) {
        double reduce_bw = spec_.dramBytesPerSecond() *
                           spec_.dram_efficiency;
        out.reduce_us = static_cast<double>(counters.reduce_bytes) * 2.0 /
                            reduce_bw * 1e6 +
                        spec_.launch_overhead_us * 0.5;
    }

    out.launch_us = spec_.launch_overhead_us;
    out.total_us = std::max({out.dram_us, out.smem_us, out.compute_us,
                             out.latency_bound_us}) +
                   out.reduce_us + out.launch_us;
    return out;
}

} // namespace vqllm::gpusim
