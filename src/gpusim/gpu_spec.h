/**
 * @file
 * Static description of a simulated GPU.
 *
 * The reproduction has no physical GPU, so kernels execute against an
 * analytical machine model.  GpuSpec captures exactly the architectural
 * quantities the paper's analysis depends on: SM count and per-SM
 * shared-memory/register/thread limits (occupancy, Fig. 10), the 32-bank
 * shared memory (bank conflicts, Fig. 4), DRAM bandwidth (roofline), and
 * instruction-issue characteristics (dequantization/shuffle overhead).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace vqllm::gpusim {

/** Architectural parameters of a simulated NVIDIA-style GPU. */
struct GpuSpec
{
    /** Marketing name, e.g. "RTX 4090". */
    std::string name;

    /** Number of streaming multiprocessors. */
    int num_sms = 0;

    /** Shared memory usable per SM, bytes (carve-out, not full L1). */
    std::size_t smem_per_sm = 0;

    /** Maximum shared memory a single thread block may allocate. */
    std::size_t max_smem_per_block = 0;

    /** 32-bit registers per SM. */
    std::size_t regs_per_sm = 0;

    /** Maximum resident threads per SM. */
    int max_threads_per_sm = 0;

    /** Maximum resident thread blocks per SM. */
    int max_blocks_per_sm = 0;

    /** Maximum registers addressable by one thread. */
    int max_regs_per_thread = 255;

    /** Threads per warp. */
    int warp_size = 32;

    /** Shared memory banks (4-byte wide). */
    int smem_banks = 32;

    /** Shared-memory allocation granularity, bytes. */
    std::size_t smem_alloc_granularity = 128;

    /** Register-file allocation granularity, registers per warp. */
    std::size_t reg_alloc_granularity = 256;

    /** Peak off-chip DRAM bandwidth, GB/s. */
    double dram_bw_gbps = 0;

    /** Achievable fraction of peak DRAM bandwidth for streaming loads. */
    double dram_efficiency = 0.82;

    /** Boost clock, GHz. */
    double clock_ghz = 0;

    /** Peak FP16 tensor-core throughput, TFLOP/s (FMA = 2 flops). */
    double fp16_tensor_tflops = 0;

    /** Peak FP32 CUDA-core throughput, TFLOP/s. */
    double fp32_tflops = 0;

    /** @return packed-half (HFMA2) CUDA-core throughput, TFLOP/s. */
    double
    fp16CudaTflops() const
    {
        return 2.0 * fp32_tflops;
    }

    /** Shared-memory bytes per cycle per SM (conflict-free LDS). */
    double smem_bytes_per_cycle = 128.0;

    /** Scalar instructions issued per cycle per SM (per-SM issue width). */
    double issue_per_cycle = 128.0;

    /** Average global-memory (DRAM) access latency, cycles. */
    double dram_latency_cycles = 560.0;

    /** Shared-memory access latency, cycles. */
    double smem_latency_cycles = 29.0;

    /** Register/shuffle access latency, cycles. */
    double shfl_latency_cycles = 6.0;

    /** L1 cache line / sector size for uncoalesced-access modeling. */
    std::size_t dram_sector_bytes = 32;

    /** Fixed kernel-launch overhead, microseconds. */
    double launch_overhead_us = 3.0;

    /** @return peak DRAM bandwidth in bytes/second. */
    double dramBytesPerSecond() const { return dram_bw_gbps * 1e9; }

    /** @return GPU core clock in Hz. */
    double clockHz() const { return clock_ghz * 1e9; }
};

/** @return an RTX 4090 (Ada, AD102) model — the paper's primary GPU. */
const GpuSpec &rtx4090();

/** @return a Tesla A40 (Ampere, GA102) model — the paper's low-BW GPU. */
const GpuSpec &teslaA40();

} // namespace vqllm::gpusim
