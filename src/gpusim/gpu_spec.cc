#include "gpusim/gpu_spec.h"

namespace vqllm::gpusim {

const GpuSpec &
rtx4090()
{
    static const GpuSpec spec = [] {
        GpuSpec s;
        s.name = "RTX 4090";
        s.num_sms = 128;
        s.smem_per_sm = 100 * 1024;
        s.max_smem_per_block = 99 * 1024;
        s.regs_per_sm = 65536;
        s.max_threads_per_sm = 1536;
        s.max_blocks_per_sm = 24;
        s.dram_bw_gbps = 1008.0;
        s.clock_ghz = 2.52;
        s.fp16_tensor_tflops = 165.2;
        s.fp32_tflops = 82.6;
        return s;
    }();
    return spec;
}

const GpuSpec &
teslaA40()
{
    static const GpuSpec spec = [] {
        GpuSpec s;
        s.name = "Tesla A40";
        s.num_sms = 84;
        s.smem_per_sm = 100 * 1024;
        s.max_smem_per_block = 99 * 1024;
        s.regs_per_sm = 65536;
        s.max_threads_per_sm = 1536;
        s.max_blocks_per_sm = 16;
        s.dram_bw_gbps = 696.0;
        s.clock_ghz = 1.74;
        s.fp16_tensor_tflops = 149.7;
        s.fp32_tflops = 37.4;
        return s;
    }();
    return spec;
}

} // namespace vqllm::gpusim
