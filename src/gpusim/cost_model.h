/**
 * @file
 * Roofline-style latency model for simulated kernels.
 *
 * Given a launch shape (grid size + per-block resources), event counters,
 * and a GPU spec, the model computes per-pipe times and takes the maximum
 * (pipes overlap on a GPU), then adds launch overhead and the global-
 * reduction stage if present:
 *
 *   T = max(T_dram, T_smem, T_compute, T_latency_bound)
 *       + T_launch + T_reduce_pass
 *
 * - T_dram: DRAM bytes / effective bandwidth.  Effective bandwidth scales
 *   with achieved occupancy and grid fill (a memory-bound kernel needs
 *   enough resident warps to cover DRAM latency).
 * - T_smem: shared-memory transactions (after bank-conflict
 *   serialization) / aggregate LDS throughput.
 * - T_compute: FMA flops on the matching pipe plus scalar overhead for
 *   dequantization lookups, index unpacking and shuffles.
 * - T_latency_bound: when parallelism is too small to fill the machine,
 *   latency chains dominate; modeled from per-access latencies.
 *
 * Absolute numbers are model outputs, not silicon measurements; all
 * paper comparisons are relative, which this model preserves (see
 * DESIGN.md Sec. 2).
 */
#pragma once

#include <cstdint>

#include "gpusim/gpu_spec.h"
#include "gpusim/occupancy.h"
#include "gpusim/traffic.h"

namespace vqllm::gpusim {

/** Grid-level launch description. */
struct LaunchConfig
{
    /** Total thread blocks in the grid. */
    std::uint64_t grid_blocks = 1;
    /** Per-block resource demands. */
    BlockResources block;
    /** Whether the FMA work runs on tensor cores (mma) or CUDA cores. */
    bool uses_tensor_cores = false;
};

/** Decomposed latency estimate, microseconds. */
struct LatencyBreakdown
{
    double dram_us = 0;
    double smem_us = 0;
    double compute_us = 0;
    double latency_bound_us = 0;
    double reduce_us = 0;
    double launch_us = 0;
    /** Final modeled latency. */
    double total_us = 0;
    /** Occupancy used for throughput derating. */
    OccupancyResult occupancy;
    /** Fraction of SMs kept busy by the grid (wave quantization). */
    double grid_fill = 1.0;
    /** Achieved fraction of peak memory throughput (SM-utilization
     *  proxy, the paper's Fig. 4 counter). */
    double throughput_factor = 1.0;
};

/** Tunable calibration constants of the cost model. */
struct CostModelParams
{
    /** Occupancy at which DRAM bandwidth saturates. */
    double bw_saturation_occupancy = 0.14;
    /** Occupancy at which the compute pipes saturate (mainloop
     *  software pipelining needs resident warps to cover latencies). */
    double compute_saturation_occupancy = 0.33;
    /** Outstanding memory requests per warp (latency overlap via ILP). */
    double mlp_per_warp = 4.0;
    /** Fraction of scalar issue slots usable by overhead instructions. */
    double scalar_issue_fraction = 0.5;
    /** Cycles per dequantization lookup (address calc + bounds test). */
    double cycles_per_lookup = 2.0;
    /** Cycles per unaligned-index unpack step. */
    double cycles_per_unpack = 3.0;
    /** Cycles per warp shuffle instruction. */
    double cycles_per_shuffle = 2.0;
    /** Efficiency of the tensor-core pipe on realistic tiles. */
    double tensor_core_efficiency = 0.75;
    /** Efficiency of the CUDA-core FMA pipe. */
    double cuda_core_efficiency = 0.7;
};

/** Analytical GPU latency model. */
class CostModel
{
  public:
    explicit CostModel(const GpuSpec &spec,
                       CostModelParams params = CostModelParams{})
        : spec_(spec), params_(params)
    {
    }

    /**
     * Estimate the latency of one kernel.
     *
     * @param launch    grid + block shape
     * @param counters  aggregated event counters for the whole grid
     * @return per-pipe breakdown and total latency in microseconds
     */
    LatencyBreakdown estimate(const LaunchConfig &launch,
                              const KernelCounters &counters) const;

    const GpuSpec &spec() const { return spec_; }
    const CostModelParams &params() const { return params_; }

  private:
    const GpuSpec &spec_;
    CostModelParams params_;
};

} // namespace vqllm::gpusim
