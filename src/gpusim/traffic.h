/**
 * @file
 * Memory-traffic and instruction counters for simulated kernels.
 *
 * These are the "performance counters" of the simulated GPU — the same
 * quantities the paper profiles in Fig. 4: global→shared traffic,
 * shared→register traffic, bank-conflict serialization, plus instruction
 * counts for compute, dequantization lookups, index unpacking and warp
 * shuffles.
 */
#pragma once

#include <cstdint>

namespace vqllm::gpusim {

/** Aggregated event counters for one kernel execution. */
struct KernelCounters
{
    /** Bytes read from off-chip DRAM (global memory). */
    std::uint64_t dram_read_bytes = 0;
    /** Bytes written to off-chip DRAM. */
    std::uint64_t dram_write_bytes = 0;

    /** Bytes moved global -> shared (subset of dram_read_bytes). */
    std::uint64_t global_to_shared_bytes = 0;
    /** Bytes moved shared -> registers. */
    std::uint64_t shared_to_reg_bytes = 0;
    /** Bytes moved registers -> shared (layout round-trips). */
    std::uint64_t reg_to_shared_bytes = 0;

    /** Shared-memory transactions after conflict serialization. */
    std::uint64_t smem_transactions = 0;
    /** Shared-memory transactions had there been no conflicts. */
    std::uint64_t smem_ideal_transactions = 0;

    /** FP16/FP32 floating point operations (FMA = 2). */
    std::uint64_t flops = 0;
    /** Codebook-entry lookups performed during dequantization. */
    std::uint64_t dequant_lookups = 0;
    /** Extra integer ops for unaligned index unpacking/decoding. */
    std::uint64_t unpack_ops = 0;
    /** Warp shuffle instructions (register-level fusion). */
    std::uint64_t shuffle_ops = 0;

    /** Bytes exchanged through a global-memory reduction stage. */
    std::uint64_t reduce_bytes = 0;

    /** Accumulate another counter set into this one. */
    KernelCounters &
    operator+=(const KernelCounters &o)
    {
        dram_read_bytes += o.dram_read_bytes;
        dram_write_bytes += o.dram_write_bytes;
        global_to_shared_bytes += o.global_to_shared_bytes;
        shared_to_reg_bytes += o.shared_to_reg_bytes;
        reg_to_shared_bytes += o.reg_to_shared_bytes;
        smem_transactions += o.smem_transactions;
        smem_ideal_transactions += o.smem_ideal_transactions;
        flops += o.flops;
        dequant_lookups += o.dequant_lookups;
        unpack_ops += o.unpack_ops;
        shuffle_ops += o.shuffle_ops;
        reduce_bytes += o.reduce_bytes;
        return *this;
    }

    /** Scale all counters by an integer factor (e.g. per-block -> grid). */
    KernelCounters &
    operator*=(std::uint64_t k)
    {
        dram_read_bytes *= k;
        dram_write_bytes *= k;
        global_to_shared_bytes *= k;
        shared_to_reg_bytes *= k;
        reg_to_shared_bytes *= k;
        smem_transactions *= k;
        smem_ideal_transactions *= k;
        flops *= k;
        dequant_lookups *= k;
        unpack_ops *= k;
        shuffle_ops *= k;
        reduce_bytes *= k;
        return *this;
    }

    /** @return average bank-conflict multiplier over shared accesses. */
    double
    conflictMultiplier() const
    {
        if (smem_ideal_transactions == 0)
            return 1.0;
        return static_cast<double>(smem_transactions) /
               static_cast<double>(smem_ideal_transactions);
    }

    /** @return total DRAM bytes moved. */
    std::uint64_t
    dramBytes() const
    {
        return dram_read_bytes + dram_write_bytes + reduce_bytes;
    }
};

} // namespace vqllm::gpusim
