#include "gpusim/occupancy.h"

#include <algorithm>

#include "common/bitutils.h"
#include "common/logging.h"

namespace vqllm::gpusim {

namespace {

/** Registers consumed per block after warp-granularity rounding. */
std::size_t
regsPerBlock(const GpuSpec &spec, const BlockResources &block)
{
    int warps = static_cast<int>(
        ceilDiv(static_cast<std::uint64_t>(block.threads), spec.warp_size));
    std::size_t per_warp =
        roundUp(static_cast<std::uint64_t>(block.regs_per_thread) *
                    spec.warp_size,
                spec.reg_alloc_granularity);
    return per_warp * warps;
}

/** Shared-memory bytes consumed per block after granularity rounding. */
std::size_t
smemPerBlock(const GpuSpec &spec, const BlockResources &block)
{
    return roundUp(block.smem_bytes, spec.smem_alloc_granularity);
}

} // namespace

OccupancyResult
computeOccupancy(const GpuSpec &spec, const BlockResources &block)
{
    vqllm_assert(block.threads > 0, "block must have threads");
    OccupancyResult res;

    if (block.smem_bytes > spec.max_smem_per_block ||
        block.regs_per_thread > spec.max_regs_per_thread ||
        block.threads > spec.max_threads_per_sm) {
        return res; // unlaunchable: blocks_per_sm = 0
    }

    int warps_per_block = static_cast<int>(
        ceilDiv(static_cast<std::uint64_t>(block.threads), spec.warp_size));
    int max_warps = spec.max_threads_per_sm / spec.warp_size;

    constexpr int unbounded = 1 << 28;
    int by_threads = max_warps / warps_per_block;

    std::size_t smem = smemPerBlock(spec, block);
    int by_smem = smem == 0 ? unbounded
                            : static_cast<int>(spec.smem_per_sm / smem);

    std::size_t regs = regsPerBlock(spec, block);
    int by_regs = regs == 0 ? unbounded
                            : static_cast<int>(spec.regs_per_sm / regs);

    int by_slots = spec.max_blocks_per_sm;

    res.blocks_per_sm =
        std::min(std::min(by_threads, by_smem), std::min(by_regs, by_slots));
    if (res.blocks_per_sm <= 0) {
        res.blocks_per_sm = 0;
        res.limiter = smem > spec.smem_per_sm
                          ? OccupancyLimiter::SharedMemory
                          : OccupancyLimiter::Registers;
        return res;
    }

    // Identify the binding limit (ties resolved in a fixed order so the
    // result is deterministic and tests can rely on it).
    if (res.blocks_per_sm == by_smem) {
        res.limiter = OccupancyLimiter::SharedMemory;
    } else if (res.blocks_per_sm == by_regs) {
        res.limiter = OccupancyLimiter::Registers;
    } else if (res.blocks_per_sm == by_threads) {
        res.limiter = OccupancyLimiter::Threads;
    } else {
        res.limiter = OccupancyLimiter::BlockSlots;
    }

    res.warps_per_sm = res.blocks_per_sm * warps_per_block;
    res.occupancy =
        static_cast<double>(res.warps_per_sm) / static_cast<double>(max_warps);
    return res;
}

ResourceSlack
computeSlack(const GpuSpec &spec, const BlockResources &block)
{
    ResourceSlack slack;
    OccupancyResult base = computeOccupancy(spec, block);
    if (base.blocks_per_sm == 0)
        return slack;

    int blocks = base.blocks_per_sm;

    // Shared memory: the per-block budget at `blocks` residency is
    // smem_per_sm / blocks; anything up to that keeps occupancy intact.
    std::size_t smem_budget = spec.smem_per_sm / blocks;
    std::size_t smem_now = roundUp(block.smem_bytes,
                                   spec.smem_alloc_granularity);
    if (smem_budget > smem_now) {
        std::size_t cap = std::min(smem_budget, spec.max_smem_per_block);
        slack.smem_bytes = cap > smem_now ? cap - smem_now : 0;
        // Round down to the allocation granularity: a partial granule
        // would be rounded up at allocation time and could lose a block.
        slack.smem_bytes -= slack.smem_bytes % spec.smem_alloc_granularity;
    }

    // Registers: per-warp budget at `blocks` residency.
    int warps_per_block = static_cast<int>(
        ceilDiv(static_cast<std::uint64_t>(block.threads), spec.warp_size));
    std::size_t regs_per_warp_budget =
        spec.regs_per_sm / (static_cast<std::size_t>(blocks) *
                            warps_per_block);
    regs_per_warp_budget -= regs_per_warp_budget % spec.reg_alloc_granularity;
    int regs_per_thread_budget = static_cast<int>(
        std::min<std::size_t>(regs_per_warp_budget / spec.warp_size,
                              spec.max_regs_per_thread));
    if (regs_per_thread_budget > block.regs_per_thread)
        slack.regs_per_thread = regs_per_thread_budget -
                                block.regs_per_thread;

    return slack;
}

const char *
limiterName(OccupancyLimiter limiter)
{
    switch (limiter) {
      case OccupancyLimiter::Threads:      return "threads";
      case OccupancyLimiter::SharedMemory: return "shared-memory";
      case OccupancyLimiter::Registers:    return "registers";
      case OccupancyLimiter::BlockSlots:   return "block-slots";
    }
    return "?";
}

} // namespace vqllm::gpusim
