/**
 * @file
 * CUDA-style occupancy calculation and resource-slack analysis.
 *
 * Occupancy (resident thread blocks per SM) is limited by four resources:
 * threads, shared memory, registers, and the hardware block limit.  The
 * codebook cache's adaptive placement heuristic (paper Sec. V-B, Fig. 10)
 * sizes its register/shared-memory footprint to the *slack*: the largest
 * additional allocation that leaves the limiting resource — and therefore
 * occupancy — unchanged.
 */
#pragma once

#include <cstddef>
#include <cstdint>

#include "gpusim/gpu_spec.h"

namespace vqllm::gpusim {

/** Per-thread-block resource demands of a kernel. */
struct BlockResources
{
    /** Threads per block (multiple of warp size preferred). */
    int threads = 128;
    /** Static + dynamic shared memory per block, bytes. */
    std::size_t smem_bytes = 0;
    /** Registers per thread. */
    int regs_per_thread = 32;
};

/** Which resource bounds the number of resident blocks. */
enum class OccupancyLimiter {
    Threads,
    SharedMemory,
    Registers,
    BlockSlots,
};

/** Result of an occupancy computation. */
struct OccupancyResult
{
    /** Resident blocks per SM (0 means the block cannot launch). */
    int blocks_per_sm = 0;
    /** Resident warps per SM. */
    int warps_per_sm = 0;
    /** Occupancy = resident warps / max warps. */
    double occupancy = 0.0;
    /** The binding resource. */
    OccupancyLimiter limiter = OccupancyLimiter::BlockSlots;
};

/** Unused-resource headroom that can be consumed without hurting occupancy. */
struct ResourceSlack
{
    /** Extra shared-memory bytes per block at unchanged occupancy. */
    std::size_t smem_bytes = 0;
    /** Extra registers per thread at unchanged occupancy. */
    int regs_per_thread = 0;
};

/**
 * Compute resident blocks per SM and occupancy for a block shape.
 *
 * Mirrors the CUDA occupancy calculator: each limit is computed
 * independently with the hardware allocation granularities, and the
 * minimum wins.
 */
OccupancyResult computeOccupancy(const GpuSpec &spec,
                                 const BlockResources &block);

/**
 * Compute the resource slack of a kernel (paper Fig. 10).
 *
 * The returned shared-memory/register headroom is the largest extra
 * allocation for which computeOccupancy() still returns the same
 * blocks_per_sm.  Either component may be zero when the corresponding
 * resource is the occupancy limiter.
 */
ResourceSlack computeSlack(const GpuSpec &spec, const BlockResources &block);

/** @return name of an occupancy limiter, for logs and tables. */
const char *limiterName(OccupancyLimiter limiter);

} // namespace vqllm::gpusim
