#include "fleet/router.h"

#include "common/logging.h"
#include "serving/request.h"

namespace vqllm::fleet {

const char *
routerPolicyName(RouterPolicy p)
{
    switch (p) {
      case RouterPolicy::RoundRobin:     return "round-robin";
      case RouterPolicy::LeastLoaded:    return "least-loaded";
      case RouterPolicy::PrefixAffinity: return "prefix-affinity";
      case RouterPolicy::SloAware:       return "slo-aware";
    }
    return "?";
}

std::optional<RouterPolicy>
parseRouterPolicy(const std::string &s)
{
    if (s == "round-robin")
        return RouterPolicy::RoundRobin;
    if (s == "least-loaded")
        return RouterPolicy::LeastLoaded;
    if (s == "prefix-affinity")
        return RouterPolicy::PrefixAffinity;
    if (s == "slo-aware")
        return RouterPolicy::SloAware;
    return std::nullopt;
}

std::size_t
Router::leastLoaded(const std::vector<ReplicaLoadView> &candidates) const
{
    // Strict < on total queued tokens: equal loads keep the earlier
    // (lowest-index) candidate, making ties deterministic.
    std::size_t best = 0;
    std::uint64_t best_load = candidates[0].queued_prefill_tokens +
                              candidates[0].queued_decode_tokens;
    for (std::size_t i = 1; i < candidates.size(); ++i) {
        std::uint64_t load = candidates[i].queued_prefill_tokens +
                             candidates[i].queued_decode_tokens;
        if (load < best_load) {
            best = i;
            best_load = load;
        }
    }
    return best;
}

std::size_t
Router::pick(const serving::Request &r,
             const std::vector<ReplicaLoadView> &candidates)
{
    vqllm_assert(!candidates.empty(), "router needs an entry replica");
    switch (policy_) {
      case RouterPolicy::RoundRobin: {
        std::size_t i = rr_cursor_ % candidates.size();
        ++rr_cursor_;
        return candidates[i].index;
      }
      case RouterPolicy::LeastLoaded:
        return candidates[leastLoaded(candidates)].index;
      case RouterPolicy::PrefixAffinity: {
        if (r.prefix_group < 0)
            return candidates[leastLoaded(candidates)].index;
        auto it = affinity_.find(r.prefix_group);
        if (it != affinity_.end())
            return it->second;
        std::size_t target = candidates[leastLoaded(candidates)].index;
        affinity_.emplace(r.prefix_group, target);
        return target;
      }
      case RouterPolicy::SloAware: {
        // Projected wait to this request's first token: the prefill
        // backlog ahead of it plus its own prompt, drained at the
        // replica's measured prefill+decode throughput.  A replica
        // with no history yet projects zero wait (optimistic
        // bootstrap); strict < keeps index ties deterministic.
        std::size_t best = 0;
        double best_wait = 0;
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            const ReplicaLoadView &c = candidates[i];
            double wait = 0;
            if (c.busy_us > 0 && c.processed_tokens > 0) {
                double rate = static_cast<double>(c.processed_tokens) /
                              c.busy_us; // tokens per us
                wait = (static_cast<double>(c.queued_prefill_tokens) +
                        static_cast<double>(r.prompt_len)) /
                       rate;
            }
            if (i == 0 || wait < best_wait) {
                best = i;
                best_wait = wait;
            }
        }
        return candidates[best].index;
      }
    }
    vqllm_panic("unknown router policy");
}

} // namespace vqllm::fleet
