#include "fleet/fleet.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/sim_core.h"

namespace vqllm::fleet {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** %.17g — shortest representation that round-trips a double. */
std::string
jsonDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonU64(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

void
writeLatency(std::ostream &os, const char *name,
             const serving::LatencyStats &s)
{
    os << "\"" << name << "\":{\"count\":" << s.count
       << ",\"mean_us\":" << jsonDouble(s.mean_us)
       << ",\"p50_us\":" << jsonDouble(s.p50_us)
       << ",\"p95_us\":" << jsonDouble(s.p95_us)
       << ",\"p99_us\":" << jsonDouble(s.p99_us)
       << ",\"max_us\":" << jsonDouble(s.max_us) << "}";
}

/** Effective KV scheme of a replica config (mirrors the core). */
llm::KvScheme
effectiveKvScheme(const serving::SimulatorConfig &sim)
{
    return sim.kv_scheme.value_or(llm::defaultKvScheme(sim.scheme));
}

const llm::LlamaConfig &
replicaModel(const serving::SimulatorConfig &sim)
{
    return sim.model != nullptr ? *sim.model : llm::llama7b();
}

} // namespace

const char *
replicaRoleName(ReplicaRole r)
{
    switch (r) {
      case ReplicaRole::Aggregated: return "aggregated";
      case ReplicaRole::Prefill:    return "prefill";
      case ReplicaRole::Decode:     return "decode";
    }
    return "?";
}

struct FleetSimulator::Replica
{
    std::unique_ptr<serving::SimulatorCore> core;
    ReplicaRole role = ReplicaRole::Aggregated;
    /** Routed-but-undelivered requests, (arrival_us, id)-sorted. */
    std::deque<serving::Request *> pending;
    std::uint64_t routed = 0;
    std::uint64_t handoffs_in = 0;
    std::uint64_t handoffs_out = 0;
};

FleetSimulator::FleetSimulator(const FleetConfig &cfg)
    : cfg_(cfg), router_(cfg.router)
{
    vqllm_assert(!cfg_.replicas.empty(),
                 "a fleet needs at least one replica");
    std::size_t n_prefill = 0, n_decode = 0, n_aggregated = 0;
    for (const ReplicaConfig &rc : cfg_.replicas) {
        switch (rc.role) {
          case ReplicaRole::Aggregated: ++n_aggregated; break;
          case ReplicaRole::Prefill:    ++n_prefill; break;
          case ReplicaRole::Decode:     ++n_decode; break;
        }
    }
    disaggregated_ = n_prefill + n_decode > 0;
    if (disaggregated_) {
        if (n_aggregated > 0)
            vqllm_fatal("cannot mix aggregated replicas into a "
                        "disaggregated fleet");
        if (n_prefill == 0 || n_decode == 0)
            vqllm_fatal("a disaggregated fleet needs at least one "
                        "prefill and one decode replica (got ",
                        n_prefill, " prefill, ", n_decode, " decode)");
        // Streamed KV blocks must be loadable on the receiver: every
        // replica serves the same model under the same KV scheme
        // (specs, HBM and TP degrees may still differ).
        const serving::SimulatorConfig &ref = cfg_.replicas[0].sim;
        for (const ReplicaConfig &rc : cfg_.replicas) {
            if (effectiveKvScheme(rc.sim) != effectiveKvScheme(ref))
                vqllm_fatal("disaggregated replicas disagree on the "
                            "KV scheme: handoff blocks would not be "
                            "loadable");
            if (replicaModel(rc.sim).decoderParams() !=
                    replicaModel(ref).decoderParams() ||
                replicaModel(rc.sim).kvHeads() !=
                    replicaModel(ref).kvHeads())
                vqllm_fatal("disaggregated replicas disagree on the "
                            "model: handoff KV state would not match "
                            "the receiver's layout");
        }
    }

    replicas_.resize(cfg_.replicas.size());
    for (std::size_t i = 0; i < cfg_.replicas.size(); ++i) {
        serving::SimulatorConfig sim = cfg_.replicas[i].sim;
        // The fleet owns the timeline; a replica-level workload would
        // never be generated, so drop it to avoid implying otherwise.
        sim.workload = serving::WorkloadConfig{};
        if (cfg_.trace) {
            trace_recs_.push_back(
                std::make_unique<obs::TraceRecorder>());
            sim.trace = trace_recs_.back().get();
        }
        replicas_[i].core =
            std::make_unique<serving::SimulatorCore>(sim);
        replicas_[i].role = cfg_.replicas[i].role;
        if (!disaggregated_ ||
            replicas_[i].role == ReplicaRole::Prefill)
            entry_replicas_.push_back(i);
        if (replicas_[i].role == ReplicaRole::Decode)
            decode_replicas_.push_back(i);
    }
}

FleetSimulator::~FleetSimulator() = default;

std::vector<ReplicaLoadView>
FleetSimulator::loadViews(const std::vector<std::size_t> &indices) const
{
    std::vector<ReplicaLoadView> views;
    views.reserve(indices.size());
    for (std::size_t i : indices) {
        const Replica &rep = replicas_[i];
        ReplicaLoadView v;
        v.index = i;
        v.queued_prefill_tokens = rep.core->queuedPrefillTokens();
        v.queued_decode_tokens = rep.core->queuedDecodeTokens();
        // The routed-but-undelivered backlog is load the scheduler
        // cannot see yet; without it the router would dogpile one
        // replica between its steps.
        for (const serving::Request *r : rep.pending) {
            if (!r->kv_imported)
                v.queued_prefill_tokens += r->prompt_len;
            v.queued_decode_tokens += r->max_new_tokens;
        }
        v.processed_tokens = rep.core->processedTokens();
        v.busy_us = rep.core->busyUs();
        views.push_back(v);
    }
    return views;
}

void
FleetSimulator::enqueue(std::size_t i, serving::Request *r)
{
    auto &q = replicas_[i].pending;
    auto pos = std::upper_bound(
        q.begin(), q.end(), r,
        [](const serving::Request *a, const serving::Request *b) {
            if (a->arrival_us != b->arrival_us)
                return a->arrival_us < b->arrival_us;
            return a->id < b->id;
        });
    q.insert(pos, r);
}

void
FleetSimulator::routeRequest(serving::Request *r)
{
    std::size_t target = router_.pick(*r, loadViews(entry_replicas_));
    ++replicas_[target].routed;
    if (!disaggregated_) {
        enqueue(target, r);
        return;
    }
    // Prefill part: the prompt plus exactly the first output token —
    // the handoff streams the context after that token lands.
    parts_.push_back(*r);
    serving::Request *p = &parts_.back();
    p->max_new_tokens = 1;
    enqueue(target, p);
}

double
FleetSimulator::steppableTime(const Replica &rep) const
{
    if (!rep.core->idle())
        return rep.core->now();
    if (!rep.pending.empty())
        return std::max(rep.core->now(),
                        rep.pending.front()->arrival_us);
    return kInf;
}

void
FleetSimulator::deliverDue(std::size_t i)
{
    Replica &rep = replicas_[i];
    while (!rep.pending.empty() &&
           rep.pending.front()->arrival_us <= rep.core->now()) {
        serving::Request *r = rep.pending.front();
        rep.pending.pop_front();
        rep.core->submit(r);
        if (r->state == serving::RequestState::Rejected) {
            // Origin-level bookkeeping: a rejected entry part rejects
            // the request; a rejected decode part strands a handoff
            // (the prefill work is sunk cost) and rejects it too.
            if (r->kv_imported)
                ++handoff_rejects_;
            ++rejected_;
        }
    }
}

void
FleetSimulator::stepReplica(std::size_t i)
{
    Replica &rep = replicas_[i];
    deliverDue(i);
    if (rep.core->idle()) {
        if (rep.pending.empty())
            return;
        rep.core->setNow(std::max(rep.core->now(),
                                  rep.pending.front()->arrival_us));
        deliverDue(i);
        if (rep.core->idle())
            return; // everything due was rejected
    }
    rep.core->step();
    for (serving::Request *f : rep.core->takeFinished())
        onPartFinished(i, f);
}

void
FleetSimulator::completeOrigin(const serving::Request *f)
{
    ++completed_;
    e2e_samples_.push_back(f->finish_us -
                           origins_.at(f->id).arrival_us);
}

void
FleetSimulator::onPartFinished(std::size_t i, serving::Request *f)
{
    Replica &rep = replicas_[i];
    if (rep.role != ReplicaRole::Prefill) {
        completeOrigin(f);
        return;
    }
    // The prefill part carried max_new = 1; the origin's full decode
    // budget comes from the fleet's origin bookkeeping.
    const std::size_t origin_max_new =
        origins_.at(f->id).max_new_tokens;
    const std::size_t remaining_decode =
        origin_max_new > 1 ? origin_max_new - 1 : 0;
    if (remaining_decode == 0) {
        // Single-token request: the prefill part was the whole
        // request, no handoff.
        completeOrigin(f);
        return;
    }
    // ---- KV handoff: stream the finished sequence's cache — context
    // tokens at the *sender's* per-token footprint — over the fleet
    // link.  Compressed KV shrinks this transfer by the scheme's
    // compression factor.
    const std::uint64_t kv_tokens = f->contextTokens();
    const std::uint64_t bytes = kv_tokens * rep.core->kvBytesPerToken();
    const double transfer_us =
        llm::linkTransferUs(cfg_.handoff_link, bytes);
    ++handoffs_;
    ++rep.handoffs_out;
    kv_transfer_bytes_ += bytes;
    kv_transfer_us_ += transfer_us;

    // Decode target: fewest queued decode tokens, index tie-break.
    const auto views = loadViews(decode_replicas_);
    std::size_t best = 0;
    for (std::size_t k = 1; k < views.size(); ++k)
        if (views[k].queued_decode_tokens <
            views[best].queued_decode_tokens)
            best = k;
    const std::size_t target = views[best].index;

    // Decode part: arrives when the transfer lands, imports the full
    // context (prompt plus the first token) without prefill compute,
    // and decodes the rest.  Token timestamps carry over, so its first
    // decode TBT sample absorbs the transfer stall.
    parts_.push_back(*f);
    serving::Request *d = &parts_.back();
    d->arrival_us = f->finish_us + transfer_us;
    d->prompt_len = f->contextTokens();
    d->max_new_tokens = remaining_decode;
    d->prefix_group = -1;
    d->prefix_tokens = 0;
    d->kv_imported = true;
    d->generated = 0;
    d->prefilled_tokens = 0;
    d->prefill_complete = false;
    d->finish_us = -1;
    d->preemptions = 0;
    ++replicas_[target].handoffs_in;
    enqueue(target, d);
}

FleetReport
FleetSimulator::run()
{
    auto trace = serving::generateWorkload(cfg_.workload);
    return run(trace);
}

FleetReport
FleetSimulator::run(std::vector<serving::Request> &trace)
{
    for (const serving::Request &r : trace)
        origins_[r.id] = {r.arrival_us, r.max_new_tokens};

    // ---- Global event loop: at every turn the earliest actionable
    // event wins — the next unrouted arrival, or the earliest replica
    // that can step (a busy replica steps at its own clock; an idle
    // one at its backlog head's arrival).  Arrivals win ties so the
    // router always sees the full backlog, and replica ties resolve by
    // index.  Entirely sequential: bit-identical across thread counts.
    std::size_t next_route = 0;
    for (;;) {
        const double t_arr = next_route < trace.size()
                                 ? trace[next_route].arrival_us
                                 : kInf;
        double t_step = kInf;
        std::size_t step_i = 0;
        for (std::size_t i = 0; i < replicas_.size(); ++i) {
            const double t = steppableTime(replicas_[i]);
            if (t < t_step) {
                t_step = t;
                step_i = i;
            }
        }
        if (t_arr <= t_step) {
            if (t_arr == kInf)
                break; // no arrivals left, every replica drained
            routeRequest(&trace[next_route++]);
            continue;
        }
        stepReplica(step_i);
    }
    vqllm_assert(completed_ + rejected_ == trace.size(),
                 "fleet drained with requests unaccounted for");

    // ---- Assemble the fleet report.  Latencies are origin-level:
    // TTFT/TBT pool every replica's samples (summarize() sorts, so
    // concatenation order is irrelevant); E2E comes from the fleet's
    // own completion bookkeeping (a disaggregated request's E2E spans
    // both phases plus the transfer).
    FleetReport report;
    std::vector<double> ttft, tbt;
    double sim_time_us = 0;
    std::uint64_t decode_tokens = 0;
    for (const Replica &rep : replicas_) {
        const serving::MetricsCollector &c = rep.core->collector();
        ttft.insert(ttft.end(), c.ttftSamples().begin(),
                    c.ttftSamples().end());
        tbt.insert(tbt.end(), c.tbtSamples().begin(),
                   c.tbtSamples().end());
        sim_time_us = std::max(sim_time_us, rep.core->now());
    }
    report.ttft = serving::summarize(std::move(ttft));
    report.tbt = serving::summarize(std::move(tbt));
    report.e2e = serving::summarize(e2e_samples_);
    report.sim_time_us = sim_time_us;
    report.completed_requests = completed_;
    report.rejected_requests = rejected_;
    report.handoffs = handoffs_;
    report.kv_transfer_bytes = kv_transfer_bytes_;
    report.kv_transfer_us = kv_transfer_us_;
    report.handoff_rejects = handoff_rejects_;
    report.router = routerPolicyName(cfg_.router);
    report.disaggregated = disaggregated_;
    report.replicas.resize(replicas_.size());
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
        FleetReplicaReport &rr = report.replicas[i];
        rr.role = replicas_[i].role;
        rr.routed = replicas_[i].routed;
        rr.handoffs_in = replicas_[i].handoffs_in;
        rr.handoffs_out = replicas_[i].handoffs_out;
        rr.report = replicas_[i].core->finalize();
        decode_tokens += rr.report.decode_tokens;
        if (i == 0) {
            report.util_min = rr.report.utilization;
            report.util_max = rr.report.utilization;
        } else {
            report.util_min =
                std::min(report.util_min, rr.report.utilization);
            report.util_max =
                std::max(report.util_max, rr.report.utilization);
        }
    }
    report.util_imbalance = report.util_max - report.util_min;
    report.fleet_tokens_per_sec =
        sim_time_us > 0
            ? static_cast<double>(decode_tokens) / (sim_time_us / 1e6)
            : 0;

    if (cfg_.metrics != nullptr) {
        obs::MetricsRegistry &reg = *cfg_.metrics;
        std::uint64_t routed_total = 0;
        for (const Replica &rep : replicas_)
            routed_total += rep.routed;
        reg.counter("fleet.router.routed").add(routed_total);
        reg.counter("fleet.router.rejected").add(rejected_);
        reg.counter("fleet.router.handoffs").add(handoffs_);
        reg.counter("fleet.router.handoff_rejects")
            .add(handoff_rejects_);
        reg.counter("fleet.kv_transfer.bytes").add(kv_transfer_bytes_);
        reg.gauge("fleet.kv_transfer.us").set(kv_transfer_us_);
        reg.gauge("fleet.util.min").set(report.util_min);
        reg.gauge("fleet.util.max").set(report.util_max);
        reg.gauge("fleet.util.imbalance").set(report.util_imbalance);
        reg.gauge("fleet.tokens_per_sec")
            .set(report.fleet_tokens_per_sec);
        for (std::size_t i = 0; i < replicas_.size(); ++i) {
            const std::string p =
                "fleet.replica." + std::to_string(i) + ".";
            reg.counter(p + "routed").add(replicas_[i].routed);
            reg.counter(p + "handoffs_in")
                .add(replicas_[i].handoffs_in);
            reg.counter(p + "handoffs_out")
                .add(replicas_[i].handoffs_out);
            reg.gauge(p + "utilization")
                .set(report.replicas[i].report.utilization);
        }
    }
    return report;
}

void
FleetSimulator::writeChromeTrace(std::ostream &os) const
{
    vqllm_assert(!trace_recs_.empty(),
                 "fleet tracing is off (FleetConfig::trace)");
    std::vector<obs::TraceMergePart> parts;
    parts.reserve(trace_recs_.size());
    for (std::size_t i = 0; i < trace_recs_.size(); ++i) {
        char prefix[32];
        std::snprintf(prefix, sizeof(prefix), "r%zu/", i);
        parts.push_back({trace_recs_[i].get(),
                         static_cast<int>(i) * kTracksPerReplica,
                         prefix});
    }
    obs::writeChromeJsonMerged(os, parts);
}

std::string
FleetReport::json() const
{
    std::ostringstream os;
    os << "{\"router\":\"" << router << "\",\"disaggregated\":"
       << (disaggregated ? "true" : "false") << ",";
    writeLatency(os, "ttft", ttft);
    os << ",";
    writeLatency(os, "tbt", tbt);
    os << ",";
    writeLatency(os, "e2e", e2e);
    os << ",\"sim_time_us\":" << jsonDouble(sim_time_us)
       << ",\"fleet_tokens_per_sec\":" << jsonDouble(fleet_tokens_per_sec)
       << ",\"completed_requests\":" << jsonU64(completed_requests)
       << ",\"rejected_requests\":" << jsonU64(rejected_requests)
       << ",\"handoffs\":" << jsonU64(handoffs)
       << ",\"kv_transfer_bytes\":" << jsonU64(kv_transfer_bytes)
       << ",\"kv_transfer_us\":" << jsonDouble(kv_transfer_us)
       << ",\"handoff_rejects\":" << jsonU64(handoff_rejects)
       << ",\"util_min\":" << jsonDouble(util_min)
       << ",\"util_max\":" << jsonDouble(util_max)
       << ",\"util_imbalance\":" << jsonDouble(util_imbalance)
       << ",\"replicas\":[";
    for (std::size_t i = 0; i < replicas.size(); ++i) {
        const FleetReplicaReport &r = replicas[i];
        if (i > 0)
            os << ",";
        os << "{\"role\":\"" << replicaRoleName(r.role) << "\""
           << ",\"routed\":" << jsonU64(r.routed)
           << ",\"handoffs_in\":" << jsonU64(r.handoffs_in)
           << ",\"handoffs_out\":" << jsonU64(r.handoffs_out)
           << ",\"report\":" << r.report.json() << "}";
    }
    os << "]}";
    return os.str();
}

std::string
FleetReport::summary() const
{
    std::ostringstream os;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "fleet: %zu replicas, router %s, %s\n",
                  replicas.size(), router.c_str(),
                  disaggregated ? "disaggregated" : "aggregated");
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "  completed %llu  rejected %llu  "
                  "fleet tok/s %.1f  sim time %.1f s\n",
                  static_cast<unsigned long long>(completed_requests),
                  static_cast<unsigned long long>(rejected_requests),
                  fleet_tokens_per_sec, sim_time_us / 1e6);
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "  ttft p50 %.1f ms  p95 %.1f ms | tbt p50 %.2f ms  "
                  "p95 %.2f ms | e2e p95 %.1f ms\n",
                  ttft.p50_us / 1e3, ttft.p95_us / 1e3, tbt.p50_us / 1e3,
                  tbt.p95_us / 1e3, e2e.p95_us / 1e3);
    os << buf;
    if (disaggregated) {
        std::snprintf(buf, sizeof(buf),
                      "  handoffs %llu (%llu rejected)  KV transfer "
                      "%.1f MB, %.1f ms\n",
                      static_cast<unsigned long long>(handoffs),
                      static_cast<unsigned long long>(handoff_rejects),
                      static_cast<double>(kv_transfer_bytes) / 1e6,
                      kv_transfer_us / 1e3);
        os << buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "  utilization min %.2f  max %.2f  imbalance %.2f\n",
                  util_min, util_max, util_imbalance);
    os << buf;
    for (std::size_t i = 0; i < replicas.size(); ++i) {
        const FleetReplicaReport &r = replicas[i];
        std::snprintf(
            buf, sizeof(buf),
            "  r%zu [%s] routed %llu  in/out %llu/%llu  util %.2f  "
            "tok/s %.1f\n",
            i, replicaRoleName(r.role),
            static_cast<unsigned long long>(r.routed),
            static_cast<unsigned long long>(r.handoffs_in),
            static_cast<unsigned long long>(r.handoffs_out),
            r.report.utilization, r.report.tokens_per_sec);
        os << buf;
    }
    return os.str();
}

} // namespace vqllm::fleet
