/**
 * @file
 * Fleet simulator: N replica instances (each a full ServingSimulator
 * config — possibly different GPU specs, HBM sizes, TP degrees, and KV
 * schemes) behind a pluggable router, with optional prefill/decode
 * disaggregation.
 *
 * The fleet drives one SimulatorCore per replica on a single global
 * timeline: arrivals route to an entry replica, each replica steps
 * whenever it is the earliest actionable event, and the loop is fully
 * sequential — reports are bit-identical across host thread counts,
 * and a 1-replica aggregated fleet runs the exact driver loop of the
 * bare ServingSimulator (bit-identical report).
 *
 * Disaggregated mode splits every request into a prefill part and a
 * decode part.  A prefill-role replica runs (chunked) prefill and
 * emits the first token; the sequence's KV blocks — (prompt+1) tokens
 * at the *sender's* kvSchemeBytesPerToken — then stream to a
 * decode-role replica over the fleet link, priced with
 * llm::linkTransferUs.  The decode part arrives when the transfer
 * lands, admits through the scheduler's imported-KV path (full context
 * mapped in, no prefill compute), and decodes the remaining tokens;
 * the transfer stall shows up in its first TBT sample.  Compressed KV
 * (VQ4/VQ2) shrinks the handoff by the scheme's compression factor,
 * which is what makes disaggregation pay off (VecInfer-style low-bit
 * KV): decode replicas run pure token-rate work while prefill replicas
 * absorb the compute bursts.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "fleet/router.h"
#include "llm/tensor_parallel.h"
#include "serving/request.h"
#include "serving/simulator.h"

namespace vqllm::obs {
class MetricsRegistry;
class TraceRecorder;
}

namespace vqllm::serving {
class SimulatorCore;
}

namespace vqllm::fleet {

/** Role a replica plays in the fleet. */
enum class ReplicaRole {
    /** Runs both phases locally (no handoff). */
    Aggregated,
    /** Entry replica: prefills, emits the first token, hands off. */
    Prefill,
    /** Receives imported KV, decodes the remaining tokens. */
    Decode,
};

const char *replicaRoleName(ReplicaRole r);

/** One replica: a full single-replica simulator config plus its role.
 *  The workload member of `sim` is ignored — the fleet generates one
 *  global workload and routes it. */
struct ReplicaConfig
{
    serving::SimulatorConfig sim;
    ReplicaRole role = ReplicaRole::Aggregated;
};

/** Tracks per replica reserved in merged Chrome traces (track 0 is the
 *  scheduler, 1+s shard s; 16 covers TP degrees up to 15). */
inline constexpr int kTracksPerReplica = 16;

/** Full parameterization of one fleet simulation. */
struct FleetConfig
{
    /** Replica set.  Roles must be all-Aggregated, or — disaggregated
     *  mode — at least one Prefill and one Decode with no Aggregated
     *  mixed in.  Disaggregation requires the prefill and decode
     *  replicas to agree on the model and the effective KV scheme
     *  (streamed blocks must be loadable on the receiver). */
    std::vector<ReplicaConfig> replicas;

    RouterPolicy router = RouterPolicy::RoundRobin;

    /** Link model pricing prefill→decode KV handoffs (only the
     *  link_bw_gbps / collective_latency_us fields matter; the
     *  defaults match TpConfig's NVLink-class link). */
    llm::TpConfig handoff_link;

    /** Global workload, routed across the fleet. */
    serving::WorkloadConfig workload;

    /** Record per-replica traces, exported merged via
     *  FleetSimulator::writeChromeTrace (replica i on tracks
     *  [i*kTracksPerReplica, ...) prefixed "r<i>/"). */
    bool trace = false;

    /** Fleet-level metrics registry (nullptr = off): `fleet.router.*`,
     *  KV-transfer counters, utilization gauges.  Per-replica
     *  `serving.*` metrics go to each replica's own sim.metrics. */
    obs::MetricsRegistry *metrics = nullptr;
};

/** Per-replica slice of the fleet report. */
struct FleetReplicaReport
{
    ReplicaRole role = ReplicaRole::Aggregated;
    /** Requests that entered the fleet on this replica. */
    std::uint64_t routed = 0;
    std::uint64_t handoffs_in = 0;
    std::uint64_t handoffs_out = 0;
    /** The replica's own full report.  For a 1-replica aggregated
     *  fleet this is bit-identical to a bare ServingSimulator run. */
    serving::ServingReport report;
};

/** Fleet-level results: request latencies are origin-level (a
 *  disaggregated request's E2E spans both phases and the transfer). */
struct FleetReport
{
    serving::LatencyStats ttft;
    serving::LatencyStats tbt;
    serving::LatencyStats e2e;
    /** max over replicas of their local clocks, us. */
    double sim_time_us = 0;
    /** Fleet decode tokens over sim_time_us. */
    double fleet_tokens_per_sec = 0;
    std::uint64_t completed_requests = 0;
    std::uint64_t rejected_requests = 0;
    /** Prefill→decode KV handoffs and their priced transfer cost. */
    std::uint64_t handoffs = 0;
    std::uint64_t kv_transfer_bytes = 0;
    double kv_transfer_us = 0;
    /** Decode parts rejected at the decode replica (counted in
     *  rejected_requests too). */
    std::uint64_t handoff_rejects = 0;
    /** Replica utilization spread: max - min busy fraction. */
    double util_min = 0;
    double util_max = 0;
    double util_imbalance = 0;
    std::string router;
    bool disaggregated = false;
    std::vector<FleetReplicaReport> replicas;

    std::string json() const;
    std::string summary() const;
};

/**
 * Runs one fleet simulation to completion.  Deterministic: one
 * FleetConfig (workload seed included) produces a bit-identical
 * FleetReport regardless of host thread count.
 */
class FleetSimulator
{
  public:
    explicit FleetSimulator(const FleetConfig &cfg);
    ~FleetSimulator();

    /** Generate the global workload from cfg and run it. */
    FleetReport run();

    /** Run an explicit trace (must be arrival-sorted). */
    FleetReport run(std::vector<serving::Request> &trace);

    bool disaggregated() const { return disaggregated_; }

    /** Merged per-replica Chrome trace (requires cfg.trace; call
     *  after run()). */
    void writeChromeTrace(std::ostream &os) const;

  private:
    struct Replica;

    std::vector<ReplicaLoadView>
    loadViews(const std::vector<std::size_t> &indices) const;
    void routeRequest(serving::Request *r);
    double steppableTime(const Replica &rep) const;
    void deliverDue(std::size_t i);
    void stepReplica(std::size_t i);
    void enqueue(std::size_t i, serving::Request *r);
    void onPartFinished(std::size_t i, serving::Request *f);
    void completeOrigin(const serving::Request *f);

    FleetConfig cfg_;
    bool disaggregated_ = false;
    Router router_;
    std::vector<Replica> replicas_;
    std::vector<std::size_t> entry_replicas_;
    std::vector<std::size_t> decode_replicas_;
    /** Owned trace recorders, one per replica (cfg.trace only). */
    std::vector<std::unique_ptr<obs::TraceRecorder>> trace_recs_;

    /** Decode parts of disaggregated requests (deque: handoffs keep
     *  growing while earlier parts are in flight — addresses must
     *  stay stable). */
    std::deque<serving::Request> parts_;
    /** Origin-level request facts the parts lose: arrival (for E2E)
     *  and the full decode budget (handoff sizing). */
    struct Origin
    {
        double arrival_us = 0;
        std::size_t max_new_tokens = 0;
    };
    std::map<std::uint64_t, Origin> origins_;
    std::vector<double> e2e_samples_;
    std::uint64_t completed_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t handoffs_ = 0;
    std::uint64_t kv_transfer_bytes_ = 0;
    double kv_transfer_us_ = 0;
    std::uint64_t handoff_rejects_ = 0;
};

} // namespace vqllm::fleet
