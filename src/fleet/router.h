/**
 * @file
 * Fleet request router: picks the replica a request enters the fleet
 * on.  Policies see a per-replica load snapshot (queued tokens on the
 * replica's scheduler *plus* its undelivered routed backlog) and must
 * be total orders with id/index tie-breaks, so routing — and therefore
 * the whole fleet simulation — is deterministic.
 */
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace vqllm::serving {
struct Request;
}

namespace vqllm::fleet {

/** Routing policy over the fleet's entry replicas. */
enum class RouterPolicy {
    /** Cycle through the entry replicas in index order. */
    RoundRobin,
    /** Fewest queued tokens (prefill + decode backlog), index
     *  tie-break. */
    LeastLoaded,
    /**
     * Requests of one shared-prefix group (Request::prefix_group, the
     * PrefixCache group key) stick to the replica the group first
     * landed on, so its cached prefix keeps hitting; groupless
     * requests fall back to least-loaded.
     */
    PrefixAffinity,
    /**
     * Maximize projected TTFT deadline slack: pick the replica whose
     * measured prefill throughput drains its queued prefill backlog
     * plus this prompt soonest.  On a heterogeneous fleet this routes
     * around slow replicas where least-loaded (token counts alone)
     * would not.
     */
    SloAware,
};

const char *routerPolicyName(RouterPolicy p);
std::optional<RouterPolicy> parseRouterPolicy(const std::string &s);

/** One replica's load as the router sees it at routing time. */
struct ReplicaLoadView
{
    std::size_t index = 0;
    /** Un-prefilled prompt tokens: scheduler queues + routed backlog. */
    std::uint64_t queued_prefill_tokens = 0;
    /** Un-generated decode tokens: scheduler queues + routed backlog. */
    std::uint64_t queued_decode_tokens = 0;
    /** Tokens the replica has processed so far (prefill + decode). */
    std::uint64_t processed_tokens = 0;
    /** Simulated time the replica has spent busy, us. */
    double busy_us = 0;
};

/**
 * Stateful router (round-robin cursor, prefix-group affinity map).
 * pick() never fails: candidates is non-empty by fleet construction.
 */
class Router
{
  public:
    explicit Router(RouterPolicy policy) : policy_(policy) {}

    RouterPolicy policy() const { return policy_; }

    /**
     * Choose the entry replica for @p r among @p candidates (load
     * views of the fleet's entry replicas, in index order).
     */
    std::size_t pick(const serving::Request &r,
                     const std::vector<ReplicaLoadView> &candidates);

  private:
    std::size_t leastLoaded(
        const std::vector<ReplicaLoadView> &candidates) const;

    RouterPolicy policy_;
    std::size_t rr_cursor_ = 0;
    /** prefix_group → replica index of the group's first request. */
    std::map<std::int64_t, std::size_t> affinity_;
};

} // namespace vqllm::fleet
