/**
 * @file
 * Reference (unfused, float-precision) implementations of the LLM
 * computations.  Functional kernel tests validate against these.
 */
#pragma once

#include "tensor/tensor.h"

namespace vqllm::kernels {

/**
 * y[m,n] = x[m,k] * w[n,k]^T  (weights stored row-major [n, k], the
 * layout the VQ quantizer compresses along k).
 */
Tensor<float> referenceGemm(const Tensor<float> &x,
                            const Tensor<float> &w_nk);

/** y[n] = w[n,k] * x[k]. */
Tensor<float> referenceGemv(const Tensor<float> &w_nk,
                            const Tensor<float> &x);

/** Numerically-stable softmax over the last axis of a [n] vector. */
void softmaxInPlace(std::vector<float> &logits);

/**
 * Single-query decode attention for one head.
 *
 * @param q [C] query
 * @param k [T, C] key cache
 * @param v [T, C] value cache
 * @return [C] attention output
 */
Tensor<float> referenceAttentionHead(const Tensor<float> &q,
                                     const Tensor<float> &k,
                                     const Tensor<float> &v);

/**
 * Multi-head decode attention.
 *
 * @param q [H, C] one query token per head
 * @param k [H, T, C] key cache
 * @param v [H, T, C] value cache
 * @return [H, C]
 */
Tensor<float> referenceAttention(const Tensor<float> &q,
                                 const Tensor<float> &k,
                                 const Tensor<float> &v);

} // namespace vqllm::kernels
