#include "kernels/fp16_kernels.h"

#include "common/bitutils.h"
#include "engine/template_engine.h"
#include "llm/model_config.h"

namespace vqllm::kernels {

const char *
attnVariantName(AttnVariant variant)
{
    switch (variant) {
      case AttnVariant::FlashDecoding:       return "Flash Decoding";
      case AttnVariant::FlashAttention:      return "Flash Attention";
      case AttnVariant::PagedFlashDecoding:  return "Paged Flash Decoding";
      case AttnVariant::PagedFlashAttention: return "Paged Flash Attention";
    }
    return "?";
}

KernelResult
fp16GemmEstimate(const gpusim::GpuSpec &spec,
                 const engine::GemmShape &shape)
{
    gpusim::KernelCounters c;
    // Activations + weights in, outputs out; tile reuse through shared
    // memory keeps DRAM traffic near the algorithmic minimum.
    c.dram_read_bytes = (static_cast<std::uint64_t>(shape.m) * shape.k +
                         static_cast<std::uint64_t>(shape.k) * shape.n) *
                        2;
    c.dram_write_bytes = static_cast<std::uint64_t>(shape.m) * shape.n * 2;
    c.global_to_shared_bytes = c.dram_read_bytes;
    c.flops = shape.flops();
    // Tile staging through shared memory: in and out once each.
    std::uint64_t smem_bytes = c.dram_read_bytes * 2;
    c.smem_transactions = smem_bytes / 128;
    c.smem_ideal_transactions = c.smem_transactions;

    gpusim::LaunchConfig launch;
    launch.block = engine::baseBlockResources(engine::OpKind::GeMM, false);
    launch.grid_blocks = ceilDiv(shape.m, 128) * ceilDiv(shape.n, 128);
    launch.uses_tensor_cores = true;
    return finishEstimate(spec, launch, c);
}

KernelResult
fp16GemvEstimate(const gpusim::GpuSpec &spec,
                 const engine::GemmShape &shape)
{
    gpusim::KernelCounters c;
    c.dram_read_bytes = (static_cast<std::uint64_t>(shape.k) * shape.n +
                         static_cast<std::uint64_t>(shape.m) * shape.k) *
                        2;
    c.dram_write_bytes = static_cast<std::uint64_t>(shape.m) * shape.n * 2;
    c.flops = shape.flops();
    c.smem_transactions = shape.m * shape.k * 2 / 128 + 1;
    c.smem_ideal_transactions = c.smem_transactions;

    gpusim::LaunchConfig launch;
    launch.block = engine::baseBlockResources(engine::OpKind::GeMV, false);
    engine::BaselineTiling tiling;
    launch.grid_blocks = ceilDiv(shape.n, 128) * tiling.gemv_split_k;
    launch.uses_tensor_cores = false;
    return finishEstimate(spec, launch, c);
}

KernelResult
fp16AttentionEstimate(const gpusim::GpuSpec &spec,
                      const engine::AttnShape &shape, AttnVariant variant,
                      const PagingParams &paging)
{
    const bool paged = variant == AttnVariant::PagedFlashDecoding ||
                       variant == AttnVariant::PagedFlashAttention;
    const bool decoding = variant == AttnVariant::FlashDecoding ||
                          variant == AttnVariant::PagedFlashDecoding;

    gpusim::KernelCounters c;
    std::uint64_t kv_bytes = llm::kvPackedBytesFp16(shape.kvElements());
    c.dram_read_bytes = kv_bytes +
                        shape.batch * shape.heads * shape.head_dim * 2;
    c.dram_write_bytes = shape.outputElements() * 2;
    c.global_to_shared_bytes = kv_bytes;
    c.flops = shape.flops();
    c.smem_transactions = kv_bytes * 2 / 128; // stage in, read out
    c.smem_ideal_transactions = c.smem_transactions;

    std::uint64_t bh = static_cast<std::uint64_t>(shape.batch) *
                       shape.heads;
    gpusim::LaunchConfig launch;
    launch.block =
        engine::baseBlockResources(engine::OpKind::AttentionDecode, false);
    launch.uses_tensor_cores = false;

    engine::BaselineTiling tiling;
    if (decoding) {
        // Token-parallel split + a global reduce of per-split partial
        // outputs and softmax statistics.
        std::uint64_t blocks_t = ceilDiv(shape.seq_len,
                                         tiling.attn_block_tokens);
        launch.grid_blocks = bh * blocks_t;
        c.reduce_bytes = bh * blocks_t * (shape.head_dim + 2) * 4;
    } else {
        // One block per (batch, head): no reduce, but far less
        // parallelism — the decode-phase weakness of FlashAttention.
        launch.grid_blocks = bh;
    }

    if (paged) {
        // Page-table walks: one entry per page per consuming block, and
        // gather-granular bandwidth efficiency.
        std::uint64_t pages = ceilDiv(shape.seq_len, paging.page_tokens);
        c.dram_read_bytes += pages * paging.entry_bytes *
                             (decoding ? launch.grid_blocks / bh : 1) * bh;
        c.unpack_ops += pages * launch.grid_blocks / bh * bh;
        double penalty = 1.0 / paging.gather_efficiency;
        c.dram_read_bytes = static_cast<std::uint64_t>(
            static_cast<double>(c.dram_read_bytes) * penalty);
    }
    return finishEstimate(spec, launch, c);
}

} // namespace vqllm::kernels
