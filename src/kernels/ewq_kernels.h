/**
 * @file
 * Element-wise quantization kernel models (AWQ for weights, QoQ-style
 * W4A8KV4 for the KV cache) used as the latency comparison points of
 * paper Fig. 16/17.  At equal bit-width their traffic is the theoretical
 * upper bound for VQ kernels under the same dataflow (Sec. VII-D).
 */
#pragma once

#include "engine/op_desc.h"
#include "kernels/kernel_result.h"

namespace vqllm::kernels {

/** Element-wise weight-quantized GeMM (AWQ-like W4A16). */
KernelResult ewqGemmEstimate(const gpusim::GpuSpec &spec,
                             const engine::GemmShape &shape,
                             unsigned bits = 4,
                             std::size_t group_size = 128);

/** Element-wise weight-quantized GeMV (AWQ-like W4A16). */
KernelResult ewqGemvEstimate(const gpusim::GpuSpec &spec,
                             const engine::GemmShape &shape,
                             unsigned bits = 4,
                             std::size_t group_size = 128);

/** Element-wise KV-quantized decode attention (QoQ-like KV4). */
KernelResult ewqAttentionEstimate(const gpusim::GpuSpec &spec,
                                  const engine::AttnShape &shape,
                                  unsigned kv_bits = 4);

} // namespace vqllm::kernels
