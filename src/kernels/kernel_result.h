/**
 * @file
 * Result type shared by all simulated kernels: event counters plus the
 * modeled latency breakdown.
 */
#pragma once

#include "gpusim/cost_model.h"
#include "gpusim/traffic.h"

namespace vqllm::kernels {

/** Outcome of estimating (or functionally running) one kernel. */
struct KernelResult
{
    /** Aggregated event counters for the whole grid. */
    gpusim::KernelCounters counters;
    /** Launch shape used for the latency model. */
    gpusim::LaunchConfig launch;
    /** Modeled latency decomposition. */
    gpusim::LatencyBreakdown latency;

    /** @return modeled latency in microseconds. */
    double
    us() const
    {
        return latency.total_us;
    }
};

/** Run the cost model over counters and fill in the latency field. */
inline KernelResult
finishEstimate(const gpusim::GpuSpec &spec,
               const gpusim::LaunchConfig &launch,
               const gpusim::KernelCounters &counters)
{
    KernelResult result;
    result.counters = counters;
    result.launch = launch;
    gpusim::CostModel model(spec);
    result.latency = model.estimate(launch, counters);
    return result;
}

} // namespace vqllm::kernels
