#include "kernels/reference.h"

#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"

namespace vqllm::kernels {

namespace {

/** Output rows per reference-kernel chunk (static layout). */
constexpr std::size_t kRefGrain = 16;

/**
 * Double-accumulated dot product.  The reference kernels are the test
 * oracles for the functional kernels, so they keep an accumulation
 * precision strictly better than the float paths they validate (the
 * parallelism comes from row chunking, not from lane-width tricks).
 */
double
dotDouble(const float *a, const float *b, std::size_t n)
{
    double acc = 0;
    for (std::size_t i = 0; i < n; ++i)
        acc += static_cast<double>(a[i]) * b[i];
    return acc;
}

} // namespace

Tensor<float>
referenceGemm(const Tensor<float> &x, const Tensor<float> &w_nk)
{
    vqllm_assert(x.rank() == 2 && w_nk.rank() == 2, "rank mismatch");
    vqllm_assert(x.dim(1) == w_nk.dim(1), "k mismatch");
    const std::size_t m = x.dim(0), n = w_nk.dim(0), k = x.dim(1);
    Tensor<float> y({m, n});
    par::parallelFor(m, kRefGrain, [&](const par::ChunkRange &c) {
        for (std::size_t i = c.begin; i < c.end; ++i)
            for (std::size_t j = 0; j < n; ++j)
                y.at(i, j) = static_cast<float>(dotDouble(
                    x.data() + i * k, w_nk.data() + j * k, k));
    });
    return y;
}

Tensor<float>
referenceGemv(const Tensor<float> &w_nk, const Tensor<float> &x)
{
    vqllm_assert(w_nk.rank() == 2 && x.rank() == 1, "rank mismatch");
    vqllm_assert(w_nk.dim(1) == x.dim(0), "k mismatch");
    const std::size_t n = w_nk.dim(0), k = w_nk.dim(1);
    Tensor<float> y({n});
    par::parallelFor(n, kRefGrain * 4, [&](const par::ChunkRange &c) {
        for (std::size_t j = c.begin; j < c.end; ++j)
            y[j] = static_cast<float>(
                dotDouble(w_nk.data() + j * k, x.data(), k));
    });
    return y;
}

void
softmaxInPlace(std::vector<float> &logits)
{
    if (logits.empty())
        return;
    float max_logit = logits[0];
    for (float v : logits)
        max_logit = std::max(max_logit, v);
    double sum = 0;
    for (float &v : logits) {
        v = std::exp(v - max_logit);
        sum += v;
    }
    for (float &v : logits)
        v = static_cast<float>(v / sum);
}

Tensor<float>
referenceAttentionHead(const Tensor<float> &q, const Tensor<float> &k,
                       const Tensor<float> &v)
{
    vqllm_assert(q.rank() == 1 && k.rank() == 2 && v.rank() == 2,
                 "rank mismatch");
    const std::size_t tokens = k.dim(0), channels = k.dim(1);
    vqllm_assert(q.dim(0) == channels && v.dim(0) == tokens &&
                     v.dim(1) == channels,
                 "shape mismatch");
    const double inv_sqrt_d = 1.0 / std::sqrt(
        static_cast<double>(channels));

    std::vector<float> logits(tokens);
    for (std::size_t t = 0; t < tokens; ++t)
        logits[t] = static_cast<float>(
            dotDouble(q.data(), k.data() + t * channels, channels) *
            inv_sqrt_d);
    softmaxInPlace(logits);

    Tensor<float> out({channels});
    for (std::size_t c = 0; c < channels; ++c) {
        double acc = 0;
        for (std::size_t t = 0; t < tokens; ++t)
            acc += static_cast<double>(logits[t]) * v.at(t, c);
        out[c] = static_cast<float>(acc);
    }
    return out;
}

Tensor<float>
referenceAttention(const Tensor<float> &q, const Tensor<float> &k,
                   const Tensor<float> &v)
{
    vqllm_assert(q.rank() == 2 && k.rank() == 3 && v.rank() == 3,
                 "rank mismatch");
    const std::size_t heads = q.dim(0), channels = q.dim(1);
    Tensor<float> out({heads, channels});
    par::parallelFor(heads, 1, [&](const par::ChunkRange &hc) {
      for (std::size_t h = hc.begin; h < hc.end; ++h) {
        Tensor<float> qh({channels}), kh({k.dim(1), channels}),
            vh({v.dim(1), channels});
        for (std::size_t c = 0; c < channels; ++c)
            qh[c] = q.at(h, c);
        for (std::size_t t = 0; t < k.dim(1); ++t) {
            for (std::size_t c = 0; c < channels; ++c) {
                kh.at(t, c) = k.at(h, t, c);
                vh.at(t, c) = v.at(h, t, c);
            }
        }
        auto oh = referenceAttentionHead(qh, kh, vh);
        for (std::size_t c = 0; c < channels; ++c)
            out.at(h, c) = oh[c];
      }
    });
    return out;
}

} // namespace vqllm::kernels
