#include "kernels/vq_kernels.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/bitutils.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/simd.h"
#include "gpusim/bank_conflict.h"
#include "kernels/reference.h"

namespace vqllm::kernels {

using engine::FusionLevel;
using engine::KernelPlan;
using engine::OptLevel;

TierFractions
tierHitFractions(const cache::CachePlan &plan,
                 const vq::AccessHistogram *hist)
{
    TierFractions f;
    if (plan.total_entries == 0) {
        f.global = 1.0;
        return f;
    }
    if (hist && hist->counts.size() == plan.total_entries &&
        hist->total() > 0) {
        // Frequency-ranked: entry index == rank after reordering.
        auto order = hist->frequencyOrder();
        std::uint64_t reg = 0, shared = 0, total = hist->total();
        for (std::size_t rank = 0; rank < order.size(); ++rank) {
            std::uint64_t cnt = hist->counts[order[rank]];
            if (rank < plan.n_reg)
                reg += cnt;
            else if (rank < plan.n_shared)
                shared += cnt;
        }
        f.reg = static_cast<double>(reg) / total;
        f.shared = static_cast<double>(shared) / total;
    } else {
        f.reg = static_cast<double>(plan.n_reg) / plan.total_entries;
        f.shared = static_cast<double>(plan.n_shared - plan.n_reg) /
                   plan.total_entries;
    }
    f.global = std::max(0.0, 1.0 - f.reg - f.shared);
    return f;
}

namespace {

/** Conflict multiplier over the shared-resident entry slice. */
double
sharedConflictMultiplier(const gpusim::GpuSpec &spec,
                         const cache::CachePlan &plan,
                         const vq::AccessHistogram *hist,
                         const VqCostParams &params)
{
    std::size_t resident = plan.sharedEntries();
    if (resident == 0)
        return 1.0;
    std::vector<double> weights;
    if (hist && hist->counts.size() == plan.total_entries) {
        // The shared tier holds frequency ranks [n_reg, n_shared).
        std::vector<std::uint64_t> sorted(hist->counts);
        std::sort(sorted.rbegin(), sorted.rend());
        for (std::size_t rank = plan.n_reg; rank < plan.n_shared; ++rank)
            weights.push_back(
                static_cast<double>(sorted[std::min(rank,
                                                    sorted.size() - 1)]) +
                1.0);
    } else {
        weights.assign(resident, 1.0);
    }
    return gpusim::expectedConflictMultiplier(
        spec, weights, static_cast<unsigned>(plan.entry_bytes),
        params.conflict_samples, params.conflict_seed);
}

/** Extra integer work per lookup for index decode. */
std::uint64_t
unpackOpsPerLookup(const vq::VQConfig &config)
{
    if (config.lattice)
        return 2; // base/sign split + sign application bit ops
    if (config.indexBits() % 8 != 0)
        return 3; // unaligned (12-bit) shift/mask/merge decode
    return 1;
}

/** Shared counter assembly for both analytic estimators. */
void
addCodebookCounters(gpusim::KernelCounters &c, const KernelPlan &plan,
                    const gpusim::GpuSpec &spec,
                    const vq::AccessHistogram *hist,
                    const VqCostParams &params, std::uint64_t lookups,
                    std::uint64_t dequant_bytes,
                    std::uint64_t exchanged_subvectors)
{
    const auto &cfg = plan.config;
    TierFractions f = tierHitFractions(plan.cache_plan, hist);

    // Codebook preload traffic (Load/Switch): the dataflow plan's
    // codebook bytes scaled by the fraction of each book actually cached.
    double coverage =
        plan.cache_plan.total_entries == 0
            ? 0.0
            : static_cast<double>(plan.cache_plan.n_shared) /
                  plan.cache_plan.total_entries;
    std::uint64_t preload = static_cast<std::uint64_t>(
        static_cast<double>(plan.dataflow.codebook_bytes) * coverage);
    if (plan.level == OptLevel::GC)
        preload = 0;
    c.dram_read_bytes += preload;
    c.global_to_shared_bytes += preload;

    // Global-tier lookups fetch entries through L1 with poor locality.
    double global_frac = plan.level == OptLevel::GC ? 1.0 : f.global;
    std::uint64_t global_lookups = static_cast<std::uint64_t>(
        static_cast<double>(lookups) * global_frac);
    c.dram_read_bytes += static_cast<std::uint64_t>(
        static_cast<double>(global_lookups) * (1.0 - params.gc_l1_hit) *
        params.sector_bytes);

    // Shared-tier lookups: warp-wide banked accesses with conflicts.
    std::uint64_t shared_lookups = static_cast<std::uint64_t>(
        static_cast<double>(lookups) * f.shared);
    unsigned phases =
        (static_cast<unsigned>(cfg.entryBytes()) + 3) / 4;
    std::uint64_t ideal = shared_lookups / spec.warp_size * phases;
    double mult = sharedConflictMultiplier(spec, plan.cache_plan, hist,
                                           params);
    c.smem_ideal_transactions += ideal;
    c.smem_transactions += static_cast<std::uint64_t>(
        static_cast<double>(ideal) * mult);
    c.shared_to_reg_bytes += shared_lookups * cfg.entryBytes();

    // Dequantization bookkeeping.
    c.dequant_lookups += lookups;
    c.unpack_ops += lookups * unpackOpsPerLookup(cfg);

    // Hierarchical fusion: shared-level staging round-trips the
    // dequantized data; register-level fusion shuffles instead.
    if (plan.fusion.level == FusionLevel::Shared) {
        c.reg_to_shared_bytes += dequant_bytes;
        c.shared_to_reg_bytes += dequant_bytes;
        std::uint64_t staging_trans = 2 * dequant_bytes / 128;
        c.smem_transactions += staging_trans;
        c.smem_ideal_transactions += staging_trans;
    } else if (plan.fusion.num_shuffles > 0) {
        c.shuffle_ops += exchanged_subvectors / spec.warp_size *
                         plan.fusion.num_shuffles;
    }

    // Global reduction stage of the codebook-centric dataflow.
    c.reduce_bytes += plan.dataflow.reduce_bytes;
}

} // namespace

KernelResult
estimateVqWeightKernel(const gpusim::GpuSpec &spec, const KernelPlan &plan,
                       const vq::AccessHistogram *hist,
                       const VqCostParams &params)
{
    vqllm_assert(plan.kind == engine::OpKind::GeMM ||
                     plan.kind == engine::OpKind::GeMV,
                 "weight kernel estimate requires a GeMM/GeMV plan");
    const auto &shape = plan.gemm;
    const auto &cfg = plan.config;
    const double dup = plan.dataflow.compute_duplication;

    // GeMM blocks tiling the batch dimension each re-dequantize the
    // weight strips they consume: fused dequantization cannot be shared
    // across output-row blocks.  This is the "extra operation" cost that
    // makes VQ integration quality matter most for compute-bound
    // kernels (Sec. VII-B).
    engine::BaselineTiling tiling;
    std::uint64_t redequant =
        plan.kind == engine::OpKind::GeMM
            ? std::max<std::uint64_t>(
                  1, ceilDiv(shape.m, tiling.gemm_block_rows))
            : 1;

    std::uint64_t weight_elems =
        static_cast<std::uint64_t>(shape.k) * shape.n;
    std::uint64_t subvectors = weight_elems / cfg.vector_size * redequant;
    std::uint64_t lookups = subvectors * cfg.residuals;

    gpusim::KernelCounters c;
    std::uint64_t idx_bytes = static_cast<std::uint64_t>(
        static_cast<double>(weight_elems) * cfg.bitsPerElement() / 8.0 *
        redequant);
    std::uint64_t act_bytes = static_cast<std::uint64_t>(
        static_cast<double>(shape.m) * shape.k * 2 * dup);
    c.dram_read_bytes = idx_bytes + act_bytes;
    c.dram_write_bytes = static_cast<std::uint64_t>(shape.m) * shape.n * 2;
    c.global_to_shared_bytes += idx_bytes + act_bytes;

    // Activation/index tiles stream through shared memory.
    std::uint64_t tile_trans = (idx_bytes + act_bytes) * 2 / 128;
    c.smem_transactions += tile_trans;
    c.smem_ideal_transactions += tile_trans;

    c.flops = static_cast<std::uint64_t>(
        static_cast<double>(shape.flops()) * dup);
    c.flops += lookups * cfg.vector_size; // residual accumulation adds

    // Dequantized staging volume: each stage/tile is dequantized once
    // (a residual split does not re-dequantize, only re-runs the
    // mainloop), but GeMM row blocks each re-dequantize their strips.
    std::uint64_t dequant_bytes =
        weight_elems * 2 * redequant;
    addCodebookCounters(c, plan, spec, hist, params, lookups,
                        dequant_bytes, subvectors);

    gpusim::LaunchConfig launch;
    launch.grid_blocks = plan.grid_blocks;
    launch.block = plan.block;
    launch.uses_tensor_cores = plan.uses_tensor_cores;
    return finishEstimate(spec, launch, c);
}

KernelResult
estimateVqAttentionKernel(const gpusim::GpuSpec &spec,
                          const KernelPlan &plan,
                          const vq::AccessHistogram *hist,
                          const VqCostParams &params)
{
    vqllm_assert(plan.kind == engine::OpKind::AttentionDecode,
                 "attention estimate requires an attention plan");
    const auto &shape = plan.attn;
    const auto &cfg = plan.config;

    std::uint64_t kv_elems = shape.kvElements();
    std::uint64_t subvectors = kv_elems / cfg.vector_size;
    std::uint64_t lookups = subvectors * cfg.residuals;

    gpusim::KernelCounters c;
    std::uint64_t idx_bytes = static_cast<std::uint64_t>(
        static_cast<double>(kv_elems) * cfg.bitsPerElement() / 8.0);
    std::uint64_t q_bytes = static_cast<std::uint64_t>(shape.batch) *
                            shape.heads * shape.head_dim * 2;
    c.dram_read_bytes = idx_bytes + q_bytes;
    c.dram_write_bytes = shape.outputElements() * 2;
    c.global_to_shared_bytes += idx_bytes;

    std::uint64_t tile_trans = idx_bytes * 2 / 128;
    c.smem_transactions += tile_trans;
    c.smem_ideal_transactions += tile_trans;

    c.flops = shape.flops() +
              5ull * shape.batch * shape.heads * shape.seq_len; // softmax
    c.flops += lookups * cfg.vector_size;

    // Only the V cache round-trips: the K cache dequantizes in its
    // consumption order (Fig. 6).
    std::uint64_t v_bytes = kv_elems / 2 * 2; // half the elements, FP16
    std::uint64_t v_subvectors = subvectors / 2;
    addCodebookCounters(c, plan, spec, hist, params, lookups, v_bytes,
                        v_subvectors);

    // Baseline FlashDecoding dataflow keeps its own token-split
    // reduction pass (the codebook-centric one replaces it).
    if (plan.level < OptLevel::O3) {
        engine::BaselineTiling tiling;
        std::uint64_t bh = static_cast<std::uint64_t>(shape.batch) *
                           shape.heads;
        std::uint64_t blocks_t = ceilDiv(shape.seq_len,
                                         tiling.attn_block_tokens);
        c.reduce_bytes += bh * blocks_t * (shape.head_dim + 2) * 4;
    }

    gpusim::LaunchConfig launch;
    launch.grid_blocks = plan.grid_blocks;
    launch.block = plan.block;
    launch.uses_tensor_cores = plan.uses_tensor_cores;
    return finishEstimate(spec, launch, c);
}

namespace {

/**
 * Warp-granular access recorder: batches shared-tier entry accesses of
 * one codebook into 32-lane groups and counts exact bank transactions.
 */
class WarpAccessRecorder
{
  public:
    WarpAccessRecorder(const gpusim::GpuSpec &spec,
                       gpusim::KernelCounters &counters, unsigned
                           entry_bytes)
        : spec_(spec), counters_(counters), entryBytes_(entry_bytes)
    {
    }

    void
    record(cache::Tier tier, std::uint32_t shared_offset)
    {
        if (tier == cache::Tier::Shared)
            pending_.push_back(shared_offset);
        if (static_cast<int>(pending_.size()) == spec_.warp_size)
            flush();
    }

    void
    flush()
    {
        if (pending_.empty())
            return;
        unsigned phases = (entryBytes_ + 3) / 4;
        counters_.smem_ideal_transactions += phases;
        counters_.smem_transactions +=
            gpusim::warpTransactions(spec_, pending_, entryBytes_);
        counters_.shared_to_reg_bytes +=
            pending_.size() * entryBytes_;
        pending_.clear();
    }

  private:
    const gpusim::GpuSpec &spec_;
    gpusim::KernelCounters &counters_;
    unsigned entryBytes_;
    std::vector<std::uint32_t> pending_;
};

/**
 * Per-chunk runtime state for a functional execution.
 *
 * Each statically assigned chunk of output rows/heads owns a private
 * context: private CodebookCache instances, private KernelCounters and
 * a private WarpAccessRecorder.  Chunk contexts are merged into the
 * FunctionalResult in chunk-index order, so outputs and event counters
 * are bit-identical for any thread count (the chunk layout depends only
 * on the problem size — see common/parallel.h).
 *
 * Codebook Load traffic is counted once per kernel traversal
 * (single-block-equivalent accounting): only the chunk-0 context passes
 * a counter sink to CodebookCache::load.
 */
struct FunctionalContext
{
    const KernelPlan &plan;
    gpusim::KernelCounters counters;
    cache::AccessStats stats;
    std::vector<cache::CodebookCache> caches;
    WarpAccessRecorder recorder;

    FunctionalContext(const gpusim::GpuSpec &s, const KernelPlan &p,
                      const vq::QuantizedTensor &qt, bool count_load)
        : plan(p),
          recorder(s, counters,
                   static_cast<unsigned>(qt.config.entryBytes())),
          dec_(qt.config.vector_size)
    {
        cache::CachePlan book_plan = p.cache_plan;
        book_plan.total_entries = qt.config.storedEntries();
        book_plan.n_shared =
            std::min(book_plan.n_shared, book_plan.total_entries);
        book_plan.n_reg = std::min(book_plan.n_reg, book_plan.n_shared);
        caches.reserve(qt.codebooks.size());
        for (const auto &cb : qt.codebooks)
            caches.push_back(cache::CodebookCache::load(
                cb, book_plan, p.warpsPerBlock(),
                count_load ? &counters : nullptr));
    }

    FunctionalContext(const FunctionalContext &) = delete;
    FunctionalContext &operator=(const FunctionalContext &) = delete;

    /** Dequantize one sub-vector through the caches, recording events. */
    void
    dequant(const vq::QuantizedTensor &qt, std::size_t row,
            std::size_t subspace, float *out)
    {
        const unsigned vec = qt.config.vector_size;
        for (unsigned d = 0; d < vec; ++d)
            out[d] = 0.0f;
        float *dec = dec_.data();
        std::size_t unit = qt.codebookUnit(row, subspace);
        for (unsigned stage = 0; stage < qt.config.residuals; ++stage) {
            std::size_t cb_id = unit * qt.config.residuals + stage;
            auto &cache = caches[cb_id];
            std::uint32_t logical =
                qt.indices.get(qt.indexPosition(row, subspace, stage));
            cache::Tier tier = cache.access(logical, dec);
            ++counters.dequant_lookups;
            std::uint32_t stored =
                cache.codebook().storedIndexOf(logical);
            recorder.record(tier,
                            tier == cache::Tier::Shared
                                ? cache.sharedOffsetOf(stored)
                                : 0);
            if (tier == cache::Tier::Global) {
                counters.dram_read_bytes += qt.config.entryBytes();
            }
            for (unsigned d = 0; d < vec; ++d)
                out[d] += dec[d];
        }
    }

    void
    finish()
    {
        recorder.flush();
        for (auto &cache : caches) {
            stats.reg_hits += cache.stats().reg_hits;
            stats.shared_hits += cache.stats().shared_hits;
            stats.global_hits += cache.stats().global_hits;
        }
    }

  private:
    /** Reusable decode scratch: dequant sits in every inner loop. */
    std::vector<float> dec_;
};

/** Output rows per functional chunk (one warp of rows). */
constexpr std::size_t kRowChunk = 32;

/** Heads per functional attention chunk. */
constexpr std::size_t kHeadChunk = 1;

/** Merge one chunk context's counters and stats into the result. */
void
mergeContext(FunctionalResult &result, const gpusim::KernelCounters &c,
             const cache::AccessStats &s)
{
    result.counters += c;
    result.stats.reg_hits += s.reg_hits;
    result.stats.shared_hits += s.shared_hits;
    result.stats.global_hits += s.global_hits;
}

} // namespace

FunctionalResult
runVqGemv(const KernelPlan &plan, const vq::QuantizedTensor &qt,
          const Tensor<float> &x)
{
    vqllm_assert(plan.kind == engine::OpKind::GeMV,
                 "runVqGemv requires a GeMV plan");
    vqllm_assert(x.rank() == 1 && x.dim(0) == qt.cols,
                 "x must be [k] with k == qt.cols");
    const gpusim::GpuSpec &spec = gpusim::rtx4090();

    FunctionalResult result;
    result.output = Tensor<float>({qt.rows});

    const std::size_t chunks = par::chunkCount(qt.rows, kRowChunk);
    std::vector<gpusim::KernelCounters> part_counters(chunks);
    std::vector<cache::AccessStats> part_stats(chunks);
    par::parallelFor(qt.rows, kRowChunk, [&](const par::ChunkRange &c) {
        FunctionalContext ctx(spec, plan, qt, c.index == 0);
        const unsigned vec = qt.config.vector_size;
        std::vector<float> sub(vec);
        for (std::size_t r = c.begin; r < c.end; ++r) {
            double acc = 0;
            for (std::size_t s = 0; s < qt.subspaces(); ++s) {
                ctx.dequant(qt, r, s, sub.data());
                if (plan.fusion.level == FusionLevel::Shared) {
                    ctx.counters.reg_to_shared_bytes += vec * 2;
                    ctx.counters.shared_to_reg_bytes += vec * 2;
                }
                acc += static_cast<double>(
                    simd::dot(sub.data(), x.data() + s * vec, vec));
            }
            result.output[r] = static_cast<float>(acc);
        }
        ctx.finish();
        part_counters[c.index] = ctx.counters;
        part_stats[c.index] = ctx.stats;
    });
    for (std::size_t i = 0; i < chunks; ++i)
        mergeContext(result, part_counters[i], part_stats[i]);
    if (plan.fusion.level == FusionLevel::Register)
        result.counters.shuffle_ops +=
            qt.rows * qt.subspaces() / spec.warp_size *
            plan.fusion.num_shuffles;
    return result;
}

FunctionalResult
runVqGemm(const KernelPlan &plan, const vq::QuantizedTensor &qt,
          const Tensor<float> &x)
{
    vqllm_assert(plan.kind == engine::OpKind::GeMM,
                 "runVqGemm requires a GeMM plan");
    vqllm_assert(x.rank() == 2 && x.dim(1) == qt.cols,
                 "x must be [m, k] with k == qt.cols");
    const gpusim::GpuSpec &spec = gpusim::rtx4090();
    const std::size_t m = x.dim(0);

    FunctionalResult result;
    result.output = Tensor<float>({m, qt.rows});

    // Chunks partition the *output feature* dimension (qt.rows); inside
    // a chunk the batch is processed in row blocks, and every block
    // re-dequantizes its weight strip (the GeMM re-dequantization cost
    // of Sec. VII-B).
    engine::BaselineTiling tiling;
    const std::size_t block_rows = tiling.gemm_block_rows;
    const std::size_t k = qt.cols;
    const std::size_t chunks = par::chunkCount(qt.rows, kRowChunk);
    std::vector<gpusim::KernelCounters> part_counters(chunks);
    std::vector<cache::AccessStats> part_stats(chunks);
    par::parallelFor(qt.rows, kRowChunk, [&](const par::ChunkRange &c) {
        FunctionalContext ctx(spec, plan, qt, c.index == 0);
        const unsigned vec = qt.config.vector_size;
        std::vector<float> sub(vec);
        for (std::size_t m0 = 0; m0 < m; m0 += block_rows) {
            std::size_t m1 = std::min(m, m0 + block_rows);
            for (std::size_t r = c.begin; r < c.end; ++r) {
                for (std::size_t s = 0; s < qt.subspaces(); ++s) {
                    ctx.dequant(qt, r, s, sub.data());
                    if (plan.fusion.level == FusionLevel::Shared) {
                        ctx.counters.reg_to_shared_bytes += vec * 2;
                        ctx.counters.shared_to_reg_bytes += vec * 2;
                    }
                    for (std::size_t i = m0; i < m1; ++i) {
                        float acc = simd::dot(
                            sub.data(), x.data() + i * k + s * vec, vec);
                        result.output.at(i, r) += acc;
                        ctx.counters.flops += 2 * vec;
                    }
                }
            }
        }
        ctx.finish();
        part_counters[c.index] = ctx.counters;
        part_stats[c.index] = ctx.stats;
    });
    for (std::size_t i = 0; i < chunks; ++i)
        mergeContext(result, part_counters[i], part_stats[i]);
    if (plan.fusion.level == FusionLevel::Register)
        result.counters.shuffle_ops +=
            ceilDiv(m, block_rows) * qt.rows * qt.subspaces() /
            spec.warp_size * plan.fusion.num_shuffles;
    return result;
}

FunctionalResult
runVqAttention(const KernelPlan &plan, const vq::QuantizedTensor &qt_k,
               const vq::QuantizedTensor &qt_v, const Tensor<float> &q)
{
    vqllm_assert(plan.kind == engine::OpKind::AttentionDecode,
                 "runVqAttention requires an attention plan");
    vqllm_assert(q.rank() == 2, "q must be [heads, head_dim]");
    const std::size_t heads = q.dim(0);
    const std::size_t channels = q.dim(1);
    vqllm_assert(qt_k.cols == heads * channels &&
                     qt_v.cols == heads * channels,
                 "KV column count must be heads * head_dim");
    vqllm_assert(qt_k.rows == qt_v.rows, "K/V token count mismatch");
    const std::size_t tokens = qt_k.rows;
    const gpusim::GpuSpec &spec = gpusim::rtx4090();
    const unsigned vec = qt_k.config.vector_size;
    const double inv_sqrt_d =
        1.0 / std::sqrt(static_cast<double>(channels));

    FunctionalResult result;
    result.output = Tensor<float>({heads, channels});

    // Chunks partition the head dimension; each chunk owns private K
    // and V contexts (Load traffic counted once via chunk 0).
    const std::size_t groups_per_head = channels / vec;
    const std::size_t chunks = par::chunkCount(heads, kHeadChunk);
    std::vector<gpusim::KernelCounters> part_counters(chunks);
    std::vector<cache::AccessStats> part_stats(chunks);
    par::parallelFor(heads, kHeadChunk, [&](const par::ChunkRange &c) {
        FunctionalContext ctx_k(spec, plan, qt_k, c.index == 0);
        FunctionalContext ctx_v(spec, plan, qt_v, c.index == 0);
        std::vector<float> sub(vec);
        std::vector<float> logits(tokens, 0.0f);
        for (std::size_t h = c.begin; h < c.end; ++h) {
            // Phase 1: logits via dequantized K (row-wise, layout
            // matches).
            for (std::size_t t = 0; t < tokens; ++t) {
                double acc = 0;
                for (std::size_t g = 0; g < groups_per_head; ++g) {
                    std::size_t s = h * groups_per_head + g;
                    ctx_k.dequant(qt_k, t, s, sub.data());
                    acc += static_cast<double>(simd::dot(
                        sub.data(), q.data() + h * channels + g * vec,
                        vec));
                }
                logits[t] = static_cast<float>(acc * inv_sqrt_d);
            }
            softmaxInPlace(logits);

            // Phase 2: V accumulation (column-wise: the mismatched
            // layout).
            for (std::size_t t = 0; t < tokens; ++t) {
                for (std::size_t g = 0; g < groups_per_head; ++g) {
                    std::size_t s = h * groups_per_head + g;
                    ctx_v.dequant(qt_v, t, s, sub.data());
                    if (plan.fusion.level == FusionLevel::Shared) {
                        ctx_v.counters.reg_to_shared_bytes += vec * 2;
                        ctx_v.counters.shared_to_reg_bytes += vec * 2;
                    }
                    simd::fmaInto(
                        result.output.data() + h * channels + g * vec,
                        sub.data(), logits[t], vec);
                }
            }
        }
        ctx_k.finish();
        ctx_v.finish();
        part_counters[c.index] = ctx_k.counters;
        part_counters[c.index] += ctx_v.counters;
        part_stats[c.index] = ctx_k.stats;
        part_stats[c.index].reg_hits += ctx_v.stats.reg_hits;
        part_stats[c.index].shared_hits += ctx_v.stats.shared_hits;
        part_stats[c.index].global_hits += ctx_v.stats.global_hits;
    });
    for (std::size_t i = 0; i < chunks; ++i)
        mergeContext(result, part_counters[i], part_stats[i]);
    if (plan.fusion.level == FusionLevel::Register)
        result.counters.shuffle_ops +=
            tokens * qt_v.subspaces() / spec.warp_size *
            plan.fusion.num_shuffles;
    return result;
}

} // namespace vqllm::kernels
