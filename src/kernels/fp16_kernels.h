/**
 * @file
 * FP16 baseline kernel models: cutlass-style GeMM/GeMV and the four
 * attention dataflows of paper Fig. 18 (FlashDecoding, FlashAttention,
 * and their paged variants).
 */
#pragma once

#include "engine/op_desc.h"
#include "kernels/kernel_result.h"

namespace vqllm::kernels {

/** Attention dataflow variants compared in paper Fig. 18. */
enum class AttnVariant {
    FlashDecoding,      ///< token-parallel split with a reduce pass
    FlashAttention,     ///< one block per (batch, head), sequential T
    PagedFlashDecoding, ///< FlashDecoding + paged KV indirection
    PagedFlashAttention,///< FlashAttention + paged KV indirection
};

/** @return printable variant name. */
const char *attnVariantName(AttnVariant variant);

/** Paged-KV parameters. */
struct PagingParams
{
    /** Tokens per KV page. */
    std::size_t page_tokens = 16;
    /** Bytes per page-table entry. */
    std::size_t entry_bytes = 8;
    /** Bandwidth efficiency of page-granular gathers. */
    double gather_efficiency = 0.92;
};

/** Estimate a cutlass-style FP16 GeMM: y[m,n] = x[m,k] w[k,n]. */
KernelResult fp16GemmEstimate(const gpusim::GpuSpec &spec,
                              const engine::GemmShape &shape);

/** Estimate an FP16 GeMV (m rows of activations against w[k,n]). */
KernelResult fp16GemvEstimate(const gpusim::GpuSpec &spec,
                              const engine::GemmShape &shape);

/**
 * Estimate an FP16 decode-attention kernel.
 *
 * @param spec    target GPU
 * @param shape   attention problem
 * @param variant dataflow (Fig. 18)
 * @param paging  paged-KV parameters (ignored for contiguous variants)
 */
KernelResult fp16AttentionEstimate(const gpusim::GpuSpec &spec,
                                   const engine::AttnShape &shape,
                                   AttnVariant variant =
                                       AttnVariant::FlashDecoding,
                                   const PagingParams &paging =
                                       PagingParams{});

} // namespace vqllm::kernels
