/**
 * @file
 * Fused VQ kernels over the simulated GPU.
 *
 * Two modes:
 *  - *Analytic estimation* (`estimateVq*Kernel`): closed-form counters
 *    derived from a KernelPlan at any problem scale; used by the
 *    figure/table benches.  Tier hit fractions come from a real access
 *    histogram when provided.
 *  - *Functional execution* (`runVqGemv`, `runVqAttention`): bit-exact
 *    dequantize-and-compute on host tensors through the instrumented
 *    CodebookCache, with exact warp-level bank-conflict counting; used
 *    by correctness and model-consistency tests.
 */
#pragma once

#include "engine/kernel_plan.h"
#include "kernels/kernel_result.h"
#include "tensor/tensor.h"
#include "vq/profiler.h"

namespace vqllm::kernels {

/** Calibration constants of the VQ kernel cost formulas. */
struct VqCostParams
{
    /** L1 hit rate of uncached (global-tier) entry fetches (paper:
     *  12.45% profiled for VQ-attn-GC). */
    double gc_l1_hit = 0.1245;
    /** Effective DRAM bytes fetched per missed entry access. */
    double sector_bytes = 24.0;
    /** Monte-Carlo samples for the conflict multiplier. */
    int conflict_samples = 256;
    /** Seed for the conflict estimate. */
    std::uint64_t conflict_seed = 0x5eedu;
};

/** Per-tier access shares implied by a cache plan. */
struct TierFractions
{
    double reg = 0;
    double shared = 0;
    double global = 0;
};

/**
 * Compute tier hit fractions for a plan.
 *
 * With a histogram whose size matches the plan's entry count, fractions
 * are exact sums over the frequency-ranked entries; otherwise coverage
 * is assumed uniform.
 */
TierFractions tierHitFractions(const cache::CachePlan &plan,
                               const vq::AccessHistogram *hist);

/**
 * Analytic estimate of a weight-quantized GeMM/GeMV kernel.
 *
 * @param spec target GPU
 * @param plan fully-resolved kernel plan (engine::planWeightKernel)
 * @param hist optional access histogram of one codebook
 */
KernelResult estimateVqWeightKernel(const gpusim::GpuSpec &spec,
                                    const engine::KernelPlan &plan,
                                    const vq::AccessHistogram *hist =
                                        nullptr,
                                    const VqCostParams &params =
                                        VqCostParams{});

/**
 * Analytic estimate of a KV-cache-quantized decode-attention kernel.
 */
KernelResult estimateVqAttentionKernel(const gpusim::GpuSpec &spec,
                                       const engine::KernelPlan &plan,
                                       const vq::AccessHistogram *hist =
                                           nullptr,
                                       const VqCostParams &params =
                                           VqCostParams{});

/** Outcome of a functional kernel execution. */
struct FunctionalResult
{
    /** Computed output tensor. */
    Tensor<float> output;
    /** Exactly-measured event counters. */
    gpusim::KernelCounters counters;
    /** Tier hit statistics across all codebook accesses. */
    cache::AccessStats stats;
};

/**
 * Functionally execute a VQ GeMV: y[n] = W[n,k] x[k] with W quantized.
 *
 * The execution honors the plan's cache boundaries (tier hits and exact
 * warp bank conflicts), fusion level (staging traffic vs shuffles), and
 * codebook switching order.
 *
 * @param plan kernel plan (kind must be GeMV)
 * @param qt   quantized weight, rows = n (output features), cols = k
 * @param x    [k] activation vector
 */
FunctionalResult runVqGemv(const engine::KernelPlan &plan,
                           const vq::QuantizedTensor &qt,
                           const Tensor<float> &x);

/**
 * Functionally execute a VQ GeMM: y[m,n] = x[m,k] W[n,k]^T with W
 * quantized.  Each output-row block re-dequantizes the weight strips it
 * consumes (fused kernels cannot share dequantized tiles across
 * blocks), which the counters reflect.
 *
 * @param plan kernel plan (kind must be GeMM)
 * @param qt   quantized weight, rows = n (output features), cols = k
 * @param x    [m, k] activations
 */
FunctionalResult runVqGemm(const engine::KernelPlan &plan,
                           const vq::QuantizedTensor &qt,
                           const Tensor<float> &x);

/**
 * Functionally execute VQ decode attention for one query token.
 *
 * @param plan kernel plan (kind must be AttentionDecode)
 * @param qt_k quantized K cache, rows = tokens, cols = heads*head_dim
 * @param qt_v quantized V cache, same shape
 * @param q    [heads, head_dim] query
 * @return output [heads, head_dim]
 */
FunctionalResult runVqAttention(const engine::KernelPlan &plan,
                                const vq::QuantizedTensor &qt_k,
                                const vq::QuantizedTensor &qt_v,
                                const Tensor<float> &q);

} // namespace vqllm::kernels
