#include "kernels/ewq_kernels.h"

#include "common/bitutils.h"
#include "engine/template_engine.h"
#include "llm/model_config.h"

namespace vqllm::kernels {

namespace {

/** Scale/zero metadata bytes for group-wise quantization. */
std::uint64_t
metadataBytes(std::uint64_t elements, std::size_t group_size)
{
    // FP16 scale + FP16 zero per group.
    return elements / group_size * 4;
}

} // namespace

KernelResult
ewqGemmEstimate(const gpusim::GpuSpec &spec,
                const engine::GemmShape &shape, unsigned bits,
                std::size_t group_size)
{
    gpusim::KernelCounters c;
    std::uint64_t weight_elems =
        static_cast<std::uint64_t>(shape.k) * shape.n;
    std::uint64_t w_bytes = weight_elems * bits / 8 +
                            metadataBytes(weight_elems, group_size);
    std::uint64_t act_bytes =
        static_cast<std::uint64_t>(shape.m) * shape.k * 2;
    c.dram_read_bytes = w_bytes + act_bytes;
    c.dram_write_bytes = static_cast<std::uint64_t>(shape.m) * shape.n * 2;
    c.global_to_shared_bytes = c.dram_read_bytes;
    c.flops = shape.flops();
    // Element-wise dequantization: one shift/mask + FMA per element.
    c.unpack_ops = weight_elems;
    std::uint64_t tile_trans = (w_bytes + act_bytes) * 2 / 128;
    c.smem_transactions = tile_trans;
    c.smem_ideal_transactions = tile_trans;

    gpusim::LaunchConfig launch;
    launch.block = engine::baseBlockResources(engine::OpKind::GeMM, true);
    launch.grid_blocks = ceilDiv(shape.m, 128) * ceilDiv(shape.n, 128);
    launch.uses_tensor_cores = true;
    return finishEstimate(spec, launch, c);
}

KernelResult
ewqGemvEstimate(const gpusim::GpuSpec &spec,
                const engine::GemmShape &shape, unsigned bits,
                std::size_t group_size)
{
    gpusim::KernelCounters c;
    std::uint64_t weight_elems =
        static_cast<std::uint64_t>(shape.k) * shape.n;
    std::uint64_t w_bytes = weight_elems * bits / 8 +
                            metadataBytes(weight_elems, group_size);
    std::uint64_t act_bytes =
        static_cast<std::uint64_t>(shape.m) * shape.k * 2;
    c.dram_read_bytes = w_bytes + act_bytes;
    c.dram_write_bytes = static_cast<std::uint64_t>(shape.m) * shape.n * 2;
    c.flops = shape.flops();
    c.unpack_ops = weight_elems;
    c.smem_transactions = act_bytes * 2 / 128 + 1;
    c.smem_ideal_transactions = c.smem_transactions;

    gpusim::LaunchConfig launch;
    launch.block = engine::baseBlockResources(engine::OpKind::GeMV, true);
    engine::BaselineTiling tiling;
    launch.grid_blocks = ceilDiv(shape.n, 128) * tiling.gemv_split_k;
    launch.uses_tensor_cores = false;
    return finishEstimate(spec, launch, c);
}

KernelResult
ewqAttentionEstimate(const gpusim::GpuSpec &spec,
                     const engine::AttnShape &shape, unsigned kv_bits)
{
    gpusim::KernelCounters c;
    std::uint64_t kv_elems = shape.kvElements();
    // One source of truth with the pool/pricer KV sizing: packed
    // entries plus one scale/zero pair per head_dim-element group.
    std::uint64_t kv_bytes =
        llm::kvPackedBytesInt(kv_elems, kv_bits, shape.head_dim);
    c.dram_read_bytes = kv_bytes + static_cast<std::uint64_t>(
                                       shape.batch) *
                                       shape.heads * shape.head_dim * 2;
    c.dram_write_bytes = shape.outputElements() * 2;
    c.global_to_shared_bytes = kv_bytes;
    c.flops = shape.flops() +
              5ull * shape.batch * shape.heads * shape.seq_len;
    c.unpack_ops = kv_elems;
    c.smem_transactions = kv_bytes * 2 / 128;
    c.smem_ideal_transactions = c.smem_transactions;

    engine::BaselineTiling tiling;
    std::uint64_t bh = static_cast<std::uint64_t>(shape.batch) *
                       shape.heads;
    std::uint64_t blocks_t = ceilDiv(shape.seq_len,
                                     tiling.attn_block_tokens);
    c.reduce_bytes = bh * blocks_t * (shape.head_dim + 2) * 4;

    gpusim::LaunchConfig launch;
    launch.block =
        engine::baseBlockResources(engine::OpKind::AttentionDecode, true);
    launch.grid_blocks = bh * blocks_t;
    launch.uses_tensor_cores = false;
    return finishEstimate(spec, launch, c);
}

} // namespace vqllm::kernels
