#include "compiler/disk_cache.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "common/logging.h"
#include "compiler/engine.h"
#include "obs/metrics.h"
#include "vq/serialize.h"

namespace vqllm::compiler {

namespace fs = std::filesystem;

namespace {

constexpr char kEntryMagic[4] = {'V', 'Q', 'D', 'K'};
constexpr const char *kEntrySuffix = ".vqdk";
constexpr const char *kIndexName = "index.tsv";
constexpr const char *kQuarantineDir = "quarantine";

std::uint64_t
fnv1a(const void *data, std::size_t bytes, std::uint64_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

// ---------------------------------------------------------------------
// Bounded binary reader/writer over std::string buffers.
//
// The writer mirrors vq/serialize's writePod idiom; the reader differs
// deliberately: it never fatals — any out-of-bounds or implausible
// read flips `ok` and the caller treats the entry as corrupt.  The
// checksum is verified before parsing, so a failing read here means a
// writer bug, not disk corruption, but the cache still degrades to a
// miss rather than aborting the process.

class ByteWriter
{
  public:
    template <typename T>
    void
    pod(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const char *p = reinterpret_cast<const char *>(&value);
        buf_.append(p, sizeof(T));
    }

    void
    str(const std::string &s)
    {
        pod<std::uint64_t>(s.size());
        buf_.append(s);
    }

    template <typename T>
    void
    podVec(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        pod<std::uint64_t>(v.size());
        if (!v.empty())
            buf_.append(reinterpret_cast<const char *>(v.data()),
                        v.size() * sizeof(T));
    }

    std::string take() { return std::move(buf_); }
    const std::string &buffer() const { return buf_; }

  private:
    std::string buf_;
};

class ByteReader
{
  public:
    explicit ByteReader(const std::string &buf) : buf_(buf) {}

    template <typename T>
    bool
    pod(T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        if (!ok_ || buf_.size() - off_ < sizeof(T)) {
            ok_ = false;
            return false;
        }
        std::memcpy(&value, buf_.data() + off_, sizeof(T));
        off_ += sizeof(T);
        return true;
    }

    bool
    str(std::string &s)
    {
        std::uint64_t len = 0;
        if (!pod(len) || len > buf_.size() - off_) {
            ok_ = false;
            return false;
        }
        s.assign(buf_.data() + off_, static_cast<std::size_t>(len));
        off_ += static_cast<std::size_t>(len);
        return true;
    }

    template <typename T>
    bool
    podVec(std::vector<T> &v)
    {
        std::uint64_t count = 0;
        if (!pod(count) ||
            count > (buf_.size() - off_) / sizeof(T)) {
            ok_ = false;
            return false;
        }
        v.resize(static_cast<std::size_t>(count));
        if (count > 0) {
            std::memcpy(v.data(), buf_.data() + off_,
                        static_cast<std::size_t>(count) * sizeof(T));
            off_ += static_cast<std::size_t>(count) * sizeof(T);
        }
        return true;
    }

    bool ok() const { return ok_; }
    bool atEnd() const { return ok_ && off_ == buf_.size(); }
    std::size_t offset() const { return off_; }

    /** Slice the remaining bytes (after the fixed header). */
    bool
    rest(std::string &out)
    {
        if (!ok_)
            return false;
        out.assign(buf_.data() + off_, buf_.size() - off_);
        off_ = buf_.size();
        return true;
    }

  private:
    const std::string &buf_;
    std::size_t off_ = 0;
    bool ok_ = true;
};

// ---------------------------------------------------------------------
// CompiledKernel payload: every plan/estimate field round-trips through
// raw bytes (doubles included), so a loaded artifact is binary-identical
// to the freshly compiled one it was admitted from.

template <typename E>
void
writeEnum(ByteWriter &w, E e)
{
    w.pod<std::uint32_t>(static_cast<std::uint32_t>(e));
}

template <typename E>
bool
readEnum(ByteReader &r, E &e, std::uint32_t max_value)
{
    std::uint32_t raw = 0;
    if (!r.pod(raw) || raw > max_value)
        return false;
    e = static_cast<E>(raw);
    return true;
}

void
writeVqConfig(ByteWriter &w, const vq::VQConfig &cfg)
{
    w.str(cfg.name);
    w.pod<std::uint32_t>(cfg.vector_size);
    w.pod<std::uint64_t>(cfg.num_entries);
    w.pod<std::uint32_t>(cfg.residuals);
    writeEnum(w, cfg.scope);
    w.pod<std::uint8_t>(cfg.lattice ? 1 : 0);
    w.pod<std::uint64_t>(cfg.lattice_base_entries);
}

bool
readVqConfig(ByteReader &r, vq::VQConfig &cfg)
{
    std::uint64_t u64 = 0;
    std::uint8_t u8 = 0;
    bool ok = r.str(cfg.name);
    ok = ok && r.pod(cfg.vector_size);
    ok = ok && r.pod(u64);
    cfg.num_entries = static_cast<std::size_t>(u64);
    ok = ok && r.pod(cfg.residuals);
    ok = ok && readEnum(r, cfg.scope, 2);
    ok = ok && r.pod(u8);
    cfg.lattice = u8 != 0;
    ok = ok && r.pod(u64);
    cfg.lattice_base_entries = static_cast<std::size_t>(u64);
    return ok;
}

void
writeAxes(ByteWriter &w, const std::vector<engine::Axis> &axes)
{
    w.pod<std::uint64_t>(axes.size());
    for (engine::Axis a : axes)
        writeEnum(w, a);
}

bool
readAxes(ByteReader &r, std::vector<engine::Axis> &axes)
{
    std::uint64_t count = 0;
    if (!r.pod(count) || count > (1u << 8))
        return false;
    axes.resize(static_cast<std::size_t>(count));
    for (auto &a : axes)
        if (!readEnum(r, a, 6))
            return false;
    return true;
}

void
writeFusion(ByteWriter &w, const engine::FusionPlan &f)
{
    writeEnum(w, f.level);
    w.pod<std::int32_t>(f.compute_layout);
    w.pod<std::int32_t>(f.num_shuffles);
    w.pod<std::int32_t>(f.mapping.mini_warp_size);
    w.podVec(f.mapping.lane_map);
    w.podVec(f.mapping.shuffle_offsets);
    w.pod<std::uint8_t>(f.layout_matches ? 1 : 0);
}

bool
readFusion(ByteReader &r, engine::FusionPlan &f)
{
    std::uint8_t u8 = 0;
    bool ok = readEnum(r, f.level, 1);
    ok = ok && r.pod(f.compute_layout);
    ok = ok && r.pod(f.num_shuffles);
    ok = ok && r.pod(f.mapping.mini_warp_size);
    ok = ok && r.podVec(f.mapping.lane_map);
    ok = ok && r.podVec(f.mapping.shuffle_offsets);
    ok = ok && r.pod(u8);
    f.layout_matches = u8 != 0;
    return ok;
}

void
writeBlock(ByteWriter &w, const gpusim::BlockResources &b)
{
    w.pod<std::int32_t>(b.threads);
    w.pod<std::uint64_t>(b.smem_bytes);
    w.pod<std::int32_t>(b.regs_per_thread);
}

bool
readBlock(ByteReader &r, gpusim::BlockResources &b)
{
    std::uint64_t u64 = 0;
    bool ok = r.pod(b.threads);
    ok = ok && r.pod(u64);
    b.smem_bytes = static_cast<std::size_t>(u64);
    ok = ok && r.pod(b.regs_per_thread);
    return ok;
}

void
writePlan(ByteWriter &w, const engine::KernelPlan &p)
{
    writeEnum(w, p.kind);
    writeVqConfig(w, p.config);
    writeEnum(w, p.level);
    w.pod<std::uint64_t>(p.gemm.m);
    w.pod<std::uint64_t>(p.gemm.n);
    w.pod<std::uint64_t>(p.gemm.k);
    w.pod<std::uint64_t>(p.attn.batch);
    w.pod<std::uint64_t>(p.attn.heads);
    w.pod<std::uint64_t>(p.attn.seq_len);
    w.pod<std::uint64_t>(p.attn.head_dim);
    w.pod<std::uint64_t>(p.attn.kv_heads);
    w.pod<std::uint64_t>(p.cache_plan.n_reg);
    w.pod<std::uint64_t>(p.cache_plan.n_shared);
    w.pod<std::uint64_t>(p.cache_plan.total_entries);
    w.pod<std::uint64_t>(p.cache_plan.entry_bytes);
    writeAxes(w, p.dataflow.switch_axes);
    writeAxes(w, p.dataflow.conflict_axes);
    w.pod<double>(p.dataflow.split_factor_raw);
    w.pod<std::uint64_t>(p.dataflow.split);
    w.pod<std::uint64_t>(p.dataflow.max_split);
    w.pod<std::uint64_t>(p.dataflow.baseline_codebook_bytes);
    w.pod<std::uint64_t>(p.dataflow.codebook_bytes);
    w.pod<std::uint64_t>(p.dataflow.reduce_bytes);
    w.pod<std::uint64_t>(p.dataflow.output_bytes);
    w.pod<double>(p.dataflow.compute_duplication);
    writeFusion(w, p.fusion);
    writeFusion(w, p.fusion_k);
    writeBlock(w, p.block);
    w.pod<std::uint64_t>(p.grid_blocks);
    w.pod<std::uint8_t>(p.uses_tensor_cores ? 1 : 0);
    w.pod<std::uint64_t>(p.total_books);
    w.pod<std::uint64_t>(p.resident_books);
    w.pod<std::uint64_t>(p.switches_per_block);
}

bool
readPlan(ByteReader &r, engine::KernelPlan &p)
{
    auto sz = [&r](std::size_t &field) {
        std::uint64_t u64 = 0;
        bool ok = r.pod(u64);
        field = static_cast<std::size_t>(u64);
        return ok;
    };
    std::uint8_t u8 = 0;
    bool ok = readEnum(r, p.kind, 2);
    ok = ok && readVqConfig(r, p.config);
    ok = ok && readEnum(r, p.level, 5);
    ok = ok && sz(p.gemm.m) && sz(p.gemm.n) && sz(p.gemm.k);
    ok = ok && sz(p.attn.batch) && sz(p.attn.heads) &&
         sz(p.attn.seq_len) && sz(p.attn.head_dim) && sz(p.attn.kv_heads);
    ok = ok && sz(p.cache_plan.n_reg) && sz(p.cache_plan.n_shared) &&
         sz(p.cache_plan.total_entries) && sz(p.cache_plan.entry_bytes);
    ok = ok && readAxes(r, p.dataflow.switch_axes);
    ok = ok && readAxes(r, p.dataflow.conflict_axes);
    ok = ok && r.pod(p.dataflow.split_factor_raw);
    ok = ok && r.pod(p.dataflow.split);
    ok = ok && r.pod(p.dataflow.max_split);
    ok = ok && r.pod(p.dataflow.baseline_codebook_bytes);
    ok = ok && r.pod(p.dataflow.codebook_bytes);
    ok = ok && r.pod(p.dataflow.reduce_bytes);
    ok = ok && r.pod(p.dataflow.output_bytes);
    ok = ok && r.pod(p.dataflow.compute_duplication);
    ok = ok && readFusion(r, p.fusion);
    ok = ok && readFusion(r, p.fusion_k);
    ok = ok && readBlock(r, p.block);
    ok = ok && r.pod(p.grid_blocks);
    ok = ok && r.pod(u8);
    p.uses_tensor_cores = u8 != 0;
    ok = ok && r.pod(p.total_books);
    ok = ok && r.pod(p.resident_books);
    ok = ok && r.pod(p.switches_per_block);
    return ok;
}

void
writeResult(ByteWriter &w, const kernels::KernelResult &res)
{
    const auto &c = res.counters;
    w.pod<std::uint64_t>(c.dram_read_bytes);
    w.pod<std::uint64_t>(c.dram_write_bytes);
    w.pod<std::uint64_t>(c.global_to_shared_bytes);
    w.pod<std::uint64_t>(c.shared_to_reg_bytes);
    w.pod<std::uint64_t>(c.reg_to_shared_bytes);
    w.pod<std::uint64_t>(c.smem_transactions);
    w.pod<std::uint64_t>(c.smem_ideal_transactions);
    w.pod<std::uint64_t>(c.flops);
    w.pod<std::uint64_t>(c.dequant_lookups);
    w.pod<std::uint64_t>(c.unpack_ops);
    w.pod<std::uint64_t>(c.shuffle_ops);
    w.pod<std::uint64_t>(c.reduce_bytes);
    w.pod<std::uint64_t>(res.launch.grid_blocks);
    writeBlock(w, res.launch.block);
    w.pod<std::uint8_t>(res.launch.uses_tensor_cores ? 1 : 0);
    const auto &l = res.latency;
    w.pod<double>(l.dram_us);
    w.pod<double>(l.smem_us);
    w.pod<double>(l.compute_us);
    w.pod<double>(l.latency_bound_us);
    w.pod<double>(l.reduce_us);
    w.pod<double>(l.launch_us);
    w.pod<double>(l.total_us);
    w.pod<std::int32_t>(l.occupancy.blocks_per_sm);
    w.pod<std::int32_t>(l.occupancy.warps_per_sm);
    w.pod<double>(l.occupancy.occupancy);
    writeEnum(w, l.occupancy.limiter);
    w.pod<double>(l.grid_fill);
    w.pod<double>(l.throughput_factor);
}

bool
readResult(ByteReader &r, kernels::KernelResult &res)
{
    auto &c = res.counters;
    std::uint8_t u8 = 0;
    bool ok = r.pod(c.dram_read_bytes);
    ok = ok && r.pod(c.dram_write_bytes);
    ok = ok && r.pod(c.global_to_shared_bytes);
    ok = ok && r.pod(c.shared_to_reg_bytes);
    ok = ok && r.pod(c.reg_to_shared_bytes);
    ok = ok && r.pod(c.smem_transactions);
    ok = ok && r.pod(c.smem_ideal_transactions);
    ok = ok && r.pod(c.flops);
    ok = ok && r.pod(c.dequant_lookups);
    ok = ok && r.pod(c.unpack_ops);
    ok = ok && r.pod(c.shuffle_ops);
    ok = ok && r.pod(c.reduce_bytes);
    ok = ok && r.pod(res.launch.grid_blocks);
    ok = ok && readBlock(r, res.launch.block);
    ok = ok && r.pod(u8);
    res.launch.uses_tensor_cores = u8 != 0;
    auto &l = res.latency;
    ok = ok && r.pod(l.dram_us);
    ok = ok && r.pod(l.smem_us);
    ok = ok && r.pod(l.compute_us);
    ok = ok && r.pod(l.latency_bound_us);
    ok = ok && r.pod(l.reduce_us);
    ok = ok && r.pod(l.launch_us);
    ok = ok && r.pod(l.total_us);
    ok = ok && r.pod(l.occupancy.blocks_per_sm);
    ok = ok && r.pod(l.occupancy.warps_per_sm);
    ok = ok && r.pod(l.occupancy.occupancy);
    ok = ok && readEnum(r, l.occupancy.limiter, 3);
    ok = ok && r.pod(l.grid_fill);
    ok = ok && r.pod(l.throughput_factor);
    return ok;
}

} // namespace

// ---------------------------------------------------------------------
// Keys, filenames, entry framing

std::string
DiskCache::buildFingerprint()
{
    std::ostringstream fp;
    // The struct sizes change whenever a serialized field is added,
    // removed or widened — the cheap, deterministic proxy for "the
    // payload layout could differ from what this binary expects".
    // Semantic changes at unchanged layout must bump the version.
    fp << "v" << kDiskCacheFormatVersion << "/plan"
       << sizeof(engine::KernelPlan) << "/res"
       << sizeof(kernels::KernelResult) << "/qt"
       << vq::kQuantFormatVersion;
    return fp.str();
}

std::string
DiskCache::fullKey(const std::string &key, EntryKind kind)
{
    std::string full =
        kind == EntryKind::Codebook ? "codebook|" : "kernel|";
    full += key;
    full += "|build=";
    full += buildFingerprint();
    return full;
}

std::string
DiskCache::keyToFilename(const std::string &full_key)
{
    // Two independent 64-bit FNV streams give a 128-bit content
    // address; the embedded key in the entry catches the residual
    // collision risk at read time.
    std::uint64_t h1 =
        fnv1a(full_key.data(), full_key.size(), 14695981039346656037ull);
    std::uint64_t h2 =
        fnv1a(full_key.data(), full_key.size(), 0x9e3779b97f4a7c15ull);
    char name[33];
    std::snprintf(name, sizeof(name), "%016llx%016llx",
                  static_cast<unsigned long long>(h1),
                  static_cast<unsigned long long>(h2));
    return std::string(name) + kEntrySuffix;
}

std::string
DiskCache::makeEntryBlob(const std::string &full_key, EntryKind kind,
                         const std::string &payload)
{
    ByteWriter w;
    w.pod(kEntryMagic);
    w.pod<std::uint32_t>(kDiskCacheFormatVersion);
    w.pod<std::uint8_t>(static_cast<std::uint8_t>(kind));
    w.str(full_key);
    w.pod<std::uint64_t>(payload.size());
    std::string blob = w.take();
    blob += payload;
    std::uint64_t checksum =
        fnv1a(payload.data(), payload.size(), 14695981039346656037ull);
    blob.append(reinterpret_cast<const char *>(&checksum),
                sizeof(checksum));
    return blob;
}

// ---------------------------------------------------------------------
// Construction and the per-directory registry

DiskCache::DiskCache(const std::string &dir,
                     const DiskCacheOptions &options)
    : options_(options)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        vqllm_fatal("cannot create kernel-cache directory ", dir, ": ",
                    ec.message());
    fs::path canonical = fs::weakly_canonical(dir, ec);
    dir_ = ec ? dir : canonical.string();

    std::lock_guard<std::mutex> lock(mutex_);
    loadIndexLocked();
}

DiskCache::~DiskCache()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (index_dirty_)
        flushIndexLocked();
}

std::shared_ptr<DiskCache>
DiskCache::open(const std::string &dir, const DiskCacheOptions &options)
{
    // Weak registry: replicas alive at the same time share one
    // instance (one index view, one set of counters); once the last
    // user drops its reference, a later open() re-reads the directory.
    static std::mutex registry_mutex;
    static std::map<std::string, std::weak_ptr<DiskCache>> registry;

    std::error_code ec;
    fs::create_directories(dir, ec);
    fs::path canonical = fs::weakly_canonical(dir, ec);
    std::string key = ec ? dir : canonical.string();

    std::lock_guard<std::mutex> lock(registry_mutex);
    auto &slot = registry[key];
    if (auto existing = slot.lock())
        return existing;
    auto fresh = std::make_shared<DiskCache>(dir, options);
    slot = fresh;
    return fresh;
}

// ---------------------------------------------------------------------
// Index: filename \t bytes \t last-use tick, one entry per line.

void
DiskCache::loadIndexLocked()
{
    index_.clear();
    clock_ = 0;
    std::ifstream in(fs::path(dir_) / kIndexName);
    if (!in) {
        rebuildIndexLocked();
        refreshSizeStatsLocked();
        return;
    }
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream fields(line);
        std::string filename;
        IndexEntry entry;
        if (!(fields >> filename >> entry.bytes >> entry.tick)) {
            // A torn or hand-edited index is advisory state only —
            // rebuild from the directory instead of trusting it.
            rebuildIndexLocked();
            refreshSizeStatsLocked();
            return;
        }
        index_[filename] = entry;
        clock_ = std::max(clock_, entry.tick);
    }
    // Entries may have been evicted (or admitted) by another process
    // since the index was written; reconcile against the directory.
    for (auto it = index_.begin(); it != index_.end();) {
        std::error_code ec;
        if (!fs::is_regular_file(fs::path(dir_) / it->first, ec))
            it = index_.erase(it);
        else
            ++it;
    }
    refreshSizeStatsLocked();
}

void
DiskCache::rebuildIndexLocked()
{
    index_.clear();
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(dir_, ec)) {
        if (!e.is_regular_file())
            continue;
        const fs::path &p = e.path();
        if (p.extension() != kEntrySuffix)
            continue;
        IndexEntry entry;
        std::error_code size_ec;
        entry.bytes = fs::file_size(p, size_ec);
        if (size_ec)
            continue;
        entry.tick = 0;
        index_[p.filename().string()] = entry;
    }
    clock_ = 0;
}

void
DiskCache::flushIndexLocked()
{
    index_dirty_ = false;
    fs::path tmp =
        fs::path(dir_) / ("tmp-index-" + std::to_string(temp_seq_++));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return; // Advisory state: losing it only costs LRU order.
        for (const auto &[filename, entry] : index_)
            out << filename << '\t' << entry.bytes << '\t' << entry.tick
                << '\n';
    }
    std::error_code ec;
    fs::rename(tmp, fs::path(dir_) / kIndexName, ec);
    if (ec)
        fs::remove(tmp, ec);
}

void
DiskCache::refreshSizeStatsLocked()
{
    total_bytes_ = 0;
    for (const auto &[filename, entry] : index_)
        total_bytes_ += entry.bytes;
    stats_.bytes = total_bytes_;
    stats_.entries = index_.size();
}

void
DiskCache::touchLocked(const std::string &filename)
{
    // Adopt entries admitted by another process (absent from the local
    // index) with their on-disk size; refresh the size either way.
    std::error_code ec;
    auto size = fs::file_size(fs::path(dir_) / filename, ec);
    auto &entry = index_[filename];
    if (!ec)
        entry.bytes = size;
    entry.tick = ++clock_;
    refreshSizeStatsLocked();
    // Deferred flush: a hit must not cost an index rewrite.  The next
    // admit/quarantine (or the destructor) persists the new ticks.
    index_dirty_ = true;
}

void
DiskCache::admitLocked(const std::string &filename,
                       const std::string &blob)
{
    fs::path tmp = fs::path(dir_) /
                   ("tmp-" + std::to_string(::getpid()) + "-" +
                    std::to_string(temp_seq_++));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            vqllm_warn("disk cache: cannot write ", tmp.string(),
                       "; entry not admitted");
            return;
        }
        out.write(blob.data(),
                  static_cast<std::streamsize>(blob.size()));
        if (!out) {
            std::error_code ec;
            fs::remove(tmp, ec);
            vqllm_warn("disk cache: short write to ", tmp.string(),
                       "; entry not admitted");
            return;
        }
    }
    std::error_code ec;
    fs::rename(tmp, fs::path(dir_) / filename, ec);
    if (ec) {
        fs::remove(tmp, ec);
        vqllm_warn("disk cache: cannot admit ", filename, ": ",
                   ec.message());
        return;
    }
    ++stats_.admits;
    auto &entry = index_[filename];
    entry.bytes = blob.size();
    entry.tick = ++clock_;
    evictLocked(filename);
    refreshSizeStatsLocked();
    flushIndexLocked();
}

void
DiskCache::evictLocked(const std::string &keep_filename)
{
    auto total = [this] {
        std::uint64_t sum = 0;
        for (const auto &[filename, entry] : index_)
            sum += entry.bytes;
        return sum;
    };
    while (total() > options_.capacity_bytes && index_.size() > 1) {
        // Least tick wins; std::map order breaks ties
        // deterministically.  Never evict the just-admitted entry.
        auto victim = index_.end();
        for (auto it = index_.begin(); it != index_.end(); ++it) {
            if (it->first == keep_filename)
                continue;
            if (victim == index_.end() ||
                it->second.tick < victim->second.tick)
                victim = it;
        }
        if (victim == index_.end())
            break;
        std::error_code ec;
        fs::remove(fs::path(dir_) / victim->first, ec);
        index_.erase(victim);
        ++stats_.evictions;
    }
}

void
DiskCache::quarantineLocked(const std::string &filename)
{
    std::error_code ec;
    fs::path qdir = fs::path(dir_) / kQuarantineDir;
    fs::create_directories(qdir, ec);
    fs::path src = fs::path(dir_) / filename;
    fs::path dst = qdir / filename;
    // Keep prior quarantined generations of the same entry around.
    for (int n = 1; fs::exists(dst, ec); ++n)
        dst = qdir / (filename + "." + std::to_string(n));
    fs::rename(src, dst, ec);
    if (ec)
        fs::remove(src, ec);
    ++stats_.quarantined;
    index_.erase(filename);
    refreshSizeStatsLocked();
    flushIndexLocked();
    vqllm_warn("disk cache: quarantined corrupt entry ", filename);
}

// ---------------------------------------------------------------------
// Entry read path (shared by kernels and codebooks)

bool
DiskCache::readEntryLocked(const std::string &filename,
                           const std::string &full_key, EntryKind kind,
                           std::string &payload)
{
    std::string blob;
    {
        std::ifstream in(fs::path(dir_) / filename, std::ios::binary);
        if (!in)
            return false; // Never written (or evicted): a clean miss.
        std::ostringstream buf;
        buf << in.rdbuf();
        blob = std::move(buf).str();
    }

    ByteReader r(blob);
    char magic[4] = {};
    std::uint32_t version = 0;
    std::uint8_t kind_raw = 0;
    std::string embedded_key;
    std::uint64_t payload_len = 0;
    bool header_ok = r.pod(magic) &&
                     std::memcmp(magic, kEntryMagic, 4) == 0 &&
                     r.pod(version) &&
                     version == kDiskCacheFormatVersion &&
                     r.pod(kind_raw) && r.str(embedded_key) &&
                     r.pod(payload_len);
    if (!header_ok) {
        quarantineLocked(filename);
        return false;
    }
    std::string rest;
    if (!r.rest(rest) || payload_len > rest.size() ||
        rest.size() - payload_len != sizeof(std::uint64_t)) {
        quarantineLocked(filename); // Truncated or padded entry.
        return false;
    }
    std::uint64_t stored_checksum = 0;
    std::memcpy(&stored_checksum, rest.data() + payload_len,
                sizeof(stored_checksum));
    std::uint64_t checksum = fnv1a(rest.data(), payload_len,
                                   14695981039346656037ull);
    if (checksum != stored_checksum) {
        quarantineLocked(filename);
        return false;
    }
    // The entry is intact; a key or kind mismatch means a filename
    // collision with a different request — that is the *other* entry's
    // slot, so leave the file alone and miss cleanly.
    if (kind_raw != static_cast<std::uint8_t>(kind) ||
        embedded_key != full_key)
        return false;
    payload.assign(rest.data(), payload_len);
    return true;
}

// ---------------------------------------------------------------------
// Kernel artifacts

std::shared_ptr<const CompiledKernel>
DiskCache::loadKernel(const std::string &engine_key)
{
    std::string key = fullKey(engine_key, EntryKind::Kernel);
    std::string filename = keyToFilename(key);

    std::lock_guard<std::mutex> lock(mutex_);
    std::string payload;
    if (!readEntryLocked(filename, key, EntryKind::Kernel, payload)) {
        ++stats_.misses;
        return nullptr;
    }

    auto artifact = std::shared_ptr<CompiledKernel>(new CompiledKernel);
    ByteReader r(payload);
    std::string source;
    bool ok = readPlan(r, artifact->plan_) &&
              readResult(r, artifact->estimate_) &&
              r.str(artifact->symbol_) && r.str(source) && r.atEnd();
    if (!ok) {
        // The checksum passed, so this is a writer/reader mismatch
        // rather than disk corruption — still degrade to a miss.
        quarantineLocked(filename);
        ++stats_.misses;
        return nullptr;
    }
    // Pre-fill the memoized source so the loaded artifact never
    // re-emits (and is observably identical to the stored one).
    std::call_once(artifact->source_once_,
                   [&] { artifact->source_ = std::move(source); });
    ++stats_.hits;
    touchLocked(filename);
    return artifact;
}

void
DiskCache::storeKernel(const std::string &engine_key,
                       const CompiledKernel &artifact)
{
    std::string key = fullKey(engine_key, EntryKind::Kernel);
    std::string filename = keyToFilename(key);

    ByteWriter w;
    writePlan(w, artifact.plan_);
    writeResult(w, artifact.estimate_);
    w.str(artifact.symbol_);
    // Force emission so the persisted entry is the complete artifact
    // (plan + cost + CUDA source) the issue's tier protocol promises.
    w.str(artifact.source());
    std::string blob = makeEntryBlob(key, EntryKind::Kernel, w.take());

    std::lock_guard<std::mutex> lock(mutex_);
    admitLocked(filename, blob);
}

// ---------------------------------------------------------------------
// Codebooks

bool
DiskCache::loadCodebook(const std::string &user_key,
                        vq::QuantizedTensor &out)
{
    std::string key = fullKey(user_key, EntryKind::Codebook);
    std::string filename = keyToFilename(key);

    std::lock_guard<std::mutex> lock(mutex_);
    std::string payload;
    if (!readEntryLocked(filename, key, EntryKind::Codebook, payload)) {
        ++stats_.misses;
        return false;
    }
    // The checksum already validated the payload bytes, so the fatal
    // paths inside loadQuantizedTensor are unreachable here: the
    // payload is exactly what saveQuantizedTensor produced.
    std::istringstream in(payload);
    out = vq::loadQuantizedTensor(in);
    ++stats_.hits;
    touchLocked(filename);
    return true;
}

void
DiskCache::storeCodebook(const std::string &user_key,
                         const vq::QuantizedTensor &qt)
{
    std::string key = fullKey(user_key, EntryKind::Codebook);
    std::string filename = keyToFilename(key);

    std::ostringstream payload;
    vq::saveQuantizedTensor(qt, payload);
    std::string blob =
        makeEntryBlob(key, EntryKind::Codebook, std::move(payload).str());

    std::lock_guard<std::mutex> lock(mutex_);
    admitLocked(filename, blob);
}

// ---------------------------------------------------------------------
// Observability

DiskCacheStats
DiskCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
DiskCache::exportMetrics(obs::MetricsRegistry &registry,
                         const std::string &prefix) const
{
    DiskCacheStats s = stats();
    registry.counter(prefix + ".hits").add(s.hits);
    registry.counter(prefix + ".misses").add(s.misses);
    registry.counter(prefix + ".admits").add(s.admits);
    registry.counter(prefix + ".evictions").add(s.evictions);
    registry.counter(prefix + ".quarantined").add(s.quarantined);
    registry.gauge(prefix + ".bytes").set(static_cast<double>(s.bytes));
    registry.gauge(prefix + ".entries")
        .set(static_cast<double>(s.entries));
    registry.gauge(prefix + ".hit_rate").set(s.hitRate());
}

} // namespace vqllm::compiler
