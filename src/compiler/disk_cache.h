/**
 * @file
 * compiler::DiskCache — the persistent second tier of the kernel cache.
 *
 * The in-memory cache behind compiler::Engine dies with the process, so
 * every replica cold-starts by re-planning kernels it has compiled a
 * thousand times before.  This module adds an on-disk store of
 * CompiledKernel artifacts (plan + cost estimate + emitted CUDA source)
 * and fitted codebooks (via the vq/serialize round-trip), shared across
 * processes and fleet replicas:
 *
 *   auto disk = compiler::DiskCache::open("/var/cache/vqllm-kernels");
 *   engine.setDiskCache(disk);   // read-through / write-behind tier
 *
 * ## Tier protocol (DESIGN.md §13)
 *
 * - **Key.**  Entries are addressed by the Engine's canonical
 *   cacheKey() extended with buildFingerprint() — a digest of the
 *   on-disk format version, the serialized struct layouts and the
 *   vq serialization version.  Artifacts from an older build hash to
 *   different filenames, so stale entries are never *read*; they age
 *   out of the directory through normal LRU eviction.
 * - **Admit.**  Write-behind on compile miss: the artifact (source
 *   forced, so the stored entry is complete) is serialized to a
 *   temp file in the cache directory and atomically renamed into
 *   place — a crashed writer leaves a temp file, never a torn entry.
 * - **Evict.**  The directory is size-capped; an index file
 *   (index.tsv: filename, bytes, last-use tick on a logical clock)
 *   drives least-recently-used eviction.  A missing or corrupt index
 *   is rebuilt from a directory scan, never trusted blindly.
 * - **Quarantine.**  A truncated, bit-flipped or wrong-magic entry is
 *   moved into a quarantine/ subdirectory and counted; corruption is
 *   always a clean miss, never a crash or a wrong kernel.  Payloads
 *   are checksummed (FNV-1a) and verified *before* parsing, so the
 *   deserializers only ever see bytes the writer produced.
 *
 * ## Bit-identity
 *
 * Deserialized artifacts are binary-identical to freshly compiled ones
 * (every plan/estimate field round-trips through raw little-endian
 * bytes, doubles included), so pricing — and therefore every serving
 * report — is bit-identical whether a kernel came from a fresh compile
 * or from disk.  A disk hit still counts as an in-memory *miss* in
 * Engine::stats(), keeping cache-off reports byte-identical.
 *
 * ## Concurrency
 *
 * One instance is thread-safe (internal mutex).  Multiple instances —
 * other threads via open()'s per-directory registry, or other
 * *processes* — may share a directory: admissions are atomic renames,
 * readers tolerate files evicted underneath them, and entries found on
 * disk but missing from the local index are adopted at read time.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace vqllm::obs {
class MetricsRegistry;
}

namespace vqllm::vq {
struct QuantizedTensor;
}

namespace vqllm::compiler {

class CompiledKernel;

/** Bump when the entry format or payload layout changes. */
inline constexpr std::uint32_t kDiskCacheFormatVersion = 1;

/** Sizing policy of one cache directory. */
struct DiskCacheOptions
{
    /**
     * Byte cap on the sum of retained entries; least-recently-used
     * entries are evicted past it.  The just-admitted entry is never
     * evicted, so a single oversized artifact still persists.
     */
    std::uint64_t capacity_bytes = 256ull * 1024 * 1024;
};

/** Observability counters (monotonic over an instance's life). */
struct DiskCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /** Entries written (admission = one atomic rename). */
    std::uint64_t admits = 0;
    /** Entries removed by the LRU capacity policy. */
    std::uint64_t evictions = 0;
    /** Corrupt entries moved to quarantine/. */
    std::uint64_t quarantined = 0;
    /** Bytes currently retained (per the index). */
    std::uint64_t bytes = 0;
    /** Entries currently retained (per the index). */
    std::uint64_t entries = 0;

    std::uint64_t
    lookups() const
    {
        return hits + misses;
    }

    /** @return hits / lookups ([0,1]; 1 when no lookup happened). */
    double
    hitRate() const
    {
        return lookups() > 0
                   ? static_cast<double>(hits) /
                         static_cast<double>(lookups())
                   : 1.0;
    }
};

/**
 * A persistent, size-capped, LRU-evicted store of compiled-kernel
 * artifacts and fitted codebooks.  See the file comment for the tier
 * protocol; see Engine::setDiskCache for the read-through wiring.
 */
class DiskCache
{
  public:
    /**
     * Open (and create if needed) a cache directory.  The index is
     * loaded — or rebuilt from a directory scan when missing/corrupt.
     */
    explicit DiskCache(const std::string &dir,
                       const DiskCacheOptions &options =
                           DiskCacheOptions{});

    /** Flushes deferred LRU-tick updates to the index file. */
    ~DiskCache();

    /**
     * Shared instance for a directory (keyed by canonical path):
     * replicas of one fleet — or any two engines in one process —
     * pointed at the same directory share one store, one index view
     * and one set of counters.  Instances are dropped when the last
     * reference dies; a later open() re-reads the directory.
     */
    static std::shared_ptr<DiskCache>
    open(const std::string &dir,
         const DiskCacheOptions &options = DiskCacheOptions{});

    /**
     * Look up a kernel artifact by the Engine's canonical cache key.
     *
     * @return the deserialized artifact (source pre-filled), or
     *         nullptr on miss.  Corrupt entries are quarantined and
     *         reported as misses; an entry whose embedded key does not
     *         match (hash collision) is a clean miss.
     */
    std::shared_ptr<const CompiledKernel>
    loadKernel(const std::string &engine_key);

    /**
     * Persist a kernel artifact under the Engine's canonical key.
     * Forces source emission so the stored entry carries the complete
     * artifact; idempotent (re-admitting overwrites atomically).
     */
    void storeKernel(const std::string &engine_key,
                     const CompiledKernel &artifact);

    /**
     * Look up a fitted codebook (a serialized QuantizedTensor) under a
     * caller-chosen key — quantization config + tensor identity.
     *
     * @return true and fill `out` on hit; false on miss (including
     *         quarantined corruption).
     */
    bool loadCodebook(const std::string &key, vq::QuantizedTensor &out);

    /** Persist a fitted codebook under a caller-chosen key. */
    void storeCodebook(const std::string &key,
                       const vq::QuantizedTensor &qt);

    /** @return a snapshot of the counters. */
    DiskCacheStats stats() const;

    /** Publish the counters under `<prefix>.`-qualified names. */
    void exportMetrics(obs::MetricsRegistry &registry,
                       const std::string &prefix) const;

    /** @return the cache directory (canonical path). */
    const std::string &dir() const { return dir_; }

    const DiskCacheOptions &options() const { return options_; }

    /**
     * Build/format fingerprint mixed into every entry key: the disk
     * format version, the byte layouts of the serialized structs, and
     * the vq serialization version.  Deterministic across rebuilds of
     * unchanged code (so CI's cached directory stays warm), different
     * whenever the serialized representation could have changed.
     */
    static std::string buildFingerprint();

  private:
    /** On-disk entry kinds (the tag byte after the header). */
    enum class EntryKind : std::uint8_t {
        Kernel = 0,
        Codebook = 1,
    };

    struct IndexEntry
    {
        std::uint64_t bytes = 0;
        /** Logical-clock tick of the last use (admit or hit). */
        std::uint64_t tick = 0;
    };

    /** Full entry key: engine/caller key + build fingerprint. */
    static std::string fullKey(const std::string &key, EntryKind kind);
    /** Content-addressed filename of a full key (32 hex + suffix). */
    static std::string keyToFilename(const std::string &full_key);

    void loadIndexLocked();
    void rebuildIndexLocked();
    void flushIndexLocked();
    void touchLocked(const std::string &filename);
    void admitLocked(const std::string &filename,
                     const std::string &blob);
    void evictLocked(const std::string &keep_filename);
    void quarantineLocked(const std::string &filename);
    void refreshSizeStatsLocked();

    /**
     * Read + validate an entry file: magic, version, kind, embedded
     * key, payload checksum.  On success returns true and fills
     * `payload`; corrupt entries are quarantined, key/kind mismatches
     * are clean misses (both return false).
     */
    bool readEntryLocked(const std::string &filename,
                         const std::string &full_key, EntryKind kind,
                         std::string &payload);
    /** Serialize header + payload + checksum into one blob. */
    static std::string makeEntryBlob(const std::string &full_key,
                                     EntryKind kind,
                                     const std::string &payload);

    std::string dir_;
    DiskCacheOptions options_;

    mutable std::mutex mutex_;
    /** filename -> {bytes, last-use tick}; std::map for determinism. */
    std::map<std::string, IndexEntry> index_;
    std::uint64_t total_bytes_ = 0;
    std::uint64_t clock_ = 0;
    std::uint64_t temp_seq_ = 0;
    /**
     * Tick updates from hits are advisory (losing them only costs LRU
     * recency), so touches mark the index dirty and the flush is
     * deferred to the next structural write or the destructor — a hit
     * costs one file read, not an index rewrite.
     */
    bool index_dirty_ = false;
    DiskCacheStats stats_;
};

} // namespace vqllm::compiler
