#include "compiler/engine.h"

#include <algorithm>
#include <sstream>

#include "codegen/cuda_emitter.h"
#include "common/logging.h"
#include "compiler/disk_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vqllm::compiler {

namespace {

/** FNV-1a over a byte range (content hash for histograms). */
std::uint64_t
fnv1a(const void *data, std::size_t bytes, std::uint64_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

/** Histogram key component: presence plus a content digest (the
 *  request's precomputed digest when supplied). */
std::string
histogramKey(const vq::AccessHistogram *hist, std::uint64_t digest)
{
    if (hist == nullptr)
        return "none";
    if (digest == 0)
        digest = histogramDigest(*hist);
    std::ostringstream oss;
    oss << hist->counts.size() << ":" << std::hex << digest;
    return oss.str();
}

/**
 * Every GpuSpec field, serialized.  The whole struct feeds occupancy
 * and the cost model, so the fingerprint must cover all of it — a
 * sensitivity sweep mutating any single field (dram_efficiency,
 * launch overhead, latencies...) must never alias onto another
 * spec's engine or cache entry.
 */
std::string
specFingerprint(const gpusim::GpuSpec &spec)
{
    std::ostringstream fp;
    fp << spec.name << "/" << spec.num_sms << "/" << spec.smem_per_sm
       << "/" << spec.max_smem_per_block << "/" << spec.regs_per_sm
       << "/" << spec.max_threads_per_sm << "/"
       << spec.max_blocks_per_sm << "/" << spec.max_regs_per_thread
       << "/" << spec.warp_size << "/" << spec.smem_banks << "/"
       << spec.smem_alloc_granularity << "/"
       << spec.reg_alloc_granularity << "/" << spec.dram_bw_gbps << "/"
       << spec.dram_efficiency << "/" << spec.clock_ghz << "/"
       << spec.fp16_tensor_tflops << "/" << spec.fp32_tflops << "/"
       << spec.smem_bytes_per_cycle << "/" << spec.issue_per_cycle
       << "/" << spec.dram_latency_cycles << "/"
       << spec.smem_latency_cycles << "/" << spec.shfl_latency_cycles
       << "/" << spec.dram_sector_bytes << "/"
       << spec.launch_overhead_us;
    return fp.str();
}

} // namespace

std::uint64_t
histogramDigest(const vq::AccessHistogram &hist)
{
    std::uint64_t h =
        fnv1a(hist.counts.data(),
              hist.counts.size() * sizeof(std::uint64_t),
              14695981039346656037ull);
    // 0 is the "not precomputed" sentinel of KernelRequest.
    return h == 0 ? 1 : h;
}

// ---------------------------------------------------------------------
// KernelRequest factories

KernelRequest
KernelRequest::gemmOp(const engine::GemmShape &shape,
                      const vq::VQConfig &config, engine::OptLevel level,
                      const vq::AccessHistogram *histogram)
{
    KernelRequest r;
    r.kind = engine::OpKind::GeMM;
    r.gemm = shape;
    r.config = config;
    r.level = level;
    r.histogram = histogram;
    return r;
}

KernelRequest
KernelRequest::gemvOp(const engine::GemmShape &shape,
                      const vq::VQConfig &config, engine::OptLevel level,
                      const vq::AccessHistogram *histogram)
{
    KernelRequest r = gemmOp(shape, config, level, histogram);
    r.kind = engine::OpKind::GeMV;
    return r;
}

KernelRequest
KernelRequest::attentionOp(const engine::AttnShape &shape,
                           const vq::VQConfig &config,
                           engine::OptLevel level,
                           const vq::AccessHistogram *histogram)
{
    KernelRequest r;
    r.kind = engine::OpKind::AttentionDecode;
    r.attn = shape;
    r.config = config;
    r.level = level;
    r.histogram = histogram;
    return r;
}

// ---------------------------------------------------------------------
// CompiledKernel

const std::string &
CompiledKernel::source() const
{
    std::call_once(source_once_, [this] {
        source_ = codegen::emitCudaKernel(plan_);
    });
    return source_;
}

kernels::FunctionalResult
CompiledKernel::runGemv(const vq::QuantizedTensor &qt,
                        const Tensor<float> &x) const
{
    vqllm_assert(plan_.kind == engine::OpKind::GeMV,
                 "runGemv on a ", engine::opKindName(plan_.kind),
                 " artifact");
    return kernels::runVqGemv(plan_, qt, x);
}

kernels::FunctionalResult
CompiledKernel::runGemm(const vq::QuantizedTensor &qt,
                        const Tensor<float> &x) const
{
    vqllm_assert(plan_.kind == engine::OpKind::GeMM,
                 "runGemm on a ", engine::opKindName(plan_.kind),
                 " artifact");
    return kernels::runVqGemm(plan_, qt, x);
}

kernels::FunctionalResult
CompiledKernel::runAttention(const vq::QuantizedTensor &qt_k,
                             const vq::QuantizedTensor &qt_v,
                             const Tensor<float> &q) const
{
    vqllm_assert(plan_.kind == engine::OpKind::AttentionDecode,
                 "runAttention on a ", engine::opKindName(plan_.kind),
                 " artifact");
    return kernels::runVqAttention(plan_, qt_k, qt_v, q);
}

// ---------------------------------------------------------------------
// Engine

Engine::Engine(const gpusim::GpuSpec &spec, const EngineOptions &options)
    : spec_(spec), options_(options)
{
    // The policy/spec part of the cache key is engine-constant;
    // serialize it once so hot-path lookups only format the request.
    std::ostringstream suffix;
    suffix << "|thr=" << options_.shuffle_threshold;
    const auto &t = options_.tiling;
    suffix << "|tile=" << t.weight_block_cols << ","
           << t.gemm_block_rows << "," << t.gemv_split_k << ","
           << t.attn_block_tokens;
    suffix << "|spec=" << specFingerprint(spec_);
    key_suffix_ = suffix.str();
}

std::string
Engine::cacheKey(const KernelRequest &request) const
{
    std::ostringstream key;
    key << "op=" << engine::opKindName(request.kind) << "|shape=";
    if (request.kind == engine::OpKind::AttentionDecode) {
        // kvHeads() folds the kv_heads==0 MHA default onto its
        // explicit spelling so the two cannot produce distinct keys.
        key << request.attn.batch << "," << request.attn.heads << ","
            << request.attn.seq_len << "," << request.attn.head_dim
            << "," << request.attn.kvHeads();
    } else {
        key << request.gemm.m << "," << request.gemm.n << ","
            << request.gemm.k;
    }
    const auto &cfg = request.config;
    key << "|cfg=" << cfg.name << "/" << cfg.vector_size << "/"
        << cfg.num_entries << "/" << cfg.residuals << "/"
        << static_cast<int>(cfg.scope) << "/" << (cfg.lattice ? 1 : 0)
        << "/" << cfg.lattice_base_entries;
    key << "|lvl=" << engine::optLevelName(request.level);
    key << key_suffix_;
    key << "|hist=" << histogramKey(request.histogram,
                                    request.histogram_digest);
    return key.str();
}

std::shared_ptr<const CompiledKernel>
Engine::compileUncached(const KernelRequest &request) const
{
    engine::PlanInputs in;
    in.spec = &spec_;
    in.histogram = request.histogram;
    in.shuffle_threshold = options_.shuffle_threshold;
    in.tiling = options_.tiling;

    auto artifact = std::shared_ptr<CompiledKernel>(new CompiledKernel);
    if (request.kind == engine::OpKind::AttentionDecode) {
        artifact->plan_ = engine::planAttentionKernel(
            request.attn, request.config, request.level, in);
        artifact->estimate_ = kernels::estimateVqAttentionKernel(
            spec_, artifact->plan_, request.histogram);
    } else {
        artifact->plan_ = engine::planWeightKernel(
            request.kind, request.gemm, request.config, request.level,
            in);
        artifact->estimate_ = kernels::estimateVqWeightKernel(
            spec_, artifact->plan_, request.histogram);
    }
    artifact->symbol_ = codegen::kernelSymbolName(artifact->plan_);
    return artifact;
}

std::shared_ptr<const CompiledKernel>
Engine::compile(const KernelRequest &request)
{
    std::string key = cacheKey(request);

    // Planning runs under the cache lock: it is host-side microsecond
    // work, and serializing it guarantees concurrent compiles of one
    // request observe a single artifact (single-flight without a
    // per-key future).
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
        ++stats_.hits;
        return it->second;
    }
    ++stats_.misses;
    // Read through the persistent tier: a disk hit skips planning,
    // costing and emission entirely, but still counts as an in-memory
    // miss above so cached-off reports stay byte-identical.
    std::shared_ptr<const CompiledKernel> artifact;
    if (disk_)
        artifact = disk_->loadKernel(key);
    if (artifact) {
        if (trace_)
            trace_->instant(
                "disk_cache_hit", "compiler", 0, trace_->now(),
                {{"cache_size", static_cast<double>(cache_.size())}});
    } else {
        if (trace_)
            trace_->instant(
                "plan_compile", "compiler", 0, trace_->now(),
                {{"cache_size", static_cast<double>(cache_.size())}});
        artifact = compileUncached(request);
        // Write-behind: persist the complete artifact (source forced
        // inside storeKernel) so the next process starts disk-warm.
        if (disk_)
            disk_->storeKernel(key, *artifact);
    }
    cache_.emplace(key, artifact);
    insertion_order_.push_back(key);
    while (cache_.size() > options_.cache_capacity) {
        // FIFO eviction in insertion order: deterministic regardless
        // of thread interleavings the lock already serializes.
        cache_.erase(insertion_order_.front());
        insertion_order_.erase(insertion_order_.begin());
        ++stats_.evictions;
    }
    stats_.size = cache_.size();
    return artifact;
}

std::shared_ptr<const CompiledKernel>
Engine::compileBest(const KernelRequest &request,
                    const std::vector<engine::OptLevel> &levels)
{
    vqllm_assert(!levels.empty(), "compileBest needs at least one level");
    std::shared_ptr<const CompiledKernel> best;
    for (engine::OptLevel level : levels) {
        auto k = compile(request.atLevel(level));
        if (!best || k->latencyUs() < best->latencyUs())
            best = std::move(k);
    }
    return best;
}

CacheStats
Engine::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
Engine::clearCache()
{
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.clear();
    insertion_order_.clear();
    stats_.size = 0;
}

void
Engine::setTrace(obs::TraceRecorder *trace)
{
    std::lock_guard<std::mutex> lock(mutex_);
    trace_ = trace;
}

void
Engine::exportMetrics(obs::MetricsRegistry &registry,
                      const std::string &prefix) const
{
    CacheStats s = stats();
    registry.counter(prefix + ".hits").add(s.hits);
    registry.counter(prefix + ".misses").add(s.misses);
    registry.counter(prefix + ".evictions").add(s.evictions);
    registry.gauge(prefix + ".size").set(static_cast<double>(s.size));
    registry.gauge(prefix + ".hit_rate").set(s.hitRate());
}

void
Engine::setDiskCache(std::shared_ptr<DiskCache> disk)
{
    std::lock_guard<std::mutex> lock(mutex_);
    disk_ = std::move(disk);
}

std::shared_ptr<DiskCache>
Engine::diskCache() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return disk_;
}

Engine &
Engine::shared(const gpusim::GpuSpec &spec)
{
    static std::mutex registry_mutex;
    static std::map<std::string, std::unique_ptr<Engine>> registry;

    std::lock_guard<std::mutex> lock(registry_mutex);
    auto &slot = registry[specFingerprint(spec)];
    if (!slot)
        slot = std::make_unique<Engine>(spec);
    return *slot;
}

} // namespace vqllm::compiler
