/**
 * @file
 * compiler::Engine — the unified entry point of the code-generation
 * framework (paper Sec. IV): one call turns a kernel request into a
 * ready artifact.
 *
 * The paper's framework is "supply the configuration of the algorithm
 * and target GPU to the corresponding compute kernel template" and get
 * a kernel back.  Every stage of that pipeline exists in this repo —
 * planning (engine::planWeightKernel / planAttentionKernel, Alg. 2),
 * costing (gpusim::CostModel via kernels::estimateVq*Kernel), emission
 * (codegen::emitCudaKernel) and host execution (kernels::runVq*) — and
 * this module is the facade that stitches them together:
 *
 *   compiler::Engine engine(gpusim::rtx4090());
 *   auto kernel = engine.compile(
 *       compiler::KernelRequest::gemv({1, 4096, 4096}, vq::gptvq2(),
 *                                     engine::OptLevel::O4));
 *   kernel->latencyUs();   // cost-model estimate, computed once
 *   kernel->source();      // CUDA source, emitted lazily and memoized
 *   kernel->runGemv(...);  // functional host execution
 *
 * ## Artifact lifetime and ownership
 *
 * compile() returns `std::shared_ptr<const CompiledKernel>`: artifacts
 * are immutable and shared.  The cache holds one reference; callers may
 * keep theirs for as long as they like — eviction never invalidates a
 * handle, it only drops the cache's reference.  A CompiledKernel never
 * references the Engine (or the caller's GpuSpec/histogram) after
 * construction, so it outlives both safely.
 *
 * ## Memoization
 *
 * Behind compile() sits a thread-safe memoizing cache keyed by the
 * canonical request key (see cacheKey()).  Planning and costing run at
 * most once per distinct request; concurrent compiles of the same
 * request return the *same* artifact pointer.  Hit/miss/eviction
 * counters are exposed via stats() for the benches, and the cache
 * iterates in deterministic (sorted-key) order so cached and uncached
 * runs stay bit-identical at any VQLLM_THREADS setting.  Capacity 0
 * disables retention: every compile is a cold miss followed by an
 * immediate eviction — the reference configuration for cache-parity
 * tests.
 *
 * See DESIGN.md §7 for the pipeline and cache-key canonicalization
 * contract.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/kernel_plan.h"
#include "engine/template_engine.h"
#include "gpusim/gpu_spec.h"
#include "kernels/vq_kernels.h"

namespace vqllm::obs {
class MetricsRegistry;
class TraceRecorder;
}

namespace vqllm::compiler {

class DiskCache;

/** Engine-wide planning policy (fixed per Engine, part of the key). */
struct EngineOptions
{
    /** Fusion threshold: max shuffles for register fusion. */
    int shuffle_threshold = 5;
    /** Baseline tiling constants of the planner. */
    engine::BaselineTiling tiling;
    /**
     * Maximum retained artifacts.  0 disables retention (every compile
     * is a miss and an immediate eviction) — results are bit-identical
     * either way, only the work is repeated.
     */
    std::size_t cache_capacity = 4096;
};

/**
 * One kernel compilation request: the computation (tagged by
 * engine::OpKind with the matching shape member), the VQ algorithm,
 * the optimization-ladder rung, and an optional offline access
 * histogram steering the cache boundaries and tier hit fractions.
 *
 * The histogram pointer must stay valid for the duration of the
 * compile() call only; the artifact does not retain it.
 */
struct KernelRequest
{
    engine::OpKind kind = engine::OpKind::GeMV;
    /** Problem shape; gemm is read for GeMM/GeMV, attn for attention. */
    engine::GemmShape gemm;
    engine::AttnShape attn;
    vq::VQConfig config;
    engine::OptLevel level = engine::OptLevel::O4;
    const vq::AccessHistogram *histogram = nullptr;
    /**
     * Optional precomputed histogramDigest() of `histogram`.  0 (the
     * default) makes the engine hash the counts on every cache
     * lookup; hot-loop callers that reuse one histogram across many
     * compiles (the serving pricer) pass the digest to skip the
     * per-lookup rehash.  Must match the histogram's contents.
     */
    std::uint64_t histogram_digest = 0;

    /** @return a weight-quantized GeMM request. */
    static KernelRequest gemmOp(const engine::GemmShape &shape,
                                const vq::VQConfig &config,
                                engine::OptLevel level,
                                const vq::AccessHistogram *histogram =
                                    nullptr);

    /** @return a weight-quantized GeMV request. */
    static KernelRequest gemvOp(const engine::GemmShape &shape,
                                const vq::VQConfig &config,
                                engine::OptLevel level,
                                const vq::AccessHistogram *histogram =
                                    nullptr);

    /** @return a KV-cache-quantized decode-attention request. */
    static KernelRequest attentionOp(const engine::AttnShape &shape,
                                     const vq::VQConfig &config,
                                     engine::OptLevel level,
                                     const vq::AccessHistogram *histogram =
                                         nullptr);

    /** @return the same request at a different ladder rung. */
    KernelRequest
    atLevel(engine::OptLevel l) const
    {
        KernelRequest r = *this;
        r.level = l;
        return r;
    }
};

/**
 * Immutable compiled-kernel artifact: the resolved plan, its cost
 * estimate (computed once at compile time), the emitted CUDA source
 * (lazy, memoized) and host execution hooks.
 */
class CompiledKernel
{
  public:
    /** @return the fully-resolved kernel plan (Alg. 2 output). */
    const engine::KernelPlan &plan() const { return plan_; }

    /** @return the cost-model estimate computed at compile time. */
    const kernels::KernelResult &estimate() const { return estimate_; }

    /** @return modeled latency, microseconds. */
    double latencyUs() const { return estimate_.latency.total_us; }

    /** @return the emitted kernel symbol name (unique per plan). */
    const std::string &symbolName() const { return symbol_; }

    /**
     * @return the complete CUDA translation unit for the plan.
     * Emission runs on first call and is memoized; concurrent callers
     * block on the same one-time emission.
     */
    const std::string &source() const;

    /** Functionally execute the kernel as a GeMV (kind must match). */
    kernels::FunctionalResult runGemv(const vq::QuantizedTensor &qt,
                                      const Tensor<float> &x) const;

    /** Functionally execute the kernel as a GeMM (kind must match). */
    kernels::FunctionalResult runGemm(const vq::QuantizedTensor &qt,
                                      const Tensor<float> &x) const;

    /** Functionally execute decode attention (kind must match). */
    kernels::FunctionalResult
    runAttention(const vq::QuantizedTensor &qt_k,
                 const vq::QuantizedTensor &qt_v,
                 const Tensor<float> &q) const;

  private:
    friend class Engine;
    friend class DiskCache; // (De)serializes the private fields.
    CompiledKernel() = default;

    engine::KernelPlan plan_;
    kernels::KernelResult estimate_;
    std::string symbol_;

    mutable std::once_flag source_once_;
    mutable std::string source_;
};

/** Content digest of a histogram for KernelRequest::histogram_digest
 *  (FNV-1a over the counts; never returns the 0 sentinel). */
std::uint64_t histogramDigest(const vq::AccessHistogram &hist);

/** Cache observability counters (monotonic over an Engine's life). */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /** Artifacts currently retained. */
    std::size_t size = 0;

    std::uint64_t
    lookups() const
    {
        return hits + misses;
    }

    /** @return hits / lookups ([0,1]; 1 when no lookup happened). */
    double
    hitRate() const
    {
        return lookups() > 0
                   ? static_cast<double>(hits) /
                         static_cast<double>(lookups())
                   : 1.0;
    }
};

/**
 * The compile facade: plan → cost → emit → execute behind one entry
 * point with a memoizing kernel cache.
 *
 * An Engine is constructed from a target GPU and a planning policy and
 * owns a private copy of both, so it may outlive the caller's GpuSpec.
 * All methods are thread-safe.
 */
class Engine
{
  public:
    explicit Engine(const gpusim::GpuSpec &spec,
                    const EngineOptions &options = EngineOptions{});

    /**
     * Compile a kernel request into a shared immutable artifact.
     *
     * Identical requests (same canonical key) return the same pointer
     * while the artifact is retained; a re-compile after eviction
     * produces an equal but distinct artifact.
     */
    std::shared_ptr<const CompiledKernel>
    compile(const KernelRequest &request);

    /**
     * Compile `request` at each of `levels` and return the artifact
     * with the lowest modeled latency (ties break toward the earlier
     * level in `levels`).  The adaptive best-of-ladder selection the
     * end-to-end model and the benches use.
     */
    std::shared_ptr<const CompiledKernel>
    compileBest(const KernelRequest &request,
                const std::vector<engine::OptLevel> &levels);

    /**
     * Canonical cache key of a request under this engine's spec and
     * policy.
     *
     * The key normalizes the shape (only the members of the request's
     * kind contribute; attention kv_heads resolves the MHA default),
     * serializes every VQConfig field, the level, the planning policy
     * (shuffle threshold + tiling), a GPU-spec fingerprint, and a
     * content hash of the histogram (presence included) — so requests
     * differing in any plan-affecting input never collide.
     */
    std::string cacheKey(const KernelRequest &request) const;

    /** @return a snapshot of the cache counters. */
    CacheStats stats() const;

    /** Drop all retained artifacts (counters keep accumulating). */
    void clearCache();

    /**
     * Attach a trace recorder (nullptr = off, the default): every cache
     * miss records a "plan_compile" instant at the recorder's simulated
     * clock.  Traced runs must not compile concurrently on this engine
     * — the simulator attaches for its sequential run and detaches
     * before returning.
     */
    void setTrace(obs::TraceRecorder *trace);

    /** Publish the cache counters under `<prefix>.`-qualified names. */
    void exportMetrics(obs::MetricsRegistry &registry,
                       const std::string &prefix) const;

    /**
     * Attach a persistent second cache tier (nullptr = off, the
     * default).  With a tier attached, compile() reads through it on
     * an in-memory miss (a disk hit deserializes the stored artifact
     * — bit-identical to a fresh compile — and still counts as an
     * in-memory miss in stats(), so reports are unchanged) and writes
     * freshly compiled artifacts behind it.  Multiple engines may
     * share one DiskCache; see DiskCache::open.
     */
    void setDiskCache(std::shared_ptr<DiskCache> disk);

    /** @return the attached second tier (nullptr when detached). */
    std::shared_ptr<DiskCache> diskCache() const;

    /** @return the engine's private copy of the target GPU. */
    const gpusim::GpuSpec &spec() const { return spec_; }

    const EngineOptions &options() const { return options_; }

    /**
     * Process-wide shared engine for a GPU spec (keyed by the spec
     * fingerprint, created on first use, never destroyed).  The
     * convenience registry behind the spec-level llm:: helpers;
     * components wanting isolated caches construct their own Engine.
     */
    static Engine &shared(const gpusim::GpuSpec &spec);

  private:
    std::shared_ptr<const CompiledKernel>
    compileUncached(const KernelRequest &request) const;

    gpusim::GpuSpec spec_;
    EngineOptions options_;
    /** Engine-constant key part (policy + spec), serialized once. */
    std::string key_suffix_;

    mutable std::mutex mutex_;
    /** Keyed artifacts; std::map for deterministic iteration order. */
    std::map<std::string, std::shared_ptr<const CompiledKernel>> cache_;
    /** Insertion order driving FIFO eviction (deterministic). */
    std::vector<std::string> insertion_order_;
    CacheStats stats_;
    obs::TraceRecorder *trace_ = nullptr;
    /** Persistent second tier (optional). */
    std::shared_ptr<DiskCache> disk_;
};

} // namespace vqllm::compiler
