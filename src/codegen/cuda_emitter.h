/**
 * @file
 * CUDA source emission: the final stage of the code-generation framework
 * (paper Sec. IV: "a set of CUDA templates ... to generate a specific
 * VQ-augmented compute kernel, we supply the configuration of the
 * algorithm and target GPU to the corresponding compute kernel
 * template").
 *
 * Given a fully-resolved KernelPlan, the emitter instantiates the CUDA
 * C++ kernel text: codebook-cache device functions with the plan's
 * register/shared boundaries baked in, the index-unpacking logic for the
 * config's bit width (including unaligned 12-bit and lattice decodes),
 * the xor-shuffle exchange schedule of the thread mapping, the
 * codebook-centric grid mapping, and the global-reduction epilogue.
 *
 * This host environment has no nvcc, so emitted sources are validated
 * structurally (see tests) rather than compiled; emission itself is pure
 * C++ string construction, exactly the paper's host-side layer.
 */
#pragma once

#include <string>

#include "engine/kernel_plan.h"

namespace vqllm::codegen {

/** Options controlling source emission. */
struct EmitOptions
{
    /** Name of the emitted kernel symbol (derived if empty). */
    std::string kernel_name;
    /** Emit the reduction epilogue kernel when the plan needs one. */
    bool emit_reduce_kernel = true;
    /** Emit a host-side launcher function. */
    bool emit_launcher = true;
};

/** Emit the complete CUDA translation unit for a kernel plan. */
std::string emitCudaKernel(const engine::KernelPlan &plan,
                           const EmitOptions &options = EmitOptions{});

/** @return the kernel symbol name the emitter derives for a plan. */
std::string kernelSymbolName(const engine::KernelPlan &plan);

/**
 * Structural validation of emitted source: balanced braces/parens,
 * presence of a __global__ entry, and no unresolved template
 * placeholders.  @return empty string if valid, else a diagnostic.
 */
std::string validateCudaSource(const std::string &source);

} // namespace vqllm::codegen
