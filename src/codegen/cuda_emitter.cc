#include "codegen/cuda_emitter.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/bitutils.h"
#include "common/logging.h"

namespace vqllm::codegen {

using engine::FusionLevel;
using engine::KernelPlan;
using engine::OpKind;
using engine::OptLevel;

namespace {

std::string
sanitize(std::string name)
{
    for (char &c : name)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    std::transform(name.begin(), name.end(), name.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return name;
}

/** Emit the #define block binding all plan parameters. */
void
emitParameters(std::ostringstream &out, const KernelPlan &plan)
{
    const auto &cfg = plan.config;
    out << "// ---- plan parameters (resolved offline, Alg. 2) ----\n";
    out << "#define VQ_VECTOR_SIZE " << cfg.vector_size << "\n";
    out << "#define VQ_INDEX_BITS " << cfg.indexBits() << "\n";
    out << "#define VQ_RESIDUALS " << cfg.residuals << "\n";
    out << "#define VQ_STORED_ENTRIES " << cfg.storedEntries() << "\n";
    out << "#define VQ_LATTICE " << (cfg.lattice ? 1 : 0) << "\n";
    out << "#define CB_N_REG " << plan.cache_plan.n_reg << "\n";
    out << "#define CB_N_SHARED " << plan.cache_plan.n_shared << "\n";
    out << "#define CB_ENTRY_HALVES " << cfg.vector_size << "\n";
    out << "#define DF_SPLIT_FACTOR " << plan.dataflow.split << "\n";
    out << "#define FUSE_NUM_SHUFFLES " << plan.fusion.num_shuffles
        << "\n";
    out << "#define BLOCK_THREADS " << plan.block.threads << "\n";
    out << "#define MINI_WARP "
        << std::max(1, plan.fusion.mapping.mini_warp_size) << "\n";
    out << "\n";
}

/** Emit the codebook-cache device functions (paper Sec. V-C API). */
void
emitCodebookCache(std::ostringstream &out)
{
    out << R"(// ---- codebook cache (Load / Access / Switch) ----
struct CodebookCache {
    // Hot entries replicated in thread-local registers.
    half reg_entries[CB_N_REG > 0 ? CB_N_REG * CB_ENTRY_HALVES : 1];
    // Medium entries cached in shared memory (set by cb_load).
    half* smem_entries;
    // Cold entries stay behind this global pointer.
    const half* gmem_entries;
};

__device__ __forceinline__ void
cb_load(CodebookCache& cb, const half* __restrict__ codebook,
        half* smem_buffer)
{
    cb.gmem_entries = codebook;
    cb.smem_entries = smem_buffer;
    // Cooperative copy of the shared tier: entries [CB_N_REG,
    // CB_N_SHARED) in frequency-rank order.
    const int shared_halves =
        (CB_N_SHARED - CB_N_REG) * CB_ENTRY_HALVES;
    for (int i = threadIdx.x; i < shared_halves; i += BLOCK_THREADS) {
        smem_buffer[i] = codebook[CB_N_REG * CB_ENTRY_HALVES + i];
    }
    // Broadcast load of the register tier (each thread keeps a copy).
    #pragma unroll
    for (int e = 0; e < CB_N_REG; ++e) {
        #pragma unroll
        for (int d = 0; d < CB_ENTRY_HALVES; ++d) {
            cb.reg_entries[e * CB_ENTRY_HALVES + d] =
                codebook[e * CB_ENTRY_HALVES + d];
        }
    }
    __syncthreads();
}

__device__ __forceinline__ void
cb_switch(CodebookCache& cb, const half* __restrict__ new_codebook)
{
    __syncthreads();
    cb_load(cb, new_codebook, cb.smem_entries);
}

__device__ __forceinline__ const half*
cb_access(const CodebookCache& cb, unsigned stored_index)
{
    // Boundary tests replace tag lookups: index order == frequency rank.
    if (stored_index < CB_N_REG) {
        return &cb.reg_entries[stored_index * CB_ENTRY_HALVES];
    }
    if (stored_index < CB_N_SHARED) {
        return &cb.smem_entries[(stored_index - CB_N_REG) *
                                CB_ENTRY_HALVES];
    }
    return &cb.gmem_entries[stored_index * CB_ENTRY_HALVES];
}

)";
}

/** Emit index unpack + dequantization for the config's bit layout. */
void
emitDequant(std::ostringstream &out, const KernelPlan &plan)
{
    const auto &cfg = plan.config;
    out << "// ---- index unpack + dequantization ----\n";
    out << "__device__ __forceinline__ unsigned\n"
        << "vq_unpack_index(const unsigned* __restrict__ packed, "
        << "long position)\n{\n";
    if (cfg.indexBits() % 32 == 0) {
        out << "    return packed[position];\n";
    } else if (32 % cfg.indexBits() == 0) {
        out << "    // Aligned sub-word indices: single shift/mask.\n"
            << "    const unsigned per_word = 32u / VQ_INDEX_BITS;\n"
            << "    unsigned word = packed[position / per_word];\n"
            << "    unsigned shift = (position % per_word) * "
               "VQ_INDEX_BITS;\n"
            << "    return (word >> shift) & ((1u << VQ_INDEX_BITS) - "
               "1u);\n";
    } else {
        out << "    // Unaligned indices (e.g. 12-bit AQLM): the value\n"
            << "    // may straddle a word boundary -> two-word funnel "
               "shift.\n"
            << "    long bit = position * VQ_INDEX_BITS;\n"
            << "    unsigned lo = packed[bit >> 5];\n"
            << "    unsigned hi = packed[(bit >> 5) + 1];\n"
            << "    unsigned shift = bit & 31;\n"
            << "    unsigned long long window =\n"
            << "        (static_cast<unsigned long long>(hi) << 32) | "
               "lo;\n"
            << "    return static_cast<unsigned>(window >> shift) &\n"
            << "           ((1u << VQ_INDEX_BITS) - 1u);\n";
    }
    out << "}\n\n";

    out << "__device__ __forceinline__ void\n"
        << "vq_dequant(const CodebookCache& cb, unsigned logical,\n"
        << "           half out[VQ_VECTOR_SIZE])\n{\n";
    if (cfg.lattice) {
        unsigned base_bits = ceilLog2(cfg.storedEntries());
        out << "    // Lattice decode: base lookup + sign bit ops "
               "(QuiP#-style).\n"
            << "    unsigned base = logical & ((1u << " << base_bits
            << ") - 1u);\n"
            << "    unsigned signs = logical >> " << base_bits << ";\n"
            << "    const half* entry = cb_access(cb, base);\n"
            << "    #pragma unroll\n"
            << "    for (int d = 0; d < VQ_VECTOR_SIZE; ++d) {\n"
            << "        half v = entry[d];\n"
            << "        out[d] = (signs >> d) & 1u ? __hneg(v) : v;\n"
            << "    }\n";
    } else {
        out << "    const half* entry = cb_access(cb, logical);\n"
            << "    #pragma unroll\n"
            << "    for (int d = 0; d < VQ_VECTOR_SIZE; ++d) {\n"
            << "        out[d] = entry[d];\n"
            << "    }\n";
    }
    out << "}\n\n";
}

/** Emit the register-level exchange schedule (paper Fig. 12 / Alg. 1). */
void
emitRegFusion(std::ostringstream &out, const KernelPlan &plan)
{
    out << "// ---- register-level fusion: xor-shuffle exchange ----\n";
    out << "// Thread remapping (lane_map[dequant_subvector] = lane):\n"
        << "// ";
    for (std::size_t i = 0; i < plan.fusion.mapping.lane_map.size();
         ++i) {
        out << plan.fusion.mapping.lane_map[i]
            << (i + 1 < plan.fusion.mapping.lane_map.size() ? "," : "");
    }
    out << "\n";
    out << "__device__ __forceinline__ void\n"
        << "reg_fusion_exchange(float frag[MINI_WARP])\n{\n"
        << "    const int lane = threadIdx.x & 31;\n";
    for (int off : plan.fusion.mapping.shuffle_offsets) {
        out << "    frag[(lane ^ " << off << ") % MINI_WARP] =\n"
            << "        __shfl_xor_sync(0xffffffffu,\n"
            << "                        frag[(lane ^ " << off
            << ") % MINI_WARP], " << off << ");\n";
    }
    out << "}\n\n";
}

/** Emit the shared-memory fusion staging helpers. */
void
emitSharedFusion(std::ostringstream &out)
{
    out << R"(// ---- shared-memory fusion: staging round-trip ----
__device__ __forceinline__ void
shared_fusion_store(half* staging, int slot,
                    const half value[VQ_VECTOR_SIZE])
{
    #pragma unroll
    for (int d = 0; d < VQ_VECTOR_SIZE; ++d) {
        staging[slot * VQ_VECTOR_SIZE + d] = value[d];
    }
}

__device__ __forceinline__ half
shared_fusion_load(const half* staging, int element)
{
    return staging[element];
}

)";
}

/** Emit the op-specific kernel body skeleton. */
void
emitKernelBody(std::ostringstream &out, const KernelPlan &plan,
               const std::string &name)
{
    const bool reg_fusion =
        plan.fusion.level == FusionLevel::Register;
    out << "// ---- fused kernel (" << engine::opKindName(plan.kind)
        << ", " << plan.config.name << " @ "
        << engine::optLevelName(plan.level) << ") ----\n";
    out << "extern \"C\" __global__ void\n" << name << "(\n";
    if (plan.kind == OpKind::AttentionDecode) {
        out << "    const half* __restrict__ q,\n"
            << "    const unsigned* __restrict__ k_indices,\n"
            << "    const unsigned* __restrict__ v_indices,\n"
            << "    const half* __restrict__ k_codebooks,\n"
            << "    const half* __restrict__ v_codebooks,\n"
            << "    float* __restrict__ partial_logits,\n"
            << "    half* __restrict__ out,\n"
            << "    int seq_len, int head_dim)\n";
    } else {
        out << "    const half* __restrict__ x,\n"
            << "    const unsigned* __restrict__ w_indices,\n"
            << "    const half* __restrict__ codebooks,\n"
            << "    float* __restrict__ partial_out,\n"
            << "    half* __restrict__ out,\n"
            << "    int m, int n, int k)\n";
    }
    out << "{\n";
    out << "    extern __shared__ half smem[];\n";
    out << "    half* cb_smem = smem;\n";
    if (!reg_fusion) {
        out << "    half* staging = smem + (CB_N_SHARED - CB_N_REG) * "
               "CB_ENTRY_HALVES;\n";
    }
    out << "    CodebookCache cb;\n";

    // Codebook-centric grid mapping (Parallel_For of Alg. 2).
    if (plan.level >= OptLevel::O3) {
        out << "    // Codebook-centric dataflow: each block owns one\n"
            << "    // codebook-switch segment (split factor "
            << plan.dataflow.split << ").\n"
            << "    const int segment = blockIdx.x % DF_SPLIT_FACTOR;\n"
            << "    const int tile = blockIdx.x / DF_SPLIT_FACTOR;\n"
            << "    (void)segment; (void)tile;\n";
    } else {
        out << "    const int tile = blockIdx.x;\n"
            << "    (void)tile;\n";
    }

    const char *books = plan.kind == OpKind::AttentionDecode
                            ? "k_codebooks"
                            : "codebooks";
    out << "    cb_load(cb, " << books << ", cb_smem);\n";
    out << "    half deq[VQ_VECTOR_SIZE];\n";
    out << "    float frag[MINI_WARP];\n";
    out << "    float acc = 0.f;\n";
    out << "    for (int iter = 0; iter < /*per-block work*/ 1; ++iter) "
           "{\n";
    out << "        // Switch to the next codebook when the segment\n"
        << "        // crosses a scope boundary ("
        << plan.switches_per_block << " switches/block).\n";
    out << "        unsigned idx = vq_unpack_index("
        << (plan.kind == OpKind::AttentionDecode ? "k_indices"
                                                 : "w_indices")
        << ", iter);\n";
    out << "        vq_dequant(cb, idx, deq);\n";
    if (reg_fusion) {
        out << "        #pragma unroll\n"
            << "        for (int i = 0; i < MINI_WARP; ++i) {\n"
            << "            frag[i] = __half2float(deq[i % "
               "VQ_VECTOR_SIZE]);\n"
            << "        }\n"
            << "        reg_fusion_exchange(frag);\n"
            << "        acc += frag[0];\n";
    } else {
        out << "        shared_fusion_store(staging, threadIdx.x, "
               "deq);\n"
            << "        __syncthreads();\n"
            << "        acc += __half2float(shared_fusion_load(staging, "
               "threadIdx.x));\n";
    }
    out << "    }\n";

    if (plan.dataflow.needsGlobalReduce()) {
        out << "    // Partial results feed the global reduction "
               "epilogue.\n";
        out << "    "
            << (plan.kind == OpKind::AttentionDecode ? "partial_logits"
                                                     : "partial_out")
            << "[blockIdx.x * BLOCK_THREADS + threadIdx.x] = acc;\n";
    } else {
        out << "    out[blockIdx.x * BLOCK_THREADS + threadIdx.x] = "
               "__float2half(acc);\n";
    }
    out << "}\n\n";
}

/** Emit the global-reduction epilogue kernel. */
void
emitReduceKernel(std::ostringstream &out, const KernelPlan &plan,
                 const std::string &name)
{
    out << "// ---- global reduction over the split segments ----\n"
        << "extern \"C\" __global__ void\n" << name << "_reduce(\n"
        << "    const float* __restrict__ partials,\n"
        << "    half* __restrict__ out, long elements)\n"
        << "{\n"
        << "    long i = static_cast<long>(blockIdx.x) * blockDim.x + "
           "threadIdx.x;\n"
        << "    if (i >= elements) return;\n"
        << "    float acc = 0.f;\n"
        << "    #pragma unroll\n"
        << "    for (int s = 0; s < DF_SPLIT_FACTOR; ++s) {\n"
        << "        acc += partials[s * elements + i];\n"
        << "    }\n"
        << "    out[i] = __float2half(acc);\n"
        << "}\n\n";
    (void)plan;
}

/** Emit the host-side launcher. */
void
emitLauncher(std::ostringstream &out, const KernelPlan &plan,
             const std::string &name)
{
    std::size_t smem = plan.cache_plan.smemBytes();
    if (plan.fusion.level == FusionLevel::Shared)
        smem += static_cast<std::size_t>(plan.block.threads) *
                plan.config.vector_size * 2;
    out << "// ---- host launcher ----\n"
        << "extern \"C\" void\nlaunch_" << name
        << "(void** args, cudaStream_t stream)\n{\n"
        << "    dim3 grid(" << plan.grid_blocks << ");\n"
        << "    dim3 block(BLOCK_THREADS);\n"
        << "    size_t dynamic_smem = " << smem << ";\n"
        << "    cudaLaunchKernel(reinterpret_cast<void*>(&" << name
        << "),\n"
        << "                     grid, block, args, dynamic_smem, "
           "stream);\n"
        << "}\n";
}

} // namespace

std::string
kernelSymbolName(const KernelPlan &plan)
{
    // The symbol encodes every input that changes the emitted body:
    // op, config, shape, ladder rung, the fusion decision (plans at
    // one rung can still differ in fusion via the shuffle threshold)
    // and the cache boundaries (which follow the profiled access
    // histogram, not just the shape).  Two distinct plans must never
    // share a symbol — the dump example writes one file per symbol,
    // and a deployment links the translation units together.
    std::ostringstream oss;
    oss << "vqllm_" << sanitize(engine::opKindName(plan.kind)) << "_"
        << sanitize(plan.config.name) << "_";
    if (plan.kind == engine::OpKind::AttentionDecode) {
        oss << "b" << plan.attn.batch << "h" << plan.attn.heads << "t"
            << plan.attn.seq_len << "c" << plan.attn.head_dim;
        if (plan.attn.kvHeads() != plan.attn.heads)
            oss << "g" << plan.attn.kvHeads();
    } else {
        oss << "m" << plan.gemm.m << "n" << plan.gemm.n << "k"
            << plan.gemm.k;
    }
    oss << "_" << sanitize(engine::optLevelName(plan.level)) << "_f"
        << (plan.fusion.level == engine::FusionLevel::Register ? "r"
                                                               : "s");
    if (plan.dataflow.split > 1)
        oss << "_s" << plan.dataflow.split;
    if (plan.cache_plan.n_reg > 0 || plan.cache_plan.n_shared > 0)
        oss << "_c" << plan.cache_plan.n_reg << "x"
            << plan.cache_plan.n_shared;
    return oss.str();
}

std::string
emitCudaKernel(const KernelPlan &plan, const EmitOptions &options)
{
    std::string name = options.kernel_name.empty()
                           ? kernelSymbolName(plan)
                           : options.kernel_name;
    std::ostringstream out;
    out << "// Auto-generated by VQ-LLM; do not edit.\n"
        << "// " << plan.config.name << " " << plan.config.notation()
        << " fused with " << engine::opKindName(plan.kind) << " at "
        << engine::optLevelName(plan.level) << "\n"
        << "//\n";
    std::istringstream summary(plan.summary());
    for (std::string line; std::getline(summary, line);)
        out << "// " << line << "\n";
    out << "\n#include <cuda_fp16.h>\n\n";

    emitParameters(out, plan);
    emitCodebookCache(out);
    emitDequant(out, plan);
    if (plan.fusion.level == FusionLevel::Register &&
        plan.fusion.num_shuffles > 0) {
        emitRegFusion(out, plan);
    } else if (plan.fusion.level == FusionLevel::Shared) {
        emitSharedFusion(out);
    }
    emitKernelBody(out, plan, name);
    if (options.emit_reduce_kernel && plan.dataflow.needsGlobalReduce())
        emitReduceKernel(out, plan, name);
    if (options.emit_launcher)
        emitLauncher(out, plan, name);
    return out.str();
}

std::string
validateCudaSource(const std::string &source)
{
    long braces = 0, parens = 0;
    bool in_line_comment = false;
    bool in_string = false;
    for (std::size_t i = 0; i < source.size(); ++i) {
        char c = source[i];
        if (in_line_comment) {
            if (c == '\n')
                in_line_comment = false;
            continue;
        }
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '/':
            if (i + 1 < source.size() && source[i + 1] == '/')
                in_line_comment = true;
            break;
          case '"': in_string = true; break;
          case '{': ++braces; break;
          case '}': --braces; break;
          case '(': ++parens; break;
          case ')': --parens; break;
          default: break;
        }
        if (braces < 0)
            return "unbalanced '}' near offset " + std::to_string(i);
        if (parens < 0)
            return "unbalanced ')' near offset " + std::to_string(i);
    }
    if (braces != 0)
        return "unbalanced braces: " + std::to_string(braces);
    if (parens != 0)
        return "unbalanced parentheses: " + std::to_string(parens);
    if (source.find("__global__") == std::string::npos)
        return "no __global__ kernel entry";
    if (source.find("$") != std::string::npos)
        return "unresolved template placeholder";
    return "";
}

} // namespace vqllm::codegen
