/**
 * @file
 * Element-wise (scalar) quantization baselines.
 *
 * The paper compares VQ against state-of-the-art element-wise methods at
 * equal bit-widths: AWQ (activation-aware 4-bit weights) and QoQ
 * (W4A8KV4, qServe).  This module implements group-wise round-to-nearest
 * integer quantization plus AWQ-style activation-aware channel
 * equalization — enough to reproduce the accuracy gap of Fig. 2 and the
 * latency parity comparisons of Fig. 16/17.
 */
#pragma once

#include <cstdint>

#include "common/bitutils.h"
#include "tensor/tensor.h"

namespace vqllm::ewq {

/** Configuration of a group-wise integer quantizer. */
struct IntQuantConfig
{
    /** Bits per element (2, 3, 4, 8). */
    unsigned bits = 4;
    /** Elements sharing one scale/zero pair (along the row). */
    std::size_t group_size = 128;
    /** Symmetric (no zero point) or asymmetric quantization. */
    bool symmetric = false;

    /** @return quantized levels. */
    std::uint32_t
    levels() const
    {
        return 1u << bits;
    }
};

/** A group-wise integer-quantized 2-D tensor. */
struct IntQuantized
{
    IntQuantConfig config;
    std::size_t rows = 0, cols = 0;
    /** Packed codes, row-major [row][col]. */
    BitStream codes{4};
    /** Per (row, group) scale. */
    Tensor<float> scales;
    /** Per (row, group) zero point (empty when symmetric). */
    Tensor<float> zeros;

    /** @return groups per row. */
    std::size_t
    groups() const
    {
        return ceilDiv(cols, config.group_size);
    }

    /** @return total compressed bytes (codes + scales + zeros, FP16). */
    std::size_t sizeBytes() const;

    /** @return compressed bytes / FP16 bytes. */
    double
    achievedCompression() const
    {
        return static_cast<double>(sizeBytes()) /
               (static_cast<double>(rows) * cols * 2);
    }
};

/** Quantize a [rows, cols] tensor group-wise (RTN). */
IntQuantized intQuantize(const Tensor<float> &data,
                         const IntQuantConfig &config);

/** Reconstruct the full tensor. */
Tensor<float> intDequantize(const IntQuantized &q);

/**
 * AWQ-style activation-aware quantization: salient input channels (large
 * average activation magnitude) are scaled up before quantization and
 * the inverse scale is folded into dequantization, protecting them from
 * rounding error.
 *
 * @param weight        [out_features, in_features]
 * @param act_magnitude per-input-channel mean |activation|
 * @param config        underlying RTN config
 * @param alpha         equalization strength in [0, 1]
 */
struct AwqQuantized
{
    IntQuantized base;
    /** Per-input-channel equalization scales. */
    std::vector<float> channel_scale;
};

AwqQuantized awqQuantize(const Tensor<float> &weight,
                         const std::vector<float> &act_magnitude,
                         const IntQuantConfig &config, double alpha = 0.5);

/** Reconstruct the weight from an AWQ quantization. */
Tensor<float> awqDequantize(const AwqQuantized &q);

/**
 * Build the element-wise 2-D quantization grid of Fig. 2 (lower left):
 * per-dimension uniform quantization points whose Cartesian product
 * forms the representable set.
 *
 * @param data [n, 2] points
 * @param bits_per_dim bits per dimension
 * @return reconstruction of each point on the grid
 */
Tensor<float> cartesianQuantize2d(const Tensor<float> &data,
                                  unsigned bits_per_dim);

} // namespace vqllm::ewq
