#include "ewq/int_quant.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vqllm::ewq {

std::size_t
IntQuantized::sizeBytes() const
{
    std::size_t bytes = codes.sizeBytes();
    bytes += scales.size() * 2; // FP16 scales
    bytes += zeros.size() * 2;
    return bytes;
}

IntQuantized
intQuantize(const Tensor<float> &data, const IntQuantConfig &config)
{
    vqllm_assert(data.rank() == 2, "intQuantize expects [rows, cols]");
    vqllm_assert(config.bits >= 1 && config.bits <= 16, "bad bit width");
    IntQuantized q;
    q.config = config;
    q.rows = data.dim(0);
    q.cols = data.dim(1);
    q.codes = BitStream(config.bits);
    q.scales = Tensor<float>({q.rows, q.groups()});
    if (!config.symmetric)
        q.zeros = Tensor<float>({q.rows, q.groups()});

    const double qmax = static_cast<double>(config.levels() - 1);
    for (std::size_t r = 0; r < q.rows; ++r) {
        for (std::size_t g = 0; g < q.groups(); ++g) {
            std::size_t c0 = g * config.group_size;
            std::size_t c1 = std::min(q.cols, c0 + config.group_size);
            float lo = data.at(r, c0), hi = data.at(r, c0);
            for (std::size_t c = c0; c < c1; ++c) {
                lo = std::min(lo, data.at(r, c));
                hi = std::max(hi, data.at(r, c));
            }
            float scale, zero;
            if (config.symmetric) {
                float absmax = std::max(std::abs(lo), std::abs(hi));
                float half_range = static_cast<float>(
                    std::max(1u, config.levels() / 2 - 1));
                scale = absmax > 0 ? absmax / half_range : 1.0f;
                zero = 0.0f;
            } else {
                scale = hi > lo ? static_cast<float>((hi - lo) / qmax)
                                : 1.0f;
                zero = lo;
            }
            scale = roundToHalf(scale);
            zero = roundToHalf(zero);
            q.scales.at(r, g) = scale;
            if (!config.symmetric)
                q.zeros.at(r, g) = zero;

            for (std::size_t c = c0; c < c1; ++c) {
                double normalized;
                if (config.symmetric) {
                    normalized = data.at(r, c) / scale +
                                 config.levels() / 2;
                } else {
                    normalized = (data.at(r, c) - zero) / scale;
                }
                long code = std::lround(normalized);
                code = std::clamp(code, 0l,
                                  static_cast<long>(qmax));
                q.codes.push(static_cast<std::uint32_t>(code));
            }
        }
    }
    return q;
}

Tensor<float>
intDequantize(const IntQuantized &q)
{
    Tensor<float> out({q.rows, q.cols});
    for (std::size_t r = 0; r < q.rows; ++r) {
        for (std::size_t c = 0; c < q.cols; ++c) {
            std::size_t g = c / q.config.group_size;
            float scale = q.scales.at(r, g);
            std::uint32_t code = q.codes.get(r * q.cols + c);
            float value;
            if (q.config.symmetric) {
                value = (static_cast<float>(code) -
                         q.config.levels() / 2) *
                        scale;
            } else {
                value = static_cast<float>(code) * scale +
                        q.zeros.at(r, g);
            }
            out.at(r, c) = roundToHalf(value);
        }
    }
    return out;
}

AwqQuantized
awqQuantize(const Tensor<float> &weight,
            const std::vector<float> &act_magnitude,
            const IntQuantConfig &config, double alpha)
{
    vqllm_assert(weight.rank() == 2, "awqQuantize expects [out, in]");
    vqllm_assert(act_magnitude.size() == weight.dim(1),
                 "one activation magnitude per input channel");
    AwqQuantized q;
    q.channel_scale.resize(weight.dim(1));

    // AWQ: s_c = act_magnitude^alpha (normalized); weights of salient
    // channels are scaled up before RTN so their relative rounding error
    // shrinks; the inverse is applied at dequantization.
    double mean_mag = 0;
    for (float m : act_magnitude)
        mean_mag += std::abs(m);
    mean_mag = std::max(mean_mag / act_magnitude.size(), 1e-12);
    for (std::size_t c = 0; c < q.channel_scale.size(); ++c) {
        double s = std::pow(std::abs(act_magnitude[c]) / mean_mag + 1e-9,
                            alpha);
        q.channel_scale[c] =
            static_cast<float>(std::clamp(s, 0.125, 8.0));
    }

    Tensor<float> scaled(weight.shape());
    for (std::size_t r = 0; r < weight.dim(0); ++r)
        for (std::size_t c = 0; c < weight.dim(1); ++c)
            scaled.at(r, c) = weight.at(r, c) * q.channel_scale[c];
    q.base = intQuantize(scaled, config);
    return q;
}

Tensor<float>
awqDequantize(const AwqQuantized &q)
{
    Tensor<float> out = intDequantize(q.base);
    for (std::size_t r = 0; r < out.dim(0); ++r)
        for (std::size_t c = 0; c < out.dim(1); ++c)
            out.at(r, c) /= q.channel_scale[c];
    return out;
}

Tensor<float>
cartesianQuantize2d(const Tensor<float> &data, unsigned bits_per_dim)
{
    vqllm_assert(data.rank() == 2 && data.dim(1) == 2,
                 "expects [n, 2] points");
    const std::size_t n = data.dim(0);
    const std::uint32_t levels = 1u << bits_per_dim;
    Tensor<float> out({n, std::size_t(2)});
    for (std::size_t d = 0; d < 2; ++d) {
        float lo = data.at(std::size_t(0), d), hi = lo;
        for (std::size_t i = 0; i < n; ++i) {
            lo = std::min(lo, data.at(i, d));
            hi = std::max(hi, data.at(i, d));
        }
        float scale = hi > lo ? (hi - lo) / (levels - 1) : 1.0f;
        for (std::size_t i = 0; i < n; ++i) {
            long code = std::lround((data.at(i, d) - lo) / scale);
            code = std::clamp(code, 0l, static_cast<long>(levels - 1));
            out.at(i, d) = lo + static_cast<float>(code) * scale;
        }
    }
    return out;
}

} // namespace vqllm::ewq
