/**
 * @file
 * TraceRecorder — structured tracing on the simulated clock.
 *
 * The serving simulator advances a simulated microsecond clock; this
 * recorder captures what happens on it as *spans* (named intervals:
 * scheduler iterations, prefill chunks, decode batches, ring
 * all-reduces, codebook uploads) and *instants* (point events: KV
 * alloc/extend/free, preemptions, plan-cache compiles), grouped into
 * per-component tracks (track 0 is the scheduler timeline; tensor-
 * parallel shard s records on track 1+s).
 *
 * The recorder is passive: emitters pass explicit timestamps, usually
 * derived from now(), which the simulator sets as its clock advances.
 * Components that observe events but do not own the clock (the KV
 * pool, the compile engine) read now() instead of threading the clock
 * through every call.
 *
 * Export is Chrome trace-event JSON (chromeJson() /
 * writeChromeJson()), the format Perfetto and chrome://tracing load
 * directly: spans become "X" (complete) events with microsecond
 * ts/dur, instants become "i" events, and track names are emitted as
 * "M" metadata records.  Serialization is fully deterministic — events
 * appear in recording order and numbers are printed with fixed
 * formatting — so two identical simulations produce byte-identical
 * traces regardless of host thread count.
 *
 * Tracing is opt-in and zero-cost when off: every instrumentation site
 * holds a `TraceRecorder *` that defaults to nullptr and checks it
 * before doing any work, so a run without a recorder executes exactly
 * the pre-instrumentation code path.  Recording methods are
 * mutex-guarded, so one recorder may observe components shared across
 * threads (a traced run itself is sequential, which is what keeps the
 * event order deterministic).
 */
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace vqllm::obs {

/** One named numeric event argument (ids, token counts, sizes). */
struct TraceArg
{
    std::string key;
    double value = 0;
};

/** One recorded event. */
struct TraceEvent
{
    enum class Phase {
        Span,    ///< interval with a duration ("X" complete event)
        Instant, ///< point event ("i")
    };

    Phase phase = Phase::Span;
    std::string name;
    std::string cat;
    /** Track the event renders on (0 = scheduler; 1+s = TP shard s). */
    int tid = 0;
    double ts_us = 0;
    /** Span duration; unused for instants. */
    double dur_us = 0;
    std::vector<TraceArg> args;
};

/** Records spans/instants on the simulated clock; exports Chrome
 *  trace-event JSON. */
class TraceRecorder
{
  public:
    /** Advance the recorder's simulated clock (the simulator calls
     *  this as its own clock moves). */
    void setNow(double us);

    /** @return the current simulated time, microseconds. */
    double now() const;

    /** Name a track (idempotent; later names win). */
    void nameTrack(int tid, const std::string &name);

    /** Record a span of [ts_us, ts_us + dur_us] on a track. */
    void span(const std::string &name, const std::string &cat, int tid,
              double ts_us, double dur_us,
              std::vector<TraceArg> args = {});

    /** Record a point event. */
    void instant(const std::string &name, const std::string &cat,
                 int tid, double ts_us, std::vector<TraceArg> args = {});

    /** @return number of recorded events (metadata excluded). */
    std::size_t eventCount() const;

    /** Snapshot of the recorded events, in recording order. */
    std::vector<TraceEvent> events() const;

    /** Sum of span durations over events whose category is `cat`. */
    double categoryDurationUs(const std::string &cat) const;

    /** Serialize as a Chrome trace-event JSON document. */
    void writeChromeJson(std::ostream &os) const;

    /** @return the Chrome trace-event JSON document as a string. */
    std::string chromeJson() const;

    /** Snapshot of the named tracks (tid → name). */
    std::map<int, std::string> tracks() const;

    /** Drop all events and track names (clock keeps its value). */
    void clear();

  private:
    mutable std::mutex mutex_;
    double now_us_ = 0;
    std::map<int, std::string> tracks_;
    std::vector<TraceEvent> events_;
};

/** One recorder's contribution to a merged Chrome trace. */
struct TraceMergePart
{
    const TraceRecorder *recorder = nullptr;
    /** Added to every event/track tid so parts never collide. */
    int tid_base = 0;
    /** Prepended to the part's track names ("r0/scheduler"). */
    std::string prefix;
};

/**
 * Serialize several recorders into one Chrome trace-event JSON
 * document on a shared timeline (the fleet simulator merges its
 * per-replica recorders this way: replica i offsets its tracks by
 * i*kTracksPerReplica and prefixes them "r<i>/").  Event order is
 * parts order, then recording order within a part — deterministic, so
 * identical runs produce byte-identical merged traces.
 */
void writeChromeJsonMerged(std::ostream &os,
                           const std::vector<TraceMergePart> &parts);

} // namespace vqllm::obs
