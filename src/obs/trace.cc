#include "obs/trace.h"

#include <cstdio>
#include <sstream>

namespace vqllm::obs {

namespace {

/** Escape a string for a JSON literal (names/cats are controlled
 *  identifiers, but ids and keys pass through user configs). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Fixed-format number: integers print without a fraction so ids and
 *  token counts stay readable; fractional values keep full precision
 *  (%.17g round-trips doubles, keeping serialization bit-faithful). */
std::string
jsonNumber(double v)
{
    char buf[64];
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        v >= -9.007199254740992e15 && v <= 9.007199254740992e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    return buf;
}

void
writeArgs(std::ostream &os, const std::vector<TraceArg> &args)
{
    os << "\"args\":{";
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (i > 0)
            os << ",";
        os << "\"" << jsonEscape(args[i].key)
           << "\":" << jsonNumber(args[i].value);
    }
    os << "}";
}

} // namespace

void
TraceRecorder::setNow(double us)
{
    std::lock_guard<std::mutex> lock(mutex_);
    now_us_ = us;
}

double
TraceRecorder::now() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return now_us_;
}

void
TraceRecorder::nameTrack(int tid, const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    tracks_[tid] = name;
}

void
TraceRecorder::span(const std::string &name, const std::string &cat,
                    int tid, double ts_us, double dur_us,
                    std::vector<TraceArg> args)
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back({TraceEvent::Phase::Span, name, cat, tid, ts_us,
                       dur_us, std::move(args)});
}

void
TraceRecorder::instant(const std::string &name, const std::string &cat,
                       int tid, double ts_us, std::vector<TraceArg> args)
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back({TraceEvent::Phase::Instant, name, cat, tid,
                       ts_us, 0.0, std::move(args)});
}

std::size_t
TraceRecorder::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::vector<TraceEvent>
TraceRecorder::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

double
TraceRecorder::categoryDurationUs(const std::string &cat) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    double total = 0;
    for (const TraceEvent &e : events_)
        if (e.phase == TraceEvent::Phase::Span && e.cat == cat)
            total += e.dur_us;
    return total;
}

void
TraceRecorder::writeChromeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\"traceEvents\":[\n";
    // Metadata first: one process, one named thread per track.
    // std::map iteration gives a deterministic tid order.
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
          "\"tid\":0,\"args\":{\"name\":\"vqllm serving simulation\"}}";
    for (const auto &[tid, name] : tracks_) {
        os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
              "\"tid\":"
           << tid << ",\"args\":{\"name\":\"" << jsonEscape(name)
           << "\"}}";
    }
    for (const TraceEvent &e : events_) {
        os << ",\n{\"name\":\"" << jsonEscape(e.name) << "\",\"cat\":\""
           << jsonEscape(e.cat) << "\",\"ph\":\""
           << (e.phase == TraceEvent::Phase::Span ? "X" : "i")
           << "\",\"pid\":0,\"tid\":" << e.tid
           << ",\"ts\":" << jsonNumber(e.ts_us);
        if (e.phase == TraceEvent::Phase::Span)
            os << ",\"dur\":" << jsonNumber(e.dur_us);
        else
            os << ",\"s\":\"t\""; // thread-scoped instant
        os << ",";
        writeArgs(os, e.args);
        os << "}";
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string
TraceRecorder::chromeJson() const
{
    std::ostringstream oss;
    writeChromeJson(oss);
    return oss.str();
}

std::map<int, std::string>
TraceRecorder::tracks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return tracks_;
}

void
writeChromeJsonMerged(std::ostream &os,
                      const std::vector<TraceMergePart> &parts)
{
    // Same document shape as writeChromeJson — metadata first, then
    // events — with each part's tids offset by its base and its track
    // names prefixed.  Taking snapshots (tracks()/events()) keeps the
    // recorders' own locking discipline.
    os << "{\"traceEvents\":[\n";
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
          "\"tid\":0,\"args\":{\"name\":\"vqllm fleet simulation\"}}";
    for (const TraceMergePart &part : parts) {
        for (const auto &[tid, name] : part.recorder->tracks()) {
            os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":"
               << part.tid_base + tid << ",\"args\":{\"name\":\""
               << jsonEscape(part.prefix + name) << "\"}}";
        }
    }
    for (const TraceMergePart &part : parts) {
        for (const TraceEvent &e : part.recorder->events()) {
            os << ",\n{\"name\":\"" << jsonEscape(e.name)
               << "\",\"cat\":\"" << jsonEscape(e.cat) << "\",\"ph\":\""
               << (e.phase == TraceEvent::Phase::Span ? "X" : "i")
               << "\",\"pid\":0,\"tid\":" << part.tid_base + e.tid
               << ",\"ts\":" << jsonNumber(e.ts_us);
            if (e.phase == TraceEvent::Phase::Span)
                os << ",\"dur\":" << jsonNumber(e.dur_us);
            else
                os << ",\"s\":\"t\""; // thread-scoped instant
            os << ",";
            writeArgs(os, e.args);
            os << "}";
        }
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void
TraceRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    tracks_.clear();
    events_.clear();
}

} // namespace vqllm::obs
