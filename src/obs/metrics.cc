#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace vqllm::obs {

namespace {

/** %.17g round-trips doubles, so identical values serialize
 *  identically and the JSON stays bit-faithful. */
std::string
jsonNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

// ---------------------------------------------------------------------
// Histogram

Histogram::Histogram(double min_bucket, double growth)
    : min_bucket_(min_bucket), growth_(growth)
{
    vqllm_assert(min_bucket_ > 0, "histogram min_bucket must be > 0");
    vqllm_assert(growth_ > 1, "histogram growth must be > 1");
}

double
Histogram::bucketHi(int i) const
{
    return min_bucket_ * std::pow(growth_, i);
}

int
Histogram::bucketIndex(double v) const
{
    if (v <= min_bucket_)
        return 0;
    int i = static_cast<int>(
        std::ceil(std::log(v / min_bucket_) / std::log(growth_)));
    if (i < 0)
        i = 0;
    // log() rounding can land one bucket off; nudge to the invariant
    // bucketHi(i-1) < v <= bucketHi(i).
    while (bucketHi(i) < v)
        ++i;
    while (i > 0 && bucketHi(i - 1) >= v)
        --i;
    return i;
}

void
Histogram::record(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    ++counts_[bucketIndex(v)];
}

double
Histogram::mean() const
{
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::minValue() const
{
    return count_ > 0 ? min_ : 0.0;
}

double
Histogram::maxValue() const
{
    return count_ > 0 ? max_ : 0.0;
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    double target = q * static_cast<double>(count_);
    double before = 0;
    for (const auto &[idx, n] : counts_) {
        double after = before + static_cast<double>(n);
        if (after >= target) {
            // Interpolate inside the bucket's value range.  Bucket 0
            // spans (-inf, min_bucket]; anchor it at the observed
            // minimum so the interpolation stays within real data.
            double lo = idx == 0 ? min_ : bucketHi(idx - 1);
            double hi = bucketHi(idx);
            double frac =
                n > 0 ? (target - before) / static_cast<double>(n) : 0;
            double v = lo + (hi - lo) * frac;
            // Clamp to the observed range: q=0 -> exact min, q=1 ->
            // exact max, single sample -> that sample everywhere.
            return std::clamp(v, min_, max_);
        }
        before = after;
    }
    return max_;
}

std::vector<Histogram::Bucket>
Histogram::buckets() const
{
    std::vector<Bucket> out;
    out.reserve(counts_.size());
    for (const auto &[idx, n] : counts_) {
        Bucket b;
        b.lo = idx == 0 ? 0.0 : bucketHi(idx - 1);
        b.hi = bucketHi(idx);
        b.count = n;
        out.push_back(b);
    }
    return out;
}

// ---------------------------------------------------------------------
// MetricsRegistry

Counter &
MetricsRegistry::counter(const std::string &name)
{
    return counters_[name];
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    return gauges_[name];
}

Histogram &
MetricsRegistry::histogram(const std::string &name, double min_bucket,
                           double growth)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(name, Histogram(min_bucket, growth))
                 .first;
    return it->second;
}

const Counter *
MetricsRegistry::findCounter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it != counters_.end() ? &it->second : nullptr;
}

const Gauge *
MetricsRegistry::findGauge(const std::string &name) const
{
    auto it = gauges_.find(name);
    return it != gauges_.end() ? &it->second : nullptr;
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it != histograms_.end() ? &it->second : nullptr;
}

std::size_t
MetricsRegistry::size() const
{
    return counters_.size() + gauges_.size() + histograms_.size();
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        os << (first ? "\n" : ",\n") << "    \"" << name
           << "\": " << c.value();
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : gauges_) {
        os << (first ? "\n" : ",\n") << "    \"" << name
           << "\": " << jsonNumber(g.value());
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms_) {
        os << (first ? "\n" : ",\n") << "    \"" << name << "\": {"
           << "\"count\": " << h.count()
           << ", \"sum\": " << jsonNumber(h.sum())
           << ", \"mean\": " << jsonNumber(h.mean())
           << ", \"min\": " << jsonNumber(h.minValue())
           << ", \"max\": " << jsonNumber(h.maxValue())
           << ", \"p50\": " << jsonNumber(h.quantile(0.50))
           << ", \"p95\": " << jsonNumber(h.quantile(0.95))
           << ", \"p99\": " << jsonNumber(h.quantile(0.99))
           << ",\n      \"buckets\": [";
        const auto buckets = h.buckets();
        for (std::size_t i = 0; i < buckets.size(); ++i) {
            os << (i == 0 ? "" : ", ") << "{\"lo\": "
               << jsonNumber(buckets[i].lo)
               << ", \"hi\": " << jsonNumber(buckets[i].hi)
               << ", \"count\": " << buckets[i].count << "}";
        }
        os << "]}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
}

std::string
MetricsRegistry::json() const
{
    std::ostringstream oss;
    writeJson(oss);
    return oss.str();
}

} // namespace vqllm::obs
