/**
 * @file
 * MetricsRegistry — named counters, gauges, and log-bucketed
 * histograms with deterministic JSON export.
 *
 * The registry replaces ad-hoc counter plumbing: instead of every
 * subsystem growing its own stats struct that callers hand-copy into
 * reports, components publish into one registry under a dotted naming
 * convention and the whole thing serializes to machine-readable JSON
 * in one call.
 *
 * Naming convention: `<layer>.<component>.<metric>`, lower_snake_case
 * leaves, with the unit as the trailing suffix where one applies —
 * `serving.kv.shard0.block_allocs`, `serving.latency.ttft_us`,
 * `compiler.plan_cache.hits`.  The registry stores entries in sorted
 * (std::map) order, so JSON output is deterministic.
 *
 * Histograms are log-bucketed: bucket i covers
 * (min_bucket * growth^(i-1), min_bucket * growth^i], bucket 0 covers
 * (-inf, min_bucket].  Exact count/sum/min/max are tracked alongside
 * the buckets, and quantile() interpolates within the containing
 * bucket, clamped to the observed [min, max] — so q=0 returns the
 * exact minimum, q=1 the exact maximum, and a single-sample population
 * returns that sample at every quantile.
 *
 * The registry is not thread-safe: a traced simulation is sequential,
 * and concurrent simulations each own a registry.  Aggregation across
 * runs happens at the JSON level.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace vqllm::obs {

/** Monotonic event count. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Last-write-wins point-in-time value. */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }

  private:
    double value_ = 0;
};

/** Log-bucketed histogram with exact count/sum/min/max. */
class Histogram
{
  public:
    /**
     * @param min_bucket upper bound of the first bucket (> 0)
     * @param growth     geometric bucket growth factor (> 1)
     */
    explicit Histogram(double min_bucket = 1.0, double growth = 2.0);

    void record(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    /** @return arithmetic mean (0 for an empty population). */
    double mean() const;
    /** @return smallest recorded value (0 when empty). */
    double minValue() const;
    /** @return largest recorded value (0 when empty). */
    double maxValue() const;

    /**
     * Quantile estimate by linear interpolation inside the containing
     * log bucket, clamped to the observed [min, max].
     *
     * @param q quantile in [0, 1] (clamped); empty population returns 0
     */
    double quantile(double q) const;

    /** One non-empty bucket: value range (lo, hi] and its count. */
    struct Bucket
    {
        double lo = 0;
        double hi = 0;
        std::uint64_t count = 0;
    };

    /** Non-empty buckets in ascending value order. */
    std::vector<Bucket> buckets() const;

    double minBucket() const { return min_bucket_; }
    double growth() const { return growth_; }

  private:
    int bucketIndex(double v) const;
    double bucketHi(int i) const;

    double min_bucket_;
    double growth_;
    std::map<int, std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;
};

/**
 * Named metric registry.  Accessors create-on-first-use and return a
 * stable reference (the registry never erases entries), so hot paths
 * may cache the reference and skip the name lookup.
 */
class MetricsRegistry
{
  public:
    /** @return the counter registered under `name` (created if new). */
    Counter &counter(const std::string &name);

    /** @return the gauge registered under `name` (created if new). */
    Gauge &gauge(const std::string &name);

    /**
     * @return the histogram registered under `name` (created with the
     * given bucketing if new; later calls ignore the bucket params).
     */
    Histogram &histogram(const std::string &name,
                         double min_bucket = 1.0, double growth = 2.0);

    /** @return registered counter, or nullptr. */
    const Counter *findCounter(const std::string &name) const;
    /** @return registered gauge, or nullptr. */
    const Gauge *findGauge(const std::string &name) const;
    /** @return registered histogram, or nullptr. */
    const Histogram *findHistogram(const std::string &name) const;

    std::size_t size() const;

    /**
     * Serialize every metric as one JSON object:
     * {"counters": {...}, "gauges": {...}, "histograms": {name:
     * {count, sum, mean, min, max, p50, p95, p99, buckets: [...]}}}.
     * Deterministic: sorted names, fixed number formatting.
     */
    void writeJson(std::ostream &os) const;

    /** @return the JSON document as a string. */
    std::string json() const;

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace vqllm::obs
