/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the library (synthetic data generation,
 * k-means initialization, workload sampling) draw from this generator so
 * that every test and benchmark is reproducible from a single seed.
 * The core generator is xoshiro256**, seeded via SplitMix64.
 */
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace vqllm {

/**
 * Deterministic random source (xoshiro256**).
 *
 * Not thread-safe; create one per thread or per component.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &s : state_) {
            // SplitMix64 step.
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            s = z ^ (z >> 31);
        }
    }

    /** @return the next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** @return uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    uniformInt(std::uint64_t n)
    {
        // Rejection-free Lemire-style bounded generation is overkill here;
        // modulo bias is negligible for the n << 2^64 used in this library.
        return next() % n;
    }

    /** @return standard normal sample (Box-Muller, cached pair). */
    double
    normal()
    {
        if (has_cached_) {
            has_cached_ = false;
            return cached_;
        }
        double u1 = 1.0 - uniform(); // (0, 1]
        double u2 = uniform();
        double r = std::sqrt(-2.0 * std::log(u1));
        double theta = 2.0 * std::numbers::pi * u2;
        cached_ = r * std::sin(theta);
        has_cached_ = true;
        return r * std::cos(theta);
    }

    /** @return normal sample with the given mean and stddev. */
    double
    normal(double mean, double stddev)
    {
        return mean + stddev * normal();
    }

    /**
     * Sample an index from an explicit discrete distribution.
     *
     * @param weights non-negative weights (need not be normalized)
     * @return an index in [0, weights.size())
     */
    std::size_t
    weightedIndex(const std::vector<double> &weights)
    {
        double total = 0;
        for (double w : weights)
            total += w;
        double r = uniform() * total;
        double acc = 0;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            acc += weights[i];
            if (r < acc)
                return i;
        }
        return weights.empty() ? 0 : weights.size() - 1;
    }

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &values)
    {
        for (std::size_t i = values.size(); i > 1; --i) {
            std::size_t j = uniformInt(i);
            std::swap(values[i - 1], values[j]);
        }
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
    double cached_ = 0;
    bool has_cached_ = false;
};

/**
 * Zipf-like power-law weights: w_i = 1 / (i + 1)^alpha.
 *
 * Used to give synthetic cluster populations the skew observed in real
 * codebook-entry access histograms (paper Fig. 8).
 *
 * @param n     number of weights
 * @param alpha skew exponent (0 = uniform; ~1 = strongly skewed)
 */
std::vector<double> powerLawWeights(std::size_t n, double alpha);

} // namespace vqllm
