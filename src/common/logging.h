/**
 * @file
 * Status-message and error-reporting helpers, following the gem5
 * panic/fatal/warn/inform convention.
 *
 * - panic():  something happened that should never happen regardless of
 *             user input, i.e. a library bug.  Calls std::abort().
 * - fatal():  the run cannot continue due to a user error (bad
 *             configuration, invalid arguments).  Exits with code 1.
 * - warn():   functionality may not behave as expected, but the run can
 *             continue.
 * - inform(): purely informational status message.
 */
#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

namespace vqllm {

/** Severity levels understood by logMessage(). */
enum class LogLevel {
    Inform,
    Warn,
    Fatal,
    Panic,
};

/**
 * Emit a formatted log line to stderr.
 *
 * @param level severity of the message
 * @param file  source file of the call site
 * @param line  source line of the call site
 * @param msg   human-readable message body
 */
void logMessage(LogLevel level, const char *file, int line,
                const std::string &msg);

/** Global verbosity switch; when false, inform() lines are suppressed. */
void setVerbose(bool verbose);

/** @return whether inform() lines are currently emitted. */
bool verbose();

namespace detail {

/** Fold a variadic argument pack into a single string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    if constexpr (sizeof...(args) > 0)
        (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace vqllm

/** Report an internal invariant violation and abort. */
#define vqllm_panic(...)                                                     \
    do {                                                                     \
        ::vqllm::logMessage(::vqllm::LogLevel::Panic, __FILE__, __LINE__,    \
                            ::vqllm::detail::concat(__VA_ARGS__));           \
        std::abort();                                                        \
    } while (0)

/** Report an unrecoverable user error and exit(1). */
#define vqllm_fatal(...)                                                     \
    do {                                                                     \
        ::vqllm::logMessage(::vqllm::LogLevel::Fatal, __FILE__, __LINE__,    \
                            ::vqllm::detail::concat(__VA_ARGS__));           \
        std::exit(1);                                                        \
    } while (0)

/** Report a suspicious-but-survivable condition. */
#define vqllm_warn(...)                                                      \
    ::vqllm::logMessage(::vqllm::LogLevel::Warn, __FILE__, __LINE__,         \
                        ::vqllm::detail::concat(__VA_ARGS__))

/** Report a normal status message (suppressed unless verbose). */
#define vqllm_inform(...)                                                    \
    ::vqllm::logMessage(::vqllm::LogLevel::Inform, __FILE__, __LINE__,       \
                        ::vqllm::detail::concat(__VA_ARGS__))

/** Check an invariant; panics with the stringified condition on failure. */
#define vqllm_assert(cond, ...)                                              \
    do {                                                                     \
        if (!(cond)) {                                                       \
            vqllm_panic("assertion failed: ", #cond, " ",                    \
                        ::vqllm::detail::concat(__VA_ARGS__));               \
        }                                                                    \
    } while (0)
