#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace vqllm {

namespace {

std::atomic<bool> g_verbose{false};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

void
setVerbose(bool verbose)
{
    g_verbose.store(verbose);
}

bool
verbose()
{
    return g_verbose.load();
}

void
logMessage(LogLevel level, const char *file, int line, const std::string &msg)
{
    if (level == LogLevel::Inform && !g_verbose.load())
        return;
    // Compose the whole line first and emit it with one stream write,
    // so lines from concurrent threads never interleave mid-line.
    std::string out;
    out.reserve(msg.size() + 64);
    out += '[';
    out += levelName(level);
    out += "] ";
    out += msg;
    if (level != LogLevel::Inform) {
        out += " (";
        out += file;
        out += ':';
        out += std::to_string(line);
        out += ')';
    }
    out += '\n';
    std::fwrite(out.data(), 1, out.size(), stderr);
}

} // namespace vqllm
