#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace vqllm {

namespace {

std::atomic<bool> g_verbose{false};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

void
setVerbose(bool verbose)
{
    g_verbose.store(verbose);
}

bool
verbose()
{
    return g_verbose.load();
}

void
logMessage(LogLevel level, const char *file, int line, const std::string &msg)
{
    if (level == LogLevel::Inform && !g_verbose.load())
        return;
    if (level == LogLevel::Inform) {
        std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
    } else {
        std::fprintf(stderr, "[%s] %s (%s:%d)\n", levelName(level),
                     msg.c_str(), file, line);
    }
}

} // namespace vqllm
