/**
 * @file
 * Deterministic host parallel execution runtime.
 *
 * Every host hot path (functional kernels, k-means fitting, reference
 * kernels, accuracy evaluation) runs through `parallelFor`, which splits
 * an index range into *statically sized* chunks.  The chunk layout
 * depends only on the problem size and the caller-chosen grain — never
 * on the thread count — so callers that keep per-chunk state (counters,
 * partial sums) and merge it in chunk-index order produce bit-identical
 * results whether the chunks execute on 1 thread or N.
 *
 * Thread count resolution order:
 *   1. `setThreads(n)` programmatic override (used by parity tests),
 *   2. the `VQLLM_THREADS` environment variable,
 *   3. `std::thread::hardware_concurrency()`.
 *
 * Nested `parallelFor` calls from inside a worker run inline (serially,
 * in chunk order) — the deterministic-merge contract is unaffected
 * because inline execution visits chunks in index order.
 */
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace vqllm::par {

/** One statically assigned chunk of an index range. */
struct ChunkRange
{
    /** Chunk index in [0, chunkCount(n, grain)). */
    std::size_t index = 0;
    /** First element (inclusive). */
    std::size_t begin = 0;
    /** Last element (exclusive). */
    std::size_t end = 0;

    std::size_t
    size() const
    {
        return end - begin;
    }
};

/**
 * @return the thread count the runtime will use: the setThreads
 * override if set, else VQLLM_THREADS if set and positive, else the
 * hardware concurrency (at least 1).
 */
int maxThreads();

/**
 * Override the thread count for subsequent parallelFor calls.
 *
 * @param n threads to use; 0 reverts to VQLLM_THREADS / hardware
 */
void setThreads(int n);

/** @return number of chunks a range of n elements splits into. */
std::size_t chunkCount(std::size_t n, std::size_t grain);

/** @return the index-th chunk of [0, n) under the given grain. */
ChunkRange chunkAt(std::size_t n, std::size_t grain, std::size_t index);

/**
 * Run `body` over every chunk of [0, n).
 *
 * Chunks may execute concurrently and in any order; each chunk executes
 * exactly once.  Determinism contract: `body` must only write state
 * owned by its chunk (slots indexed by ChunkRange::index, disjoint
 * output ranges); cross-chunk reductions must happen after this call
 * returns, in chunk-index order.
 *
 * `body` must not throw.
 */
void parallelFor(std::size_t n, std::size_t grain,
                 const std::function<void(const ChunkRange &)> &body);

/**
 * Ordered parallel reduction: map every chunk to a partial value, then
 * fold the partials in chunk-index order (deterministic for any thread
 * count, including floating-point sums).
 */
template <typename T>
T
parallelSum(std::size_t n, std::size_t grain,
            const std::function<T(const ChunkRange &)> &map)
{
    std::vector<T> parts(chunkCount(n, grain), T{});
    parallelFor(n, grain, [&](const ChunkRange &c) {
        parts[c.index] = map(c);
    });
    T total{};
    for (const T &p : parts)
        total += p;
    return total;
}

} // namespace vqllm::par
