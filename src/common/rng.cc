#include "common/rng.h"

namespace vqllm {

std::vector<double>
powerLawWeights(std::size_t n, double alpha)
{
    std::vector<double> weights(n);
    for (std::size_t i = 0; i < n; ++i)
        weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    return weights;
}

} // namespace vqllm
