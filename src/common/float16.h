/**
 * @file
 * Software IEEE-754 binary16 ("half") emulation.
 *
 * LLM kernels store weights/KV-cache in FP16 and accumulate in FP32.
 * Since the host has no native half type we emulate the storage format
 * bit-exactly: conversions use round-to-nearest-even, and arithmetic is
 * performed by converting to float, operating, and converting back, which
 * matches the behaviour of scalar `__half` math on NVIDIA GPUs.
 */
#pragma once

#include <cstdint>
#include <iosfwd>

namespace vqllm {

/** Convert an IEEE binary32 value to binary16 bits (round-nearest-even). */
std::uint16_t floatToHalfBits(float value);

/** Convert IEEE binary16 bits to the nearest binary32 value. */
float halfBitsToFloat(std::uint16_t bits);

/**
 * A 16-bit storage floating point value.
 *
 * Half is a plain value type: trivially copyable, 2 bytes, usable inside
 * tensors.  All arithmetic round-trips through float.
 */
class Half
{
  public:
    Half() = default;

    /** Construct from a float with round-to-nearest-even. */
    Half(float value) : bits_(floatToHalfBits(value)) {}

    /** Construct from a double (via float). */
    explicit Half(double value) : Half(static_cast<float>(value)) {}

    /** @return the nearest float value. */
    operator float() const { return halfBitsToFloat(bits_); }

    /** @return the raw binary16 bit pattern. */
    std::uint16_t bits() const { return bits_; }

    /** Build a Half from a raw bit pattern. */
    static Half
    fromBits(std::uint16_t bits)
    {
        Half h;
        h.bits_ = bits;
        return h;
    }

    Half &operator+=(Half o) { *this = Half(float(*this) + float(o)); return *this; }
    Half &operator-=(Half o) { *this = Half(float(*this) - float(o)); return *this; }
    Half &operator*=(Half o) { *this = Half(float(*this) * float(o)); return *this; }
    Half &operator/=(Half o) { *this = Half(float(*this) / float(o)); return *this; }

    friend bool operator==(Half a, Half b) { return float(a) == float(b); }
    friend bool operator!=(Half a, Half b) { return float(a) != float(b); }
    friend bool operator<(Half a, Half b) { return float(a) < float(b); }
    friend bool operator>(Half a, Half b) { return float(a) > float(b); }

  private:
    std::uint16_t bits_ = 0;
};

static_assert(sizeof(Half) == 2, "Half must be 2 bytes");

std::ostream &operator<<(std::ostream &os, Half h);

/** Round a float through FP16 precision (quantize-dequantize). */
inline float
roundToHalf(float value)
{
    return halfBitsToFloat(floatToHalfBits(value));
}

} // namespace vqllm
