#include "common/table.h"

#include <iomanip>
#include <sstream>

#include "common/logging.h"

namespace vqllm {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    vqllm_assert(cells.size() == headers_.size(),
                 "row arity ", cells.size(), " != header arity ",
                 headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << (c == 0 ? "| " : " | ")
                << std::left << std::setw(static_cast<int>(widths[c]))
                << row[c];
        }
        oss << " |\n";
    };
    emit_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        oss << (c == 0 ? "|" : "-|") << std::string(widths[c] + 2, '-');
    }
    oss << "-|\n";
    for (const auto &row : rows_)
        emit_row(row);
    return oss.str();
}

std::string
formatDouble(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
formatBytes(double bytes)
{
    const char *suffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    int idx = 0;
    while (bytes >= 1024.0 && idx < 4) {
        bytes /= 1024.0;
        ++idx;
    }
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(bytes < 10 ? 2 : 1) << bytes
        << " " << suffixes[idx];
    return oss.str();
}

std::string
formatPercent(double fraction, int precision)
{
    return formatDouble(fraction * 100.0, precision) + "%";
}

} // namespace vqllm
