#include "common/float16.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <ostream>

namespace vqllm {

std::uint16_t
floatToHalfBits(float value)
{
    std::uint32_t f = std::bit_cast<std::uint32_t>(value);
    std::uint32_t sign = (f >> 16) & 0x8000u;
    std::int32_t exp = static_cast<std::int32_t>((f >> 23) & 0xff) - 127 + 15;
    std::uint32_t mant = f & 0x7fffffu;

    if (exp >= 0x1f) {
        // Overflow or inf/nan.
        if (((f >> 23) & 0xff) == 0xff && mant != 0) {
            // NaN: preserve a payload bit so it stays NaN.
            return static_cast<std::uint16_t>(sign | 0x7e00u);
        }
        return static_cast<std::uint16_t>(sign | 0x7c00u); // inf
    }
    if (exp <= 0) {
        // Subnormal half or zero.
        if (exp < -10)
            return static_cast<std::uint16_t>(sign); // rounds to zero
        // Add the implicit leading 1, then shift into subnormal position.
        mant |= 0x800000u;
        int shift = 14 - exp; // between 14 and 24
        std::uint32_t rounded = mant >> shift;
        std::uint32_t rem = mant & ((1u << shift) - 1);
        std::uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (rounded & 1)))
            ++rounded;
        return static_cast<std::uint16_t>(sign | rounded);
    }

    // Normal number: round 23-bit mantissa to 10 bits, nearest-even.
    std::uint32_t rounded = mant >> 13;
    std::uint32_t rem = mant & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (rounded & 1)))
        ++rounded;
    std::uint32_t result =
        sign | ((static_cast<std::uint32_t>(exp) << 10) + rounded);
    // Mantissa carry may bump the exponent; 0x7c00 becomes inf naturally.
    return static_cast<std::uint16_t>(result);
}

float
halfBitsToFloat(std::uint16_t bits)
{
    std::uint32_t sign = (static_cast<std::uint32_t>(bits) & 0x8000u) << 16;
    std::uint32_t exp = (bits >> 10) & 0x1f;
    std::uint32_t mant = bits & 0x3ffu;

    std::uint32_t f;
    if (exp == 0) {
        if (mant == 0) {
            f = sign; // signed zero
        } else {
            // Subnormal: normalize.
            int shift = 0;
            while (!(mant & 0x400u)) {
                mant <<= 1;
                ++shift;
            }
            mant &= 0x3ffu;
            f = sign | ((127 - 15 - shift + 1) << 23) | (mant << 13);
        }
    } else if (exp == 0x1f) {
        f = sign | 0x7f800000u | (mant << 13); // inf/nan
    } else {
        f = sign | ((exp - 15 + 127) << 23) | (mant << 13);
    }
    return std::bit_cast<float>(f);
}

std::ostream &
operator<<(std::ostream &os, Half h)
{
    return os << static_cast<float>(h);
}

} // namespace vqllm
